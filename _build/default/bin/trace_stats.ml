(* trace_stats — profile a saved execution trace the way the paper's
   hand-annotators profiled their programs: per-region miss counts, the
   per-epoch breakdown, and the producer-to-consumer handoff matrix that
   check-in/check-out annotations optimise.

   The trace can come from `simulate --trace --trace-out FILE` or from
   `cachier --trace-out FILE`. *)

let run file nodes =
  let records = Trace.Trace_file.load file in
  let summary = Trace.Summary.analyze ~nodes ~labels:[] records in
  print_endline (Trace.Summary.to_string summary);
  (match Trace.Summary.hottest_region summary with
  | Some name -> Fmt.pr "@.hottest region: %s@." name
  | None -> Fmt.pr "@.trace contains no misses@.");
  0

open Cmdliner

let file =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"TRACE"
         ~doc:"Trace file to analyse.")

let nodes =
  Arg.(value & opt int 8 & info [ "n"; "nodes" ] ~docv:"N"
         ~doc:"Number of nodes the trace was collected on.")

let cmd =
  let doc = "profile an execution trace (per-region, per-epoch, handoffs)" in
  Cmd.v (Cmd.info "trace_stats" ~doc) Term.(const run $ file $ nodes)

let () = exit (Cmd.eval' cmd)
