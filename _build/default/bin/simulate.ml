(* simulate — run a mini-language program on the simulated Dir1SW machine
   and report execution time and memory-system statistics. *)

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let run file nodes cache_kb assoc block annotations prefetch trace_mode
    trace_out print_memory =
  let machine =
    {
      Wwt.Machine.default with
      Wwt.Machine.nodes;
      cache_bytes = cache_kb * 1024;
      assoc;
      block_size = block;
    }
  in
  let program = Lang.Parser.parse (read_file file) in
  ignore (Lang.Sema.check program);
  let outcome =
    if trace_mode then Wwt.Run.collect_trace ~machine program
    else Wwt.Run.measure ~machine ~annotations ~prefetch program
  in
  List.iter print_endline outcome.Wwt.Interp.output;
  Fmt.pr "execution time: %d cycles@." outcome.Wwt.Interp.time;
  Fmt.pr "%a@." Memsys.Stats.pp outcome.Wwt.Interp.stats;
  (match trace_out with
  | Some path ->
      Trace.Trace_file.save path outcome.Wwt.Interp.trace;
      Fmt.pr "trace written to %s (%d records)@." path
        (List.length outcome.Wwt.Interp.trace)
  | None -> ());
  if print_memory then begin
    Fmt.pr "--- final shared memory ---@.";
    List.iter
      (fun (e : Lang.Label.entry) ->
        let elems = min e.Lang.Label.elems 16 in
        let values =
          List.init elems (fun i ->
              Lang.Value.to_string (Wwt.Interp.shared_value outcome e.Lang.Label.name i))
        in
        Fmt.pr "%s[0..%d] = %s%s@." e.Lang.Label.name (elems - 1)
          (String.concat " " values)
          (if e.Lang.Label.elems > elems then " ..." else ""))
      (Lang.Label.entries outcome.Wwt.Interp.layout)
  end;
  0

open Cmdliner

let file =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE"
         ~doc:"Program to simulate.")

let nodes =
  Arg.(value & opt int 8 & info [ "n"; "nodes" ] ~docv:"N" ~doc:"Simulated processors.")

let cache_kb =
  Arg.(value & opt int 16 & info [ "cache-kb" ] ~docv:"KB" ~doc:"Per-node cache size in KB.")

let assoc = Arg.(value & opt int 4 & info [ "assoc" ] ~doc:"Cache associativity.")
let block = Arg.(value & opt int 32 & info [ "block" ] ~doc:"Cache block size in bytes.")

let annotations =
  Arg.(value & flag & info [ "a"; "annotations" ]
         ~doc:"Execute CICO annotations as memory-system directives.")

let prefetch =
  Arg.(value & flag & info [ "p"; "prefetch" ] ~doc:"Also execute prefetch annotations.")

let trace_mode =
  Arg.(value & flag & info [ "t"; "trace" ]
         ~doc:"Trace-collection mode: flush caches at barriers and record misses.")

let trace_out =
  Arg.(value & opt (some string) None & info [ "trace-out" ] ~docv:"FILE"
         ~doc:"Write the trace to $(docv) (use with --trace).")

let print_memory =
  Arg.(value & flag & info [ "memory" ] ~doc:"Dump the first elements of each shared array.")

let cmd =
  let doc = "simulate a shared-memory program on a Dir1SW machine" in
  Cmd.v
    (Cmd.info "simulate" ~doc)
    Term.(const run $ file $ nodes $ cache_kb $ assoc $ block $ annotations
          $ prefetch $ trace_mode $ trace_out $ print_memory)

let () = exit (Cmd.eval' cmd)
