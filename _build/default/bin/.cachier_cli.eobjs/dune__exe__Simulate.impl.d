bin/simulate.ml: Arg Cmd Cmdliner Fmt Fun Lang List Memsys String Term Trace Wwt
