bin/trace_stats.mli:
