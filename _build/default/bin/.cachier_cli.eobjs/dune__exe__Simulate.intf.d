bin/simulate.mli:
