bin/cachier_cli.mli:
