bin/trace_stats.ml: Arg Cmd Cmdliner Fmt Term Trace
