bin/cachier_cli.ml: Arg Benchmarks Cachier Cmd Cmdliner Fmt Fun Lang Memsys String Term Trace Wwt
