let machine = { Wwt.Machine.default with Wwt.Machine.nodes = 2 }

let report_for src =
  let prog = Lang.Parser.parse src in
  let outcome = Wwt.Run.collect_trace ~machine prog in
  let einfo =
    Cachier.Epoch_info.build ~nodes:2 ~block_size:32 outcome.Wwt.Interp.trace
  in
  Cachier.Report.build ~layout:outcome.Wwt.Interp.layout einfo

let test_clean_program () =
  let r = report_for "shared A[16]; proc main() { A[pid * 8] = 1; }" in
  Alcotest.(check bool) "empty report" true (Cachier.Report.is_empty r);
  Alcotest.(check string) "rendering" "no data races or false sharing detected"
    (Cachier.Report.to_string r)

let test_data_race_item () =
  let r = report_for "shared A[16]; proc main() { A[0] = A[0] + 1; }" in
  match Cachier.Report.races r with
  | [ item ] ->
      Alcotest.(check string) "array" "A" item.Cachier.Report.arr;
      Alcotest.(check (list (pair int int))) "element" [ (0, 0) ]
        item.Cachier.Report.ranges;
      Alcotest.(check bool) "pcs recorded" true (item.Cachier.Report.pcs <> []);
      Alcotest.(check (list int)) "epoch 0" [ 0 ] item.Cachier.Report.epochs
  | items ->
      Alcotest.fail (Printf.sprintf "expected one race item, got %d" (List.length items))

let test_false_sharing_item () =
  (* nodes write adjacent elements of one block *)
  let r = report_for "shared A[16]; proc main() { A[pid] = 1; }" in
  match Cachier.Report.false_sharing r with
  | [ item ] ->
      Alcotest.(check string) "array" "A" item.Cachier.Report.arr;
      Alcotest.(check (list (pair int int))) "both elements" [ (0, 1) ]
        item.Cachier.Report.ranges
  | _ -> Alcotest.fail "expected one false-sharing item"

let test_padding_fixes_false_sharing () =
  (* the paper's advice: pad the structure so nodes use distinct blocks *)
  let r = report_for "shared A[16]; proc main() { A[pid * 4] = 1; }" in
  Alcotest.(check bool) "no false sharing after padding" true
    (Cachier.Report.false_sharing r = [])

let test_mp3d_reports_cell_race () =
  let r = report_for (Benchmarks.Mp3d.source ~particles:64 ~cells:16 ~t:2 ~nodes:2 ()) in
  Alcotest.(check bool) "CELL race reported" true
    (List.exists (fun i -> i.Cachier.Report.arr = "CELL") (Cachier.Report.races r))

let test_rendering_mentions_kind () =
  let r = report_for "shared A[16]; proc main() { A[0] = A[0] + 1; }" in
  let text = Cachier.Report.to_string r in
  let contains needle =
    let n = String.length needle in
    let rec go i = i + n <= String.length text && (String.sub text i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "mentions the race" true (contains "potential data race");
  Alcotest.(check bool) "names the array" true (contains "A[")

let suite =
  [
    Alcotest.test_case "clean program" `Quick test_clean_program;
    Alcotest.test_case "data race item" `Quick test_data_race_item;
    Alcotest.test_case "false sharing item" `Quick test_false_sharing_item;
    Alcotest.test_case "padding removes false sharing" `Quick
      test_padding_fixes_false_sharing;
    Alcotest.test_case "mp3d cell race" `Quick test_mp3d_reports_cell_race;
    Alcotest.test_case "report rendering" `Quick test_rendering_mentions_kind;
  ]
