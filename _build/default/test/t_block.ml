let bs = 32

let test_power_of_two () =
  Alcotest.(check bool) "1 is a power" true (Memsys.Block.is_power_of_two 1);
  Alcotest.(check bool) "32 is a power" true (Memsys.Block.is_power_of_two 32);
  Alcotest.(check bool) "0 is not" false (Memsys.Block.is_power_of_two 0);
  Alcotest.(check bool) "-4 is not" false (Memsys.Block.is_power_of_two (-4));
  Alcotest.(check bool) "48 is not" false (Memsys.Block.is_power_of_two 48)

let test_of_addr () =
  Alcotest.(check int) "addr 0" 0 (Memsys.Block.of_addr ~block_size:bs 0);
  Alcotest.(check int) "addr 31" 0 (Memsys.Block.of_addr ~block_size:bs 31);
  Alcotest.(check int) "addr 32" 1 (Memsys.Block.of_addr ~block_size:bs 32);
  Alcotest.(check int) "addr 1000" 31 (Memsys.Block.of_addr ~block_size:bs 1000)

let test_of_addr_invalid () =
  Alcotest.check_raises "non-power block size"
    (Invalid_argument "Block: block size must be a positive power of two")
    (fun () -> ignore (Memsys.Block.of_addr ~block_size:33 0));
  Alcotest.check_raises "negative address"
    (Invalid_argument "Block.of_addr: negative address") (fun () ->
      ignore (Memsys.Block.of_addr ~block_size:bs (-1)))

let test_base_and_offset () =
  Alcotest.(check int) "base of block 3" 96 (Memsys.Block.base_addr ~block_size:bs 3);
  Alcotest.(check int) "offset of 97" 1 (Memsys.Block.offset ~block_size:bs 97);
  Alcotest.(check int) "offset of 96" 0 (Memsys.Block.offset ~block_size:bs 96)

let test_blocks_of_range () =
  Alcotest.(check (list int)) "single block" [ 0 ]
    (Memsys.Block.blocks_of_range ~block_size:bs ~lo:0 ~hi:31);
  Alcotest.(check (list int)) "two blocks" [ 0; 1 ]
    (Memsys.Block.blocks_of_range ~block_size:bs ~lo:31 ~hi:32);
  Alcotest.(check (list int)) "empty range" []
    (Memsys.Block.blocks_of_range ~block_size:bs ~lo:10 ~hi:9);
  Alcotest.(check (list int)) "spanning" [ 1; 2; 3 ]
    (Memsys.Block.blocks_of_range ~block_size:bs ~lo:40 ~hi:100)

let test_count_blocks () =
  Alcotest.(check int) "count matches list" 3
    (Memsys.Block.count_blocks ~block_size:bs ~lo:40 ~hi:100);
  Alcotest.(check int) "count empty" 0
    (Memsys.Block.count_blocks ~block_size:bs ~lo:5 ~hi:4)

let suite =
  [
    Alcotest.test_case "is_power_of_two" `Quick test_power_of_two;
    Alcotest.test_case "of_addr" `Quick test_of_addr;
    Alcotest.test_case "of_addr invalid" `Quick test_of_addr_invalid;
    Alcotest.test_case "base and offset" `Quick test_base_and_offset;
    Alcotest.test_case "blocks_of_range" `Quick test_blocks_of_range;
    Alcotest.test_case "count_blocks" `Quick test_count_blocks;
  ]
