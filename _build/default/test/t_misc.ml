(* Odds and ends: builder combinators, engine selection, cost-table
   rendering, AST equality, multi-trace planning. *)

open Lang

let machine = { Wwt.Machine.default with Wwt.Machine.nodes = 2 }

let test_builder_combinators () =
  let open Builder in
  let prog =
    program
      ~decls:[ Ast.Dshared ("A", i 8) ]
      ~procs:
        [
          proc "main"
            [
              if_ (pid == i 0)
                [ for_ "k" (i 0) (i 7) [ store "A" (v "k") (f 1.5) ] ]
                ();
              barrier;
              assign "x" (idx "A" (i 0) + call "min" [ i 3; i 4 ]);
              annot Ast.Check_in "A" ~lo:(i 0) ~hi:(i 7);
              print [ v "x" ];
            ];
        ]
  in
  ignore (Sema.check prog);
  let o = Wwt.Interp.run ~machine prog in
  Alcotest.(check (list string)) "built program runs"
    [ "p0: 4.5"; "p1: 4.5" ]
    (List.sort compare o.Wwt.Interp.output)

let test_builder_arith_sugar () =
  let open Builder in
  let e = (i 10 - i 4) * i 2 / i 3 % i 5 in
  Alcotest.(check bool) "value" true
    (Sema.const_eval ~consts:[] e = Value.Vint 4);
  Alcotest.(check bool) "comparisons" true
    (Sema.const_eval ~consts:[] (i 3 < i 4) = Value.Vint 1
    && Sema.const_eval ~consts:[] (i 3 <= i 3) = Value.Vint 1)

let test_run_engine_selection () =
  let prog = Parser.parse "shared A[4]; proc main() { A[pid] = 1.0; }" in
  let a = Wwt.Run.run_with Wwt.Run.Tree_walk ~machine prog in
  let b = Wwt.Run.run_with Wwt.Run.Compiled ~machine prog in
  Alcotest.(check int) "engines agree" a.Wwt.Interp.time b.Wwt.Interp.time

let test_network_pp () =
  let text = Format.asprintf "%a" Memsys.Network.pp Memsys.Network.default in
  Alcotest.(check bool) "renders" true (String.length text > 40)

let test_equal_modulo_sids () =
  let p1 = Parser.parse "proc main() { a = 1; if (a) { b = 2; } }" in
  let p2 = Ast.renumber (Ast.renumber p1) in
  Alcotest.(check bool) "renumbering preserves equality" true
    (Ast.equal_modulo_sids p1 p2);
  let p3 = Parser.parse "proc main() { a = 1; if (a) { b = 3; } }" in
  Alcotest.(check bool) "different constant differs" false
    (Ast.equal_modulo_sids p1 p3)

let test_plan_traces_direct () =
  let prog =
    Parser.parse "shared A[16]; proc main() { x = A[pid * 4]; A[pid * 4] = x + 1.0; }"
  in
  let trace seed =
    (Wwt.Run.collect_trace ~machine (Ast_util.set_const prog "NOSEED" seed))
      .Wwt.Interp.trace
  in
  let outcome = Wwt.Run.collect_trace ~machine prog in
  let einfos =
    List.map
      (Cachier.Epoch_info.build ~nodes:2 ~block_size:32)
      [ trace 1; trace 2 ]
  in
  let plan =
    Cachier.Placement.plan_traces ~program:prog
      ~layout:outcome.Wwt.Interp.layout ~machine ~einfos
      ~options:Cachier.Placement.default_options
  in
  Alcotest.(check bool) "multi-trace plan has edits" true
    (plan.Cachier.Placement.edits <> []);
  Alcotest.check_raises "empty einfos rejected"
    (Invalid_argument "Placement.plan_traces: no traces") (fun () ->
      ignore
        (Cachier.Placement.plan_traces ~program:prog
           ~layout:outcome.Wwt.Interp.layout ~machine ~einfos:[]
           ~options:Cachier.Placement.default_options))

let test_notes_render_in_nested_blocks () =
  let p = Parser.parse "proc main() { if (pid == 0) { for i = 0 to 3 { x = i; } } }" in
  (* note on the innermost statement (sid 2) *)
  let note sid = if sid = 2 then Some "Data Race on x" else None in
  let printed = Pretty.program_to_string ~note p in
  let contains needle =
    let n = String.length needle in
    let rec go i =
      i + n <= String.length printed && (String.sub printed i n = needle || go (i + 1))
    in
    go 0
  in
  Alcotest.(check bool) "nested note rendered" true
    (contains "/*** Data Race on x ***/");
  (* and the annotated text still parses (comments are skipped) *)
  ignore (Parser.parse printed)

let test_value_to_string () =
  Alcotest.(check string) "negative int" "-3" (Value.to_string (Value.Vint (-3)));
  Alcotest.(check string) "float" "0.25" (Value.to_string (Value.Vfloat 0.25));
  Alcotest.(check string) "big float" "1e+10" (Value.to_string (Value.Vfloat 1e10))

let test_label_empty_program () =
  let info = Sema.check (Parser.parse "proc main() { x = 1; }") in
  let l = Label.layout ~block_size:32 ~elem_size:8 info in
  Alcotest.(check int) "no shared bytes" 0 (Label.total_bytes l);
  Alcotest.(check bool) "no entries" true (Label.entries l = []);
  Alcotest.(check bool) "lookup misses" true (Label.elem_of_addr l 0 = None)

let test_summary_empty_trace () =
  let s = Trace.Summary.analyze ~nodes:2 ~labels:[] [] in
  Alcotest.(check bool) "no regions" true (s.Trace.Summary.totals = []);
  Alcotest.(check bool) "no hottest" true (Trace.Summary.hottest_region s = None)

let suite =
  [
    Alcotest.test_case "builder end to end" `Quick test_builder_combinators;
    Alcotest.test_case "builder operators" `Quick test_builder_arith_sugar;
    Alcotest.test_case "engine selection" `Quick test_run_engine_selection;
    Alcotest.test_case "cost table rendering" `Quick test_network_pp;
    Alcotest.test_case "equal_modulo_sids" `Quick test_equal_modulo_sids;
    Alcotest.test_case "plan_traces" `Quick test_plan_traces_direct;
    Alcotest.test_case "nested race notes" `Quick test_notes_render_in_nested_blocks;
    Alcotest.test_case "value printing" `Quick test_value_to_string;
    Alcotest.test_case "empty layout" `Quick test_label_empty_program;
    Alcotest.test_case "empty trace summary" `Quick test_summary_empty_trace;
  ]
