open Cico

let test_names_round_trip () =
  List.iter
    (fun a ->
      Alcotest.(check bool) (Annotation.name a ^ " round trips") true
        (Annotation.of_name (Annotation.name a) = Some a))
    Annotation.all

let test_of_name_unknown () =
  Alcotest.(check bool) "unknown" true (Annotation.of_name "frobnicate" = None)

let test_classification () =
  Alcotest.(check bool) "co_x is a check-out" true
    (Annotation.is_check_out Annotation.Check_out_x);
  Alcotest.(check bool) "ci is not" false (Annotation.is_check_out Annotation.Check_in);
  Alcotest.(check bool) "pf_s is a prefetch" true
    (Annotation.is_prefetch Annotation.Prefetch_s);
  Alcotest.(check bool) "co_s is not a prefetch" false
    (Annotation.is_prefetch Annotation.Check_out_s)

let test_six_annotations () =
  (* the paper's five annotations (Section 1) plus the KSR-1 post-store
     extension *)
  Alcotest.(check int) "six" 6 (List.length Annotation.all);
  Alcotest.(check int) "five are the paper's" 5
    (List.length (List.filter (fun a -> a <> Annotation.Post_store) Annotation.all))

let test_descriptions_nonempty () =
  List.iter
    (fun a ->
      Alcotest.(check bool) "described" true (String.length (Annotation.describe a) > 10))
    Annotation.all

let test_same_type_as_ast () =
  (* the cico type is an alias of the AST's annotation kind *)
  let k : Lang.Ast.annot_kind = Annotation.Check_in in
  Alcotest.(check string) "shared constructor" "check_in" (Lang.Ast.annot_kind_name k)

let suite =
  [
    Alcotest.test_case "name round trip" `Quick test_names_round_trip;
    Alcotest.test_case "unknown name" `Quick test_of_name_unknown;
    Alcotest.test_case "classification" `Quick test_classification;
    Alcotest.test_case "five plus post-store" `Quick test_six_annotations;
    Alcotest.test_case "descriptions" `Quick test_descriptions_nonempty;
    Alcotest.test_case "alias of AST kind" `Quick test_same_type_as_ast;
  ]
