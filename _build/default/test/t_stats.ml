open Memsys

let test_create_zeroed () =
  let s = Stats.create ~nodes:4 in
  Alcotest.(check int) "no misses" 0 (Stats.total_misses s);
  Alcotest.(check int) "no accesses" 0 (Stats.total_accesses s);
  Alcotest.(check (float 1e-9)) "read fraction" 0.0 (Stats.shared_read_fraction s)

let test_fractions () =
  let s = Stats.create ~nodes:2 in
  s.Stats.shared_reads <- 88;
  s.Stats.private_reads <- 12;
  s.Stats.shared_writes <- 68;
  s.Stats.private_writes <- 32;
  Alcotest.(check (float 1e-9)) "ocean-like shared loads" 0.88
    (Stats.shared_read_fraction s);
  Alcotest.(check (float 1e-9)) "ocean-like shared stores" 0.68
    (Stats.shared_write_fraction s)

let test_stall_accounting () =
  let s = Stats.create ~nodes:2 in
  Stats.add_stall s ~node:1 10;
  Stats.add_stall s ~node:1 5;
  Alcotest.(check int) "accumulated" 15 s.Stats.stall_cycles.(1);
  Alcotest.(check int) "other node untouched" 0 s.Stats.stall_cycles.(0);
  Alcotest.check_raises "bad node" (Invalid_argument "Stats.add_stall: bad node")
    (fun () -> Stats.add_stall s ~node:2 1)

let test_reset () =
  let s = Stats.create ~nodes:2 in
  s.Stats.read_misses <- 5;
  s.Stats.check_ins <- 7;
  Stats.add_stall s ~node:0 3;
  Stats.reset s;
  Alcotest.(check int) "misses cleared" 0 (Stats.total_misses s);
  Alcotest.(check int) "check-ins cleared" 0 s.Stats.check_ins;
  Alcotest.(check int) "stalls cleared" 0 s.Stats.stall_cycles.(0)

let test_pp_renders () =
  let s = Stats.create ~nodes:2 in
  s.Stats.read_hits <- 3;
  let text = Format.asprintf "%a" Stats.pp s in
  Alcotest.(check bool) "non-empty rendering" true (String.length text > 100)

let test_invalid_create () =
  Alcotest.check_raises "zero nodes"
    (Invalid_argument "Stats.create: nodes must be positive") (fun () ->
      ignore (Stats.create ~nodes:0))

let suite =
  [
    Alcotest.test_case "create zeroed" `Quick test_create_zeroed;
    Alcotest.test_case "sharing fractions" `Quick test_fractions;
    Alcotest.test_case "stall accounting" `Quick test_stall_accounting;
    Alcotest.test_case "reset" `Quick test_reset;
    Alcotest.test_case "pretty printing" `Quick test_pp_renders;
    Alcotest.test_case "invalid create" `Quick test_invalid_create;
  ]
