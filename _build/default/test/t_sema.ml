open Lang

let check src = Sema.check (Parser.parse src)

let expect_error fragment src =
  match check src with
  | exception Sema.Error msg ->
      if not (String.length msg >= String.length fragment) then
        Alcotest.fail msg;
      let contains =
        let n = String.length fragment in
        let rec go i =
          i + n <= String.length msg
          && (String.sub msg i n = fragment || go (i + 1))
        in
        go 0
      in
      if not contains then
        Alcotest.fail (Printf.sprintf "error %S does not mention %S" msg fragment)
  | _ -> Alcotest.fail ("expected a semantic error for: " ^ src)

let test_valid_program () =
  let info = check "const N = 4; shared A[N*2]; private P[3]; proc main() { A[0] = 1; }" in
  Alcotest.(check bool) "const value" true
    (List.assoc "N" info.Sema.consts = Value.Vint 4);
  Alcotest.(check bool) "shared size evaluated" true
    (List.assoc "A" info.Sema.shared = 8);
  Alcotest.(check bool) "private size" true (List.assoc "P" info.Sema.privates = 3);
  Alcotest.(check bool) "A is shared" true (Sema.is_shared info "A");
  Alcotest.(check bool) "P is not shared" false (Sema.is_shared info "P");
  Alcotest.(check bool) "array_elems" true (Sema.array_elems info "P" = Some 3)

let test_missing_main () = expect_error "no main" "shared A[4];"
let test_main_params () = expect_error "main must take no parameters" "proc main(x) { }"
let test_duplicate_decl () = expect_error "duplicate" "const N = 1; shared N[4]; proc main() { }"
let test_reserved_decl () = expect_error "reserved" "const pid = 1; proc main() { }"
let test_bad_size () = expect_error "non-positive" "shared A[0]; proc main() { }"
let test_nonconst_size () =
  expect_error "non-constant" "shared A[n]; proc main() { }"
let test_undeclared_array () = expect_error "non-array" "proc main() { A[0] = 1; }"
let test_array_without_subscript () =
  expect_error "without a subscript" "shared A[4]; proc main() { x = A; }"
let test_assign_to_const () =
  expect_error "constant" "const N = 1; proc main() { N = 2; }"
let test_assign_to_reserved () = expect_error "reserved" "proc main() { pid = 1; }"
let test_unknown_call () = expect_error "undefined procedure" "proc main() { frob(); }"
let test_bad_arity_intrinsic () =
  expect_error "expects 2 argument" "proc main() { x = min(1); }"
let test_bad_arity_proc () =
  expect_error "expects 1 argument" "proc f(a) { } proc main() { f(); }"
let test_annotation_on_private () =
  expect_error "non-shared" "private P[4]; proc main() { check_in P[0]; }"
let test_annotation_on_unknown () =
  expect_error "non-shared" "proc main() { check_in Q[0]; }"
let test_reserved_loop_var () =
  expect_error "reserved" "proc main() { for step = 0 to 3 { } }"
let test_duplicate_proc () =
  expect_error "duplicate procedure" "proc f() { } proc f() { } proc main() { }"

let test_const_eval_intrinsics () =
  let consts = [ ("N", Value.Vint 10) ] in
  let eval src = Sema.const_eval ~consts (Parser.parse_expr src) in
  Alcotest.(check bool) "min" true (eval "min(N, 3)" = Value.Vint 3);
  Alcotest.(check bool) "max" true (eval "max(N, 3)" = Value.Vint 10);
  Alcotest.(check bool) "abs" true (eval "abs(0 - 4)" = Value.Vint 4);
  Alcotest.(check bool) "arith" true (eval "N * N / 2 - 1" = Value.Vint 49);
  Alcotest.(check bool) "comparison" true (eval "N > 5" = Value.Vint 1)

let test_const_eval_rejects () =
  let eval src = Sema.const_eval ~consts:[] (Parser.parse_expr src) in
  Alcotest.(check bool) "variable" true
    (match eval "x + 1" with exception Sema.Error _ -> true | _ -> false);
  Alcotest.(check bool) "noise call" true
    (match eval "noise(1)" with exception Sema.Error _ -> true | _ -> false)

let test_benchmarks_check () =
  List.iter
    (fun (b : Benchmarks.Suite.t) ->
      ignore (check b.Benchmarks.Suite.source);
      ignore (check b.Benchmarks.Suite.hand_source))
    (Benchmarks.Suite.all ~nodes:8 ())

let suite =
  [
    Alcotest.test_case "valid program" `Quick test_valid_program;
    Alcotest.test_case "missing main" `Quick test_missing_main;
    Alcotest.test_case "main with params" `Quick test_main_params;
    Alcotest.test_case "duplicate declaration" `Quick test_duplicate_decl;
    Alcotest.test_case "reserved declaration" `Quick test_reserved_decl;
    Alcotest.test_case "non-positive size" `Quick test_bad_size;
    Alcotest.test_case "non-constant size" `Quick test_nonconst_size;
    Alcotest.test_case "undeclared array" `Quick test_undeclared_array;
    Alcotest.test_case "array without subscript" `Quick test_array_without_subscript;
    Alcotest.test_case "assign to constant" `Quick test_assign_to_const;
    Alcotest.test_case "assign to reserved" `Quick test_assign_to_reserved;
    Alcotest.test_case "unknown call" `Quick test_unknown_call;
    Alcotest.test_case "intrinsic arity" `Quick test_bad_arity_intrinsic;
    Alcotest.test_case "procedure arity" `Quick test_bad_arity_proc;
    Alcotest.test_case "annotation on private" `Quick test_annotation_on_private;
    Alcotest.test_case "annotation on unknown" `Quick test_annotation_on_unknown;
    Alcotest.test_case "reserved loop variable" `Quick test_reserved_loop_var;
    Alcotest.test_case "duplicate procedure" `Quick test_duplicate_proc;
    Alcotest.test_case "const_eval intrinsics" `Quick test_const_eval_intrinsics;
    Alcotest.test_case "const_eval rejections" `Quick test_const_eval_rejects;
    Alcotest.test_case "benchmark sources check" `Quick test_benchmarks_check;
  ]
