open Lang

let src =
  {|proc main() {
  for i = 0 to 9 {
    a = i;
    for j = 0 to 4 {
      b = j;
    }
  }
  while (b > 0) {
    b = b - 1;
  }
}|}
(* sids: 0=for i, 1=a, 2=for j, 3=b, 4=while, 5=b dec *)

let loops () = Loops.of_program (Parser.parse src)

let test_forest () =
  let ls = loops () in
  Alcotest.(check int) "three loops" 3 (List.length ls);
  match ls with
  | [ outer; inner; wh ] ->
      Alcotest.(check int) "outer header" 0 outer.Loops.header_sid;
      Alcotest.(check bool) "outer var" true (outer.Loops.var = Some "i");
      Alcotest.(check int) "outer depth" 1 outer.Loops.depth;
      Alcotest.(check (list int)) "outer body" [ 1; 2; 3 ] outer.Loops.body_sids;
      Alcotest.(check int) "inner depth" 2 inner.Loops.depth;
      Alcotest.(check (list int)) "inner body" [ 3 ] inner.Loops.body_sids;
      Alcotest.(check bool) "while has no var" true (wh.Loops.var = None);
      Alcotest.(check int) "while depth" 1 wh.Loops.depth
  | _ -> Alcotest.fail "unexpected forest"

let test_containing () =
  let ls = loops () in
  let chain = Loops.containing ls 3 in
  Alcotest.(check (list int)) "outermost first" [ 0; 2 ]
    (List.map (fun l -> l.Loops.header_sid) chain);
  Alcotest.(check (list int)) "stmt 1 only outer" [ 0 ]
    (List.map (fun l -> l.Loops.header_sid) (Loops.containing ls 1));
  Alcotest.(check (list int)) "stmt 5 in while" [ 4 ]
    (List.map (fun l -> l.Loops.header_sid) (Loops.containing ls 5))

let test_innermost () =
  let ls = loops () in
  (match Loops.innermost_containing ls 3 with
  | Some l -> Alcotest.(check int) "innermost is j loop" 2 l.Loops.header_sid
  | None -> Alcotest.fail "expected a loop");
  Alcotest.(check bool) "header not inside itself" true
    (match Loops.innermost_containing ls 0 with None -> true | Some _ -> false)

let test_loop_of_header () =
  let ls = loops () in
  Alcotest.(check bool) "find by header" true
    (match Loops.loop_of_header ls 2 with
    | Some l -> l.Loops.var = Some "j"
    | None -> false);
  Alcotest.(check bool) "missing header" true (Loops.loop_of_header ls 99 = None)

let test_loops_in_if () =
  let p = Parser.parse "proc main() { if (x) { for i = 0 to 3 { a = i; } } }" in
  let ls = Loops.of_program p in
  Alcotest.(check int) "loop found inside if" 1 (List.length ls);
  Alcotest.(check int) "depth unaffected by if" 1 (List.hd ls).Loops.depth

let suite =
  [
    Alcotest.test_case "loop forest" `Quick test_forest;
    Alcotest.test_case "containing chains" `Quick test_containing;
    Alcotest.test_case "innermost" `Quick test_innermost;
    Alcotest.test_case "loop_of_header" `Quick test_loop_of_header;
    Alcotest.test_case "loops inside if" `Quick test_loops_in_if;
  ]
