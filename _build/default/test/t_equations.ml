(* The worked example of Figure 4, reconstructed as a hand-written trace.

   Two processors; variables a, b, c, d in distinct cache blocks
   (addresses 0, 32, 64, 96). In epoch 0 (the program's first), P0 writes
   a and b and reads d while P1 also writes a — a potential data race on
   a. In epoch 1, P0 reads c, a and d and writes b. In epoch 2, P0 touches
   a and b again and P1 writes c.

   The paper's expected annotations for P0:
   - Programmer, epoch 1: co_s(c), co_s(a), ci(c), ci(d)
   - Performance, epoch 1: just ci(c)
   - Programmer, epoch 0: co_x(a), co_x(b), co_s(d), ci(a)
   - Performance, epoch 0: just ci(a)  (a is racy, hence the check-in) *)

module Iset = Trace.Epoch.Iset

let a = 0
let b = 32
let c = 64
let d = 96

let miss node pc addr kind = Trace.Event.Miss { node; pc; addr; kind; held = [] }
let barrier_pair pc vt =
  [ Trace.Event.Barrier { bnode = 0; bpc = pc; vt };
    Trace.Event.Barrier { bnode = 1; bpc = pc; vt } ]

let records =
  [
    miss 0 1 a Trace.Event.Write_miss;
    miss 0 2 b Trace.Event.Write_miss;
    miss 0 3 d Trace.Event.Read_miss;
    miss 1 4 a Trace.Event.Write_miss;
  ]
  @ barrier_pair 10 100
  @ [
      miss 0 11 c Trace.Event.Read_miss;
      miss 0 12 a Trace.Event.Read_miss;
      miss 0 13 b Trace.Event.Write_miss;
      miss 0 14 d Trace.Event.Read_miss;
    ]
  @ barrier_pair 20 200
  @ [
      miss 0 21 a Trace.Event.Read_miss;
      miss 0 22 b Trace.Event.Write_miss;
      miss 1 23 c Trace.Event.Write_miss;
    ]

let info () = Cachier.Epoch_info.build ~nodes:2 ~block_size:32 records

let set = Alcotest.testable
    (fun ppf s -> Fmt.(list ~sep:comma int) ppf (Iset.elements s))
    Iset.equal

let iset xs = Iset.of_list xs

let test_epoch_sets () =
  let i = info () in
  Alcotest.(check int) "three epochs" 3 (Cachier.Epoch_info.n_epochs i);
  let s0 = Cachier.Epoch_info.sets_at i ~epoch:0 ~node:0 in
  Alcotest.check set "SW0(P0)" (iset [ a; b ]) s0.Cachier.Epoch_info.sw;
  Alcotest.check set "SR0(P0)" (iset [ d ]) s0.Cachier.Epoch_info.sr;
  Alcotest.check set "S0(P0)" (iset [ a; b; d ]) (Cachier.Epoch_info.s_of s0)

let test_drfs_on_a () =
  let i = info () in
  Alcotest.check set "race on a in epoch 0" (iset [ a ])
    (Cachier.Drfs.race i.Cachier.Epoch_info.drfs.(0));
  Alcotest.check set "no race in epoch 1" Iset.empty
    (Cachier.Drfs.race i.Cachier.Epoch_info.drfs.(1))

let test_programmer_epoch1 () =
  let i = info () in
  let ann = Cachier.Equations.for_epoch Cachier.Equations.Programmer i ~epoch:1 ~node:0 in
  Alcotest.check set "co_s = {a, c}" (iset [ a; c ]) ann.Cachier.Equations.co_s;
  Alcotest.check set "co_x empty" Iset.empty ann.Cachier.Equations.co_x;
  Alcotest.check set "ci = {c, d}" (iset [ c; d ]) ann.Cachier.Equations.ci

let test_performance_epoch1 () =
  let i = info () in
  let ann = Cachier.Equations.for_epoch Cachier.Equations.Performance i ~epoch:1 ~node:0 in
  Alcotest.check set "co_x empty" Iset.empty ann.Cachier.Equations.co_x;
  Alcotest.check set "co_s always empty" Iset.empty ann.Cachier.Equations.co_s;
  Alcotest.check set "ci = {c}" (iset [ c ]) ann.Cachier.Equations.ci

let test_programmer_epoch0 () =
  let i = info () in
  let ann = Cachier.Equations.for_epoch Cachier.Equations.Programmer i ~epoch:0 ~node:0 in
  Alcotest.check set "co_x = {a, b}" (iset [ a; b ]) ann.Cachier.Equations.co_x;
  Alcotest.check set "co_s = {d}" (iset [ d ]) ann.Cachier.Equations.co_s;
  Alcotest.check set "ci = {a}" (iset [ a ]) ann.Cachier.Equations.ci

let test_performance_epoch0 () =
  let i = info () in
  let ann = Cachier.Equations.for_epoch Cachier.Equations.Performance i ~epoch:0 ~node:0 in
  Alcotest.check set "co_x empty" Iset.empty ann.Cachier.Equations.co_x;
  Alcotest.check set "ci = {a}" (iset [ a ]) ann.Cachier.Equations.ci

let test_write_fault_assimilation () =
  (* A read followed by a write fault on the same address contributes the
     address to SW only (Section 4: faults are removed from the read
     misses and added to the write misses). *)
  let records =
    [
      miss 0 1 a Trace.Event.Read_miss;
      miss 0 2 a Trace.Event.Write_fault;
    ]
  in
  let i = Cachier.Epoch_info.build ~nodes:1 ~block_size:32 records in
  let s = Cachier.Epoch_info.sets_at i ~epoch:0 ~node:0 in
  Alcotest.check set "a in SW" (iset [ a ]) s.Cachier.Epoch_info.sw;
  Alcotest.check set "a not in SR" Iset.empty s.Cachier.Epoch_info.sr;
  Alcotest.check set "fault recorded" (iset [ a ]) s.Cachier.Epoch_info.wf

let test_performance_co_x_on_fault () =
  (* Performance co_x targets exactly the read-before-write locations. *)
  let records =
    [
      miss 0 1 a Trace.Event.Read_miss;
      miss 0 2 a Trace.Event.Write_fault;
      miss 0 3 b Trace.Event.Write_miss;
    ]
  in
  let i = Cachier.Epoch_info.build ~nodes:1 ~block_size:32 records in
  let ann = Cachier.Equations.for_epoch Cachier.Equations.Performance i ~epoch:0 ~node:0 in
  Alcotest.check set "co_x only the faulted address" (iset [ a ])
    ann.Cachier.Equations.co_x

let test_self_write_next_epoch_not_checked_in () =
  (* A node that reads x and will itself write x next epoch must not check
     it in: flushing would turn a cheap upgrade into a full miss. *)
  let records =
    [ miss 0 1 a Trace.Event.Read_miss ]
    @ barrier_pair 5 100
    @ [ miss 0 6 a Trace.Event.Write_fault; miss 1 7 b Trace.Event.Write_miss ]
  in
  let i = Cachier.Epoch_info.build ~nodes:2 ~block_size:32 records in
  let ann = Cachier.Equations.for_epoch Cachier.Equations.Performance i ~epoch:0 ~node:0 in
  Alcotest.check set "no ci for self-written data" Iset.empty
    ann.Cachier.Equations.ci

let test_other_write_next_epoch_checked_in () =
  let records =
    [ miss 0 1 a Trace.Event.Read_miss ]
    @ barrier_pair 5 100
    @ [ miss 1 6 a Trace.Event.Write_miss ]
  in
  let i = Cachier.Epoch_info.build ~nodes:2 ~block_size:32 records in
  let ann = Cachier.Equations.for_epoch Cachier.Equations.Performance i ~epoch:0 ~node:0 in
  Alcotest.check set "ci for data another node writes next" (iset [ a ])
    ann.Cachier.Equations.ci

let test_all_matches_for_epoch () =
  let i = info () in
  let table = Cachier.Equations.all Cachier.Equations.Programmer i in
  for e = 0 to 2 do
    for n = 0 to 1 do
      let direct = Cachier.Equations.for_epoch Cachier.Equations.Programmer i ~epoch:e ~node:n in
      Alcotest.check set "co_x" direct.Cachier.Equations.co_x table.(e).(n).Cachier.Equations.co_x;
      Alcotest.check set "ci" direct.Cachier.Equations.ci table.(e).(n).Cachier.Equations.ci
    done
  done

let test_union () =
  let a1 = { Cachier.Equations.co_x = iset [ 1 ]; co_s = iset [ 2 ]; ci = Iset.empty } in
  let a2 = { Cachier.Equations.co_x = iset [ 3 ]; co_s = Iset.empty; ci = iset [ 4 ] } in
  let u = Cachier.Equations.union a1 a2 in
  Alcotest.check set "co_x union" (iset [ 1; 3 ]) u.Cachier.Equations.co_x;
  Alcotest.check set "ci union" (iset [ 4 ]) u.Cachier.Equations.ci

let suite =
  [
    Alcotest.test_case "epoch set assimilation" `Quick test_epoch_sets;
    Alcotest.test_case "race detection on a" `Quick test_drfs_on_a;
    Alcotest.test_case "Fig.4 Programmer epoch i" `Quick test_programmer_epoch1;
    Alcotest.test_case "Fig.4 Performance epoch i" `Quick test_performance_epoch1;
    Alcotest.test_case "Fig.4 Programmer first epoch" `Quick test_programmer_epoch0;
    Alcotest.test_case "Fig.4 Performance first epoch" `Quick test_performance_epoch0;
    Alcotest.test_case "write-fault assimilation" `Quick test_write_fault_assimilation;
    Alcotest.test_case "Performance co_x on faults" `Quick test_performance_co_x_on_fault;
    Alcotest.test_case "no ci for self-written data" `Quick
      test_self_write_next_epoch_not_checked_in;
    Alcotest.test_case "ci for other-written data" `Quick
      test_other_write_next_epoch_checked_in;
    Alcotest.test_case "all = for_epoch" `Quick test_all_matches_for_epoch;
    Alcotest.test_case "annots union" `Quick test_union;
  ]
