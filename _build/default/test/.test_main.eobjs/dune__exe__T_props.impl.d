test/t_props.ml: Array Cachier Gen Hashtbl List Memsys QCheck QCheck_alcotest Trace Wwt
