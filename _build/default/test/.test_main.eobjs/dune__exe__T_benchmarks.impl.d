test/t_benchmarks.ml: Alcotest Array Benchmarks Cachier Float Lang List Memsys Printf Wwt
