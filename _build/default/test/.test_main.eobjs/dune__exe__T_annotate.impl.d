test/t_annotate.ml: Alcotest Ast Benchmarks Cachier Lang List Parser Sema Trace Wwt
