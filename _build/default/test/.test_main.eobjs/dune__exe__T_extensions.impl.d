test/t_extensions.ml: Alcotest Array Benchmarks Cache Cachier Directory Lang List Memsys Network Protocol Stats Trace Wwt
