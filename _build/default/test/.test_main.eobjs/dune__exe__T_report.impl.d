test/t_report.ml: Alcotest Benchmarks Cachier Lang List Printf String Wwt
