test/t_protocol.ml: Alcotest Cache Directory Memsys Network Protocol Stats
