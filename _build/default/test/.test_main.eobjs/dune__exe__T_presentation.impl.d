test/t_presentation.ml: Alcotest Array Ast Cachier Label Lang List Parser Pretty Sema Trace Value
