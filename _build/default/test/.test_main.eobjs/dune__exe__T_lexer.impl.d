test/t_lexer.ml: Alcotest Lang Lexer List
