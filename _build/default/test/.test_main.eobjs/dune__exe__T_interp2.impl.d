test/t_interp2.ml: Alcotest Lang List Memsys Parser Printf Value Wwt
