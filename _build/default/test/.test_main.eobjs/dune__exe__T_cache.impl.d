test/t_cache.ml: Alcotest Cache List Memsys
