test/t_funcbound.ml: Alcotest Cachier Lang List Wwt
