test/t_pqueue.ml: Alcotest List Wwt
