test/t_pretty.ml: Alcotest Ast Benchmarks Lang List Parser Pretty String
