test/t_machine.ml: Alcotest Memsys Wwt
