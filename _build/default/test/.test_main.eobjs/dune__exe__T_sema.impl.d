test/t_sema.ml: Alcotest Benchmarks Lang List Parser Printf Sema String Value
