test/t_loops.ml: Alcotest Lang List Loops Parser
