test/t_pipeline.ml: Alcotest Array Benchmarks Cachier Lang List Memsys Printf Wwt
