test/t_annotation.ml: Alcotest Annotation Cico Lang List String
