test/t_value.ml: Alcotest Lang Value
