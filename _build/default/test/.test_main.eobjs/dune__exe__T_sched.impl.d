test/t_sched.ml: Alcotest List Wwt
