test/t_placement.ml: Alcotest Ast Ast_util Benchmarks Cachier Lang List Parser Pretty Sema Wwt
