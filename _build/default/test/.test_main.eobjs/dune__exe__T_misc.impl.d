test/t_misc.ml: Alcotest Ast Ast_util Builder Cachier Format Label Lang List Memsys Parser Pretty Sema String Trace Value Wwt
