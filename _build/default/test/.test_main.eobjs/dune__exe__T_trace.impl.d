test/t_trace.ml: Alcotest Array Epoch Event Filename Fun List Sys Trace Trace_file
