test/t_equations.ml: Alcotest Array Cachier Fmt Trace
