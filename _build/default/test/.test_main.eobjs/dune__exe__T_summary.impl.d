test/t_summary.ml: Alcotest Array Benchmarks Cachier List String Trace Wwt
