test/t_interp.ml: Alcotest Benchmarks Lang List Memsys Parser Printf Trace Value Wwt
