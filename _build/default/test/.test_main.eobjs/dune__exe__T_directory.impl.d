test/t_directory.ml: Alcotest Directory List Memsys
