test/t_block.ml: Alcotest Memsys
