test/t_label.ml: Alcotest Label Lang List Parser Sema
