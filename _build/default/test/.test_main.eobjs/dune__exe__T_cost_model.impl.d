test/t_cost_model.ml: Alcotest Cico Cost_model Memsys
