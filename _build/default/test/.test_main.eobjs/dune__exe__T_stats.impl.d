test/t_stats.ml: Alcotest Array Format Memsys Stats String
