test/t_ast_util.ml: Alcotest Ast Ast_util Lang List Parser
