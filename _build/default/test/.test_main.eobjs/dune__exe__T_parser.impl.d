test/t_parser.ml: Alcotest Array Ast Lang List Parser
