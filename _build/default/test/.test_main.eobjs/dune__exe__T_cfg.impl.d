test/t_cfg.ml: Alcotest Ast Cfg Lang List Parser
