test/t_drfs.ml: Alcotest Cachier Fmt Trace
