test/t_compile.ml: Alcotest Benchmarks Cachier Lang List Memsys Printf Unix Wwt
