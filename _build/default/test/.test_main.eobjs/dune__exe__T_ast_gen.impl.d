test/t_ast_gen.ml: Array Ast Gen Lang List Parser Pretty QCheck QCheck_alcotest Sema String Test Wwt
