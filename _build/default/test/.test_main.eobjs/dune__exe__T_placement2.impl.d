test/t_placement2.ml: Alcotest Array Ast Cachier Lang List Parser String Wwt
