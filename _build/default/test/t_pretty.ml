open Lang

(* Structural equality of programs modulo statement ids. *)
let rec strip_expr e = e

and strip_stmt (s : Ast.stmt) =
  let node =
    match s.Ast.node with
    | Ast.Sif (e, b1, b2) -> Ast.Sif (strip_expr e, strip_block b1, strip_block b2)
    | Ast.Sfor fl -> Ast.Sfor { fl with Ast.body = strip_block fl.Ast.body }
    | Ast.Swhile (e, b) -> Ast.Swhile (e, strip_block b)
    | n -> n
  in
  { Ast.sid = 0; node }

and strip_block b = List.map strip_stmt b

let strip (p : Ast.program) =
  { p with Ast.procs = List.map (fun pr -> { pr with Ast.body = strip_block pr.Ast.body }) p.Ast.procs }

let round_trips src =
  let p = Parser.parse src in
  let printed = Pretty.program_to_string p in
  let p2 = Parser.parse printed in
  strip p = strip p2

let test_round_trip_simple () =
  Alcotest.(check bool) "simple" true
    (round_trips "const N = 4; shared A[N]; proc main() { A[0] = 1; }")

let test_round_trip_control () =
  Alcotest.(check bool) "control flow" true
    (round_trips
       "proc main() { for i = 0 to 9 step 2 { if (i % 2 == 0) { x = i; } \
        else { x = -i; } } while (x > 0) { x = x - 1; } }")

let test_round_trip_annotations () =
  Alcotest.(check bool) "annotations" true
    (round_trips
       "shared A[64]; proc main() { check_out_x A[0 .. 31]; check_in A[5]; \
        prefetch_s A[1 .. 2]; check_in A[@0: 1..3 @1: 4..6]; }")

let test_round_trip_benchmarks () =
  List.iter
    (fun (b : Benchmarks.Suite.t) ->
      Alcotest.(check bool) (b.Benchmarks.Suite.name ^ " round trips") true
        (round_trips b.Benchmarks.Suite.source);
      Alcotest.(check bool) (b.Benchmarks.Suite.name ^ " hand round trips") true
        (round_trips b.Benchmarks.Suite.hand_source))
    (Benchmarks.Suite.all ~nodes:8 ())

let test_expr_parens () =
  let check_expr src expected =
    Alcotest.(check string) src expected
      (Pretty.expr_to_string (Parser.parse_expr src))
  in
  check_expr "1 + 2 * 3" "1 + 2 * 3";
  check_expr "(1 + 2) * 3" "(1 + 2) * 3";
  check_expr "a - (b - c)" "a - (b - c)";
  check_expr "a - b - c" "a - b - c";
  check_expr "-(a + b)" "-(a + b)"

let test_expr_round_trip_precedence () =
  (* printing then reparsing preserves the tree *)
  let exprs =
    [ "a * (b + c) - d / e"; "a && (b || c)"; "!(a == b)"; "-x * y";
      "a < b + 1 && c >= d * 2"; "A[i * 4 + j] + min(a, b)" ]
  in
  List.iter
    (fun src ->
      let e = Parser.parse_expr src in
      let printed = Pretty.expr_to_string e in
      Alcotest.(check bool) (src ^ " stable") true (Parser.parse_expr printed = e))
    exprs

let test_float_literals_relex () =
  let e = Ast.Efloat 2.0 in
  let printed = Pretty.expr_to_string e in
  Alcotest.(check bool) "prints with decimal point" true
    (Parser.parse_expr printed = e)

let test_notes () =
  let p = Parser.parse "proc main() { x = 1; y = 2; }" in
  let note sid = if sid = 0 then Some "Data Race on x" else None in
  let printed = Pretty.program_to_string ~note p in
  Alcotest.(check bool) "note rendered" true
    (let re = "/*** Data Race on x ***/" in
     let rec contains i =
       i + String.length re <= String.length printed
       && (String.sub printed i (String.length re) = re || contains (i + 1))
     in
     contains 0)

let test_stmt_to_string () =
  let p = Parser.parse "proc main() { barrier; }" in
  let s = List.hd (List.hd p.Ast.procs).Ast.body in
  Alcotest.(check string) "single stmt" "barrier;" (Pretty.stmt_to_string s)

let suite =
  [
    Alcotest.test_case "round trip: simple" `Quick test_round_trip_simple;
    Alcotest.test_case "round trip: control flow" `Quick test_round_trip_control;
    Alcotest.test_case "round trip: annotations" `Quick test_round_trip_annotations;
    Alcotest.test_case "round trip: all benchmarks" `Quick test_round_trip_benchmarks;
    Alcotest.test_case "parenthesisation" `Quick test_expr_parens;
    Alcotest.test_case "expression stability" `Quick test_expr_round_trip_precedence;
    Alcotest.test_case "float literals re-lex" `Quick test_float_literals_relex;
    Alcotest.test_case "race notes as comments" `Quick test_notes;
    Alcotest.test_case "stmt_to_string" `Quick test_stmt_to_string;
  ]
