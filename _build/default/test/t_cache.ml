open Memsys

let mk () = Cache.create ~size_bytes:1024 ~assoc:2 ~block_size:32
(* 1024 / (2 * 32) = 16 sets, 32 lines *)

let test_geometry () =
  let c = mk () in
  Alcotest.(check int) "sets" 16 (Cache.sets c);
  Alcotest.(check int) "assoc" 2 (Cache.assoc c);
  Alcotest.(check int) "capacity blocks" 32 (Cache.capacity_blocks c);
  Alcotest.(check int) "capacity bytes" 1024 (Cache.capacity_bytes c);
  Alcotest.(check int) "block size" 32 (Cache.block_size c)

let test_bad_geometry () =
  Alcotest.check_raises "unaligned size"
    (Invalid_argument
       "Cache.create: size must be a multiple of assoc * block size")
    (fun () -> ignore (Cache.create ~size_bytes:1000 ~assoc:2 ~block_size:32));
  Alcotest.check_raises "zero assoc"
    (Invalid_argument "Cache.create: associativity must be positive")
    (fun () -> ignore (Cache.create ~size_bytes:1024 ~assoc:0 ~block_size:32))

let test_insert_find () =
  let c = mk () in
  Alcotest.(check bool) "absent" true (Cache.find c 5 = None);
  let evicted = Cache.insert c ~block:5 ~state:Cache.Shared ~dirty:false ~ready_at:0 in
  Alcotest.(check bool) "no eviction" true (evicted = None);
  (match Cache.find c 5 with
  | Some line ->
      Alcotest.(check bool) "state" true (line.Cache.state = Cache.Shared);
      Alcotest.(check bool) "clean" false line.Cache.dirty
  | None -> Alcotest.fail "block 5 should be resident");
  Alcotest.(check int) "occupancy" 1 (Cache.occupancy c)

let test_reinsert_updates () =
  let c = mk () in
  ignore (Cache.insert c ~block:7 ~state:Cache.Shared ~dirty:false ~ready_at:0);
  ignore (Cache.insert c ~block:7 ~state:Cache.Exclusive ~dirty:true ~ready_at:9);
  (match Cache.find c 7 with
  | Some line ->
      Alcotest.(check bool) "upgraded" true (line.Cache.state = Cache.Exclusive);
      Alcotest.(check bool) "dirty" true line.Cache.dirty;
      Alcotest.(check int) "ready_at" 9 line.Cache.ready_at
  | None -> Alcotest.fail "resident");
  Alcotest.(check int) "still one line" 1 (Cache.occupancy c)

let test_lru_eviction () =
  let c = mk () in
  (* Blocks 0, 16, 32 map to set 0 (16 sets). Assoc 2: third insert evicts
     the least recently used. *)
  ignore (Cache.insert c ~block:0 ~state:Cache.Shared ~dirty:false ~ready_at:0);
  ignore (Cache.insert c ~block:16 ~state:Cache.Shared ~dirty:false ~ready_at:0);
  Cache.touch c 0;
  (* now 16 is LRU *)
  let evicted = Cache.insert c ~block:32 ~state:Cache.Exclusive ~dirty:true ~ready_at:0 in
  (match evicted with
  | Some (victim, state, dirty) ->
      Alcotest.(check int) "victim is LRU" 16 victim;
      Alcotest.(check bool) "victim state" true (state = Cache.Shared);
      Alcotest.(check bool) "victim clean" false dirty
  | None -> Alcotest.fail "expected an eviction");
  Alcotest.(check bool) "0 survives" true (Cache.find c 0 <> None);
  Alcotest.(check bool) "32 resident" true (Cache.find c 32 <> None)

let test_remove () =
  let c = mk () in
  ignore (Cache.insert c ~block:3 ~state:Cache.Exclusive ~dirty:true ~ready_at:0);
  (match Cache.remove c 3 with
  | Some (state, dirty) ->
      Alcotest.(check bool) "state" true (state = Cache.Exclusive);
      Alcotest.(check bool) "dirty" true dirty
  | None -> Alcotest.fail "expected removal");
  Alcotest.(check bool) "gone" true (Cache.find c 3 = None);
  Alcotest.(check bool) "second remove is None" true (Cache.remove c 3 = None);
  Alcotest.(check int) "occupancy" 0 (Cache.occupancy c)

let test_flush_all () =
  let c = mk () in
  for b = 0 to 9 do
    ignore (Cache.insert c ~block:b ~state:Cache.Shared ~dirty:false ~ready_at:0)
  done;
  let flushed = Cache.flush_all c in
  Alcotest.(check int) "flushed count" 10 (List.length flushed);
  Alcotest.(check int) "empty" 0 (Cache.occupancy c);
  let blocks = List.sort compare (List.map (fun (b, _, _) -> b) flushed) in
  Alcotest.(check (list int)) "all blocks" [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ] blocks

let test_iter () =
  let c = mk () in
  ignore (Cache.insert c ~block:1 ~state:Cache.Shared ~dirty:false ~ready_at:0);
  ignore (Cache.insert c ~block:2 ~state:Cache.Exclusive ~dirty:true ~ready_at:0);
  let n = ref 0 in
  Cache.iter c (fun _ -> incr n);
  Alcotest.(check int) "iterated twice" 2 !n

let suite =
  [
    Alcotest.test_case "geometry" `Quick test_geometry;
    Alcotest.test_case "bad geometry" `Quick test_bad_geometry;
    Alcotest.test_case "insert and find" `Quick test_insert_find;
    Alcotest.test_case "reinsert updates in place" `Quick test_reinsert_updates;
    Alcotest.test_case "LRU eviction" `Quick test_lru_eviction;
    Alcotest.test_case "remove" `Quick test_remove;
    Alcotest.test_case "flush_all" `Quick test_flush_all;
    Alcotest.test_case "iter" `Quick test_iter;
  ]
