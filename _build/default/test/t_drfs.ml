module Iset = Trace.Epoch.Iset

let miss node pc addr kind = Trace.Event.Miss { node; pc; addr; kind; held = [] }

let epoch_of records =
  match Trace.Epoch.split ~nodes:4 records with
  | [ e ], _ -> e
  | _ -> Alcotest.fail "expected one epoch"

let analyze records = Cachier.Drfs.analyze ~block_size:32 (epoch_of records)

let set = Alcotest.testable
    (fun ppf s -> Fmt.(list ~sep:comma int) ppf (Iset.elements s))
    Iset.equal

let test_write_write_race () =
  let d = analyze [ miss 0 1 0 Trace.Event.Write_miss; miss 1 2 0 Trace.Event.Write_miss ] in
  Alcotest.check set "race" (Iset.singleton 0) (Cachier.Drfs.race d)

let test_read_write_race () =
  let d = analyze [ miss 0 1 0 Trace.Event.Read_miss; miss 1 2 0 Trace.Event.Write_fault ] in
  Alcotest.check set "race" (Iset.singleton 0) (Cachier.Drfs.race d)

let test_read_read_no_race () =
  let d = analyze [ miss 0 1 0 Trace.Event.Read_miss; miss 1 2 0 Trace.Event.Read_miss ] in
  Alcotest.check set "no race" Iset.empty (Cachier.Drfs.race d);
  Alcotest.check set "no false sharing either" Iset.empty (Cachier.Drfs.false_shared d)

let test_same_node_no_race () =
  let d = analyze [ miss 0 1 0 Trace.Event.Read_miss; miss 0 2 0 Trace.Event.Write_fault ] in
  Alcotest.check set "single node is not a race" Iset.empty (Cachier.Drfs.race d)

let test_false_sharing_write_read () =
  (* node 0 writes addr 0; node 1 reads addr 8 of the same block *)
  let d = analyze [ miss 0 1 0 Trace.Event.Write_miss; miss 1 2 8 Trace.Event.Read_miss ] in
  Alcotest.check set "both addresses falsely shared" (Iset.of_list [ 0; 8 ])
    (Cachier.Drfs.false_shared d);
  Alcotest.check set "no race" Iset.empty (Cachier.Drfs.race d)

let test_false_sharing_needs_write () =
  let d = analyze [ miss 0 1 0 Trace.Event.Read_miss; miss 1 2 8 Trace.Event.Read_miss ] in
  Alcotest.check set "read-read block sharing is not false sharing" Iset.empty
    (Cachier.Drfs.false_shared d)

let test_false_sharing_needs_two_nodes () =
  let d = analyze [ miss 0 1 0 Trace.Event.Write_miss; miss 0 2 8 Trace.Event.Read_miss ] in
  Alcotest.check set "one node touching two addrs is fine" Iset.empty
    (Cachier.Drfs.false_shared d)

let test_different_blocks_no_false_sharing () =
  let d = analyze [ miss 0 1 0 Trace.Event.Write_miss; miss 1 2 32 Trace.Event.Write_miss ] in
  Alcotest.check set "different blocks" Iset.empty (Cachier.Drfs.false_shared d)

let test_drfs_union_and_filters () =
  let d =
    analyze
      [
        miss 0 1 0 Trace.Event.Write_miss;
        miss 1 2 0 Trace.Event.Write_miss; (* race on 0 *)
        miss 0 3 32 Trace.Event.Write_miss;
        miss 1 4 40 Trace.Event.Read_miss; (* false sharing on 32, 40 *)
        miss 0 5 64 Trace.Event.Read_miss; (* clean *)
      ]
  in
  Alcotest.check set "drfs union" (Iset.of_list [ 0; 32; 40 ]) (Cachier.Drfs.drfs_set d);
  let all = Iset.of_list [ 0; 32; 40; 64 ] in
  Alcotest.check set "filter_drfs" (Iset.of_list [ 0; 32; 40 ])
    (Cachier.Drfs.filter_drfs d all);
  Alcotest.check set "filter_not_drfs" (Iset.of_list [ 64 ])
    (Cachier.Drfs.filter_not_drfs d all);
  Alcotest.check set "filter_fs" (Iset.of_list [ 32; 40 ]) (Cachier.Drfs.filter_fs d all);
  Alcotest.check set "filter_not_fs" (Iset.of_list [ 0; 64 ])
    (Cachier.Drfs.filter_not_fs d all);
  Alcotest.(check bool) "in_race" true (Cachier.Drfs.in_race d 0);
  Alcotest.(check bool) "in_false_sharing" true (Cachier.Drfs.in_false_sharing d 40);
  Alcotest.(check bool) "in_drfs" true (Cachier.Drfs.in_drfs d 32);
  Alcotest.(check bool) "clean addr" false (Cachier.Drfs.in_drfs d 64)

let test_race_and_false_sharing_coexist () =
  (* race on addr 0 AND false sharing with addr 8 in the same block *)
  let d =
    analyze
      [
        miss 0 1 0 Trace.Event.Write_miss;
        miss 1 2 0 Trace.Event.Write_miss;
        miss 2 3 8 Trace.Event.Read_miss;
      ]
  in
  Alcotest.check set "race on 0" (Iset.singleton 0) (Cachier.Drfs.race d);
  Alcotest.(check bool) "8 falsely shared" true (Cachier.Drfs.in_false_sharing d 8)

let suite =
  [
    Alcotest.test_case "write-write race" `Quick test_write_write_race;
    Alcotest.test_case "read-write race" `Quick test_read_write_race;
    Alcotest.test_case "read-read is clean" `Quick test_read_read_no_race;
    Alcotest.test_case "single node is clean" `Quick test_same_node_no_race;
    Alcotest.test_case "false sharing write/read" `Quick test_false_sharing_write_read;
    Alcotest.test_case "false sharing needs a write" `Quick test_false_sharing_needs_write;
    Alcotest.test_case "false sharing needs two nodes" `Quick
      test_false_sharing_needs_two_nodes;
    Alcotest.test_case "different blocks clean" `Quick test_different_blocks_no_false_sharing;
    Alcotest.test_case "filters" `Quick test_drfs_union_and_filters;
    Alcotest.test_case "race and FS coexist" `Quick test_race_and_false_sharing_coexist;
  ]
