(* LU and FFT: the two extension kernels beyond the Figure 6 suite. *)

let machine = { Wwt.Machine.default with Wwt.Machine.nodes = 4 }

let run src = Wwt.Run.source_measure ~machine ~annotations:false ~prefetch:false src
let run_annotated src = Wwt.Run.source_measure ~machine ~annotations:true ~prefetch:false src

(* ---- LU ---- *)

(* OCaml reference LU (no pivoting, column-major) on the same input. *)
let reference_lu n seed =
  let m = Array.make_matrix n n 0.0 in
  for j = 0 to n - 1 do
    for i = 0 to n - 1 do
      let v = Wwt.Interp.noise ((j * n) + i + (seed * 1000003)) in
      m.(i).(j) <- (if i = j then v +. float_of_int n else v)
    done
  done;
  for k = 0 to n - 2 do
    for i = k + 1 to n - 1 do
      m.(i).(k) <- m.(i).(k) /. m.(k).(k)
    done;
    for j = k + 1 to n - 1 do
      for i = k + 1 to n - 1 do
        m.(i).(j) <- m.(i).(j) -. (m.(i).(k) *. m.(k).(j))
      done
    done
  done;
  m

let test_lu_matches_reference () =
  let n = 12 in
  let o = run (Benchmarks.Lu.source ~n ~seed:1 ~nodes:4 ()) in
  let expect = reference_lu n 1 in
  let max_err = ref 0.0 in
  for j = 0 to n - 1 do
    for i = 0 to n - 1 do
      let got = Lang.Value.to_float (Wwt.Interp.shared_value o "M" ((j * n) + i)) in
      max_err := max !max_err (Float.abs (got -. expect.(i).(j)))
    done
  done;
  Alcotest.(check bool)
    (Printf.sprintf "LU max error %g" !max_err)
    true (!max_err < 1e-9)

let test_lu_hand_equivalent_and_helps () =
  let n = 16 in
  let base = run (Benchmarks.Lu.source ~n ~nodes:4 ()) in
  let hand = run_annotated (Benchmarks.Lu.hand_source ~n ~nodes:4 ()) in
  Alcotest.(check bool) "same factorisation" true
    (base.Wwt.Interp.shared = hand.Wwt.Interp.shared);
  Alcotest.(check bool) "column handoff annotations issued" true
    (hand.Wwt.Interp.stats.Memsys.Stats.check_ins > 0)

let test_lu_through_cachier () =
  let src = Benchmarks.Lu.source ~n:12 ~nodes:4 () in
  let prog = Lang.Parser.parse src in
  let r =
    Cachier.Annotate.annotate_program ~machine
      ~options:Cachier.Placement.default_options prog
  in
  Alcotest.(check bool) "annotations inserted" true (r.Cachier.Annotate.n_edits > 0);
  let base = Wwt.Run.measure ~machine ~annotations:false ~prefetch:false prog in
  let ann =
    Wwt.Run.measure ~machine ~annotations:true ~prefetch:false
      r.Cachier.Annotate.annotated
  in
  Alcotest.(check bool) "identical result" true
    (base.Wwt.Interp.shared = ann.Wwt.Interp.shared)

(* ---- FFT ---- *)

let test_fft_parseval () =
  (* energy is conserved up to the 1/N convention: sum |x|^2 = sum |X|^2 / N *)
  let n = 32 in
  let o = run (Benchmarks.Fft.source ~n ~seed:1 ~nodes:4 ()) in
  let input_energy = ref 0.0 in
  for i = 0 to n - 1 do
    let v = Wwt.Interp.noise (i + 1000003) -. 0.5 in
    input_energy := !input_energy +. (v *. v)
  done;
  let output_energy = ref 0.0 in
  for i = 0 to n - 1 do
    let re = Lang.Value.to_float (Wwt.Interp.shared_value o "RE" i) in
    let im = Lang.Value.to_float (Wwt.Interp.shared_value o "IM" i) in
    output_energy := !output_energy +. (re *. re) +. (im *. im)
  done;
  Alcotest.(check (float 1e-6)) "Parseval" !input_energy
    (!output_energy /. float_of_int n)

let test_fft_inverse_round_trip () =
  let n = 32 in
  let o = run (Benchmarks.Fft.inverse_source ~n ~seed:1 ~nodes:4 ()) in
  let max_err = ref 0.0 in
  for i = 0 to n - 1 do
    let expect = Wwt.Interp.noise (i + 1000003) -. 0.5 in
    let got = Lang.Value.to_float (Wwt.Interp.shared_value o "RE" i) in
    let im = Lang.Value.to_float (Wwt.Interp.shared_value o "IM" i) in
    max_err := max !max_err (Float.abs (got -. expect));
    max_err := max !max_err (Float.abs im)
  done;
  Alcotest.(check bool)
    (Printf.sprintf "round-trip max error %g" !max_err)
    true (!max_err < 1e-9)

let test_fft_dc_component () =
  (* X[0] is the sum of the inputs *)
  let n = 32 in
  let o = run (Benchmarks.Fft.source ~n ~seed:2 ~nodes:4 ()) in
  let sum = ref 0.0 in
  for i = 0 to n - 1 do
    sum := !sum +. Wwt.Interp.noise (i + 2 * 1000003) -. 0.5
  done;
  Alcotest.(check (float 1e-9)) "DC bin" !sum
    (Lang.Value.to_float (Wwt.Interp.shared_value o "RE" 0))

let test_fft_race_free_and_annotatable () =
  let src = Benchmarks.Fft.source ~n:32 ~nodes:4 () in
  let prog = Lang.Parser.parse src in
  let r =
    Cachier.Annotate.annotate_program ~machine
      ~options:Cachier.Placement.default_options prog
  in
  Alcotest.(check (list string)) "no races" []
    (List.map (fun i -> i.Cachier.Report.arr)
       (Cachier.Report.races r.Cachier.Annotate.report));
  let base = Wwt.Run.measure ~machine ~annotations:false ~prefetch:false prog in
  let ann =
    Wwt.Run.measure ~machine ~annotations:true ~prefetch:false
      r.Cachier.Annotate.annotated
  in
  Alcotest.(check bool) "identical spectrum" true
    (base.Wwt.Interp.shared = ann.Wwt.Interp.shared)

let test_fft_validation () =
  Alcotest.check_raises "non power of two"
    (Invalid_argument "fft: N must be a power of two") (fun () ->
      ignore (Benchmarks.Fft.source ~n:48 ~nodes:4 ()))

let test_engines_agree_on_lu_and_fft () =
  List.iter
    (fun src ->
      let prog = Lang.Parser.parse src in
      let a = Wwt.Interp.run ~machine prog in
      let b = Wwt.Compile.run ~machine prog in
      Alcotest.(check int) "same time" a.Wwt.Interp.time b.Wwt.Interp.time;
      Alcotest.(check bool) "same memory" true
        (a.Wwt.Interp.shared = b.Wwt.Interp.shared))
    [
      Benchmarks.Lu.source ~n:12 ~nodes:4 ();
      Benchmarks.Fft.source ~n:32 ~nodes:4 ();
    ]

let suite =
  [
    Alcotest.test_case "LU matches reference" `Quick test_lu_matches_reference;
    Alcotest.test_case "LU hand annotation" `Quick test_lu_hand_equivalent_and_helps;
    Alcotest.test_case "LU through Cachier" `Slow test_lu_through_cachier;
    Alcotest.test_case "FFT Parseval" `Quick test_fft_parseval;
    Alcotest.test_case "FFT inverse round trip" `Quick test_fft_inverse_round_trip;
    Alcotest.test_case "FFT DC bin" `Quick test_fft_dc_component;
    Alcotest.test_case "FFT race-free + annotatable" `Slow
      test_fft_race_free_and_annotatable;
    Alcotest.test_case "FFT validation" `Quick test_fft_validation;
    Alcotest.test_case "engines agree on LU/FFT" `Slow
      test_engines_agree_on_lu_and_fft;
  ]
