open Lang

let machine ?(nodes = 2) () = { Wwt.Machine.default with Wwt.Machine.nodes }

let run ?(nodes = 2) src =
  Wwt.Interp.run ~machine:(machine ~nodes ()) (Parser.parse src)

let run_trace ?(nodes = 2) src =
  Wwt.Interp.run
    ~machine:(Wwt.Machine.trace_mode (machine ~nodes ()))
    (Parser.parse src)

let vint = function Value.Vint i -> i | Value.Vfloat f -> int_of_float f

let test_arith_and_memory () =
  let o = run "shared A[8]; proc main() { if (pid == 0) { A[0] = 2 + 3 * 4; A[1] = A[0] - 1; } }" in
  Alcotest.(check int) "A[0]" 14 (vint (Wwt.Interp.shared_value o "A" 0));
  Alcotest.(check int) "A[1]" 13 (vint (Wwt.Interp.shared_value o "A" 1))

let test_pid_and_nprocs () =
  let o = run ~nodes:4 "shared A[4]; proc main() { A[pid] = pid * 10 + nprocs; }" in
  for p = 0 to 3 do
    Alcotest.(check int)
      (Printf.sprintf "A[%d]" p)
      ((p * 10) + 4)
      (vint (Wwt.Interp.shared_value o "A" p))
  done

let test_for_loop_semantics () =
  let o = run "shared A[4]; proc main() { if (pid == 0) { s = 0; for i = 1 to 10 { s = s + i; } A[0] = s; s = 0; for i = 10 to 1 step -3 { s = s + i; } A[1] = s; for i = 5 to 4 { A[2] = 99; } } }" in
  Alcotest.(check int) "sum 1..10" 55 (vint (Wwt.Interp.shared_value o "A" 0));
  Alcotest.(check int) "descending 10+7+4+1" 22 (vint (Wwt.Interp.shared_value o "A" 1));
  Alcotest.(check int) "empty loop body never runs" 0
    (vint (Wwt.Interp.shared_value o "A" 2))

let test_while_and_if () =
  let o = run "shared A[2]; proc main() { if (pid == 0) { n = 27; steps = 0; while (n != 1) { if (n % 2 == 0) { n = n / 2; } else { n = 3 * n + 1; } steps = steps + 1; } A[0] = steps; } }" in
  Alcotest.(check int) "collatz(27)" 111 (vint (Wwt.Interp.shared_value o "A" 0))

let test_procedures_and_recursion () =
  let o = run
    "shared A[2]; proc fib(n) { if (n < 2) { return n; } return fib(n - 1) + fib(n - 2); } proc main() { if (pid == 0) { A[0] = fib(10); } }" in
  Alcotest.(check int) "fib 10" 55 (vint (Wwt.Interp.shared_value o "A" 0))

let test_private_arrays_are_per_node () =
  let o = run ~nodes:2
    "shared A[2]; private P[4]; proc main() { P[0] = pid + 1; barrier; A[pid] = P[0]; }" in
  Alcotest.(check int) "node 0 sees its own" 1 (vint (Wwt.Interp.shared_value o "A" 0));
  Alcotest.(check int) "node 1 sees its own" 2 (vint (Wwt.Interp.shared_value o "A" 1))

let test_barrier_ordering () =
  (* producer/consumer across a barrier must observe the write *)
  let o = run ~nodes:2
    "shared A[2]; proc main() { if (pid == 0) { A[0] = 42; } barrier; if (pid == 1) { A[1] = A[0] + 1; } }" in
  Alcotest.(check int) "consumer saw 42" 43 (vint (Wwt.Interp.shared_value o "A" 1))

let test_locks_protect () =
  let o = run ~nodes:4
    "shared A[1]; proc main() { for i = 1 to 10 { lock(0); A[0] = A[0] + 1; unlock(0); } }" in
  Alcotest.(check int) "40 atomic increments" 40 (vint (Wwt.Interp.shared_value o "A" 0));
  Alcotest.(check int) "lock acquisitions counted" 40
    o.Wwt.Interp.stats.Memsys.Stats.lock_acquires

let test_intrinsics () =
  let o = run "shared A[8]; proc main() { if (pid == 0) { A[0] = min(3, 7); A[1] = max(3, 7); A[2] = abs(0 - 9); A[3] = int(3.99); A[4] = sqrt(16.0); A[5] = floor(2.7); A[6] = float(3); } }" in
  Alcotest.(check int) "min" 3 (vint (Wwt.Interp.shared_value o "A" 0));
  Alcotest.(check int) "max" 7 (vint (Wwt.Interp.shared_value o "A" 1));
  Alcotest.(check int) "abs" 9 (vint (Wwt.Interp.shared_value o "A" 2));
  Alcotest.(check int) "int" 3 (vint (Wwt.Interp.shared_value o "A" 3));
  Alcotest.(check bool) "sqrt" true (Wwt.Interp.shared_value o "A" 4 = Value.Vfloat 4.0);
  Alcotest.(check bool) "floor" true (Wwt.Interp.shared_value o "A" 5 = Value.Vfloat 2.0);
  Alcotest.(check bool) "float" true (Wwt.Interp.shared_value o "A" 6 = Value.Vfloat 3.0)

let test_noise_deterministic () =
  Alcotest.(check bool) "same input same output" true
    (Wwt.Interp.noise 42 = Wwt.Interp.noise 42);
  Alcotest.(check bool) "different inputs differ" true
    (Wwt.Interp.noise 42 <> Wwt.Interp.noise 43);
  Alcotest.(check bool) "in [0,1)" true
    (let v = Wwt.Interp.noise 123 in v >= 0.0 && v < 1.0)

let test_print_output () =
  let o = run "proc main() { if (pid == 0) { print(1 + 1, 3.5); } }" in
  Alcotest.(check (list string)) "output" [ "p0: 2 3.5" ] o.Wwt.Interp.output

let test_runtime_errors () =
  let expect_error src =
    match run src with
    | exception Wwt.Interp.Runtime_error _ -> ()
    | _ -> Alcotest.fail ("expected a runtime error for: " ^ src)
  in
  expect_error "shared A[4]; proc main() { A[4] = 1; }";
  expect_error "shared A[4]; proc main() { A[0 - 1] = 1; }";
  expect_error "private P[2]; proc main() { x = P[5]; }";
  expect_error "proc main() { x = 1 / 0; }";
  expect_error "proc main() { for i = 0 to 3 step 0 { } }";
  expect_error "proc main() { x = y; }"

let test_barrier_divergence_deadlocks () =
  match run ~nodes:2 "proc main() { if (pid == 0) { barrier; } }" with
  | exception Wwt.Sched.Deadlock _ -> ()
  | _ -> Alcotest.fail "expected a deadlock"

let test_trace_collection () =
  let o = run_trace ~nodes:2
    "shared A[8]; proc main() { A[pid] = 1; barrier; x = A[1 - pid]; }" in
  let misses =
    List.filter (function Trace.Event.Miss _ -> true | _ -> false) o.Wwt.Interp.trace
  in
  let barriers =
    List.filter (function Trace.Event.Barrier _ -> true | _ -> false) o.Wwt.Interp.trace
  in
  let labels =
    List.filter (function Trace.Event.Label _ -> true | _ -> false) o.Wwt.Interp.trace
  in
  Alcotest.(check bool) "misses recorded" true (List.length misses >= 2);
  Alcotest.(check int) "one barrier group" 2 (List.length barriers);
  Alcotest.(check int) "one label" 1 (List.length labels);
  (* flushed caches mean the post-barrier reads miss again *)
  let epochs, _ = Trace.Epoch.split ~nodes:2 o.Wwt.Interp.trace in
  Alcotest.(check int) "two epochs" 2 (List.length epochs);
  let e1 = List.nth epochs 1 in
  Alcotest.(check bool) "post-barrier reads missed" true
    (List.length e1.Trace.Epoch.misses >= 2)

let test_no_trace_in_perf_mode () =
  let o = run "shared A[4]; proc main() { A[pid] = 1; }" in
  Alcotest.(check (list string)) "no trace" []
    (List.map (fun _ -> "x") o.Wwt.Interp.trace)

let test_annotations_no_semantic_effect () =
  let src annots =
    Printf.sprintf
      "shared A[8]; proc main() { %s A[pid] = pid + 5; %s barrier; x = A[0]; }"
      (if annots then "check_out_x A[pid];" else "")
      (if annots then "check_in A[pid];" else "")
  in
  let machine = Wwt.Machine.perf_mode ~annotations:true ~prefetch:false (machine ()) in
  let o1 = Wwt.Interp.run ~machine (Parser.parse (src true)) in
  let o2 = Wwt.Interp.run ~machine (Parser.parse (src false)) in
  Alcotest.(check bool) "same result" true
    (Wwt.Interp.shared_value o1 "A" 0 = Wwt.Interp.shared_value o2 "A" 0
    && Wwt.Interp.shared_value o1 "A" 1 = Wwt.Interp.shared_value o2 "A" 1)

let test_annotation_directives_counted () =
  let src = "shared A[8]; proc main() { check_out_x A[0 .. 7]; A[pid] = 1.0; check_in A[0 .. 7]; }" in
  let machine = Wwt.Machine.perf_mode ~annotations:true ~prefetch:false (machine ~nodes:1 ()) in
  let o = Wwt.Interp.run ~machine (Parser.parse src) in
  (* 8 elems * 8 bytes = 64 bytes = 2 blocks *)
  Alcotest.(check int) "co_x per block" 2 o.Wwt.Interp.stats.Memsys.Stats.check_outs_x;
  Alcotest.(check int) "ci per block" 2 o.Wwt.Interp.stats.Memsys.Stats.check_ins

let test_annotations_ignored_mode () =
  let src = "shared A[8]; proc main() { check_out_x A[0 .. 7]; A[pid] = 1.0; }" in
  let o = Wwt.Interp.run ~machine:(machine ~nodes:1 ()) (Parser.parse src) in
  Alcotest.(check int) "no directives" 0 o.Wwt.Interp.stats.Memsys.Stats.check_outs_x

let test_annotation_table_per_pid () =
  let src = "shared A[16]; proc main() { check_out_x A[@0: 0..3 @1: 8..11]; x = 1; }" in
  let machine = Wwt.Machine.perf_mode ~annotations:true ~prefetch:false (machine ()) in
  let o = Wwt.Interp.run ~machine (Parser.parse src) in
  (* each node checks out 4 elems = 1 block *)
  Alcotest.(check int) "one block each" 2 o.Wwt.Interp.stats.Memsys.Stats.check_outs_x

let test_determinism () =
  let src = Benchmarks.Mp3d.source ~particles:64 ~cells:16 ~t:2 ~nodes:2 () in
  let o1 = run ~nodes:2 src and o2 = run ~nodes:2 src in
  Alcotest.(check int) "same simulated time" o1.Wwt.Interp.time o2.Wwt.Interp.time;
  Alcotest.(check bool) "same memory image" true (o1.Wwt.Interp.shared = o2.Wwt.Interp.shared)

let test_time_advances () =
  let o = run "shared A[4]; proc main() { for i = 0 to 3 { A[i] = i; } barrier; }" in
  Alcotest.(check bool) "nonzero time" true (o.Wwt.Interp.time > 0);
  Alcotest.(check int) "barrier counted" 1 o.Wwt.Interp.stats.Memsys.Stats.barriers

let suite =
  [
    Alcotest.test_case "arithmetic and memory" `Quick test_arith_and_memory;
    Alcotest.test_case "pid and nprocs" `Quick test_pid_and_nprocs;
    Alcotest.test_case "for loop semantics" `Quick test_for_loop_semantics;
    Alcotest.test_case "while and if" `Quick test_while_and_if;
    Alcotest.test_case "procedures and recursion" `Quick test_procedures_and_recursion;
    Alcotest.test_case "private arrays per node" `Quick test_private_arrays_are_per_node;
    Alcotest.test_case "barrier ordering" `Quick test_barrier_ordering;
    Alcotest.test_case "locks protect" `Quick test_locks_protect;
    Alcotest.test_case "intrinsics" `Quick test_intrinsics;
    Alcotest.test_case "noise determinism" `Quick test_noise_deterministic;
    Alcotest.test_case "print output" `Quick test_print_output;
    Alcotest.test_case "runtime errors" `Quick test_runtime_errors;
    Alcotest.test_case "barrier divergence deadlocks" `Quick
      test_barrier_divergence_deadlocks;
    Alcotest.test_case "trace collection" `Quick test_trace_collection;
    Alcotest.test_case "no trace in perf mode" `Quick test_no_trace_in_perf_mode;
    Alcotest.test_case "annotations are semantics-free" `Quick
      test_annotations_no_semantic_effect;
    Alcotest.test_case "directives counted per block" `Quick
      test_annotation_directives_counted;
    Alcotest.test_case "annotations ignored mode" `Quick test_annotations_ignored_mode;
    Alcotest.test_case "per-pid table execution" `Quick test_annotation_table_per_pid;
    Alcotest.test_case "deterministic simulation" `Quick test_determinism;
    Alcotest.test_case "time advances" `Quick test_time_advances;
  ]
