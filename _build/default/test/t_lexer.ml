open Lang

let toks src = List.map fst (Lexer.tokenize src)

let test_basic_tokens () =
  Alcotest.(check bool) "operators" true
    (toks "+ - * / % < <= > >= == != && || !"
    = Lexer.[ PLUS; MINUS; STAR; SLASH; PERCENT; LT; LE; GT; GE; EQ; NE;
              ANDAND; OROR; BANG; EOF ])

let test_numbers () =
  Alcotest.(check bool) "int" true (toks "42" = Lexer.[ INT 42; EOF ]);
  Alcotest.(check bool) "float" true (toks "2.5" = Lexer.[ FLOAT 2.5; EOF ]);
  Alcotest.(check bool) "exponent" true (toks "1.5e2" = Lexer.[ FLOAT 150.0; EOF ])

let test_dotdot_vs_float () =
  (* "0..5" must lex as INT DOTDOT INT, not a float *)
  Alcotest.(check bool) "range" true
    (toks "0..5" = Lexer.[ INT 0; DOTDOT; INT 5; EOF ]);
  Alcotest.(check bool) "float then range" true
    (toks "1.5 .. 2" = Lexer.[ FLOAT 1.5; DOTDOT; INT 2; EOF ])

let test_identifiers () =
  Alcotest.(check bool) "idents" true
    (toks "foo _bar x2" = Lexer.[ IDENT "foo"; IDENT "_bar"; IDENT "x2"; EOF ])

let test_comments () =
  Alcotest.(check bool) "line comment" true
    (toks "a // comment\nb" = Lexer.[ IDENT "a"; IDENT "b"; EOF ]);
  Alcotest.(check bool) "block comment" true
    (toks "a /* multi\nline */ b" = Lexer.[ IDENT "a"; IDENT "b"; EOF ])

let test_line_numbers () =
  let toks_lines = Lexer.tokenize "a\nb\n\nc" in
  let lines = List.map snd toks_lines in
  Alcotest.(check (list int)) "line tracking" [ 1; 2; 4; 4 ] lines

let test_errors () =
  Alcotest.check_raises "bad char" (Lexer.Error "line 1: unexpected character '#'")
    (fun () -> ignore (Lexer.tokenize "#"));
  Alcotest.check_raises "unterminated comment"
    (Lexer.Error "line 1: unterminated comment") (fun () ->
      ignore (Lexer.tokenize "/* never ends"))

let test_punctuation () =
  Alcotest.(check bool) "brackets etc" true
    (toks "( ) { } [ ] , ; : @ = .."
    = Lexer.[ LPAREN; RPAREN; LBRACE; RBRACE; LBRACKET; RBRACKET; COMMA;
              SEMI; COLON; AT; ASSIGN; DOTDOT; EOF ])

let suite =
  [
    Alcotest.test_case "operators" `Quick test_basic_tokens;
    Alcotest.test_case "numbers" `Quick test_numbers;
    Alcotest.test_case "ranges vs floats" `Quick test_dotdot_vs_float;
    Alcotest.test_case "identifiers" `Quick test_identifiers;
    Alcotest.test_case "comments" `Quick test_comments;
    Alcotest.test_case "line numbers" `Quick test_line_numbers;
    Alcotest.test_case "lex errors" `Quick test_errors;
    Alcotest.test_case "punctuation" `Quick test_punctuation;
  ]
