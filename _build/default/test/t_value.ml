open Lang

let test_arith_int () =
  Alcotest.(check bool) "add" true (Value.add (Value.Vint 2) (Value.Vint 3) = Value.Vint 5);
  Alcotest.(check bool) "sub" true (Value.sub (Value.Vint 2) (Value.Vint 3) = Value.Vint (-1));
  Alcotest.(check bool) "mul" true (Value.mul (Value.Vint 4) (Value.Vint 3) = Value.Vint 12);
  Alcotest.(check bool) "div" true (Value.div (Value.Vint 7) (Value.Vint 2) = Value.Vint 3);
  Alcotest.(check bool) "mod" true (Value.modulo (Value.Vint 7) (Value.Vint 2) = Value.Vint 1)

let test_promotion () =
  Alcotest.(check bool) "int+float" true
    (Value.add (Value.Vint 1) (Value.Vfloat 0.5) = Value.Vfloat 1.5);
  Alcotest.(check bool) "float*int" true
    (Value.mul (Value.Vfloat 2.5) (Value.Vint 2) = Value.Vfloat 5.0);
  Alcotest.(check bool) "float div" true
    (Value.div (Value.Vint 1) (Value.Vfloat 4.0) = Value.Vfloat 0.25)

let test_division_by_zero () =
  Alcotest.check_raises "int div" Division_by_zero (fun () ->
      ignore (Value.div (Value.Vint 1) (Value.Vint 0)));
  Alcotest.check_raises "float div" Division_by_zero (fun () ->
      ignore (Value.div (Value.Vfloat 1.0) (Value.Vint 0)));
  Alcotest.check_raises "int mod" Division_by_zero (fun () ->
      ignore (Value.modulo (Value.Vint 1) (Value.Vint 0)))

let test_comparison () =
  Alcotest.(check bool) "cross equal" true
    (Value.equal (Value.Vint 2) (Value.Vfloat 2.0));
  Alcotest.(check bool) "less" true
    (Value.compare_num (Value.Vint 1) (Value.Vfloat 1.5) < 0);
  Alcotest.(check bool) "greater" true
    (Value.compare_num (Value.Vfloat 3.0) (Value.Vint 2) > 0)

let test_bool_conversion () =
  Alcotest.(check bool) "0 is false" false (Value.to_bool (Value.Vint 0));
  Alcotest.(check bool) "0.0 is false" false (Value.to_bool (Value.Vfloat 0.0));
  Alcotest.(check bool) "1 is true" true (Value.to_bool (Value.Vint 1));
  Alcotest.(check bool) "of_bool" true (Value.of_bool true = Value.Vint 1)

let test_truncation () =
  Alcotest.(check int) "to_int truncates" 3 (Value.to_int (Value.Vfloat 3.9));
  Alcotest.(check int) "negative trunc toward zero" (-3)
    (Value.to_int (Value.Vfloat (-3.9)))

let test_neg_and_print () =
  Alcotest.(check bool) "neg int" true (Value.neg (Value.Vint 5) = Value.Vint (-5));
  Alcotest.(check string) "print int" "42" (Value.to_string (Value.Vint 42));
  Alcotest.(check string) "print float" "2.5" (Value.to_string (Value.Vfloat 2.5))

let suite =
  [
    Alcotest.test_case "integer arithmetic" `Quick test_arith_int;
    Alcotest.test_case "float promotion" `Quick test_promotion;
    Alcotest.test_case "division by zero" `Quick test_division_by_zero;
    Alcotest.test_case "comparison" `Quick test_comparison;
    Alcotest.test_case "booleans" `Quick test_bool_conversion;
    Alcotest.test_case "truncation" `Quick test_truncation;
    Alcotest.test_case "negation and printing" `Quick test_neg_and_print;
  ]
