open Cico

let jp = { Cost_model.n = 48; p = 2; b = 4; t = 4 }

let test_jacobi_closed_forms () =
  (* 2NPT(1+b)/b + N^2/b with N=48 P=2 b=4 T=4:
     2*48*2*4*(5)/4 = 960; 48^2/4 = 576; total 1536 *)
  Alcotest.(check (float 1e-9)) "cache fits" 1536.0
    (Cost_model.jacobi_blocks_cache_fits jp);
  (* (2NP(1+b)/b + N^2/b) * T = (240 + 576) * 4 = 3264 *)
  Alcotest.(check (float 1e-9)) "column fits" 3264.0
    (Cost_model.jacobi_blocks_column_fits jp);
  Alcotest.(check (float 1e-9)) "boundary per step" 240.0
    (Cost_model.jacobi_boundary_blocks_per_step jp);
  Alcotest.(check (float 1e-9)) "matrix blocks" 576.0
    (Cost_model.jacobi_matrix_blocks jp)

let test_jacobi_per_column () =
  (* N/(bP) = 48/8 = 6; NT/(bP) = 24 *)
  Alcotest.(check (float 1e-9)) "cache fits per column" 6.0
    (Cost_model.jacobi_per_processor_column_checkouts jp ~cache_fits:true);
  Alcotest.(check (float 1e-9)) "column only per column" 24.0
    (Cost_model.jacobi_per_processor_column_checkouts jp ~cache_fits:false)

let test_jacobi_cache_fits_wins () =
  (* the Section 2.1 conclusion: retaining the block saves a factor T *)
  let fits = Cost_model.jacobi_per_processor_column_checkouts jp ~cache_fits:true in
  let spills = Cost_model.jacobi_per_processor_column_checkouts jp ~cache_fits:false in
  Alcotest.(check (float 1e-9)) "factor T apart" (float_of_int jp.Cost_model.t)
    (spills /. fits)

let test_jacobi_validation () =
  Alcotest.check_raises "N not multiple of P"
    (Invalid_argument "Cost_model: N must be a multiple of P") (fun () ->
      ignore (Cost_model.jacobi_blocks_cache_fits { jp with Cost_model.n = 49 }));
  Alcotest.check_raises "non-positive"
    (Invalid_argument "Cost_model: Jacobi parameters must be positive") (fun () ->
      ignore (Cost_model.jacobi_blocks_cache_fits { jp with Cost_model.t = 0 }))

let mp = { Cost_model.mm_n = 32; mm_p = 4 }

let test_matmul_section5 () =
  Alcotest.(check (float 1e-9)) "original N^3" 32768.0
    (Cost_model.matmul_c_checkouts_original mp);
  (* N^2 * P / 2 = 1024 * 4 / 2 = 2048 *)
  Alcotest.(check (float 1e-9)) "restructured N^2 P/2" 2048.0
    (Cost_model.matmul_c_checkouts_restructured mp);
  (* N^2 * P / 4 = 1024 *)
  Alcotest.(check (float 1e-9)) "raced N^2 P/4" 1024.0
    (Cost_model.matmul_c_raced_checkouts_restructured mp);
  (* the paper's point: restructuring reduces check-outs by 2N/P *)
  Alcotest.(check (float 1e-9)) "reduction factor 2N/P" 16.0
    (Cost_model.matmul_c_checkouts_original mp
    /. Cost_model.matmul_c_checkouts_restructured mp)

let test_communication_cycles () =
  let costs = Memsys.Network.default in
  let c =
    Cost_model.communication_cycles ~costs ~check_out_blocks:10
      ~check_in_blocks:10 ~upgrades_avoided:0
  in
  Alcotest.(check int) "check-outs and check-ins"
    ((10 * (costs.Memsys.Network.check_out_overhead + costs.Memsys.Network.miss_2hop))
    + (10 * costs.Memsys.Network.check_in_cost))
    c;
  let saving =
    Cost_model.communication_cycles ~costs ~check_out_blocks:0
      ~check_in_blocks:0 ~upgrades_avoided:5
  in
  Alcotest.(check int) "avoided upgrades are credits"
    (-5 * costs.Memsys.Network.upgrade) saving

let test_measured_checkouts () =
  let s = Memsys.Stats.create ~nodes:2 in
  s.Memsys.Stats.check_outs_x <- 3;
  s.Memsys.Stats.check_outs_s <- 4;
  Alcotest.(check int) "sum of X and S" 7 (Cost_model.measured_checkouts s)

let suite =
  [
    Alcotest.test_case "Jacobi closed forms" `Quick test_jacobi_closed_forms;
    Alcotest.test_case "Jacobi per-column counts" `Quick test_jacobi_per_column;
    Alcotest.test_case "cache-fits wins by factor T" `Quick test_jacobi_cache_fits_wins;
    Alcotest.test_case "Jacobi validation" `Quick test_jacobi_validation;
    Alcotest.test_case "MatMul Section 5 counts" `Quick test_matmul_section5;
    Alcotest.test_case "communication cycles" `Quick test_communication_cycles;
    Alcotest.test_case "measured check-outs" `Quick test_measured_checkouts;
  ]
