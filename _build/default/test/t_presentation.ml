open Lang
module Iset = Trace.Epoch.Iset
module P = Cachier.Presentation

let test_coalesce () =
  Alcotest.(check (list (pair int int))) "runs" [ (1, 3); (5, 5); (7, 9) ]
    (P.coalesce [ 3; 1; 2; 5; 8; 7; 9 ]);
  Alcotest.(check (list (pair int int))) "empty" [] (P.coalesce []);
  Alcotest.(check (list (pair int int))) "duplicates collapse" [ (4, 5) ]
    (P.coalesce [ 4; 5; 4; 5 ])

let test_block_align () =
  Alcotest.(check (list (pair int int))) "aligned out and merged"
    [ (0, 7); (16, 19) ]
    (P.block_align_ranges ~elems_per_block:4 [ (1, 2); (5, 6); (17, 17) ]);
  Alcotest.(check (list (pair int int))) "identity when epb=1" [ (1, 2) ]
    (P.block_align_ranges ~elems_per_block:1 [ (1, 2) ])

let layout () =
  let info = Sema.check (Parser.parse "shared A[16]; shared B[8]; proc main() { }") in
  Label.layout ~block_size:32 ~elem_size:8 info

let test_ranges_for_array () =
  let l = layout () in
  let base_b = Label.base l "B" in
  let addrs = Iset.of_list [ 0; 8; 16; base_b; base_b + 8; 999999 ] in
  Alcotest.(check (list (pair int int))) "A elems" [ (0, 2) ]
    (P.ranges_for_array ~layout:l ~arr:"A" addrs);
  Alcotest.(check (list (pair int int))) "B elems" [ (0, 1) ]
    (P.ranges_for_array ~layout:l ~arr:"B" addrs);
  Alcotest.(check int) "addrs_in_array A" 3
    (Iset.cardinal (P.addrs_in_array ~layout:l ~arr:"A" addrs))

let const_env consts name = List.assoc_opt name consts

let lin ?(consts = []) src = P.linearize ~const_env:(const_env consts) (Parser.parse_expr src)

let test_linearize_basic () =
  (match lin "3 * i + j - 2" with
  | Some aff ->
      Alcotest.(check int) "const" (-2) aff.P.const;
      Alcotest.(check int) "coeff i" 3 (P.coeff_of_var aff "i");
      Alcotest.(check int) "coeff j" 1 (P.coeff_of_var aff "j")
  | None -> Alcotest.fail "should linearize");
  match lin ~consts:[ ("N", Value.Vint 8) ] "i * N + j" with
  | Some aff -> Alcotest.(check int) "N folds into coeff" 8 (P.coeff_of_var aff "i")
  | None -> Alcotest.fail "should linearize with consts"

let test_linearize_cancellation () =
  (* identical opaque atoms cancel: (pid % 4) * 8 - (pid % 4) * 8 = 0 *)
  match lin "(pid % 4) * 8 + j - ((pid % 4) * 8)" with
  | Some aff ->
      Alcotest.(check int) "atom cancelled" 1 (List.length aff.P.terms);
      Alcotest.(check int) "j remains" 1 (P.coeff_of_var aff "j")
  | None -> Alcotest.fail "should linearize"

let test_linearize_atoms () =
  (match lin "i * j" with
  | Some aff ->
      (* whole product is one opaque atom *)
      Alcotest.(check int) "single atom" 1 (List.length aff.P.terms)
  | None -> Alcotest.fail "product becomes an atom");
  match lin "2.5" with
  | None -> ()
  | Some _ -> Alcotest.fail "floats are not affine"

let test_affine_to_expr_round_trip () =
  List.iter
    (fun src ->
      match lin src with
      | Some aff ->
          let e = P.affine_to_expr aff in
          (* both must evaluate identically on sample points *)
          let eval expr env =
            Sema.const_eval ~consts:env expr
          in
          List.iter
            (fun (i, j) ->
              let env = [ ("i", Value.Vint i); ("j", Value.Vint j); ("pid", Value.Vint 2) ] in
              Alcotest.(check bool) (src ^ " consistent") true
                (Value.equal (eval (Parser.parse_expr src) env) (eval e env)))
            [ (0, 0); (1, 5); (7, 3) ]
      | None -> Alcotest.fail (src ^ " should linearize"))
    [ "3 * i + j - 2"; "i - j"; "4 - 2 * i" ]

let test_subst_var () =
  let e = Parser.parse_expr "i * 8 + j" in
  let e' = P.subst_var "i" (Parser.parse_expr "lo + 1") e in
  Alcotest.(check string) "substituted" "(lo + 1) * 8 + j" (Pretty.expr_to_string e');
  let e'' = P.subst_var "zz" (Ast.Eint 0) e in
  Alcotest.(check bool) "absent var is no-op" true (e'' = e)

let test_free_vars () =
  Alcotest.(check (list string)) "vars" [ "i"; "j"; "pid" ]
    (P.free_vars (Parser.parse_expr "A[i + pid] * j + min(i, 3)"))

let stmt_of src =
  match (List.hd (Parser.parse src).Ast.procs).Ast.body with
  | s :: _ -> s
  | [] -> Alcotest.fail "no stmt"

let test_array_subscripts () =
  let s = stmt_of "shared C[64]; shared B[64]; proc main() { C[i*8 + j] = C[i*8 + j] + B[k]; }" in
  let subs = P.array_subscripts s ~arr:"C" in
  Alcotest.(check int) "C subscript deduplicated" 1 (List.length subs);
  Alcotest.(check string) "the subscript" "i * 8 + j"
    (Pretty.expr_to_string (List.hd subs));
  Alcotest.(check int) "B subscript" 1 (List.length (P.array_subscripts s ~arr:"B"));
  Alcotest.(check int) "absent array" 0 (List.length (P.array_subscripts s ~arr:"Z"))

let test_write_subscripts () =
  let s = stmt_of "shared C[64]; proc main() { C[i] = C[j] + 1; }" in
  let w = P.array_write_subscripts s ~arr:"C" in
  Alcotest.(check int) "only the store target" 1 (List.length w);
  Alcotest.(check string) "target subscript" "i" (Pretty.expr_to_string (List.hd w));
  let r = stmt_of "shared C[64]; proc main() { x = C[j]; }" in
  Alcotest.(check int) "read has no write subscript" 0
    (List.length (P.array_write_subscripts r ~arr:"C"))

let test_table_stmt () =
  (match P.table_stmt Ast.Check_in ~arr:"A" ~nodes:3
           ~per_node_ranges:(fun n -> if n = 1 then [ (0, 3) ] else [])
   with
  | Some { Ast.node = Ast.Sannot_table { akind = Ast.Check_in; aarr = "A"; aranges }; _ } ->
      Alcotest.(check bool) "node 1 ranges" true (aranges.(1) = [ (0, 3) ])
  | _ -> Alcotest.fail "expected a table");
  Alcotest.(check bool) "all-empty yields None" true
    (P.table_stmt Ast.Check_out_x ~arr:"A" ~nodes:2 ~per_node_ranges:(fun _ -> []) = None)

let suite =
  [
    Alcotest.test_case "coalesce" `Quick test_coalesce;
    Alcotest.test_case "block alignment" `Quick test_block_align;
    Alcotest.test_case "ranges per array" `Quick test_ranges_for_array;
    Alcotest.test_case "linearize basics" `Quick test_linearize_basic;
    Alcotest.test_case "atom cancellation" `Quick test_linearize_cancellation;
    Alcotest.test_case "opaque atoms" `Quick test_linearize_atoms;
    Alcotest.test_case "affine_to_expr" `Quick test_affine_to_expr_round_trip;
    Alcotest.test_case "substitution" `Quick test_subst_var;
    Alcotest.test_case "free variables" `Quick test_free_vars;
    Alcotest.test_case "statement subscripts" `Quick test_array_subscripts;
    Alcotest.test_case "write subscripts" `Quick test_write_subscripts;
    Alcotest.test_case "table construction" `Quick test_table_stmt;
  ]
