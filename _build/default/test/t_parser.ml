open Lang

let parse = Parser.parse

let minimal = "proc main() { x = 1; }"

let test_minimal () =
  let p = parse minimal in
  Alcotest.(check int) "one proc" 1 (List.length p.Ast.procs);
  Alcotest.(check int) "no decls" 0 (List.length p.Ast.decls)

let test_declarations () =
  let p = parse "const N = 4; shared A[N*N]; private B[8]; proc main() { }" in
  match p.Ast.decls with
  | [ Ast.Dconst ("N", Ast.Eint 4); Ast.Dshared ("A", _); Ast.Dprivate ("B", Ast.Eint 8) ] ->
      ()
  | _ -> Alcotest.fail "unexpected declarations"

let test_expression_precedence () =
  let e = Parser.parse_expr "1 + 2 * 3" in
  Alcotest.(check bool) "mul binds tighter" true
    (e = Ast.Ebinop (Ast.Add, Ast.Eint 1, Ast.Ebinop (Ast.Mul, Ast.Eint 2, Ast.Eint 3)));
  let e = Parser.parse_expr "(1 + 2) * 3" in
  Alcotest.(check bool) "parens override" true
    (e = Ast.Ebinop (Ast.Mul, Ast.Ebinop (Ast.Add, Ast.Eint 1, Ast.Eint 2), Ast.Eint 3))

let test_logical_precedence () =
  let e = Parser.parse_expr "a < 1 && b > 2 || c == 3" in
  match e with
  | Ast.Ebinop (Ast.Or, Ast.Ebinop (Ast.And, _, _), Ast.Ebinop (Ast.Eq, _, _)) -> ()
  | _ -> Alcotest.fail "|| should be outermost, && above comparisons"

let test_unary () =
  Alcotest.(check bool) "negation" true
    (Parser.parse_expr "-x" = Ast.Eunop (Ast.Neg, Ast.Evar "x"));
  Alcotest.(check bool) "not" true
    (Parser.parse_expr "!a" = Ast.Eunop (Ast.Not, Ast.Evar "a"));
  Alcotest.(check bool) "double negation" true
    (Parser.parse_expr "--x" = Ast.Eunop (Ast.Neg, Ast.Eunop (Ast.Neg, Ast.Evar "x")))

let test_index_and_call () =
  Alcotest.(check bool) "subscript" true
    (Parser.parse_expr "A[i + 1]"
    = Ast.Eindex ("A", Ast.Ebinop (Ast.Add, Ast.Evar "i", Ast.Eint 1)));
  Alcotest.(check bool) "call" true
    (Parser.parse_expr "min(a, b)" = Ast.Ecall ("min", [ Ast.Evar "a"; Ast.Evar "b" ]))

let first_stmt src =
  match (List.hd (parse src).Ast.procs).Ast.body with
  | s :: _ -> s.Ast.node
  | [] -> Alcotest.fail "no statement"

let test_for_loop () =
  (match first_stmt "proc main() { for i = 0 to 9 { x = i; } }" with
  | Ast.Sfor { var = "i"; from_ = Ast.Eint 0; to_ = Ast.Eint 9; step = Ast.Eint 1; body } ->
      Alcotest.(check int) "body size" 1 (List.length body)
  | _ -> Alcotest.fail "bad for");
  match first_stmt "proc main() { for i = 0 to 9 step 2 { } }" with
  | Ast.Sfor { step = Ast.Eint 2; _ } -> ()
  | _ -> Alcotest.fail "bad step"

let test_if_else_chain () =
  match first_stmt "proc main() { if (a) { x = 1; } else if (b) { x = 2; } else { x = 3; } }" with
  | Ast.Sif (_, [ _ ], [ { Ast.node = Ast.Sif (_, [ _ ], [ _ ]); _ } ]) -> ()
  | _ -> Alcotest.fail "bad if/else-if chain"

let test_statements () =
  (match first_stmt "proc main() { barrier; }" with
  | Ast.Sbarrier -> ()
  | _ -> Alcotest.fail "barrier");
  (match first_stmt "proc main() { lock(3); }" with
  | Ast.Slock (Ast.Eint 3) -> ()
  | _ -> Alcotest.fail "lock");
  (match first_stmt "proc main() { foo(1, 2); }" with
  | Ast.Scall ("foo", [ _; _ ]) -> ()
  | _ -> Alcotest.fail "call stmt");
  (match first_stmt "proc main() { return x + 1; }" with
  | Ast.Sreturn (Some _) -> ()
  | _ -> Alcotest.fail "return");
  match first_stmt "proc main() { print(x, 2); }" with
  | Ast.Sprint [ _; _ ] -> ()
  | _ -> Alcotest.fail "print"

let test_annotations () =
  (match first_stmt "proc main() { check_out_x A[3]; }" with
  | Ast.Sannot (Ast.Check_out_x, { arr = "A"; lo = Ast.Eint 3; hi = Ast.Eint 3 }) -> ()
  | _ -> Alcotest.fail "point annotation");
  (match first_stmt "proc main() { check_in A[i .. i + 3]; }" with
  | Ast.Sannot (Ast.Check_in, { lo = Ast.Evar "i"; hi = _; _ }) -> ()
  | _ -> Alcotest.fail "range annotation");
  match first_stmt "proc main() { prefetch_s A[0]; }" with
  | Ast.Sannot (Ast.Prefetch_s, _) -> ()
  | _ -> Alcotest.fail "prefetch"

let test_annotation_table () =
  match first_stmt "proc main() { check_in A[@0: 1..3, 7..9 @2: 4..6]; }" with
  | Ast.Sannot_table { akind = Ast.Check_in; aarr = "A"; aranges } ->
      Alcotest.(check int) "three rows" 3 (Array.length aranges);
      Alcotest.(check bool) "pid 0 ranges" true (aranges.(0) = [ (1, 3); (7, 9) ]);
      Alcotest.(check bool) "pid 1 empty" true (aranges.(1) = []);
      Alcotest.(check bool) "pid 2 ranges" true (aranges.(2) = [ (4, 6) ])
  | _ -> Alcotest.fail "table annotation"

let test_unique_sids () =
  let p = parse "proc f() { a = 1; } proc main() { f(); if (a) { b = 2; } }" in
  let sids = ref [] in
  Ast.iter_stmts (fun s -> sids := s.Ast.sid :: !sids) p;
  let sorted = List.sort_uniq compare !sids in
  Alcotest.(check int) "all distinct" (List.length !sids) (List.length sorted)

let test_parse_errors () =
  let expect_error src =
    match parse src with
    | exception Parser.Error _ -> ()
    | _ -> Alcotest.fail ("expected syntax error for: " ^ src)
  in
  expect_error "proc main() { x = ; }";
  expect_error "proc main() { for i = 0 { } }";
  expect_error "proc main() { if a { } }";
  expect_error "shared A[; proc main() { }";
  expect_error "proc main() { check_in 3; }"

let test_params () =
  let p = parse "proc f(a, b, c) { return a; } proc main() { }" in
  match p.Ast.procs with
  | [ f; _ ] -> Alcotest.(check (list string)) "params" [ "a"; "b"; "c" ] f.Ast.params
  | _ -> Alcotest.fail "procs"

let suite =
  [
    Alcotest.test_case "minimal program" `Quick test_minimal;
    Alcotest.test_case "declarations" `Quick test_declarations;
    Alcotest.test_case "arithmetic precedence" `Quick test_expression_precedence;
    Alcotest.test_case "logical precedence" `Quick test_logical_precedence;
    Alcotest.test_case "unary operators" `Quick test_unary;
    Alcotest.test_case "index and call" `Quick test_index_and_call;
    Alcotest.test_case "for loops" `Quick test_for_loop;
    Alcotest.test_case "if/else chains" `Quick test_if_else_chain;
    Alcotest.test_case "statement forms" `Quick test_statements;
    Alcotest.test_case "annotations" `Quick test_annotations;
    Alcotest.test_case "annotation tables" `Quick test_annotation_table;
    Alcotest.test_case "unique statement ids" `Quick test_unique_sids;
    Alcotest.test_case "syntax errors" `Quick test_parse_errors;
    Alcotest.test_case "parameters" `Quick test_params;
  ]
