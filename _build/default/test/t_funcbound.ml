(* Section 4.2: Programmer CICO places annotations at the boundaries of
   the procedure that references the locations when an epoch spans
   procedures. *)

let machine = { Wwt.Machine.default with Wwt.Machine.nodes = 2 }

let src =
  {|shared A[32];
proc work() {
  for i = 0 to 15 {
    x = A[pid * 16 + i];
    A[pid * 16 + i] = x + 1.0;
  }
}
proc main() {
  work();
  barrier;
}|}

let plan_with mode =
  let prog = Lang.Parser.parse src in
  let outcome = Wwt.Run.collect_trace ~machine prog in
  let einfo =
    Cachier.Epoch_info.build ~nodes:2 ~block_size:32 outcome.Wwt.Interp.trace
  in
  Cachier.Placement.plan ~program:prog ~layout:outcome.Wwt.Interp.layout
    ~machine ~einfo
    ~options:{ Cachier.Placement.default_options with Cachier.Placement.mode = mode }

let anchors_of plan =
  List.map (fun (e : Cachier.Placement.edit) -> e.Cachier.Placement.anchor)
    plan.Cachier.Placement.edits

let test_programmer_uses_function_boundaries () =
  let plan = plan_with Cachier.Equations.Programmer in
  Alcotest.(check bool) "co anchored at work's beginning" true
    (List.mem (Cachier.Placement.Proc_begin "work") (anchors_of plan));
  Alcotest.(check bool) "ci anchored at work's end" true
    (List.mem (Cachier.Placement.Proc_end "work") (anchors_of plan))

let test_performance_keeps_epoch_boundaries () =
  let plan = plan_with Cachier.Equations.Performance in
  Alcotest.(check bool) "no function-boundary anchors" true
    (not (List.mem (Cachier.Placement.Proc_begin "work") (anchors_of plan)))

let test_annotated_still_runs () =
  let prog = Lang.Parser.parse src in
  let r =
    Cachier.Annotate.annotate_program ~machine
      ~options:{ Cachier.Placement.default_options with
                 Cachier.Placement.mode = Cachier.Equations.Programmer }
      prog
  in
  let base = Wwt.Run.measure ~machine ~annotations:false ~prefetch:false prog in
  let ann =
    Wwt.Run.measure ~machine ~annotations:true ~prefetch:false
      r.Cachier.Annotate.annotated
  in
  Alcotest.(check bool) "same result" true
    (base.Wwt.Interp.shared = ann.Wwt.Interp.shared)

let suite =
  [
    Alcotest.test_case "Programmer mode uses function boundaries" `Quick
      test_programmer_uses_function_boundaries;
    Alcotest.test_case "Performance mode keeps epoch boundaries" `Quick
      test_performance_keeps_epoch_boundaries;
    Alcotest.test_case "annotated program still runs" `Quick
      test_annotated_still_runs;
  ]
