(* Integration tests: the full Cachier pipeline on every benchmark, at
   reduced sizes so the whole suite stays fast. These assert the
   qualitative claims of Section 6:
   - Cachier's annotations never change program results;
   - annotated sharing-heavy programs run faster than unannotated ones;
   - the Cachier version beats the flawed hand version on mp3d. *)

let nodes = 4
let machine = { Wwt.Machine.default with Wwt.Machine.nodes }
let opts = Cachier.Placement.default_options

let small_sources =
  [
    ("matmul", Benchmarks.Matmul.source ~n:16 ~nodes ());
    ("jacobi", Benchmarks.Jacobi.source ~n:16 ~t:2 ~nodes ());
    ("ocean", Benchmarks.Ocean.source ~n:16 ~t:2 ~nodes ());
    ("tomcatv", Benchmarks.Tomcatv.source ~n:12 ~t:2 ~nodes ());
    ("mp3d", Benchmarks.Mp3d.source ~particles:128 ~cells:16 ~t:2 ~nodes ());
    ("barnes", Benchmarks.Barnes.source ~bodies:32 ~t:2 ~nodes ());
  ]

let annotate src =
  Cachier.Annotate.annotate_program ~machine ~options:opts (Lang.Parser.parse src)

let measure ?(annotations = false) prog =
  Wwt.Run.measure ~machine ~annotations ~prefetch:false prog

let test_all_benchmarks_run () =
  List.iter
    (fun (name, src) ->
      let o = measure (Lang.Parser.parse src) in
      Alcotest.(check bool) (name ^ " runs") true (o.Wwt.Interp.time > 0))
    small_sources

let test_all_benchmarks_annotate () =
  List.iter
    (fun (name, src) ->
      let r = annotate src in
      Alcotest.(check bool) (name ^ " gets annotations") true
        (r.Cachier.Annotate.n_edits > 0))
    small_sources

let test_race_free_results_unchanged () =
  (* Jacobi, Tomcatv and Barnes are race-free: annotated and unannotated
     runs must produce bit-identical shared memory. *)
  List.iter
    (fun (name, src) ->
      let prog = Lang.Parser.parse src in
      let base = measure prog in
      let r = annotate src in
      let ann = measure ~annotations:true r.Cachier.Annotate.annotated in
      Alcotest.(check bool) (name ^ " results identical") true
        (base.Wwt.Interp.shared = ann.Wwt.Interp.shared))
    [
      ("jacobi", List.assoc "jacobi" small_sources);
      ("tomcatv", List.assoc "tomcatv" small_sources);
      ("barnes", List.assoc "barnes" small_sources);
    ]

let test_sharing_heavy_benchmarks_improve () =
  (* mp3d has the highest write sharing; Cachier must help it. *)
  let src = Benchmarks.Mp3d.source ~particles:256 ~cells:32 ~t:3 ~nodes () in
  let base = measure (Lang.Parser.parse src) in
  let r = annotate src in
  let ann = measure ~annotations:true r.Cachier.Annotate.annotated in
  Alcotest.(check bool) "mp3d faster with Cachier" true
    (ann.Wwt.Interp.time < base.Wwt.Interp.time)

let test_cachier_beats_hand_on_mp3d () =
  let src = Benchmarks.Mp3d.source ~particles:256 ~cells:32 ~t:3 ~nodes () in
  let hand_src = Benchmarks.Mp3d.hand_source ~particles:256 ~cells:32 ~t:3 ~nodes () in
  let hand = measure ~annotations:true (Lang.Parser.parse hand_src) in
  let r = annotate src in
  let ann = measure ~annotations:true r.Cachier.Annotate.annotated in
  Alcotest.(check bool) "Cachier beats hand" true
    (ann.Wwt.Interp.time < hand.Wwt.Interp.time)

let test_annotations_reduce_traps () =
  let src = Benchmarks.Mp3d.source ~particles:256 ~cells:32 ~t:3 ~nodes () in
  let base = measure (Lang.Parser.parse src) in
  let r = annotate src in
  let ann = measure ~annotations:true r.Cachier.Annotate.annotated in
  Alcotest.(check bool) "fewer software traps" true
    (ann.Wwt.Interp.stats.Memsys.Stats.sw_traps
    <= base.Wwt.Interp.stats.Memsys.Stats.sw_traps)

let test_prefetch_improves_jacobi () =
  let src = Benchmarks.Jacobi.source ~n:16 ~t:3 ~nodes () in
  let r = Cachier.Annotate.annotate_program ~machine
      ~options:{ opts with Cachier.Placement.prefetch = true }
      (Lang.Parser.parse src) in
  let plain = annotate src in
  let t_plain =
    (Wwt.Run.measure ~machine ~annotations:true ~prefetch:false
       plain.Cachier.Annotate.annotated).Wwt.Interp.time
  in
  let t_pf =
    (Wwt.Run.measure ~machine ~annotations:true ~prefetch:true
       r.Cachier.Annotate.annotated).Wwt.Interp.time
  in
  Alcotest.(check bool) "prefetch helps jacobi" true (t_pf < t_plain)

let test_cross_input_stability () =
  (* Section 4.5: annotations from one input work on another. *)
  let src = Benchmarks.Mp3d.source ~particles:128 ~cells:16 ~t:2 ~nodes ~seed:1 () in
  let r = annotate src in
  let other = Benchmarks.Suite.reseed r.Cachier.Annotate.annotated 2 in
  let base2 =
    measure (Benchmarks.Suite.reseed (Lang.Parser.parse src) 2)
  in
  let ann2 = measure ~annotations:true other in
  Alcotest.(check bool) "still faster on a different input" true
    (ann2.Wwt.Interp.time < base2.Wwt.Interp.time)

let test_restructured_matmul_correct () =
  (* Section 5: the restructured version is race-free under locks and must
     equal the sum semantics. *)
  let n = 16 in
  let src = Benchmarks.Matmul.restructured_source ~n ~nodes () in
  let machine = Wwt.Machine.perf_mode ~annotations:true ~prefetch:false machine in
  let o = Wwt.Interp.run ~machine (Lang.Parser.parse src) in
  (* reference product computed in OCaml with the same noise inputs *)
  let a = Array.init (n * n) (fun q -> Wwt.Interp.noise (q + 1000003)) in
  let b = Array.init (n * n) (fun q -> Wwt.Interp.noise (q + 500000 + 1000003)) in
  let expect i j =
    let s = ref 0.0 in
    for k = 0 to n - 1 do
      s := !s +. (a.((i * n) + k) *. b.((k * n) + j))
    done;
    !s
  in
  List.iter
    (fun (i, j) ->
      let got = Lang.Value.to_float (Wwt.Interp.shared_value o "C" ((i * n) + j)) in
      Alcotest.(check (float 1e-9)) (Printf.sprintf "C[%d,%d]" i j) (expect i j) got)
    [ (0, 0); (3, 7); (15, 15); (8, 2) ]

let test_locks_outperform_races_in_message_traffic () =
  (* The restructured version must move fewer C blocks (Section 5). *)
  let n = 16 in
  let base =
    measure (Lang.Parser.parse (Benchmarks.Matmul.source ~n ~nodes ()))
  in
  let restructured =
    Wwt.Run.measure ~machine ~annotations:true ~prefetch:false
      (Lang.Parser.parse (Benchmarks.Matmul.restructured_source ~n ~nodes ()))
  in
  Alcotest.(check bool) "fewer software traps after restructuring" true
    (restructured.Wwt.Interp.stats.Memsys.Stats.sw_traps
    < base.Wwt.Interp.stats.Memsys.Stats.sw_traps)

let test_sharing_profile_ordering () =
  (* Section 6: ocean and mp3d have high sharing, barnes low, tomcatv
     dominated by private computation. *)
  let frac name src =
    let o = measure (Lang.Parser.parse src) in
    ignore name;
    Memsys.Stats.shared_read_fraction o.Wwt.Interp.stats
  in
  let tomcatv = frac "tomcatv" (List.assoc "tomcatv" small_sources) in
  let ocean = frac "ocean" (List.assoc "ocean" small_sources) in
  Alcotest.(check bool) "tomcatv mostly private" true (tomcatv < 0.3);
  Alcotest.(check bool) "ocean mostly shared" true (ocean > 0.7)

let suite =
  [
    Alcotest.test_case "all benchmarks run" `Slow test_all_benchmarks_run;
    Alcotest.test_case "all benchmarks annotate" `Slow test_all_benchmarks_annotate;
    Alcotest.test_case "race-free results unchanged" `Slow
      test_race_free_results_unchanged;
    Alcotest.test_case "mp3d improves" `Slow test_sharing_heavy_benchmarks_improve;
    Alcotest.test_case "Cachier beats hand (mp3d)" `Slow test_cachier_beats_hand_on_mp3d;
    Alcotest.test_case "traps reduced" `Slow test_annotations_reduce_traps;
    Alcotest.test_case "prefetch helps jacobi" `Slow test_prefetch_improves_jacobi;
    Alcotest.test_case "cross-input stability" `Slow test_cross_input_stability;
    Alcotest.test_case "restructured matmul correct" `Slow
      test_restructured_matmul_correct;
    Alcotest.test_case "restructuring cuts traps" `Slow
      test_locks_outperform_races_in_message_traffic;
    Alcotest.test_case "sharing profile" `Slow test_sharing_profile_ordering;
  ]
