let test_default_geometry () =
  let m = Wwt.Machine.default in
  Alcotest.(check int) "4 elems per block" 4 (Wwt.Machine.elems_per_block m);
  Alcotest.(check bool) "annotations off by default" true
    (m.Wwt.Machine.annotations = Wwt.Machine.Ignore_annotations);
  Alcotest.(check bool) "no trace by default" false m.Wwt.Machine.collect_trace

let test_paper_machine () =
  let m = Wwt.Machine.paper in
  Alcotest.(check int) "32 nodes" 32 m.Wwt.Machine.nodes;
  Alcotest.(check int) "256 KB caches" (256 * 1024) m.Wwt.Machine.cache_bytes;
  Alcotest.(check int) "4-way" 4 m.Wwt.Machine.assoc;
  Alcotest.(check int) "32-byte blocks" 32 m.Wwt.Machine.block_size

let test_trace_mode () =
  let m = Wwt.Machine.trace_mode Wwt.Machine.default in
  Alcotest.(check bool) "flush at barriers" true m.Wwt.Machine.flush_at_barrier;
  Alcotest.(check bool) "trace on" true m.Wwt.Machine.collect_trace;
  Alcotest.(check bool) "annotations ignored" true
    (m.Wwt.Machine.annotations = Wwt.Machine.Ignore_annotations)

let test_perf_mode () =
  let m = Wwt.Machine.perf_mode ~annotations:true ~prefetch:true Wwt.Machine.default in
  Alcotest.(check bool) "no flush" false m.Wwt.Machine.flush_at_barrier;
  Alcotest.(check bool) "no trace" false m.Wwt.Machine.collect_trace;
  Alcotest.(check bool) "annotations executed" true
    (m.Wwt.Machine.annotations = Wwt.Machine.Execute_annotations);
  Alcotest.(check bool) "prefetch on" true m.Wwt.Machine.prefetch;
  let m2 = Wwt.Machine.perf_mode ~annotations:false ~prefetch:false Wwt.Machine.default in
  Alcotest.(check bool) "annotations off" true
    (m2.Wwt.Machine.annotations = Wwt.Machine.Ignore_annotations)

let test_run_helpers () =
  let machine = { Wwt.Machine.default with Wwt.Machine.nodes = 2 } in
  let src = "shared A[8]; proc main() { A[pid] = 1; barrier; x = A[0]; }" in
  let tr = Wwt.Run.source_trace ~machine src in
  Alcotest.(check bool) "trace produced" true (tr.Wwt.Interp.trace <> []);
  let pf = Wwt.Run.source_measure ~machine ~annotations:false ~prefetch:false src in
  Alcotest.(check bool) "no trace in measure" true (pf.Wwt.Interp.trace = []);
  Alcotest.(check bool) "time positive" true (pf.Wwt.Interp.time > 0)

let test_collect_trace_strips_annotations () =
  let machine = { Wwt.Machine.default with Wwt.Machine.nodes = 2 } in
  let src = "shared A[8]; proc main() { check_out_x A[0 .. 7]; A[pid] = 1; }" in
  let o = Wwt.Run.source_trace ~machine src in
  Alcotest.(check int) "no directives in the trace run" 0
    o.Wwt.Interp.stats.Memsys.Stats.check_outs_x

let suite =
  [
    Alcotest.test_case "default geometry" `Quick test_default_geometry;
    Alcotest.test_case "paper machine" `Quick test_paper_machine;
    Alcotest.test_case "trace mode" `Quick test_trace_mode;
    Alcotest.test_case "perf mode" `Quick test_perf_mode;
    Alcotest.test_case "run helpers" `Quick test_run_helpers;
    Alcotest.test_case "trace run strips annotations" `Quick
      test_collect_trace_strips_annotations;
  ]
