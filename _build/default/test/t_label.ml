open Lang

let info () =
  Sema.check
    (Parser.parse "shared A[10]; shared B[5]; shared C[1]; proc main() { }")

let layout () = Label.layout ~block_size:32 ~elem_size:8 (info ())

let test_block_alignment () =
  let l = layout () in
  List.iter
    (fun (e : Label.entry) ->
      Alcotest.(check int)
        (e.Label.name ^ " base block aligned")
        0
        (e.Label.base mod 32))
    (Label.entries l)

let test_no_overlap () =
  let l = layout () in
  let ranges =
    List.map
      (fun (e : Label.entry) ->
        (e.Label.base, e.Label.base + (e.Label.elems * e.Label.elem_size) - 1))
      (Label.entries l)
  in
  let rec pairs = function
    | [] -> []
    | x :: rest -> List.map (fun y -> (x, y)) rest @ pairs rest
  in
  List.iter
    (fun ((lo1, hi1), (lo2, hi2)) ->
      Alcotest.(check bool) "disjoint" true (hi1 < lo2 || hi2 < lo1))
    (pairs ranges)

let test_layout_values () =
  let l = layout () in
  Alcotest.(check int) "A at 0" 0 (Label.base l "A");
  (* A: 10 elems * 8 = 80 bytes -> next block boundary 96 *)
  Alcotest.(check int) "B at 96" 96 (Label.base l "B");
  (* B: 5 * 8 = 40 -> 96 + 40 = 136 -> aligned 160 *)
  Alcotest.(check int) "C at 160" 160 (Label.base l "C");
  Alcotest.(check int) "total bytes" 168 (Label.total_bytes l)

let test_addr_of_elem () =
  let l = layout () in
  Alcotest.(check int) "B[2]" (96 + 16) (Label.addr_of_elem l "B" 2);
  Alcotest.check_raises "out of bounds"
    (Invalid_argument "Label.addr_of_elem: B[5] out of bounds (size 5)")
    (fun () -> ignore (Label.addr_of_elem l "B" 5))

let test_elem_of_addr () =
  let l = layout () in
  Alcotest.(check bool) "reverse lookup" true
    (Label.elem_of_addr l 112 = Some ("B", 2));
  Alcotest.(check bool) "gap address" true (Label.elem_of_addr l 85 = None);
  Alcotest.(check bool) "beyond" true (Label.elem_of_addr l 100000 = None);
  (* round-trip over every element *)
  List.iter
    (fun (e : Label.entry) ->
      for i = 0 to e.Label.elems - 1 do
        let addr = Label.addr_of_elem l e.Label.name i in
        if Label.elem_of_addr l addr <> Some (e.Label.name, i) then
          Alcotest.fail "elem_of_addr round trip failed"
      done)
    (Label.entries l)

let test_to_label_records () =
  let l = layout () in
  let recs = Label.to_label_records l in
  Alcotest.(check int) "three records" 3 (List.length recs);
  Alcotest.(check bool) "A record" true (List.mem ("A", 0, 79) recs)

let test_find_and_elems () =
  let l = layout () in
  Alcotest.(check int) "elems of A" 10 (Label.elems l "A");
  Alcotest.(check bool) "unknown array" true (Label.find_array l "Z" = None);
  Alcotest.check_raises "base of unknown" Not_found (fun () ->
      ignore (Label.base l "Z"))

let suite =
  [
    Alcotest.test_case "block alignment" `Quick test_block_alignment;
    Alcotest.test_case "regions disjoint" `Quick test_no_overlap;
    Alcotest.test_case "layout addresses" `Quick test_layout_values;
    Alcotest.test_case "addr_of_elem" `Quick test_addr_of_elem;
    Alcotest.test_case "elem_of_addr" `Quick test_elem_of_addr;
    Alcotest.test_case "label records" `Quick test_to_label_records;
    Alcotest.test_case "find and elems" `Quick test_find_and_elems;
  ]
