(* Tests of the trace-profiling and explanation tooling. *)

let machine = { Wwt.Machine.default with Wwt.Machine.nodes = 4 }

let summary_of src =
  let o = Wwt.Run.source_trace ~machine src in
  Trace.Summary.analyze ~nodes:4 ~labels:[] o.Wwt.Interp.trace

let test_region_totals () =
  (* node 0 writes A (16 elems = 4 blocks -> 4 write misses), everyone
     reads B *)
  let s =
    summary_of
      "shared A[16]; shared B[16]; proc main() { if (pid == 0) { for i = 0 \
       to 15 { A[i] = 1.0; } } barrier; x = B[pid * 4]; }"
  in
  let find name = List.find (fun r -> r.Trace.Summary.rname = name) s.Trace.Summary.totals in
  let a = find "A" and b = find "B" in
  Alcotest.(check int) "A write misses" 4 a.Trace.Summary.write_misses;
  Alcotest.(check int) "A read misses" 0 a.Trace.Summary.read_misses;
  Alcotest.(check int) "A touched by node 0 only" 0b1 a.Trace.Summary.touching_nodes;
  Alcotest.(check int) "B read misses" 4 b.Trace.Summary.read_misses;
  Alcotest.(check int) "B touched by everyone" 0b1111 b.Trace.Summary.touching_nodes

let test_epoch_breakdown () =
  let s =
    summary_of
      "shared A[8]; proc main() { A[pid] = 1.0; barrier; x = A[(pid + 1) % 4]; }"
  in
  Alcotest.(check int) "two epochs" 2 (List.length s.Trace.Summary.epochs);
  let e0 = List.hd s.Trace.Summary.epochs in
  Alcotest.(check bool) "epoch 0 has misses" true (e0.Trace.Summary.total_misses > 0)

let test_handoffs () =
  (* node 0 writes, node 1 reads it next epoch: exactly one handoff 0->1 *)
  let s =
    summary_of
      "shared A[16]; proc main() { if (pid == 0) { A[0] = 1.0; } barrier; \
       if (pid == 1) { x = A[0]; } barrier; }"
  in
  Alcotest.(check int) "handoff 0 -> 1" 1 s.Trace.Summary.handoffs.(0).(1);
  Alcotest.(check int) "no handoff 1 -> 0" 0 s.Trace.Summary.handoffs.(1).(0);
  Alcotest.(check int) "no self handoff" 0 s.Trace.Summary.handoffs.(0).(0)

let test_hottest_region () =
  let s =
    summary_of
      "shared HOT[64]; shared COLD[16]; proc main() { for i = 0 to 15 { \
       HOT[i * 4] = 1.0; } barrier; if (pid == 0) { x = COLD[0]; } }"
  in
  Alcotest.(check (option string)) "hottest" (Some "HOT")
    (Trace.Summary.hottest_region s)

let test_rendering () =
  let s =
    summary_of "shared A[8]; proc main() { A[pid] = 1.0; barrier; }"
  in
  let text = Trace.Summary.to_string s in
  let contains needle =
    let n = String.length needle in
    let rec go i = i + n <= String.length text && (String.sub text i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "mentions regions" true (contains "per-region totals");
  Alcotest.(check bool) "mentions epochs" true (contains "per-epoch profile");
  Alcotest.(check bool) "names A" true (contains "A")

let test_explicit_labels_override () =
  let records =
    [ Trace.Event.Miss { node = 0; pc = 1; addr = 100; kind = Trace.Event.Read_miss; held = [] } ]
  in
  let s =
    Trace.Summary.analyze ~nodes:1 ~labels:[ ("mine", 0, 255) ] records
  in
  Alcotest.(check (option string)) "caller label used" (Some "mine")
    (Trace.Summary.hottest_region s)

(* ---- Explain ---- *)

let einfo_of src =
  let o = Wwt.Run.source_trace ~machine src in
  ( Cachier.Epoch_info.build ~nodes:4 ~block_size:32 o.Wwt.Interp.trace,
    o.Wwt.Interp.layout )

let test_explain_terms_union_to_equations () =
  let einfo, _ =
    einfo_of (Benchmarks.Mp3d.source ~particles:64 ~cells:16 ~t:2 ~nodes:4 ())
  in
  List.iter
    (fun mode ->
      for e = 0 to Cachier.Epoch_info.n_epochs einfo - 1 do
        for node = 0 to 3 do
          let ann = Cachier.Equations.for_epoch mode einfo ~epoch:e ~node in
          let union_of prefix =
            List.fold_left
              (fun acc (label, set) ->
                if String.length label >= String.length prefix
                   && String.sub label 0 (String.length prefix) = prefix
                then Trace.Epoch.Iset.union acc set
                else acc)
              Trace.Epoch.Iset.empty
              (Cachier.Explain.term_sets mode einfo ~epoch:e ~node)
          in
          if not (Trace.Epoch.Iset.equal (union_of "co_x:") ann.Cachier.Equations.co_x)
          then Alcotest.fail "co_x terms do not sum to the equation";
          if not (Trace.Epoch.Iset.equal (union_of "co_s:") ann.Cachier.Equations.co_s)
          then Alcotest.fail "co_s terms do not sum to the equation";
          if not (Trace.Epoch.Iset.equal (union_of "ci:") ann.Cachier.Equations.ci)
          then Alcotest.fail "ci terms do not sum to the equation"
        done
      done)
    [ Cachier.Equations.Programmer; Cachier.Equations.Performance ]

let test_explain_names_racy_array () =
  let einfo, layout =
    einfo_of "shared A[4]; proc main() { A[0] = A[0] + 1.0; }"
  in
  let ex =
    Cachier.Explain.build ~mode:Cachier.Equations.Performance ~layout einfo
  in
  let e0 = List.hd ex.Cachier.Explain.epochs in
  Alcotest.(check (list string)) "racy array named" [ "A" ]
    e0.Cachier.Explain.racy_arrays

let test_explain_renders () =
  let einfo, layout =
    einfo_of (Benchmarks.Jacobi.source ~n:16 ~t:2 ~nodes:4 ())
  in
  let ex = Cachier.Explain.build ~mode:Cachier.Equations.Performance ~layout einfo in
  let text = Cachier.Explain.to_string ex in
  Alcotest.(check bool) "non-trivial rationale" true (String.length text > 200)

let test_explain_quiet_on_clean_program () =
  let einfo, layout = einfo_of "private P[8]; proc main() { P[0] = 1.0; }" in
  let ex = Cachier.Explain.build ~mode:Cachier.Equations.Performance ~layout einfo in
  List.iter
    (fun e ->
      Alcotest.(check bool) "no contributions" true (e.Cachier.Explain.nodes = []))
    ex.Cachier.Explain.epochs

let suite =
  [
    Alcotest.test_case "region totals" `Quick test_region_totals;
    Alcotest.test_case "epoch breakdown" `Quick test_epoch_breakdown;
    Alcotest.test_case "handoff matrix" `Quick test_handoffs;
    Alcotest.test_case "hottest region" `Quick test_hottest_region;
    Alcotest.test_case "rendering" `Quick test_rendering;
    Alcotest.test_case "caller labels" `Quick test_explicit_labels_override;
    Alcotest.test_case "explain terms = equations" `Quick
      test_explain_terms_union_to_equations;
    Alcotest.test_case "explain names racy array" `Quick test_explain_names_racy_array;
    Alcotest.test_case "explain renders" `Quick test_explain_renders;
    Alcotest.test_case "explain quiet when clean" `Quick
      test_explain_quiet_on_clean_program;
  ]
