let test_empty () =
  let q = Wwt.Pqueue.create () in
  Alcotest.(check bool) "is_empty" true (Wwt.Pqueue.is_empty q);
  Alcotest.(check int) "length" 0 (Wwt.Pqueue.length q);
  Alcotest.(check bool) "pop None" true (Wwt.Pqueue.pop q = None);
  Alcotest.(check bool) "peek None" true (Wwt.Pqueue.peek_prio q = None)

let test_ordering () =
  let q = Wwt.Pqueue.create () in
  List.iter (fun (p, v) -> Wwt.Pqueue.push q ~prio:p v)
    [ (5, "e"); (1, "a"); (3, "c"); (2, "b"); (4, "d") ];
  let popped = ref [] in
  let rec drain () =
    match Wwt.Pqueue.pop q with
    | Some (_, v) ->
        popped := v :: !popped;
        drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check (list string)) "min first" [ "a"; "b"; "c"; "d"; "e" ]
    (List.rev !popped)

let test_fifo_ties () =
  let q = Wwt.Pqueue.create () in
  Wwt.Pqueue.push q ~prio:7 "first";
  Wwt.Pqueue.push q ~prio:7 "second";
  Wwt.Pqueue.push q ~prio:7 "third";
  let take () = match Wwt.Pqueue.pop q with Some (_, v) -> v | None -> "?" in
  let a = take () in
  let b = take () in
  let c = take () in
  Alcotest.(check (list string)) "insertion order"
    [ "first"; "second"; "third" ] [ a; b; c ]

let test_interleaved () =
  let q = Wwt.Pqueue.create () in
  Wwt.Pqueue.push q ~prio:10 1;
  Wwt.Pqueue.push q ~prio:5 2;
  Alcotest.(check bool) "pop min" true (Wwt.Pqueue.pop q = Some (5, 2));
  Wwt.Pqueue.push q ~prio:1 3;
  Alcotest.(check bool) "new min" true (Wwt.Pqueue.pop q = Some (1, 3));
  Alcotest.(check bool) "remaining" true (Wwt.Pqueue.pop q = Some (10, 1))

let test_large_heap_property () =
  let q = Wwt.Pqueue.create () in
  let n = 2000 in
  (* deterministic pseudo-random insertions *)
  let x = ref 123456789 in
  let next () =
    x := (!x * 1103515245) + 12345;
    !x land 0xFFFF
  in
  for _ = 1 to n do
    let p = next () in
    Wwt.Pqueue.push q ~prio:p p
  done;
  Alcotest.(check int) "length" n (Wwt.Pqueue.length q);
  let rec drain last count =
    match Wwt.Pqueue.pop q with
    | None -> count
    | Some (p, _) ->
        if p < last then Alcotest.fail "heap order violated";
        drain p (count + 1)
  in
  Alcotest.(check int) "drained all" n (drain min_int 0)

let suite =
  [
    Alcotest.test_case "empty queue" `Quick test_empty;
    Alcotest.test_case "priority ordering" `Quick test_ordering;
    Alcotest.test_case "FIFO on ties" `Quick test_fifo_ties;
    Alcotest.test_case "interleaved push/pop" `Quick test_interleaved;
    Alcotest.test_case "large heap order" `Quick test_large_heap_property;
  ]
