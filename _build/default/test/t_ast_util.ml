open Lang

let src = "proc main() { a = 1; if (a) { b = 2; } barrier; c = 3; }"
(* sids: 0=a, 1=if, 2=b, 3=barrier, 4=c *)

let annot () =
  { Ast.sid = -1;
    node = Ast.Sannot (Ast.Check_in, { Ast.arr = "X"; lo = Ast.Eint 0; hi = Ast.Eint 0 }) }

let count_stmts p =
  Ast.fold_stmts (fun n _ -> n + 1) 0 p

let test_stmt_by_sid () =
  let p = Parser.parse src in
  (match Ast_util.stmt_by_sid p 3 with
  | Some { Ast.node = Ast.Sbarrier; _ } -> ()
  | _ -> Alcotest.fail "expected the barrier");
  Alcotest.(check bool) "missing sid" true (Ast_util.stmt_by_sid p 99 = None)

let test_proc_of_sid () =
  let p = Parser.parse "proc f() { x = 1; } proc main() { f(); }" in
  Alcotest.(check bool) "sid 0 in f" true (Ast_util.proc_of_sid p 0 = Some "f");
  Alcotest.(check bool) "sid 1 in main" true (Ast_util.proc_of_sid p 1 = Some "main")

let test_insert_before_nested () =
  let p = Parser.parse src in
  let p' = Ast_util.insert_before p ~sid:2 [ annot () ] in
  Alcotest.(check int) "one more statement" (count_stmts p + 1) (count_stmts p');
  (* the annotation landed inside the if's then-block, before sid 2 *)
  match Ast_util.stmt_by_sid p' 1 with
  | Some { Ast.node = Ast.Sif (_, [ a; b ], _); _ } ->
      Alcotest.(check bool) "annotation first" true (Ast.is_annotation a);
      Alcotest.(check int) "original second" 2 b.Ast.sid
  | _ -> Alcotest.fail "if structure lost"

let test_insert_after () =
  let p = Parser.parse src in
  let p' = Ast_util.insert_after p ~sid:0 [ annot (); annot () ] in
  match (List.hd p'.Ast.procs).Ast.body with
  | s0 :: a1 :: a2 :: _ ->
      Alcotest.(check int) "original first" 0 s0.Ast.sid;
      Alcotest.(check bool) "both annotations follow" true
        (Ast.is_annotation a1 && Ast.is_annotation a2)
  | _ -> Alcotest.fail "insertion failed"

let test_prepend_append () =
  let p = Parser.parse src in
  let p' = Ast_util.prepend_to_proc p ~proc:"main" [ annot () ] in
  let p' = Ast_util.append_to_proc p' ~proc:"main" [ annot () ] in
  let body = (List.hd p'.Ast.procs).Ast.body in
  Alcotest.(check bool) "first is annotation" true (Ast.is_annotation (List.hd body));
  Alcotest.(check bool) "last is annotation" true
    (Ast.is_annotation (List.nth body (List.length body - 1)))

let test_insert_missing_sid () =
  let p = Parser.parse src in
  let p' = Ast_util.insert_before p ~sid:42 [ annot () ] in
  Alcotest.(check int) "unchanged" (count_stmts p) (count_stmts p')

let test_barrier_sids () =
  let p = Parser.parse "proc main() { barrier; a = 1; barrier; }" in
  Alcotest.(check (list int)) "both barriers" [ 0; 2 ] (Ast_util.barrier_sids p)

let test_set_const () =
  let p = Parser.parse "const SEED = 1; const N = 2; proc main() { }" in
  let p' = Ast_util.set_const p "SEED" 99 in
  (match p'.Ast.decls with
  | [ Ast.Dconst ("SEED", Ast.Eint 99); Ast.Dconst ("N", Ast.Eint 2) ] -> ()
  | _ -> Alcotest.fail "seed not replaced");
  let p'' = Ast_util.set_const p "MISSING" 1 in
  Alcotest.(check bool) "missing name unchanged" true (p'' = p)

let test_strip_annotations () =
  let p =
    Parser.parse
      "shared A[4]; proc main() { check_out_x A[0]; a = 1; check_in A[0]; }"
  in
  Alcotest.(check int) "two annotations" 2 (Ast.count_annotations p);
  let p' = Ast.strip_annotations p in
  Alcotest.(check int) "stripped" 0 (Ast.count_annotations p');
  Alcotest.(check int) "one statement left" 1 (count_stmts p')

let test_renumber () =
  let p = Parser.parse src in
  let p' = Ast_util.insert_before p ~sid:2 [ annot () ] in
  let p'' = Ast.renumber p' in
  let sids = ref [] in
  Ast.iter_stmts (fun s -> sids := s.Ast.sid :: !sids) p'';
  let sorted = List.sort compare !sids in
  Alcotest.(check (list int)) "consecutive from zero" [ 0; 1; 2; 3; 4; 5 ] sorted

let test_max_sid () =
  let p = Parser.parse src in
  Alcotest.(check int) "max sid" 4 (Ast.max_sid p)

let suite =
  [
    Alcotest.test_case "stmt_by_sid" `Quick test_stmt_by_sid;
    Alcotest.test_case "proc_of_sid" `Quick test_proc_of_sid;
    Alcotest.test_case "insert_before nested" `Quick test_insert_before_nested;
    Alcotest.test_case "insert_after multiple" `Quick test_insert_after;
    Alcotest.test_case "prepend/append to proc" `Quick test_prepend_append;
    Alcotest.test_case "insert at missing sid" `Quick test_insert_missing_sid;
    Alcotest.test_case "barrier_sids" `Quick test_barrier_sids;
    Alcotest.test_case "set_const" `Quick test_set_const;
    Alcotest.test_case "strip_annotations" `Quick test_strip_annotations;
    Alcotest.test_case "renumber" `Quick test_renumber;
    Alcotest.test_case "max_sid" `Quick test_max_sid;
  ]
