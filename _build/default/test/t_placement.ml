open Lang

let machine = { Wwt.Machine.default with Wwt.Machine.nodes = 2 }

let annot kind arr lo hi =
  { Ast.sid = -1;
    node = Ast.Sannot (kind, { Ast.arr; lo = Ast.Eint lo; hi = Ast.Eint hi }) }

let test_apply_edits_positions () =
  let p = Parser.parse "shared A[8]; proc main() { a = 1; for i = 0 to 3 { b = i; } c = 2; }" in
  (* sids: 0=a, 1=for, 2=b, 3=c *)
  let edits =
    [
      { Cachier.Placement.anchor = Cachier.Placement.Before 0;
        stmt = annot Ast.Check_out_x "A" 0 0 };
      { Cachier.Placement.anchor = Cachier.Placement.After 3;
        stmt = annot Ast.Check_in "A" 0 0 };
      { Cachier.Placement.anchor = Cachier.Placement.Loop_begin 1;
        stmt = annot Ast.Check_out_s "A" 1 1 };
      { Cachier.Placement.anchor = Cachier.Placement.Loop_end 1;
        stmt = annot Ast.Check_in "A" 1 1 };
      { Cachier.Placement.anchor = Cachier.Placement.Proc_begin "main";
        stmt = annot Ast.Prefetch_s "A" 2 2 };
      { Cachier.Placement.anchor = Cachier.Placement.Proc_end "main";
        stmt = annot Ast.Check_in "A" 2 2 };
    ]
  in
  let p' = Cachier.Placement.apply_edits p edits in
  let body = (List.hd p'.Ast.procs).Ast.body in
  (* expected order: prefetch(proc begin), co_x(before 0), a, for, c,
     ci(after 3), ci(proc end) *)
  Alcotest.(check int) "body grew" 7 (List.length body);
  (match (List.hd body).Ast.node with
  | Ast.Sannot (Ast.Prefetch_s, _) -> ()
  | _ -> Alcotest.fail "proc_begin first");
  (match (List.nth body 1).Ast.node with
  | Ast.Sannot (Ast.Check_out_x, _) -> ()
  | _ -> Alcotest.fail "before-0 second");
  (match List.rev body with
  | { Ast.node = Ast.Sannot (Ast.Check_in, { lo = Ast.Eint 2; _ }); _ } :: _ -> ()
  | _ -> Alcotest.fail "proc_end last");
  (* loop body wrapped *)
  match Ast_util.stmt_by_sid p' 1 with
  | Some { Ast.node = Ast.Sfor { body = lb; _ }; _ } ->
      Alcotest.(check int) "loop body has 3 stmts" 3 (List.length lb);
      (match (List.hd lb).Ast.node with
      | Ast.Sannot (Ast.Check_out_s, _) -> ()
      | _ -> Alcotest.fail "loop_begin first in body");
      (match (List.nth lb 2).Ast.node with
      | Ast.Sannot (Ast.Check_in, _) -> ()
      | _ -> Alcotest.fail "loop_end last in body")
  | _ -> Alcotest.fail "loop missing"

let test_assign_fresh_sids () =
  let p = Parser.parse "proc main() { a = 1; b = 2; }" in
  let p' =
    Cachier.Placement.apply_edits p
      [ { Cachier.Placement.anchor = Cachier.Placement.After 0;
          stmt = { Ast.sid = -1; node = Ast.Sbarrier } } ]
  in
  let p'' = Cachier.Placement.assign_fresh_sids p' in
  let sids = ref [] in
  Ast.iter_stmts (fun s -> sids := s.Ast.sid :: !sids) p'';
  Alcotest.(check bool) "all non-negative" true (List.for_all (fun s -> s >= 0) !sids);
  Alcotest.(check int) "distinct" (List.length !sids)
    (List.length (List.sort_uniq compare !sids));
  (* original sids preserved *)
  Alcotest.(check bool) "sid 0 kept" true (List.mem 0 !sids);
  Alcotest.(check bool) "sid 1 kept" true (List.mem 1 !sids)

let plan_for src =
  let prog = Parser.parse src in
  let outcome = Wwt.Run.collect_trace ~machine prog in
  let einfo =
    Cachier.Epoch_info.build ~nodes:machine.Wwt.Machine.nodes
      ~block_size:machine.Wwt.Machine.block_size outcome.Wwt.Interp.trace
  in
  let plan =
    Cachier.Placement.plan ~program:prog ~layout:outcome.Wwt.Interp.layout
      ~machine ~einfo ~options:Cachier.Placement.default_options
  in
  (prog, plan)

let kind_counts (plan : Cachier.Placement.plan) =
  List.fold_left
    (fun (cox, cos_, ci, pf) { Cachier.Placement.stmt; _ } ->
      match stmt.Ast.node with
      | Ast.Sannot (k, _) | Ast.Sannot_table { akind = k; _ } -> (
          match k with
          | Ast.Check_out_x -> (cox + 1, cos_, ci, pf)
          | Ast.Check_out_s -> (cox, cos_ + 1, ci, pf)
          | Ast.Check_in -> (cox, cos_, ci + 1, pf)
          | Ast.Prefetch_x | Ast.Prefetch_s -> (cox, cos_, ci, pf + 1)
          | Ast.Post_store -> (cox, cos_, ci, pf))
      | _ -> (cox, cos_, ci, pf))
    (0, 0, 0, 0) plan.Cachier.Placement.edits

let test_performance_mode_no_co_s () =
  let _, plan =
    plan_for
      "shared A[16]; proc main() { x = A[pid]; barrier; A[pid + 2] = x; }"
  in
  let _, cos_, _, pf = kind_counts plan in
  Alcotest.(check int) "no co_s in Performance mode" 0 cos_;
  Alcotest.(check int) "no prefetch unless asked" 0 pf

let test_read_then_write_gets_co_x () =
  (* each node reads then writes its own element: a classic write fault *)
  let _, plan =
    plan_for "shared A[16]; proc main() { x = A[pid * 4]; A[pid * 4] = x + 1; }"
  in
  let cox, _, _, _ = kind_counts plan in
  Alcotest.(check bool) "co_x planned" true (cox >= 1)

let test_racy_updates_get_near_access () =
  let prog, plan =
    plan_for
      "shared A[4]; proc main() { for i = 0 to 3 { A[0] = A[0] + 1; } }"
  in
  ignore prog;
  (* the racy A[0] update must be wrapped co_x before / ci after *)
  let has_before = List.exists (fun { Cachier.Placement.anchor; stmt } ->
      match (anchor, stmt.Ast.node) with
      | Cachier.Placement.Before _, Ast.Sannot (Ast.Check_out_x, _) -> true
      | _ -> false) plan.Cachier.Placement.edits in
  let has_after = List.exists (fun { Cachier.Placement.anchor; stmt } ->
      match (anchor, stmt.Ast.node) with
      | Cachier.Placement.After _, Ast.Sannot (Ast.Check_in, _) -> true
      | _ -> false) plan.Cachier.Placement.edits in
  Alcotest.(check bool) "co_x near access" true has_before;
  Alcotest.(check bool) "ci near access" true has_after;
  (* and a data-race note anchored at the statement *)
  Alcotest.(check bool) "race note" true (plan.Cachier.Placement.notes <> [])

let test_no_duplicate_edits () =
  let src = Benchmarks.Ocean.source ~n:16 ~t:3 ~nodes:2 () in
  let _, plan = plan_for src in
  let keys =
    List.map
      (fun { Cachier.Placement.anchor; stmt } ->
        (anchor, Pretty.stmt_to_string stmt))
      plan.Cachier.Placement.edits
  in
  Alcotest.(check int) "edits deduplicated" (List.length keys)
    (List.length (List.sort_uniq compare keys))

let test_epochs_repeat_no_duplication () =
  (* the same static epoch executes 4 times; annotations appear once *)
  let src =
    "shared A[16]; proc main() { for t = 1 to 4 { A[pid * 8] = A[pid * 8] + 1; barrier; } }"
  in
  let _, plan1 = plan_for src in
  let src1 =
    "shared A[16]; proc main() { for t = 1 to 1 { A[pid * 8] = A[pid * 8] + 1; barrier; } }"
  in
  let _, plan2 = plan_for src1 in
  (* 4 iterations should not produce 4x the edits of 1 iteration *)
  Alcotest.(check bool) "no per-iteration duplication" true
    (List.length plan1.Cachier.Placement.edits
    <= List.length plan2.Cachier.Placement.edits + 2)

let test_annotated_program_still_valid () =
  let prog, plan = plan_for (Benchmarks.Matmul.source ~n:8 ~nodes:2 ()) in
  let annotated =
    Cachier.Placement.assign_fresh_sids
      (Cachier.Placement.apply_edits prog plan.Cachier.Placement.edits)
  in
  ignore (Sema.check annotated);
  (* and it still parses after pretty-printing *)
  ignore (Parser.parse (Pretty.program_to_string annotated))

let suite =
  [
    Alcotest.test_case "apply_edits positions" `Quick test_apply_edits_positions;
    Alcotest.test_case "assign_fresh_sids" `Quick test_assign_fresh_sids;
    Alcotest.test_case "Performance mode has no co_s" `Quick
      test_performance_mode_no_co_s;
    Alcotest.test_case "read-then-write gets co_x" `Quick test_read_then_write_gets_co_x;
    Alcotest.test_case "racy updates annotated near access" `Quick
      test_racy_updates_get_near_access;
    Alcotest.test_case "no duplicate edits" `Quick test_no_duplicate_edits;
    Alcotest.test_case "repeated epochs not duplicated" `Quick
      test_epochs_repeat_no_duplication;
    Alcotest.test_case "annotated program is valid" `Quick
      test_annotated_program_still_valid;
  ]
