(* Second round of interpreter edge cases. *)

open Lang

let machine ?(nodes = 2) () = { Wwt.Machine.default with Wwt.Machine.nodes }

let run ?(nodes = 2) ?(annotations = false) ?(prefetch = false) src =
  Wwt.Interp.run
    ~machine:(Wwt.Machine.perf_mode ~annotations ~prefetch (machine ~nodes ()))
    (Parser.parse src)

let vint = function Value.Vint i -> i | Value.Vfloat f -> int_of_float f

let test_annotation_range_clamped () =
  (* out-of-bounds annotation ranges are clamped, not errors: annotations
     must never change whether a program runs; annotations execute on
     every node, so counts scale with the node count (2 here) *)
  let o = run ~annotations:true
    "shared A[8]; proc main() { check_out_x A[0 - 5 .. 100]; check_in A[50 .. 60]; A[pid] = 1.0; }" in
  Alcotest.(check int) "clamped to the array's two blocks, per node" 4
    o.Wwt.Interp.stats.Memsys.Stats.check_outs_x;
  (* fully out-of-range check-in touches nothing *)
  Alcotest.(check int) "empty range after clamping" 0
    o.Wwt.Interp.stats.Memsys.Stats.check_ins

let test_annotation_reversed_range_empty () =
  let o = run ~annotations:true
    "shared A[8]; proc main() { check_in A[5 .. 2]; x = 1; }" in
  Alcotest.(check int) "hi < lo is empty" 0 o.Wwt.Interp.stats.Memsys.Stats.check_ins

let test_table_with_fewer_rows_than_nodes () =
  (* nodes beyond the table's rows execute nothing *)
  let o = run ~nodes:2 ~annotations:true
    "shared A[8]; proc main() { check_in A[@0: 0..3]; A[pid] = 1.0; }" in
  Alcotest.(check int) "only node 0's row runs" 1
    o.Wwt.Interp.stats.Memsys.Stats.check_ins

let test_sin_cos_intrinsics () =
  let o = run "shared A[4]; proc main() { if (pid == 0) { A[0] = sin(0.0); A[1] = cos(0.0); } }" in
  Alcotest.(check bool) "sin 0" true
    (Wwt.Interp.shared_value o "A" 0 = Value.Vfloat 0.0);
  Alcotest.(check bool) "cos 0" true
    (Wwt.Interp.shared_value o "A" 1 = Value.Vfloat 1.0)

let test_nested_procedure_frames () =
  (* callee locals must not clobber the caller's *)
  let o = run
    {|shared A[4];
proc inner(x) { x = x * 10; return x; }
proc outer(x) { y = inner(x + 1); return x + y; }
proc main() { if (pid == 0) { A[0] = outer(3); } }|} in
  (* outer: x=3, y=inner(4)=40, result 43 *)
  Alcotest.(check int) "frames isolated" 43 (vint (Wwt.Interp.shared_value o "A" 0))

let test_mutual_recursion () =
  let o = run
    {|shared A[4];
proc is_even(n) { if (n == 0) { return 1; } return is_odd(n - 1); }
proc is_odd(n) { if (n == 0) { return 0; } return is_even(n - 1); }
proc main() { if (pid == 0) { A[0] = is_even(10); A[1] = is_even(7); } }|} in
  Alcotest.(check int) "even 10" 1 (vint (Wwt.Interp.shared_value o "A" 0));
  Alcotest.(check int) "even 7" 0 (vint (Wwt.Interp.shared_value o "A" 1))

let test_barriers_inside_procedures () =
  let o = run ~nodes:2
    {|shared A[4];
proc phase() { A[pid] = A[pid] + 1.0; barrier; }
proc main() { for i = 1 to 3 { phase(); } }|} in
  Alcotest.(check int) "three barriers" 3 o.Wwt.Interp.stats.Memsys.Stats.barriers;
  Alcotest.(check int) "value accumulated" 3 (vint (Wwt.Interp.shared_value o "A" 0))

let test_float_loop_bounds () =
  let o = run
    "shared A[4]; proc main() { if (pid == 0) { s = 0.0; for x = 0.5 to 2.5 step 0.5 { s = s + x; } A[0] = s; } }" in
  (* 0.5 + 1.0 + 1.5 + 2.0 + 2.5 = 7.5 *)
  Alcotest.(check (float 1e-9)) "float induction" 7.5
    (Value.to_float (Wwt.Interp.shared_value o "A" 0))

let test_shadowing_param_assignment () =
  let o = run
    {|shared A[4];
proc f(n) { n = n + 1; return n; }
proc main() { if (pid == 0) { m = 5; A[0] = f(m); A[1] = m; } }|} in
  Alcotest.(check int) "param is by value" 6 (vint (Wwt.Interp.shared_value o "A" 0));
  Alcotest.(check int) "caller unchanged" 5 (vint (Wwt.Interp.shared_value o "A" 1))

let test_time_monotone_in_work () =
  let t work =
    (run (Printf.sprintf
            "shared A[4]; proc main() { s = 0; for i = 1 to %d { s = s + i; } A[pid] = s; }"
            work)).Wwt.Interp.time
  in
  Alcotest.(check bool) "more work, more cycles" true (t 1000 > t 10)

let test_lock_heavy_contention () =
  let o = run ~nodes:8
    "shared C[4]; proc main() { for i = 1 to 20 { lock(0); C[0] = C[0] + 1; unlock(0); } }" in
  Alcotest.(check int) "all increments serialized" 160
    (vint (Wwt.Interp.shared_value o "C" 0))

let test_compiled_engine_same_edge_cases () =
  (* the same edge programs through the compiled engine *)
  List.iter
    (fun src ->
      let prog = Parser.parse src in
      let m = Wwt.Machine.perf_mode ~annotations:true ~prefetch:false (machine ()) in
      let a = Wwt.Interp.run ~machine:m prog in
      let b = Wwt.Compile.run ~machine:m prog in
      Alcotest.(check int) "time" a.Wwt.Interp.time b.Wwt.Interp.time;
      Alcotest.(check bool) "memory" true (a.Wwt.Interp.shared = b.Wwt.Interp.shared))
    [
      "shared A[8]; proc main() { check_out_x A[0 - 5 .. 100]; A[pid] = 1.0; }";
      "shared A[8]; proc main() { check_in A[@0: 0..3]; A[pid] = 1.0; }";
      "shared A[4]; proc main() { if (pid == 0) { s = 0.0; for x = 0.5 to 2.5 step 0.5 { s = s + x; } A[0] = s; } }";
    ]

let suite =
  [
    Alcotest.test_case "annotation ranges clamped" `Quick test_annotation_range_clamped;
    Alcotest.test_case "reversed range empty" `Quick test_annotation_reversed_range_empty;
    Alcotest.test_case "short tables" `Quick test_table_with_fewer_rows_than_nodes;
    Alcotest.test_case "sin/cos" `Quick test_sin_cos_intrinsics;
    Alcotest.test_case "nested frames" `Quick test_nested_procedure_frames;
    Alcotest.test_case "mutual recursion" `Quick test_mutual_recursion;
    Alcotest.test_case "barriers in procedures" `Quick test_barriers_inside_procedures;
    Alcotest.test_case "float loop bounds" `Quick test_float_loop_bounds;
    Alcotest.test_case "by-value parameters" `Quick test_shadowing_param_assignment;
    Alcotest.test_case "time monotone in work" `Quick test_time_monotone_in_work;
    Alcotest.test_case "lock-heavy contention" `Quick test_lock_heavy_contention;
    Alcotest.test_case "compiled engine edge cases" `Quick
      test_compiled_engine_same_edge_cases;
  ]
