open Memsys

let test_initial_idle () =
  let d = Directory.create ~nodes:4 in
  Alcotest.(check bool) "unreferenced block is Idle" true
    (Directory.get d 42 = Directory.Idle);
  Alcotest.(check int) "no sharers" 0 (Directory.sharer_count d 42)

let test_add_remove_sharers () =
  let d = Directory.create ~nodes:4 in
  Directory.add_sharer d 7 ~node:1;
  Directory.add_sharer d 7 ~node:3;
  Alcotest.(check (list int)) "sharers sorted" [ 1; 3 ] (Directory.sharers d 7);
  Alcotest.(check int) "count" 2 (Directory.sharer_count d 7);
  Alcotest.(check bool) "is sharer" true (Directory.is_sharer d 7 ~node:3);
  Alcotest.(check bool) "not sharer" false (Directory.is_sharer d 7 ~node:0);
  Directory.remove_sharer d 7 ~node:1;
  Alcotest.(check (list int)) "one left" [ 3 ] (Directory.sharers d 7);
  Directory.remove_sharer d 7 ~node:3;
  Alcotest.(check bool) "back to Idle" true (Directory.get d 7 = Directory.Idle)

let test_exclusive () =
  let d = Directory.create ~nodes:4 in
  Directory.set d 9 (Directory.Exclusive 2);
  Alcotest.(check bool) "exclusive" true (Directory.get d 9 = Directory.Exclusive 2);
  Alcotest.(check (list int)) "no sharers while exclusive" [] (Directory.sharers d 9);
  Alcotest.check_raises "add_sharer on exclusive"
    (Invalid_argument "Directory.add_sharer: block is held exclusive")
    (fun () -> Directory.add_sharer d 9 ~node:1)

let test_set_normalises () =
  let d = Directory.create ~nodes:4 in
  Directory.set d 5 (Directory.Shared 0);
  Alcotest.(check bool) "Shared 0 is Idle" true (Directory.get d 5 = Directory.Idle);
  Directory.set d 5 (Directory.Shared 0b1010);
  Directory.set d 5 Directory.Idle;
  Alcotest.(check bool) "Idle clears" true (Directory.get d 5 = Directory.Idle);
  Alcotest.(check bool) "entries empty" true (Directory.entries d = [])

let test_entries () =
  let d = Directory.create ~nodes:4 in
  Directory.add_sharer d 1 ~node:0;
  Directory.set d 2 (Directory.Exclusive 3);
  Alcotest.(check int) "two entries" 2 (List.length (Directory.entries d))

let test_bounds () =
  Alcotest.check_raises "too many nodes"
    (Invalid_argument "Directory.create: nodes must be in [1, 62]") (fun () ->
      ignore (Directory.create ~nodes:63));
  let d = Directory.create ~nodes:2 in
  Alcotest.check_raises "node out of range"
    (Invalid_argument "Directory: node out of range") (fun () ->
      Directory.add_sharer d 0 ~node:2)

let test_popcount () =
  Alcotest.(check int) "popcount 0" 0 (Directory.popcount 0);
  Alcotest.(check int) "popcount 0b1011" 3 (Directory.popcount 0b1011);
  Alcotest.(check int) "popcount max" 62 (Directory.popcount ((1 lsl 62) - 1))

let suite =
  [
    Alcotest.test_case "initially idle" `Quick test_initial_idle;
    Alcotest.test_case "add/remove sharers" `Quick test_add_remove_sharers;
    Alcotest.test_case "exclusive state" `Quick test_exclusive;
    Alcotest.test_case "set normalises" `Quick test_set_normalises;
    Alcotest.test_case "entries" `Quick test_entries;
    Alcotest.test_case "bounds checks" `Quick test_bounds;
    Alcotest.test_case "popcount" `Quick test_popcount;
  ]
