open Lang

let proc_of src = List.hd (Parser.parse src).Ast.procs

let test_straight_line () =
  (* sids: 0 and 1 *)
  let cfg = Cfg.build (proc_of "proc main() { a = 1; b = 2; }") in
  Alcotest.(check (list int)) "entry to first" [ 0 ] (Cfg.successors cfg Cfg.entry);
  Alcotest.(check (list int)) "first to second" [ 1 ] (Cfg.successors cfg 0);
  Alcotest.(check (list int)) "second to exit" [ Cfg.exit_node ] (Cfg.successors cfg 1);
  Alcotest.(check (list int)) "preds of exit" [ 1 ] (Cfg.predecessors cfg Cfg.exit_node)

let test_if_branches () =
  (* sid 0 = if, 1 = then, 2 = else, 3 = after *)
  let cfg =
    Cfg.build (proc_of "proc main() { if (x) { a = 1; } else { b = 2; } c = 3; }")
  in
  let succs = List.sort compare (Cfg.successors cfg 0) in
  Alcotest.(check (list int)) "if branches to both arms" [ 1; 2 ] succs;
  Alcotest.(check (list int)) "then falls through" [ 3 ] (Cfg.successors cfg 1);
  Alcotest.(check (list int)) "else falls through" [ 3 ] (Cfg.successors cfg 2)

let test_if_no_else () =
  (* sid 0 = if, 1 = then, 2 = after *)
  let cfg = Cfg.build (proc_of "proc main() { if (x) { a = 1; } c = 3; }") in
  let succs = List.sort compare (Cfg.successors cfg 0) in
  Alcotest.(check (list int)) "if branches to then and after" [ 1; 2 ] succs

let test_loop_back_edge () =
  (* sid 0 = for, 1 = body, 2 = after *)
  let cfg = Cfg.build (proc_of "proc main() { for i = 0 to 3 { a = i; } b = 1; }") in
  let succs = List.sort compare (Cfg.successors cfg 0) in
  Alcotest.(check (list int)) "header to body and exit" [ 1; 2 ] succs;
  Alcotest.(check (list int)) "body back to header" [ 0 ] (Cfg.successors cfg 1)

let test_while_back_edge () =
  let cfg = Cfg.build (proc_of "proc main() { while (x) { x = x - 1; } }") in
  Alcotest.(check (list int)) "body back to header" [ 0 ] (Cfg.successors cfg 1)

let test_return_to_exit () =
  (* sid 0 = return, 1 = dead code *)
  let cfg = Cfg.build (proc_of "proc main() { return; a = 1; }") in
  Alcotest.(check (list int)) "return to exit" [ Cfg.exit_node ] (Cfg.successors cfg 0);
  Alcotest.(check (list int)) "dead statement" [ 1 ] (Cfg.unreachable_sids cfg)

let test_reachable () =
  let cfg = Cfg.build (proc_of "proc main() { a = 1; if (a) { return; } b = 2; }") in
  Alcotest.(check (list int)) "nothing unreachable" [] (Cfg.unreachable_sids cfg);
  let reach = Cfg.reachable cfg in
  Alcotest.(check bool) "exit reachable" true (List.mem Cfg.exit_node reach)

let test_nodes () =
  let cfg = Cfg.build (proc_of "proc main() { a = 1; b = 2; }") in
  Alcotest.(check (list int)) "all nodes" [ Cfg.exit_node; Cfg.entry; 0; 1 ]
    (Cfg.nodes cfg)

let test_empty_proc () =
  let cfg = Cfg.build (proc_of "proc main() { }") in
  Alcotest.(check (list int)) "entry straight to exit" [ Cfg.exit_node ]
    (Cfg.successors cfg Cfg.entry)

let suite =
  [
    Alcotest.test_case "straight line" `Quick test_straight_line;
    Alcotest.test_case "if branches" `Quick test_if_branches;
    Alcotest.test_case "if without else" `Quick test_if_no_else;
    Alcotest.test_case "for back edge" `Quick test_loop_back_edge;
    Alcotest.test_case "while back edge" `Quick test_while_back_edge;
    Alcotest.test_case "return to exit" `Quick test_return_to_exit;
    Alcotest.test_case "reachability" `Quick test_reachable;
    Alcotest.test_case "node enumeration" `Quick test_nodes;
    Alcotest.test_case "empty procedure" `Quick test_empty_proc;
  ]
