(* Targeted tests of the placement strategies (Section 4.2's cascade and
   the refinements documented in DESIGN.md). *)

open Lang

let plan_with ?(machine = { Wwt.Machine.default with Wwt.Machine.nodes = 4 })
    ?(options = Cachier.Placement.default_options) src =
  let prog = Parser.parse src in
  let outcome = Wwt.Run.collect_trace ~machine prog in
  let einfo =
    Cachier.Epoch_info.build ~nodes:machine.Wwt.Machine.nodes
      ~block_size:machine.Wwt.Machine.block_size outcome.Wwt.Interp.trace
  in
  Cachier.Placement.plan ~program:prog ~layout:outcome.Wwt.Interp.layout
    ~machine ~einfo ~options

let edits_matching plan pred =
  List.filter
    (fun ({ Cachier.Placement.anchor; stmt } : Cachier.Placement.edit) ->
      pred anchor stmt.Ast.node)
    plan.Cachier.Placement.edits

let test_ci_never_inside_loops () =
  (* a single-writer clear loop: the check-in must sit at the epoch
     boundary, never inside the loop where it would flush hot data *)
  let src =
    "const NB = 64; shared A[NB]; shared B[8]; proc main() { if (pid == 0) \
     { for b = 0 to NB - 1 { A[b] = 0.0; } } barrier; B[pid] = 1.0; }"
  in
  let plan = plan_with src in
  let in_loop =
    edits_matching plan (fun anchor node ->
        match (anchor, node) with
        | (Cachier.Placement.Loop_begin _ | Cachier.Placement.Loop_end _),
          (Ast.Sannot (Ast.Check_in, _) | Ast.Sannot_table { akind = Ast.Check_in; _ })
          -> true
        | _ -> false)
  in
  Alcotest.(check int) "no loop-level check-ins" 0 (List.length in_loop);
  let boundary_ci =
    edits_matching plan (fun anchor node ->
        match (anchor, node) with
        | Cachier.Placement.Before _, Ast.Sannot (Ast.Check_in, _) -> true
        | _ -> false)
  in
  Alcotest.(check bool) "check-in at the closing barrier" true
    (boundary_ci <> [])

let test_budget_drops_oversized_checkouts () =
  (* a tiny cache cannot hold the whole read-then-written array: the co_x
     must be dropped (Performance mode) rather than placed to thrash *)
  let tiny =
    { Wwt.Machine.default with Wwt.Machine.nodes = 2; cache_bytes = 512 }
  in
  let src =
    "const N = 512; shared A[N]; proc main() { for i = 0 to N/2 - 1 { x = \
     A[pid * (N/2) + i]; A[pid * (N/2) + i] = x + 1.0; } }"
  in
  let plan = plan_with ~machine:tiny src in
  let co =
    edits_matching plan (fun _ node ->
        match node with
        | Ast.Sannot (Ast.Check_out_x, _)
        | Ast.Sannot_table { akind = Ast.Check_out_x; _ } ->
            true
        | _ -> false)
  in
  Alcotest.(check int) "oversized check-out dropped" 0 (List.length co)

let test_programmer_mode_keeps_oversized_per_access () =
  let tiny =
    { Wwt.Machine.default with Wwt.Machine.nodes = 2; cache_bytes = 512 }
  in
  let src =
    "const N = 512; shared A[N]; proc main() { for i = 0 to N/2 - 1 { x = \
     A[pid * (N/2) + i]; A[pid * (N/2) + i] = x + 1.0; } }"
  in
  let options =
    { Cachier.Placement.default_options with
      Cachier.Placement.mode = Cachier.Equations.Programmer }
  in
  let plan = plan_with ~machine:tiny ~options src in
  (* Programmer CICO exposes the communication even when the cache cannot
     hold it: the "cache too small" case of Section 2.1 *)
  let near =
    edits_matching plan (fun anchor node ->
        match (anchor, node) with
        | Cachier.Placement.Before _,
          Ast.Sannot ((Ast.Check_out_x | Ast.Check_out_s), _) -> true
        | _ -> false)
  in
  Alcotest.(check bool) "per-access check-outs survive" true (near <> [])

let test_affine_hoisting_to_epoch_start () =
  (* the whole slice fits: co_x hoists to one range at the epoch start *)
  let src =
    "const N = 64; shared A[N]; proc main() { for i = 0 to N/nprocs - 1 { x \
     = A[pid * (N/nprocs) + i]; A[pid * (N/nprocs) + i] = x + 1.0; } }"
  in
  let plan = plan_with src in
  let hoisted =
    edits_matching plan (fun anchor node ->
        match (anchor, node) with
        | Cachier.Placement.Proc_begin _, Ast.Sannot (Ast.Check_out_x, _) -> true
        | _ -> false)
  in
  Alcotest.(check bool) "range hoisted to program start" true (hoisted <> [])

let test_tables_are_block_aligned () =
  (* scattered single-element accesses coalesce into block-aligned table
     ranges *)
  let src =
    "const N = 64; shared A[N]; proc main() { if (pid == 0) { x = A[1]; \
     A[1] = x + 1.0; y = A[2]; A[2] = y + 1.0; } barrier; if (pid == 1) { \
     A[1] = 0.0; } }"
  in
  let plan = plan_with src in
  let tables =
    List.filter_map
      (fun ({ Cachier.Placement.stmt; _ } : Cachier.Placement.edit) ->
        match stmt.Ast.node with
        | Ast.Sannot_table { aranges; _ } -> Some aranges
        | _ -> None)
      plan.Cachier.Placement.edits
  in
  List.iter
    (fun aranges ->
      Array.iter
        (List.iter (fun (lo, hi) ->
             Alcotest.(check int) "lo block aligned" 0 (lo mod 4);
             Alcotest.(check int) "hi ends a block" 3 (hi mod 4)))
        aranges)
    tables

let test_empty_program_plans_nothing () =
  let plan = plan_with "proc main() { x = 1; }" in
  Alcotest.(check int) "no edits" 0 (List.length plan.Cachier.Placement.edits);
  Alcotest.(check int) "no notes" 0 (List.length plan.Cachier.Placement.notes)

let test_private_only_program_plans_nothing () =
  let plan =
    plan_with "private P[64]; proc main() { for i = 0 to 63 { P[i] = i; } }"
  in
  Alcotest.(check int) "private traffic needs no annotations" 0
    (List.length plan.Cachier.Placement.edits)

let test_race_notes_name_the_expression () =
  let plan =
    plan_with "shared A[4]; proc main() { A[0] = A[0] + 1.0; }"
  in
  match plan.Cachier.Placement.notes with
  | (_, msg) :: _ ->
      let contains needle =
        let n = String.length needle in
        let rec go i =
          i + n <= String.length msg && (String.sub msg i n = needle || go (i + 1))
        in
        go 0
      in
      Alcotest.(check bool) "mentions Data Race" true (contains "Data Race");
      Alcotest.(check bool) "names A" true (contains "A[")
  | [] -> Alcotest.fail "expected a race note"

let suite =
  [
    Alcotest.test_case "check-ins never inside loops" `Quick test_ci_never_inside_loops;
    Alcotest.test_case "budget drops oversized check-outs" `Quick
      test_budget_drops_oversized_checkouts;
    Alcotest.test_case "Programmer mode keeps per-access" `Quick
      test_programmer_mode_keeps_oversized_per_access;
    Alcotest.test_case "affine hoisting" `Quick test_affine_hoisting_to_epoch_start;
    Alcotest.test_case "tables block-aligned" `Quick test_tables_are_block_aligned;
    Alcotest.test_case "empty program" `Quick test_empty_program_plans_nothing;
    Alcotest.test_case "private-only program" `Quick
      test_private_only_program_plans_nothing;
    Alcotest.test_case "race notes" `Quick test_race_notes_name_the_expression;
  ]
