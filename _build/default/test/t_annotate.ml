open Lang

let machine = { Wwt.Machine.default with Wwt.Machine.nodes = 4 }
let opts = Cachier.Placement.default_options

let test_end_to_end_produces_annotations () =
  let r = Cachier.Annotate.annotate_source ~machine ~options:opts
      (Benchmarks.Matmul.source ~n:8 ~nodes:4 ()) in
  Alcotest.(check bool) "some edits" true (r.Cachier.Annotate.n_edits > 0);
  Alcotest.(check bool) "annotations in output" true
    (Ast.count_annotations r.Cachier.Annotate.annotated > 0)

let test_strips_existing_annotations_first () =
  (* Annotating a hand-annotated program starts from scratch. *)
  let r = Cachier.Annotate.annotate_source ~machine ~options:opts
      (Benchmarks.Matmul.hand_source ~n:8 ~nodes:4 ()) in
  let r2 = Cachier.Annotate.annotate_source ~machine ~options:opts
      (Benchmarks.Matmul.source ~n:8 ~nodes:4 ()) in
  Alcotest.(check int) "same number of edits" r2.Cachier.Annotate.n_edits
    r.Cachier.Annotate.n_edits

let test_annotated_runs_and_matches () =
  (* A race-free benchmark must compute the same result annotated. *)
  let src = Benchmarks.Jacobi.source ~n:16 ~t:2 ~nodes:4 () in
  let prog = Parser.parse src in
  let base = Wwt.Run.measure ~machine ~annotations:false ~prefetch:false prog in
  let r = Cachier.Annotate.annotate_program ~machine ~options:opts prog in
  let ann = Wwt.Run.measure ~machine ~annotations:true ~prefetch:false
      r.Cachier.Annotate.annotated in
  Alcotest.(check bool) "identical final memory" true
    (base.Wwt.Interp.shared = ann.Wwt.Interp.shared)

let test_output_reparses_and_rechecks () =
  List.iter
    (fun (b : Benchmarks.Suite.t) ->
      let r = Cachier.Annotate.annotate_source ~machine ~options:opts
          b.Benchmarks.Suite.source in
      let printed = Cachier.Annotate.to_source r in
      let reparsed = Parser.parse printed in
      ignore (Sema.check reparsed))
    (Benchmarks.Suite.all ~nodes:4 ())

let test_race_reported_for_matmul () =
  let r = Cachier.Annotate.annotate_source ~machine ~options:opts
      (Benchmarks.Matmul.source ~n:8 ~nodes:4 ()) in
  let races = Cachier.Report.races r.Cachier.Annotate.report in
  Alcotest.(check bool) "race on C reported" true
    (List.exists (fun i -> i.Cachier.Report.arr = "C") races);
  Alcotest.(check bool) "race note rendered" true
    (r.Cachier.Annotate.notes <> [])

let test_no_race_in_jacobi () =
  let r = Cachier.Annotate.annotate_source ~machine ~options:opts
      (Benchmarks.Jacobi.source ~n:16 ~t:2 ~nodes:4 ()) in
  Alcotest.(check (list string)) "no races" []
    (List.map (fun i -> i.Cachier.Report.arr)
       (Cachier.Report.races r.Cachier.Annotate.report))

let test_annotate_with_external_trace () =
  (* The trace can come from a file (or another input set). *)
  let src = Benchmarks.Mp3d.source ~particles:64 ~cells:16 ~t:2 ~nodes:4 () in
  let prog = Parser.parse src in
  let outcome = Wwt.Run.collect_trace ~machine prog in
  let text = Trace.Trace_file.to_string outcome.Wwt.Interp.trace in
  let records = Trace.Trace_file.of_string text in
  let r = Cachier.Annotate.annotate_with_trace ~machine ~options:opts prog records in
  Alcotest.(check bool) "edits from file trace" true (r.Cachier.Annotate.n_edits > 0)

let test_programmer_mode_exposes_more () =
  let src = Benchmarks.Jacobi.source ~n:16 ~t:2 ~nodes:4 () in
  let perf = Cachier.Annotate.annotate_source ~machine ~options:opts src in
  let prog_mode =
    Cachier.Annotate.annotate_source ~machine
      ~options:{ opts with Cachier.Placement.mode = Cachier.Equations.Programmer }
      src
  in
  (* Programmer CICO adds check-out-shared annotations that Performance
     CICO suppresses, so it inserts at least as many. *)
  Alcotest.(check bool) "programmer >= performance" true
    (prog_mode.Cachier.Annotate.n_edits >= perf.Cachier.Annotate.n_edits)

let test_prefetch_option_adds_prefetches () =
  let src = Benchmarks.Jacobi.source ~n:16 ~t:2 ~nodes:4 () in
  let r =
    Cachier.Annotate.annotate_source ~machine
      ~options:{ opts with Cachier.Placement.prefetch = true } src
  in
  let has_prefetch = ref false in
  Ast.iter_stmts
    (fun s ->
      match s.Ast.node with
      | Ast.Sannot ((Ast.Prefetch_x | Ast.Prefetch_s), _)
      | Ast.Sannot_table { akind = Ast.Prefetch_x | Ast.Prefetch_s; _ } ->
          has_prefetch := true
      | _ -> ())
    r.Cachier.Annotate.annotated;
  Alcotest.(check bool) "prefetch annotations present" true !has_prefetch

let test_einfo_exposed () =
  let r = Cachier.Annotate.annotate_source ~machine ~options:opts
      (Benchmarks.Jacobi.source ~n:16 ~t:2 ~nodes:4 ()) in
  Alcotest.(check bool) "epochs assimilated" true
    (Cachier.Epoch_info.n_epochs r.Cachier.Annotate.einfo >= 4)

let suite =
  [
    Alcotest.test_case "end to end annotations" `Quick test_end_to_end_produces_annotations;
    Alcotest.test_case "existing annotations stripped" `Quick
      test_strips_existing_annotations_first;
    Alcotest.test_case "annotated result identical" `Quick test_annotated_runs_and_matches;
    Alcotest.test_case "output reparses and rechecks" `Quick
      test_output_reparses_and_rechecks;
    Alcotest.test_case "matmul race reported" `Quick test_race_reported_for_matmul;
    Alcotest.test_case "jacobi race-free" `Quick test_no_race_in_jacobi;
    Alcotest.test_case "external trace input" `Quick test_annotate_with_external_trace;
    Alcotest.test_case "Programmer mode exposes more" `Quick
      test_programmer_mode_exposes_more;
    Alcotest.test_case "prefetch option" `Quick test_prefetch_option_adds_prefetches;
    Alcotest.test_case "einfo exposed" `Quick test_einfo_exposed;
  ]
