let config ?(nodes = 2) ?(on_barrier = fun ~vt:_ ~arrivals:_ -> ()) () =
  {
    Wwt.Sched.nodes;
    barrier_cost = 10;
    lock_transfer = 5;
    on_barrier;
    on_lock_acquire = (fun ~node:_ ~lock:_ -> ());
  }

let test_advance_accumulates () =
  let final =
    Wwt.Sched.run (config ~nodes:1 ()) (fun _node ->
        Wwt.Sched.advance 5;
        Wwt.Sched.advance 7;
        Alcotest.(check int) "now reflects advances" 12 (Wwt.Sched.now ()))
  in
  Alcotest.(check int) "final time" 12 final

let test_min_time_interleaving () =
  (* Node 0 advances in steps of 1, node 1 in steps of 10; the scheduler
     must run node 0 several times before node 1's second step. *)
  let order = ref [] in
  let _ =
    Wwt.Sched.run (config ()) (fun node ->
        let step = if node = 0 then 1 else 10 in
        for _ = 1 to 3 do
          Wwt.Sched.advance step;
          order := (node, Wwt.Sched.now ()) :: !order
        done)
  in
  let events = List.rev !order in
  (* sorted by virtual time *)
  let times = List.map snd events in
  Alcotest.(check bool) "times non-decreasing" true
    (List.sort compare times = times)

let test_barrier_synchronises () =
  let vts = ref [] in
  let on_barrier ~vt ~arrivals =
    vts := vt :: !vts;
    Alcotest.(check int) "all nodes arrive" 3 (List.length arrivals)
  in
  let final =
    Wwt.Sched.run (config ~nodes:3 ~on_barrier ()) (fun node ->
        Wwt.Sched.advance (node * 100);
        Wwt.Sched.barrier_sync ~pc:42;
        (* after the barrier every clock equals max + barrier cost *)
        Alcotest.(check int) "clock synced" 210 (Wwt.Sched.now ()))
  in
  Alcotest.(check int) "one barrier" 1 (List.length !vts);
  Alcotest.(check int) "vt is max+cost" 210 (List.hd !vts);
  Alcotest.(check int) "final" 210 final

let test_barrier_arrival_pcs () =
  let seen = ref [] in
  let on_barrier ~vt:_ ~arrivals = seen := arrivals in
  let _ =
    Wwt.Sched.run (config ~on_barrier ()) (fun node ->
        Wwt.Sched.barrier_sync ~pc:(100 + node))
  in
  Alcotest.(check (list (pair int int))) "per-node pcs" [ (0, 100); (1, 101) ] !seen

let test_deadlock_detection () =
  Alcotest.check_raises "one node skips the barrier"
    (Wwt.Sched.Deadlock
       "1 of 2 nodes finished; 1 parked at a barrier, 0 waiting on locks")
    (fun () ->
      ignore
        (Wwt.Sched.run (config ()) (fun node ->
             if node = 0 then Wwt.Sched.barrier_sync ~pc:1)))

let test_lock_mutual_exclusion () =
  let in_section = ref false in
  let violations = ref 0 in
  let acquisitions = ref [] in
  let cfg =
    {
      (config ~nodes:3 ()) with
      Wwt.Sched.on_lock_acquire =
        (fun ~node ~lock:_ -> acquisitions := node :: !acquisitions);
    }
  in
  let _ =
    Wwt.Sched.run cfg (fun _node ->
        Wwt.Sched.lock_acquire 1;
        if !in_section then incr violations;
        in_section := true;
        Wwt.Sched.advance 20;
        in_section := false;
        Wwt.Sched.lock_release 1)
  in
  Alcotest.(check int) "no overlapping critical sections" 0 !violations;
  Alcotest.(check int) "three acquisitions" 3 (List.length !acquisitions)

let test_lock_release_without_hold () =
  Alcotest.check_raises "bogus release"
    (Wwt.Sched.Deadlock "node 0 releases lock 9 it does not hold") (fun () ->
      ignore
        (Wwt.Sched.run (config ~nodes:1 ()) (fun _ -> Wwt.Sched.lock_release 9)))

let test_determinism () =
  let run () =
    let log = ref [] in
    let _ =
      Wwt.Sched.run (config ~nodes:4 ()) (fun node ->
          for i = 1 to 5 do
            Wwt.Sched.advance ((node * 3) + i);
            log := (node, Wwt.Sched.now ()) :: !log
          done)
    in
    !log
  in
  Alcotest.(check bool) "two runs identical" true (run () = run ())

let suite =
  [
    Alcotest.test_case "advance accumulates" `Quick test_advance_accumulates;
    Alcotest.test_case "min-time interleaving" `Quick test_min_time_interleaving;
    Alcotest.test_case "barrier synchronises clocks" `Quick test_barrier_synchronises;
    Alcotest.test_case "barrier arrival pcs" `Quick test_barrier_arrival_pcs;
    Alcotest.test_case "deadlock detection" `Quick test_deadlock_detection;
    Alcotest.test_case "lock mutual exclusion" `Quick test_lock_mutual_exclusion;
    Alcotest.test_case "release without hold" `Quick test_lock_release_without_hold;
    Alcotest.test_case "deterministic schedule" `Quick test_determinism;
  ]
