(* Property tests over randomly generated programs: the pretty-printer and
   parser are exact inverses (modulo statement ids), semantic analysis
   never crashes, and generated race-free programs run deterministically. *)

open Lang
open QCheck

let qtest = QCheck_alcotest.to_alcotest

(* ---- generators ---- *)

let var_names = [| "x"; "y"; "z"; "acc"; "tmp" |]
let array_names = [| "A"; "B" |]

let gen_expr =
  Gen.sized (fun n ->
      Gen.fix
        (fun self n ->
          if n <= 0 then
            Gen.oneof
              [
                (* negative literals are spelled with an explicit Neg:
                   [Eint (-34)] prints as ["(-34)"], which re-parses as
                   [Eunop (Neg, Eint 34)] — same value, different tree *)
                Gen.map (fun i -> Ast.Eint i) (Gen.int_range 0 99);
                Gen.map (fun f -> Ast.Efloat (float_of_int f /. 4.0))
                  (Gen.int_range 0 40);
                Gen.map (fun i -> Ast.Evar var_names.(i))
                  (Gen.int_range 0 (Array.length var_names - 1));
                Gen.return (Ast.Evar "pid");
              ]
          else
            Gen.oneof
              [
                Gen.map3
                  (fun op a b -> Ast.Ebinop (op, a, b))
                  (Gen.oneofl
                     Ast.[ Add; Sub; Mul; Div; Mod; Lt; Le; Gt; Ge; Eq; Ne; And; Or ])
                  (self (n / 2)) (self (n / 2));
                Gen.map2
                  (fun op a -> Ast.Eunop (op, a))
                  (Gen.oneofl Ast.[ Neg; Not ])
                  (self (n / 2));
                Gen.map2
                  (fun i e -> Ast.Eindex (array_names.(i), e))
                  (Gen.int_range 0 (Array.length array_names - 1))
                  (self (n / 2));
                Gen.map2
                  (fun a b -> Ast.Ecall ("min", [ a; b ]))
                  (self (n / 2)) (self (n / 2));
                Gen.map (fun a -> Ast.Ecall ("abs", [ a ])) (self (n / 2));
              ])
        (min n 8))

let gen_stmt =
  Gen.sized (fun n ->
      Gen.fix
        (fun self n ->
          let leaf =
            Gen.oneof
              [
                Gen.map2
                  (fun i e ->
                    { Ast.sid = -1; node = Ast.Sassign (Ast.Lvar var_names.(i), e) })
                  (Gen.int_range 0 (Array.length var_names - 1))
                  gen_expr;
                Gen.map3
                  (fun i idx e ->
                    {
                      Ast.sid = -1;
                      node = Ast.Sassign (Ast.Lindex (array_names.(i), idx), e);
                    })
                  (Gen.int_range 0 (Array.length array_names - 1))
                  gen_expr gen_expr;
                Gen.map2
                  (fun k e ->
                    {
                      Ast.sid = -1;
                      node =
                        Ast.Sannot
                          ( k,
                            { Ast.arr = "A"; lo = e; hi = e } );
                    })
                  (Gen.oneofl
                     Ast.[ Check_out_x; Check_out_s; Check_in; Prefetch_s; Post_store ])
                  gen_expr;
                Gen.map
                  (fun es -> { Ast.sid = -1; node = Ast.Sprint es })
                  (Gen.list_size (Gen.int_range 1 3) gen_expr);
              ]
          in
          if n <= 0 then leaf
          else
            Gen.oneof
              [
                leaf;
                Gen.map3
                  (fun c b1 b2 -> { Ast.sid = -1; node = Ast.Sif (c, b1, b2) })
                  gen_expr
                  (Gen.list_size (Gen.int_range 0 3) (self (n / 2)))
                  (Gen.list_size (Gen.int_range 0 2) (self (n / 2)));
                Gen.map3
                  (fun (v, step) (lo, hi) body ->
                    {
                      Ast.sid = -1;
                      node =
                        Ast.Sfor
                          {
                            var = var_names.(v);
                            from_ = Ast.Eint lo;
                            to_ = Ast.Eint hi;
                            step = Ast.Eint step;
                            body;
                          };
                    })
                  (Gen.pair
                     (Gen.int_range 0 (Array.length var_names - 1))
                     (Gen.oneofl [ 1; 2; 3 ]))
                  (Gen.pair (Gen.int_range 0 4) (Gen.int_range 0 8))
                  (Gen.list_size (Gen.int_range 1 3) (self (n / 2)));
              ])
        (min n 6))

let gen_program =
  Gen.map
    (fun stmts ->
      Ast.renumber
        {
          Ast.decls = [ Ast.Dshared ("A", Ast.Eint 64); Ast.Dshared ("B", Ast.Eint 64) ];
          procs = [ { Ast.pname = "main"; params = []; body = stmts } ];
        })
    (Gen.list_size (Gen.int_range 1 8) gen_stmt)

let arbitrary_program =
  make ~print:(fun p -> Pretty.program_to_string p) gen_program

(* structural equality modulo sids *)
let rec strip_stmt (s : Ast.stmt) =
  let node =
    match s.Ast.node with
    | Ast.Sif (e, b1, b2) -> Ast.Sif (e, List.map strip_stmt b1, List.map strip_stmt b2)
    | Ast.Sfor fl -> Ast.Sfor { fl with Ast.body = List.map strip_stmt fl.Ast.body }
    | Ast.Swhile (e, b) -> Ast.Swhile (e, List.map strip_stmt b)
    | n -> n
  in
  { Ast.sid = 0; node }

let strip (p : Ast.program) =
  {
    p with
    Ast.procs =
      List.map
        (fun pr -> { pr with Ast.body = List.map strip_stmt pr.Ast.body })
        p.Ast.procs;
  }

let prop_print_parse_inverse =
  Test.make ~count:300 ~name:"pretty then parse is the identity"
    arbitrary_program (fun p ->
      let printed = Pretty.program_to_string p in
      match Parser.parse printed with
      | p' -> strip p' = strip p
      | exception Parser.Error msg ->
          Test.fail_reportf "parse error: %s\n%s" msg printed)

let prop_print_parse_print_fixpoint =
  Test.make ~count:300 ~name:"printing reaches a fixpoint after one round"
    arbitrary_program (fun p ->
      let once = Pretty.program_to_string p in
      let twice = Pretty.program_to_string (Parser.parse once) in
      String.equal once twice)

let prop_sema_total =
  Test.make ~count:300 ~name:"sema accepts or raises Sema.Error, never crashes"
    arbitrary_program (fun p ->
      match Sema.check p with
      | _ -> true
      | exception Sema.Error _ -> true)

let prop_interp_deterministic =
  Test.make ~count:60 ~name:"generated programs run deterministically"
    arbitrary_program (fun p ->
      match Sema.check p with
      | exception Sema.Error _ -> true
      | _ -> (
          let machine = { Wwt.Machine.default with Wwt.Machine.nodes = 2 } in
          let machine =
            Wwt.Machine.perf_mode ~annotations:true ~prefetch:true machine
          in
          let run () =
            match Wwt.Interp.run ~machine p with
            | o -> Some (o.Wwt.Interp.time, o.Wwt.Interp.shared)
            | exception Wwt.Interp.Runtime_error _ -> None
          in
          match (run (), run ()) with
          | Some a, Some b -> a = b
          | None, None -> true
          | _ -> false))

let prop_strip_annotations_idempotent =
  Test.make ~count:200 ~name:"strip_annotations is idempotent and complete"
    arbitrary_program (fun p ->
      let s1 = Ast.strip_annotations p in
      Ast.count_annotations s1 = 0 && Ast.strip_annotations s1 = s1)

let prop_renumber_preserves_structure =
  Test.make ~count:200 ~name:"renumber preserves structure"
    arbitrary_program (fun p ->
      strip (Ast.renumber p) = strip p)

let suite =
  List.map qtest
    [
      prop_print_parse_inverse;
      prop_print_parse_print_fixpoint;
      prop_sema_total;
      prop_interp_deterministic;
      prop_strip_annotations_idempotent;
      prop_renumber_preserves_structure;
    ]
