(* Tests for the extensions beyond the paper's core: the KSR-1 post-store
   directive, lock-aware race detection, and the Section 4.5 training-set
   annotation mode. *)

open Memsys

let costs = Network.default

let mk_protocol () =
  Protocol.create ~nodes:4 ~cache_bytes:1024 ~assoc:2 ~block_size:32 ~costs

(* ---- post-store, protocol level ---- *)

let test_post_store_pushes_to_past_holders () =
  let p = mk_protocol () in
  (* nodes 1 and 2 read the block, then node 0 claims it exclusive
     (invalidating them), writes, and post-stores *)
  ignore (Protocol.read p ~node:1 ~addr:0 ~now:0);
  ignore (Protocol.read p ~node:2 ~addr:0 ~now:0);
  ignore (Protocol.write p ~node:0 ~addr:0 ~now:10);
  let o = Protocol.post_store p ~node:0 ~addr:0 ~now:20 in
  Alcotest.(check int) "issue cost" costs.Network.check_in_cost o.Protocol.latency;
  Alcotest.(check int) "counted" 1 (Protocol.stats p).Stats.post_stores;
  (* the producer keeps a shared copy; past readers got fresh copies *)
  (match Cache.find (Protocol.cache p ~node:0) 0 with
  | Some l -> Alcotest.(check bool) "producer shared" true (l.Cache.state = Cache.Shared)
  | None -> Alcotest.fail "producer lost its copy");
  List.iter
    (fun node ->
      match Cache.find (Protocol.cache p ~node) 0 with
      | Some l ->
          Alcotest.(check bool) "recipient shared" true
            (l.Cache.state = Cache.Shared);
          Alcotest.(check bool) "data arrives with a delay" true
            (l.Cache.ready_at > 20)
      | None -> Alcotest.fail "past reader did not receive a copy")
    [ 1; 2 ];
  (* node 3 never held it and must not receive one *)
  Alcotest.(check bool) "non-holder untouched" true
    (Cache.find (Protocol.cache p ~node:3) 0 = None);
  (* the recipients' next reads are hits *)
  let r = Protocol.read p ~node:1 ~addr:0 ~now:1000 in
  Alcotest.(check bool) "recipient read hits" true (r.Protocol.miss = None)

let test_post_store_writes_back () =
  let p = mk_protocol () in
  ignore (Protocol.read p ~node:1 ~addr:0 ~now:0);
  ignore (Protocol.write p ~node:0 ~addr:0 ~now:1);
  let before = (Protocol.stats p).Stats.writebacks in
  ignore (Protocol.post_store p ~node:0 ~addr:0 ~now:10);
  Alcotest.(check int) "dirty data written back" (before + 1)
    (Protocol.stats p).Stats.writebacks;
  (* directory now lists producer + past holder as sharers *)
  Alcotest.(check (list int)) "sharers" [ 0; 1 ]
    (Directory.sharers (Protocol.directory p) 0)

let test_post_store_requires_exclusive () =
  let p = mk_protocol () in
  ignore (Protocol.read p ~node:0 ~addr:0 ~now:0);
  let o = Protocol.post_store p ~node:0 ~addr:0 ~now:10 in
  Alcotest.(check int) "cost only" costs.Network.check_in_cost o.Protocol.latency;
  (* shared copy stays shared, nothing broadcast *)
  Alcotest.(check (list int)) "sharers unchanged" [ 0 ]
    (Directory.sharers (Protocol.directory p) 0)

(* ---- post-store, language level ---- *)

let machine = { Wwt.Machine.default with Wwt.Machine.nodes = 4 }

let test_post_store_parses_and_runs () =
  let src =
    "shared A[8]; proc main() { if (pid == 0) { A[0] = 1.0; post_store A[0]; } \
     barrier; x = A[0]; }"
  in
  let prog = Lang.Parser.parse src in
  (* round-trips through the pretty printer *)
  ignore (Lang.Parser.parse (Lang.Pretty.program_to_string prog));
  let m = Wwt.Machine.perf_mode ~annotations:true ~prefetch:false machine in
  let o = Wwt.Interp.run ~machine:m prog in
  Alcotest.(check int) "executed" 1 o.Wwt.Interp.stats.Memsys.Stats.post_stores

let test_ocean_post_store_variant () =
  let base =
    Wwt.Run.source_measure ~machine ~annotations:false ~prefetch:false
      (Benchmarks.Ocean.source ~n:16 ~t:3 ~nodes:4 ())
  in
  let ps =
    Wwt.Run.source_measure ~machine ~annotations:true ~prefetch:false
      (Benchmarks.Ocean.post_store_source ~n:16 ~t:3 ~nodes:4 ())
  in
  Alcotest.(check bool) "post-store variant runs and helps" true
    (ps.Wwt.Interp.time < base.Wwt.Interp.time);
  Alcotest.(check bool) "post-stores issued" true
    (ps.Wwt.Interp.stats.Memsys.Stats.post_stores > 0);
  (* semantics preserved *)
  Alcotest.(check bool) "same result" true
    (base.Wwt.Interp.shared = ps.Wwt.Interp.shared)

(* ---- lock-aware race detection ---- *)

let miss ?(held = []) node pc addr kind =
  Trace.Event.Miss { node; pc; addr; kind; held }

let epoch_of records =
  match Trace.Epoch.split ~nodes:4 records with
  | [ e ], _ -> e
  | _ -> Alcotest.fail "expected one epoch"

let test_common_lock_suppresses_race () =
  let d =
    Cachier.Drfs.analyze ~block_size:32
      (epoch_of
         [
           miss ~held:[ 7 ] 0 1 0 Trace.Event.Write_miss;
           miss ~held:[ 7 ] 1 2 0 Trace.Event.Write_miss;
         ])
  in
  Alcotest.(check bool) "no race under a common lock" true
    (Trace.Epoch.Iset.is_empty (Cachier.Drfs.race d))

let test_different_locks_still_race () =
  let d =
    Cachier.Drfs.analyze ~block_size:32
      (epoch_of
         [
           miss ~held:[ 7 ] 0 1 0 Trace.Event.Write_miss;
           miss ~held:[ 8 ] 1 2 0 Trace.Event.Write_miss;
         ])
  in
  Alcotest.(check bool) "different locks do not protect" false
    (Trace.Epoch.Iset.is_empty (Cachier.Drfs.race d))

let test_one_unlocked_access_races () =
  let d =
    Cachier.Drfs.analyze ~block_size:32
      (epoch_of
         [
           miss ~held:[ 7 ] 0 1 0 Trace.Event.Write_miss;
           miss 1 2 0 Trace.Event.Read_miss;
         ])
  in
  Alcotest.(check bool) "unlocked reader races with locked writer" false
    (Trace.Epoch.Iset.is_empty (Cachier.Drfs.race d))

let test_lock_aware_can_be_disabled () =
  let records =
    [
      miss ~held:[ 7 ] 0 1 0 Trace.Event.Write_miss;
      miss ~held:[ 7 ] 1 2 0 Trace.Event.Write_miss;
    ]
  in
  let d =
    Cachier.Drfs.analyze ~lock_aware:false ~block_size:32 (epoch_of records)
  in
  Alcotest.(check bool) "paper mode reports the pair" false
    (Trace.Epoch.Iset.is_empty (Cachier.Drfs.race d))

let test_false_sharing_not_suppressed_by_locks () =
  let d =
    Cachier.Drfs.analyze ~block_size:32
      (epoch_of
         [
           miss ~held:[ 7 ] 0 1 0 Trace.Event.Write_miss;
           miss ~held:[ 7 ] 1 2 8 Trace.Event.Read_miss;
         ])
  in
  Alcotest.(check bool) "locks do not stop block ping-pong" false
    (Trace.Epoch.Iset.is_empty (Cachier.Drfs.false_shared d))

let test_interp_records_held_locks () =
  let src =
    "shared A[4]; proc main() { lock(3); A[0] = A[0] + 1; unlock(3); barrier; }"
  in
  let o = Wwt.Run.source_trace ~machine src in
  let locked_misses =
    List.filter_map
      (function
        | Trace.Event.Miss m when m.Trace.Event.held = [ 3 ] -> Some m
        | _ -> None)
      o.Wwt.Interp.trace
  in
  Alcotest.(check bool) "misses carry the held lock" true (locked_misses <> []);
  (* and the lock-protected counter update is not reported as a race *)
  let einfo = Cachier.Epoch_info.build ~nodes:4 ~block_size:32 o.Wwt.Interp.trace in
  Array.iter
    (fun d ->
      Alcotest.(check bool) "no race reported" true
        (Trace.Epoch.Iset.is_empty (Cachier.Drfs.race d)))
    einfo.Cachier.Epoch_info.drfs

let test_restructured_matmul_race_free_report () =
  (* the Section 5 merge is lock-protected: with the lockset refinement the
     report must be race-free *)
  let prog = Lang.Parser.parse (Benchmarks.Matmul.restructured_source ~n:16 ~nodes:4 ()) in
  let r =
    Cachier.Annotate.annotate_program ~machine
      ~options:Cachier.Placement.default_options prog
  in
  Alcotest.(check (list string)) "no races" []
    (List.map (fun i -> i.Cachier.Report.arr)
       (Cachier.Report.races r.Cachier.Annotate.report))

let test_locks_serialise_in_trace () =
  let records =
    [ miss ~held:[ 1; 2 ] 0 5 64 Trace.Event.Write_fault;
      miss 1 6 0 Trace.Event.Read_miss ]
  in
  let parsed = Trace.Trace_file.of_string (Trace.Trace_file.to_string records) in
  Alcotest.(check bool) "locks survive the round trip" true (parsed = records)

(* ---- training-set annotation (Section 4.5) ---- *)

let test_training_set_union () =
  let prog = Lang.Parser.parse (Benchmarks.Mp3d.source ~particles:64 ~cells:16 ~t:2 ~nodes:4 ()) in
  let trace_of seed =
    (Wwt.Run.collect_trace ~machine (Benchmarks.Suite.reseed prog seed))
      .Wwt.Interp.trace
  in
  let single =
    Cachier.Annotate.annotate_with_traces ~machine
      ~options:Cachier.Placement.default_options prog
      [ trace_of 1 ]
  in
  let multi =
    Cachier.Annotate.annotate_with_traces ~machine
      ~options:Cachier.Placement.default_options prog
      [ trace_of 1; trace_of 2; trace_of 3 ]
  in
  Alcotest.(check bool) "training set yields annotations" true
    (multi.Cachier.Annotate.n_edits > 0);
  (* the training set can insert fewer annotations than a single trace:
     sets that vary across inputs fail the stationarity test and are
     dropped rather than over-generalised *)
  ignore single;
  (* still improves on an input none of the traces saw *)
  let fresh = Benchmarks.Suite.reseed prog 9 in
  let base = Wwt.Run.measure ~machine ~annotations:false ~prefetch:false fresh in
  let ann =
    Wwt.Run.measure ~machine ~annotations:true ~prefetch:false
      (Benchmarks.Suite.reseed multi.Cachier.Annotate.annotated 9)
  in
  Alcotest.(check bool) "generalises to unseen input" true
    (ann.Wwt.Interp.time < base.Wwt.Interp.time)

let test_annotate_training_wrapper () =
  let prog = Lang.Parser.parse (Benchmarks.Mp3d.source ~particles:64 ~cells:16 ~t:2 ~nodes:4 ()) in
  let r =
    Cachier.Annotate.annotate_training ~machine
      ~options:Cachier.Placement.default_options ~seed_const:"SEED"
      ~seeds:[ 1; 2 ] prog
  in
  Alcotest.(check bool) "wrapper produces annotations" true
    (r.Cachier.Annotate.n_edits > 0)

let test_empty_traces_rejected () =
  let prog = Lang.Parser.parse "shared A[4]; proc main() { A[0] = 1; }" in
  Alcotest.check_raises "empty list"
    (Invalid_argument "Annotate.annotate_with_traces: no traces") (fun () ->
      ignore
        (Cachier.Annotate.annotate_with_traces ~machine
           ~options:Cachier.Placement.default_options prog []))

let suite =
  [
    Alcotest.test_case "post-store pushes to past holders" `Quick
      test_post_store_pushes_to_past_holders;
    Alcotest.test_case "post-store writes back" `Quick test_post_store_writes_back;
    Alcotest.test_case "post-store needs exclusive" `Quick
      test_post_store_requires_exclusive;
    Alcotest.test_case "post-store in the language" `Quick
      test_post_store_parses_and_runs;
    Alcotest.test_case "ocean post-store variant" `Slow test_ocean_post_store_variant;
    Alcotest.test_case "common lock suppresses race" `Quick
      test_common_lock_suppresses_race;
    Alcotest.test_case "different locks still race" `Quick
      test_different_locks_still_race;
    Alcotest.test_case "unlocked access races" `Quick test_one_unlocked_access_races;
    Alcotest.test_case "lock awareness can be disabled" `Quick
      test_lock_aware_can_be_disabled;
    Alcotest.test_case "locks do not stop false sharing" `Quick
      test_false_sharing_not_suppressed_by_locks;
    Alcotest.test_case "interp records held locks" `Quick
      test_interp_records_held_locks;
    Alcotest.test_case "restructured matmul reports no race" `Slow
      test_restructured_matmul_race_free_report;
    Alcotest.test_case "locks in trace round trip" `Quick test_locks_serialise_in_trace;
    Alcotest.test_case "training-set union" `Slow test_training_set_union;
    Alcotest.test_case "annotate_training wrapper" `Slow test_annotate_training_wrapper;
    Alcotest.test_case "empty trace list rejected" `Quick test_empty_traces_rejected;
  ]
