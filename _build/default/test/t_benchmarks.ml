(* Tests of the benchmark generators themselves. *)

let test_grid_factor () =
  Alcotest.(check (pair int int)) "8" (2, 4) (Benchmarks.Grid.factor 8);
  Alcotest.(check (pair int int)) "16" (4, 4) (Benchmarks.Grid.factor 16);
  Alcotest.(check (pair int int)) "32" (4, 8) (Benchmarks.Grid.factor 32);
  Alcotest.(check (pair int int)) "1" (1, 1) (Benchmarks.Grid.factor 1);
  Alcotest.(check (pair int int)) "7 (prime)" (1, 7) (Benchmarks.Grid.factor 7);
  (* invariants over a range *)
  for n = 1 to 64 do
    let pr, pc = Benchmarks.Grid.factor n in
    Alcotest.(check int) "product" n (pr * pc);
    Alcotest.(check bool) "pr <= pc" true (pr <= pc)
  done

let test_grid_check_divisible () =
  Benchmarks.Grid.check_divisible ~n:24 ~nodes:8 "t";
  Alcotest.check_raises "non-divisible"
    (Invalid_argument "t: N=25 must divide over the 2x4 processor grid")
    (fun () -> Benchmarks.Grid.check_divisible ~n:25 ~nodes:8 "t")

let test_suite_names_and_find () =
  Alcotest.(check (list string)) "figure 6 order"
    [ "matmul"; "barnes"; "tomcatv"; "ocean"; "mp3d" ]
    Benchmarks.Suite.names;
  let b = Benchmarks.Suite.find ~nodes:8 "ocean" in
  Alcotest.(check string) "found" "ocean" b.Benchmarks.Suite.name;
  Alcotest.check_raises "unknown" Not_found (fun () ->
      ignore (Benchmarks.Suite.find ~nodes:8 "linpack"))

let test_suite_seeds_differ () =
  List.iter
    (fun (b : Benchmarks.Suite.t) ->
      Alcotest.(check bool)
        (b.Benchmarks.Suite.name ^ " trace and eval inputs differ")
        true
        (b.Benchmarks.Suite.trace_seed <> b.Benchmarks.Suite.eval_seed))
    (Benchmarks.Suite.all ~nodes:8 ())

let test_generators_validate () =
  Alcotest.check_raises "matmul bad N"
    (Invalid_argument "matmul: N=10 must divide over the 2x4 processor grid")
    (fun () -> ignore (Benchmarks.Matmul.source ~n:10 ~nodes:8 ()));
  Alcotest.check_raises "mp3d bad particles"
    (Invalid_argument "mp3d: particle count must be a multiple of the node count")
    (fun () -> ignore (Benchmarks.Mp3d.source ~particles:10 ~nodes:8 ()));
  Alcotest.check_raises "barnes bad bodies"
    (Invalid_argument "barnes: body count must be a multiple of the node count")
    (fun () -> ignore (Benchmarks.Barnes.source ~bodies:10 ~nodes:8 ()));
  Alcotest.check_raises "ocean bad N"
    (Invalid_argument "ocean: N must be a multiple of the node count")
    (fun () -> ignore (Benchmarks.Ocean.source ~n:10 ~nodes:8 ()))

let machine = { Wwt.Machine.default with Wwt.Machine.nodes = 4 }

let run src = Wwt.Run.source_measure ~machine ~annotations:false ~prefetch:false src

let test_jacobi_converges () =
  (* Jacobi relaxation must smooth the field: the range of interior values
     shrinks over the run. *)
  let o = run (Benchmarks.Jacobi.source ~n:16 ~t:6 ~nodes:4 ()) in
  let n = 16 in
  let minv = ref infinity and maxv = ref neg_infinity in
  for i = 1 to n - 2 do
    for j = 1 to n - 2 do
      let v = Lang.Value.to_float (Wwt.Interp.shared_value o "U" ((i * n) + j)) in
      minv := min !minv v;
      maxv := max !maxv v
    done
  done;
  Alcotest.(check bool) "field smoothed into (0,1)" true
    (!minv > 0.0 && !maxv < 1.0 && !maxv -. !minv < 0.9)

let test_barnes_tree_is_consistent () =
  (* total mass at the root equals the sum of body masses *)
  let bodies = 32 in
  let o = run (Benchmarks.Barnes.source ~bodies ~t:1 ~nodes:4 ()) in
  let total_bodies = ref 0.0 in
  for b = 0 to bodies - 1 do
    total_bodies :=
      !total_bodies +. Lang.Value.to_float (Wwt.Interp.shared_value o "BM" b)
  done;
  let root_mass = Lang.Value.to_float (Wwt.Interp.shared_value o "NM" 1) in
  Alcotest.(check (float 1e-6)) "root aggregates all mass" !total_bodies root_mass

let test_barnes_accelerations_nonzero () =
  let bodies = 32 in
  let o = run (Benchmarks.Barnes.source ~bodies ~t:1 ~nodes:4 ()) in
  let moved = ref 0 in
  for b = 0 to bodies - 1 do
    if Lang.Value.to_float (Wwt.Interp.shared_value o "AX" b) <> 0.0 then incr moved
  done;
  Alcotest.(check bool) "forces computed for most bodies" true
    (!moved > bodies / 2)

let test_mp3d_conserves_particles () =
  (* positions stay inside the active space *)
  let particles = 64 in
  let o = run (Benchmarks.Mp3d.source ~particles ~cells:16 ~t:3 ~nodes:4 ()) in
  for q = 0 to particles - 1 do
    let x = Lang.Value.to_float (Wwt.Interp.shared_value o "PX" q) in
    if not (x >= 0.0 && x < 16.0) then
      Alcotest.failf "particle %d escaped: %f" q x
  done

let test_tomcatv_mesh_stays_finite () =
  let o = run (Benchmarks.Tomcatv.source ~n:12 ~t:2 ~nodes:4 ()) in
  let n = 12 in
  for i = 0 to (n * 4) - 1 do
    let v = Lang.Value.to_float (Wwt.Interp.shared_value o "XB" i) in
    if Float.is_nan v || Float.abs v > 1e6 then
      Alcotest.failf "boundary value diverged: %f" v
  done

let test_ocean_residual_positive () =
  let o = run (Benchmarks.Ocean.source ~n:16 ~t:2 ~nodes:4 ()) in
  let total = Lang.Value.to_float (Wwt.Interp.shared_value o "R" 0) in
  Alcotest.(check bool) "reduced residual is positive" true (total > 0.0)

let test_water_physics () =
  (* molecules stay in the periodic box and the potential energy is a
     finite negative-capable number *)
  let molecules = 32 in
  let o = run (Benchmarks.Water.source ~molecules ~t:3 ~nodes:4 ()) in
  for q = 0 to molecules - 1 do
    let x = Lang.Value.to_float (Wwt.Interp.shared_value o "WX" q) in
    let y = Lang.Value.to_float (Wwt.Interp.shared_value o "WY" q) in
    if not (x >= 0.0 && x < 8.0 && y >= 0.0 && y < 8.0) then
      Alcotest.failf "molecule %d escaped the box: (%f, %f)" q x y
  done;
  let ep = Lang.Value.to_float (Wwt.Interp.shared_value o "EP" 0) in
  Alcotest.(check bool) "energy is finite" true (Float.is_finite ep)

let test_water_through_the_pipeline () =
  let src = Benchmarks.Water.source ~molecules:32 ~t:2 ~nodes:4 () in
  let prog = Lang.Parser.parse src in
  let base = Wwt.Run.measure ~machine ~annotations:false ~prefetch:false prog in
  let r =
    Cachier.Annotate.annotate_program ~machine
      ~options:Cachier.Placement.default_options prog
  in
  Alcotest.(check bool) "annotations inserted" true (r.Cachier.Annotate.n_edits > 0);
  let ann =
    Wwt.Run.measure ~machine ~annotations:true ~prefetch:false
      r.Cachier.Annotate.annotated
  in
  Alcotest.(check bool) "results identical (race-free)" true
    (base.Wwt.Interp.shared = ann.Wwt.Interp.shared);
  Alcotest.(check bool) "annotated not slower than 110%" true
    (float_of_int ann.Wwt.Interp.time <= 1.1 *. float_of_int base.Wwt.Interp.time);
  (* the unpadded EP array is the textbook false-sharing case *)
  Alcotest.(check bool) "EP false sharing reported" true
    (List.exists
       (fun i -> i.Cachier.Report.arr = "EP")
       (Cachier.Report.false_sharing r.Cachier.Annotate.report))

let test_water_hand_runs () =
  let o =
    Wwt.Run.source_measure ~machine ~annotations:true ~prefetch:false
      (Benchmarks.Water.hand_source ~molecules:32 ~t:2 ~nodes:4 ())
  in
  Alcotest.(check bool) "hand version issues directives" true
    (o.Wwt.Interp.stats.Memsys.Stats.check_ins > 0)

let test_matmul_race_is_benign_under_one_node () =
  (* with a single processor the racy algorithm is just a matmul *)
  let n = 8 in
  let m1 = { Wwt.Machine.default with Wwt.Machine.nodes = 1 } in
  let o =
    Wwt.Run.source_measure ~machine:m1 ~annotations:false ~prefetch:false
      (Benchmarks.Matmul.source ~n ~nodes:1 ())
  in
  let a = Array.init (n * n) (fun q -> Wwt.Interp.noise (q + 1000003)) in
  let b = Array.init (n * n) (fun q -> Wwt.Interp.noise (q + 500000 + 1000003)) in
  let expect i j =
    let s = ref 0.0 in
    for k = 0 to n - 1 do
      s := !s +. (a.((i * n) + k) *. b.((k * n) + j))
    done;
    !s
  in
  List.iter
    (fun (i, j) ->
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "C[%d,%d]" i j)
        (expect i j)
        (Lang.Value.to_float (Wwt.Interp.shared_value o "C" ((i * n) + j))))
    [ (0, 0); (7, 7); (3, 5) ]

let suite =
  [
    Alcotest.test_case "grid factorisation" `Quick test_grid_factor;
    Alcotest.test_case "grid divisibility" `Quick test_grid_check_divisible;
    Alcotest.test_case "suite names and find" `Quick test_suite_names_and_find;
    Alcotest.test_case "trace/eval seeds differ" `Quick test_suite_seeds_differ;
    Alcotest.test_case "generators validate" `Quick test_generators_validate;
    Alcotest.test_case "jacobi converges" `Quick test_jacobi_converges;
    Alcotest.test_case "barnes tree mass" `Quick test_barnes_tree_is_consistent;
    Alcotest.test_case "barnes forces" `Quick test_barnes_accelerations_nonzero;
    Alcotest.test_case "mp3d particles bounded" `Quick test_mp3d_conserves_particles;
    Alcotest.test_case "tomcatv stays finite" `Quick test_tomcatv_mesh_stays_finite;
    Alcotest.test_case "ocean residual" `Quick test_ocean_residual_positive;
    Alcotest.test_case "matmul correct on one node" `Quick
      test_matmul_race_is_benign_under_one_node;
    Alcotest.test_case "water physics" `Quick test_water_physics;
    Alcotest.test_case "water pipeline" `Slow test_water_through_the_pipeline;
    Alcotest.test_case "water hand annotation" `Quick test_water_hand_runs;
  ]
