(* The Section 5 example: using the annotations Cachier inserted to
   restructure a program.

   Cachier's annotations on the blocked matrix multiply reveal a cache-
   block race on the result matrix C: every inner-loop iteration checks an
   element out exclusive and back in, N^3 check-outs in total. The paper
   restructures the program to accumulate into a private copy and merge
   under locks, cutting the check-outs to N^2 P/2 of which only N^2 P/4
   race (now protected).

   Run with: dune exec examples/matmul_restructure.exe *)

let () =
  let nodes = 4 in
  let n = 16 in
  let machine = { Wwt.Machine.default with Wwt.Machine.nodes } in
  let mp = { Cico.Cost_model.mm_n = n; mm_p = nodes } in

  Fmt.pr "blocked matrix multiply, N=%d, %d processors@.@." n nodes;
  Fmt.pr "check-out counts from the cost model (Section 5):@.";
  Fmt.pr "  original:     N^3      = %.0f (all racing on C's cache blocks)@."
    (Cico.Cost_model.matmul_c_checkouts_original mp);
  Fmt.pr "  restructured: N^2 P/2  = %.0f@."
    (Cico.Cost_model.matmul_c_checkouts_restructured mp);
  Fmt.pr "  of which racy: N^2 P/4 = %.0f (lock protected)@.@."
    (Cico.Cost_model.matmul_c_raced_checkouts_restructured mp);

  (* 1. Annotate the original program; the report flags the race on C. *)
  let original = Lang.Parser.parse (Benchmarks.Matmul.source ~n ~nodes ()) in
  let r =
    Cachier.Annotate.annotate_program ~machine
      ~options:Cachier.Placement.default_options original
  in
  Fmt.pr "Cachier's report on the original program:@.%s@.@."
    (Cachier.Report.to_string r.Cachier.Annotate.report);

  (* 2. Measure original (annotated) vs restructured. *)
  let restructured =
    Lang.Parser.parse (Benchmarks.Matmul.restructured_source ~n ~nodes ())
  in
  let base = Wwt.Run.measure ~machine ~annotations:false ~prefetch:false original in
  let ann =
    Wwt.Run.measure ~machine ~annotations:true ~prefetch:false
      r.Cachier.Annotate.annotated
  in
  let restr = Wwt.Run.measure ~machine ~annotations:true ~prefetch:false restructured in
  Fmt.pr "execution time:@.";
  Fmt.pr "  original, unannotated:   %8d cycles@." base.Wwt.Interp.time;
  Fmt.pr "  original, Cachier CICO:  %8d cycles@." ann.Wwt.Interp.time;
  Fmt.pr "  restructured (locks):    %8d cycles@." restr.Wwt.Interp.time;
  Fmt.pr "@.software traps (block races): %d -> %d@."
    base.Wwt.Interp.stats.Memsys.Stats.sw_traps
    restr.Wwt.Interp.stats.Memsys.Stats.sw_traps;
  Fmt.pr "explicit check-outs in the restructured run: %d@."
    (Cico.Cost_model.measured_checkouts restr.Wwt.Interp.stats);

  (* 3. The restructured program is correct: C equals the true product. *)
  let a = Array.init (n * n) (fun q -> Wwt.Interp.noise (q + 1000003)) in
  let b = Array.init (n * n) (fun q -> Wwt.Interp.noise (q + 500000 + 1000003)) in
  let max_err = ref 0.0 in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      let expect = ref 0.0 in
      for k = 0 to n - 1 do
        expect := !expect +. (a.((i * n) + k) *. b.((k * n) + j))
      done;
      let got = Lang.Value.to_float (Wwt.Interp.shared_value restr "C" ((i * n) + j)) in
      max_err := max !max_err (Float.abs (got -. !expect))
    done
  done;
  Fmt.pr "@.restructured result max error vs reference: %g@." !max_err;
  assert (!max_err < 1e-9)
