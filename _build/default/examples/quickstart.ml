(* Quickstart: the whole Cachier pipeline in a dozen lines.

   1. Write a shared-memory program in the mini-language.
   2. Run it once on the simulated Dir1SW machine to collect a trace.
   3. Let Cachier insert CICO annotations.
   4. Measure unannotated vs annotated execution time.

   Run with: dune exec examples/quickstart.exe *)

let source =
  {|
const N = 512;
const NPROCS = 8;
shared A[N];
shared SUM[NPROCS];   // one partial sum per processor

proc main() {
  // processor 0 initialises the data
  if (pid == 0) {
    for i = 0 to N - 1 {
      A[i] = noise(i);
    }
  }
  barrier;
  // every processor repeatedly updates its slice (read-modify-write)
  for round = 1 to 4 {
    s = 0.0;
    for i = pid * (N / nprocs) to pid * (N / nprocs) + N / nprocs - 1 {
      A[i] = A[i] * 0.5 + 1.0;
      s = s + A[i];
    }
    SUM[pid] = s;
    barrier;
  }
}
|}

let () =
  let machine = { Wwt.Machine.default with Wwt.Machine.nodes = 8 } in
  let program = Lang.Parser.parse source in

  (* Step 1: baseline measurement. *)
  let base = Wwt.Run.measure ~machine ~annotations:false ~prefetch:false program in
  Fmt.pr "unannotated execution time: %d cycles@." base.Wwt.Interp.time;

  (* Step 2 + 3: trace the program and insert CICO annotations. *)
  let result =
    Cachier.Annotate.annotate_program ~machine
      ~options:Cachier.Placement.default_options program
  in
  Fmt.pr "@.Cachier inserted %d annotation(s):@.@." result.Cachier.Annotate.n_edits;
  print_string (Cachier.Annotate.to_source result);

  (* Step 4: measure the annotated program. *)
  let ann =
    Wwt.Run.measure ~machine ~annotations:true ~prefetch:false
      result.Cachier.Annotate.annotated
  in
  Fmt.pr "@.annotated execution time:   %d cycles (%.1f%% of unannotated)@."
    ann.Wwt.Interp.time
    (100.0 *. float_of_int ann.Wwt.Interp.time /. float_of_int base.Wwt.Interp.time);

  (* CICO annotations never change results. *)
  assert (base.Wwt.Interp.shared = ann.Wwt.Interp.shared);
  Fmt.pr "final results are identical with and without annotations@."
