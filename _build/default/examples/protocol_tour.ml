(* A guided tour of the Dir1SW protocol model, directive by directive —
   the machine-level story behind every number in the evaluation.

   Run with: dune exec examples/protocol_tour.exe *)

open Memsys

let costs = Network.default

let p = Protocol.create ~nodes:4 ~cache_bytes:1024 ~assoc:2 ~block_size:32 ~costs

let show label (o : Protocol.outcome) =
  Fmt.pr "  %-52s %4d cycles%s@." label o.Protocol.latency
    (match o.Protocol.miss with
    | Some Protocol.Read_miss -> "  (read miss)"
    | Some Protocol.Write_miss -> "  (write miss)"
    | Some Protocol.Write_fault -> "  (write fault)"
    | None -> "")

let () =
  Fmt.pr "Dir1SW, 4 nodes, %d-cycle 2-hop miss, %d-cycle software trap@.@."
    costs.Network.miss_2hop costs.Network.sw_trap;

  Fmt.pr "1. The implicit check-outs: every miss is one.@.";
  show "node 0 reads addr 0 (implicit check_out_s)" (Protocol.read p ~node:0 ~addr:0 ~now:0);
  show "node 0 reads addr 8, same block: hit" (Protocol.read p ~node:0 ~addr:8 ~now:10);

  Fmt.pr "@.2. The write fault: a Shared copy upgrades...@.";
  show "node 0 writes addr 0 (lone sharer: hardware upgrade)"
    (Protocol.write p ~node:0 ~addr:0 ~now:20);

  Fmt.pr "@.3. ...but with other sharers Dir1SW traps to software.@.";
  show "node 1 reads addr 0 (3-hop: owner has it dirty)"
    (Protocol.read p ~node:1 ~addr:0 ~now:30);
  show "node 2 reads addr 0" (Protocol.read p ~node:2 ~addr:0 ~now:40);
  show "node 0 writes addr 0 again: TRAP + 2 invalidations"
    (Protocol.write p ~node:0 ~addr:0 ~now:50);
  Fmt.pr "  (so far: %d software traps, %d invalidations)@."
    (Protocol.stats p).Stats.sw_traps
    (Protocol.stats p).Stats.invalidations;

  Fmt.pr "@.4. check_out_x claims the block before the read-then-write,@.";
  Fmt.pr "   so the fault never happens.@.";
  show "node 1 check_out_x addr 64" (Protocol.check_out_x p ~node:1 ~addr:64 ~now:60);
  show "node 1 reads addr 64: hit" (Protocol.read p ~node:1 ~addr:64 ~now:70);
  show "node 1 writes addr 64: hit, no fault" (Protocol.write p ~node:1 ~addr:64 ~now:80);

  Fmt.pr "@.5. check_in releases the block, so the next claimant pays a@.";
  Fmt.pr "   clean 2-hop fetch instead of a trap or a 3-hop recall.@.";
  show "node 1 check_in addr 64" (Protocol.check_in p ~node:1 ~addr:64 ~now:90);
  show "node 2 writes addr 64: clean 2-hop" (Protocol.write p ~node:2 ~addr:64 ~now:100);

  Fmt.pr "@.6. prefetch overlaps the transfer with computation.@.";
  show "node 3 prefetch_s addr 128 (issue cost only)"
    (Protocol.prefetch_s p ~node:3 ~addr:128 ~now:110);
  show "node 3 reads addr 128 at now+40: residual stall"
    (Protocol.read p ~node:3 ~addr:128 ~now:150);
  show "node 3 reads addr 136 much later: free"
    (Protocol.read p ~node:3 ~addr:136 ~now:500);

  Fmt.pr "@.7. post_store (KSR-1 extension): the producer pushes read-only@.";
  Fmt.pr "   copies back to everyone who lost the block.@.";
  ignore (Protocol.read p ~node:3 ~addr:192 ~now:600);
  ignore (Protocol.write p ~node:0 ~addr:192 ~now:610);  (* invalidates node 3 *)
  show "node 0 post_store addr 192" (Protocol.post_store p ~node:0 ~addr:192 ~now:620);
  show "node 3 reads addr 192 later: hit, data was pushed"
    (Protocol.read p ~node:3 ~addr:192 ~now:900);

  Fmt.pr "@.Final statistics:@.%a@." Stats.pp (Protocol.stats p)
