(* The Section 2.1 worked example: using the CICO cost model to compute a
   Jacobi relaxation's communication cost, and validating the closed forms
   against the simulator.

   The paper derives, for an N x N matrix on P^2 processors with b matrix
   elements per cache block over T time steps:

   - if each processor's block fits in its cache:
       total check-outs = 2NPT(1+b)/b + N^2/b
   - if only individual columns fit:
       total check-outs = (2NP(1+b)/b + N^2/b) * T

   and per processor, per matrix column: N/(bP) vs NT/(bP) — the factor T
   that motivates blocking.

   Run with: dune exec examples/jacobi_cost.exe *)

let () =
  let nodes = 4 in
  let n = 32 and t = 4 in
  let pr, pc = Benchmarks.Grid.factor nodes in
  assert (pr = pc);
  (* the model's P: the processor grid is P x P *)
  let jp = { Cico.Cost_model.n; p = pr; b = 4; t } in

  Fmt.pr "Jacobi relaxation, N=%d, P^2=%d processors, b=%d, T=%d@.@." n nodes
    jp.Cico.Cost_model.b t;

  Fmt.pr "analytic cost model (Section 2.1):@.";
  Fmt.pr "  boundary blocks per step  2NP(1+b)/b      = %.0f@."
    (Cico.Cost_model.jacobi_boundary_blocks_per_step jp);
  Fmt.pr "  matrix blocks             N^2/b           = %.0f@."
    (Cico.Cost_model.jacobi_matrix_blocks jp);
  Fmt.pr "  total, cache fits         2NPT(1+b)/b+N^2/b = %.0f blocks@."
    (Cico.Cost_model.jacobi_blocks_cache_fits jp);
  Fmt.pr "  total, column fits        (2NP(1+b)/b+N^2/b)T = %.0f blocks@."
    (Cico.Cost_model.jacobi_blocks_column_fits jp);
  Fmt.pr "  per processor per column: %.1f (fits) vs %.1f (spills) — factor T@.@."
    (Cico.Cost_model.jacobi_per_processor_column_checkouts jp ~cache_fits:true)
    (Cico.Cost_model.jacobi_per_processor_column_checkouts jp ~cache_fits:false);

  (* Now measure: annotate the Jacobi benchmark with Cachier and count the
     check-outs the hand (Section 2.1 style) version actually issues. *)
  let machine = { Wwt.Machine.default with Wwt.Machine.nodes } in
  let hand = Lang.Parser.parse (Benchmarks.Jacobi.hand_source ~n ~t ~nodes ()) in
  let o = Wwt.Run.measure ~machine ~annotations:true ~prefetch:false hand in
  Fmt.pr "simulated Section 2.1 hand annotation:@.";
  Fmt.pr "  explicit check-outs issued: %d@."
    (Cico.Cost_model.measured_checkouts o.Wwt.Interp.stats);
  Fmt.pr "  explicit check-ins issued:  %d@." o.Wwt.Interp.stats.Memsys.Stats.check_ins;
  Fmt.pr "  (the analytic model counts every block movement; the directives@.";
  Fmt.pr "   cover the boundary exchanges, which dominate communication)@.@.";

  (* Cachier's own annotation of the same program. *)
  let program = Lang.Parser.parse (Benchmarks.Jacobi.source ~n ~t ~nodes ()) in
  let r =
    Cachier.Annotate.annotate_program ~machine
      ~options:Cachier.Placement.default_options program
  in
  let base = Wwt.Run.measure ~machine ~annotations:false ~prefetch:false program in
  let ann =
    Wwt.Run.measure ~machine ~annotations:true ~prefetch:false
      r.Cachier.Annotate.annotated
  in
  Fmt.pr "Cachier-annotated Jacobi: %d cycles vs %d unannotated (%.1f%%)@."
    ann.Wwt.Interp.time base.Wwt.Interp.time
    (100.0 *. float_of_int ann.Wwt.Interp.time /. float_of_int base.Wwt.Interp.time)
