(* Race and false-sharing detection (Sections 1 and 4.3).

   Besides inserting annotations, Cachier flags potential data races (use
   locks) and false sharing (pad the data structure). This example shows
   both on Mp3d — whose particle-to-cell scatter races on dynamically
   computed addresses — and on a tiny program where padding makes the
   false sharing disappear.

   Run with: dune exec examples/race_report.exe *)

let machine = { Wwt.Machine.default with Wwt.Machine.nodes = 4 }

let report_of src =
  let r =
    Cachier.Annotate.annotate_source ~machine
      ~options:Cachier.Placement.default_options src
  in
  r.Cachier.Annotate.report

let () =
  Fmt.pr "=== Mp3d: dynamic data races ===@.";
  let report =
    report_of (Benchmarks.Mp3d.source ~particles:128 ~cells:16 ~t:2 ~nodes:4 ())
  in
  Fmt.pr "%s@.@." (Cachier.Report.to_string report);
  assert (Cachier.Report.races report <> []);

  Fmt.pr "=== False sharing, before padding ===@.";
  (* four processors write adjacent elements of one cache block *)
  let unpadded = "shared COUNT[4]; proc main() { for r = 1 to 8 { COUNT[pid] = COUNT[pid] + 1; barrier; } }" in
  let before = report_of unpadded in
  Fmt.pr "%s@.@." (Cachier.Report.to_string before);
  assert (Cachier.Report.false_sharing before <> []);

  Fmt.pr "=== False sharing, after padding ===@.";
  (* pad to one element per 32-byte block (4 elements of 8 bytes) *)
  let padded = "shared COUNT[16]; proc main() { for r = 1 to 8 { COUNT[pid * 4] = COUNT[pid * 4] + 1; barrier; } }" in
  let after = report_of padded in
  Fmt.pr "%s@.@." (Cachier.Report.to_string after);
  assert (Cachier.Report.false_sharing after = []);

  (* Padding also pays off in simulated time. *)
  let time src =
    (Wwt.Run.source_measure ~machine ~annotations:false ~prefetch:false src)
      .Wwt.Interp.time
  in
  let t_unpadded = time unpadded and t_padded = time padded in
  Fmt.pr "execution time: %d cycles unpadded vs %d padded (%.1fx)@." t_unpadded
    t_padded
    (float_of_int t_unpadded /. float_of_int t_padded)
