examples/training_set.ml: Benchmarks Cachier Fmt Lang Wwt
