examples/quickstart.mli:
