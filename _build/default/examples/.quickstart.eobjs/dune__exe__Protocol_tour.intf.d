examples/protocol_tour.mli:
