examples/training_set.mli:
