examples/protocol_tour.ml: Fmt Memsys Network Protocol Stats
