examples/race_report.ml: Benchmarks Cachier Fmt Wwt
