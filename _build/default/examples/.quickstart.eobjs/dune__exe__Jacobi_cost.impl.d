examples/jacobi_cost.ml: Benchmarks Cachier Cico Fmt Lang Memsys Wwt
