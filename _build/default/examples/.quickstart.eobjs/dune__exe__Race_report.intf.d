examples/race_report.mli:
