examples/matmul_restructure.mli:
