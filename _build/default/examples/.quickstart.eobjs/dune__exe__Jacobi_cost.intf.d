examples/jacobi_cost.mli:
