examples/quickstart.ml: Cachier Fmt Lang Wwt
