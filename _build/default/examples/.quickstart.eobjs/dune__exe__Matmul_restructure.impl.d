examples/matmul_restructure.ml: Array Benchmarks Cachier Cico Float Fmt Lang Memsys Wwt
