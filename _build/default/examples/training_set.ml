(* Training-set annotation and lock-aware race reporting — the two
   extensions this reproduction adds beyond the paper's core (both are
   discussed in the paper: Section 4.5 mentions the training-set
   alternative it chose not to need; Section 3.1 ignores locks).

   Run with: dune exec examples/training_set.exe *)

let machine = { Wwt.Machine.default with Wwt.Machine.nodes = 4 }
let opts = Cachier.Placement.default_options

let () =
  (* Mp3d's memory accesses depend on the input data: particles scatter
     into cells whose addresses come from their positions. *)
  let prog =
    Lang.Parser.parse
      (Benchmarks.Mp3d.source ~particles:256 ~cells:32 ~t:3 ~nodes:4 ())
  in

  Fmt.pr "=== Section 4.5: single trace vs training set ===@.";
  let single =
    Cachier.Annotate.annotate_training ~machine ~options:opts
      ~seed_const:"SEED" ~seeds:[ 1 ] prog
  in
  let multi =
    Cachier.Annotate.annotate_training ~machine ~options:opts
      ~seed_const:"SEED" ~seeds:[ 1; 2; 3 ] prog
  in
  Fmt.pr "annotations from one trace: %d; from three traces: %d@."
    single.Cachier.Annotate.n_edits multi.Cachier.Annotate.n_edits;

  (* Evaluate both on an input none of the traces saw. *)
  let on_fresh p = Benchmarks.Suite.reseed p 42 in
  let time ?(annotations = false) p =
    (Wwt.Run.measure ~machine ~annotations ~prefetch:false p).Wwt.Interp.time
  in
  let base = time (on_fresh prog) in
  let t1 = time ~annotations:true (on_fresh single.Cachier.Annotate.annotated) in
  let t3 = time ~annotations:true (on_fresh multi.Cachier.Annotate.annotated) in
  Fmt.pr "on an unseen input: unannotated %d, single-trace %d (%.1f%%), \
          training-set %d (%.1f%%)@."
    base t1
    (100.0 *. float_of_int t1 /. float_of_int base)
    t3
    (100.0 *. float_of_int t3 /. float_of_int base);
  Fmt.pr "(the paper found one execution sufficient; the training set \
          confirms it)@.@.";

  Fmt.pr "=== Lock-aware race reporting ===@.";
  (* The same shared counter, once racy and once lock-protected: the
     lockset refinement keeps the report honest. *)
  let racy =
    "shared T[4]; proc main() { for i = 1 to 8 { T[0] = T[0] + 1; } barrier; }"
  in
  let locked =
    "shared T[4]; proc main() { for i = 1 to 8 { lock(0); T[0] = T[0] + 1; \
     unlock(0); } barrier; }"
  in
  let report src =
    (Cachier.Annotate.annotate_source ~machine ~options:opts src)
      .Cachier.Annotate.report
  in
  Fmt.pr "unprotected counter: %s@." (Cachier.Report.to_string (report racy));
  Fmt.pr "lock-protected:      %s@." (Cachier.Report.to_string (report locked));
  assert (Cachier.Report.races (report racy) <> []);
  assert (Cachier.Report.races (report locked) = [])
