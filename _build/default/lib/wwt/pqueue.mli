(** A mutable binary min-heap keyed by integer priority.

    Entries with equal priority are returned in insertion (FIFO) order, so
    discrete-event simulations using it are deterministic. *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool
val push : 'a t -> prio:int -> 'a -> unit

val pop : 'a t -> (int * 'a) option
(** Remove and return the minimum-priority entry. *)

val peek_prio : 'a t -> int option
