lib/wwt/pqueue.ml: Array
