lib/wwt/compile.mli: Interp Lang Machine
