lib/wwt/interp.mli: Lang Machine Memsys Trace
