lib/wwt/pqueue.mli:
