lib/wwt/compile.ml: Array Ast Float Format Hashtbl Interp Label Lang List Machine Memsys Option Printf Sched Sema String Trace Value
