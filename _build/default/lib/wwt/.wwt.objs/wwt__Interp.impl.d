lib/wwt/interp.ml: Array Ast Float Format Hashtbl Int64 Label Lang List Machine Memsys Option Printf Sched Sema String Trace Value
