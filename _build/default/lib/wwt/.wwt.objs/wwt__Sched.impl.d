lib/wwt/sched.ml: Array Effect Hashtbl List Pqueue Printf Queue
