lib/wwt/sched.mli:
