lib/wwt/run.mli: Interp Lang Machine
