lib/wwt/run.ml: Compile Interp Lang Machine
