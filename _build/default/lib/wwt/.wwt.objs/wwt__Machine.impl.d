lib/wwt/machine.ml: Memsys
