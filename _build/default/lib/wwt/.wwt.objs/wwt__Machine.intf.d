lib/wwt/machine.mli: Memsys
