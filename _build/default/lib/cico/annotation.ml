type t = Lang.Ast.annot_kind =
  | Check_out_x
  | Check_out_s
  | Check_in
  | Prefetch_x
  | Prefetch_s
  | Post_store

let name = Lang.Ast.annot_kind_name

let of_name = function
  | "check_out_x" -> Some Check_out_x
  | "check_out_s" -> Some Check_out_s
  | "check_in" -> Some Check_in
  | "prefetch_x" -> Some Prefetch_x
  | "prefetch_s" -> Some Prefetch_s
  | "post_store" -> Some Post_store
  | _ -> None

let all = [ Check_out_x; Check_out_s; Check_in; Prefetch_x; Prefetch_s; Post_store ]

let is_check_out = function
  | Check_out_x | Check_out_s -> true
  | Check_in | Prefetch_x | Prefetch_s | Post_store -> false

let is_prefetch = function
  | Prefetch_x | Prefetch_s -> true
  | Check_out_x | Check_out_s | Check_in | Post_store -> false

let describe = function
  | Check_out_x ->
      "request exclusive access to a cache block before first write \
       (avoids a later shared-to-exclusive upgrade)"
  | Check_out_s -> "request shared read-only access to a cache block"
  | Check_in ->
      "relinquish a cache block: flush it and release the directory entry \
       (avoids later invalidations)"
  | Prefetch_x -> "hint that the block will be written in the near future"
  | Prefetch_s -> "hint that the block will be read in the near future"
  | Post_store ->
      "write the block back and push read-only copies to the nodes that \
       previously held it (KSR-1-style post-store; extension)"
