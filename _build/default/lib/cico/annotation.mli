(** The five CICO annotations and their roles (Section 1, Section 2.1).

    This module documents the model-level meaning of each annotation and
    provides the small amount of shared vocabulary used by the cost model
    and the reports. The syntactic representation lives in {!Lang.Ast}. *)

type t = Lang.Ast.annot_kind =
  | Check_out_x
      (** request exclusive (writable) access to a cache block *)
  | Check_out_s  (** request shared (read-only) access *)
  | Check_in  (** relinquish access: flush the block, release the
                  directory entry *)
  | Prefetch_x  (** hint: the block will be written soon *)
  | Prefetch_s  (** hint: the block will be read soon *)
  | Post_store
      (** extension: the KSR-1 post-store the paper's introduction
          compares to check-in — push read-only copies to past holders *)

val name : t -> string
val of_name : string -> t option
val all : t list
(** The paper's five annotations plus the [Post_store] extension. *)

val is_check_out : t -> bool
val is_prefetch : t -> bool

val describe : t -> string
(** One-line description of the annotation's role in the CICO model. *)
