lib/cico/cost_model.mli: Memsys
