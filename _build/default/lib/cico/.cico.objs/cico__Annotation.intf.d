lib/cico/annotation.mli: Lang
