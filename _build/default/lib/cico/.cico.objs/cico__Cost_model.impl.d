lib/cico/cost_model.ml: Memsys
