lib/cico/annotation.ml: Lang
