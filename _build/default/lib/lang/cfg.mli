(** Control-flow graph of one procedure, at statement granularity.

    Nodes are statement ids plus two virtual nodes, [entry] and [exit].
    Structured control flow makes construction syntax-directed: an [if]
    branches to both arms, a loop header branches to its body and to the
    loop exit, the last body statement branches back to the header, and a
    [return] jumps straight to [exit]. *)

type t

val entry : int
(** Virtual entry node id (-1). *)

val exit_node : int
(** Virtual exit node id (-2). *)

val build : Ast.proc -> t

val successors : t -> int -> int list
val predecessors : t -> int -> int list
val nodes : t -> int list
(** All statement ids plus [entry] and [exit_node]. *)

val reachable : t -> int list
(** Nodes reachable from [entry] (always includes [entry]). *)

val unreachable_sids : t -> int list
(** Statement ids that can never execute (e.g. code after [return]). *)
