(** Loop-structure analysis (Section 4.3 uses it to collapse annotations).

    In a structured language the loop forest is syntax-directed. Each loop
    records its header statement, induction variable (for [for] loops), its
    nesting depth (1 = outermost) and every statement id in its body,
    including those of nested loops. *)

type loop = {
  header_sid : int;
  var : string option;  (** induction variable; [None] for [while] *)
  depth : int;
  body_sids : int list;  (** all sids strictly inside the loop *)
}

val of_proc : Ast.proc -> loop list
(** Loops in pre-order (outer before inner). *)

val of_program : Ast.program -> loop list
(** Loops of every procedure, in program order. *)

val containing : loop list -> int -> loop list
(** Loops whose body contains the statement, outermost first. *)

val innermost_containing : loop list -> int -> loop option

val loop_of_header : loop list -> int -> loop option
