(** Unparser. Output is valid input for {!Parser.parse} (round-trip).

    [note] lets a caller attach a comment to statements — Cachier uses it
    to print the [/*** Data Race on ... ***/] warnings of Section 4.4. *)

val expr_to_string : Ast.expr -> string

val program_to_string : ?note:(int -> string option) -> Ast.program -> string
(** [note sid] is printed as a [/*** ... ***/] comment line immediately
    before the statement with id [sid]. *)

val stmt_to_string : Ast.stmt -> string
(** Single statement at indentation 0 (used in reports and tests). *)
