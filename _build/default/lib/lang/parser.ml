exception Error of string

type state = {
  toks : (Lexer.token * int) array;
  mutable pos : int;
  mutable next_sid : int;
}

let error st fmt =
  let line = match st.toks.(st.pos) with _, l -> l in
  Format.kasprintf
    (fun s -> raise (Error (Printf.sprintf "line %d: %s" line s)))
    fmt

let peek st = fst st.toks.(st.pos)

let advance st = st.pos <- st.pos + 1

let expect st tok what =
  if peek st = tok then advance st
  else
    error st "expected %s, found %s" what
      (Lexer.token_to_string (peek st))

let fresh_sid st =
  let sid = st.next_sid in
  st.next_sid <- sid + 1;
  sid

let ident st =
  match peek st with
  | Lexer.IDENT s ->
      advance st;
      s
  | t -> error st "expected identifier, found %s" (Lexer.token_to_string t)

(* ---- expressions ---- *)

let rec expr st = or_expr st

and or_expr st =
  let lhs = and_expr st in
  if peek st = Lexer.OROR then begin
    advance st;
    Ast.Ebinop (Ast.Or, lhs, or_expr st)
  end
  else lhs

and and_expr st =
  let lhs = eq_expr st in
  if peek st = Lexer.ANDAND then begin
    advance st;
    Ast.Ebinop (Ast.And, lhs, and_expr st)
  end
  else lhs

and eq_expr st =
  let lhs = rel_expr st in
  match peek st with
  | Lexer.EQ ->
      advance st;
      Ast.Ebinop (Ast.Eq, lhs, rel_expr st)
  | Lexer.NE ->
      advance st;
      Ast.Ebinop (Ast.Ne, lhs, rel_expr st)
  | _ -> lhs

and rel_expr st =
  let lhs = add_expr st in
  match peek st with
  | Lexer.LT -> advance st; Ast.Ebinop (Ast.Lt, lhs, add_expr st)
  | Lexer.LE -> advance st; Ast.Ebinop (Ast.Le, lhs, add_expr st)
  | Lexer.GT -> advance st; Ast.Ebinop (Ast.Gt, lhs, add_expr st)
  | Lexer.GE -> advance st; Ast.Ebinop (Ast.Ge, lhs, add_expr st)
  | _ -> lhs

and add_expr st =
  let rec loop lhs =
    match peek st with
    | Lexer.PLUS -> advance st; loop (Ast.Ebinop (Ast.Add, lhs, mul_expr st))
    | Lexer.MINUS -> advance st; loop (Ast.Ebinop (Ast.Sub, lhs, mul_expr st))
    | _ -> lhs
  in
  loop (mul_expr st)

and mul_expr st =
  let rec loop lhs =
    match peek st with
    | Lexer.STAR -> advance st; loop (Ast.Ebinop (Ast.Mul, lhs, unary st))
    | Lexer.SLASH -> advance st; loop (Ast.Ebinop (Ast.Div, lhs, unary st))
    | Lexer.PERCENT -> advance st; loop (Ast.Ebinop (Ast.Mod, lhs, unary st))
    | _ -> lhs
  in
  loop (unary st)

and unary st =
  match peek st with
  | Lexer.MINUS ->
      advance st;
      Ast.Eunop (Ast.Neg, unary st)
  | Lexer.BANG ->
      advance st;
      Ast.Eunop (Ast.Not, unary st)
  | _ -> primary st

and primary st =
  match peek st with
  | Lexer.INT i ->
      advance st;
      Ast.Eint i
  | Lexer.FLOAT f ->
      advance st;
      Ast.Efloat f
  | Lexer.LPAREN ->
      advance st;
      let e = expr st in
      expect st Lexer.RPAREN ")";
      e
  | Lexer.IDENT name -> (
      advance st;
      match peek st with
      | Lexer.LPAREN ->
          advance st;
          let args = arg_list st in
          expect st Lexer.RPAREN ")";
          Ast.Ecall (name, args)
      | Lexer.LBRACKET ->
          advance st;
          let e = expr st in
          expect st Lexer.RBRACKET "]";
          Ast.Eindex (name, e)
      | _ -> Ast.Evar name)
  | t -> error st "expected expression, found %s" (Lexer.token_to_string t)

and arg_list st =
  if peek st = Lexer.RPAREN then []
  else
    let rec loop acc =
      let e = expr st in
      if peek st = Lexer.COMMA then begin
        advance st;
        loop (e :: acc)
      end
      else List.rev (e :: acc)
    in
    loop []

(* ---- statements ---- *)

let annot_kind_of_name = function
  | "check_out_x" -> Some Ast.Check_out_x
  | "check_out_s" -> Some Ast.Check_out_s
  | "check_in" -> Some Ast.Check_in
  | "prefetch_x" -> Some Ast.Prefetch_x
  | "prefetch_s" -> Some Ast.Prefetch_s
  | "post_store" -> Some Ast.Post_store
  | _ -> None

let int_lit st =
  match peek st with
  | Lexer.INT i ->
      advance st;
      i
  | Lexer.MINUS -> (
      advance st;
      match peek st with
      | Lexer.INT i ->
          advance st;
          -i
      | t -> error st "expected integer, found %s" (Lexer.token_to_string t))
  | t -> error st "expected integer, found %s" (Lexer.token_to_string t)

(* "@pid: lo..hi, lo..hi @pid: ..." inside the brackets of an annotation *)
let annot_table st kind arr =
  let rows = ref [] in
  while peek st = Lexer.AT do
    advance st;
    let pid = int_lit st in
    expect st Lexer.COLON ":";
    let ranges = ref [] in
    let rec more () =
      let lo = int_lit st in
      expect st Lexer.DOTDOT "..";
      let hi = int_lit st in
      ranges := (lo, hi) :: !ranges;
      if peek st = Lexer.COMMA then begin
        advance st;
        more ()
      end
    in
    more ();
    rows := (pid, List.rev !ranges) :: !rows
  done;
  let rows = List.rev !rows in
  let max_pid = List.fold_left (fun m (p, _) -> max m p) (-1) rows in
  let table = Array.make (max_pid + 1) [] in
  List.iter (fun (p, rs) -> table.(p) <- table.(p) @ rs) rows;
  Ast.Sannot_table { akind = kind; aarr = arr; aranges = table }

let rec stmt st =
  let sid = fresh_sid st in
  let node = stmt_kind st in
  { Ast.sid; node }

and block st =
  expect st Lexer.LBRACE "{";
  let rec loop acc =
    if peek st = Lexer.RBRACE then begin
      advance st;
      List.rev acc
    end
    else loop (stmt st :: acc)
  in
  loop []

and stmt_kind st =
  match peek st with
  | Lexer.IDENT "if" ->
      advance st;
      expect st Lexer.LPAREN "(";
      let cond = expr st in
      expect st Lexer.RPAREN ")";
      let then_ = block st in
      let else_ =
        if peek st = Lexer.IDENT "else" then begin
          advance st;
          if peek st = Lexer.IDENT "if" then [ stmt st ] else block st
        end
        else []
      in
      Ast.Sif (cond, then_, else_)
  | Lexer.IDENT "for" ->
      advance st;
      let var = ident st in
      expect st Lexer.ASSIGN "=";
      let from_ = expr st in
      expect st (Lexer.IDENT "to") "to";
      let to_ = expr st in
      let step =
        if peek st = Lexer.IDENT "step" then begin
          advance st;
          expr st
        end
        else Ast.Eint 1
      in
      let body = block st in
      Ast.Sfor { var; from_; to_; step; body }
  | Lexer.IDENT "while" ->
      advance st;
      expect st Lexer.LPAREN "(";
      let cond = expr st in
      expect st Lexer.RPAREN ")";
      Ast.Swhile (cond, block st)
  | Lexer.IDENT "barrier" ->
      advance st;
      expect st Lexer.SEMI ";";
      Ast.Sbarrier
  | Lexer.IDENT "return" ->
      advance st;
      if peek st = Lexer.SEMI then begin
        advance st;
        Ast.Sreturn None
      end
      else
        let e = expr st in
        expect st Lexer.SEMI ";";
        Ast.Sreturn (Some e)
  | Lexer.IDENT "lock" ->
      advance st;
      expect st Lexer.LPAREN "(";
      let e = expr st in
      expect st Lexer.RPAREN ")";
      expect st Lexer.SEMI ";";
      Ast.Slock e
  | Lexer.IDENT "unlock" ->
      advance st;
      expect st Lexer.LPAREN "(";
      let e = expr st in
      expect st Lexer.RPAREN ")";
      expect st Lexer.SEMI ";";
      Ast.Sunlock e
  | Lexer.IDENT "print" ->
      advance st;
      expect st Lexer.LPAREN "(";
      let args = arg_list st in
      expect st Lexer.RPAREN ")";
      expect st Lexer.SEMI ";";
      Ast.Sprint args
  | Lexer.IDENT name when annot_kind_of_name name <> None -> (
      let kind = Option.get (annot_kind_of_name name) in
      advance st;
      let arr = ident st in
      expect st Lexer.LBRACKET "[";
      if peek st = Lexer.AT then begin
        let node = annot_table st kind arr in
        expect st Lexer.RBRACKET "]";
        expect st Lexer.SEMI ";";
        node
      end
      else
        let lo = expr st in
        let hi =
          if peek st = Lexer.DOTDOT then begin
            advance st;
            expr st
          end
          else lo
        in
        expect st Lexer.RBRACKET "]";
        expect st Lexer.SEMI ";";
        Ast.Sannot (kind, { Ast.arr; lo; hi }))
  | Lexer.IDENT name -> (
      advance st;
      match peek st with
      | Lexer.LPAREN ->
          advance st;
          let args = arg_list st in
          expect st Lexer.RPAREN ")";
          expect st Lexer.SEMI ";";
          Ast.Scall (name, args)
      | Lexer.LBRACKET ->
          advance st;
          let idx = expr st in
          expect st Lexer.RBRACKET "]";
          expect st Lexer.ASSIGN "=";
          let rhs = expr st in
          expect st Lexer.SEMI ";";
          Ast.Sassign (Ast.Lindex (name, idx), rhs)
      | Lexer.ASSIGN ->
          advance st;
          let rhs = expr st in
          expect st Lexer.SEMI ";";
          Ast.Sassign (Ast.Lvar name, rhs)
      | t ->
          error st "expected '(', '[' or '=' after %s, found %s" name
            (Lexer.token_to_string t))
  | t -> error st "expected statement, found %s" (Lexer.token_to_string t)

(* ---- top level ---- *)

let decl_or_proc st =
  match peek st with
  | Lexer.IDENT "const" ->
      advance st;
      let name = ident st in
      expect st Lexer.ASSIGN "=";
      let e = expr st in
      expect st Lexer.SEMI ";";
      `Decl (Ast.Dconst (name, e))
  | Lexer.IDENT (("shared" | "private") as kw) ->
      advance st;
      let name = ident st in
      expect st Lexer.LBRACKET "[";
      let size = expr st in
      expect st Lexer.RBRACKET "]";
      expect st Lexer.SEMI ";";
      `Decl
        (if kw = "shared" then Ast.Dshared (name, size)
         else Ast.Dprivate (name, size))
  | Lexer.IDENT "proc" ->
      advance st;
      let name = ident st in
      expect st Lexer.LPAREN "(";
      let params =
        if peek st = Lexer.RPAREN then []
        else
          let rec loop acc =
            let p = ident st in
            if peek st = Lexer.COMMA then begin
              advance st;
              loop (p :: acc)
            end
            else List.rev (p :: acc)
          in
          loop []
      in
      expect st Lexer.RPAREN ")";
      let body = block st in
      `Proc { Ast.pname = name; params; body }
  | t ->
      error st "expected 'const', 'shared', 'private' or 'proc', found %s"
        (Lexer.token_to_string t)

let parse src =
  let toks = Array.of_list (Lexer.tokenize src) in
  let st = { toks; pos = 0; next_sid = 0 } in
  let decls = ref [] and procs = ref [] in
  while peek st <> Lexer.EOF do
    match decl_or_proc st with
    | `Decl d -> decls := d :: !decls
    | `Proc p -> procs := p :: !procs
  done;
  { Ast.decls = List.rev !decls; procs = List.rev !procs }

let parse_expr src =
  let toks = Array.of_list (Lexer.tokenize src) in
  let st = { toks; pos = 0; next_sid = 0 } in
  let e = expr st in
  expect st Lexer.EOF "end of input";
  e
