(** Combinators for building AST fragments programmatically.

    All statements are created with [sid = -1]; run {!Ast.renumber} on the
    finished program before interpreting it. *)

val i : int -> Ast.expr
val f : float -> Ast.expr
val v : string -> Ast.expr
val idx : string -> Ast.expr -> Ast.expr
val ( + ) : Ast.expr -> Ast.expr -> Ast.expr
val ( - ) : Ast.expr -> Ast.expr -> Ast.expr
val ( * ) : Ast.expr -> Ast.expr -> Ast.expr
val ( / ) : Ast.expr -> Ast.expr -> Ast.expr
val ( % ) : Ast.expr -> Ast.expr -> Ast.expr
val ( < ) : Ast.expr -> Ast.expr -> Ast.expr
val ( <= ) : Ast.expr -> Ast.expr -> Ast.expr
val ( == ) : Ast.expr -> Ast.expr -> Ast.expr
val call : string -> Ast.expr list -> Ast.expr
val pid : Ast.expr
val nprocs : Ast.expr

val stmt : Ast.stmt_kind -> Ast.stmt
val assign : string -> Ast.expr -> Ast.stmt
val store : string -> Ast.expr -> Ast.expr -> Ast.stmt
(** [store arr idx value] is [arr\[idx\] = value;]. *)

val for_ : string -> Ast.expr -> Ast.expr -> ?step:Ast.expr -> Ast.block -> Ast.stmt
val if_ : Ast.expr -> Ast.block -> ?else_:Ast.block -> unit -> Ast.stmt
val barrier : Ast.stmt
val annot : Ast.annot_kind -> string -> lo:Ast.expr -> hi:Ast.expr -> Ast.stmt
val annot_table :
  Ast.annot_kind -> string -> (int * int) list array -> Ast.stmt
val print : Ast.expr list -> Ast.stmt

val proc : string -> ?params:string list -> Ast.block -> Ast.proc
val program : decls:Ast.decl list -> procs:Ast.proc list -> Ast.program
(** Assembles and renumbers the program. *)
