(** Runtime values of the mini-language: integers and floats.

    Arithmetic promotes to float when either operand is a float, as in C.
    Comparisons and logic produce [Vint 0] / [Vint 1]. *)

type t = Vint of int | Vfloat of float

val zero : t
val of_bool : bool -> t
val to_bool : t -> bool
val to_int : t -> int
(** Truncates floats toward zero. *)

val to_float : t -> float

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
(** Integer division when both are ints. @raise Division_by_zero. *)

val modulo : t -> t -> t
val neg : t -> t

val compare_num : t -> t -> int
(** Numeric comparison across int/float. *)

val equal : t -> t -> bool
(** Numeric equality ([Vint 2 = Vfloat 2.0]). *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
