type assoc = Left | Right | Non

let op_info = function
  | Ast.Or -> (1, Right)
  | Ast.And -> (2, Right)
  | Ast.Eq | Ast.Ne -> (3, Non)
  | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge -> (4, Non)
  | Ast.Add | Ast.Sub -> (5, Left)
  | Ast.Mul | Ast.Div | Ast.Mod -> (6, Left)

let float_literal f =
  (* Print floats so they re-lex as FLOAT (always keep a decimal point). *)
  let s = Printf.sprintf "%.12g" f in
  if String.contains s '.' || String.contains s 'e' || String.contains s 'n'
  then s
  else s ^ ".0"

let rec expr_prec buf min_prec e =
  let add = Buffer.add_string buf in
  match e with
  | Ast.Eint i ->
      if i < 0 then add (Printf.sprintf "(%d)" i) else add (string_of_int i)
  | Ast.Efloat f ->
      if f < 0.0 then add (Printf.sprintf "(%s)" (float_literal f))
      else add (float_literal f)
  | Ast.Evar name -> add name
  | Ast.Eindex (name, e) ->
      add name;
      add "[";
      expr_prec buf 0 e;
      add "]"
  | Ast.Ecall (name, args) ->
      add name;
      add "(";
      List.iteri
        (fun k a ->
          if k > 0 then add ", ";
          expr_prec buf 0 a)
        args;
      add ")"
  | Ast.Eunop (op, a) ->
      add (match op with Ast.Neg -> "-" | Ast.Not -> "!");
      expr_prec buf 7 a
  | Ast.Ebinop (op, l, r) ->
      let prec, assoc = op_info op in
      let need_parens = prec < min_prec in
      if need_parens then add "(";
      expr_prec buf (if assoc = Left then prec else prec + 1) l;
      add " ";
      add (Ast.binop_name op);
      add " ";
      expr_prec buf (if assoc = Right then prec else prec + 1) r;
      if need_parens then add ")"

let expr_to_string e =
  let buf = Buffer.create 64 in
  expr_prec buf 0 e;
  Buffer.contents buf

let range_to_string { Ast.arr; lo; hi } =
  if lo = hi then Printf.sprintf "%s[%s]" arr (expr_to_string lo)
  else Printf.sprintf "%s[%s .. %s]" arr (expr_to_string lo) (expr_to_string hi)

let table_to_string { Ast.akind; aarr; aranges } =
  let buf = Buffer.create 64 in
  Buffer.add_string buf (Ast.annot_kind_name akind);
  Buffer.add_string buf (" " ^ aarr ^ "[");
  Array.iteri
    (fun pid ranges ->
      if ranges <> [] then begin
        Buffer.add_string buf (Printf.sprintf "@%d: " pid);
        List.iteri
          (fun k (lo, hi) ->
            if k > 0 then Buffer.add_string buf ", ";
            Buffer.add_string buf (Printf.sprintf "%d..%d" lo hi))
          ranges;
        Buffer.add_string buf " "
      end)
    aranges;
  (* A table with no ranges at all still needs one row to re-parse. *)
  if Array.for_all (fun r -> r = []) aranges then
    Buffer.add_string buf "@0: 0..-1 ";
  Buffer.add_string buf "];";
  Buffer.contents buf

let rec stmt_lines ~note ~indent (s : Ast.stmt) =
  let pad = String.make (indent * 2) ' ' in
  let line txt = pad ^ txt in
  let comment =
    match note s.Ast.sid with
    | Some msg -> [ line (Printf.sprintf "/*** %s ***/" msg) ]
    | None -> []
  in
  comment
  @
  match s.Ast.node with
  | Ast.Sassign (Ast.Lvar name, e) ->
      [ line (Printf.sprintf "%s = %s;" name (expr_to_string e)) ]
  | Ast.Sassign (Ast.Lindex (name, idx), e) ->
      [
        line
          (Printf.sprintf "%s[%s] = %s;" name (expr_to_string idx)
             (expr_to_string e));
      ]
  | Ast.Sif (cond, b1, b2) ->
      let head = line (Printf.sprintf "if (%s) {" (expr_to_string cond)) in
      let mid = block_lines ~note ~indent:(indent + 1) b1 in
      if b2 = [] then (head :: mid) @ [ line "}" ]
      else
        (head :: mid)
        @ [ line "} else {" ]
        @ block_lines ~note ~indent:(indent + 1) b2
        @ [ line "}" ]
  | Ast.Sfor { var; from_; to_; step; body } ->
      let step_txt =
        match step with
        | Ast.Eint 1 -> ""
        | e -> " step " ^ expr_to_string e
      in
      let head =
        line
          (Printf.sprintf "for %s = %s to %s%s {" var (expr_to_string from_)
             (expr_to_string to_) step_txt)
      in
      (head :: block_lines ~note ~indent:(indent + 1) body) @ [ line "}" ]
  | Ast.Swhile (cond, body) ->
      let head = line (Printf.sprintf "while (%s) {" (expr_to_string cond)) in
      (head :: block_lines ~note ~indent:(indent + 1) body) @ [ line "}" ]
  | Ast.Sbarrier -> [ line "barrier;" ]
  | Ast.Scall (name, args) ->
      [
        line
          (Printf.sprintf "%s(%s);" name
             (String.concat ", " (List.map expr_to_string args)));
      ]
  | Ast.Sreturn None -> [ line "return;" ]
  | Ast.Sreturn (Some e) -> [ line (Printf.sprintf "return %s;" (expr_to_string e)) ]
  | Ast.Slock e -> [ line (Printf.sprintf "lock(%s);" (expr_to_string e)) ]
  | Ast.Sunlock e -> [ line (Printf.sprintf "unlock(%s);" (expr_to_string e)) ]
  | Ast.Sannot (kind, r) ->
      [ line (Printf.sprintf "%s %s;" (Ast.annot_kind_name kind) (range_to_string r)) ]
  | Ast.Sannot_table tbl -> [ line (table_to_string tbl) ]
  | Ast.Sprint args ->
      [
        line
          (Printf.sprintf "print(%s);"
             (String.concat ", " (List.map expr_to_string args)));
      ]

and block_lines ~note ~indent block =
  List.concat_map (stmt_lines ~note ~indent) block

let decl_to_string = function
  | Ast.Dconst (name, e) -> Printf.sprintf "const %s = %s;" name (expr_to_string e)
  | Ast.Dshared (name, e) -> Printf.sprintf "shared %s[%s];" name (expr_to_string e)
  | Ast.Dprivate (name, e) ->
      Printf.sprintf "private %s[%s];" name (expr_to_string e)

let program_to_string ?(note = fun _ -> None) (p : Ast.program) =
  let buf = Buffer.create 1024 in
  List.iter (fun d -> Buffer.add_string buf (decl_to_string d ^ "\n")) p.Ast.decls;
  if p.Ast.decls <> [] then Buffer.add_char buf '\n';
  List.iteri
    (fun k (proc : Ast.proc) ->
      if k > 0 then Buffer.add_char buf '\n';
      Buffer.add_string buf
        (Printf.sprintf "proc %s(%s) {\n" proc.pname
           (String.concat ", " proc.params));
      List.iter
        (fun l -> Buffer.add_string buf (l ^ "\n"))
        (block_lines ~note ~indent:1 proc.body);
      Buffer.add_string buf "}\n")
    p.Ast.procs;
  Buffer.contents buf

let stmt_to_string s =
  String.concat "\n" (stmt_lines ~note:(fun _ -> None) ~indent:0 s)
