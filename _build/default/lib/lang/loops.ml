type loop = {
  header_sid : int;
  var : string option;
  depth : int;
  body_sids : int list;
}

let sids_of_block block =
  let acc = ref [] in
  let rec stmt (s : Ast.stmt) =
    acc := s.Ast.sid :: !acc;
    match s.Ast.node with
    | Ast.Sif (_, b1, b2) ->
        List.iter stmt b1;
        List.iter stmt b2
    | Ast.Sfor { body; _ } | Ast.Swhile (_, body) -> List.iter stmt body
    | Ast.Sassign _ | Ast.Sbarrier | Ast.Scall _ | Ast.Sreturn _ | Ast.Slock _
    | Ast.Sunlock _ | Ast.Sannot _ | Ast.Sannot_table _ | Ast.Sprint _ ->
        ()
  in
  List.iter stmt block;
  List.rev !acc

let of_proc (proc : Ast.proc) =
  let loops = ref [] in
  let rec walk_block depth block = List.iter (walk_stmt depth) block
  and walk_stmt depth (s : Ast.stmt) =
    match s.Ast.node with
    | Ast.Sfor { var; body; _ } ->
        loops :=
          {
            header_sid = s.Ast.sid;
            var = Some var;
            depth = depth + 1;
            body_sids = sids_of_block body;
          }
          :: !loops;
        walk_block (depth + 1) body
    | Ast.Swhile (_, body) ->
        loops :=
          {
            header_sid = s.Ast.sid;
            var = None;
            depth = depth + 1;
            body_sids = sids_of_block body;
          }
          :: !loops;
        walk_block (depth + 1) body
    | Ast.Sif (_, b1, b2) ->
        walk_block depth b1;
        walk_block depth b2
    | Ast.Sassign _ | Ast.Sbarrier | Ast.Scall _ | Ast.Sreturn _ | Ast.Slock _
    | Ast.Sunlock _ | Ast.Sannot _ | Ast.Sannot_table _ | Ast.Sprint _ ->
        ()
  in
  walk_block 0 proc.Ast.body;
  List.rev !loops

let of_program (program : Ast.program) =
  List.concat_map of_proc program.Ast.procs

let containing loops sid =
  List.filter (fun l -> List.mem sid l.body_sids) loops
  |> List.sort (fun a b -> compare a.depth b.depth)

let innermost_containing loops sid =
  match List.rev (containing loops sid) with [] -> None | l :: _ -> Some l

let loop_of_header loops sid =
  List.find_opt (fun l -> l.header_sid = sid) loops
