let stmt_by_sid program sid =
  Ast.fold_stmts
    (fun acc s -> if s.Ast.sid = sid then Some s else acc)
    None program

let proc_of_sid program sid =
  let contains body =
    let found = ref false in
    let probe = { Ast.decls = []; procs = [ { pname = "_"; params = []; body } ] } in
    Ast.iter_stmts (fun s -> if s.Ast.sid = sid then found := true) probe;
    !found
  in
  List.fold_left
    (fun acc (p : Ast.proc) ->
      match acc with Some _ -> acc | None -> if contains p.body then Some p.pname else None)
    None program.Ast.procs

let insert_rel ~before program ~sid stmts =
  if stmts = [] then program
  else
    Ast.map_blocks
      (fun block ->
        List.concat_map
          (fun s ->
            if s.Ast.sid = sid then
              if before then stmts @ [ s ] else s :: stmts
            else [ s ])
          block)
      program

let insert_before program ~sid stmts = insert_rel ~before:true program ~sid stmts
let insert_after program ~sid stmts = insert_rel ~before:false program ~sid stmts

let edit_proc program ~proc f =
  {
    program with
    Ast.procs =
      List.map
        (fun (p : Ast.proc) ->
          if p.pname = proc then { p with body = f p.body } else p)
        program.Ast.procs;
  }

let prepend_to_proc program ~proc stmts =
  edit_proc program ~proc (fun body -> stmts @ body)

let append_to_proc program ~proc stmts =
  edit_proc program ~proc (fun body -> body @ stmts)

let set_const program name v =
  {
    program with
    Ast.decls =
      List.map
        (fun d ->
          match d with
          | Ast.Dconst (n, _) when n = name -> Ast.Dconst (n, Ast.Eint v)
          | Ast.Dconst _ | Ast.Dshared _ | Ast.Dprivate _ -> d)
        program.Ast.decls;
  }

let barrier_sids program =
  List.rev
    (Ast.fold_stmts
       (fun acc s ->
         match s.Ast.node with Ast.Sbarrier -> s.Ast.sid :: acc | _ -> acc)
       [] program)
