(** Shared-address-space layout and region labelling.

    Every shared array is assigned a contiguous byte region, aligned to the
    cache-block size so that distinct arrays never share a block (the
    paper's programmers pad structures for the same reason; false sharing
    *within* an array remains possible and is what Cachier detects). The
    label table is what the paper's "labelled regions of memory" macro
    produces: it lets the analysis map raw trace addresses back to program
    data structures. *)

type entry = {
  name : string;
  base : int;  (** first byte address *)
  elems : int;  (** number of elements *)
  elem_size : int;  (** bytes per element *)
}

type t

val layout : block_size:int -> elem_size:int -> Sema.info -> t
(** Assign addresses to every shared array, in declaration order. *)

val entries : t -> entry list
val total_bytes : t -> int

val find_array : t -> string -> entry option
val base : t -> string -> int
(** @raise Not_found for unknown arrays. *)

val elems : t -> string -> int

val addr_of_elem : t -> string -> int -> int
(** Byte address of element [i]. @raise Invalid_argument out of bounds. *)

val elem_of_addr : t -> int -> (string * int) option
(** [elem_of_addr t addr] is the array and element index containing byte
    [addr], or [None] for addresses outside every region. *)

val to_label_records : t -> (string * int * int) list
(** [(name, lo, hi)] byte ranges, as written into the trace. *)
