type t = {
  succs : (int, int list) Hashtbl.t;
  preds : (int, int list) Hashtbl.t;
  all : int list;
}

let entry = -1
let exit_node = -2

let add_edge succs preds a b =
  Hashtbl.replace succs a (b :: (try Hashtbl.find succs a with Not_found -> []));
  Hashtbl.replace preds b (a :: (try Hashtbl.find preds b with Not_found -> []))

let build (proc : Ast.proc) =
  let succs = Hashtbl.create 64 and preds = Hashtbl.create 64 in
  let all = ref [ entry; exit_node ] in
  let edge = add_edge succs preds in
  (* [wire block ~succ] wires the block so that falling off its end goes to
     [succ]; returns the id of the block's first node ([succ] if empty). *)
  let rec wire block ~succ =
    match block with
    | [] -> succ
    | s :: rest ->
        let next = wire rest ~succ in
        wire_stmt s ~next;
        s.Ast.sid
  and wire_stmt (s : Ast.stmt) ~next =
    all := s.Ast.sid :: !all;
    match s.Ast.node with
    | Ast.Sif (_, b1, b2) ->
        let t1 = wire b1 ~succ:next in
        let t2 = wire b2 ~succ:next in
        edge s.Ast.sid t1;
        if t2 <> t1 || b2 = [] then edge s.Ast.sid t2
    | Ast.Sfor { body; _ } | Ast.Swhile (_, body) ->
        let first = wire body ~succ:s.Ast.sid in
        edge s.Ast.sid first;
        edge s.Ast.sid next
    | Ast.Sreturn _ -> edge s.Ast.sid exit_node
    | Ast.Sassign _ | Ast.Sbarrier | Ast.Scall _ | Ast.Slock _ | Ast.Sunlock _
    | Ast.Sannot _ | Ast.Sannot_table _ | Ast.Sprint _ ->
        edge s.Ast.sid next
  in
  let first = wire proc.Ast.body ~succ:exit_node in
  edge entry first;
  { succs; preds; all = List.sort_uniq compare !all }

let successors t n = try Hashtbl.find t.succs n with Not_found -> []
let predecessors t n = try Hashtbl.find t.preds n with Not_found -> []
let nodes t = t.all

let reachable t =
  let seen = Hashtbl.create 64 in
  let rec visit n =
    if not (Hashtbl.mem seen n) then begin
      Hashtbl.add seen n ();
      List.iter visit (successors t n)
    end
  in
  visit entry;
  List.filter (Hashtbl.mem seen) t.all

let unreachable_sids t =
  let reach = reachable t in
  List.filter (fun n -> n >= 0 && not (List.mem n reach)) t.all
