let i n = Ast.Eint n
let f x = Ast.Efloat x
let v name = Ast.Evar name
let idx name e = Ast.Eindex (name, e)
let ( + ) a b = Ast.Ebinop (Ast.Add, a, b)
let ( - ) a b = Ast.Ebinop (Ast.Sub, a, b)
let ( * ) a b = Ast.Ebinop (Ast.Mul, a, b)
let ( / ) a b = Ast.Ebinop (Ast.Div, a, b)
let ( % ) a b = Ast.Ebinop (Ast.Mod, a, b)
let ( < ) a b = Ast.Ebinop (Ast.Lt, a, b)
let ( <= ) a b = Ast.Ebinop (Ast.Le, a, b)
let ( == ) a b = Ast.Ebinop (Ast.Eq, a, b)
let call name args = Ast.Ecall (name, args)
let pid = Ast.Evar "pid"
let nprocs = Ast.Evar "nprocs"

let stmt node = { Ast.sid = -1; node }
let assign name e = stmt (Ast.Sassign (Ast.Lvar name, e))
let store arr index value = stmt (Ast.Sassign (Ast.Lindex (arr, index), value))

let for_ var from_ to_ ?(step = Ast.Eint 1) body =
  stmt (Ast.Sfor { var; from_; to_; step; body })

let if_ cond then_ ?(else_ = []) () = stmt (Ast.Sif (cond, then_, else_))
let barrier = stmt Ast.Sbarrier
let annot kind arr ~lo ~hi = stmt (Ast.Sannot (kind, { Ast.arr; lo; hi }))

let annot_table kind arr ranges =
  stmt (Ast.Sannot_table { akind = kind; aarr = arr; aranges = ranges })

let print args = stmt (Ast.Sprint args)

let proc name ?(params = []) body = { Ast.pname = name; params; body }

let program ~decls ~procs = Ast.renumber { Ast.decls; procs }
