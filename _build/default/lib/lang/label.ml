type entry = { name : string; base : int; elems : int; elem_size : int }

type t = { table : entry array; elem_size : int }

let round_up v align = (v + align - 1) / align * align

let layout ~block_size ~elem_size (info : Sema.info) =
  if elem_size <= 0 then invalid_arg "Label.layout: elem_size must be positive";
  let next = ref 0 in
  let table =
    List.map
      (fun (name, elems) ->
        let base = round_up !next block_size in
        next := base + (elems * elem_size);
        { name; base; elems; elem_size })
      info.Sema.shared
  in
  { table = Array.of_list table; elem_size }

let entries t = Array.to_list t.table

let total_bytes t =
  Array.fold_left (fun m e -> max m (e.base + (e.elems * e.elem_size))) 0 t.table

let find_array t name = Array.find_opt (fun e -> e.name = name) t.table

let base t name =
  match find_array t name with Some e -> e.base | None -> raise Not_found

let elems t name =
  match find_array t name with Some e -> e.elems | None -> raise Not_found

let addr_of_elem t name i =
  match find_array t name with
  | None -> raise Not_found
  | Some e ->
      if i < 0 || i >= e.elems then
        invalid_arg
          (Printf.sprintf "Label.addr_of_elem: %s[%d] out of bounds (size %d)"
             name i e.elems);
      e.base + (i * e.elem_size)

let elem_of_addr t addr =
  let found = ref None in
  Array.iter
    (fun e ->
      if addr >= e.base && addr < e.base + (e.elems * e.elem_size) then
        found := Some (e.name, (addr - e.base) / e.elem_size))
    t.table;
  !found

let to_label_records t =
  List.map
    (fun e -> (e.name, e.base, e.base + (e.elems * e.elem_size) - 1))
    (entries t)
