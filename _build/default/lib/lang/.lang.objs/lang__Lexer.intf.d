lib/lang/lexer.mli:
