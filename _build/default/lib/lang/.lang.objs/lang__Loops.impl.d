lib/lang/loops.ml: Ast List
