lib/lang/label.mli: Sema
