lib/lang/pretty.ml: Array Ast Buffer List Printf String
