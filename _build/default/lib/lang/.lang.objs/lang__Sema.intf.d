lib/lang/sema.mli: Ast Value
