lib/lang/ast_util.ml: Ast List
