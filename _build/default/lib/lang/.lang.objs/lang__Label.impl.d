lib/lang/label.ml: Array List Printf Sema
