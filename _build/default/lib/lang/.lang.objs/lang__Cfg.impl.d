lib/lang/cfg.ml: Ast Hashtbl List
