lib/lang/ast.ml: List
