lib/lang/builder.ml: Ast
