lib/lang/sema.ml: Ast Float Format Hashtbl List Value
