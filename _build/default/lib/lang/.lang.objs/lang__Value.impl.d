lib/lang/value.ml: Float Format
