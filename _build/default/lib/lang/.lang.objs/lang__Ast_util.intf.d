lib/lang/ast_util.mli: Ast
