lib/lang/loops.mli: Ast
