type t = Vint of int | Vfloat of float

let zero = Vint 0
let of_bool b = Vint (if b then 1 else 0)

let to_bool = function Vint 0 -> false | Vfloat 0.0 -> false | _ -> true
let to_int = function Vint i -> i | Vfloat f -> int_of_float f
let to_float = function Vint i -> float_of_int i | Vfloat f -> f

let arith fi ff a b =
  match (a, b) with
  | Vint x, Vint y -> Vint (fi x y)
  | _ -> Vfloat (ff (to_float a) (to_float b))

let add = arith ( + ) ( +. )
let sub = arith ( - ) ( -. )
let mul = arith ( * ) ( *. )

let div a b =
  match (a, b) with
  | Vint x, Vint y -> if y = 0 then raise Division_by_zero else Vint (x / y)
  | _ ->
      let y = to_float b in
      if y = 0.0 then raise Division_by_zero else Vfloat (to_float a /. y)

let modulo a b =
  match (a, b) with
  | Vint x, Vint y -> if y = 0 then raise Division_by_zero else Vint (x mod y)
  | _ -> Vfloat (Float.rem (to_float a) (to_float b))

let neg = function Vint i -> Vint (-i) | Vfloat f -> Vfloat (-.f)

let compare_num a b =
  match (a, b) with
  | Vint x, Vint y -> compare x y
  | _ -> compare (to_float a) (to_float b)

let equal a b = compare_num a b = 0

let pp ppf = function
  | Vint i -> Format.pp_print_int ppf i
  | Vfloat f -> Format.fprintf ppf "%g" f

let to_string v = Format.asprintf "%a" pp v
