(** Recursive-descent parser for the mini-language.

    Statement ids ([sid]) are assigned in textual order starting at 0.
    See the grammar summary in the repository README; annotation statements
    accept either an expression range ([check_in A\[lo .. hi\];]) or a
    per-pid table ([check_in A\[\@0: 1..3, 7..9 \@1: 4..6\];]) so that
    pretty-printed annotated programs parse back. *)

exception Error of string

val parse : string -> Ast.program
(** [parse src] parses a whole program. @raise Error with a line number on
    syntax errors. *)

val parse_expr : string -> Ast.expr
(** Parse a single expression (used by tests and examples). *)
