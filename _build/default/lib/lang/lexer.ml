type token =
  | INT of int
  | FLOAT of float
  | IDENT of string
  | LPAREN | RPAREN
  | LBRACE | RBRACE
  | LBRACKET | RBRACKET
  | COMMA | SEMI | COLON | AT
  | ASSIGN
  | DOTDOT
  | PLUS | MINUS | STAR | SLASH | PERCENT
  | LT | LE | GT | GE | EQ | NE
  | ANDAND | OROR | BANG
  | EOF

exception Error of string

let error line fmt =
  Format.kasprintf (fun s -> raise (Error (Printf.sprintf "line %d: %s" line s))) fmt

let is_digit c = c >= '0' && c <= '9'
let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || is_digit c

let tokenize src =
  let n = String.length src in
  let tokens = ref [] in
  let line = ref 1 in
  let emit tok = tokens := (tok, !line) :: !tokens in
  let rec scan i =
    if i >= n then emit EOF
    else
      let c = src.[i] in
      match c with
      | ' ' | '\t' | '\r' -> scan (i + 1)
      | '\n' ->
          incr line;
          scan (i + 1)
      | '/' when i + 1 < n && src.[i + 1] = '/' ->
          let rec skip j =
            if j >= n || src.[j] = '\n' then j else skip (j + 1)
          in
          scan (skip (i + 2))
      | '/' when i + 1 < n && src.[i + 1] = '*' ->
          let rec skip j =
            if j + 1 >= n then error !line "unterminated comment"
            else if src.[j] = '*' && src.[j + 1] = '/' then j + 2
            else begin
              if src.[j] = '\n' then incr line;
              skip (j + 1)
            end
          in
          scan (skip (i + 2))
      | '(' -> emit LPAREN; scan (i + 1)
      | ')' -> emit RPAREN; scan (i + 1)
      | '{' -> emit LBRACE; scan (i + 1)
      | '}' -> emit RBRACE; scan (i + 1)
      | '[' -> emit LBRACKET; scan (i + 1)
      | ']' -> emit RBRACKET; scan (i + 1)
      | ',' -> emit COMMA; scan (i + 1)
      | ';' -> emit SEMI; scan (i + 1)
      | ':' -> emit COLON; scan (i + 1)
      | '@' -> emit AT; scan (i + 1)
      | '+' -> emit PLUS; scan (i + 1)
      | '-' -> emit MINUS; scan (i + 1)
      | '*' -> emit STAR; scan (i + 1)
      | '/' -> emit SLASH; scan (i + 1)
      | '%' -> emit PERCENT; scan (i + 1)
      | '.' when i + 1 < n && src.[i + 1] = '.' ->
          emit DOTDOT;
          scan (i + 2)
      | '<' when i + 1 < n && src.[i + 1] = '=' -> emit LE; scan (i + 2)
      | '<' -> emit LT; scan (i + 1)
      | '>' when i + 1 < n && src.[i + 1] = '=' -> emit GE; scan (i + 2)
      | '>' -> emit GT; scan (i + 1)
      | '=' when i + 1 < n && src.[i + 1] = '=' -> emit EQ; scan (i + 2)
      | '=' -> emit ASSIGN; scan (i + 1)
      | '!' when i + 1 < n && src.[i + 1] = '=' -> emit NE; scan (i + 2)
      | '!' -> emit BANG; scan (i + 1)
      | '&' when i + 1 < n && src.[i + 1] = '&' -> emit ANDAND; scan (i + 2)
      | '|' when i + 1 < n && src.[i + 1] = '|' -> emit OROR; scan (i + 2)
      | c when is_digit c ->
          let j = ref i in
          while !j < n && is_digit src.[!j] do incr j done;
          (* An exponent may follow the integer digits directly ("1e-05")
             if actual exponent digits are present. *)
          let exponent_at k =
            k < n
            && (src.[k] = 'e' || src.[k] = 'E')
            &&
            let k' =
              if k + 1 < n && (src.[k + 1] = '+' || src.[k + 1] = '-') then k + 2
              else k + 1
            in
            k' < n && is_digit src.[k']
          in
          let scan_exponent () =
            if exponent_at !j then begin
              incr j;
              if !j < n && (src.[!j] = '+' || src.[!j] = '-') then incr j;
              while !j < n && is_digit src.[!j] do incr j done
            end
          in
          (* A '.' starts a fraction only if not the ".." range operator. *)
          if !j + 1 < n && src.[!j] = '.' && src.[!j + 1] <> '.' then begin
            incr j;
            while !j < n && is_digit src.[!j] do incr j done;
            scan_exponent ();
            emit (FLOAT (float_of_string (String.sub src i (!j - i))))
          end
          else if exponent_at !j then begin
            scan_exponent ();
            emit (FLOAT (float_of_string (String.sub src i (!j - i))))
          end
          else emit (INT (int_of_string (String.sub src i (!j - i))));
          scan !j
      | c when is_ident_start c ->
          let j = ref i in
          while !j < n && is_ident_char src.[!j] do incr j done;
          emit (IDENT (String.sub src i (!j - i)));
          scan !j
      | c -> error !line "unexpected character %C" c
  in
  scan 0;
  List.rev !tokens

let token_to_string = function
  | INT i -> string_of_int i
  | FLOAT f -> Printf.sprintf "%g" f
  | IDENT s -> s
  | LPAREN -> "(" | RPAREN -> ")"
  | LBRACE -> "{" | RBRACE -> "}"
  | LBRACKET -> "[" | RBRACKET -> "]"
  | COMMA -> "," | SEMI -> ";" | COLON -> ":" | AT -> "@"
  | ASSIGN -> "=" | DOTDOT -> ".."
  | PLUS -> "+" | MINUS -> "-" | STAR -> "*" | SLASH -> "/" | PERCENT -> "%"
  | LT -> "<" | LE -> "<=" | GT -> ">" | GE -> ">=" | EQ -> "==" | NE -> "!="
  | ANDAND -> "&&" | OROR -> "||" | BANG -> "!"
  | EOF -> "<eof>"
