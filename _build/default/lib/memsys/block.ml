let is_power_of_two n = n > 0 && n land (n - 1) = 0

let check_block_size block_size =
  if not (is_power_of_two block_size) then
    invalid_arg "Block: block size must be a positive power of two"

let of_addr ~block_size addr =
  check_block_size block_size;
  if addr < 0 then invalid_arg "Block.of_addr: negative address";
  addr / block_size

let base_addr ~block_size blk =
  check_block_size block_size;
  blk * block_size

let offset ~block_size addr =
  check_block_size block_size;
  addr land (block_size - 1)

let count_blocks ~block_size ~lo ~hi =
  if hi < lo then 0
  else of_addr ~block_size hi - of_addr ~block_size lo + 1

let blocks_of_range ~block_size ~lo ~hi =
  if hi < lo then []
  else
    let first = of_addr ~block_size lo and last = of_addr ~block_size hi in
    let rec loop b acc = if b < first then acc else loop (b - 1) (b :: acc) in
    loop last []
