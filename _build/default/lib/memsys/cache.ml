type coherence = Shared | Exclusive

type line = {
  block : int;
  mutable state : coherence;
  mutable dirty : bool;
  mutable ready_at : int;
  mutable last_use : int;
}

type t = {
  block_size : int;
  n_sets : int;
  n_assoc : int;
  sets : line option array array;  (* [n_sets][n_assoc] *)
  mutable tick : int;  (* LRU clock *)
  mutable resident : int;
}

let create ~size_bytes ~assoc ~block_size =
  if not (Block.is_power_of_two block_size) then
    invalid_arg "Cache.create: block size must be a power of two";
  if assoc <= 0 then invalid_arg "Cache.create: associativity must be positive";
  if size_bytes <= 0 || size_bytes mod (assoc * block_size) <> 0 then
    invalid_arg "Cache.create: size must be a multiple of assoc * block size";
  let n_sets = size_bytes / (assoc * block_size) in
  if not (Block.is_power_of_two n_sets) then
    invalid_arg "Cache.create: number of sets must be a power of two";
  {
    block_size;
    n_sets;
    n_assoc = assoc;
    sets = Array.init n_sets (fun _ -> Array.make assoc None);
    tick = 0;
    resident = 0;
  }

let block_size t = t.block_size
let sets t = t.n_sets
let assoc t = t.n_assoc
let capacity_blocks t = t.n_sets * t.n_assoc
let capacity_bytes t = capacity_blocks t * t.block_size
let occupancy t = t.resident
let set_of t blk = blk land (t.n_sets - 1)

let find t blk =
  let set = t.sets.(set_of t blk) in
  let rec loop i =
    if i >= t.n_assoc then None
    else
      match set.(i) with
      | Some l when l.block = blk -> Some l
      | Some _ | None -> loop (i + 1)
  in
  loop 0

let touch t blk =
  match find t blk with
  | None -> ()
  | Some l ->
      t.tick <- t.tick + 1;
      l.last_use <- t.tick

let insert t ~block ~state ~dirty ~ready_at =
  match find t block with
  | Some l ->
      l.state <- state;
      l.dirty <- dirty || l.dirty;
      l.ready_at <- ready_at;
      t.tick <- t.tick + 1;
      l.last_use <- t.tick;
      None
  | None ->
      let set = t.sets.(set_of t block) in
      t.tick <- t.tick + 1;
      let fresh =
        Some { block; state; dirty; ready_at; last_use = t.tick }
      in
      (* Prefer an empty way; otherwise evict the LRU way. *)
      let empty = ref (-1) and lru = ref 0 in
      for i = 0 to t.n_assoc - 1 do
        match set.(i) with
        | None -> if !empty < 0 then empty := i
        | Some l -> (
            match set.(!lru) with
            | Some m when l.last_use < m.last_use -> lru := i
            | Some _ -> ()
            | None -> lru := i)
      done;
      if !empty >= 0 then begin
        set.(!empty) <- fresh;
        t.resident <- t.resident + 1;
        None
      end
      else
        match set.(!lru) with
        | None -> assert false
        | Some victim ->
            set.(!lru) <- fresh;
            Some (victim.block, victim.state, victim.dirty)

let remove t blk =
  let set = t.sets.(set_of t blk) in
  let rec loop i =
    if i >= t.n_assoc then None
    else
      match set.(i) with
      | Some l when l.block = blk ->
          set.(i) <- None;
          t.resident <- t.resident - 1;
          Some (l.state, l.dirty)
      | Some _ | None -> loop (i + 1)
  in
  loop 0

let flush_all t =
  let acc = ref [] in
  Array.iter
    (fun set ->
      Array.iteri
        (fun i slot ->
          match slot with
          | None -> ()
          | Some l ->
              acc := (l.block, l.state, l.dirty) :: !acc;
              set.(i) <- None)
        set)
    t.sets;
  t.resident <- 0;
  !acc

let iter t f =
  Array.iter
    (fun set ->
      Array.iter (function None -> () | Some l -> f l) set)
    t.sets
