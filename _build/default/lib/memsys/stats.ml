type t = {
  nodes : int;
  mutable read_hits : int;
  mutable write_hits : int;
  mutable read_misses : int;
  mutable write_misses : int;
  mutable write_faults : int;
  mutable invalidations : int;
  mutable sw_traps : int;
  mutable writebacks : int;
  mutable evictions : int;
  mutable check_outs_x : int;
  mutable check_outs_s : int;
  mutable check_ins : int;
  mutable check_in_flushes : int;
  mutable prefetches : int;
  mutable useful_prefetches : int;
  mutable post_stores : int;
  mutable messages : int;
  mutable shared_reads : int;
  mutable shared_writes : int;
  mutable private_reads : int;
  mutable private_writes : int;
  mutable barriers : int;
  mutable lock_acquires : int;
  stall_cycles : int array;
}

let create ~nodes =
  if nodes <= 0 then invalid_arg "Stats.create: nodes must be positive";
  {
    nodes;
    read_hits = 0;
    write_hits = 0;
    read_misses = 0;
    write_misses = 0;
    write_faults = 0;
    invalidations = 0;
    sw_traps = 0;
    writebacks = 0;
    evictions = 0;
    check_outs_x = 0;
    check_outs_s = 0;
    check_ins = 0;
    check_in_flushes = 0;
    prefetches = 0;
    useful_prefetches = 0;
    post_stores = 0;
    messages = 0;
    shared_reads = 0;
    shared_writes = 0;
    private_reads = 0;
    private_writes = 0;
    barriers = 0;
    lock_acquires = 0;
    stall_cycles = Array.make nodes 0;
  }

let reset t =
  t.read_hits <- 0;
  t.write_hits <- 0;
  t.read_misses <- 0;
  t.write_misses <- 0;
  t.write_faults <- 0;
  t.invalidations <- 0;
  t.sw_traps <- 0;
  t.writebacks <- 0;
  t.evictions <- 0;
  t.check_outs_x <- 0;
  t.check_outs_s <- 0;
  t.check_ins <- 0;
  t.check_in_flushes <- 0;
  t.prefetches <- 0;
  t.useful_prefetches <- 0;
  t.post_stores <- 0;
  t.messages <- 0;
  t.shared_reads <- 0;
  t.shared_writes <- 0;
  t.private_reads <- 0;
  t.private_writes <- 0;
  t.barriers <- 0;
  t.lock_acquires <- 0;
  Array.fill t.stall_cycles 0 (Array.length t.stall_cycles) 0

let add_stall t ~node c =
  if node < 0 || node >= t.nodes then invalid_arg "Stats.add_stall: bad node";
  t.stall_cycles.(node) <- t.stall_cycles.(node) + c

let total_misses t = t.read_misses + t.write_misses

let total_accesses t =
  t.shared_reads + t.shared_writes + t.private_reads + t.private_writes

let shared_read_fraction t =
  let loads = t.shared_reads + t.private_reads in
  if loads = 0 then 0.0 else float_of_int t.shared_reads /. float_of_int loads

let shared_write_fraction t =
  let stores = t.shared_writes + t.private_writes in
  if stores = 0 then 0.0
  else float_of_int t.shared_writes /. float_of_int stores

let pp ppf t =
  let f fmt = Format.fprintf ppf fmt in
  f "@[<v>";
  f "read hits        %d@," t.read_hits;
  f "write hits       %d@," t.write_hits;
  f "read misses      %d@," t.read_misses;
  f "write misses     %d@," t.write_misses;
  f "write faults     %d@," t.write_faults;
  f "invalidations    %d@," t.invalidations;
  f "software traps   %d@," t.sw_traps;
  f "writebacks       %d@," t.writebacks;
  f "evictions        %d@," t.evictions;
  f "check-out X      %d@," t.check_outs_x;
  f "check-out S      %d@," t.check_outs_s;
  f "check-ins        %d (%d flushed)@," t.check_ins t.check_in_flushes;
  f "prefetches       %d (%d useful)@," t.prefetches t.useful_prefetches;
  f "post-stores      %d@," t.post_stores;
  f "messages         %d@," t.messages;
  f "shared reads     %d / %d loads (%.1f%%)@," t.shared_reads
    (t.shared_reads + t.private_reads)
    (100.0 *. shared_read_fraction t);
  f "shared writes    %d / %d stores (%.1f%%)@," t.shared_writes
    (t.shared_writes + t.private_writes)
    (100.0 *. shared_write_fraction t);
  f "barriers         %d@," t.barriers;
  f "lock acquires    %d" t.lock_acquires;
  f "@]"
