type costs = {
  cache_hit : int;
  local_op : int;
  miss_2hop : int;
  miss_3hop : int;
  upgrade : int;
  inval_per_sharer : int;
  sw_trap : int;
  dir_hw_sharers : int;
  writeback : int;
  check_in_cost : int;
  check_out_overhead : int;
  prefetch_issue : int;
  barrier : int;
  lock_transfer : int;
}

let default =
  {
    cache_hit = 1;
    local_op = 1;
    miss_2hop = 100;
    miss_3hop = 150;
    upgrade = 80;
    inval_per_sharer = 50;
    sw_trap = 500;
    dir_hw_sharers = 0;
    writeback = 20;
    check_in_cost = 3;
    check_out_overhead = 4;
    prefetch_issue = 3;
    barrier = 100;
    lock_transfer = 60;
  }

let pp ppf c =
  Format.fprintf ppf
    "@[<v>hit %d / op %d / 2-hop %d / 3-hop %d / upgrade %d / inval %d per \
     sharer@,\
     trap %d / wb %d / ci %d / co-overhead %d / pf %d / barrier %d / lock %d@]"
    c.cache_hit c.local_op c.miss_2hop c.miss_3hop c.upgrade c.inval_per_sharer
    c.sw_trap c.writeback c.check_in_cost c.check_out_overhead c.prefetch_issue
    c.barrier c.lock_transfer
