(** Latency and message-cost model for the simulated Dir1SW machine.

    The Wisconsin Wind Tunnel charged fixed latencies for protocol
    transactions; we follow the same style. All latencies are in processor
    cycles. A [costs] value is immutable configuration; the defaults are
    loosely calibrated to the WWT/Dir1SW papers (local hit 1 cycle, remote
    miss on the order of 100 cycles, software trap several times that). *)

type costs = {
  cache_hit : int;  (** load/store that hits in the local cache *)
  local_op : int;  (** one private-memory or ALU operation *)
  miss_2hop : int;  (** directory satisfies the miss from memory *)
  miss_3hop : int;  (** miss forwarded to a remote owner cache *)
  upgrade : int;  (** write fault: Shared copy upgraded to Exclusive *)
  inval_per_sharer : int;  (** invalidation round-trip, per sharer *)
  sw_trap : int;  (** Dir1SW trap to software (write to >1-sharer block) *)
  dir_hw_sharers : int;
      (** how many {e other} sharers the directory hardware can invalidate
          without trapping: 0 models Dir1SW's single pointer (any foreign
          sharer traps to software); 62 models a full-map hardware
          directory (Dir_n NB), under which CICO's trap-avoidance value
          shrinks — the ablation of the evaluation *)
  writeback : int;  (** dirty block written back to home memory *)
  check_in_cost : int;  (** explicit check-in directive *)
  check_out_overhead : int;  (** address-generation overhead of an explicit
                                 check-out that the implicit one subsumes *)
  prefetch_issue : int;  (** issuing a prefetch (non-blocking) *)
  barrier : int;  (** barrier synchronisation cost *)
  lock_transfer : int;  (** handing a lock between nodes *)
}

val default : costs
(** Default cost table used throughout the evaluation. *)

val pp : Format.formatter -> costs -> unit
(** Render the cost table. *)
