type miss_kind = Read_miss | Write_miss | Write_fault

type outcome = { latency : int; miss : miss_kind option }

type t = {
  n_nodes : int;
  blk_size : int;
  caches : Cache.t array;
  dir : Directory.t;
  cost : Network.costs;
  stat : Stats.t;
  pf_pending : (int * int, unit) Hashtbl.t;  (* (node, block) with an
                                                outstanding prefetch *)
  past_sharers : (int, int) Hashtbl.t;
      (* block -> bitmask of nodes that once held it and lost it; the
         recipient set of a KSR-1-style post-store *)
}

let create ~nodes ~cache_bytes ~assoc ~block_size ~costs =
  {
    n_nodes = nodes;
    blk_size = block_size;
    caches =
      Array.init nodes (fun _ ->
          Cache.create ~size_bytes:cache_bytes ~assoc ~block_size);
    dir = Directory.create ~nodes;
    cost = costs;
    stat = Stats.create ~nodes;
    pf_pending = Hashtbl.create 256;
    past_sharers = Hashtbl.create 256;
  }

let nodes t = t.n_nodes
let block_size t = t.blk_size
let stats t = t.stat
let directory t = t.dir
let cache t ~node = t.caches.(node)
let costs t = t.cost
let block_of_addr t addr = Block.of_addr ~block_size:t.blk_size addr

let forget_prefetch t ~node ~blk = Hashtbl.remove t.pf_pending (node, blk)

let note_past_sharer t ~node ~blk =
  let prev = Option.value ~default:0 (Hashtbl.find_opt t.past_sharers blk) in
  Hashtbl.replace t.past_sharers blk (prev lor (1 lsl node))

(* Account a prefetched block that is touched for the first time. *)
let note_prefetch_hit t ~node ~blk =
  if Hashtbl.mem t.pf_pending (node, blk) then begin
    Hashtbl.remove t.pf_pending (node, blk);
    t.stat.useful_prefetches <- t.stat.useful_prefetches + 1
  end

(* Install a block in [node]'s cache, handling the victim's protocol
   actions. A Shared victim is dropped silently (stale directory entry); an
   Exclusive victim releases the directory and writes back if dirty. *)
let install t ~node ~blk ~state ~dirty ~ready_at =
  match Cache.insert t.caches.(node) ~block:blk ~state ~dirty ~ready_at with
  | None -> ()
  | Some (victim, vstate, vdirty) ->
      t.stat.evictions <- t.stat.evictions + 1;
      forget_prefetch t ~node ~blk:victim;
      note_past_sharer t ~node ~blk:victim;
      (match vstate with
      | Cache.Exclusive ->
          if vdirty then begin
            t.stat.writebacks <- t.stat.writebacks + 1;
            t.stat.messages <- t.stat.messages + 1
          end;
          Directory.set t.dir victim Directory.Idle
      | Cache.Shared -> ())

(* Remove [blk] from every cache in [mask] except [node]; returns the
   number of invalidation messages sent (one per directory sharer, stale or
   not, since Dir1SW software trusts its sharer list). *)
let invalidate_sharers t ~blk ~except:node mask =
  let count = ref 0 in
  for victim = 0 to t.n_nodes - 1 do
    if victim <> node && mask land (1 lsl victim) <> 0 then begin
      incr count;
      forget_prefetch t ~node:victim ~blk;
      if Cache.remove t.caches.(victim) blk <> None then
        note_past_sharer t ~node:victim ~blk
    end
  done;
  t.stat.invalidations <- t.stat.invalidations + !count;
  t.stat.messages <- t.stat.messages + (2 * !count);
  !count

(* Take the block away from its exclusive [owner] (3-hop transaction);
   returns true if a dirty copy was written back. *)
let recall_exclusive t ~blk ~owner ~downgrade_to_shared =
  forget_prefetch t ~node:owner ~blk;
  let dirty =
    match Cache.find t.caches.(owner) blk with
    | None -> false
    | Some line ->
        let d = line.Cache.dirty in
        if downgrade_to_shared then begin
          line.Cache.state <- Cache.Shared;
          line.Cache.dirty <- false
        end
        else begin
          ignore (Cache.remove t.caches.(owner) blk);
          note_past_sharer t ~node:owner ~blk
        end;
        d
  in
  if dirty then t.stat.writebacks <- t.stat.writebacks + 1;
  t.stat.messages <- t.stat.messages + 3;
  dirty

(* Residual stall if the line's data has not yet arrived (prefetch). *)
let residual line ~now =
  let r = line.Cache.ready_at - now in
  if r > 0 then r else 0

(* Fetch a shared copy of [blk] into [node]'s cache; returns latency. *)
let fetch_shared t ~node ~blk ~now =
  match Directory.get t.dir blk with
  | Directory.Idle ->
      Directory.set t.dir blk (Directory.Shared (1 lsl node));
      t.stat.messages <- t.stat.messages + 2;
      install t ~node ~blk ~state:Cache.Shared ~dirty:false ~ready_at:now;
      t.cost.Network.miss_2hop
  | Directory.Shared mask ->
      Directory.set t.dir blk (Directory.Shared (mask lor (1 lsl node)));
      t.stat.messages <- t.stat.messages + 2;
      install t ~node ~blk ~state:Cache.Shared ~dirty:false ~ready_at:now;
      t.cost.Network.miss_2hop
  | Directory.Exclusive owner when owner = node ->
      (* Cannot normally happen: exclusive lines are never dropped
         silently. Repair defensively. *)
      Directory.set t.dir blk (Directory.Shared (1 lsl node));
      install t ~node ~blk ~state:Cache.Shared ~dirty:false ~ready_at:now;
      t.cost.Network.miss_2hop
  | Directory.Exclusive owner ->
      ignore (recall_exclusive t ~blk ~owner ~downgrade_to_shared:true);
      Directory.set t.dir blk
        (Directory.Shared ((1 lsl owner) lor (1 lsl node)));
      install t ~node ~blk ~state:Cache.Shared ~dirty:false ~ready_at:now;
      t.cost.Network.miss_3hop

(* Fetch an exclusive copy of [blk] into [node]'s cache; returns latency.
   [dirty] marks the line modified immediately (write-miss path). *)
let fetch_exclusive t ~node ~blk ~now ~dirty =
  match Directory.get t.dir blk with
  | Directory.Idle ->
      Directory.set t.dir blk (Directory.Exclusive node);
      t.stat.messages <- t.stat.messages + 2;
      install t ~node ~blk ~state:Cache.Exclusive ~dirty ~ready_at:now;
      t.cost.Network.miss_2hop
  | Directory.Shared mask ->
      (* Invalidate every listed sharer: in hardware when the directory
         can name them all, through the software trap otherwise. *)
      let n_others =
        Directory.popcount (mask land lnot (1 lsl node))
      in
      let in_hw = n_others <= t.cost.Network.dir_hw_sharers in
      if not in_hw then t.stat.sw_traps <- t.stat.sw_traps + 1;
      let n_inval = invalidate_sharers t ~blk ~except:node mask in
      Directory.set t.dir blk (Directory.Exclusive node);
      install t ~node ~blk ~state:Cache.Exclusive ~dirty ~ready_at:now;
      if in_hw then
        t.cost.Network.miss_2hop + (n_inval * t.cost.Network.inval_per_sharer)
      else t.cost.Network.sw_trap + (n_inval * t.cost.Network.inval_per_sharer)
  | Directory.Exclusive owner when owner = node ->
      Directory.set t.dir blk (Directory.Exclusive node);
      install t ~node ~blk ~state:Cache.Exclusive ~dirty ~ready_at:now;
      t.cost.Network.miss_2hop
  | Directory.Exclusive owner ->
      ignore (recall_exclusive t ~blk ~owner ~downgrade_to_shared:false);
      Directory.set t.dir blk (Directory.Exclusive node);
      install t ~node ~blk ~state:Cache.Exclusive ~dirty ~ready_at:now;
      t.cost.Network.miss_3hop

let read t ~node ~addr ~now =
  let blk = block_of_addr t addr in
  t.stat.shared_reads <- t.stat.shared_reads + 1;
  match Cache.find t.caches.(node) blk with
  | Some line ->
      note_prefetch_hit t ~node ~blk;
      Cache.touch t.caches.(node) blk;
      t.stat.read_hits <- t.stat.read_hits + 1;
      { latency = t.cost.Network.cache_hit + residual line ~now; miss = None }
  | None ->
      t.stat.read_misses <- t.stat.read_misses + 1;
      let latency = fetch_shared t ~node ~blk ~now in
      { latency; miss = Some Read_miss }

let write t ~node ~addr ~now =
  let blk = block_of_addr t addr in
  t.stat.shared_writes <- t.stat.shared_writes + 1;
  match Cache.find t.caches.(node) blk with
  | Some line when line.Cache.state = Cache.Exclusive ->
      note_prefetch_hit t ~node ~blk;
      Cache.touch t.caches.(node) blk;
      line.Cache.dirty <- true;
      t.stat.write_hits <- t.stat.write_hits + 1;
      { latency = t.cost.Network.cache_hit + residual line ~now; miss = None }
  | Some line ->
      (* Write fault: upgrade the Shared copy. *)
      note_prefetch_hit t ~node ~blk;
      Cache.touch t.caches.(node) blk;
      t.stat.write_faults <- t.stat.write_faults + 1;
      let latency =
        match Directory.get t.dir blk with
        | Directory.Shared mask ->
            let others = mask land lnot (1 lsl node) in
            if others = 0 then begin
              Directory.set t.dir blk (Directory.Exclusive node);
              t.stat.messages <- t.stat.messages + 2;
              t.cost.Network.upgrade
            end
            else begin
              let in_hw =
                Directory.popcount others <= t.cost.Network.dir_hw_sharers
              in
              if not in_hw then t.stat.sw_traps <- t.stat.sw_traps + 1;
              let n_inval = invalidate_sharers t ~blk ~except:node others in
              Directory.set t.dir blk (Directory.Exclusive node);
              (if in_hw then t.cost.Network.upgrade
               else t.cost.Network.sw_trap)
              + (n_inval * t.cost.Network.inval_per_sharer)
            end
        | Directory.Idle | Directory.Exclusive _ ->
            (* Defensive: directory lost track of us; redo as exclusive
               fetch. *)
            Directory.set t.dir blk (Directory.Exclusive node);
            t.stat.messages <- t.stat.messages + 2;
            t.cost.Network.upgrade
      in
      line.Cache.state <- Cache.Exclusive;
      line.Cache.dirty <- true;
      { latency = latency + residual line ~now; miss = Some Write_fault }
  | None ->
      t.stat.write_misses <- t.stat.write_misses + 1;
      let latency = fetch_exclusive t ~node ~blk ~now ~dirty:true in
      { latency; miss = Some Write_miss }

let check_out_x t ~node ~addr ~now =
  let blk = block_of_addr t addr in
  t.stat.check_outs_x <- t.stat.check_outs_x + 1;
  let overhead = t.cost.Network.check_out_overhead in
  match Cache.find t.caches.(node) blk with
  | Some line when line.Cache.state = Cache.Exclusive ->
      Cache.touch t.caches.(node) blk;
      { latency = overhead; miss = None }
  | Some line ->
      (* Upgrade now, before the read, avoiding the later write fault. *)
      Cache.touch t.caches.(node) blk;
      let latency =
        match Directory.get t.dir blk with
        | Directory.Shared mask ->
            let others = mask land lnot (1 lsl node) in
            if others = 0 then begin
              Directory.set t.dir blk (Directory.Exclusive node);
              t.stat.messages <- t.stat.messages + 2;
              t.cost.Network.upgrade
            end
            else begin
              let in_hw =
                Directory.popcount others <= t.cost.Network.dir_hw_sharers
              in
              if not in_hw then t.stat.sw_traps <- t.stat.sw_traps + 1;
              let n_inval = invalidate_sharers t ~blk ~except:node others in
              Directory.set t.dir blk (Directory.Exclusive node);
              (if in_hw then t.cost.Network.upgrade
               else t.cost.Network.sw_trap)
              + (n_inval * t.cost.Network.inval_per_sharer)
            end
        | Directory.Idle | Directory.Exclusive _ ->
            Directory.set t.dir blk (Directory.Exclusive node);
            t.stat.messages <- t.stat.messages + 2;
            t.cost.Network.upgrade
      in
      line.Cache.state <- Cache.Exclusive;
      { latency = overhead + latency; miss = None }
  | None ->
      let latency = fetch_exclusive t ~node ~blk ~now ~dirty:false in
      { latency = overhead + latency; miss = None }

let check_out_s t ~node ~addr ~now =
  let blk = block_of_addr t addr in
  t.stat.check_outs_s <- t.stat.check_outs_s + 1;
  let overhead = t.cost.Network.check_out_overhead in
  match Cache.find t.caches.(node) blk with
  | Some _ ->
      Cache.touch t.caches.(node) blk;
      { latency = overhead; miss = None }
  | None ->
      let latency = fetch_shared t ~node ~blk ~now in
      { latency = overhead + latency; miss = None }

let check_in t ~node ~addr ~now:_ =
  let blk = block_of_addr t addr in
  t.stat.check_ins <- t.stat.check_ins + 1;
  (match Cache.remove t.caches.(node) blk with
  | None -> ()
  | Some (state, dirty) ->
      t.stat.check_in_flushes <- t.stat.check_in_flushes + 1;
      forget_prefetch t ~node ~blk;
      t.stat.messages <- t.stat.messages + 1;
      (match state with
      | Cache.Exclusive ->
          if dirty then t.stat.writebacks <- t.stat.writebacks + 1;
          Directory.set t.dir blk Directory.Idle
      | Cache.Shared -> Directory.remove_sharer t.dir blk ~node));
  { latency = t.cost.Network.check_in_cost; miss = None }

let prefetch ~exclusive t ~node ~addr ~now =
  let blk = block_of_addr t addr in
  t.stat.prefetches <- t.stat.prefetches + 1;
  let wanted_ok (line : Cache.line) =
    (not exclusive) || line.Cache.state = Cache.Exclusive
  in
  match Cache.find t.caches.(node) blk with
  | Some line when wanted_ok line ->
      { latency = t.cost.Network.prefetch_issue; miss = None }
  | Some _ | None ->
      (* Run the transaction now but charge only the issue cost; the
         transfer latency is hidden behind [ready_at]. *)
      let fetch_latency =
        if exclusive then fetch_exclusive t ~node ~blk ~now ~dirty:false
        else fetch_shared t ~node ~blk ~now
      in
      (match Cache.find t.caches.(node) blk with
      | Some line -> line.Cache.ready_at <- now + fetch_latency
      | None -> ());
      Hashtbl.replace t.pf_pending (node, blk) ();
      { latency = t.cost.Network.prefetch_issue; miss = None }

let prefetch_x t = prefetch ~exclusive:true t
let prefetch_s t = prefetch ~exclusive:false t

let post_store t ~node ~addr ~now =
  let blk = block_of_addr t addr in
  t.stat.post_stores <- t.stat.post_stores + 1;
  (match Cache.find t.caches.(node) blk with
  | Some line when line.Cache.state = Cache.Exclusive ->
      (* write the data back and downgrade to a shared copy *)
      if line.Cache.dirty then begin
        t.stat.writebacks <- t.stat.writebacks + 1;
        t.stat.messages <- t.stat.messages + 1
      end;
      line.Cache.state <- Cache.Shared;
      line.Cache.dirty <- false;
      let mask = ref (1 lsl node) in
      (* broadcast read-only copies to every past holder *)
      let past =
        Option.value ~default:0 (Hashtbl.find_opt t.past_sharers blk)
      in
      for recipient = 0 to t.n_nodes - 1 do
        if recipient <> node && past land (1 lsl recipient) <> 0 then begin
          t.stat.messages <- t.stat.messages + 1;
          install t ~node:recipient ~blk ~state:Cache.Shared ~dirty:false
            ~ready_at:(now + t.cost.Network.miss_2hop);
          mask := !mask lor (1 lsl recipient)
        end
      done;
      Directory.set t.dir blk (Directory.Shared !mask)
  | Some _ | None -> ());
  { latency = t.cost.Network.check_in_cost; miss = None }

let flush_node t ~node =
  let flushed = Cache.flush_all t.caches.(node) in
  List.iter
    (fun (blk, state, dirty) ->
      forget_prefetch t ~node ~blk;
      match state with
      | Cache.Exclusive ->
          if dirty then t.stat.writebacks <- t.stat.writebacks + 1;
          Directory.set t.dir blk Directory.Idle
      | Cache.Shared -> Directory.remove_sharer t.dir blk ~node)
    flushed

let reset t =
  for node = 0 to t.n_nodes - 1 do
    ignore (Cache.flush_all t.caches.(node))
  done;
  List.iter (fun (blk, _) -> Directory.set t.dir blk Directory.Idle)
    (Directory.entries t.dir);
  Hashtbl.reset t.pf_pending;
  Hashtbl.reset t.past_sharers;
  Stats.reset t.stat
