(** Cache-block address arithmetic.

    Addresses are byte addresses in a flat shared address space. A cache
    block is identified by its block number ([addr / block_size]). All
    functions take the block size explicitly so that different simulated
    machines can coexist. Block sizes must be powers of two. *)

val is_power_of_two : int -> bool
(** [is_power_of_two n] is [true] iff [n] is a positive power of two. *)

val of_addr : block_size:int -> int -> int
(** [of_addr ~block_size addr] is the block number containing [addr]. *)

val base_addr : block_size:int -> int -> int
(** [base_addr ~block_size blk] is the first byte address of block [blk]. *)

val offset : block_size:int -> int -> int
(** [offset ~block_size addr] is the byte offset of [addr] within its
    block. *)

val blocks_of_range : block_size:int -> lo:int -> hi:int -> int list
(** [blocks_of_range ~block_size ~lo ~hi] is the ordered list of block
    numbers spanned by the byte range [\[lo, hi\]] (inclusive). Empty if
    [hi < lo]. *)

val count_blocks : block_size:int -> lo:int -> hi:int -> int
(** [count_blocks ~block_size ~lo ~hi] is the number of blocks spanned by
    the inclusive byte range, without materialising the list. *)
