lib/memsys/protocol.ml: Array Block Cache Directory Hashtbl List Network Option Stats
