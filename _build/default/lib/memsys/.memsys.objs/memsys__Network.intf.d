lib/memsys/network.mli: Format
