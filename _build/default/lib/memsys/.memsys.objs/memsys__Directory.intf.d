lib/memsys/directory.mli:
