lib/memsys/block.mli:
