lib/memsys/directory.ml: Hashtbl
