lib/memsys/protocol.mli: Cache Directory Network Stats
