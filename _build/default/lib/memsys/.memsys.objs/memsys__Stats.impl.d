lib/memsys/stats.ml: Array Format
