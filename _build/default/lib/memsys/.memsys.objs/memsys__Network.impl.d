lib/memsys/network.ml: Format
