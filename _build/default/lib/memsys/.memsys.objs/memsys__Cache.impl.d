lib/memsys/cache.ml: Array Block
