lib/memsys/block.ml:
