lib/memsys/stats.mli: Format
