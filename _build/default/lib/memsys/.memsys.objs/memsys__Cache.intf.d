lib/memsys/cache.mli:
