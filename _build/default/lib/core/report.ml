module Iset = Trace.Epoch.Iset

type kind = Data_race | False_sharing

type item = {
  kind : kind;
  arr : string;
  ranges : (int * int) list;
  epochs : int list;
  pcs : int list;
}

type t = { items : item list }

let build ~layout (einfo : Epoch_info.t) =
  (* Accumulate (kind, arr) -> addr set, epoch set, pc set. *)
  let acc : (kind * string, Iset.t ref * Iset.t ref * Iset.t ref) Hashtbl.t =
    Hashtbl.create 16
  in
  let note kind addr ~epoch ~pcs =
    let arr =
      match Lang.Label.elem_of_addr layout addr with
      | Some (name, _) -> name
      | None -> "<unlabelled>"
    in
    let addrs, epochs, pc_set =
      match Hashtbl.find_opt acc (kind, arr) with
      | Some cell -> cell
      | None ->
          let cell = (ref Iset.empty, ref Iset.empty, ref Iset.empty) in
          Hashtbl.add acc (kind, arr) cell;
          cell
    in
    addrs := Iset.add addr !addrs;
    epochs := Iset.add epoch !epochs;
    List.iter (fun pc -> pc_set := Iset.add pc !pc_set) pcs
  in
  Array.iteri
    (fun epoch d ->
      let e = einfo.Epoch_info.epochs.(epoch) in
      let pcs_of addr =
        List.filter_map
          (fun (m : Trace.Event.miss) ->
            if m.Trace.Event.addr = addr then Some m.Trace.Event.pc else None)
          e.Trace.Epoch.misses
        |> List.sort_uniq compare
      in
      Iset.iter
        (fun addr -> note Data_race addr ~epoch ~pcs:(pcs_of addr))
        (Drfs.race d);
      Iset.iter
        (fun addr -> note False_sharing addr ~epoch ~pcs:(pcs_of addr))
        (Drfs.false_shared d))
    einfo.Epoch_info.drfs;
  let items =
    Hashtbl.fold
      (fun (kind, arr) (addrs, epochs, pcs) items ->
        {
          kind;
          arr;
          ranges = Presentation.ranges_for_array ~layout ~arr !addrs;
          epochs = Iset.elements !epochs;
          pcs = Iset.elements !pcs;
        }
        :: items)
      acc []
    |> List.sort compare
  in
  { items }

let is_empty t = t.items = []
let races t = List.filter (fun i -> i.kind = Data_race) t.items
let false_sharing t = List.filter (fun i -> i.kind = False_sharing) t.items

let pp_ranges ppf ranges =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
    (fun ppf (lo, hi) ->
      if lo = hi then Format.fprintf ppf "%d" lo
      else Format.fprintf ppf "%d..%d" lo hi)
    ppf ranges

let pp_item ppf i =
  Format.fprintf ppf "%s on %s[%a] (epochs %s; statements %s)"
    (match i.kind with
    | Data_race -> "potential data race"
    | False_sharing -> "false sharing")
    i.arr pp_ranges i.ranges
    (String.concat "," (List.map string_of_int i.epochs))
    (String.concat "," (List.map string_of_int i.pcs))

let pp ppf t =
  if t.items = [] then
    Format.pp_print_string ppf "no data races or false sharing detected"
  else
    Format.pp_print_list
      ~pp_sep:Format.pp_print_newline
      pp_item ppf t.items

let to_string t = Format.asprintf "%a" pp t
