(** The CICO annotation equations of Section 4.1.

    {b Programmer CICO} exposes all communication:
    {v
co_x[i] = ¬DRFS{SWᵢ − SWᵢ₋₁} ∪ DRFS{SWᵢ}
co_s[i] = ¬FS{SRᵢ − SRᵢ₋₁}  ∪ FS{SRᵢ}
ci[i]   = ¬DRFS{Sᵢ − Sᵢ₊₁}  ∪ DRFS{Sᵢ}
    v}

    {b Performance CICO} keeps only the annotations that pay under Dir1SW
    (implicit check-outs happen on every miss, so explicit ones are pure
    overhead except for read-before-write locations):
    {v
co_x[i] = ¬DRFS{write faultᵢ − SWᵢ₋₁} ∪ DRFS{write faultᵢ}
co_s[i] = ∅
ci[i]   = ¬DRFS{SWᵢ − Sᵢ₊₁} ∪ ¬DRFS{SRᵢ ∩ SWᵢ₊₁(other) − Sᵢ₊₁} ∪ DRFS{Sᵢ}
    v}

    All sets are per-(epoch, node); SWᵢ₋₁/SWᵢ₊₁ refer to the same node's
    previous/next epoch except for "written by some processor in the next
    epoch", which unions over the {e other} nodes. A location the node
    will use itself next epoch (Sᵢ₊₁, read or write) is never checked in:
    flushing it would turn the node's own hits or upgrades into full
    misses. Epochs outside the trace contribute empty sets. *)

module Iset = Trace.Epoch.Iset

type mode = Programmer | Performance

type annots = { co_x : Iset.t; co_s : Iset.t; ci : Iset.t }

val empty : annots

val for_epoch : mode -> Epoch_info.t -> epoch:int -> node:int -> annots

val all : mode -> Epoch_info.t -> annots array array
(** [all mode info] is indexed [.(epoch).(node)]. *)

val union : annots -> annots -> annots
