module Iset = Trace.Epoch.Iset

type term = { label : string; per_array : (string * int) list }

type node_explanation = { node : int; terms : term list }

type epoch_explanation = {
  eindex : int;
  racy_arrays : string list;
  false_shared_arrays : string list;
  nodes : node_explanation list;
}

type t = { mode : Equations.mode; epochs : epoch_explanation list }

let term_sets mode (info : Epoch_info.t) ~epoch ~node =
  let cur = Epoch_info.sets_at info ~epoch ~node in
  let prev = Epoch_info.sets_at info ~epoch:(epoch - 1) ~node in
  let next = Epoch_info.sets_at info ~epoch:(epoch + 1) ~node in
  let d = info.Epoch_info.drfs.(epoch) in
  let s_cur = Epoch_info.s_of cur in
  match mode with
  | Equations.Programmer ->
      let s_next = Epoch_info.s_of next in
      [
        ( "co_x: locations newly written this epoch",
          Drfs.filter_not_drfs d (Iset.diff cur.Epoch_info.sw prev.Epoch_info.sw) );
        ("co_x: racy or falsely shared writes", Drfs.filter_drfs d cur.Epoch_info.sw);
        ( "co_s: locations newly read this epoch",
          Drfs.filter_not_fs d (Iset.diff cur.Epoch_info.sr prev.Epoch_info.sr) );
        ("co_s: falsely shared reads", Drfs.filter_fs d cur.Epoch_info.sr);
        ( "ci: locations unused next epoch",
          Drfs.filter_not_drfs d (Iset.diff s_cur s_next) );
        ("ci: racy or falsely shared locations", Drfs.filter_drfs d s_cur);
      ]
  | Equations.Performance ->
      let s_next_self = Epoch_info.s_of next in
      let sw_next_other =
        Epoch_info.sw_any_node_except info ~epoch:(epoch + 1) ~node
      in
      [
        ( "co_x: read-before-write faults",
          Drfs.filter_not_drfs d (Iset.diff cur.Epoch_info.wf prev.Epoch_info.sw) );
        ("co_x: racy or falsely shared faults", Drfs.filter_drfs d cur.Epoch_info.wf);
        ( "ci: written here, done with it",
          Drfs.filter_not_drfs d (Iset.diff cur.Epoch_info.sw s_next_self) );
        ( "ci: hand-off to next epoch's writer",
          Drfs.filter_not_drfs d
            (Iset.diff (Iset.inter cur.Epoch_info.sr sw_next_other) s_next_self) );
        ("ci: racy or falsely shared locations", Drfs.filter_drfs d s_cur);
      ]

let per_array_counts ~layout set =
  let table : (string, int) Hashtbl.t = Hashtbl.create 8 in
  Iset.iter
    (fun addr ->
      let name =
        match Lang.Label.elem_of_addr layout addr with
        | Some (n, _) -> n
        | None -> "<unlabelled>"
      in
      Hashtbl.replace table name
        (1 + Option.value ~default:0 (Hashtbl.find_opt table name)))
    set;
  Hashtbl.fold (fun name c l -> (name, c) :: l) table []
  |> List.sort (fun (_, a) (_, b) -> compare b a)

let arrays_of ~layout set =
  List.map fst (per_array_counts ~layout set)

let build ~mode ~layout (info : Epoch_info.t) =
  let epochs =
    List.init (Epoch_info.n_epochs info) (fun e ->
        let d = info.Epoch_info.drfs.(e) in
        let nodes =
          List.filter_map
            (fun node ->
              let terms =
                List.filter_map
                  (fun (label, set) ->
                    if Iset.is_empty set then None
                    else Some { label; per_array = per_array_counts ~layout set })
                  (term_sets mode info ~epoch:e ~node)
              in
              if terms = [] then None else Some { node; terms })
            (List.init info.Epoch_info.nodes Fun.id)
        in
        {
          eindex = e;
          racy_arrays = arrays_of ~layout (Drfs.race d);
          false_shared_arrays = arrays_of ~layout (Drfs.false_shared d);
          nodes;
        })
  in
  { mode; epochs }

let pp ppf t =
  let f fmt = Format.fprintf ppf fmt in
  f "@[<v>annotation rationale (%s CICO)@,"
    (match t.mode with
    | Equations.Programmer -> "Programmer"
    | Equations.Performance -> "Performance");
  List.iter
    (fun e ->
      if e.racy_arrays <> [] || e.false_shared_arrays <> [] || e.nodes <> []
      then begin
        f "@,epoch %d:@," e.eindex;
        if e.racy_arrays <> [] then
          f "  data races on: %s@," (String.concat ", " e.racy_arrays);
        if e.false_shared_arrays <> [] then
          f "  false sharing on: %s@," (String.concat ", " e.false_shared_arrays);
        List.iter
          (fun n ->
            f "  node %d:@," n.node;
            List.iter
              (fun term ->
                f "    %s: %s@," term.label
                  (String.concat ", "
                     (List.map
                        (fun (name, c) -> Printf.sprintf "%s (%d)" name c)
                        term.per_array)))
              n.terms)
          e.nodes
      end)
    t.epochs;
  f "@]"

let to_string t = Format.asprintf "%a" pp t
