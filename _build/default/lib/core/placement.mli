(** Placement of CICO annotations (Section 4.2).

    Dynamic epochs that execute the same static program region (same
    opening and closing barrier pcs) are merged so annotations are never
    duplicated. Within a static epoch, each annotation set is placed by a
    cascade of strategies:

    - addresses involved in a data race or false sharing are annotated
      immediately around the referencing statements, reusing the
      statement's own subscript expressions (the paper's
      [check_out_X C\[i,j\]] ... [check_in C\[i,j\]]);
    - other addresses are placed as close to the epoch boundary as the
      cache capacity allows: if every access site has an affine subscript,
      the annotation becomes an expression range hoisted to the outermost
      loop level whose footprint fits (the paper's
      [check_out_X U\[Lip:Uip, j\]] in the column-wise Jacobi); otherwise
      a per-pid table of concrete ranges — built from the dynamic trace,
      which is what lets Cachier handle pointer-based programs — is placed
      at the epoch boundary when it fits, and immediately around the
      accesses when it does not. *)

type anchor =
  | Before of int  (** before the statement with this (original) sid *)
  | After of int
  | Loop_begin of int  (** at the start of the body of this loop header *)
  | Loop_end of int
  | Proc_begin of string
  | Proc_end of string

type edit = { anchor : anchor; stmt : Lang.Ast.stmt }

type options = {
  mode : Equations.mode;
  prefetch : bool;  (** also insert prefetch annotations (Section 6) *)
  capacity_fraction : float;
      (** fraction of the cache an epoch-boundary placement may pin *)
}

val default_options : options
(** Performance mode, no prefetch, capacity fraction 0.5. *)

type plan = {
  edits : edit list;
  notes : (int * string) list;
      (** statement sid → race / false-sharing warning *)
}

val plan :
  program:Lang.Ast.program ->
  layout:Lang.Label.t ->
  machine:Wwt.Machine.t ->
  einfo:Epoch_info.t ->
  options:options ->
  plan
(** Compute the annotation edits for an (unannotated) program whose sids
    match the trace pcs in [einfo]. *)

val plan_traces :
  program:Lang.Ast.program ->
  layout:Lang.Label.t ->
  machine:Wwt.Machine.t ->
  einfos:Epoch_info.t list ->
  options:options ->
  plan
(** Like {!plan} but merging several traces — the Section 4.5 training-set
    alternative: dynamic epochs from every trace that execute the same
    static region are unioned, so the annotations generalise across input
    data sets. @raise Invalid_argument on an empty list. *)

val apply_edits : Lang.Ast.program -> edit list -> Lang.Ast.program
(** Apply the edits; inserted statements keep [sid = -1]. *)

val assign_fresh_sids : Lang.Ast.program -> Lang.Ast.program
(** Give unique sids to statements with [sid = -1], leaving existing sids
    untouched (so trace pcs and notes stay valid). *)
