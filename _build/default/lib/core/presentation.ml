module Iset = Trace.Epoch.Iset
open Lang

let coalesce ints =
  let sorted = List.sort_uniq compare ints in
  let rec loop acc cur = function
    | [] -> ( match cur with None -> List.rev acc | Some r -> List.rev (r :: acc))
    | x :: rest -> (
        match cur with
        | None -> loop acc (Some (x, x)) rest
        | Some (lo, hi) when x = hi + 1 -> loop acc (Some (lo, x)) rest
        | Some r -> loop (r :: acc) (Some (x, x)) rest)
  in
  loop [] None sorted

let coalesce_set set = coalesce (Iset.elements set)

let block_align_ranges ~elems_per_block ranges =
  if elems_per_block <= 1 then ranges
  else
    let aligned =
      List.map
        (fun (lo, hi) ->
          ( lo / elems_per_block * elems_per_block,
            (hi / elems_per_block * elems_per_block) + elems_per_block - 1 ))
        ranges
    in
    let sorted = List.sort compare aligned in
    let rec merge = function
      | (lo1, hi1) :: (lo2, hi2) :: rest when lo2 <= hi1 + 1 ->
          merge ((lo1, max hi1 hi2) :: rest)
      | r :: rest -> r :: merge rest
      | [] -> []
    in
    merge sorted

let addrs_in_array ~layout ~arr set =
  match Label.find_array layout arr with
  | None -> Iset.empty
  | Some e ->
      let lo = e.Label.base
      and hi = e.Label.base + (e.Label.elems * e.Label.elem_size) - 1 in
      Iset.filter (fun a -> a >= lo && a <= hi) set

let ranges_for_array ~layout ~arr set =
  match Label.find_array layout arr with
  | None -> []
  | Some e ->
      let elems =
        Iset.fold
          (fun a acc ->
            if a >= e.Label.base
               && a < e.Label.base + (e.Label.elems * e.Label.elem_size)
            then ((a - e.Label.base) / e.Label.elem_size) :: acc
            else acc)
          set []
      in
      coalesce elems

(* ---- affine analysis ---- *)

type atom = { key : string; aexpr : Ast.expr }

type affine = { terms : (atom * int) list; const : int }

let add_term terms atom c =
  let rec loop = function
    | [] -> [ (atom, c) ]
    | (a', c') :: rest when a'.key = atom.key ->
        if c' + c = 0 then rest else (a', c' + c) :: rest
    | t :: rest -> t :: loop rest
  in
  loop terms

let affine_add a b =
  {
    terms = List.fold_left (fun ts (v, c) -> add_term ts v c) a.terms b.terms;
    const = a.const + b.const;
  }

let affine_scale k a =
  if k = 0 then { terms = []; const = 0 }
  else { terms = List.map (fun (v, c) -> (v, c * k)) a.terms; const = a.const * k }

(* Forward reference: atoms are keyed by their pretty-printed form, which
   is also how add_range_edit deduplicates, so keys are stable. *)
let atom_key e = Pretty.expr_to_string e

let atom_of e = { terms = [ ({ key = atom_key e; aexpr = e }, 1) ]; const = 0 }

let linearize ~const_env e =
  let exception Not_affine in
  let rec go e =
    match e with
    | Ast.Eint i -> { terms = []; const = i }
    | Ast.Efloat _ -> raise Not_affine
    | Ast.Evar name -> (
        match const_env name with
        | Some (Value.Vint i) -> { terms = []; const = i }
        | Some (Value.Vfloat _) -> raise Not_affine
        | None -> atom_of e)
    | Ast.Eunop (Ast.Neg, a) -> affine_scale (-1) (go a)
    | Ast.Eunop (Ast.Not, _) -> raise Not_affine
    | Ast.Ebinop (Ast.Add, a, b) -> affine_add (go a) (go b)
    | Ast.Ebinop (Ast.Sub, a, b) -> affine_add (go a) (affine_scale (-1) (go b))
    | Ast.Ebinop (Ast.Mul, a, b) -> (
        let fa = go a and fb = go b in
        match (fa.terms, fb.terms) with
        | [], _ -> affine_scale fa.const fb
        | _, [] -> affine_scale fb.const fa
        | _ -> atom_of e)
    | Ast.Ebinop ((Ast.Div | Ast.Mod), a, b) -> (
        (* Constant-fold when possible, otherwise keep as an atom. *)
        let fa = go a and fb = go b in
        match (fa.terms, fb.terms) with
        | [], [] when fb.const <> 0 ->
            let v =
              match e with
              | Ast.Ebinop (Ast.Div, _, _) -> fa.const / fb.const
              | _ -> fa.const mod fb.const
            in
            { terms = []; const = v }
        | _ -> atom_of e)
    | Ast.Ecall _ | Ast.Eindex _ -> atom_of e
    | Ast.Ebinop
        ((Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge | Ast.Eq | Ast.Ne | Ast.And | Ast.Or),
         _, _) ->
        atom_of e
  in
  try Some (go e) with Not_affine -> None

let coeff_of_var aff v =
  match List.find_opt (fun (a, _) -> a.key = v) aff.terms with
  | Some (_, c) -> c
  | None -> 0

let affine_to_expr a =
  let term_expr (atom, c) =
    if c = 1 then atom.aexpr
    else Ast.Ebinop (Ast.Mul, Ast.Eint c, atom.aexpr)
  in
  let base =
    match a.terms with
    | [] -> Ast.Eint a.const
    | t :: rest ->
        let sum =
          List.fold_left
            (fun acc t -> Ast.Ebinop (Ast.Add, acc, term_expr t))
            (term_expr t) rest
        in
        if a.const = 0 then sum
        else if a.const > 0 then Ast.Ebinop (Ast.Add, sum, Ast.Eint a.const)
        else Ast.Ebinop (Ast.Sub, sum, Ast.Eint (-a.const))
  in
  base

let rec subst_var v replacement e =
  let go = subst_var v replacement in
  match e with
  | Ast.Evar name when name = v -> replacement
  | Ast.Eint _ | Ast.Efloat _ | Ast.Evar _ -> e
  | Ast.Eindex (name, idx) -> Ast.Eindex (name, go idx)
  | Ast.Ebinop (op, a, b) -> Ast.Ebinop (op, go a, go b)
  | Ast.Eunop (op, a) -> Ast.Eunop (op, go a)
  | Ast.Ecall (name, args) -> Ast.Ecall (name, List.map go args)

let free_vars e =
  let acc = ref [] in
  let rec go = function
    | Ast.Evar name -> acc := name :: !acc
    | Ast.Eint _ | Ast.Efloat _ -> ()
    | Ast.Eindex (_, idx) -> go idx
    | Ast.Ebinop (_, a, b) ->
        go a;
        go b
    | Ast.Eunop (_, a) -> go a
    | Ast.Ecall (_, args) -> List.iter go args
  in
  go e;
  List.sort_uniq compare !acc

let direct_exprs (s : Ast.stmt) =
  match s.Ast.node with
  | Ast.Sassign (Ast.Lvar _, e) -> [ e ]
  | Ast.Sassign (Ast.Lindex (name, idx), e) -> [ Ast.Eindex (name, idx); e ]
  | Ast.Sif (cond, _, _) -> [ cond ]
  | Ast.Sfor { from_; to_; step; _ } -> [ from_; to_; step ]
  | Ast.Swhile (cond, _) -> [ cond ]
  | Ast.Sbarrier -> []
  | Ast.Scall (_, args) -> args
  | Ast.Sreturn (Some e) -> [ e ]
  | Ast.Sreturn None -> []
  | Ast.Slock e | Ast.Sunlock e -> [ e ]
  | Ast.Sannot (_, { lo; hi; _ }) -> [ lo; hi ]
  | Ast.Sannot_table _ -> []
  | Ast.Sprint args -> args

let array_subscripts (s : Ast.stmt) ~arr =
  let subs = ref [] in
  let rec go = function
    | Ast.Eindex (name, idx) ->
        if name = arr then subs := idx :: !subs;
        go idx
    | Ast.Eint _ | Ast.Efloat _ | Ast.Evar _ -> ()
    | Ast.Ebinop (_, a, b) ->
        go a;
        go b
    | Ast.Eunop (_, a) -> go a
    | Ast.Ecall (_, args) -> List.iter go args
  in
  List.iter go (direct_exprs s);
  (* distinct, preserving first-occurrence order *)
  List.rev
    (List.fold_left
       (fun acc e -> if List.mem e acc then acc else e :: acc)
       [] (List.rev !subs))

let array_write_subscripts (s : Ast.stmt) ~arr =
  match s.Ast.node with
  | Ast.Sassign (Ast.Lindex (name, idx), _) when name = arr -> [ idx ]
  | Ast.Sassign _ | Ast.Sif _ | Ast.Sfor _ | Ast.Swhile _ | Ast.Sbarrier
  | Ast.Scall _ | Ast.Sreturn _ | Ast.Slock _ | Ast.Sunlock _ | Ast.Sannot _
  | Ast.Sannot_table _ | Ast.Sprint _ ->
      []

let table_stmt kind ~arr ~nodes ~per_node_ranges =
  let table = Array.init nodes per_node_ranges in
  if Array.for_all (fun r -> r = []) table then None
  else
    Some
      {
        Ast.sid = -1;
        node = Ast.Sannot_table { akind = kind; aarr = arr; aranges = table };
      }
