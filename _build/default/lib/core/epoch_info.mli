(** Assimilation of trace information (Section 4, phase one).

    For each epoch and node the paper derives:
    - [SWᵢ] = shared write misses ∪ shared write faults,
    - [SRᵢ] = shared read misses − shared write faults
      (a location that was read then written contributes only to [SW]),
    - [Sᵢ]  = SWᵢ ∪ SRᵢ,

    plus the per-epoch DRFS analysis. *)

module Iset = Trace.Epoch.Iset

type node_sets = {
  sw : Iset.t;  (** SWᵢ for this node *)
  sr : Iset.t;  (** SRᵢ for this node *)
  wf : Iset.t;  (** raw shared write faults (used by Performance CICO) *)
}

val s_of : node_sets -> Iset.t
(** [Sᵢ = SWᵢ ∪ SRᵢ]. *)

type t = {
  nodes : int;
  block_size : int;
  epochs : Trace.Epoch.t array;
  sets : node_sets array array;  (** [sets.(epoch).(node)] *)
  drfs : Drfs.t array;  (** per epoch *)
  labels : (string * int * int) list;  (** labelled shared regions *)
}

val build : nodes:int -> block_size:int -> Trace.Event.record list -> t
(** Segment the trace into epochs and compute every per-epoch set. *)

val n_epochs : t -> int

val sets_at : t -> epoch:int -> node:int -> node_sets
(** Out-of-range epochs yield empty sets (used for i-1 and i+1 at the
    trace boundaries). *)

val sw_any_node : t -> epoch:int -> Iset.t
(** Union of SWᵢ over all nodes ("written by some processor"). *)

val sw_any_node_except : t -> epoch:int -> node:int -> Iset.t
(** Union of SWᵢ over every node other than [node] ("written by some
    {e other} processor") — used by the Performance check-in rule so a
    node never flushes data only it will write next epoch. *)
