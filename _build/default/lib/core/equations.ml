module Iset = Trace.Epoch.Iset

type mode = Programmer | Performance

type annots = { co_x : Iset.t; co_s : Iset.t; ci : Iset.t }

let empty = { co_x = Iset.empty; co_s = Iset.empty; ci = Iset.empty }

let union a b =
  {
    co_x = Iset.union a.co_x b.co_x;
    co_s = Iset.union a.co_s b.co_s;
    ci = Iset.union a.ci b.ci;
  }

let for_epoch mode (info : Epoch_info.t) ~epoch ~node =
  let cur = Epoch_info.sets_at info ~epoch ~node in
  let prev = Epoch_info.sets_at info ~epoch:(epoch - 1) ~node in
  let next = Epoch_info.sets_at info ~epoch:(epoch + 1) ~node in
  let d = info.Epoch_info.drfs.(epoch) in
  match mode with
  | Programmer ->
      let s_cur = Epoch_info.s_of cur in
      let s_next = Epoch_info.s_of next in
      {
        co_x =
          Iset.union
            (Drfs.filter_not_drfs d (Iset.diff cur.Epoch_info.sw prev.Epoch_info.sw))
            (Drfs.filter_drfs d cur.Epoch_info.sw);
        co_s =
          Iset.union
            (Drfs.filter_not_fs d (Iset.diff cur.Epoch_info.sr prev.Epoch_info.sr))
            (Drfs.filter_fs d cur.Epoch_info.sr);
        ci =
          Iset.union
            (Drfs.filter_not_drfs d (Iset.diff s_cur s_next))
            (Drfs.filter_drfs d s_cur);
      }
  | Performance ->
      let s_cur = Epoch_info.s_of cur in
      let s_next_self = Epoch_info.s_of next in
      let sw_next_other =
        Epoch_info.sw_any_node_except info ~epoch:(epoch + 1) ~node
      in
      (* "Finished with the location" means no use at all by this node in
         the next epoch: flushing data the node is about to read would
         turn its own hits into misses. *)
      {
        co_x =
          Iset.union
            (Drfs.filter_not_drfs d (Iset.diff cur.Epoch_info.wf prev.Epoch_info.sw))
            (Drfs.filter_drfs d cur.Epoch_info.wf);
        co_s = Iset.empty;
        ci =
          Iset.union
            (Iset.union
               (Drfs.filter_not_drfs d
                  (Iset.diff cur.Epoch_info.sw s_next_self))
               (Drfs.filter_not_drfs d
                  (Iset.diff
                     (Iset.inter cur.Epoch_info.sr sw_next_other)
                     s_next_self)))
            (Drfs.filter_drfs d s_cur);
      }

let all mode info =
  Array.init (Epoch_info.n_epochs info) (fun epoch ->
      Array.init info.Epoch_info.nodes (fun node ->
          for_epoch mode info ~epoch ~node))
