lib/core/report.ml: Array Drfs Epoch_info Format Hashtbl Lang List Presentation String Trace
