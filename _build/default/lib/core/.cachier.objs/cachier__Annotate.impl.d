lib/core/annotate.ml: Epoch_info Lang List Placement Report Wwt
