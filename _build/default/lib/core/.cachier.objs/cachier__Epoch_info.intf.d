lib/core/epoch_info.mli: Drfs Trace
