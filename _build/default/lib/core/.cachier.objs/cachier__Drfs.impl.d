lib/core/drfs.ml: Hashtbl List Memsys Option Trace
