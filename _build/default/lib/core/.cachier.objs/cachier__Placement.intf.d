lib/core/placement.mli: Epoch_info Equations Lang Wwt
