lib/core/epoch_info.ml: Array Drfs Trace
