lib/core/presentation.ml: Array Ast Label Lang List Pretty Trace Value
