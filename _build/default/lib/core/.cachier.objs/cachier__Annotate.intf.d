lib/core/annotate.mli: Epoch_info Lang Placement Report Trace Wwt
