lib/core/drfs.mli: Trace
