lib/core/equations.mli: Epoch_info Trace
