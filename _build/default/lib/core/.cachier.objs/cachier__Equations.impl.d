lib/core/equations.ml: Array Drfs Epoch_info Trace
