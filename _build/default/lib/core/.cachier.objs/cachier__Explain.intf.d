lib/core/explain.mli: Epoch_info Equations Format Lang Trace
