lib/core/presentation.mli: Lang Trace
