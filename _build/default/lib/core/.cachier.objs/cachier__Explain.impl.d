lib/core/explain.ml: Array Drfs Epoch_info Equations Format Fun Hashtbl Lang List Option Printf String Trace
