lib/core/report.mli: Epoch_info Format Lang
