lib/core/placement.ml: Array Ast Drfs Epoch_info Equations Hashtbl Label Lang List Loops Memsys Option Presentation Pretty Printf Sema String Trace Value Wwt
