(** The Cachier driver (Figure 1): unannotated program + trace in,
    annotated program out.

    [annotate_program] runs the whole pipeline: strip any existing
    annotations, execute the program once on the simulated machine to
    collect its miss trace, assimilate the trace (epochs, SW/SR sets,
    DRFS), evaluate the Section 4.1 equations in the requested mode, plan
    placement, and rewrite the AST. [annotate_with_trace] skips the
    simulation and uses a caller-provided trace (e.g. one read from a
    file, or one produced from a different input data set — Section 4.5).

    The result keeps the original statement ids, so [notes] (race /
    false-sharing warnings) can be rendered as comments via
    [Lang.Pretty.program_to_string ~note]. *)

type result = {
  annotated : Lang.Ast.program;
  report : Report.t;
  notes : (int * string) list;
  einfo : Epoch_info.t;  (** the assimilated trace, for inspection *)
  n_edits : int;  (** number of annotation statements inserted *)
}

val annotate_with_trace :
  machine:Wwt.Machine.t ->
  options:Placement.options ->
  Lang.Ast.program ->
  Trace.Event.record list ->
  result

val annotate_with_traces :
  machine:Wwt.Machine.t ->
  options:Placement.options ->
  Lang.Ast.program ->
  Trace.Event.record list list ->
  result
(** The Section 4.5 training-set alternative: merge the dynamic
    information of several traces (e.g. from different input data sets)
    before placing annotations. The reported races and [einfo] come from
    the first trace. @raise Invalid_argument on an empty list. *)

val annotate_training :
  machine:Wwt.Machine.t ->
  options:Placement.options ->
  seed_const:string ->
  seeds:int list ->
  Lang.Ast.program ->
  result
(** Convenience wrapper: run the program once per seed (substituting the
    integer constant named [seed_const], conventionally ["SEED"]) and
    annotate from the combined traces. *)

val annotate_program :
  machine:Wwt.Machine.t ->
  options:Placement.options ->
  Lang.Ast.program ->
  result

val annotate_source :
  machine:Wwt.Machine.t -> options:Placement.options -> string -> result
(** Parse, then [annotate_program]. *)

val to_source : result -> string
(** Pretty-print the annotated program with race/false-sharing comments. *)
