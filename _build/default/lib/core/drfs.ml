module Iset = Trace.Epoch.Iset

type t = { race_set : Iset.t; fs_set : Iset.t }

(* Per address: accessor and writer bitmasks plus the raw access list
   (node, is_write, lockset) used by the lockset refinement. *)
type addr_info = {
  mutable nodes : int;
  mutable writers : int;
  mutable accesses : (int * bool * int list) list;
}

(* A pair of accesses races when it involves two nodes, at least one
   write, and no common lock protects both (the paper ignores locks; the
   lockset check is our refinement, enabled by default and exact for the
   trace's within-epoch view). *)
let pair_races (n1, w1, l1) (n2, w2, l2) =
  n1 <> n2 && (w1 || w2)
  && not (List.exists (fun l -> List.mem l l2) l1)

let analyze ?(lock_aware = true) ~block_size (epoch : Trace.Epoch.t) =
  let per_addr : (int, addr_info) Hashtbl.t = Hashtbl.create 256 in
  List.iter
    (fun (m : Trace.Event.miss) ->
      let info =
        match Hashtbl.find_opt per_addr m.addr with
        | Some i -> i
        | None ->
            let i = { nodes = 0; writers = 0; accesses = [] } in
            Hashtbl.add per_addr m.addr i;
            i
      in
      info.nodes <- info.nodes lor (1 lsl m.node);
      let is_write =
        m.kind = Trace.Event.Write_miss || m.kind = Trace.Event.Write_fault
      in
      if is_write then info.writers <- info.writers lor (1 lsl m.node);
      info.accesses <- (m.node, is_write, m.held) :: info.accesses)
    epoch.Trace.Epoch.misses;
  let races_on info =
    info.writers <> 0
    && Memsys.Directory.popcount info.nodes >= 2
    && ((not lock_aware)
       ||
       let rec any = function
         | [] -> false
         | a :: rest -> List.exists (pair_races a) rest || any rest
       in
       any info.accesses)
  in
  let race_set =
    Hashtbl.fold
      (fun addr info acc ->
        if races_on info then Iset.add addr acc else acc)
      per_addr Iset.empty
  in
  (* Group addresses by block. Address [a] is falsely shared iff there is
     an access pair (x on a, y on b) with b <> a in the same block,
     x <> y, and at least one of the pair is a write: distinct processors
     contending for the block through independent locations. Read-read
     block sharing is ordinary shared caching, not false sharing. *)
  let per_block : (int, (int * addr_info) list) Hashtbl.t =
    Hashtbl.create 256
  in
  Hashtbl.iter
    (fun addr info ->
      let blk = Memsys.Block.of_addr ~block_size addr in
      let prev = Option.value ~default:[] (Hashtbl.find_opt per_block blk) in
      Hashtbl.replace per_block blk ((addr, info) :: prev))
    per_addr;
  (* [exists x in writers, y in accessors, x <> y]: true when some writer
     of one side conflicts with a different node on the other side. *)
  let write_conflict writers accessors =
    writers <> 0
    && (Memsys.Directory.popcount writers >= 2
       || accessors land lnot writers <> 0
       || Memsys.Directory.popcount accessors >= 2)
  in
  let fs_set =
    Hashtbl.fold
      (fun _blk members acc ->
        List.fold_left
          (fun acc (addr, ia) ->
            let conflicting =
              List.exists
                (fun (b, ib) ->
                  b <> addr
                  && (write_conflict ia.writers ib.nodes
                     || write_conflict ib.writers ia.nodes))
                members
            in
            if conflicting then Iset.add addr acc else acc)
          acc members)
      per_block Iset.empty
  in
  { race_set; fs_set }

let race t = t.race_set
let false_shared t = t.fs_set
let drfs_set t = Iset.union t.race_set t.fs_set
let in_race t a = Iset.mem a t.race_set
let in_false_sharing t a = Iset.mem a t.fs_set
let in_drfs t a = in_race t a || in_false_sharing t a

let filter_drfs t set = Iset.filter (in_drfs t) set
let filter_not_drfs t set = Iset.filter (fun a -> not (in_drfs t a)) set
let filter_fs t set = Iset.filter (in_false_sharing t) set
let filter_not_fs t set = Iset.filter (fun a -> not (in_false_sharing t a)) set
