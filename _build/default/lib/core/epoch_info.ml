module Iset = Trace.Epoch.Iset

type node_sets = { sw : Iset.t; sr : Iset.t; wf : Iset.t }

let empty_sets = { sw = Iset.empty; sr = Iset.empty; wf = Iset.empty }

let s_of ns = Iset.union ns.sw ns.sr

type t = {
  nodes : int;
  block_size : int;
  epochs : Trace.Epoch.t array;
  sets : node_sets array array;
  drfs : Drfs.t array;
  labels : (string * int * int) list;
}

let sets_of_epoch (e : Trace.Epoch.t) node =
  let nm = e.Trace.Epoch.per_node.(node) in
  let reads = nm.Trace.Epoch.reads
  and writes = nm.Trace.Epoch.writes
  and faults = nm.Trace.Epoch.faults in
  {
    sw = Iset.union writes faults;
    sr = Iset.diff reads faults;
    wf = faults;
  }

let build ~nodes ~block_size records =
  let epochs, labels = Trace.Epoch.split ~nodes records in
  let epochs = Array.of_list epochs in
  let sets =
    Array.map
      (fun e -> Array.init nodes (fun node -> sets_of_epoch e node))
      epochs
  in
  let drfs = Array.map (fun e -> Drfs.analyze ~block_size e) epochs in
  { nodes; block_size; epochs; sets; drfs; labels }

let n_epochs t = Array.length t.epochs

let sets_at t ~epoch ~node =
  if epoch < 0 || epoch >= Array.length t.sets then empty_sets
  else t.sets.(epoch).(node)

let sw_any_node t ~epoch =
  if epoch < 0 || epoch >= Array.length t.sets then Iset.empty
  else
    Array.fold_left
      (fun acc ns -> Iset.union acc ns.sw)
      Iset.empty t.sets.(epoch)

let sw_any_node_except t ~epoch ~node =
  if epoch < 0 || epoch >= Array.length t.sets then Iset.empty
  else begin
    let acc = ref Iset.empty in
    Array.iteri
      (fun m ns -> if m <> node then acc := Iset.union !acc ns.sw)
      t.sets.(epoch);
    !acc
  end
