module Iset = Trace.Epoch.Iset
open Lang

type anchor =
  | Before of int
  | After of int
  | Loop_begin of int
  | Loop_end of int
  | Proc_begin of string
  | Proc_end of string

type edit = { anchor : anchor; stmt : Ast.stmt }

type options = {
  mode : Equations.mode;
  prefetch : bool;
  capacity_fraction : float;
}

let default_options =
  { mode = Equations.Performance; prefetch = false; capacity_fraction = 0.5 }

type plan = { edits : edit list; notes : (int * string) list }

(* ---- edit application ---- *)

let apply_edits program edits =
  let before : (int, Ast.stmt list ref) Hashtbl.t = Hashtbl.create 32 in
  let after : (int, Ast.stmt list ref) Hashtbl.t = Hashtbl.create 32 in
  let loop_begin : (int, Ast.stmt list ref) Hashtbl.t = Hashtbl.create 32 in
  let loop_end : (int, Ast.stmt list ref) Hashtbl.t = Hashtbl.create 32 in
  let proc_begin : (string, Ast.stmt list ref) Hashtbl.t = Hashtbl.create 8 in
  let proc_end : (string, Ast.stmt list ref) Hashtbl.t = Hashtbl.create 8 in
  let push table key stmt =
    let cell =
      match Hashtbl.find_opt table key with
      | Some c -> c
      | None ->
          let c = ref [] in
          Hashtbl.add table key c;
          c
    in
    cell := stmt :: !cell
  in
  List.iter
    (fun { anchor; stmt } ->
      match anchor with
      | Before sid -> push before sid stmt
      | After sid -> push after sid stmt
      | Loop_begin sid -> push loop_begin sid stmt
      | Loop_end sid -> push loop_end sid stmt
      | Proc_begin name -> push proc_begin name stmt
      | Proc_end name -> push proc_end name stmt)
    edits;
  let get table key =
    match Hashtbl.find_opt table key with Some c -> List.rev !c | None -> []
  in
  let rec rewrite_stmt (s : Ast.stmt) =
    let node =
      match s.Ast.node with
      | Ast.Sif (e, b1, b2) -> Ast.Sif (e, rewrite_block b1, rewrite_block b2)
      | Ast.Sfor fl ->
          let body = rewrite_block fl.Ast.body in
          let body = get loop_begin s.Ast.sid @ body @ get loop_end s.Ast.sid in
          Ast.Sfor { fl with Ast.body }
      | Ast.Swhile (e, b) ->
          let body = rewrite_block b in
          let body = get loop_begin s.Ast.sid @ body @ get loop_end s.Ast.sid in
          Ast.Swhile (e, body)
      | (Ast.Sassign _ | Ast.Sbarrier | Ast.Scall _ | Ast.Sreturn _
        | Ast.Slock _ | Ast.Sunlock _ | Ast.Sannot _ | Ast.Sannot_table _
        | Ast.Sprint _) as n ->
          n
    in
    { s with Ast.node }
  and rewrite_block block =
    List.concat_map
      (fun (s : Ast.stmt) ->
        let s' = rewrite_stmt s in
        get before s.Ast.sid @ [ s' ] @ get after s.Ast.sid)
      block
  in
  {
    program with
    Ast.procs =
      List.map
        (fun (p : Ast.proc) ->
          {
            p with
            Ast.body =
              get proc_begin p.Ast.pname
              @ rewrite_block p.Ast.body
              @ get proc_end p.Ast.pname;
          })
        program.Ast.procs;
  }

let assign_fresh_sids program =
  let next = ref (Ast.max_sid program + 1) in
  let rec stmt (s : Ast.stmt) =
    let sid =
      if s.Ast.sid >= 0 then s.Ast.sid
      else begin
        let v = !next in
        incr next;
        v
      end
    in
    let node =
      match s.Ast.node with
      | Ast.Sif (e, b1, b2) -> Ast.Sif (e, List.map stmt b1, List.map stmt b2)
      | Ast.Sfor fl -> Ast.Sfor { fl with Ast.body = List.map stmt fl.Ast.body }
      | Ast.Swhile (e, b) -> Ast.Swhile (e, List.map stmt b)
      | (Ast.Sassign _ | Ast.Sbarrier | Ast.Scall _ | Ast.Sreturn _
        | Ast.Slock _ | Ast.Sunlock _ | Ast.Sannot _ | Ast.Sannot_table _
        | Ast.Sprint _) as n ->
          n
    in
    { Ast.sid; node }
  in
  {
    program with
    Ast.procs =
      List.map
        (fun (p : Ast.proc) -> { p with Ast.body = List.map stmt p.Ast.body })
        program.Ast.procs;
  }

(* ---- static epochs ---- *)

type sepoch = {
  key : int option * int option;
  dyns : (int * int) list;
      (* (trace index, dynamic epoch index) pairs, in order; several
         traces may contribute — the Section 4.5 training-set mode *)
}

let static_epochs (einfos : Epoch_info.t array) =
  let table : (int option * int option, (int * int) list ref) Hashtbl.t =
    Hashtbl.create 16
  in
  let order = ref [] in
  Array.iteri
    (fun t einfo ->
      Array.iteri
        (fun idx e ->
          let key = Trace.Epoch.static_key e in
          match Hashtbl.find_opt table key with
          | Some cell -> cell := (t, idx) :: !cell
          | None ->
              let cell = ref [ (t, idx) ] in
              Hashtbl.add table key cell;
              order := key :: !order)
        einfo.Epoch_info.epochs)
    einfos;
  List.map
    (fun key -> { key; dyns = List.rev !(Hashtbl.find table key) })
    (List.rev !order)

(* ---- the planner ---- *)

type ctx = {
  program : Ast.program;
  layout : Label.t;
  machine : Wwt.Machine.t;
  einfos : Epoch_info.t array;
  annots : Equations.annots array array array;
      (* annots.(trace).(epoch).(node), precomputed *)
  nodes : int;
  options : options;
  loops : Loops.loop list;
  consts : (string * Value.t) list;
  stmt_tbl : (int, Ast.stmt) Hashtbl.t;
  proc_tbl : (int, string) Hashtbl.t;  (* sid -> enclosing procedure *)
  pid_guards : (int, int list) Hashtbl.t;
      (* sid -> enclosing pid-dependent if headers *)
  guard_body : (int, Iset.t) Hashtbl.t;  (* guard sid -> contained sids *)
  mutable edits : edit list;  (* reversed *)
  note_tbl : (int, string list) Hashtbl.t;
  seen : (string, unit) Hashtbl.t;  (* dedup keys *)
}

let budget_bytes ctx =
  int_of_float
    (ctx.options.capacity_fraction
    *. float_of_int ctx.machine.Wwt.Machine.cache_bytes)

let add_edit ctx ~key anchor stmt =
  if Hashtbl.mem ctx.seen key then false
  else begin
    Hashtbl.add ctx.seen key ();
    ctx.edits <- { anchor; stmt } :: ctx.edits;
    true
  end

let add_note ctx sid msg =
  let prev = Option.value ~default:[] (Hashtbl.find_opt ctx.note_tbl sid) in
  if not (List.mem msg prev) then
    Hashtbl.replace ctx.note_tbl sid (prev @ [ msg ])

let anchor_key = function
  | Before sid -> Printf.sprintf "B%d" sid
  | After sid -> Printf.sprintf "A%d" sid
  | Loop_begin sid -> Printf.sprintf "LB%d" sid
  | Loop_end sid -> Printf.sprintf "LE%d" sid
  | Proc_begin name -> "PB" ^ name
  | Proc_end name -> "PE" ^ name

let range_annot kind arr lo hi =
  { Ast.sid = -1; node = Ast.Sannot (kind, { Ast.arr; lo; hi }) }

let add_range_edit ctx anchor kind arr lo hi =
  let key =
    Printf.sprintf "%s|%s|%s|%s|%s" (anchor_key anchor)
      (Ast.annot_kind_name kind) arr
      (Pretty.expr_to_string lo) (Pretty.expr_to_string hi)
  in
  ignore (add_edit ctx ~key anchor (range_annot kind arr lo hi))

let add_table_edit ctx anchor kind arr per_node =
  match
    Presentation.table_stmt kind ~arr ~nodes:ctx.nodes
      ~per_node_ranges:per_node
  with
  | None -> ()
  | Some stmt ->
      let key =
        Printf.sprintf "%s|%s|%s|table|%s" (anchor_key anchor)
          (Ast.annot_kind_name kind) arr
          (Pretty.stmt_to_string stmt)
      in
      ignore (add_edit ctx ~key anchor stmt)

(* Numeric evaluation of an expression under consts + explicit bindings. *)
let eval_const ctx ~bindings e =
  match Sema.const_eval ~consts:(ctx.consts @ bindings) e with
  | v -> Some v
  | exception Sema.Error _ -> None

let const_step_positive ctx step =
  match eval_const ctx ~bindings:[] step with
  | Some (Value.Vint k) when k <> 0 -> Some (k > 0)
  | _ -> None

(* Bounds of a loop variable as (min_expr, max_expr), accounting for the
   step sign; None if the step is not a non-zero constant. *)
let loop_var_bounds ctx (l : Loops.loop) =
  match Hashtbl.find_opt ctx.stmt_tbl l.Loops.header_sid with
  | Some { Ast.node = Ast.Sfor { from_; to_; step; _ }; _ } -> (
      match const_step_positive ctx step with
      | Some true -> Some (from_, to_)
      | Some false -> Some (to_, from_)
      | None -> None)
  | _ -> None

let const_env ctx name = List.assoc_opt name ctx.consts

(* Substitute the variables of the loops in [to_bind] by their extreme
   values so the resulting expression is the lower (if [want_min]) or upper
   bound of [sub] over those loops. Requires the subscript to be affine so
   coefficient signs are known. *)
let bound_expr ctx ~want_min ~to_bind sub =
  match Presentation.linearize ~const_env:(const_env ctx) sub with
  | None -> None
  | Some aff ->
      let coeff v = Presentation.coeff_of_var aff v in
      let rec loop e = function
        | [] -> Some e
        | (l : Loops.loop) :: rest -> (
            match l.Loops.var with
            | None ->
                (* A while loop introduces no induction variable, so
                   nothing needs substituting at this level. *)
                loop e rest
            | Some v when coeff v = 0 -> loop e rest
            | Some v -> (
                match loop_var_bounds ctx l with
                | None -> None
                | Some (min_e, max_e) ->
                    let c = coeff v in
                    let repl =
                      if (c >= 0) = want_min then min_e else max_e
                    in
                    loop (Presentation.subst_var v repl e) rest))
      in
      loop sub to_bind

(* Over-approximate the maximum element span (hi - lo) of the pair of bound
   expressions, maximising over every remaining free variable: loop
   variables range over their bounds, [pid] over the node count. Returns
   None when something is not numerically resolvable. *)
let max_span_elems ctx ~chain lo_expr hi_expr =
  let diff = Ast.Ebinop (Ast.Sub, hi_expr, lo_expr) in
  match Presentation.linearize ~const_env:(const_env ctx) diff with
  | None -> None
  | Some aff ->
      let nodes = ctx.machine.Wwt.Machine.nodes in
      (* Extremes of [c * e] where [e]'s free variables are only pid,
         nprocs and constants: evaluate for every node. *)
      let per_pid_extreme e c =
        let ok =
          List.for_all
            (fun v ->
              v = "pid" || v = "nprocs" || List.mem_assoc v ctx.consts)
            (Presentation.free_vars e)
        in
        if not ok then None
        else
          let rec go node acc =
            if node >= nodes then acc
            else
              let bindings =
                [ ("pid", Value.Vint node); ("nprocs", Value.Vint nodes) ]
              in
              match eval_const ctx ~bindings e with
              | Some (Value.Vint v) -> (
                  match go (node + 1) acc with
                  | exception Exit -> raise Exit
                  | acc -> (
                      match acc with
                      | None -> Some (c * v)
                      | Some m -> Some (max m (c * v))))
              | Some (Value.Vfloat _) | None -> raise Exit
          in
          try go 0 None with Exit -> None
      in
      let resolve_atom (atom : Presentation.atom) c =
        let v = atom.Presentation.key in
        if c = 0 then Some 0
        else
          match
            List.find_opt
              (fun (l : Loops.loop) -> l.Loops.var = Some v)
              chain
          with
          | None -> per_pid_extreme atom.Presentation.aexpr c
          | Some l -> (
              match loop_var_bounds ctx l with
              | None -> None
              | Some (min_e, max_e) ->
                  (* Bounds may mention [pid]; take the worst case over
                     every node. *)
                  let nodes = ctx.machine.Wwt.Machine.nodes in
                  let eval_all e =
                    let rec per_node node acc =
                      if node >= nodes then Some acc
                      else
                        let bindings =
                          [
                            ("pid", Value.Vint node);
                            ("nprocs", Value.Vint nodes);
                          ]
                        in
                        match eval_const ctx ~bindings e with
                        | Some (Value.Vint v) -> per_node (node + 1) (v :: acc)
                        | Some (Value.Vfloat _) | None -> None
                    in
                    per_node 0 []
                  in
                  (match (eval_all min_e, eval_all max_e) with
                  | Some los, Some his ->
                      let candidates =
                        List.map (fun v -> c * v) (los @ his)
                      in
                      Some (List.fold_left max min_int candidates)
                  | _ -> None))
      in
      let rec sum acc = function
        | [] -> Some acc
        | (atom, c) :: rest -> (
            match resolve_atom atom c with
            | None -> None
            | Some contrib -> sum (acc + contrib) rest)
      in
      Option.map (fun s -> s + aff.Presentation.const) (sum 0 aff.Presentation.terms)

(* ---- per-static-epoch planning ---- *)

let kind_of_proj = function
  | `Co_x -> Ast.Check_out_x
  | `Co_s -> Ast.Check_out_s
  | `Ci -> Ast.Check_in

let proj_set (a : Equations.annots) = function
  | `Co_x -> a.Equations.co_x
  | `Co_s -> a.Equations.co_s
  | `Ci -> a.Equations.ci

(* pcs in [misses] touching an address of [addrs]; for check-outs prefer
   the read-miss pcs (a check-out-exclusive must precede the first read,
   Section 4.1), falling back to all accessing pcs. *)
let pcs_for_addrs ~misses ~addrs ~prefer_reads =
  let all = ref [] and reads = ref [] in
  List.iter
    (fun (m : Trace.Event.miss) ->
      if Iset.mem m.Trace.Event.addr addrs then begin
        all := m.Trace.Event.pc :: !all;
        if m.Trace.Event.kind = Trace.Event.Read_miss then
          reads := m.Trace.Event.pc :: !reads
      end)
    misses;
  let pick = if prefer_reads && !reads <> [] then !reads else !all in
  List.sort_uniq compare pick

let place_near_access ctx ~proj ~arr ~pcs ~note_of =
  let kind = kind_of_proj proj in
  List.iter
    (fun pc ->
      match Hashtbl.find_opt ctx.stmt_tbl pc with
      | None -> ()
      | Some stmt ->
          (* A check-in relinquishes the location, so it follows the
             write that finishes with it; check-outs precede any of the
             statement's references. *)
          let subs =
            if proj = `Ci then Presentation.array_write_subscripts stmt ~arr
            else Presentation.array_subscripts stmt ~arr
          in
          List.iter
            (fun sub ->
              let anchor = if proj = `Ci then After pc else Before pc in
              add_range_edit ctx anchor kind arr sub sub;
              match note_of with
              | Some describe ->
                  add_note ctx pc
                    (Printf.sprintf "%s on %s[%s]" describe arr
                       (Pretty.expr_to_string sub))
              | None -> ())
            subs)
    pcs

(* Static (affine) placement for one access site. Returns true when it
   succeeded, false to fall back to dynamic placement. *)
let place_affine ctx ~proj ~arr ~pc ~start_anchor ~end_anchor ~anchor_sids
    ~target_per_node ~covered ~budget_left =
  let kind = kind_of_proj proj in
  match Hashtbl.find_opt ctx.stmt_tbl pc with
  | None -> false
  | Some stmt -> (
      (* Write subscripts first: they match check-out-exclusive and
         check-in sets exactly; read subscripts only contribute what the
         write subscripts left uncovered. *)
      let subs =
        let w = Presentation.array_write_subscripts stmt ~arr in
        let all = Presentation.array_subscripts stmt ~arr in
        w @ List.filter (fun e -> not (List.mem e w)) all
      in
      if subs = [] then false
      else
        let chain = Loops.containing ctx.loops pc in
        (* Loops that also enclose the epoch's barriers (e.g. LU's k loop,
           whose body holds both barriers) are still running at the epoch
           boundary: their variables are live there and must stay
           symbolic, producing the paper's parametric annotations such as
           M[k*N + k+1 .. k*N + N-1]. *)
        let encloses_anchor (l : Loops.loop) =
          List.for_all
            (fun sid -> List.mem sid l.Loops.body_sids)
            anchor_sids
          && anchor_sids <> []
        in
        let anchor_prefix = List.filter encloses_anchor chain in
        let inner_chain =
          List.filter (fun l -> not (encloses_anchor l)) chain
        in
        (* outermost-first candidate levels: epoch boundary, then after
           each loop header, then immediately at the access *)
        let scope_ok ~in_scope e =
          List.for_all
            (fun v ->
              v = "pid" || v = "nprocs"
              || List.mem_assoc v ctx.consts
              || List.mem v in_scope)
            (Presentation.free_vars e)
        in
        let level_bounds ~to_bind ~in_scope sub =
          match
            ( bound_expr ctx ~want_min:true ~to_bind sub,
              bound_expr ctx ~want_min:false ~to_bind sub )
          with
          | Some lo, Some hi
            when scope_ok ~in_scope lo && scope_ok ~in_scope hi ->
              Some (lo, hi)
          | _ -> None
        in
        (* The trace records roughly one miss per touched cache block, so
           coverage is compared in blocks: count the distinct blocks of
           the densest node's target set. *)
        let block_size = ctx.machine.Wwt.Machine.block_size in
        let max_target_blocks =
          Array.fold_left
            (fun m set ->
              let blocks =
                Iset.fold
                  (fun a acc ->
                    Iset.add (Memsys.Block.of_addr ~block_size a) acc)
                  set Iset.empty
              in
              max m (Iset.cardinal blocks))
            0 target_per_node
        in
        let elems_per_block = block_size / ctx.machine.Wwt.Machine.elem_size in
        (* A contiguous range that covers far more blocks than the node
           actually touches (a block-partitioned 2-D region flattened to a
           1-D span) would claim or flush other nodes' data; push such
           subscripts down to a loop level where the range is exact. *)
        let not_overcovering span =
          let span_blocks = (span / elems_per_block) + 1 in
          2 * span_blocks <= (3 * max_target_blocks) + 4
        in
        (* Check-outs pin cache capacity until the matching check-in, so
           every epoch shares one budget: once the placed check-outs would
           pin more than the configured cache fraction, further ones are
           dropped rather than allowed to thrash. *)
        let plan_level_ok ~to_bind ~in_scope sub =
          match level_bounds ~to_bind ~in_scope sub with
          | None -> false
          | Some (lo, hi) -> (
              match max_span_elems ctx ~chain lo hi with
              | Some span when span >= 0 ->
                  not_overcovering span
                  && (proj = `Ci
                     || (span + 1) * ctx.machine.Wwt.Machine.elem_size
                        <= !budget_left)
              | Some _ -> false
              | None ->
                  (* span not resolvable numerically: only a check-in may
                     proceed (it pins no capacity and over-coverage of a
                     symbolic loop-level range is bounded by the loop) *)
                  proj = `Ci)
        in
        let try_level ~to_bind ~in_scope ~co_anchor ~ci_anchor sub =
          match
            ( bound_expr ctx ~want_min:true ~to_bind sub,
              bound_expr ctx ~want_min:false ~to_bind sub )
          with
          | Some lo, Some hi
            when scope_ok ~in_scope lo && scope_ok ~in_scope hi -> (
              if plan_level_ok ~to_bind ~in_scope sub then begin
                let anchor = if proj = `Ci then ci_anchor else co_anchor in
                add_range_edit ctx anchor kind arr lo hi;
                (if proj <> `Ci then
                   match max_span_elems ctx ~chain lo hi with
                   | Some span ->
                       budget_left :=
                         !budget_left
                         - ((span + 1) * ctx.machine.Wwt.Machine.elem_size)
                   | None -> ());
                true
              end
              else false)
          | _ -> false
        in
        let vars_of loops_list =
          List.filter_map (fun (l : Loops.loop) -> l.Loops.var) loops_list
        in
        let rec levels prefix = function
          (* [prefix] = loops outside the current level (their vars are in
             scope); returns candidate (to_bind, in_scope, anchors) from
             outermost to innermost. *)
          | [] -> []
          | (l : Loops.loop) :: deeper ->
              ( deeper,
                vars_of (anchor_prefix @ prefix @ [ l ]),
                Loop_begin l.Loops.header_sid,
                Loop_end l.Loops.header_sid )
              :: levels (prefix @ [ l ]) deeper
        in
        let boundary =
          (inner_chain, vars_of anchor_prefix, start_anchor, end_anchor)
        in
        (* An expression range executes on every node; if the access sits
           under a pid-dependent guard, only levels inside that guard are
           legal (the per-pid table fallback is immune — it is keyed by
           pid). *)
        let guards =
          Option.value ~default:[] (Hashtbl.find_opt ctx.pid_guards pc)
        in
        let level_inside_guards = function
          | _ when proj = `Ci ->
              (* a check-in only ever flushes the executing node's own
                 cache: running one on nodes the guard excludes is safe
                 and flushes their stale read copies of the guarded data
                 (e.g. every reader of the tree node 0 is about to
                 rebuild) *)
              true
          | _, _, Loop_begin lsid, _ | _, _, _, Loop_end lsid ->
              List.for_all
                (fun g ->
                  match Hashtbl.find_opt ctx.guard_body g with
                  | Some body -> Iset.mem lsid body
                  | None -> false)
                guards
          | _ -> guards = []
        in
        let candidates =
          if proj = `Ci then
            (* A check-in belongs at the epoch boundary: placed inside a
               loop it would flush data the loop still uses; the exact
               per-pid table is the fallback when the boundary range
               over-covers. *)
            [ boundary ]
          else
            (* Per-access levels (nothing left to bind) are the
               near-access path's job and are only justified for races. *)
            boundary
            :: List.filter
                 (fun (to_bind, _, _, _) -> to_bind <> [])
                 (levels [] inner_chain)
        in
        let candidates = List.filter level_inside_guards candidates in
        (* Every subscript of the statement must find a level, so the
           whole annotation set is coverable; otherwise fall back to the
           dynamic path. *)
        let placements =
          List.map
            (fun sub ->
              List.find_opt
                (fun (to_bind, in_scope, _, _) ->
                  plan_level_ok ~to_bind ~in_scope sub)
                candidates
              |> Option.map (fun c -> (sub, c)))
            subs
        in
        if not (List.for_all Option.is_some placements) then false
        else begin
          (* Concrete per-node element interval of a placed range, when
             every free variable is pid/nprocs/consts (i.e. an
             epoch-boundary placement); [None] for loop-level ranges. *)
          let nodes = ctx.machine.Wwt.Machine.nodes in
          let interval_of lo hi node =
            let bindings =
              [ ("pid", Value.Vint node); ("nprocs", Value.Vint nodes) ]
            in
            match
              (eval_const ctx ~bindings lo, eval_const ctx ~bindings hi)
            with
            | Some (Value.Vint a), Some (Value.Vint b) -> Some (a, b)
            | _ -> None
          in
          let entry = Label.find_array ctx.layout arr in
          let adds_coverage lo hi =
            (* A range whose concrete footprint adds nothing new to the
               target set on any node is redundant (e.g. the four stencil
               neighbours of an already-covered centre). Symbolic ranges
               are kept conservatively. *)
            match entry with
            | None -> true
            | Some e ->
                let rec any node =
                  node < nodes
                  &&
                  match interval_of lo hi node with
                  | None -> true
                  | Some (a, b) ->
                      let fresh =
                        Iset.exists
                          (fun addr ->
                            let idx =
                              (addr - e.Label.base) / e.Label.elem_size
                            in
                            idx >= a && idx <= b
                            && not (Iset.mem addr covered.(node)))
                          target_per_node.(node)
                      in
                      fresh || any (node + 1)
                in
                any 0
          in
          let mark_covered lo hi =
            match entry with
            | None -> ()
            | Some e ->
                for node = 0 to nodes - 1 do
                  match interval_of lo hi node with
                  | None ->
                      (* Symbolic range: assume it covers the node's whole
                         target set for this pc. *)
                      covered.(node) <-
                        Iset.union covered.(node) target_per_node.(node)
                  | Some (a, b) ->
                      covered.(node) <-
                        Iset.union covered.(node)
                          (Iset.filter
                             (fun addr ->
                               let idx =
                                 (addr - e.Label.base) / e.Label.elem_size
                               in
                               idx >= a && idx <= b)
                             target_per_node.(node))
                done
          in
          List.iter
            (function
              | Some (sub, (to_bind, in_scope, co_a, ci_a)) -> (
                  match level_bounds ~to_bind ~in_scope sub with
                  | Some (lo, hi) when adds_coverage lo hi ->
                      ignore
                        (try_level ~to_bind ~in_scope ~co_anchor:co_a
                           ~ci_anchor:ci_a sub);
                      mark_covered lo hi
                  | Some _ | None -> ())
              | None -> ())
            placements;
          true
        end)

let plan_epoch ctx (se : sepoch) =
  let nodes = ctx.nodes in
  let merged =
    Array.init nodes (fun node ->
        List.fold_left
          (fun acc (t, d) -> Equations.union acc ctx.annots.(t).(d).(node))
          Equations.empty se.dyns)
  in
  let drfs_list =
    List.map (fun (t, d) -> ctx.einfos.(t).Epoch_info.drfs.(d)) se.dyns
  in
  let drfs_all =
    List.fold_left
      (fun acc d -> Iset.union acc (Drfs.drfs_set d))
      Iset.empty drfs_list
  in
  let race_all =
    List.fold_left (fun acc d -> Iset.union acc (Drfs.race d)) Iset.empty
      drfs_list
  in
  let misses_all =
    List.concat_map
      (fun (t, d) ->
        ctx.einfos.(t).Epoch_info.epochs.(d).Trace.Epoch.misses)
      se.dyns
  in
  let start_anchor =
    match fst se.key with Some pc -> After pc | None -> Proc_begin "main"
  in
  let end_anchor =
    match snd se.key with Some pc -> Before pc | None -> Proc_end "main"
  in
  let anchor_sids =
    List.filter_map (fun k -> k) [ fst se.key; snd se.key ]
  in
  let budget_left = ref (budget_bytes ctx) in
  List.iter
    (fun (entry : Label.entry) ->
      let arr = entry.Label.name in
      List.iter
        (fun proj ->
          let per_node_addrs =
            Array.map
              (fun a ->
                Presentation.addrs_in_array ~layout:ctx.layout ~arr
                  (proj_set a proj))
              merged
          in
          let union_addrs =
            Array.fold_left Iset.union Iset.empty per_node_addrs
          in
          if not (Iset.is_empty union_addrs) then begin
            (* Racy part: immediately around the references — but only at
               statements whose accesses are predominantly racy. A
               statement that touches mostly clean locations (e.g. a
               stencil whose block boundary is falsely shared) would pay
               per-access directives on every iteration, so its racy
               addresses are demoted to the boundary strategy instead. *)
            (* Only true data races get the immediately-around-the-
               reference treatment; addresses involved merely in false
               sharing keep the boundary strategy (per-access directives
               cannot fix block ping-pong — the report tells the
               programmer to pad instead). *)
            let racy = Iset.inter union_addrs race_all in
            let near_addrs =
              if Iset.is_empty racy then Iset.empty
              else begin
                let pcs =
                  pcs_for_addrs ~misses:misses_all ~addrs:racy
                    ~prefer_reads:(proj <> `Ci)
                in
                let in_this_array a = Iset.mem a union_addrs in
                let writes_array pc =
                  match Hashtbl.find_opt ctx.stmt_tbl pc with
                  | Some stmt ->
                      Presentation.array_write_subscripts stmt ~arr <> []
                  | None -> false
                in
                let dominant_pcs =
                  List.filter
                    (fun pc ->
                      ((proj <> `Ci) || writes_array pc)
                      &&
                      let tot = ref 0 and hot = ref 0 in
                      List.iter
                        (fun (m : Trace.Event.miss) ->
                          if m.Trace.Event.pc = pc
                             && in_this_array m.Trace.Event.addr
                          then begin
                            incr tot;
                            if Iset.mem m.Trace.Event.addr racy then incr hot
                          end)
                        misses_all;
                      !tot > 0 && 10 * !hot >= 7 * !tot)
                    pcs
                in
                if dominant_pcs = [] then Iset.empty
                else begin
                  let describe =
                    if not (Iset.is_empty (Iset.inter racy race_all)) then
                      "Data Race"
                    else "False Sharing"
                  in
                  place_near_access ctx ~proj ~arr ~pcs:dominant_pcs
                    ~note_of:(if proj = `Ci then None else Some describe);
                  List.fold_left
                    (fun acc (m : Trace.Event.miss) ->
                      let counts =
                        (proj <> `Ci)
                        || m.Trace.Event.kind <> Trace.Event.Read_miss
                      in
                      if counts
                         && List.mem m.Trace.Event.pc dominant_pcs
                         && Iset.mem m.Trace.Event.addr racy
                      then Iset.add m.Trace.Event.addr acc
                      else acc)
                    Iset.empty misses_all
                end
              end
            in
            (* Clean part (plus demoted racy addresses): boundary /
               loop-level cascade. *)
            let clean_per_node =
              Array.map (fun s -> Iset.diff s near_addrs) per_node_addrs
            in
            let clean_union =
              Array.fold_left Iset.union Iset.empty clean_per_node
            in
            if not (Iset.is_empty clean_union) then begin
              let pcs =
                pcs_for_addrs ~misses:misses_all ~addrs:clean_union
                  ~prefer_reads:(proj <> `Ci)
              in
              (* Section 4.2: when an epoch spans procedures, Programmer
                 CICO places the annotations at the boundaries of the
                 procedure that references the locations. *)
              let start_anchor, end_anchor =
                if ctx.options.mode <> Equations.Programmer then
                  (start_anchor, end_anchor)
                else
                  match
                    List.sort_uniq compare
                      (List.filter_map (Hashtbl.find_opt ctx.proc_tbl) pcs)
                  with
                  | [ proc ] when proc <> "main" ->
                      (Proc_begin proc, Proc_end proc)
                  | _ -> (start_anchor, end_anchor)
              in
              (* Try the static affine path per access site; sites that
                 fail feed the dynamic residue. *)
              let covered =
                Array.make (Array.length clean_per_node) Iset.empty
              in
              let residue_pcs =
                List.filter
                  (fun pc ->
                    not
                      (place_affine ctx ~proj ~arr ~pc ~start_anchor
                         ~end_anchor ~anchor_sids
                         ~target_per_node:clean_per_node ~covered
                         ~budget_left))
                  pcs
              in
              (* A table built from the union of the dynamic instances is
                 only meaningful for a node when its instances touch
                 roughly the same addresses; for non-stationary epochs
                 (LU's shrinking trailing matrix, FFT's stage-dependent
                 pairs) the union over-annotates every iteration, so that
                 node's rows are dropped. *)
              (* The table anchors at a barrier statement that may close
                 (or open) other dynamic epochs too — it will execute on
                 every one of them, so it is only valid when the
                 annotation sets of ALL the epochs sharing that anchor
                 mostly agree (FFT's stage barrier closes six epochs with
                 disjoint sets: drop; Ocean's sweep barrier closes
                 identical ones: keep). *)
              let anchored_dyns =
                let same_anchor (e : Trace.Epoch.t) =
                  if proj = `Ci then e.Trace.Epoch.end_pc = snd se.key
                  else e.Trace.Epoch.start_pc = fst se.key
                in
                let acc = ref [] in
                Array.iteri
                  (fun t einfo ->
                    Array.iteri
                      (fun d e -> if same_anchor e then acc := (t, d) :: !acc)
                      einfo.Epoch_info.epochs)
                  ctx.einfos;
                !acc
              in
              let stationary node =
                let sets =
                  List.filter_map
                    (fun (t, d) ->
                      let set =
                        Presentation.addrs_in_array ~layout:ctx.layout ~arr
                          (proj_set ctx.annots.(t).(d).(node) proj)
                      in
                      if Iset.is_empty set then None else Some set)
                    anchored_dyns
                in
                match sets with
                | [] | [ _ ] -> true
                | first :: rest ->
                    let inter = List.fold_left Iset.inter first rest in
                    let union = List.fold_left Iset.union first rest in
                    2 * Iset.cardinal inter >= Iset.cardinal union
              in
              if residue_pcs <> [] then begin
                let residue_addr_set =
                  (* addresses touched at the residue pcs *)
                  List.fold_left
                    (fun acc (m : Trace.Event.miss) ->
                      if List.mem m.Trace.Event.pc residue_pcs then
                        Iset.add m.Trace.Event.addr acc
                      else acc)
                    Iset.empty misses_all
                in
                let residue_per_node =
                  Array.map (fun s -> Iset.inter s residue_addr_set)
                    clean_per_node
                in
                let max_footprint =
                  Array.fold_left
                    (fun m s -> max m (Iset.cardinal s * entry.Label.elem_size))
                    0 residue_per_node
                in
                let elems_per_block =
                  ctx.machine.Wwt.Machine.block_size
                  / ctx.machine.Wwt.Machine.elem_size
                in
                let per_node node =
                  if not (stationary node) then []
                  else
                    Presentation.block_align_ranges ~elems_per_block
                      (Presentation.ranges_for_array ~layout:ctx.layout ~arr
                         residue_per_node.(node))
                in
                if proj = `Ci then
                  (* A check-in table pins no capacity. *)
                  add_table_edit ctx end_anchor Ast.Check_in arr per_node
                else if max_footprint <= !budget_left then begin
                  add_table_edit ctx start_anchor (kind_of_proj proj) arr
                    per_node;
                  budget_left := !budget_left - max_footprint
                end
                else if ctx.options.mode = Equations.Programmer then
                  (* Programmer CICO must expose the communication even
                     when the cache cannot hold it (Section 2.1's
                     "cache too small" case). *)
                  place_near_access ctx ~proj ~arr ~pcs:residue_pcs
                    ~note_of:None
                (* Performance mode: drop it — Dir1SW's implicit check-out
                   at the miss is equivalent and free. *)
              end
            end
          end)
        [ `Co_x; `Co_s; `Ci ];
      (* Prefetch insertion at the epoch boundary. *)
      if ctx.options.prefetch then begin
        let pf_sets node =
          let union_over f =
            List.fold_left
              (fun acc (t, d) ->
                let einfo = ctx.einfos.(t) in
                let cur = Epoch_info.sets_at einfo ~epoch:d ~node in
                let prev = Epoch_info.sets_at einfo ~epoch:(d - 1) ~node in
                Iset.union acc (f cur prev))
              Iset.empty se.dyns
          in
          let pf_x =
            union_over (fun cur prev ->
                Iset.diff
                  (Iset.diff cur.Epoch_info.sw cur.Epoch_info.wf)
                  prev.Epoch_info.sw)
          in
          let pf_s =
            union_over (fun cur prev ->
                Iset.diff cur.Epoch_info.sr prev.Epoch_info.sr)
          in
          let covered = merged.(node).Equations.co_x in
          ( Iset.diff (Iset.diff pf_x drfs_all) covered,
            Iset.diff (Iset.diff pf_s drfs_all) covered )
        in
        let cap_ranges ranges =
          (* prefetches are speculative: they may only fill capacity the
             placed check-outs left unused *)
          let budget = !budget_left / 2 in
          let rec loop used acc = function
            | [] ->
                budget_left := !budget_left - used;
                List.rev acc
            | (lo, hi) :: rest ->
                let bytes = (hi - lo + 1) * entry.Label.elem_size in
                if used + bytes > budget then begin
                  budget_left := !budget_left - used;
                  List.rev acc
                end
                else loop (used + bytes) ((lo, hi) :: acc) rest
          in
          loop 0 [] ranges
        in
        let elems_per_block =
          ctx.machine.Wwt.Machine.block_size / ctx.machine.Wwt.Machine.elem_size
        in
        let table_of pick node =
          let x, s = pf_sets node in
          let set = if pick = `X then x else s in
          cap_ranges
            (Presentation.block_align_ranges ~elems_per_block
               (Presentation.ranges_for_array ~layout:ctx.layout ~arr
                  (Presentation.addrs_in_array ~layout:ctx.layout ~arr set)))
        in
        add_table_edit ctx start_anchor Ast.Prefetch_x arr (table_of `X);
        add_table_edit ctx start_anchor Ast.Prefetch_s arr (table_of `S)
      end)
    (Label.entries ctx.layout)

let plan_traces ~program ~layout ~machine ~einfos ~options =
  if einfos = [] then invalid_arg "Placement.plan_traces: no traces";
  let einfos = Array.of_list einfos in
  let info_consts =
    match Sema.check program with
    | info -> info.Sema.consts
    | exception Sema.Error _ -> []
  in
  let stmt_tbl = Hashtbl.create 256 in
  Ast.iter_stmts (fun s -> Hashtbl.replace stmt_tbl s.Ast.sid s) program;
  let proc_tbl = Hashtbl.create 256 in
  List.iter
    (fun (p : Ast.proc) ->
      let probe = { Ast.decls = []; procs = [ p ] } in
      Ast.iter_stmts
        (fun s -> Hashtbl.replace proc_tbl s.Ast.sid p.Ast.pname)
        probe)
    program.Ast.procs;
  (* pid-dependent guards: an if whose condition mentions pid restricts
     its body to some nodes, so expression-range annotations must not be
     hoisted across it (they would make every node claim the owner's
     data). *)
  let pid_guards = Hashtbl.create 64 in
  let guard_body = Hashtbl.create 16 in
  let is_pid_cond cond = List.mem "pid" (Presentation.free_vars cond) in
  let rec scan_block active block = List.iter (scan_stmt active) block
  and scan_stmt active (st : Ast.stmt) =
    if active <> [] then begin
      Hashtbl.replace pid_guards st.Ast.sid active;
      List.iter
        (fun g ->
          let prev =
            Option.value ~default:Iset.empty (Hashtbl.find_opt guard_body g)
          in
          Hashtbl.replace guard_body g (Iset.add st.Ast.sid prev))
        active
    end;
    match st.Ast.node with
    | Ast.Sif (cond, b1, b2) ->
        let active' =
          if is_pid_cond cond then st.Ast.sid :: active else active
        in
        scan_block active' b1;
        scan_block active' b2
    | Ast.Sfor { body; _ } | Ast.Swhile (_, body) -> scan_block active body
    | Ast.Sassign _ | Ast.Sbarrier | Ast.Scall _ | Ast.Sreturn _ | Ast.Slock _
    | Ast.Sunlock _ | Ast.Sannot _ | Ast.Sannot_table _ | Ast.Sprint _ ->
        ()
  in
  List.iter (fun (p : Ast.proc) -> scan_block [] p.Ast.body) program.Ast.procs;
  let ctx =
    {
      program;
      layout;
      machine;
      einfos;
      annots = Array.map (Equations.all options.mode) einfos;
      nodes = einfos.(0).Epoch_info.nodes;
      options;
      loops = Loops.of_program program;
      consts = info_consts;
      stmt_tbl;
      proc_tbl;
      pid_guards;
      guard_body;
      edits = [];
      note_tbl = Hashtbl.create 32;
      seen = Hashtbl.create 256;
    }
  in
  List.iter (plan_epoch ctx) (static_epochs einfos);
  let notes =
    Hashtbl.fold
      (fun sid msgs acc -> (sid, String.concat "; " msgs) :: acc)
      ctx.note_tbl []
    |> List.sort compare
  in
  { edits = List.rev ctx.edits; notes }

let plan ~program ~layout ~machine ~einfo ~options =
  plan_traces ~program ~layout ~machine ~einfos:[ einfo ] ~options
