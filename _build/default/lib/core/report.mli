(** Race and false-sharing reporting (Sections 1, 4.3).

    Besides inserting annotations, Cachier flags potential data races (so
    the programmer can add locks) and false sharing (so the programmer can
    pad data structures). Each item names the array, the element ranges
    involved, the epochs in which the event occurred, and the statements
    (pcs) that touched the locations. *)

type kind = Data_race | False_sharing

type item = {
  kind : kind;
  arr : string;  (** labelled array; ["<unlabelled>"] if outside any *)
  ranges : (int * int) list;  (** element ranges within the array *)
  epochs : int list;  (** dynamic epoch indices *)
  pcs : int list;  (** statement ids of the involved accesses *)
}

type t = { items : item list }

val build : layout:Lang.Label.t -> Epoch_info.t -> t

val is_empty : t -> bool
val races : t -> item list
val false_sharing : t -> item list

val pp : Format.formatter -> t -> unit
val to_string : t -> string
