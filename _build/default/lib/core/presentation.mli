(** Presenting annotations in a readable form (Section 4.3).

    This module turns raw trace addresses into program-level ranges:
    coalescing address sets into maximal element ranges per labelled
    array, recognising affine subscripts so annotations can be written as
    expressions over live loop variables (the paper's
    [check_out_X U\[Lip:Uip, j\]]), and extracting the subscript
    expressions of a statement for near-access placement. *)

module Iset = Trace.Epoch.Iset

val coalesce : int list -> (int * int) list
(** Maximal runs of consecutive integers, sorted; duplicates collapse. *)

val coalesce_set : Iset.t -> (int * int) list

val block_align_ranges :
  elems_per_block:int -> (int * int) list -> (int * int) list
(** Round every element range out to cache-block boundaries and merge the
    results. A cache block is the minimum check-out granularity
    (Section 5), so this loses nothing and collapses fragmented dynamic
    range sets into a few directives per block run. *)

val ranges_for_array :
  layout:Lang.Label.t -> arr:string -> Iset.t -> (int * int) list
(** Element ranges of [arr] covered by the byte-address set (addresses
    outside [arr] are ignored). *)

val addrs_in_array : layout:Lang.Label.t -> arr:string -> Iset.t -> Iset.t

(** {2 Affine subscript analysis} *)

type atom = {
  key : string;  (** structural key (pretty-printed form) *)
  aexpr : Lang.Ast.expr;
}
(** A term of an affine decomposition: a plain variable, or an opaque
    non-affine subexpression (e.g. [pid % PC]) treated as a unit so that
    identical occurrences cancel when expressions are subtracted. *)

type affine = {
  terms : (atom * int) list;  (** atom coefficients, distinct keys *)
  const : int;
}

val linearize :
  const_env:(string -> Lang.Value.t option) -> Lang.Ast.expr -> affine option
(** Decompose an expression as [Σ cₐ·a + c] with integer coefficients over
    atoms. Names bound in [const_env] fold into the constant; other names
    (loop variables, [pid]) become atoms, as do whole non-affine
    subexpressions such as products of variables, [/], [%] and calls.
    Returns [None] only for expressions that cannot even be atomised
    (float literals in integer position). *)

val coeff_of_var : affine -> string -> int
(** Coefficient of the plain-variable atom named [v] (0 when absent). *)

val affine_to_expr : affine -> Lang.Ast.expr

val subst_var : string -> Lang.Ast.expr -> Lang.Ast.expr -> Lang.Ast.expr
(** [subst_var v replacement e] substitutes every [Evar v] in [e]. *)

val free_vars : Lang.Ast.expr -> string list
(** Variable names occurring in the expression (sorted, distinct). *)

val array_subscripts : Lang.Ast.stmt -> arr:string -> Lang.Ast.expr list
(** Distinct subscript expressions with which the statement itself (not
    its nested blocks) indexes [arr]. *)

val array_write_subscripts : Lang.Ast.stmt -> arr:string -> Lang.Ast.expr list
(** Subscripts with which the statement {e stores} to [arr] (the
    assignment target only) — a near-access check-in belongs after the
    write that finishes with the location, not after every read. *)

val table_stmt :
  Lang.Ast.annot_kind -> arr:string -> nodes:int ->
  per_node_ranges:(int -> (int * int) list) -> Lang.Ast.stmt option
(** Build a per-pid table annotation ([sid = -1]); [None] when every node's
    range list is empty. *)
