(** Explain where each annotation came from.

    For every epoch and node, the Section 4.1 equations are re-derived
    term by term so a user can see {e why} Cachier checked something out
    or in: a fresh write, a read-before-write fault, a hand-off to next
    epoch's writer, or race/false-sharing churn. The unions of the terms
    are asserted (in the tests) to equal {!Equations.for_epoch}'s sets. *)

type term = {
  label : string;  (** e.g. "co_x: read-before-write faults" *)
  per_array : (string * int) list;
      (** labelled array -> number of addresses the term contributes,
          only non-zero entries, sorted by count descending *)
}

type node_explanation = {
  node : int;
  terms : term list;  (** only terms contributing at least one address *)
}

type epoch_explanation = {
  eindex : int;
  racy_arrays : string list;  (** arrays with a data race this epoch *)
  false_shared_arrays : string list;
  nodes : node_explanation list;  (** only nodes with contributions *)
}

type t = {
  mode : Equations.mode;
  epochs : epoch_explanation list;
}

val build : mode:Equations.mode -> layout:Lang.Label.t -> Epoch_info.t -> t

val pp : Format.formatter -> t -> unit
val to_string : t -> string

val term_sets :
  Equations.mode -> Epoch_info.t -> epoch:int -> node:int ->
  (string * Trace.Epoch.Iset.t) list
(** The raw labelled term sets (exposed so tests can check that their
    union per annotation kind equals the equation output). Labels are
    prefixed ["co_x:"], ["co_s:"] or ["ci:"]. *)
