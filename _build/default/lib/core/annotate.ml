type result = {
  annotated : Lang.Ast.program;
  report : Report.t;
  notes : (int * string) list;
  einfo : Epoch_info.t;
  n_edits : int;
}

let annotate_with_traces ~machine ~options program traces =
  if traces = [] then invalid_arg "Annotate.annotate_with_traces: no traces";
  let program = Lang.Ast.strip_annotations program in
  let info = Lang.Sema.check program in
  let layout =
    Lang.Label.layout ~block_size:machine.Wwt.Machine.block_size
      ~elem_size:machine.Wwt.Machine.elem_size info
  in
  let einfos =
    List.map
      (Epoch_info.build ~nodes:machine.Wwt.Machine.nodes
         ~block_size:machine.Wwt.Machine.block_size)
      traces
  in
  let plan = Placement.plan_traces ~program ~layout ~machine ~einfos ~options in
  let annotated =
    Placement.assign_fresh_sids
      (Placement.apply_edits program plan.Placement.edits)
  in
  let einfo = List.hd einfos in
  {
    annotated;
    report = Report.build ~layout einfo;
    notes = plan.Placement.notes;
    einfo;
    n_edits = List.length plan.Placement.edits;
  }

let annotate_with_trace ~machine ~options program records =
  annotate_with_traces ~machine ~options program [ records ]

let annotate_program ~machine ~options program =
  let outcome = Wwt.Run.collect_trace ~machine program in
  annotate_with_trace ~machine ~options program outcome.Wwt.Interp.trace

let annotate_training ~machine ~options ~seed_const ~seeds program =
  if seeds = [] then invalid_arg "Annotate.annotate_training: no seeds";
  let traces =
    List.map
      (fun seed ->
        let variant = Lang.Ast_util.set_const program seed_const seed in
        (Wwt.Run.collect_trace ~machine variant).Wwt.Interp.trace)
      seeds
  in
  annotate_with_traces ~machine ~options program traces

let annotate_source ~machine ~options src =
  annotate_program ~machine ~options (Lang.Parser.parse src)

let to_source r =
  let note sid = List.assoc_opt sid r.notes in
  Lang.Pretty.program_to_string ~note r.annotated
