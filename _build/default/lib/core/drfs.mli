(** Data-race and false-sharing detection for one epoch (Section 4).

    A {e potential data race} exists when two or more processors access the
    same address within the same epoch and at least one access is a write
    (the trace keeps no ordering within an epoch, so any such pair is a
    potential race). {e False sharing} is two or more processors accessing
    different addresses in the same cache block within the epoch.

    [DRFS] is the union predicate used by the annotation equations; the
    [filter_*] functions are the paper's DRFS/FS set functions and their
    complements. *)

module Iset = Trace.Epoch.Iset

type t

val analyze : ?lock_aware:bool -> block_size:int -> Trace.Epoch.t -> t
(** [lock_aware] (default [true]) suppresses race reports for access pairs
    protected by a common lock (a lockset refinement the paper's
    lock-ignoring model does not have; the Section 5 restructured merge is
    the motivating case). False sharing is unaffected — locks do not stop
    block ping-pong. *)

val race : t -> Iset.t
(** Addresses involved in a potential data race. *)

val false_shared : t -> Iset.t
(** Addresses involved in false sharing. *)

val drfs_set : t -> Iset.t
(** [race ∪ false_shared]. *)

val in_drfs : t -> int -> bool
val in_race : t -> int -> bool
val in_false_sharing : t -> int -> bool

val filter_drfs : t -> Iset.t -> Iset.t
(** DRFS{set}: members involved in a race or false sharing. *)

val filter_not_drfs : t -> Iset.t -> Iset.t
val filter_fs : t -> Iset.t -> Iset.t
val filter_not_fs : t -> Iset.t -> Iset.t
