type miss_kind = Read_miss | Write_miss | Write_fault

type miss = { node : int; pc : int; addr : int; kind : miss_kind; held : int list }
type barrier = { bnode : int; bpc : int; vt : int }

type record =
  | Miss of miss
  | Barrier of barrier
  | Label of { name : string; lo : int; hi : int }

let miss_kind_of_protocol = function
  | Memsys.Protocol.Read_miss -> Read_miss
  | Memsys.Protocol.Write_miss -> Write_miss
  | Memsys.Protocol.Write_fault -> Write_fault

let pp_miss_kind ppf k =
  Format.pp_print_string ppf
    (match k with
    | Read_miss -> "R"
    | Write_miss -> "W"
    | Write_fault -> "F")

let pp ppf = function
  | Miss m -> (
      Format.fprintf ppf "M %d %d %d %a" m.node m.pc m.addr pp_miss_kind m.kind;
      match m.held with
      | [] -> ()
      | locks ->
          Format.fprintf ppf " L%s"
            (String.concat "," (List.map string_of_int locks)))
  | Barrier b -> Format.fprintf ppf "B %d %d %d" b.bnode b.bpc b.vt
  | Label l -> Format.fprintf ppf "L %s %d %d" l.name l.lo l.hi

let equal a b = a = b
