(** Epoch segmentation of a trace (program model of Figure 2).

    Epochs are the code segments between barrier synchronisations. The
    trace writer emits every node's barrier record when an epoch closes, so
    an epoch boundary in the record stream is a maximal run of [Barrier]
    records covering all nodes. The final epoch may be closed by the end of
    the trace instead of a barrier. *)

module Iset : Set.S with type elt = int
(** Sets of addresses (or of any ints). *)

type node_misses = {
  reads : Iset.t;  (** addresses with shared-read misses *)
  writes : Iset.t;  (** addresses with shared-write misses *)
  faults : Iset.t;  (** addresses with shared-write faults *)
}

val empty_misses : node_misses

type t = {
  index : int;  (** position in the trace, from 0 *)
  start_pc : int option;
      (** pc of the barrier that opened the epoch; [None] at program start *)
  end_pc : int option;
      (** pc of the barrier that closed it; [None] at program end *)
  misses : Event.miss list;  (** raw records, unordered within the epoch *)
  per_node : node_misses array;  (** indexed by node *)
}

val static_key : t -> int option * int option
(** [(start_pc, end_pc)] — two dynamic epochs with the same key execute the
    same static program region. *)

val split : nodes:int -> Event.record list -> t list * (string * int * int) list
(** [split ~nodes records] is the list of epochs plus the labelled shared
    regions found in the trace. @raise Failure on inconsistent barriers. *)

val touched_nodes : t -> addr:int -> (int * bool) list
(** Nodes that missed on [addr] in this epoch, paired with [true] when the
    access was a write (miss or fault). *)

val pcs_for_addr : t -> node:int -> addr:int -> int list
(** Distinct pcs at which [node] missed on [addr] in this epoch. *)
