(** Trace records, following the format of Figure 3 of the paper.

    A trace is a sequence of per-epoch groups. Within an epoch there is no
    ordering of miss records; epochs are ordered by the barrier virtual
    times (VTs) that close them. Label records carry the shared-region
    labelling the programmer supplies (Section 4.3) so the analysis can map
    raw addresses back to program data structures. *)

type miss_kind = Read_miss | Write_miss | Write_fault

type miss = {
  node : int;  (** node that took the miss *)
  pc : int;  (** program counter (statement id) of the access *)
  addr : int;  (** byte address accessed *)
  kind : miss_kind;
  held : int list;
      (** lock ids the node held at the access. The paper ignores locks
          (Section 3.1); recording them lets the race detector skip
          access pairs protected by a common lock. *)
}

type barrier = {
  bnode : int;  (** node arriving at the barrier *)
  bpc : int;  (** program counter of the barrier *)
  vt : int;  (** barrier virtual time *)
}

type record =
  | Miss of miss
  | Barrier of barrier
  | Label of { name : string; lo : int; hi : int }
      (** a labelled shared region: byte range [\[lo, hi\]] *)

val miss_kind_of_protocol : Memsys.Protocol.miss_kind -> miss_kind

val pp_miss_kind : Format.formatter -> miss_kind -> unit
val pp : Format.formatter -> record -> unit

val equal : record -> record -> bool
