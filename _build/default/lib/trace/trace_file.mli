(** Serialisation of traces to a line-oriented text format.

    One record per line:
    - ["M node pc addr kind"] — a miss ([kind] is [R], [W] or [F]);
    - ["B node pc vt"] — a barrier arrival;
    - ["L name lo hi"] — a labelled shared region;
    - lines beginning with [#] are comments and are ignored. *)

val to_buffer : Buffer.t -> Event.record list -> unit
val to_string : Event.record list -> string

val save : string -> Event.record list -> unit
(** [save path records] writes the trace to [path]. *)

val of_string : string -> Event.record list
(** Parse a trace. @raise Failure on a malformed line, with its number. *)

val load : string -> Event.record list
(** [load path] parses the trace stored at [path]. *)
