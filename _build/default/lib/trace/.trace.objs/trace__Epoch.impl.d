lib/trace/epoch.ml: Array Event Int List Printf Set
