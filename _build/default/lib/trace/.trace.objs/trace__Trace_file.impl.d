lib/trace/trace_file.ml: Buffer Event Format Fun List Printf String
