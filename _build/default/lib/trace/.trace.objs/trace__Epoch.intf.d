lib/trace/epoch.mli: Event Set
