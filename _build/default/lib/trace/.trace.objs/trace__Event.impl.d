lib/trace/event.ml: Format List Memsys String
