lib/trace/event.mli: Format Memsys
