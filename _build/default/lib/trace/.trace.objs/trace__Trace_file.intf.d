lib/trace/trace_file.mli: Buffer Event
