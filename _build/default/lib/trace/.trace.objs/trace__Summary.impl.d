lib/trace/summary.ml: Array Epoch Event Format Fun Hashtbl List String
