lib/trace/summary.mli: Event Format
