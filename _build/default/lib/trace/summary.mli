(** Trace analysis: the kind of profile the paper's hand-annotators worked
    from ("the hand CICO was carefully done ... with the aid of existing
    profiling tools").

    Summaries are computed per labelled region and per epoch: miss counts
    by kind, the set of nodes touching each region, and a node-to-node
    sharing matrix (how many addresses written by one node are touched by
    another in the next epoch — the communication the CICO annotations
    target). *)

type region_stats = {
  rname : string;
  read_misses : int;
  write_misses : int;
  write_faults : int;
  touching_nodes : int;  (** bitmask *)
  distinct_addrs : int;
}

type epoch_summary = {
  eindex : int;
  start_pc : int option;
  end_pc : int option;
  total_misses : int;
  regions : region_stats list;  (** only regions with misses, sorted by
                                    total misses, descending *)
}

type t = {
  nodes : int;
  epochs : epoch_summary list;
  totals : region_stats list;  (** whole-trace per-region totals *)
  handoffs : int array array;
      (** [handoffs.(from).(to_)] counts addresses written by [from] in
          one epoch and touched by [to_] in the next — the producer to
          consumer traffic check-in/check-out optimise *)
}

val analyze :
  nodes:int -> labels:(string * int * int) list -> Event.record list -> t
(** [labels] maps region names to byte ranges (as produced by
    {!Lang.Label.to_label_records} or read from the trace itself); any
    [Label] records present in the trace are used as well. *)

val pp : Format.formatter -> t -> unit
(** Multi-section human-readable report. *)

val to_string : t -> string

val hottest_region : t -> string option
(** Name of the region with the most misses overall. *)
