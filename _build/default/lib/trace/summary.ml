type region_stats = {
  rname : string;
  read_misses : int;
  write_misses : int;
  write_faults : int;
  touching_nodes : int;
  distinct_addrs : int;
}

type epoch_summary = {
  eindex : int;
  start_pc : int option;
  end_pc : int option;
  total_misses : int;
  regions : region_stats list;
}

type t = {
  nodes : int;
  epochs : epoch_summary list;
  totals : region_stats list;
  handoffs : int array array;
}

type acc = {
  mutable reads : int;
  mutable writes : int;
  mutable faults : int;
  mutable nodes_mask : int;
  addrs : (int, unit) Hashtbl.t;
}

let fresh_acc () =
  { reads = 0; writes = 0; faults = 0; nodes_mask = 0; addrs = Hashtbl.create 64 }

let stats_of_acc rname a =
  {
    rname;
    read_misses = a.reads;
    write_misses = a.writes;
    write_faults = a.faults;
    touching_nodes = a.nodes_mask;
    distinct_addrs = Hashtbl.length a.addrs;
  }

let total_of r = r.read_misses + r.write_misses + r.write_faults

let analyze ~nodes ~labels records =
  let epochs, trace_labels = Epoch.split ~nodes records in
  let all_labels =
    labels
    @ List.filter
        (fun (name, _, _) -> not (List.mem_assoc name (List.map (fun (n, l, h) -> (n, (l, h))) labels)))
        trace_labels
  in
  let region_of addr =
    match
      List.find_opt (fun (_, lo, hi) -> addr >= lo && addr <= hi) all_labels
    with
    | Some (name, _, _) -> name
    | None -> "<unlabelled>"
  in
  let tally misses =
    let table : (string, acc) Hashtbl.t = Hashtbl.create 8 in
    List.iter
      (fun (m : Event.miss) ->
        let name = region_of m.Event.addr in
        let a =
          match Hashtbl.find_opt table name with
          | Some a -> a
          | None ->
              let a = fresh_acc () in
              Hashtbl.add table name a;
              a
        in
        (match m.Event.kind with
        | Event.Read_miss -> a.reads <- a.reads + 1
        | Event.Write_miss -> a.writes <- a.writes + 1
        | Event.Write_fault -> a.faults <- a.faults + 1);
        a.nodes_mask <- a.nodes_mask lor (1 lsl m.Event.node);
        Hashtbl.replace a.addrs m.Event.addr ())
      misses;
    Hashtbl.fold (fun name a l -> stats_of_acc name a :: l) table []
    |> List.sort (fun a b -> compare (total_of b) (total_of a))
  in
  let epoch_summaries =
    List.map
      (fun (e : Epoch.t) ->
        let regions = tally e.Epoch.misses in
        {
          eindex = e.Epoch.index;
          start_pc = e.Epoch.start_pc;
          end_pc = e.Epoch.end_pc;
          total_misses = List.length e.Epoch.misses;
          regions;
        })
      epochs
  in
  let totals =
    tally (List.concat_map (fun (e : Epoch.t) -> e.Epoch.misses) epochs)
  in
  (* producer-to-consumer handoffs between consecutive epochs *)
  let handoffs = Array.make_matrix nodes nodes 0 in
  let rec scan = function
    | (e1 : Epoch.t) :: (e2 :: _ as rest) ->
        for producer = 0 to nodes - 1 do
          let written =
            Epoch.Iset.union e1.Epoch.per_node.(producer).Epoch.writes
              e1.Epoch.per_node.(producer).Epoch.faults
          in
          for consumer = 0 to nodes - 1 do
            if consumer <> producer then begin
              let touched =
                let nm = e2.Epoch.per_node.(consumer) in
                Epoch.Iset.union nm.Epoch.reads
                  (Epoch.Iset.union nm.Epoch.writes nm.Epoch.faults)
              in
              handoffs.(producer).(consumer) <-
                handoffs.(producer).(consumer)
                + Epoch.Iset.cardinal (Epoch.Iset.inter written touched)
            end
          done
        done;
        scan rest
    | [ _ ] | [] -> ()
  in
  scan epochs;
  { nodes; epochs = epoch_summaries; totals; handoffs }

let hottest_region t =
  match t.totals with [] -> None | r :: _ -> Some r.rname

let pp_region ppf r =
  Format.fprintf ppf "%-12s %6dR %6dW %6dF  %3d addrs  nodes %s" r.rname
    r.read_misses r.write_misses r.write_faults r.distinct_addrs
    (String.concat ","
       (List.filter_map
          (fun i ->
            if r.touching_nodes land (1 lsl i) <> 0 then Some (string_of_int i)
            else None)
          (List.init 62 Fun.id)))

let pp ppf t =
  let f fmt = Format.fprintf ppf fmt in
  f "@[<v>== per-region totals ==@,";
  List.iter (fun r -> f "%a@," pp_region r) t.totals;
  f "@,== per-epoch profile ==@,";
  List.iter
    (fun e ->
      f "epoch %d (pc %s -> %s): %d misses@," e.eindex
        (match e.start_pc with None -> "start" | Some p -> string_of_int p)
        (match e.end_pc with None -> "end" | Some p -> string_of_int p)
        e.total_misses;
      List.iter (fun r -> f "  %a@," pp_region r) e.regions)
    t.epochs;
  f "@,== producer -> consumer handoffs (addresses) ==@,";
  for p = 0 to t.nodes - 1 do
    for c = 0 to t.nodes - 1 do
      if t.handoffs.(p).(c) > 0 then
        f "node %d -> node %d: %d@," p c t.handoffs.(p).(c)
    done
  done;
  f "@]"

let to_string t = Format.asprintf "%a" pp t
