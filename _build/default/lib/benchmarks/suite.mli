(** The Section 6 benchmark suite. *)

type t = {
  name : string;
  source : string;  (** unannotated, built with [trace_seed] *)
  hand_source : string;  (** hand-annotated (same seed baked in) *)
  trace_seed : int;  (** input data set used to generate the trace *)
  eval_seed : int;  (** different input data set used for measurement
                        (Section 6: "The input data sets used to obtain
                        the execution trace for Cachier were different
                        than the data sets used in the performance
                        comparison.") *)
}

val reseed : Lang.Ast.program -> int -> Lang.Ast.program
(** Swap the program's [SEED] constant (new input data set). *)

val names : string list
(** ["matmul"; "barnes"; "tomcatv"; "ocean"; "mp3d"] — Figure 6 order. *)

val all : ?scale:float -> nodes:int -> unit -> t list
(** The five benchmarks at their default scaled sizes. [scale] multiplies
    the problem sizes (1.0 default; use with care, cost grows fast). *)

val find : ?scale:float -> nodes:int -> string -> t
(** @raise Not_found for an unknown name. *)
