(** Barnes: gravitational N-body simulation with the Barnes-Hut
    algorithm (2-D, array-encoded quadtree).

    Each time step: node 0 rebuilds the quadtree (sequential epoch —
    pointer-based structure, input-dependent addresses), every node then
    computes forces for its slice of bodies by traversing the tree with an
    explicit stack (read-shared pointer chasing that defeats static
    analysis — the case Cachier's dynamic information is for), and finally
    owners integrate their bodies' positions. Sharing is low (the paper
    reports 25.5 % shared loads, 1.3 % shared stores), so the win is
    smaller than Ocean/Mp3d.

    Tree encoding: child slots hold 0 (empty), a positive internal-node
    id, or [-(body+1)]. *)

val source :
  ?bodies:int -> ?t:int -> ?seed:int -> nodes:int -> unit -> string
(** Default [bodies = 128], [t = 2], [seed = 1]. *)

val hand_source :
  ?bodies:int -> ?t:int -> ?seed:int -> nodes:int -> unit -> string
(** Hand version that misses a few annotations: the tree arrays are never
    checked in after the build and the acceleration arrays are never
    checked out exclusive (the paper: "the hand-annotated version missed a
    few annotations"). *)

val default_bodies : int
val default_t : int
