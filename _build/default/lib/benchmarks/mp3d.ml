let default_particles = 1024
let default_cells = 64
let default_t = 3

let header ~particles ~cells ~t ~seed ~nodes =
  if particles mod nodes <> 0 then
    invalid_arg "mp3d: particle count must be a multiple of the node count";
  Printf.sprintf
    {|const NP = %d;
const NC = %d;
const T = %d;
const SEED = %d;
const NPROCS = %d;
const PP = NP / NPROCS;
shared PX[NP];
shared VX[NP];
shared CELL[NC];
|}
    particles cells t seed nodes

let init_body =
  {|  if (pid == 0) {
    for q = 0 to NP - 1 {
      PX[q] = noise(q + SEED * 1000003) * NC;
      VX[q] = noise(q + 777777 + SEED * 1000003) * 2.0 - 1.0;
    }
    for c = 0 to NC - 1 {
      CELL[c] = 0.0;
    }
  }
  barrier;
|}

(* Move phase: advance owned particles and scatter counts into the shared
   cell array (data race, dynamic addresses). Collide phase: scale each
   owned particle's velocity by its cell's density (scattered shared
   reads). Reset phase: cell owners zero their slice. *)
let step_body =
  {|  for ts = 1 to T {
    for q = pid * PP to pid * PP + PP - 1 {
      x = PX[q] + VX[q];
      if (x < 0.0) {
        x = x + NC;
      }
      if (x >= NC) {
        x = x - NC;
      }
      PX[q] = x;
      c = int(x);
      CELL[c] = CELL[c] + 1.0;
    }
    barrier;
    for q = pid * PP to pid * PP + PP - 1 {
      c = int(PX[q]);
      d = CELL[c];
      if (d > NP / NC) {
        VX[q] = VX[q] * 0.95;
      } else {
        VX[q] = VX[q] * 1.05;
      }
    }
    barrier;
    for c = pid * (NC / NPROCS) to pid * (NC / NPROCS) + NC / NPROCS - 1 {
      CELL[c] = 0.0;
    }
    barrier;
  }
|}

let source ?(particles = default_particles) ?(cells = default_cells)
    ?(t = default_t) ?(seed = 1) ~nodes () =
  header ~particles ~cells ~t ~seed ~nodes
  ^ "\nproc main() {\n" ^ init_body ^ step_body ^ "}\n"

(* The flawed hand annotation: PX/VX checked in immediately after each
   write even though the same cache block holds the next owned particles
   (checked in too early), and CELL never checked in (neglected), so the
   reset phase pays invalidations for every sharer. *)
let hand_step_body =
  {|  for ts = 1 to T {
    for q = pid * PP to pid * PP + PP - 1 {
      x = PX[q] + VX[q];
      if (x < 0.0) {
        x = x + NC;
      }
      if (x >= NC) {
        x = x - NC;
      }
      PX[q] = x;
      check_in PX[q];
      c = int(x);
      check_out_x CELL[c];
      CELL[c] = CELL[c] + 1.0;
    }
    barrier;
    for q = pid * PP to pid * PP + PP - 1 {
      c = int(PX[q]);
      d = CELL[c];
      if (d > NP / NC) {
        VX[q] = VX[q] * 0.95;
      } else {
        VX[q] = VX[q] * 1.05;
      }
      check_in VX[q];
      check_in PX[q];
    }
    barrier;
    for c = pid * (NC / NPROCS) to pid * (NC / NPROCS) + NC / NPROCS - 1 {
      CELL[c] = 0.0;
    }
    barrier;
  }
|}

let hand_source ?(particles = default_particles) ?(cells = default_cells)
    ?(t = default_t) ?(seed = 1) ~nodes () =
  header ~particles ~cells ~t ~seed ~nodes
  ^ "\nproc main() {\n" ^ init_body ^ hand_step_body ^ "}\n"
