lib/benchmarks/tomcatv.mli:
