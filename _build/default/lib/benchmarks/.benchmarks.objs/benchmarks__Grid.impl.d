lib/benchmarks/grid.ml: Printf
