lib/benchmarks/mp3d.mli:
