lib/benchmarks/matmul.mli:
