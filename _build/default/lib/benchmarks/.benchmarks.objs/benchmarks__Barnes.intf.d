lib/benchmarks/barnes.mli:
