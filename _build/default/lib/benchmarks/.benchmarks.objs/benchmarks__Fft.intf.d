lib/benchmarks/fft.mli:
