lib/benchmarks/fft.ml: Printf
