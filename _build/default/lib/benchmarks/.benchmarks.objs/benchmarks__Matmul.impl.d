lib/benchmarks/matmul.ml: Grid Printf
