lib/benchmarks/ocean.ml: Printf
