lib/benchmarks/grid.mli:
