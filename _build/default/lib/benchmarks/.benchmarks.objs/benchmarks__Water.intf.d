lib/benchmarks/water.mli:
