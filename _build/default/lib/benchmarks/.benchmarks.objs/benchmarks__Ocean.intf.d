lib/benchmarks/ocean.mli:
