lib/benchmarks/barnes.ml: Printf
