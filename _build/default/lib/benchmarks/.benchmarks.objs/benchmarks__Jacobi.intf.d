lib/benchmarks/jacobi.mli:
