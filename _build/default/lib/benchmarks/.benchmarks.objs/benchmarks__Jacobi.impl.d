lib/benchmarks/jacobi.ml: Grid Printf
