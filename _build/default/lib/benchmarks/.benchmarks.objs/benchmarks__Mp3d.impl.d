lib/benchmarks/mp3d.ml: Printf
