lib/benchmarks/water.ml: Printf
