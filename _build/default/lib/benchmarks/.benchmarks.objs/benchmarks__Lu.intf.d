lib/benchmarks/lu.mli:
