lib/benchmarks/tomcatv.ml: Printf
