lib/benchmarks/suite.mli: Lang
