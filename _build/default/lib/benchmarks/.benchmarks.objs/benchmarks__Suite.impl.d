lib/benchmarks/suite.ml: Barnes Grid Lang List Matmul Mp3d Ocean Tomcatv
