lib/benchmarks/lu.ml: Printf
