type t = {
  name : string;
  source : string;
  hand_source : string;
  trace_seed : int;
  eval_seed : int;
}

let reseed program seed = Lang.Ast_util.set_const program "SEED" seed

let names = [ "matmul"; "barnes"; "tomcatv"; "ocean"; "mp3d" ]

let scaled scale base = max 1 (int_of_float (float_of_int base *. scale))

(* Problem sizes must respect each benchmark's divisibility constraints;
   round to the nearest valid size. *)
let round_to multiple v = max multiple (v / multiple * multiple)

let all ?(scale = 1.0) ~nodes () =
  let pr, pc = Grid.factor nodes in
  let lcm_grid = pr * pc / (let rec gcd a b = if b = 0 then a else gcd b (a mod b) in gcd pr pc) in
  let n_mm = round_to lcm_grid (scaled scale Matmul.default_n) in
  let n_jac = round_to lcm_grid (scaled scale Ocean.default_n) in
  ignore n_jac;
  let n_oc = round_to nodes (scaled scale Ocean.default_n) in
  let n_tc = scaled scale Tomcatv.default_n in
  let np = round_to nodes (scaled scale Mp3d.default_particles) in
  let nb = round_to nodes (scaled scale Barnes.default_bodies) in
  let trace_seed = 1 and eval_seed = 2 in
  [
    {
      name = "matmul";
      source = Matmul.source ~n:n_mm ~seed:trace_seed ~nodes ();
      hand_source = Matmul.hand_source ~n:n_mm ~seed:trace_seed ~nodes ();
      trace_seed;
      eval_seed;
    };
    {
      name = "barnes";
      source = Barnes.source ~bodies:nb ~seed:trace_seed ~nodes ();
      hand_source = Barnes.hand_source ~bodies:nb ~seed:trace_seed ~nodes ();
      trace_seed;
      eval_seed;
    };
    {
      name = "tomcatv";
      source = Tomcatv.source ~n:n_tc ~seed:trace_seed ~nodes ();
      hand_source = Tomcatv.hand_source ~n:n_tc ~seed:trace_seed ~nodes ();
      trace_seed;
      eval_seed;
    };
    {
      name = "ocean";
      source = Ocean.source ~n:n_oc ~seed:trace_seed ~nodes ();
      hand_source = Ocean.hand_source ~n:n_oc ~seed:trace_seed ~nodes ();
      trace_seed;
      eval_seed;
    };
    {
      name = "mp3d";
      source = Mp3d.source ~particles:np ~seed:trace_seed ~nodes ();
      hand_source = Mp3d.hand_source ~particles:np ~seed:trace_seed ~nodes ();
      trace_seed;
      eval_seed;
    };
  ]

let find ?(scale = 1.0) ~nodes name =
  match List.find_opt (fun b -> b.name = name) (all ~scale ~nodes ()) with
  | Some b -> b
  | None -> raise Not_found
