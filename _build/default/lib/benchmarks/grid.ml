let factor nprocs =
  if nprocs <= 0 then invalid_arg "Grid.factor: nprocs must be positive";
  let rec best d acc =
    if d * d > nprocs then acc
    else if nprocs mod d = 0 then best (d + 1) d
    else best (d + 1) acc
  in
  let pr = best 1 1 in
  (pr, nprocs / pr)

let check_divisible ~n ~nodes bench =
  let pr, pc = factor nodes in
  if n mod pr <> 0 || n mod pc <> 0 then
    invalid_arg
      (Printf.sprintf "%s: N=%d must divide over the %dx%d processor grid"
         bench n pr pc)
