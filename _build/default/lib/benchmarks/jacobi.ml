let default_n = 32
let default_t = 4

let header ~n ~t ~seed ~nodes =
  let pr, pc = Grid.factor nodes in
  Grid.check_divisible ~n ~nodes "jacobi";
  Printf.sprintf
    {|const N = %d;
const T = %d;
const SEED = %d;
const PR = %d;
const PC = %d;
const IB = N / PR;
const JB = N / PC;
shared U[N*N];
shared V[N*N];
|}
    n t seed pr pc

let init_body =
  {|  if (pid == 0) {
    for q = 0 to N*N - 1 {
      U[q] = noise(q + SEED * 1000003);
      V[q] = 0.0;
    }
  }
  barrier;
|}

let step_body =
  {|  for ts = 1 to T {
    for i = (pid / PC) * IB to (pid / PC) * IB + IB - 1 {
      for j = (pid % PC) * JB to (pid % PC) * JB + JB - 1 {
        if (i > 0 && i < N - 1 && j > 0 && j < N - 1) {
          V[i*N + j] = 0.25 * (U[(i-1)*N + j] + U[(i+1)*N + j] + U[i*N + j - 1] + U[i*N + j + 1]);
        }
      }
    }
    barrier;
    for i = (pid / PC) * IB to (pid / PC) * IB + IB - 1 {
      for j = (pid % PC) * JB to (pid % PC) * JB + JB - 1 {
        U[i*N + j] = V[i*N + j];
      }
    }
    barrier;
  }
|}

let source ?(n = default_n) ?(t = default_t) ?(seed = 1) ~nodes () =
  header ~n ~t ~seed ~nodes ^ "\nproc main() {\n" ^ init_body ^ step_body ^ "}\n"

(* The Section 2.1 presentation: the owned block is checked out exclusive
   once; each step checks the neighbouring boundary rows/columns out
   shared and back in. Boundary rows are contiguous in memory (row-major),
   boundary columns are strided, annotated per row with a generated
   loop — the Section 4.3 collapsing. *)
let hand_step_body =
  {|  for r = (pid / PC) * IB to (pid / PC) * IB + IB - 1 {
    check_out_x V[r*N + (pid % PC) * JB .. r*N + (pid % PC) * JB + JB - 1];
  }
  for ts = 1 to T {
    if (pid / PC > 0) {
      check_out_s U[((pid / PC) * IB - 1) * N + (pid % PC) * JB .. ((pid / PC) * IB - 1) * N + (pid % PC) * JB + JB - 1];
    }
    if (pid / PC < PR - 1) {
      check_out_s U[((pid / PC) * IB + IB) * N + (pid % PC) * JB .. ((pid / PC) * IB + IB) * N + (pid % PC) * JB + JB - 1];
    }
    for r = (pid / PC) * IB to (pid / PC) * IB + IB - 1 {
      if (pid % PC > 0) {
        check_out_s U[r*N + (pid % PC) * JB - 1];
      }
      if (pid % PC < PC - 1) {
        check_out_s U[r*N + (pid % PC) * JB + JB];
      }
    }
    for i = (pid / PC) * IB to (pid / PC) * IB + IB - 1 {
      for j = (pid % PC) * JB to (pid % PC) * JB + JB - 1 {
        if (i > 0 && i < N - 1 && j > 0 && j < N - 1) {
          V[i*N + j] = 0.25 * (U[(i-1)*N + j] + U[(i+1)*N + j] + U[i*N + j - 1] + U[i*N + j + 1]);
        }
      }
    }
    if (pid / PC > 0) {
      check_in U[((pid / PC) * IB - 1) * N + (pid % PC) * JB .. ((pid / PC) * IB - 1) * N + (pid % PC) * JB + JB - 1];
    }
    if (pid / PC < PR - 1) {
      check_in U[((pid / PC) * IB + IB) * N + (pid % PC) * JB .. ((pid / PC) * IB + IB) * N + (pid % PC) * JB + JB - 1];
    }
    barrier;
    for i = (pid / PC) * IB to (pid / PC) * IB + IB - 1 {
      for j = (pid % PC) * JB to (pid % PC) * JB + JB - 1 {
        U[i*N + j] = V[i*N + j];
      }
    }
    check_in U[(pid / PC) * IB * N + (pid % PC) * JB .. (pid / PC) * IB * N + (pid % PC) * JB + JB - 1];
    barrier;
  }
  for r = (pid / PC) * IB to (pid / PC) * IB + IB - 1 {
    check_in V[r*N + (pid % PC) * JB .. r*N + (pid % PC) * JB + JB - 1];
  }
|}

let hand_source ?(n = default_n) ?(t = default_t) ?(seed = 1) ~nodes () =
  header ~n ~t ~seed ~nodes ^ "\nproc main() {\n" ^ init_body ^ hand_step_body
  ^ "}\n"
