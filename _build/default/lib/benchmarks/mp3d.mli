(** Mp3d: rarefied fluid-flow simulation (the SPLASH kernel, scaled to a
    1-D active space).

    Each node owns a contiguous slice of particles. Every time step moves
    the particles, scatters them into shared space cells
    ([CELL\[c\] = CELL\[c\] + 1] where [c] depends on the particle
    position — a data race with dynamic, input-dependent addresses), and
    then scales velocities by the local cell density. The paper reports
    the highest shared-write fraction of the suite (80 %) and the largest
    Cachier-over-hand win (45 %): dynamic access patterns are exactly
    where hand annotation goes wrong. *)

val source :
  ?particles:int -> ?cells:int -> ?t:int -> ?seed:int -> nodes:int ->
  unit -> string
(** Default [particles = 1024], [cells = 64], [t = 3], [seed = 1]. *)

val hand_source :
  ?particles:int -> ?cells:int -> ?t:int -> ?seed:int -> nodes:int ->
  unit -> string
(** The flawed hand version of Section 6: particle positions and
    velocities are checked in immediately after every write (too early —
    the same cache block holds the next particles) and the cell array is
    never checked in at all (neglected). *)

val default_particles : int
val default_cells : int
val default_t : int
