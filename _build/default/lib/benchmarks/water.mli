(** Water: molecular dynamics with pairwise short-range forces (modelled
    on the SPLASH Water code; an extra validation target beyond the five
    benchmarks of the paper's Figure 6).

    Each node owns a slice of molecules. Every time step computes
    Lennard-Jones-style pair forces by reading {e all} positions
    (read-shared, like Barnes' force phase but without the tree), then
    integrates its own molecules (owner-written), and accumulates a
    potential-energy partial into a small shared array (false sharing
    unless padded — it is deliberately left unpadded, as in early SPLASH
    codes). *)

val source :
  ?molecules:int -> ?t:int -> ?seed:int -> nodes:int -> unit -> string
(** Default [molecules = 64], [t = 3], [seed = 1]. *)

val hand_source :
  ?molecules:int -> ?t:int -> ?seed:int -> nodes:int -> unit -> string
(** A straightforward hand annotation: positions checked in by readers
    after the force phase, own slices checked out exclusive for the
    update. *)

val default_molecules : int
val default_t : int
