(** Tomcatv: vectorised mesh-generation kernel (parallel SPEC code).

    Each node iterates a heavy arithmetic relaxation over its private mesh
    slice; the only shared data are the slice-boundary columns exchanged
    once per iteration. Roughly 90 % of execution time is local
    computation, so CICO annotations barely move it — the paper's control
    point. *)

val source : ?n:int -> ?t:int -> ?seed:int -> nodes:int -> unit -> string
(** Default [n = 40] (private slice is [n x n] per node), [t = 3]. *)

val hand_source : ?n:int -> ?t:int -> ?seed:int -> nodes:int -> unit -> string
(** Minimal hand annotation of the boundary exchange. *)

val default_n : int
val default_t : int
