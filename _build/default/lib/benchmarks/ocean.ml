let default_n = 32
let default_t = 4

let header ~n ~t ~seed ~nodes =
  if n mod nodes <> 0 then
    invalid_arg "ocean: N must be a multiple of the node count";
  Printf.sprintf
    {|const N = %d;
const T = %d;
const SEED = %d;
const NPROCS = %d;
const RB = N / NPROCS;
shared G[N*N];
shared R[NPROCS];
|}
    n t seed nodes

let init_body =
  {|  if (pid == 0) {
    for q = 0 to N*N - 1 {
      G[q] = noise(q + SEED * 1000003);
    }
    for q = 0 to NPROCS - 1 {
      R[q] = 0.0;
    }
  }
  barrier;
|}

(* One red sweep then one black sweep per step, followed by a residual
   phase: each node writes its residual into R[pid] (false sharing: R is
   smaller than a handful of cache blocks) and node 0 reduces it. *)
let step_body =
  {|  for ts = 1 to T {
    for i = max(1, pid * RB) to min(N - 2, pid * RB + RB - 1) {
      for j = 1 to N - 2 {
        if ((i + j) % 2 == 0) {
          G[i*N + j] = G[i*N + j] + 0.9 * (0.25 * (G[(i-1)*N + j] + G[(i+1)*N + j] + G[i*N + j - 1] + G[i*N + j + 1]) - G[i*N + j]);
        }
      }
    }
    barrier;
    for i = max(1, pid * RB) to min(N - 2, pid * RB + RB - 1) {
      for j = 1 to N - 2 {
        if ((i + j) % 2 == 1) {
          G[i*N + j] = G[i*N + j] + 0.9 * (0.25 * (G[(i-1)*N + j] + G[(i+1)*N + j] + G[i*N + j - 1] + G[i*N + j + 1]) - G[i*N + j]);
        }
      }
    }
    barrier;
    res = 0.0;
    for i = pid * RB to pid * RB + RB - 1 {
      res = res + abs(G[i*N + N/2]);
    }
    R[pid] = res;
    barrier;
    if (pid == 0) {
      total = 0.0;
      for q = 0 to NPROCS - 1 {
        total = total + R[q];
      }
      R[0] = total;
    }
    barrier;
  }
|}

let source ?(n = default_n) ?(t = default_t) ?(seed = 1) ~nodes () =
  header ~n ~t ~seed ~nodes ^ "\nproc main() {\n" ^ init_body ^ step_body ^ "}\n"

(* Hand version: handles its own rows correctly (check-out exclusive at
   sweep start, boundary rows checked in at sweep end) and remembers to
   check in the neighbour rows after the red sweep — but forgets to after
   the black sweep, so every other claim by the owner pays a software
   trap, and it adds one redundant check-out-shared (the paper: 7 % worse
   than Cachier). *)
let hand_step_body =
  {|  for ts = 1 to T {
    check_out_s G[pid * RB * N .. pid * RB * N + N - 1];
    check_out_x G[max(1, pid * RB) * N + 1 .. min(N - 2, pid * RB + RB - 1) * N + N - 2];
    for i = max(1, pid * RB) to min(N - 2, pid * RB + RB - 1) {
      for j = 1 to N - 2 {
        if ((i + j) % 2 == 0) {
          G[i*N + j] = G[i*N + j] + 0.9 * (0.25 * (G[(i-1)*N + j] + G[(i+1)*N + j] + G[i*N + j - 1] + G[i*N + j + 1]) - G[i*N + j]);
        }
      }
    }
    check_in G[pid * RB * N .. pid * RB * N + N - 1];
    check_in G[(pid * RB + RB - 1) * N .. (pid * RB + RB - 1) * N + N - 1];
    if (pid > 0) {
      check_in G[(pid * RB - 1) * N .. (pid * RB - 1) * N + N - 1];
    }
    if (pid < NPROCS - 1) {
      check_in G[(pid * RB + RB) * N .. (pid * RB + RB) * N + N - 1];
    }
    barrier;
    check_out_x G[max(1, pid * RB) * N + 1 .. min(N - 2, pid * RB + RB - 1) * N + N - 2];
    for i = max(1, pid * RB) to min(N - 2, pid * RB + RB - 1) {
      for j = 1 to N - 2 {
        if ((i + j) % 2 == 1) {
          G[i*N + j] = G[i*N + j] + 0.9 * (0.25 * (G[(i-1)*N + j] + G[(i+1)*N + j] + G[i*N + j - 1] + G[i*N + j + 1]) - G[i*N + j]);
        }
      }
    }
    check_in G[pid * RB * N .. pid * RB * N + N - 1];
    check_in G[(pid * RB + RB - 1) * N .. (pid * RB + RB - 1) * N + N - 1];
    barrier;
    res = 0.0;
    for i = pid * RB to pid * RB + RB - 1 {
      res = res + abs(G[i*N + N/2]);
    }
    R[pid] = res;
    check_in R[pid];
    barrier;
    if (pid == 0) {
      total = 0.0;
      for q = 0 to NPROCS - 1 {
        total = total + R[q];
      }
      R[0] = total;
    }
    barrier;
  }
|}

let hand_source ?(n = default_n) ?(t = default_t) ?(seed = 1) ~nodes () =
  header ~n ~t ~seed ~nodes ^ "\nproc main() {\n" ^ init_body ^ hand_step_body
  ^ "}\n"

(* KSR-1-style variant: after each sweep the owner post-stores its
   boundary rows, pushing read-only copies to the neighbours that read
   them last sweep instead of merely releasing the blocks. *)
let post_store_step_body =
  {|  for ts = 1 to T {
    check_out_x G[max(1, pid * RB) * N + 1 .. min(N - 2, pid * RB + RB - 1) * N + N - 2];
    for i = max(1, pid * RB) to min(N - 2, pid * RB + RB - 1) {
      for j = 1 to N - 2 {
        if ((i + j) % 2 == 0) {
          G[i*N + j] = G[i*N + j] + 0.9 * (0.25 * (G[(i-1)*N + j] + G[(i+1)*N + j] + G[i*N + j - 1] + G[i*N + j + 1]) - G[i*N + j]);
        }
      }
    }
    post_store G[pid * RB * N .. pid * RB * N + N - 1];
    post_store G[(pid * RB + RB - 1) * N .. (pid * RB + RB - 1) * N + N - 1];
    if (pid > 0) {
      check_in G[(pid * RB - 1) * N .. (pid * RB - 1) * N + N - 1];
    }
    if (pid < NPROCS - 1) {
      check_in G[(pid * RB + RB) * N .. (pid * RB + RB) * N + N - 1];
    }
    barrier;
    check_out_x G[max(1, pid * RB) * N + 1 .. min(N - 2, pid * RB + RB - 1) * N + N - 2];
    for i = max(1, pid * RB) to min(N - 2, pid * RB + RB - 1) {
      for j = 1 to N - 2 {
        if ((i + j) % 2 == 1) {
          G[i*N + j] = G[i*N + j] + 0.9 * (0.25 * (G[(i-1)*N + j] + G[(i+1)*N + j] + G[i*N + j - 1] + G[i*N + j + 1]) - G[i*N + j]);
        }
      }
    }
    post_store G[pid * RB * N .. pid * RB * N + N - 1];
    post_store G[(pid * RB + RB - 1) * N .. (pid * RB + RB - 1) * N + N - 1];
    if (pid > 0) {
      check_in G[(pid * RB - 1) * N .. (pid * RB - 1) * N + N - 1];
    }
    if (pid < NPROCS - 1) {
      check_in G[(pid * RB + RB) * N .. (pid * RB + RB) * N + N - 1];
    }
    barrier;
    res = 0.0;
    for i = pid * RB to pid * RB + RB - 1 {
      res = res + abs(G[i*N + N/2]);
    }
    R[pid] = res;
    check_in R[pid];
    barrier;
    if (pid == 0) {
      total = 0.0;
      for q = 0 to NPROCS - 1 {
        total = total + R[q];
      }
      R[0] = total;
    }
    barrier;
  }
|}

let post_store_source ?(n = default_n) ?(t = default_t) ?(seed = 1) ~nodes () =
  header ~n ~t ~seed ~nodes ^ "\nproc main() {\n" ^ init_body
  ^ post_store_step_body ^ "}\n"
