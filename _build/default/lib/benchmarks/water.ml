let default_molecules = 64
let default_t = 3

let header ~molecules ~t ~seed ~nodes =
  if molecules mod nodes <> 0 then
    invalid_arg "water: molecule count must be a multiple of the node count";
  Printf.sprintf
    {|const NM = %d;
const T = %d;
const SEED = %d;
const NPROCS = %d;
const MP = NM / NPROCS;
shared WX[NM];
shared WY[NM];
shared UX[NM];
shared UY[NM];
shared FX[NM];
shared FY[NM];
shared EP[NPROCS];
|}
    molecules t seed nodes

let init_body =
  {|  if (pid == 0) {
    for q = 0 to NM - 1 {
      WX[q] = noise(q + SEED * 1000003) * 8.0;
      WY[q] = noise(q + 55555 + SEED * 1000003) * 8.0;
      UX[q] = noise(q + 111111 + SEED * 1000003) * 0.2 - 0.1;
      UY[q] = noise(q + 222222 + SEED * 1000003) * 0.2 - 0.1;
      FX[q] = 0.0;
      FY[q] = 0.0;
    }
    for q = 0 to NPROCS - 1 {
      EP[q] = 0.0;
    }
  }
  barrier;
|}

(* Force phase: every node reads all positions; update phase: each node
   integrates its own slice. The cutoff keeps the force short-range, like
   Water's spherical cutoff. *)
let step_body =
  {|  for ts = 1 to T {
    ep = 0.0;
    for i = pid * MP to pid * MP + MP - 1 {
      fx = 0.0;
      fy = 0.0;
      for j = 0 to NM - 1 {
        if (j != i) {
          dx = WX[j] - WX[i];
          dy = WY[j] - WY[i];
          r2 = dx*dx + dy*dy + 0.5;
          if (r2 < 6.25) {
            ir2 = 1.0 / r2;
            ir6 = ir2 * ir2 * ir2;
            w = ir6 * (ir6 - 0.5) * ir2;
            fx = fx - dx * w;
            fy = fy - dy * w;
            ep = ep + ir6 * (ir6 - 1.0);
          }
        }
      }
      FX[i] = fx;
      FY[i] = fy;
    }
    EP[pid] = EP[pid] + ep;
    barrier;
    for i = pid * MP to pid * MP + MP - 1 {
      UX[i] = UX[i] + 0.002 * FX[i];
      UY[i] = UY[i] + 0.002 * FY[i];
      WX[i] = WX[i] + 0.002 * UX[i];
      WY[i] = WY[i] + 0.002 * UY[i];
      if (WX[i] < 0.0) {
        WX[i] = WX[i] + 8.0;
      }
      if (WX[i] >= 8.0) {
        WX[i] = WX[i] - 8.0;
      }
      if (WY[i] < 0.0) {
        WY[i] = WY[i] + 8.0;
      }
      if (WY[i] >= 8.0) {
        WY[i] = WY[i] - 8.0;
      }
    }
    barrier;
  }
|}

let source ?(molecules = default_molecules) ?(t = default_t) ?(seed = 1) ~nodes
    () =
  header ~molecules ~t ~seed ~nodes ^ "\nproc main() {\n" ^ init_body
  ^ step_body ^ "}\n"

let hand_step_body =
  {|  for ts = 1 to T {
    ep = 0.0;
    check_out_x FX[pid * MP .. pid * MP + MP - 1];
    check_out_x FY[pid * MP .. pid * MP + MP - 1];
    for i = pid * MP to pid * MP + MP - 1 {
      fx = 0.0;
      fy = 0.0;
      for j = 0 to NM - 1 {
        if (j != i) {
          dx = WX[j] - WX[i];
          dy = WY[j] - WY[i];
          r2 = dx*dx + dy*dy + 0.5;
          if (r2 < 6.25) {
            ir2 = 1.0 / r2;
            ir6 = ir2 * ir2 * ir2;
            w = ir6 * (ir6 - 0.5) * ir2;
            fx = fx - dx * w;
            fy = fy - dy * w;
            ep = ep + ir6 * (ir6 - 1.0);
          }
        }
      }
      FX[i] = fx;
      FY[i] = fy;
    }
    EP[pid] = EP[pid] + ep;
    check_in WX[0 .. NM - 1];
    check_in WY[0 .. NM - 1];
    barrier;
    check_out_x WX[pid * MP .. pid * MP + MP - 1];
    check_out_x WY[pid * MP .. pid * MP + MP - 1];
    for i = pid * MP to pid * MP + MP - 1 {
      UX[i] = UX[i] + 0.002 * FX[i];
      UY[i] = UY[i] + 0.002 * FY[i];
      WX[i] = WX[i] + 0.002 * UX[i];
      WY[i] = WY[i] + 0.002 * UY[i];
      if (WX[i] < 0.0) {
        WX[i] = WX[i] + 8.0;
      }
      if (WX[i] >= 8.0) {
        WX[i] = WX[i] - 8.0;
      }
      if (WY[i] < 0.0) {
        WY[i] = WY[i] + 8.0;
      }
      if (WY[i] >= 8.0) {
        WY[i] = WY[i] - 8.0;
      }
    }
    check_in WX[pid * MP .. pid * MP + MP - 1];
    check_in WY[pid * MP .. pid * MP + MP - 1];
    barrier;
  }
|}

let hand_source ?(molecules = default_molecules) ?(t = default_t) ?(seed = 1)
    ~nodes () =
  header ~molecules ~t ~seed ~nodes ^ "\nproc main() {\n" ^ init_body
  ^ hand_step_body ^ "}\n"
