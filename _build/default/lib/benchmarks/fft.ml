let default_n = 64

let log2i n =
  let rec go k acc = if k = 1 then acc else go (k / 2) (acc + 1) in
  go n 0

let header ~n ~seed ~nodes =
  if n <= 0 || n land (n - 1) <> 0 then
    invalid_arg "fft: N must be a power of two";
  if n mod nodes <> 0 || n / 2 mod nodes <> 0 then
    invalid_arg "fft: N/2 must be a multiple of the node count";
  Printf.sprintf
    {|const N = %d;
const LOGN = %d;
const SEED = %d;
const NPROCS = %d;
const BFLY = N / 2 / NPROCS;
const PI = 3.14159265358979;
shared RE[N];
shared IM[N];
|}
    n (log2i n) seed nodes

(* Node 0 loads the signal in bit-reversed order, so the stages produce
   the transform in natural order. *)
let init_body =
  {|  if (pid == 0) {
    for i = 0 to N - 1 {
      j = 0;
      tmp = i;
      for b = 1 to LOGN {
        j = j * 2 + tmp % 2;
        tmp = tmp / 2;
      }
      RE[j] = noise(i + SEED * 1000003) - 0.5;
      IM[j] = 0.0;
    }
  }
  barrier;
|}

(* One butterfly stage: m doubles each stage; butterfly b pairs elements
   k+t and k+t+half where k = (b/half)*m and t = b%half. Both writes of a
   butterfly go to its owner, so every element has one writer per stage. *)
let stages_body ~annots =
  let ci =
    if annots then
      "    check_in RE[pid * (N / NPROCS) .. pid * (N / NPROCS) + N / NPROCS - 1];\n\
      \    check_in IM[pid * (N / NPROCS) .. pid * (N / NPROCS) + N / NPROCS - 1];\n"
    else ""
  in
  Printf.sprintf
    {|  m = 1;
  for s = 1 to LOGN {
    m = m * 2;
    half = m / 2;
    for b = pid * BFLY to pid * BFLY + BFLY - 1 {
      k = (b / half) * m;
      t = b %% half;
      ang = 0.0 - 2.0 * PI * t / m;
      wr = cos(ang);
      wi = sin(ang);
      i1 = k + t;
      i2 = k + t + half;
      vr = RE[i2] * wr - IM[i2] * wi;
      vi = RE[i2] * wi + IM[i2] * wr;
      ur = RE[i1];
      ui = IM[i1];
      RE[i1] = ur + vr;
      IM[i1] = ui + vi;
      RE[i2] = ur - vr;
      IM[i2] = ui - vi;
    }
%s    barrier;
  }
|}
    ci

let conjugate_body =
  {|  for i = pid * (N / NPROCS) to pid * (N / NPROCS) + N / NPROCS - 1 {
    IM[i] = 0.0 - IM[i];
  }
  barrier;
|}

let scale_body =
  {|  for i = pid * (N / NPROCS) to pid * (N / NPROCS) + N / NPROCS - 1 {
    RE[i] = RE[i] / N;
    IM[i] = (0.0 - IM[i]) / N;
  }
  barrier;
|}

(* The inverse transform needs bit-reversal again before the stages; we
   reuse node 0 for the permutation (in place, swapping pairs once). *)
let rebitrev_body =
  {|  if (pid == 0) {
    for i = 0 to N - 1 {
      j = 0;
      tmp = i;
      for b = 1 to LOGN {
        j = j * 2 + tmp % 2;
        tmp = tmp / 2;
      }
      if (j > i) {
        tr = RE[i];
        ti = IM[i];
        RE[i] = RE[j];
        IM[i] = IM[j];
        RE[j] = tr;
        IM[j] = ti;
      }
    }
  }
  barrier;
|}

let source ?(n = default_n) ?(seed = 1) ~nodes () =
  header ~n ~seed ~nodes ^ "\nproc main() {\n" ^ init_body
  ^ stages_body ~annots:false ^ "}\n"

let inverse_source ?(n = default_n) ?(seed = 1) ~nodes () =
  header ~n ~seed ~nodes ^ "\nproc main() {\n" ^ init_body
  ^ stages_body ~annots:false
  (* inverse: conjugate, bit-reverse, transform again, conjugate+scale *)
  ^ conjugate_body ^ rebitrev_body
  ^ stages_body ~annots:false
  ^ scale_body ^ "}\n"

let hand_source ?(n = default_n) ?(seed = 1) ~nodes () =
  header ~n ~seed ~nodes ^ "\nproc main() {\n" ^ init_body
  ^ stages_body ~annots:true ^ "}\n"
