let default_n = 16

(* The matrix is stored column-major (element (i, j) at M[j*N + i]), so a
   column — the unit of LU's producer/consumer handoff — is one contiguous
   range of blocks, as in SPLASH's blocked LU. *)
let header ~n ~seed ~nodes =
  Printf.sprintf
    {|const N = %d;
const SEED = %d;
const NPROCS = %d;
shared M[N*N];
|}
    n seed nodes

(* Diagonally dominant initialisation keeps the factorisation stable
   without pivoting. *)
let init_body =
  {|  if (pid == 0) {
    for j = 0 to N - 1 {
      for i = 0 to N - 1 {
        if (i == j) {
          M[j*N + i] = noise(j*N + i + SEED * 1000003) + N;
        } else {
          M[j*N + i] = noise(j*N + i + SEED * 1000003);
        }
      }
    }
  }
  barrier;
|}

let factor_body ~annots =
  let owner_ci, consumer_ci =
    if annots then
      ( "      check_in M[k*N + k .. k*N + N - 1];\n",
        "    if (pid != k % NPROCS) {\n\
        \      check_in M[k*N + k .. k*N + N - 1];\n\
        \    }\n" )
    else ("", "")
  in
  Printf.sprintf
    {|  for k = 0 to N - 2 {
    if (pid == k %% NPROCS) {
      for i = k + 1 to N - 1 {
        M[k*N + i] = M[k*N + i] / M[k*N + k];
      }
%s    }
    barrier;
    for j = k + 1 to N - 1 {
      if (j %% NPROCS == pid) {
        for i = k + 1 to N - 1 {
          M[j*N + i] = M[j*N + i] - M[k*N + i] * M[j*N + k];
        }
      }
    }
%s    barrier;
  }
|}
    owner_ci consumer_ci

let source ?(n = default_n) ?(seed = 1) ~nodes () =
  header ~n ~seed ~nodes ^ "\nproc main() {\n" ^ init_body
  ^ factor_body ~annots:false ^ "}\n"

let hand_source ?(n = default_n) ?(seed = 1) ~nodes () =
  header ~n ~seed ~nodes ^ "\nproc main() {\n" ^ init_body
  ^ factor_body ~annots:true ^ "}\n"
