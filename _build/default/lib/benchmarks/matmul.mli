(** Matrix Multiply, Section 4.4's "unconventional" blocked algorithm.

    Each processor owns a block of rows [Lk..Uk] and columns [Lj..Uj] of
    [B] and accumulates its partial products directly into the shared
    result matrix [C], so [C] is read-write shared with a potential data
    race on every element — the property Sections 4.4 and 5 revolve
    around. [A] is read-shared; [B] is effectively private per block.

    One processor initialises all three matrices (Section 6 attributes
    part of Cachier's win to checking the matrices in after
    initialisation). *)

val source : ?n:int -> ?seed:int -> nodes:int -> unit -> string
(** Unannotated program. Default [n = 24], [seed = 1]. *)

val hand_source : ?n:int -> ?seed:int -> nodes:int -> unit -> string
(** The hand-annotated version: correct near-access annotations on [C]
    plus the paper's documented flaw — a few unnecessary check-out-shared
    annotations (and, when prefetch is enabled, inappropriately placed
    prefetches inside the inner loop). *)

val restructured_source : ?n:int -> ?seed:int -> nodes:int -> unit -> string
(** The Section 5 restructuring: copy the owned part of [C] into a private
    array, compute locally, and merge back under locks. *)

val default_n : int
