(** Processor-grid factorisation shared by the blocked benchmarks. *)

val factor : int -> int * int
(** [factor nprocs] is [(pr, pc)] with [pr * pc = nprocs] and [pr <= pc],
    choosing the most square split (8 → 2x4, 16 → 4x4, 32 → 4x8). *)

val check_divisible : n:int -> nodes:int -> string -> unit
(** Ensure the problem size divides evenly over the processor grid.
    @raise Invalid_argument naming the benchmark otherwise. *)
