let default_n = 40
let default_t = 3

let header ~n ~t ~seed ~nodes =
  Printf.sprintf
    {|const N = %d;
const T = %d;
const SEED = %d;
const NPROCS = %d;
shared XB[N * NPROCS];
shared YB[N * NPROCS];
private X[N*N];
private Y[N*N];
|}
    n t seed nodes

(* Each node owns an N x N private mesh slice; boundary column N-1 is
   published to XB/YB and the left neighbour's boundary is read back. The
   inner relaxation is deliberately arithmetic-heavy (sqrt, abs) so that
   computation dominates communication. *)
let body =
  {|  for q = 0 to N*N - 1 {
    X[q] = noise(q + pid * 7919 + SEED * 1000003);
    Y[q] = noise(q + pid * 104729 + SEED * 1000003);
  }
  barrier;
  for ts = 1 to T {
    for i = 1 to N - 2 {
      for j = 1 to N - 2 {
        xx = X[i*N + j + 1] - X[i*N + j - 1];
        yx = Y[i*N + j + 1] - Y[i*N + j - 1];
        xy = X[(i+1)*N + j] - X[(i-1)*N + j];
        yy = Y[(i+1)*N + j] - Y[(i-1)*N + j];
        a = 0.25 * (xy*xy + yy*yy);
        b = 0.25 * (xx*xx + yx*yx);
        c = 0.125 * (xx*xy + yx*yy);
        d = sqrt(abs(a*b - c*c)) + 0.0001;
        X[i*N + j] = X[i*N + j] + 0.05 * (a + b - 2.0*c) / d;
        Y[i*N + j] = Y[i*N + j] + 0.05 * (a + b + 2.0*c) / d;
      }
    }
    for i = 0 to N - 1 {
      XB[pid*N + i] = X[i*N + N - 1];
      YB[pid*N + i] = Y[i*N + N - 1];
    }
    barrier;
    if (pid > 0) {
      for i = 0 to N - 1 {
        X[i*N] = 0.5 * (X[i*N] + XB[(pid-1)*N + i]);
        Y[i*N] = 0.5 * (Y[i*N] + YB[(pid-1)*N + i]);
      }
    }
    barrier;
  }
|}

let source ?(n = default_n) ?(t = default_t) ?(seed = 1) ~nodes () =
  header ~n ~t ~seed ~nodes ^ "\nproc main() {\n" ^ body ^ "}\n"

let hand_body =
  {|  for q = 0 to N*N - 1 {
    X[q] = noise(q + pid * 7919 + SEED * 1000003);
    Y[q] = noise(q + pid * 104729 + SEED * 1000003);
  }
  barrier;
  for ts = 1 to T {
    for i = 1 to N - 2 {
      for j = 1 to N - 2 {
        xx = X[i*N + j + 1] - X[i*N + j - 1];
        yx = Y[i*N + j + 1] - Y[i*N + j - 1];
        xy = X[(i+1)*N + j] - X[(i-1)*N + j];
        yy = Y[(i+1)*N + j] - Y[(i-1)*N + j];
        a = 0.25 * (xy*xy + yy*yy);
        b = 0.25 * (xx*xx + yx*yx);
        c = 0.125 * (xx*xy + yx*yy);
        d = sqrt(abs(a*b - c*c)) + 0.0001;
        X[i*N + j] = X[i*N + j] + 0.05 * (a + b - 2.0*c) / d;
        Y[i*N + j] = Y[i*N + j] + 0.05 * (a + b + 2.0*c) / d;
      }
    }
    check_out_x XB[pid*N .. pid*N + N - 1];
    check_out_x YB[pid*N .. pid*N + N - 1];
    for i = 0 to N - 1 {
      XB[pid*N + i] = X[i*N + N - 1];
      YB[pid*N + i] = Y[i*N + N - 1];
    }
    check_in XB[pid*N .. pid*N + N - 1];
    check_in YB[pid*N .. pid*N + N - 1];
    barrier;
    if (pid > 0) {
      for i = 0 to N - 1 {
        X[i*N] = 0.5 * (X[i*N] + XB[(pid-1)*N + i]);
        Y[i*N] = 0.5 * (Y[i*N] + YB[(pid-1)*N + i]);
      }
      check_in XB[(pid-1)*N .. (pid-1)*N + N - 1];
      check_in YB[(pid-1)*N .. (pid-1)*N + N - 1];
    }
    barrier;
  }
|}

let hand_source ?(n = default_n) ?(t = default_t) ?(seed = 1) ~nodes () =
  header ~n ~t ~seed ~nodes ^ "\nproc main() {\n" ^ hand_body ^ "}\n"
