let default_n = 24

let header ~n ~seed ~nodes =
  let pr, pc = Grid.factor nodes in
  Grid.check_divisible ~n ~nodes "matmul";
  Printf.sprintf
    {|const N = %d;
const SEED = %d;
const PR = %d;
const PC = %d;
const KB = N / PR;
const JB = N / PC;
shared A[N*N];
shared B[N*N];
shared C[N*N];
|}
    n seed pr pc

let init_body =
  {|  if (pid == 0) {
    for q = 0 to N*N - 1 {
      A[q] = noise(q + SEED * 1000003);
      B[q] = noise(q + 500000 + SEED * 1000003);
      C[q] = 0.0;
    }
  }
  barrier;
|}

let compute_body =
  {|  for i = 0 to N - 1 {
    for k = (pid / PC) * KB to (pid / PC) * KB + KB - 1 {
      t = A[i*N + k];
      for j = (pid % PC) * JB to (pid % PC) * JB + JB - 1 {
        C[i*N + j] = C[i*N + j] + t * B[k*N + j];
      }
    }
  }
  barrier;
|}

let source ?(n = default_n) ?(seed = 1) ~nodes () =
  header ~n ~seed ~nodes ^ "\nproc main() {\n" ^ init_body ^ compute_body ^ "}\n"

(* The hand version checks the racy C elements out exclusive but never
   checks them back in (so the next claimant pays a three-hop recall
   instead of a clean fetch), adds the unnecessary explicit check-outs
   Section 6 blames for its small deficit (check_out_s of A and of the B
   row — Dir1SW's implicit check-out already covers them), and places its
   prefetches inappropriately in the inner loop. *)
let hand_compute_body =
  {|  for i = 0 to N - 1 {
    for k = (pid / PC) * KB to (pid / PC) * KB + KB - 1 {
      check_out_s A[i*N + k];
      t = A[i*N + k];
      check_out_s B[k*N + (pid % PC) * JB .. k*N + (pid % PC) * JB + JB - 1];
      for j = (pid % PC) * JB to (pid % PC) * JB + JB - 1 {
        prefetch_x C[i*N + j];
        check_out_x C[i*N + j];
        C[i*N + j] = C[i*N + j] + t * B[k*N + j];
      }
    }
  }
  check_in A[0 .. N*N - 1];
  barrier;
|}

let hand_init_body =
  {|  if (pid == 0) {
    for q = 0 to N*N - 1 {
      A[q] = noise(q + SEED * 1000003);
      B[q] = noise(q + 500000 + SEED * 1000003);
      C[q] = 0.0;
    }
    check_in A[0 .. N*N - 1];
    check_in B[0 .. N*N - 1];
    check_in C[0 .. N*N - 1];
  }
  barrier;
|}

let hand_source ?(n = default_n) ?(seed = 1) ~nodes () =
  header ~n ~seed ~nodes ^ "\nproc main() {\n" ^ hand_init_body
  ^ hand_compute_body ^ "}\n"

(* Section 5 restructuring: copy the owned columns of C to a private
   array, accumulate locally, then merge back under a lock per cache
   block. The annotations are the ones printed in the paper. *)
let restructured_compute_body =
  {|  for i = 0 to N - 1 {
    for j = (pid % PC) * JB to (pid % PC) * JB + JB - 1 step 4 {
      check_out_s C[i*N + j .. i*N + j + 3];
      cp[i*JB + (j - (pid % PC) * JB)] = C[i*N + j];
      cp[i*JB + (j - (pid % PC) * JB) + 1] = C[i*N + j + 1];
      cp[i*JB + (j - (pid % PC) * JB) + 2] = C[i*N + j + 2];
      cp[i*JB + (j - (pid % PC) * JB) + 3] = C[i*N + j + 3];
      co[i*JB + (j - (pid % PC) * JB)] = C[i*N + j];
      co[i*JB + (j - (pid % PC) * JB) + 1] = C[i*N + j + 1];
      co[i*JB + (j - (pid % PC) * JB) + 2] = C[i*N + j + 2];
      co[i*JB + (j - (pid % PC) * JB) + 3] = C[i*N + j + 3];
      check_in C[i*N + j .. i*N + j + 3];
    }
  }
  barrier;
  for i = 0 to N - 1 {
    for k = (pid / PC) * KB to (pid / PC) * KB + KB - 1 {
      t = A[i*N + k];
      for j = (pid % PC) * JB to (pid % PC) * JB + JB - 1 {
        cp[i*JB + (j - (pid % PC) * JB)] = cp[i*JB + (j - (pid % PC) * JB)] + t * B[k*N + j];
      }
    }
  }
  barrier;
  for i = 0 to N - 1 {
    for j = (pid % PC) * JB to (pid % PC) * JB + JB - 1 step 4 {
      lock((i*N + j) / 4);
      check_out_x C[i*N + j .. i*N + j + 3];
      C[i*N + j] = C[i*N + j] + cp[i*JB + (j - (pid % PC) * JB)] - co[i*JB + (j - (pid % PC) * JB)];
      C[i*N + j + 1] = C[i*N + j + 1] + cp[i*JB + (j - (pid % PC) * JB) + 1] - co[i*JB + (j - (pid % PC) * JB) + 1];
      C[i*N + j + 2] = C[i*N + j + 2] + cp[i*JB + (j - (pid % PC) * JB) + 2] - co[i*JB + (j - (pid % PC) * JB) + 2];
      C[i*N + j + 3] = C[i*N + j + 3] + cp[i*JB + (j - (pid % PC) * JB) + 3] - co[i*JB + (j - (pid % PC) * JB) + 3];
      check_in C[i*N + j .. i*N + j + 3];
      unlock((i*N + j) / 4);
    }
  }
  barrier;
|}

let restructured_source ?(n = default_n) ?(seed = 1) ~nodes () =
  let pc = snd (Grid.factor nodes) in
  if n / pc mod 4 <> 0 then
    invalid_arg "matmul restructured: JB must be a multiple of 4";
  header ~n ~seed ~nodes
  ^ "private cp[N * JB];\nprivate co[N * JB];\n"
  ^ "\nproc main() {\n" ^ init_body ^ restructured_compute_body ^ "}\n"
