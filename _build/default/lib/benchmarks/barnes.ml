let default_bodies = 64
let default_t = 2

let header ~bodies ~t ~seed ~nodes =
  if bodies mod nodes <> 0 then
    invalid_arg "barnes: body count must be a multiple of the node count";
  Printf.sprintf
    {|const NB = %d;
const MAXN = %d;
const T = %d;
const SEED = %d;
const NPROCS = %d;
const BP = NB / NPROCS;
shared BX[NB];
shared BY[NB];
shared BM[NB];
shared AX[NB];
shared AY[NB];
shared CH[MAXN*4];
shared NX[MAXN];
shared NY[MAXN];
shared NM[MAXN];
shared NCX[MAXN];
shared NCY[MAXN];
shared NHS[MAXN];
shared NN[4];
private STK[512];
|}
    bodies (4 * bodies) t seed nodes

let procs_body =
  {|
proc insert(b) {
  x = BX[b];
  y = BY[b];
  m = BM[b];
  cur = 1;
  placing = 1;
  while (placing == 1) {
    NM[cur] = NM[cur] + m;
    NX[cur] = NX[cur] + m * x;
    NY[cur] = NY[cur] + m * y;
    qx = 0;
    if (x > NCX[cur]) {
      qx = 1;
    }
    qy = 0;
    if (y > NCY[cur]) {
      qy = 1;
    }
    slot = cur*4 + qx + 2*qy;
    v = int(CH[slot]);
    if (v == 0) {
      CH[slot] = 0 - (b + 1);
      placing = 0;
    } else {
      if (v < 0) {
        old = 0 - v - 1;
        nn = int(NN[0]);
        if (nn >= MAXN || NHS[cur] < 0.0005) {
          placing = 0;
        } else {
          NN[0] = nn + 1;
          NCX[nn] = NCX[cur] + (2*qx - 1) * NHS[cur] / 2.0;
          NCY[nn] = NCY[cur] + (2*qy - 1) * NHS[cur] / 2.0;
          NHS[nn] = NHS[cur] / 2.0;
          ox = BX[old];
          oy = BY[old];
          om = BM[old];
          NM[nn] = om;
          NX[nn] = om * ox;
          NY[nn] = om * oy;
          oqx = 0;
          if (ox > NCX[nn]) {
            oqx = 1;
          }
          oqy = 0;
          if (oy > NCY[nn]) {
            oqy = 1;
          }
          CH[nn*4 + oqx + 2*oqy] = 0 - (old + 1);
          CH[slot] = nn;
          cur = nn;
        }
      } else {
        cur = v;
      }
    }
  }
}

proc force(b) {
  x = BX[b];
  y = BY[b];
  ax = 0.0;
  ay = 0.0;
  sp = 0;
  STK[0] = 1;
  while (sp >= 0) {
    nd = STK[sp];
    sp = sp - 1;
    if (nd < 0) {
      b2 = 0 - nd - 1;
      if (b2 != b) {
        dx = BX[b2] - x;
        dy = BY[b2] - y;
        d2 = dx*dx + dy*dy + 0.00001;
        w = BM[b2] / (d2 * sqrt(d2));
        ax = ax + dx * w;
        ay = ay + dy * w;
      }
    } else {
      dx = NX[nd] - x;
      dy = NY[nd] - y;
      d2 = dx*dx + dy*dy + 0.00001;
      if (4.0 * NHS[nd] * NHS[nd] < 0.25 * d2) {
        w = NM[nd] / (d2 * sqrt(d2));
        ax = ax + dx * w;
        ay = ay + dy * w;
      } else {
        for k = 0 to 3 {
          v = int(CH[nd*4 + k]);
          if (v != 0) {
            sp = sp + 1;
            STK[sp] = v;
          }
        }
      }
    }
  }
  AX[b] = ax;
  AY[b] = ay;
}
|}

let main_body ~annots =
  (* The hand annotator flushes the builder's copies after the build and
     has every reader check the tree back in after the force phase — but
     forgets the first quarter of the node-mass array (whose stale read
     copies make the builder's writes trap to software) and checks each
     updated position in immediately, one body at a time, even though the
     same cache block holds the next bodies: "the hand-annotated version
     missed a few annotations". *)
  let build_ci, force_ci, update_ci =
    match annots with
    | `None -> ("", "", "")
    | `Hand ->
        ( "    check_in BX[0 .. NB - 1];\n    check_in BY[0 .. NB - 1];\n\
          \    check_in CH[0 .. MAXN*4 - 1];\n    check_in NM[0 .. MAXN - 1];\n\
          \    check_in NX[0 .. MAXN - 1];\n    check_in NY[0 .. MAXN - 1];\n\
          \    check_in NHS[0 .. MAXN - 1];\n",
          "    check_in CH[0 .. MAXN*4 - 1];\n    check_in NM[MAXN/4 .. MAXN - 1];\n\
          \    check_in NX[0 .. MAXN - 1];\n    check_in NY[0 .. MAXN - 1];\n\
          \    check_in NHS[0 .. MAXN - 1];\n",
          "      check_in BX[b];\n      check_in BY[b];\n" )
  in
  Printf.sprintf
    {|
proc main() {
  if (pid == 0) {
    for b = 0 to NB - 1 {
      BX[b] = 0.02 + 0.96 * noise(b + SEED * 1000003);
      BY[b] = 0.02 + 0.96 * noise(b + 31337 + SEED * 1000003);
      BM[b] = 0.5 + noise(b + 99991 + SEED * 1000003);
      AX[b] = 0.0;
      AY[b] = 0.0;
    }
  }
  barrier;
  for ts = 1 to T {
    if (pid == 0) {
      NN[0] = 2;
      for q = 0 to MAXN*4 - 1 {
        CH[q] = 0;
      }
      for q = 0 to MAXN - 1 {
        NM[q] = 0.0;
        NX[q] = 0.0;
        NY[q] = 0.0;
      }
      NCX[1] = 0.5;
      NCY[1] = 0.5;
      NHS[1] = 0.5;
      for b = 0 to NB - 1 {
        insert(b);
      }
      for nd = 1 to int(NN[0]) - 1 {
        if (NM[nd] > 0.0) {
          NX[nd] = NX[nd] / NM[nd];
          NY[nd] = NY[nd] / NM[nd];
        }
      }
%s    }
    barrier;
    for b = pid*BP to pid*BP + BP - 1 {
      force(b);
    }
%s    barrier;
    for b = pid*BP to pid*BP + BP - 1 {
      BX[b] = BX[b] + 0.005 * AX[b];
      BY[b] = BY[b] + 0.005 * AY[b];
      if (BX[b] < 0.001) {
        BX[b] = 0.001;
      }
      if (BX[b] > 0.999) {
        BX[b] = 0.999;
      }
      if (BY[b] < 0.001) {
        BY[b] = 0.001;
      }
      if (BY[b] > 0.999) {
        BY[b] = 0.999;
      }
%s    }
    barrier;
  }
}
|}
    build_ci force_ci update_ci

let source ?(bodies = default_bodies) ?(t = default_t) ?(seed = 1) ~nodes () =
  header ~bodies ~t ~seed ~nodes ^ procs_body ^ main_body ~annots:`None

let hand_source ?(bodies = default_bodies) ?(t = default_t) ?(seed = 1) ~nodes
    () =
  header ~bodies ~t ~seed ~nodes ^ procs_body ^ main_body ~annots:`Hand
