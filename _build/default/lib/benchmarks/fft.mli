(** Radix-2 Fourier transform over a block-distributed complex array
    (modelled on the SPLASH-2 FFT; an extension benchmark).

    The input is bit-reverse permuted by node 0, then [log2 N] butterfly
    stages run with a barrier between them. Early stages pair elements
    within a node's block (local); late stages pair elements across nodes
    (the all-to-all exchange whose latency prefetch and check-in target).
    Each butterfly's writes go to the elements the {e lower}-index node
    owns, so every location has a single writer per stage — race-free.

    Correctness is testable analytically: forward transform followed by
    the inverse transform (conjugate, transform, conjugate, scale)
    reproduces the input. *)

val source : ?n:int -> ?seed:int -> nodes:int -> unit -> string
(** [n] must be a power of two and a multiple of [nodes]; default 64. *)

val inverse_source : ?n:int -> ?seed:int -> nodes:int -> unit -> string
(** Forward transform immediately followed by the inverse transform: the
    final [RE]/[IM] arrays equal the initial input (used by the tests). *)

val hand_source : ?n:int -> ?seed:int -> nodes:int -> unit -> string
(** Hand annotation: each node checks in its block before the barrier of
    every cross-node stage. *)

val default_n : int
