(** Jacobi relaxation, the worked example of Section 2.1.

    The [N x N] grid is block-partitioned over a [PR x PC] processor grid;
    each time step computes a 5-point stencil into a second buffer and
    copies it back, with a barrier between the phases. Reads of the
    boundary rows and columns of neighbouring blocks are the only
    communication, which is what makes the closed-form check-out counts of
    the CICO cost model exact. *)

val source : ?n:int -> ?t:int -> ?seed:int -> nodes:int -> unit -> string
(** Default [n = 32], [t = 4], [seed = 1]. *)

val hand_source : ?n:int -> ?t:int -> ?seed:int -> nodes:int -> unit -> string
(** Annotated the way Section 2.1 presents it: check-out of the owned
    block once, boundary rows and columns checked out shared and back in
    each step. *)

val default_n : int
val default_t : int
