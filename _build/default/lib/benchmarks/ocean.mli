(** Ocean: cuboidal ocean-basin simulation by Gauss-Seidel with
    successive over-relaxation (the SPLASH kernel, scaled down).

    Row-block partitioning with in-place red-black SOR sweeps. Rows on
    partition boundaries are written by their owner and read by the
    neighbour every sweep, so blocks ping-pong between Shared and
    Exclusive — the highest degree of sharing in the suite (the paper
    reports 88 % shared loads / 68 % shared stores), which is why Cachier
    helps Ocean the most. *)

val source : ?n:int -> ?t:int -> ?seed:int -> nodes:int -> unit -> string
(** Default [n = 32], [t = 4] red+black iterations, [seed = 1]. *)

val hand_source : ?n:int -> ?t:int -> ?seed:int -> nodes:int -> unit -> string
(** Hand annotation with the documented weaknesses: the neighbour rows a
    node reads are checked in after the red sweep but forgotten after the
    black sweep (so every other owner claim traps to software), and a
    redundant check-out-shared is issued each step (paper: 7 % worse than
    Cachier). *)

val post_store_source :
  ?n:int -> ?t:int -> ?seed:int -> nodes:int -> unit -> string
(** Extension: the producer post-stores its boundary rows after each sweep
    (the KSR-1-style push the paper's introduction compares to check-in),
    so the neighbour's next-sweep reads hit without a directory trip. *)

val default_n : int
val default_t : int
