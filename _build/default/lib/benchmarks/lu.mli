(** LU decomposition without pivoting, columns distributed cyclically
    (modelled on the SPLASH LU kernel; an extension benchmark).

    Iteration [k] has two epochs: the owner of column [k] computes the
    multipliers (everyone else waits), then every processor updates its
    own columns [j > k] after reading the freshly written column [k] — a
    one-producer/many-consumer handoff each iteration, the pattern
    check-in/check-out (and post-store) target. The matrix is made
    diagonally dominant so no pivoting is needed. *)

val source : ?n:int -> ?seed:int -> nodes:int -> unit -> string
(** Default [n = 16]. *)

val hand_source : ?n:int -> ?seed:int -> nodes:int -> unit -> string
(** Hand annotation: the column owner checks its column in after the
    multiplier phase; consumers check it in after the update phase. *)

val default_n : int
