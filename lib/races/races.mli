(** Streaming race detection over the packed miss log.

    The paper's DRFS predicate ({!Cachier.Drfs}) consults one epoch at a
    time to pick annotation sites; it is a heuristic, not a proof. This
    module is the complementary sound analysis: it folds once over the
    packed {!Trace.Buf} representation — interned lock-sets compared by
    id, no [Event.record] decompression — and reports every address with
    two same-epoch accesses from different nodes, at least one a write,
    with no common lock held. Under the trace-mode memory system (caches
    flushed at barriers, so each node's first access per epoch always
    misses) that condition is both necessary and sufficient for a data
    race in the simulated execution.

    The detector is SmartTrack-shaped: per-address state is stamped with
    its epoch (a barrier is the clock join — stale state is reset in
    place, never scanned), and a single-owner fast path covers the
    common unshared case; only on a second node does the state promote
    to the full access-shape representation that the conflict check
    scans. Lock-set disjointness is memoised per interned id pair.

    {!naive} is an independent reference implementation over the
    decompressed record list via {!Trace.Epoch.split}; the fuzzer's
    sixth oracle and the qcheck battery hold the two equal. *)

type access = {
  a_node : int;
  a_pc : int;
  a_write : bool;
  a_locks : int list;  (** held lock-set, innermost first *)
}

type race = {
  r_addr : int;
  r_epoch : int;  (** 0-based epoch index containing both accesses *)
  r_first : access;
  r_second : access;  (** the later access; the pair conflicts *)
}

type report = {
  nodes : int;
  epochs : int;  (** epochs examined, as {!Trace.Epoch.split} counts them *)
  accesses : int;  (** miss records folded *)
  distinct_addrs : int;  (** addresses carrying per-address state *)
  promoted : int;
      (** (address, epoch) states that left the single-owner fast path *)
  racy_addrs : int list;  (** sorted ascending *)
  races : race list;
      (** first racy pair per racy address, in stream discovery order —
          the head is the program's first race *)
}

val racy : report -> bool

val verdict_equal : report -> report -> bool
(** Equality on every field except [promoted] (fast-path telemetry whose
    exact count is an implementation detail of the streaming detector).
    This is the relation the fuzzer's differential oracle enforces
    between {!detect} and {!naive}. *)

val detect : nodes:int -> Trace.Buf.t -> report
(** Single pass over the packed buffer. Mirrors {!Trace.Epoch.split}'s
    validation: @raise Failure on short/oversized or inconsistent
    barrier groups and on out-of-range miss nodes. *)

val detect_records : nodes:int -> Trace.Event.record list -> report
(** [detect] after re-packing a decoded record list (offline traces). *)

val naive : nodes:int -> Trace.Event.record list -> report
(** Reference detector: {!Trace.Epoch.split} then per-epoch, per-address
    pairwise checks on the decompressed records. Shares no code with
    {!detect} past the type definitions and ignores {!Hooks}. Equal to
    [detect_records] on every trace — that equality is fuzzed. *)

val to_human : report -> string
(** Multi-line report: verdict line ("race verdict: racy" or
    "race verdict: race-free"), counters, and the first racy pair with
    its epoch and held lock-sets. *)

val to_json : report -> string
(** One JSON line, newline-terminated. *)

val render : report -> string
(** [to_human ^ to_json] — the canonical payload shared byte-for-byte by
    [simulate --races], [trace_stats --races] and the daemon's [races]
    op. *)

val verdict_line : report -> string
(** Just the verdict line, no newline — what CI's races-smoke greps. *)

(** Test-only fault injection, honoured by {!detect} only (never
    {!naive}): used to prove the oracle battery catches a broken
    detector. Both default to [false]. *)
module Hooks : sig
  val break_lock_intersection : bool ref
  (** Treat every lock-set pair as disjoint, so lock-protected accesses
      are misreported as racy. *)

  val break_epoch_boundary : bool ref
  (** Skip the epoch clock join at barrier groups, merging all epochs
      into one. *)
end
