(* Streaming race detection over the packed miss log.

   One fold over [Trace.Buf]'s flat words. Per-address state is stamped
   with the epoch it belongs to: a barrier group is the clock join, and
   instead of scanning tables at each barrier we reset a state lazily the
   next time its address is touched in a later epoch. Within an epoch a
   state starts on the single-owner fast path (one node, conflict checks
   impossible) and promotes to the full shape list only when a second
   node arrives — the SmartTrack ordering of cheap cases first. Lock-set
   disjointness is decided on interned ids and memoised per pair, so the
   per-access cost never re-walks lock lists that the trace writer
   already interned.

   [naive] is the deliberately boring reference: decompress, split into
   epochs with [Trace.Epoch.split], compare every access pair per
   address. The two implementations share the report type and nothing
   else; the fuzzer's sixth oracle holds them equal. *)

module Hooks = struct
  let break_lock_intersection = ref false
  let break_epoch_boundary = ref false
end

type access = { a_node : int; a_pc : int; a_write : bool; a_locks : int list }

type race = { r_addr : int; r_epoch : int; r_first : access; r_second : access }

type report = {
  nodes : int;
  epochs : int;
  accesses : int;
  distinct_addrs : int;
  promoted : int;
  racy_addrs : int list;
  races : race list;
}

let racy r = r.races <> []

(* Everything except [promoted], which is fast-path telemetry the naive
   reference reproduces only approximately (it keeps counting after an
   address is proven racy; the streaming detector stops early). *)
let verdict_equal a b =
  a.nodes = b.nodes && a.epochs = b.epochs && a.accesses = b.accesses
  && a.distinct_addrs = b.distinct_addrs
  && a.racy_addrs = b.racy_addrs && a.races = b.races

(* A shape is one distinct way an address was touched this epoch:
   (node, write?, interned lock-set id), pc of the first such access.
   Kept in first-occurrence order so the first conflicting shape found is
   the chronologically first racing partner — the naive reference finds
   the same pair by scanning raw accesses in order. *)
type shape = { s_node : int; s_write : bool; s_held : int; s_pc : int }

type state = {
  mutable st_epoch : int;
  mutable owner : int;  (* sole node this epoch, or -1 once promoted *)
  mutable shapes : shape list;  (* first-occurrence order *)
  mutable last_node : int;  (* O(1) same-shape repeat filter *)
  mutable last_write : bool;
  mutable last_held : int;
  mutable raced : bool;  (* sticky across epochs: first race reported *)
}

let detect ~nodes buf =
  if nodes <= 0 then invalid_arg "Races.detect: nodes must be positive";
  let states : (int, state) Hashtbl.t = Hashtbl.create 256 in
  (* lock-set disjointness memo, keyed on interned id pair *)
  let disjoint_memo : (int, bool) Hashtbl.t = Hashtbl.create 64 in
  let break_locks = !Hooks.break_lock_intersection in
  let break_epochs = !Hooks.break_epoch_boundary in
  let disjoint h1 h2 =
    if break_locks then true
    else if h1 = Trace.Buf.empty_held || h2 = Trace.Buf.empty_held then true
    else if h1 = h2 then false
    else
      let key = (h1 * Trace.Buf.n_held buf) + h2 in
      match Hashtbl.find_opt disjoint_memo key with
      | Some d -> d
      | None ->
          let l1 = Trace.Buf.held_list buf h1
          and l2 = Trace.Buf.held_list buf h2 in
          let d = not (List.exists (fun l -> List.mem l l2) l1) in
          Hashtbl.add disjoint_memo key d;
          d
  in
  let cur_epoch = ref 0 in
  let epochs_closed = ref 0 in
  let misses_since_flush = ref false in
  let accesses = ref 0 in
  let promoted = ref 0 in
  let races_rev = ref [] in
  (* barrier-group accumulator, mirroring Trace.Epoch.split's checks *)
  let pending = ref 0 in
  let pending_vt = ref 0 in
  let pending_bpc = ref 0 in
  let pending_bad = ref false in
  let require_no_partial_group () =
    if !pending <> 0 then
      failwith
        (Printf.sprintf "trace: barrier group has %d records, expected %d"
           !pending nodes)
  in
  let on_barrier ~node:_ ~pc ~vt =
    if !pending = 0 then begin
      pending_vt := vt;
      pending_bpc := pc;
      pending_bad := false
    end
    else if vt <> !pending_vt || pc <> !pending_bpc then pending_bad := true;
    incr pending;
    if !pending = nodes then begin
      if !pending_bad then failwith "trace: inconsistent barrier group";
      pending := 0;
      if not break_epochs then begin
        incr epochs_closed;
        incr cur_epoch;
        misses_since_flush := false
      end
    end
  in
  let conflict (s : shape) ~node ~write ~held =
    s.s_node <> node && (s.s_write || write) && disjoint s.s_held held
  in
  let on_miss ~node ~pc ~addr ~kind ~held =
    require_no_partial_group ();
    if node < 0 || node >= nodes then
      failwith (Printf.sprintf "trace: node %d out of range" node);
    incr accesses;
    misses_since_flush := true;
    let write = kind <> Trace.Buf.kind_read in
    let st =
      match Hashtbl.find_opt states addr with
      | Some st -> st
      | None ->
          let st =
            {
              st_epoch = -1;
              owner = node;
              shapes = [];
              last_node = -1;
              last_write = false;
              last_held = -1;
              raced = false;
            }
          in
          Hashtbl.add states addr st;
          st
    in
    if st.st_epoch <> !cur_epoch then begin
      (* clock join: the previous epoch's history is barrier-ordered
         before us, so the state restarts on the fast path *)
      st.st_epoch <- !cur_epoch;
      st.owner <- node;
      st.shapes <- [ { s_node = node; s_write = write; s_held = held; s_pc = pc } ];
      st.last_node <- node;
      st.last_write <- write;
      st.last_held <- held
    end
    else if st.raced then ()
    else if node = st.last_node && write = st.last_write && held = st.last_held
    then () (* same node repeating the same shape: the common tight loop *)
    else begin
      st.last_node <- node;
      st.last_write <- write;
      st.last_held <- held;
      if st.owner <> node && st.owner >= 0 then begin
        st.owner <- -1;
        incr promoted
      end;
      let rec check = function
        | [] ->
            st.shapes <-
              st.shapes
              @ [ { s_node = node; s_write = write; s_held = held; s_pc = pc } ]
        | s :: rest ->
            if conflict s ~node ~write ~held then begin
              st.raced <- true;
              races_rev :=
                {
                  r_addr = addr;
                  r_epoch = !cur_epoch;
                  r_first =
                    {
                      a_node = s.s_node;
                      a_pc = s.s_pc;
                      a_write = s.s_write;
                      a_locks = Trace.Buf.held_list buf s.s_held;
                    };
                  r_second =
                    {
                      a_node = node;
                      a_pc = pc;
                      a_write = write;
                      a_locks = Trace.Buf.held_list buf held;
                    };
                }
                :: !races_rev
            end
            else if s.s_node = node && s.s_write = write && s.s_held = held then
              () (* shape already recorded *)
            else check rest
      in
      if st.owner = node then begin
        (* single owner: no conflict possible, just record the shape *)
        if
          not
            (List.exists
               (fun s -> s.s_node = node && s.s_write = write && s.s_held = held)
               st.shapes)
        then
          st.shapes <-
            st.shapes
            @ [ { s_node = node; s_write = write; s_held = held; s_pc = pc } ]
      end
      else check st.shapes
    end
  in
  Trace.Buf.iter_packed buf ~miss:on_miss ~barrier:on_barrier
    ~label:(fun ~name:_ ~lo:_ ~hi:_ -> ());
  require_no_partial_group ();
  if !misses_since_flush then incr epochs_closed;
  let races = List.rev !races_rev in
  {
    nodes;
    epochs = !epochs_closed;
    accesses = !accesses;
    distinct_addrs = Hashtbl.length states;
    promoted = !promoted;
    racy_addrs = List.sort compare (List.map (fun r -> r.r_addr) races);
    races;
  }

let detect_records ~nodes records =
  detect ~nodes (Trace.Buf.of_records records)

(* ------------------------------------------------------------------ *)
(* Naive reference: decompressed records, Trace.Epoch.split, pairwise. *)

let naive_disjoint l1 l2 = not (List.exists (fun l -> List.mem l l2) l1)

let naive ~nodes records =
  if nodes <= 0 then invalid_arg "Races.naive: nodes must be positive";
  let epochs, _labels = Trace.Epoch.split ~nodes records in
  let racy : (int, unit) Hashtbl.t = Hashtbl.create 16 in
  let all_addrs : (int, unit) Hashtbl.t = Hashtbl.create 256 in
  let accesses = ref 0 in
  let promoted = ref 0 in
  let races_rev = ref [] in
  List.iter
    (fun (e : Trace.Epoch.t) ->
      (* per-address access history within this epoch, oldest first *)
      let seen : (int, access list) Hashtbl.t = Hashtbl.create 64 in
      List.iter
        (fun (m : Trace.Event.miss) ->
          incr accesses;
          Hashtbl.replace all_addrs m.addr ();
          let a =
            {
              a_node = m.node;
              a_pc = m.pc;
              a_write = m.kind <> Trace.Event.Read_miss;
              a_locks = m.held;
            }
          in
          let prev =
            Option.value ~default:[] (Hashtbl.find_opt seen m.addr)
          in
          if not (Hashtbl.mem racy m.addr) then begin
            let conflicting =
              List.find_opt
                (fun p ->
                  p.a_node <> a.a_node
                  && (p.a_write || a.a_write)
                  && naive_disjoint p.a_locks a.a_locks)
                (List.rev prev)
            in
            match conflicting with
            | Some first ->
                Hashtbl.replace racy m.addr ();
                races_rev :=
                  {
                    r_addr = m.addr;
                    r_epoch = e.Trace.Epoch.index;
                    r_first = first;
                    r_second = a;
                  }
                  :: !races_rev
            | None -> ()
          end;
          Hashtbl.replace seen m.addr (a :: prev))
        e.Trace.Epoch.misses;
      (* promotion telemetry: addresses touched by >= 2 nodes this epoch *)
      Hashtbl.iter
        (fun _addr accs ->
          let nodes_mask =
            List.fold_left (fun m a -> m lor (1 lsl a.a_node)) 0 accs
          in
          if Memsys.Directory.popcount nodes_mask >= 2 then incr promoted)
        seen)
    epochs;
  let races = List.rev !races_rev in
  {
    nodes;
    epochs = List.length epochs;
    accesses = !accesses;
    distinct_addrs = Hashtbl.length all_addrs;
    promoted = !promoted;
    racy_addrs = List.sort compare (List.map (fun r -> r.r_addr) races);
    races;
  }

(* ------------------------------------------------------------------ *)
(* Rendering — one canonical form shared by every surface. *)

let verdict_line r =
  if racy r then "race verdict: racy" else "race verdict: race-free"

let locks_to_string = function
  | [] -> "{}"
  | ls -> "{" ^ String.concat "," (List.map string_of_int ls) ^ "}"

let access_to_string a =
  Printf.sprintf "node %d pc %d %s locks %s" a.a_node a.a_pc
    (if a.a_write then "write" else "read")
    (locks_to_string a.a_locks)

let to_human r =
  let buf = Buffer.create 256 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pr "%s\n" (verdict_line r);
  pr "nodes: %d  epochs: %d  accesses: %d  addrs: %d  promoted: %d\n" r.nodes
    r.epochs r.accesses r.distinct_addrs r.promoted;
  (match r.races with
  | [] -> ()
  | first :: _ ->
      pr "racy addresses (%d):%s\n"
        (List.length r.racy_addrs)
        (String.concat ""
           (List.map (fun a -> Printf.sprintf " %d" a) r.racy_addrs));
      pr "first race: addr %d epoch %d\n" first.r_addr first.r_epoch;
      pr "  %s\n" (access_to_string first.r_first);
      pr "  %s\n" (access_to_string first.r_second));
  Buffer.contents buf

let json_access a =
  Printf.sprintf {|{"node":%d,"pc":%d,"write":%b,"locks":[%s]}|} a.a_node
    a.a_pc a.a_write
    (String.concat "," (List.map string_of_int a.a_locks))

let to_json r =
  let first_race =
    match r.races with
    | [] -> "null"
    | f :: _ ->
        Printf.sprintf {|{"addr":%d,"epoch":%d,"first":%s,"second":%s}|}
          f.r_addr f.r_epoch (json_access f.r_first) (json_access f.r_second)
  in
  Printf.sprintf
    {|{"verdict":"%s","nodes":%d,"epochs":%d,"accesses":%d,"distinct_addrs":%d,"promoted":%d,"racy_addrs":[%s],"first_race":%s}|}
    (if racy r then "racy" else "race-free")
    r.nodes r.epochs r.accesses r.distinct_addrs r.promoted
    (String.concat "," (List.map string_of_int r.racy_addrs))
    first_race
  ^ "\n"

let render r = to_human r ^ to_json r
