(* Random program generation for the differential fuzzer.

   Two families of generators:

   - [free_*]: unconstrained ASTs, promoted from the original parser
     round-trip property tests. They exercise the printer, the parser and
     sema on arbitrary trees, but most of them fail to run.

   - [spmd]: well-formed SPMD programs that pass [Sema.check] and run to
     completion. Every shared index is wrapped in a bounds-respecting
     form, and cross-node sharing is data-race-free by construction:
     concurrent writers touch disjoint elements (each node writes only
     its own chunk of A), or read-modify-write B under a common lock with
     integer-valued, order-independent contributions. Race freedom is
     what makes the oracles sound — they compare results across runs with
     different timing (two engines, annotated vs unannotated), and only
     DRF programs are value-deterministic under timing changes.

   Generators are plain functions of a [Random.State.t], the same shape
   as [QCheck.Gen.t], so the qcheck property suites lift them with
   [QCheck.make] unchanged while the fuzzer needs no qcheck at all. *)

open Lang

type 'a t = Random.State.t -> 'a

let int_range lo hi st = lo + Random.State.int st (hi - lo + 1)
let oneof (xs : 'a array) st = xs.(Random.State.int st (Array.length xs))
let mk node = { Ast.sid = -1; node }

(* ---- free-form generators (printer / parser / sema fodder) ---- *)

let var_names = [| "x"; "y"; "z"; "acc"; "tmp" |]
let array_names = [| "A"; "B" |]

let rec free_expr_n n st =
  if n <= 0 then
    match Random.State.int st 4 with
    (* negative literals are spelled with an explicit Neg: [Eint (-34)]
       prints as ["(-34)"], which re-parses as [Eunop (Neg, Eint 34)] —
       same value, different tree — so leaves are non-negative *)
    | 0 -> Ast.Eint (int_range 0 99 st)
    | 1 -> Ast.Efloat (float_of_int (int_range 0 40 st) /. 4.0)
    | 2 -> Ast.Evar (oneof var_names st)
    | _ -> Ast.Evar "pid"
  else
    match Random.State.int st 5 with
    | 0 ->
        let op =
          oneof
            Ast.[| Add; Sub; Mul; Div; Mod; Lt; Le; Gt; Ge; Eq; Ne; And; Or |]
            st
        in
        Ast.Ebinop (op, free_expr_n (n / 2) st, free_expr_n (n / 2) st)
    | 1 -> Ast.Eunop (oneof Ast.[| Neg; Not |] st, free_expr_n (n / 2) st)
    | 2 -> Ast.Eindex (oneof array_names st, free_expr_n (n / 2) st)
    | 3 -> Ast.Ecall ("min", [ free_expr_n (n / 2) st; free_expr_n (n / 2) st ])
    | _ -> Ast.Ecall ("abs", [ free_expr_n (n / 2) st ])

let free_expr st = free_expr_n (min (Random.State.int st 100) 8) st

let rec free_stmt_n n st =
  let leaf st =
    match Random.State.int st 4 with
    | 0 -> mk (Ast.Sassign (Ast.Lvar (oneof var_names st), free_expr st))
    | 1 ->
        mk
          (Ast.Sassign
             (Ast.Lindex (oneof array_names st, free_expr st), free_expr st))
    | 2 ->
        let k =
          oneof
            Ast.[| Check_out_x; Check_out_s; Check_in; Prefetch_s; Post_store |]
            st
        in
        let e = free_expr st in
        mk (Ast.Sannot (k, { Ast.arr = "A"; lo = e; hi = e }))
    | _ ->
        let nargs = int_range 1 3 st in
        mk (Ast.Sprint (List.init nargs (fun _ -> free_expr st)))
  in
  if n <= 0 then leaf st
  else
    match Random.State.int st 3 with
    | 0 -> leaf st
    | 1 ->
        let c = free_expr st in
        let b1 = List.init (int_range 0 3 st) (fun _ -> free_stmt_n (n / 2) st) in
        let b2 = List.init (int_range 0 2 st) (fun _ -> free_stmt_n (n / 2) st) in
        mk (Ast.Sif (c, b1, b2))
    | _ ->
        let v = oneof var_names st in
        let step = oneof [| 1; 2; 3 |] st in
        let lo = int_range 0 4 st and hi = int_range 0 8 st in
        let body =
          List.init (int_range 1 3 st) (fun _ -> free_stmt_n (n / 2) st)
        in
        mk
          (Ast.Sfor
             {
               Ast.var = v;
               from_ = Ast.Eint lo;
               to_ = Ast.Eint hi;
               step = Ast.Eint step;
               body;
             })

let free_stmt st = free_stmt_n (min (Random.State.int st 100) 6) st

let free_program st =
  let body = List.init (int_range 1 8 st) (fun _ -> free_stmt st) in
  Ast.renumber
    {
      Ast.decls =
        [ Ast.Dshared ("A", Ast.Eint 64); Ast.Dshared ("B", Ast.Eint 64) ];
      procs = [ { Ast.pname = "main"; params = []; body } ];
    }

(* ---- well-formed SPMD programs ---- *)

type config = {
  shared_elems : int;  (** elements in each of the shared arrays A and B *)
  private_elems : int;  (** elements in the private array P *)
  max_segments : int;  (** barrier-delimited phases per program *)
  max_stmts : int;  (** statements per segment *)
  max_depth : int;  (** expression depth *)
  annotations : bool;  (** sprinkle random CICO directives *)
  racy : bool;
      (** deliberately break the DRF discipline: some segments write
          shared elements at unconstrained indices with no lock, so
          several nodes may hit the same element in one epoch. Exercises
          the race oracle's racy direction — never pass such programs
          with [~expect_race_free]. *)
}

let default_config =
  {
    shared_elems = 64;
    private_elems = 16;
    max_segments = 4;
    max_stmts = 5;
    max_depth = 3;
    annotations = true;
    racy = false;
  }

(* A segment's sharing discipline decides which shared reads and writes
   the expression grammar may produce. *)
type sharing = No_shared | Own_chunk | Any_shared

(* Index wrappers: in-bounds for any payload value and any node count.
   The chunk [N / nprocs] partitions A so concurrent writers are
   element-disjoint. *)
let chunk = Ast.(Ebinop (Div, Evar "N", Evar "nprocs"))
let wrap_abs e = Ast.Ecall ("abs", [ e ])

let own_index payload =
  Ast.(
    Ebinop
      (Add, Ebinop (Mul, Evar "pid", chunk), Ebinop (Mod, wrap_abs payload, chunk)))

let any_index payload = Ast.(Ebinop (Mod, wrap_abs payload, Evar "N"))
let priv_index cfg payload = Ast.(Ebinop (Mod, wrap_abs payload, Eint cfg.private_elems))

let rec vexpr cfg sharing ~depth st =
  if depth <= 0 then leaf st
  else
    let sub st = vexpr cfg sharing ~depth:(depth - 1) st in
    match Random.State.int st 12 with
    | 0 | 1 | 2 ->
        Ast.Ebinop (oneof Ast.[| Add; Sub; Mul |] st, sub st, sub st)
    | 3 ->
        (* divide and modulo only by a non-zero literal *)
        Ast.Ebinop (oneof Ast.[| Div; Mod |] st, sub st, Ast.Eint (int_range 1 7 st))
    | 4 ->
        Ast.Ebinop
          (oneof Ast.[| Lt; Le; Gt; Ge; Eq; Ne; And; Or |] st, sub st, sub st)
    | 5 -> Ast.Eunop (oneof Ast.[| Neg; Not |] st, sub st)
    | 6 -> Ast.Ecall (oneof [| "min"; "max" |] st, [ sub st; sub st ])
    | 7 ->
        let f = oneof [| "abs"; "floor"; "float"; "int"; "noise" |] st in
        Ast.Ecall (f, [ sub st ])
    | 8 -> Ast.Ecall ("sqrt", [ wrap_abs (sub st) ])
    | 9 | 10 -> shared_read cfg sharing ~depth st
    | _ -> leaf st

and leaf st =
  match Random.State.int st 6 with
  | 0 -> Ast.Eint (int_range 0 20 st)
  | 1 -> Ast.Efloat (float_of_int (int_range 0 40 st) /. 4.0)
  | 2 | 3 -> Ast.Evar (oneof var_names st)
  | 4 -> Ast.Evar "pid"
  | _ -> Ast.Evar "nprocs"

and shared_read cfg sharing ~depth st =
  match sharing with
  | No_shared -> leaf st
  | Own_chunk ->
      (* this node's own chunk of A (other nodes may be writing theirs),
         or any element of B — B is only written in locked segments *)
      let payload = vexpr cfg sharing ~depth:(depth - 1) st in
      if Random.State.bool st then Ast.Eindex ("A", own_index payload)
      else Ast.Eindex ("B", any_index payload)
  | Any_shared ->
      let payload = vexpr cfg sharing ~depth:(depth - 1) st in
      Ast.Eindex (oneof array_names st, any_index payload)

let gen_annot cfg st =
  let kind =
    oneof
      Ast.[| Check_out_x; Check_out_s; Check_in; Prefetch_x; Prefetch_s; Post_store |]
      st
  in
  let bound st = Ast.Ecall ("int", [ vexpr cfg No_shared ~depth:1 st ]) in
  let lo = bound st in
  let hi = bound st in
  mk (Ast.Sannot (kind, { Ast.arr = oneof array_names st; lo; hi }))

let sharing_of = function
  | `Local -> Own_chunk
  | `Read_only -> Any_shared
  | `Locked -> No_shared
  | `Racy -> Any_shared

(* One logical statement; the while pattern expands to two (counter init +
   loop) so the loop always terminates. *)
let rec stmt1 cfg kind ~sdepth st =
  let sharing = sharing_of kind in
  let depth = cfg.max_depth in
  match Random.State.int st 10 with
  | 0 | 1 ->
      [ mk (Ast.Sassign (Ast.Lvar (oneof var_names st), vexpr cfg sharing ~depth st)) ]
  | 2 ->
      let idx = priv_index cfg (vexpr cfg sharing ~depth:(depth - 1) st) in
      [ mk (Ast.Sassign (Ast.Lindex ("P", idx), vexpr cfg sharing ~depth st)) ]
  | 3 when kind = `Local ->
      let idx = own_index (vexpr cfg sharing ~depth:(depth - 1) st) in
      [ mk (Ast.Sassign (Ast.Lindex ("A", idx), vexpr cfg sharing ~depth st)) ]
  | 3 when kind = `Racy ->
      (* unsynchronized shared write at an unconstrained index — the
         deliberate race the detector must find *)
      let idx = any_index (vexpr cfg sharing ~depth:(depth - 1) st) in
      [
        mk
          (Ast.Sassign
             ( Ast.Lindex (oneof array_names st, idx),
               vexpr cfg sharing ~depth st ));
      ]
  | 4 ->
      let n = int_range 1 2 st in
      [ mk (Ast.Sprint (List.init n (fun _ -> vexpr cfg sharing ~depth:(depth - 1) st))) ]
  | 5 when cfg.annotations -> [ gen_annot cfg st ]
  | 6 when sdepth > 0 ->
      let c = vexpr cfg sharing ~depth:(depth - 1) st in
      let b1 = block cfg kind ~sdepth:(sdepth - 1) ~n:(int_range 1 2 st) st in
      let b2 =
        if Random.State.bool st then []
        else block cfg kind ~sdepth:(sdepth - 1) ~n:1 st
      in
      [ mk (Ast.Sif (c, b1, b2)) ]
  | 7 when sdepth > 0 ->
      let body = block cfg kind ~sdepth:(sdepth - 1) ~n:(int_range 1 2 st) st in
      [
        mk
          (Ast.Sfor
             {
               Ast.var = oneof var_names st;
               from_ = Ast.Eint (int_range 0 2 st);
               to_ = Ast.Eint (int_range 0 5 st);
               step = Ast.Eint (int_range 1 2 st);
               body;
             });
      ]
  | 8 when sdepth > 0 ->
      (* while loops always step a dedicated counter the rest of the
         grammar never touches, so they terminate *)
      let w = "wc" ^ string_of_int sdepth in
      let limit = int_range 1 3 st in
      let body = block cfg kind ~sdepth:(sdepth - 1) ~n:1 st in
      [
        mk (Ast.Sassign (Ast.Lvar w, Ast.Eint 0));
        mk
          (Ast.Swhile
             ( Ast.(Ebinop (Lt, Evar w, Eint limit)),
               body
               @ [ mk (Ast.Sassign (Ast.Lvar w, Ast.(Ebinop (Add, Evar w, Eint 1)))) ]
             ));
      ]
  | _ ->
      [ mk (Ast.Sassign (Ast.Lvar (oneof var_names st), vexpr cfg sharing ~depth:1 st)) ]

and block cfg kind ~sdepth ~n st =
  List.concat (List.init n (fun _ -> stmt1 cfg kind ~sdepth st))

(* A balanced lock group: read-modify-write of B under lock 1 (always
   lock 1, even when lock 2 is additionally nested, so every B update is
   protected by a common lock). Contributions are integer-valued and read
   no shared data, so the final sums are independent of acquisition
   order. *)
let lock_group cfg st =
  let update st =
    let j = any_index (vexpr cfg No_shared ~depth:1 st) in
    mk
      Ast.(
        Sassign
          ( Lindex ("B", j),
            Ebinop
              ( Add,
                Eindex ("B", j),
                Ecall ("int", [ vexpr cfg No_shared ~depth:(cfg.max_depth - 1) st ])
              ) ))
  in
  let extras =
    if Random.State.int st 3 = 0 then stmt1 cfg `Locked ~sdepth:0 st else []
  in
  let inner =
    update st :: (if Random.State.bool st then [ update st ] else []) @ extras
  in
  let l n = mk (Ast.Slock (Ast.Eint n)) and u n = mk (Ast.Sunlock (Ast.Eint n)) in
  let group =
    match Random.State.int st 3 with
    | 0 -> (l 1 :: inner) @ [ u 1 ]
    | 1 -> (l 1 :: l 1 :: inner) @ [ u 1; u 1 ] (* reentrant *)
    | _ -> (l 1 :: l 2 :: inner) @ [ u 2; u 1 ] (* nested, fixed order *)
  in
  if Random.State.int st 4 = 0 then
    [
      mk
        (Ast.Sfor
           {
             Ast.var = oneof var_names st;
             from_ = Ast.Eint 0;
             to_ = Ast.Eint (int_range 0 2 st);
             step = Ast.Eint 1;
             body = group;
           });
    ]
  else group

let segment cfg st =
  let kind =
    (* the racy branch draws first so a racy=false configuration consumes
       the exact random stream it always did *)
    if cfg.racy && Random.State.int st 2 = 0 then `Racy
    else
      match Random.State.int st 10 with
      | 0 | 1 | 2 | 3 | 4 -> `Local
      | 5 | 6 | 7 -> `Read_only
      | _ -> `Locked
  in
  let body =
    match kind with
    | `Locked ->
        List.concat
          (List.init (int_range 1 2 st) (fun _ -> lock_group cfg st))
    | (`Local | `Read_only | `Racy) as k ->
        block cfg k ~sdepth:2 ~n:(int_range 1 cfg.max_stmts st) st
  in
  body @ [ mk Ast.Sbarrier ]

(* Every scalar the grammar can read is assigned before the first segment,
   so no run trips over an undefined variable. *)
let prelude =
  [
    mk Ast.(Sassign (Lvar "x", Evar "pid"));
    mk Ast.(Sassign (Lvar "y", Eint 1));
    mk Ast.(Sassign (Lvar "z", Eint 0));
    mk Ast.(Sassign (Lvar "acc", Eint 0));
    mk Ast.(Sassign (Lvar "tmp", Eint 2));
  ]

let spmd ?(config = default_config) st =
  let cfg = config in
  let nsegs = int_range 1 cfg.max_segments st in
  let body = prelude @ List.concat (List.init nsegs (fun _ -> segment cfg st)) in
  Ast.renumber
    {
      Ast.decls =
        [
          Ast.Dconst ("N", Ast.Eint cfg.shared_elems);
          Ast.Dshared ("A", Ast.Evar "N");
          Ast.Dshared ("B", Ast.Evar "N");
          Ast.Dprivate ("P", Ast.Eint cfg.private_elems);
        ];
      procs = [ { Ast.pname = "main"; params = []; body } ];
    }

(* ---- program size (AST node count) ---- *)

let rec expr_size = function
  | Ast.Eint _ | Ast.Efloat _ | Ast.Evar _ -> 1
  | Ast.Eindex (_, e) | Ast.Eunop (_, e) -> 1 + expr_size e
  | Ast.Ebinop (_, a, b) -> 1 + expr_size a + expr_size b
  | Ast.Ecall (_, args) -> List.fold_left (fun acc e -> acc + expr_size e) 1 args

let rec stmt_size s =
  match s.Ast.node with
  | Ast.Sassign (Ast.Lvar _, e) -> 1 + expr_size e
  | Ast.Sassign (Ast.Lindex (_, i), e) -> 1 + expr_size i + expr_size e
  | Ast.Sif (c, b1, b2) -> 1 + expr_size c + block_nodes b1 + block_nodes b2
  | Ast.Sfor { Ast.from_; to_; step; body; _ } ->
      1 + expr_size from_ + expr_size to_ + expr_size step + block_nodes body
  | Ast.Swhile (c, b) -> 1 + expr_size c + block_nodes b
  | Ast.Sbarrier | Ast.Sannot_table _ -> 1
  | Ast.Scall (_, es) | Ast.Sprint es ->
      List.fold_left (fun acc e -> acc + expr_size e) 1 es
  | Ast.Sreturn None -> 1
  | Ast.Sreturn (Some e) | Ast.Slock e | Ast.Sunlock e -> 1 + expr_size e
  | Ast.Sannot (_, { Ast.lo; hi; _ }) -> 1 + expr_size lo + expr_size hi

and block_nodes b = List.fold_left (fun acc s -> acc + stmt_size s) 0 b

let size_program p =
  List.fold_left (fun acc pr -> acc + block_nodes pr.Ast.body) 0 p.Ast.procs

(* ---- shrinking ----

   Candidates must preserve well-formedness: lock/unlock pairs are
   removed only as whole balanced groups, barriers only with their whole
   segment (dropping a lone barrier would merge two segments and could
   create a cross-node race), while-loop counter updates only with their
   loop, and shared indices keep their bounds-respecting wrapper — only
   the wrapper's payload shrinks, or an own-chunk index collapses to the
   still-race-free [pid]. Candidates that break a program anyway (say, by
   removing the initialisation of a scalar that is still read) fail with
   [Runtime_error] when re-checked and are rejected by the runner, not
   here. *)

let expr_children = function
  | Ast.Eint _ | Ast.Efloat _ | Ast.Evar _ -> []
  | Ast.Eindex (_, e) | Ast.Eunop (_, e) -> [ e ]
  | Ast.Ebinop (_, a, b) -> [ a; b ]
  | Ast.Ecall (_, args) -> args

(* Shrinks of an expression in a value position: literal collapse, then
   promotion of any sub-expression. *)
let value_shrinks e =
  let lits =
    match e with
    | Ast.Eint 0 -> []
    | Ast.Eint 1 -> [ Ast.Eint 0 ]
    | _ -> [ Ast.Eint 0; Ast.Eint 1 ]
  in
  List.to_seq (lits @ expr_children e)

(* Shrinks of a shared/private index that keep the bounds wrapper. *)
let index_shrinks idx =
  match idx with
  | Ast.Ebinop
      ( Ast.Add,
        (Ast.Ebinop (Ast.Mul, Ast.Evar "pid", _) as pre),
        Ast.Ebinop (Ast.Mod, Ast.Ecall ("abs", [ p ]), m) ) ->
      (* own-chunk form: [pid] is per-node distinct, hence race-free *)
      Seq.append
        (Seq.return (Ast.Evar "pid"))
        (Seq.map
           (fun p' -> Ast.(Ebinop (Add, pre, Ebinop (Mod, Ecall ("abs", [ p' ]), m))))
           (value_shrinks p))
  | Ast.Ebinop (Ast.Mod, Ast.Ecall ("abs", [ p ]), m) ->
      Seq.append
        (Seq.return (Ast.Eint 0))
        (Seq.map
           (fun p' -> Ast.(Ebinop (Mod, Ecall ("abs", [ p' ]), m)))
           (value_shrinks p))
  | _ -> Seq.empty

let rec stmt_shrinks s =
  let with_node node = { s with Ast.node } in
  match s.Ast.node with
  | Ast.Sassign (Ast.Lvar v, e) ->
      Seq.map (fun e' -> with_node (Ast.Sassign (Ast.Lvar v, e'))) (value_shrinks e)
  | Ast.Sassign
      (Ast.Lindex (arr, idx), Ast.Ebinop (Ast.Add, Ast.Eindex (arr', idx'), c))
    when arr = arr' && idx = idx' ->
      (* locked accumulate: shrink the index on both sides at once so the
         read-modify-write keeps naming a single element *)
      Seq.append
        (Seq.map
           (fun j ->
             with_node
               (Ast.Sassign (Ast.Lindex (arr, j), Ast.(Ebinop (Add, Eindex (arr, j), c)))))
           (index_shrinks idx))
        (Seq.map
           (fun c' ->
             with_node
               (Ast.Sassign
                  (Ast.Lindex (arr, idx), Ast.(Ebinop (Add, Eindex (arr, idx), c')))))
           (value_shrinks c))
  | Ast.Sassign (Ast.Lindex (arr, idx), e) ->
      Seq.append
        (Seq.map
           (fun idx' -> with_node (Ast.Sassign (Ast.Lindex (arr, idx'), e)))
           (index_shrinks idx))
        (Seq.map
           (fun e' -> with_node (Ast.Sassign (Ast.Lindex (arr, idx), e')))
           (value_shrinks e))
  | Ast.Sif (c, b1, b2) ->
      Seq.concat
        (List.to_seq
           [
             Seq.map (fun c' -> with_node (Ast.Sif (c', b1, b2))) (value_shrinks c);
             Seq.map (fun b1' -> with_node (Ast.Sif (c, b1', b2))) (block_shrinks b1);
             Seq.map (fun b2' -> with_node (Ast.Sif (c, b1, b2'))) (block_shrinks b2);
           ])
  | Ast.Sfor fl ->
      let trivial =
        if (fl.Ast.from_, fl.Ast.to_, fl.Ast.step) <> (Ast.Eint 0, Ast.Eint 0, Ast.Eint 1)
        then
          Seq.return
            (with_node
               (Ast.Sfor
                  { fl with Ast.from_ = Ast.Eint 0; to_ = Ast.Eint 0; step = Ast.Eint 1 }))
        else Seq.empty
      in
      Seq.append trivial
        (Seq.map
           (fun b -> with_node (Ast.Sfor { fl with Ast.body = b }))
           (block_shrinks fl.Ast.body))
  | Ast.Swhile (c, b) -> (
      (* the loop's last statement is its counter update — keep it *)
      match List.rev b with
      | last :: rev_init ->
          let init = List.rev rev_init in
          Seq.map
            (fun b' -> with_node (Ast.Swhile (c, b' @ [ last ])))
            (block_shrinks init)
      | [] -> Seq.empty)
  | Ast.Sprint es ->
      Seq.concat
        (List.to_seq
           [
             (match es with
             | _ :: (_ :: _ as rest) -> Seq.return (with_node (Ast.Sprint rest))
             | _ -> Seq.empty);
             (match es with
             | [ e ] ->
                 Seq.map (fun e' -> with_node (Ast.Sprint [ e' ])) (value_shrinks e)
             | _ -> Seq.empty);
           ])
  | Ast.Sannot (k, r) ->
      Seq.append
        (Seq.map
           (fun lo -> with_node (Ast.Sannot (k, { r with Ast.lo })))
           (value_shrinks r.Ast.lo))
        (Seq.map
           (fun hi -> with_node (Ast.Sannot (k, { r with Ast.hi })))
           (value_shrinks r.Ast.hi))
  | _ -> Seq.empty

and block_shrinks (b : Ast.block) : Ast.block Seq.t =
  let arr = Array.of_list b in
  let n = Array.length arr in
  let splice i j repl =
    (* replace positions [i..j] with [repl] *)
    List.concat
      (List.init n (fun k ->
           if k < i || k > j then [ arr.(k) ] else if k = i then repl else []))
  in
  let lock_lit s =
    match s.Ast.node with
    | Ast.Slock (Ast.Eint l) -> Some (`Lock l)
    | Ast.Sunlock (Ast.Eint l) -> Some (`Unlock l)
    | _ -> None
  in
  let at i =
    match arr.(i).Ast.node with
    | Ast.Slock (Ast.Eint l) -> (
        (* remove the whole balanced group, nested same-lock holds included *)
        let rec close k depth =
          if k >= n then None
          else
            match lock_lit arr.(k) with
            | Some (`Lock l') when l' = l -> close (k + 1) (depth + 1)
            | Some (`Unlock l') when l' = l ->
                if depth = 1 then Some k else close (k + 1) (depth - 1)
            | _ -> close (k + 1) depth
        in
        match close (i + 1) 1 with
        | Some j ->
            (* peeling one level of a reentrant hold keeps the body
               protected by the inner hold, so it never introduces a
               race *)
            let peel =
              if i + 1 < n && lock_lit arr.(i + 1) = Some (`Lock l) then
                Seq.return
                  (List.concat
                     (List.init n (fun k ->
                          if k = i || k = j then [] else [ arr.(k) ])))
              else Seq.empty
            in
            Seq.append (Seq.return (splice i j [])) peel
        | None -> Seq.empty)
    | Ast.Slock _ | Ast.Sunlock _ | Ast.Sbarrier -> Seq.empty
    | Ast.Sif (_, b1, b2) ->
        Seq.concat
          (List.to_seq
             [
               Seq.return (splice i i []);
               (if b1 <> [] then Seq.return (splice i i b1) else Seq.empty);
               (if b2 <> [] then Seq.return (splice i i b2) else Seq.empty);
               Seq.map (fun s' -> splice i i [ s' ]) (stmt_shrinks arr.(i));
             ])
    | Ast.Sfor { Ast.body; _ } | Ast.Swhile (_, body) ->
        Seq.concat
          (List.to_seq
             [
               Seq.return (splice i i []);
               (if body <> [] then Seq.return (splice i i body) else Seq.empty);
               Seq.map (fun s' -> splice i i [ s' ]) (stmt_shrinks arr.(i));
             ])
    | _ ->
        Seq.append
          (Seq.return (splice i i []))
          (Seq.map (fun s' -> splice i i [ s' ]) (stmt_shrinks arr.(i)))
  in
  Seq.concat_map at (Seq.init n Fun.id)

(* Split a proc body into barrier-terminated segments. *)
let split_segments body =
  let rec go acc cur = function
    | [] -> List.rev (if cur = [] then acc else List.rev cur :: acc)
    | s :: rest -> (
        match s.Ast.node with
        | Ast.Sbarrier -> go (List.rev (s :: cur) :: acc) [] rest
        | _ -> go acc (s :: cur) rest)
  in
  go [] [] body

let shrink_spmd (p : Ast.program) : Ast.program Seq.t =
  match p.Ast.procs with
  | [ main ] ->
      let rebuild body =
        Ast.renumber { p with Ast.procs = [ { main with Ast.body = body } ] }
      in
      let segs = split_segments main.Ast.body in
      let nsegs = List.length segs in
      let seg_removals =
        if nsegs <= 1 then Seq.empty
        else
          Seq.init nsegs (fun i ->
              rebuild (List.concat (List.filteri (fun j _ -> j <> i) segs)))
      in
      Seq.append seg_removals (Seq.map rebuild (block_shrinks main.Ast.body))
  | _ -> Seq.empty
