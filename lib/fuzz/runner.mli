(** The fuzzing loop: generate SPMD programs, run the seven-oracle battery
    ({!Oracle.run_all}), shrink any failure with {!Gen.shrink_spmd}, and
    persist shrunk counterexamples to a {!Corpus} directory.

    A campaign is deterministic in its master seed: one [Random.State.t]
    drives generation, and machine geometry / node count / generator
    configuration cycle by iteration index, so re-running with the same
    seed reproduces the same programs on the same machines. Every fourth
    program is generated with {!Gen.config.racy} set, exercising the race
    oracle's racy direction; the rest are DRF-by-construction and run
    with [~expect_race_free] so the detector must prove them race-free
    (soundness in both directions). *)

type config = {
  seed : int;
  budget_s : float;  (** wall-clock budget for the whole campaign *)
  max_programs : int;  (** stop after this many programs; 0 = budget only *)
  nodes : int;  (** largest machine to cycle through *)
  protocols : Memsys.Protocol_id.t list;
      (** coherence backends to rotate: every generated program runs the
          whole battery once per backend, and a counterexample records
          the backend it reproduced under ([[default]] when unset) *)
  corpus_dir : string option;  (** persist shrunk counterexamples here *)
  per_program_budget_s : float;  (** oracle budget per program *)
  shrink_fuel : int;  (** oracle re-runs allowed while shrinking *)
  log : string -> unit;  (** progress sink (e.g. [print_endline]) *)
}

val default : config
(** Seed 0, 60 s budget, machines up to 4 nodes, no corpus directory. *)

type failure = {
  oracle : string;
  detail : string;
  program : Lang.Ast.program;  (** shrunk *)
  original : Lang.Ast.program;
  machine : Wwt.Machine.t;
  path : string option;  (** corpus file, when a corpus_dir was given *)
}

type stats = {
  programs : int;
  skips : int;  (** programs on which every oracle skipped *)
  failures : failure list;
  elapsed_s : float;
}

val machine_for : nodes:int -> index:int -> Wwt.Machine.t
(** The machine used at a given iteration index: cache geometry (including
    a non-power-of-two 24-set 3-way configuration) and node count cycle
    independently, capped at [nodes]. *)

val shrink :
  ?expect_race_free:bool ->
  machine:Wwt.Machine.t ->
  budget_s:float ->
  fuel:int ->
  oracle:string ->
  Lang.Ast.program ->
  Lang.Ast.program
(** Greedy shrink: repeatedly take the first {!Gen.shrink_spmd} candidate
    on which [oracle] still fails, spending at most [fuel] oracle
    re-runs. [expect_race_free] (default [false]) is forwarded to
    {!Oracle.run_all} and must match what the original failing run
    used. *)

val run : config -> stats
val pp_stats : Format.formatter -> stats -> unit
