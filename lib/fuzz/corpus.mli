(** Counterexample corpus.

    A corpus entry is a [.cico] source file whose leading [//] comment
    lines record the failing oracle, the machine's node count, the fuzzer
    seed and a one-line failure description. The lexer skips [//]
    comments, so a corpus file feeds straight into [Lang.Parser.parse] —
    both for deterministic regression replay in the test suite and for
    [cachier_fuzz --replay]. *)

type entry = {
  oracle : string;
  detail : string;
  seed : int;
  nodes : int;
  protocol : Memsys.Protocol_id.t;
      (** coherence backend the failure reproduced under; [dir1sw] for
          entries written before protocol rotation *)
  source : string;
}

val render : entry -> string
val filename : entry -> string
(** Content-derived name, [<oracle>-<protocol>-<hash>.cico], so
    re-finding the same shrunk counterexample overwrites rather than
    accumulates, and each backend keeps its own corpus. *)

val save : dir:string -> entry -> string
(** Write the entry (creating [dir] if needed); returns the path. *)

val load : string -> entry
val load_dir : string -> (string * entry) list
(** All [.cico] entries in a directory, sorted by filename; empty if the
    directory does not exist. *)
