(* Counterexample corpus: shrunk failing programs persisted as .cico
   source files with a machine-readable `//` header. The lexer treats
   `//` lines as comments, so a corpus file parses as-is; the header
   records which oracle failed, under what machine, and from which fuzzer
   seed, so the failure replays deterministically. *)

type entry = {
  oracle : string;
  detail : string;
  seed : int;
  nodes : int;
  protocol : Memsys.Protocol_id.t;
  source : string;
}

let one_line s =
  String.map (function '\n' | '\r' -> ' ' | c -> c) s

let render e =
  Printf.sprintf
    "// cachier_fuzz counterexample\n\
     // oracle: %s\n\
     // nodes: %d\n\
     // protocol: %s\n\
     // seed: %d\n\
     // detail: %s\n\
     %s"
    e.oracle e.nodes
    (Memsys.Protocol_id.to_string e.protocol)
    e.seed (one_line e.detail) e.source

(* Per-protocol corpora: the backend joins the name, so the same shrunk
   program failing under two protocols keeps both counterexamples. *)
let filename e =
  Printf.sprintf "%s-%s-%04x.cico" e.oracle
    (Memsys.Protocol_id.to_string e.protocol)
    (Hashtbl.hash e.source land 0xffff)

let rec mkdir_p dir =
  if dir <> "/" && dir <> "." && dir <> "" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let save ~dir e =
  mkdir_p dir;
  let path = Filename.concat dir (filename e) in
  let oc = open_out path in
  output_string oc (render e);
  close_out oc;
  path

(* ---- loading ---- *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let header_value line key =
  let prefix = "// " ^ key ^ ": " in
  if String.length line >= String.length prefix
     && String.sub line 0 (String.length prefix) = prefix
  then Some (String.sub line (String.length prefix)
               (String.length line - String.length prefix))
  else None

let load path =
  let text = read_file path in
  let lines = String.split_on_char '\n' text in
  let is_header l = String.length l >= 2 && String.sub l 0 2 = "//" in
  let rec split hdr = function
    | l :: rest when is_header l -> split (l :: hdr) rest
    | rest -> (List.rev hdr, rest)
  in
  let header, body = split [] lines in
  let field key default =
    List.find_map (fun l -> header_value l key) header
    |> Option.value ~default
  in
  let int_field key default =
    match int_of_string_opt (field key "") with Some n -> n | None -> default
  in
  {
    oracle = field "oracle" "unknown";
    detail = field "detail" "";
    seed = int_field "seed" 0;
    nodes = int_field "nodes" 4;
    protocol =
      Option.value ~default:Memsys.Protocol_id.default
        (Memsys.Protocol_id.of_string (field "protocol" "dir1sw"));
    source = String.concat "\n" body;
  }

let load_dir dir =
  if not (Sys.file_exists dir) then []
  else
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".cico")
    |> List.sort String.compare
    |> List.map (fun f ->
           let path = Filename.concat dir f in
           (path, load path))
