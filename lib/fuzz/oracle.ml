(* The seven differential-testing oracles.

   Every generated program is pushed through:

   1. engines       — the tree-walking, closure-compiling and parallel
                      (2-domain quantum-synchronized) engines must agree
                      exactly (time, stats, trace, output, memory)
                      on the program and on its annotated variants;
   2. semantics     — annotating never changes results: the original, the
                      program with its random directives executed, and
                      the Performance- and Programmer-CICO annotated
                      variants all print the same per-node output and
                      leave the same final shared memory;
   3. idempotence   — re-annotating an annotated program with the same
                      trace is a fixpoint of the pretty-printed source;
   4. protocol      — no run may trip the active coherence backend's
                      directory/cache invariant audit
                      (Machine.debug_protocol); which backend runs is
                      the machine's [protocol] field, so a rotating
                      campaign audits Dir1SW, SiSd and Commute alike;
   5. equations     — Performance CICO's annotation sets are a subset of
                      Programmer CICO's for every epoch and node, and the
                      Section 2/5 cost-model closed forms are
                      non-negative;
   6. races         — the streaming race detector (Races.detect, packed
                      representation) agrees with the naive decompressed
                      reference (Races.naive); a DRF-by-construction
                      program (~expect_race_free) is proven race-free;
                      and every race the detector finds is classified
                      DRFS-unsafe by the paper's per-epoch predicate in
                      that epoch, so Performance mode only ever hands
                      racy data the conservative filter_drfs annotations
                      — i.e. a proven-racy program never receives
                      semantics-changing Performance annotations;
   7. delta         — a deterministic single-token edit served by the
                      incremental engine (Delta.Engine.annotate_delta)
                      produces byte-identical annotated source, an equal
                      report and equal epoch info to a from-scratch
                      annotation of the edited text; when either path
                      rejects the edited program, both must reject it
                      with the same class of error.

   Output comparison for oracle 2 is per node: annotations legitimately
   change timing, and timing changes the global interleaving of print
   lines across nodes, but never a single node's own output sequence.
   That only holds for data-race-free programs — when oracle 6's trusted
   reference proves the program racy, oracle 2 skips (a race means even a
   single node's values are timing-dependent). All value comparisons use
   [Stdlib.compare] so NaN equals itself.

   Protocol rotation: the machine's [protocol] backend governs every
   execution, measurement and invariant audit, but the trace that feeds
   annotation and race detection is always collected under the reference
   Dir1SW backend. Dir1SW's write faults surface every cross-node
   conflicting access in the miss log; SiSd's local write upgrades and
   Commute's privatized accumulations hide conflicts by design, so a
   rotated-protocol trace cannot serve as a race-visibility oracle. *)

type verdict = Pass | Skip of string | Fail of string

type report = {
  engines : verdict;
  semantics : verdict;
  idempotence : verdict;
  protocol : verdict;
  equations : verdict;
  races : verdict;
  delta : verdict;
}

let names =
  [
    "engines"; "semantics"; "idempotence"; "protocol"; "equations"; "races";
    "delta";
  ]

let to_list r =
  [
    ("engines", r.engines);
    ("semantics", r.semantics);
    ("idempotence", r.idempotence);
    ("protocol", r.protocol);
    ("equations", r.equations);
    ("races", r.races);
    ("delta", r.delta);
  ]

let first_failure r =
  List.find_map
    (fun (n, v) -> match v with Fail d -> Some (n, d) | _ -> None)
    (to_list r)

let pp_verdict ppf = function
  | Pass -> Format.fprintf ppf "pass"
  | Skip m -> Format.fprintf ppf "skip (%s)" m
  | Fail m -> Format.fprintf ppf "FAIL: %s" m

let pp ppf r =
  List.iter
    (fun (n, v) -> Format.fprintf ppf "%-12s %a@." n pp_verdict v)
    (to_list r)

(* ---- running programs, classifying how they stop ---- *)

type run_result =
  | Done of Wwt.Interp.outcome
  | Runtime of string
  | Deadlock of string
  | Violation of string
  | Timeout

let describe = function
  | Done _ -> "completed"
  | Runtime m -> "runtime error (" ^ m ^ ")"
  | Deadlock m -> "deadlock (" ^ m ^ ")"
  | Violation m -> "protocol violation (" ^ m ^ ")"
  | Timeout -> "timeout"

let classify f =
  match f () with
  | o -> Done o
  | exception Wwt.Interp.Runtime_error m -> Runtime m
  | exception Wwt.Sched.Deadlock m -> Deadlock m
  | exception Memsys.Protocol.Invariant_violation m -> Violation m
  | exception Wwt.Sched.Cancelled _ -> Timeout

(* ---- comparisons ---- *)

(* Full outcome equality for the engine oracle. [compare] (not [=]) so a
   NaN a program computed equals the same NaN from the other engine. *)
let outcome_mismatch (a : Wwt.Interp.outcome) (b : Wwt.Interp.outcome) =
  if a.Wwt.Interp.time <> b.Wwt.Interp.time then Some "simulated time"
  else if compare a.Wwt.Interp.stats b.Wwt.Interp.stats <> 0 then Some "stats"
  else if compare a.Wwt.Interp.trace b.Wwt.Interp.trace <> 0 then Some "trace"
  else if compare a.Wwt.Interp.output b.Wwt.Interp.output <> 0 then Some "output"
  else if compare a.Wwt.Interp.shared b.Wwt.Interp.shared <> 0 then
    Some "final shared memory"
  else None

(* Semantic signature: per-node output sequences + final shared memory.
   Print lines look like "p<node>: ...". *)
let node_of_line line =
  if String.length line > 1 && line.[0] = 'p' then
    match String.index_opt line ':' with
    | Some i -> ( try int_of_string (String.sub line 1 (i - 1)) with _ -> -1)
    | None -> -1
  else -1

let signature ~nodes (o : Wwt.Interp.outcome) =
  let per = Array.make (nodes + 1) [] in
  List.iter
    (fun line ->
      let n = node_of_line line in
      let slot = if n >= 0 && n < nodes then n else nodes in
      per.(slot) <- line :: per.(slot))
    o.Wwt.Interp.output;
  (Array.map List.rev per, o.Wwt.Interp.shared)

let same_signature ~nodes a b =
  compare (signature ~nodes a) (signature ~nodes b) = 0

(* ---- the oracle battery ---- *)

let perf_options =
  {
    Cachier.Placement.mode = Cachier.Equations.Performance;
    prefetch = true;
    capacity_fraction = 0.5;
  }

let prog_options =
  {
    Cachier.Placement.mode = Cachier.Equations.Programmer;
    prefetch = false;
    capacity_fraction = 0.5;
  }

let subset_mismatch einfo =
  let perf = Cachier.Equations.all Cachier.Equations.Performance einfo in
  let prog = Cachier.Equations.all Cachier.Equations.Programmer einfo in
  let bad = ref None in
  Array.iteri
    (fun e row ->
      Array.iteri
        (fun n (pf : Cachier.Equations.annots) ->
          if !bad = None then begin
            let pg : Cachier.Equations.annots = prog.(e).(n) in
            let module I = Cachier.Equations.Iset in
            let check name a b =
              if !bad = None && not (I.subset a b) then
                bad :=
                  Some
                    (Printf.sprintf
                       "epoch %d node %d: Performance %s not a subset of \
                        Programmer's (%d extra blocks)"
                       e n name
                       (I.cardinal (I.diff a b)))
            in
            check "co_x" pf.Cachier.Equations.co_x pg.Cachier.Equations.co_x;
            check "co_s" pf.Cachier.Equations.co_s pg.Cachier.Equations.co_s;
            check "ci" pf.Cachier.Equations.ci pg.Cachier.Equations.ci
          end)
        row)
    perf;
  !bad

let cost_model_mismatch ~machine (annotated_stats : Memsys.Stats.t option) =
  let jacobi = { Cico.Cost_model.n = 64; p = 2; b = 4; t = 3 } in
  let matmul = { Cico.Cost_model.mm_n = 8; mm_p = 2 } in
  let negative =
    List.find_opt
      (fun (_, v) -> v < 0.0 || Float.is_nan v)
      (Cico.Cost_model.closed_forms ~jacobi ~matmul)
  in
  match negative with
  | Some (name, v) -> Some (Printf.sprintf "closed form %s is %g" name v)
  | None -> (
      match annotated_stats with
      | None -> None
      | Some stats ->
          let cycles =
            Cico.Cost_model.communication_cycles
              ~costs:machine.Wwt.Machine.costs
              ~check_out_blocks:(Cico.Cost_model.measured_checkouts stats)
              ~check_in_blocks:stats.Memsys.Stats.check_ins ~upgrades_avoided:0
          in
          if cycles < 0 then
            Some
              (Printf.sprintf
                 "communication_cycles is %d for %d check-outs / %d check-ins \
                  with no upgrade credit"
                 cycles
                 (Cico.Cost_model.measured_checkouts stats)
                 stats.Memsys.Stats.check_ins)
          else None)

let run_all ?(budget_s = 5.0) ?(expect_race_free = false) ~machine
    (p : Lang.Ast.program) : report =
  let machine = { machine with Wwt.Machine.debug_protocol = true } in
  let nodes = machine.Wwt.Machine.nodes in
  let deadline = Unix.gettimeofday () +. budget_s in
  let tick = ref 0 in
  let poll () =
    incr tick;
    if !tick land 4095 = 0 && Unix.gettimeofday () > deadline then
      raise (Wwt.Sched.Cancelled "fuzz oracle budget exhausted")
  in
  match Lang.Sema.check p with
  | exception Lang.Sema.Error m ->
      let s = Skip ("sema rejects the program: " ^ m) in
      {
        engines = s;
        semantics = s;
        idempotence = s;
        protocol = s;
        equations = s;
        races = s;
        delta = s;
      }
  | _ ->
      let violations = ref [] in
      let completed = ref false in
      let note r =
        (match r with
        | Violation m -> violations := m :: !violations
        | Done _ -> completed := true
        | _ -> ());
        r
      in
      let trace_on machine engine prog =
        note (classify (fun () -> Wwt.Run.collect_trace ~poll ~engine ~machine prog))
      in
      let trace engine prog = trace_on machine engine prog in
      let measure engine ~annotations ~prefetch prog =
        note
          (classify (fun () ->
               Wwt.Run.measure ~poll ~engine ~machine ~annotations ~prefetch prog))
      in
      (* -- the program itself, all three engines, all three modes -- *)
      let runs_t0 = Obs.start () in
      let par = Wwt.Run.Par 2 in
      let tw_tr = trace Wwt.Run.Tree_walk p in
      let co_tr = trace Wwt.Run.Compiled p in
      let pa_tr = trace par p in
      (* Annotation and race visibility are defined over the reference
         directory protocol's miss log: Dir1SW surfaces every cross-node
         conflicting access as a fault, while SiSd's local write upgrades
         and Commute's privatized accumulations legitimately hide
         conflicts from the packed trace (that invisibility is why
         self-invalidation protocols require DRF in the first place). The
         rotated backend still governs every execution, measurement and
         invariant audit below. *)
      let ref_tr =
        if machine.Wwt.Machine.protocol = Memsys.Protocol_id.Dir1sw then co_tr
        else
          trace_on
            { machine with Wwt.Machine.protocol = Memsys.Protocol_id.Dir1sw }
            Wwt.Run.Compiled p
      in
      let tw_pf = measure Wwt.Run.Tree_walk ~annotations:false ~prefetch:false p in
      let co_pf = measure Wwt.Run.Compiled ~annotations:false ~prefetch:false p in
      let pa_pf = measure par ~annotations:false ~prefetch:false p in
      let tw_pa = measure Wwt.Run.Tree_walk ~annotations:true ~prefetch:true p in
      let co_pa = measure Wwt.Run.Compiled ~annotations:true ~prefetch:true p in
      let pa_pa = measure par ~annotations:true ~prefetch:true p in
      (* -- annotated variants (need a trace and an annotator that ran) -- *)
      let annotate options =
        match ref_tr with
        | Done tr -> (
            match
              Cachier.Annotate.annotate_with_trace ~machine ~options p
                tr.Wwt.Interp.trace
            with
            | r -> Ok (Some r)
            | exception e -> Error (Printexc.to_string e))
        | _ -> Ok None
      in
      let perf_r = annotate perf_options in
      let prog_r = annotate prog_options in
      let annotated_runs =
        List.concat_map
          (fun (label, r) ->
            match r with
            | Ok (Some res) ->
                let prog = res.Cachier.Annotate.annotated in
                [
                  ( label,
                    measure Wwt.Run.Tree_walk ~annotations:true ~prefetch:true prog,
                    measure Wwt.Run.Compiled ~annotations:true ~prefetch:true prog,
                    measure par ~annotations:true ~prefetch:true prog );
                ]
            | _ -> [])
          [ ("Performance-annotated", perf_r); ("Programmer-annotated", prog_r) ]
      in
      Obs.finish "fuzz.runs" runs_t0;
      (* -- oracle 6: streaming race detection. Computed up front because
         oracle 2 consults the trusted (naive) verdict: a racy program's
         per-node results are legitimately timing-dependent, so the
         semantics oracle must not treat their drift as a counterexample.
         Three checks: (a) the streaming detector over the re-packed
         trace agrees with the naive decompressed reference; (b) a
         program the generator promises is DRF-by-construction is proven
         race-free; (c) every detected race is classified DRFS-unsafe by
         the paper's per-epoch predicate for that epoch — by the
         Equations construction that confines racy data to the
         conservative filter_drfs annotations, so a proven-racy program
         never receives semantics-changing Performance annotations. -- *)
      let races, proven_racy =
        Obs.span "fuzz.oracle.races" @@ fun () ->
        match ref_tr with
        | Done tr -> (
            let records = tr.Wwt.Interp.trace in
            match
              ( Races.detect_records ~nodes records,
                Races.naive ~nodes records )
            with
            | exception e ->
                (Fail ("race detector raised " ^ Printexc.to_string e), false)
            | streaming, reference ->
                let proven_racy = Races.racy reference in
                if not (Races.verdict_equal streaming reference) then
                  ( Fail
                      (Printf.sprintf
                         "streaming detector disagrees with the naive \
                          reference (streaming: %d racy addrs over %d \
                          epochs; reference: %d racy addrs over %d epochs)"
                         (List.length streaming.Races.racy_addrs)
                         streaming.Races.epochs
                         (List.length reference.Races.racy_addrs)
                         reference.Races.epochs),
                    proven_racy )
                else if expect_race_free && Races.racy streaming then
                  let r = List.hd streaming.Races.races in
                  ( Fail
                      (Printf.sprintf
                         "DRF-by-construction program proven racy: addr %d \
                          in epoch %d (node %d pc %d vs node %d pc %d)"
                         r.Races.r_addr r.Races.r_epoch
                         r.Races.r_first.Races.a_node
                         r.Races.r_first.Races.a_pc
                         r.Races.r_second.Races.a_node
                         r.Races.r_second.Races.a_pc),
                    proven_racy )
                else
                  let drfs_miss =
                    match
                      Cachier.Epoch_info.build ~nodes
                        ~block_size:machine.Wwt.Machine.block_size records
                    with
                    | einfo ->
                        List.find_opt
                          (fun (r : Races.race) ->
                            r.Races.r_epoch
                            < Array.length einfo.Cachier.Epoch_info.drfs
                            && not
                                 (Cachier.Drfs.in_race
                                    einfo.Cachier.Epoch_info.drfs.(r.Races
                                                                   .r_epoch)
                                    r.Races.r_addr))
                          streaming.Races.races
                    | exception _ -> None (* oracle 5 reports this *)
                  in
                  (match drfs_miss with
                  | Some r ->
                      ( Fail
                          (Printf.sprintf
                             "addr %d races in epoch %d but the DRFS \
                              predicate calls it race-free there — \
                              Performance mode would annotate racy data"
                             r.Races.r_addr r.Races.r_epoch),
                        proven_racy )
                  | None -> (Pass, proven_racy)))
        | r -> (Skip ("trace collection: " ^ describe r), false)
      in
      (* -- oracle 1: three-way engine equivalence. The tree-walk /
         compiled pairs catch compiler bugs; the compiled / par pairs
         catch record-replay bugs. Comparing both against compiled keeps
         the failure messages pointed at the odd engine out. -- *)
      let engine_pairs =
        [
          ("trace mode", "tree-walk", tw_tr, "compiled", co_tr);
          ("trace mode", "compiled", co_tr, "par", pa_tr);
          ("perf mode", "tree-walk", tw_pf, "compiled", co_pf);
          ("perf mode", "compiled", co_pf, "par", pa_pf);
          ("perf mode with directives", "tree-walk", tw_pa, "compiled", co_pa);
          ("perf mode with directives", "compiled", co_pa, "par", pa_pa);
        ]
        @ List.concat_map
            (fun (l, tw, co, pa) ->
              [
                (l ^ " perf mode", "tree-walk", tw, "compiled", co);
                (l ^ " perf mode", "compiled", co, "par", pa);
              ])
            annotated_runs
      in
      let engines =
        Obs.span "fuzz.oracle.engines" @@ fun () ->
        List.fold_left
          (fun acc (name, la, a, lb, b) ->
            match acc with
            | Fail _ -> acc
            | _ -> (
                match (a, b) with
                | Done x, Done y -> (
                    match outcome_mismatch x y with
                    | None -> acc
                    | Some field ->
                        Fail
                          (Printf.sprintf "%s: %s and %s disagree on %s" name
                             la lb field))
                | Runtime _, Runtime _ | Deadlock _, Deadlock _ -> acc
                | Timeout, _ | _, Timeout -> acc
                | Violation _, _ | _, Violation _ -> acc
                | a, b ->
                    Fail
                      (Printf.sprintf "%s: %s %s but %s %s" name la
                         (describe a) lb (describe b))))
          Pass engine_pairs
      in
      (* -- oracle 2: annotations preserve semantics -- *)
      let semantics =
        Obs.span "fuzz.oracle.semantics" @@ fun () ->
        if proven_racy then
          Skip "program proven racy: per-node results are timing-dependent"
        else
        match co_pf with
        | Done base ->
            let variants =
              (("program with its own directives executed", co_pa)
              :: List.map (fun (l, _, co, _) -> (l, co)) annotated_runs)
            in
            let annot_error =
              List.find_map
                (fun (l, r) ->
                  match r with Error e -> Some (l, e) | Ok _ -> None)
                [ ("Performance", perf_r); ("Programmer", prog_r) ]
            in
            (match annot_error with
            | Some (l, e) -> Fail (Printf.sprintf "%s annotator raised %s" l e)
            | None ->
                List.fold_left
                  (fun acc (label, r) ->
                    match acc with
                    | Fail _ -> acc
                    | _ -> (
                        match r with
                        | Done o ->
                            if same_signature ~nodes base o then acc
                            else
                              Fail
                                (label
                                 ^ " changes per-node output or final shared \
                                    memory")
                        | Timeout -> acc
                        | Violation _ -> acc
                        | r ->
                            Fail
                              (Printf.sprintf "%s: baseline completed but %s"
                                 label (describe r))))
                  Pass variants)
        | Timeout -> Skip "baseline run timed out"
        | Violation _ -> Skip "baseline run tripped the protocol audit"
        | r -> Skip ("baseline run: " ^ describe r)
      in
      (* -- oracle 3: annotation is a fixpoint -- *)
      let idempotence =
        Obs.span "fuzz.oracle.idempotence" @@ fun () ->
        match ref_tr with
        | Done tr ->
            let fixpoint label options r =
              match r with
              | Ok (Some res) -> (
                  let once = res.Cachier.Annotate.annotated in
                  match
                    Cachier.Annotate.annotate_with_trace ~machine ~options once
                      tr.Wwt.Interp.trace
                  with
                  | res2 ->
                      let s1 = Lang.Pretty.program_to_string once in
                      let s2 =
                        Lang.Pretty.program_to_string
                          res2.Cachier.Annotate.annotated
                      in
                      if String.equal s1 s2 then Ok ()
                      else Error (label ^ " re-annotation is not a fixpoint")
                  | exception e ->
                      Error
                        (Printf.sprintf "%s re-annotation raised %s" label
                           (Printexc.to_string e)))
              | Ok None -> Ok ()
              | Error e -> Error (label ^ " annotator raised " ^ e)
            in
            let combine = function
              | Error e -> Fail e
              | Ok () -> Pass
            in
            (match fixpoint "Performance" perf_options perf_r with
            | Error e -> Fail e
            | Ok () -> combine (fixpoint "Programmer" prog_options prog_r))
        | r -> Skip ("trace collection: " ^ describe r)
      in
      (* -- oracle 4: protocol invariants (active backend's audit) -- *)
      let protocol =
        Obs.span "fuzz.oracle.protocol" @@ fun () ->
        match !violations with
        | m :: _ -> Fail m
        | [] -> if !completed then Pass else Skip "no run completed"
      in
      (* -- oracle 5: equation and cost-model sanity -- *)
      let equations =
        Obs.span "fuzz.oracle.equations" @@ fun () ->
        match ref_tr with
        | Done tr -> (
            match
              Cachier.Epoch_info.build ~nodes ~block_size:machine.Wwt.Machine.block_size
                tr.Wwt.Interp.trace
            with
            | einfo -> (
                match subset_mismatch einfo with
                | Some m -> Fail m
                | None -> (
                    let annotated_stats =
                      List.find_map
                        (fun (_, _, co, _) ->
                          match co with
                          | Done o -> Some o.Wwt.Interp.stats
                          | _ -> None)
                        annotated_runs
                    in
                    match cost_model_mismatch ~machine annotated_stats with
                    | Some m -> Fail m
                    | None -> Pass))
            | exception e ->
                Fail ("trace assimilation raised " ^ Printexc.to_string e))
        | r -> Skip ("trace collection: " ^ describe r)
      in
      (* -- oracle 7: incremental re-annotation. A deterministic
         single-token edit of the pretty-printed source is served once by
         the delta engine and once from scratch; the annotated source
         must be byte-identical and the report and epoch info equal. The
         candidate index is hashed from the source, so a campaign replays
         exactly; the edit's value is irrelevant to the engine's
         reuse-vs-resim decision, which depends only on the span's
         position — both branches are exercised across a campaign. -- *)
      let delta =
        Obs.span "fuzz.oracle.delta" @@ fun () ->
        match co_tr with
        | Done _ -> (
            let source = Lang.Pretty.program_to_string p in
            match Delta.Splice.int_literals source with
            | [] -> Skip "no int-literal edit candidates"
            | exception e ->
                Fail ("edit enumeration raised " ^ Printexc.to_string e)
            | lits -> (
                let span, v =
                  List.nth lits (Hashtbl.hash source mod List.length lits)
                in
                let text = string_of_int (v + 1) in
                let edited = Delta.Splice.apply_edit source span text in
                let attempt f =
                  match f () with v -> Ok v | exception e -> Error e
                in
                let exn_class = function
                  | Wwt.Interp.Runtime_error _ -> "runtime error"
                  | Wwt.Sched.Deadlock _ -> "deadlock"
                  | Memsys.Protocol.Invariant_violation _ ->
                      "protocol violation"
                  | Lang.Sema.Error _ -> "sema error"
                  | Lang.Parser.Error _ -> "parse error"
                  | e -> Printexc.to_string e
                in
                let cold =
                  attempt (fun () ->
                      let ep = Lang.Parser.parse edited in
                      ignore (Lang.Sema.check ep);
                      let tr = Wwt.Run.collect_trace ~machine ep in
                      Cachier.Annotate.annotate_with_trace ~machine
                        ~options:perf_options ep tr.Wwt.Interp.trace)
                in
                let incr_ =
                  attempt (fun () ->
                      let dag = Delta.Dag.create () in
                      (Delta.Engine.annotate_delta ~dag ~machine
                         ~options:perf_options ~base:source span text)
                        .Delta.Engine.result)
                in
                match (cold, incr_) with
                | Ok c, Ok d ->
                    if
                      not
                        (String.equal
                           (Cachier.Annotate.to_source c)
                           (Cachier.Annotate.to_source d))
                    then Fail "delta output differs from from-scratch"
                    else if
                      compare c.Cachier.Annotate.report
                        d.Cachier.Annotate.report
                      <> 0
                    then Fail "delta report differs from from-scratch"
                    else if
                      compare c.Cachier.Annotate.einfo
                        d.Cachier.Annotate.einfo
                      <> 0
                    then Fail "delta epoch info differs from from-scratch"
                    else Pass
                | Error a, Error b ->
                    if String.equal (exn_class a) (exn_class b) then Pass
                    else
                      Fail
                        (Printf.sprintf
                           "paths reject differently: from-scratch %s, delta \
                            %s"
                           (exn_class a) (exn_class b))
                | Ok _, Error e ->
                    Fail
                      ("delta raised but from-scratch succeeded: "
                      ^ exn_class e)
                | Error e, Ok _ ->
                    Fail
                      ("from-scratch raised but delta succeeded: "
                      ^ exn_class e)))
        | r -> Skip ("trace collection: " ^ describe r)
      in
      { engines; semantics; idempotence; protocol; equations; races; delta }
