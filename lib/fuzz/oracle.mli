(** The seven differential-testing oracles.

    {ol
    {- [engines] — the tree-walking and closure-compiling engines agree
       exactly (time, stats, trace, output, final memory) on the program
       and its annotated variants;}
    {- [semantics] — annotating never changes results: per-node output and
       final shared memory are identical with and without CICO
       annotations, in both Performance and Programmer mode;}
    {- [idempotence] — re-annotating an annotated program with the same
       trace reproduces the same source (fixpoint);}
    {- [protocol] — no run trips the invariant audit of the machine's
       coherence backend — Dir1SW, SiSd or Commute, per
       [Machine.protocol] — ({!Memsys.Protocol.check_invariants},
       enabled through [Machine.debug_protocol]);}
    {- [equations] — Performance CICO's sets are a subset of Programmer
       CICO's for every epoch and node, and the cost-model closed forms
       are non-negative;}
    {- [races] — the streaming race detector over the packed trace
       ({!Races.detect}) agrees with the naive decompressed reference
       ({!Races.naive}); a DRF-by-construction program is proven
       race-free when the caller promises one ([~expect_race_free]); and
       every detected race is classified DRFS-unsafe by the paper's
       per-epoch predicate in its epoch, which confines racy data to the
       conservative annotations — a proven-racy program never receives
       semantics-changing Performance CICO;}
    {- [delta] — a deterministic single-token edit of the program served
       by the incremental engine ({!Delta.Engine.annotate_delta}) yields
       byte-identical annotated source, an equal report and equal epoch
       info to a from-scratch annotation of the edited text; if either
       path rejects the edited program, both must reject with the same
       error class.}} *)

type verdict =
  | Pass
  | Skip of string
      (** the oracle did not apply — e.g. the program fails sema, or the
          baseline run hit a runtime error; not a counterexample *)
  | Fail of string  (** a real counterexample *)

type report = {
  engines : verdict;
  semantics : verdict;
  idempotence : verdict;
  protocol : verdict;
  equations : verdict;
  races : verdict;
  delta : verdict;
}

val names : string list
(** Oracle names, report order: ["engines"; "semantics"; "idempotence";
    "protocol"; "equations"; "races"; "delta"]. *)

val to_list : report -> (string * verdict) list
val first_failure : report -> (string * string) option

val run_all :
  ?budget_s:float ->
  ?expect_race_free:bool ->
  machine:Wwt.Machine.t ->
  Lang.Ast.program ->
  report
(** Run every oracle on one program. All simulations run with
    [debug_protocol] forced on and are cancelled (and the affected
    oracles skipped) once [budget_s] wall-clock seconds have passed, so a
    shrink candidate with a pathological loop cannot stall the fuzzer.
    [expect_race_free] (default [false]) makes the races oracle fail if
    the detector proves the program racy — pass it for
    DRF-by-construction generator output, never for {!Gen.config.racy}
    programs.

    The machine's [protocol] backend (Dir1SW, SiSd or Commute) governs
    every execution, measurement and invariant audit; the trace feeding
    annotation and race detection is always collected under the reference
    Dir1SW backend, whose write faults surface every cross-node conflict
    in the miss log (SiSd and Commute hide conflicts by design). *)

val pp : Format.formatter -> report -> unit
val pp_verdict : Format.formatter -> verdict -> unit
