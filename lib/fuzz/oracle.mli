(** The five differential-testing oracles.

    {ol
    {- [engines] — the tree-walking and closure-compiling engines agree
       exactly (time, stats, trace, output, final memory) on the program
       and its annotated variants;}
    {- [semantics] — annotating never changes results: per-node output and
       final shared memory are identical with and without CICO
       annotations, in both Performance and Programmer mode;}
    {- [idempotence] — re-annotating an annotated program with the same
       trace reproduces the same source (fixpoint);}
    {- [protocol] — no run trips the Dir1SW invariant audit
       ({!Memsys.Protocol.check_invariants}, enabled through
       [Machine.debug_protocol]);}
    {- [equations] — Performance CICO's sets are a subset of Programmer
       CICO's for every epoch and node, and the cost-model closed forms
       are non-negative.}} *)

type verdict =
  | Pass
  | Skip of string
      (** the oracle did not apply — e.g. the program fails sema, or the
          baseline run hit a runtime error; not a counterexample *)
  | Fail of string  (** a real counterexample *)

type report = {
  engines : verdict;
  semantics : verdict;
  idempotence : verdict;
  protocol : verdict;
  equations : verdict;
}

val names : string list
(** Oracle names, report order: ["engines"; "semantics"; "idempotence";
    "protocol"; "equations"]. *)

val to_list : report -> (string * verdict) list
val first_failure : report -> (string * string) option

val run_all :
  ?budget_s:float -> machine:Wwt.Machine.t -> Lang.Ast.program -> report
(** Run every oracle on one program. All simulations run with
    [debug_protocol] forced on and are cancelled (and the affected
    oracles skipped) once [budget_s] wall-clock seconds have passed, so a
    shrink candidate with a pathological loop cannot stall the fuzzer. *)

val pp : Format.formatter -> report -> unit
val pp_verdict : Format.formatter -> verdict -> unit
