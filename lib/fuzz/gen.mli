(** Random program generation for the differential fuzzer.

    Generators are plain functions of a [Random.State.t] — the same shape
    as [QCheck.Gen.t] — so the qcheck property suites can lift any
    generator here with [QCheck.make] while the fuzzer itself needs no
    qcheck dependency. *)

type 'a t = Random.State.t -> 'a

val int_range : int -> int -> int t
(** [int_range lo hi] draws uniformly from the inclusive range. *)

val oneof : 'a array -> 'a t

(** {2 Free-form generators}

    Unconstrained ASTs for the printer / parser / sema round-trip
    properties. Most of them fail to run (out-of-bounds indices,
    undefined scalars), which is the point: they probe the front end. *)

val free_expr : Lang.Ast.expr t
val free_stmt : Lang.Ast.stmt t
val free_program : Lang.Ast.program t

(** {2 Well-formed SPMD programs}

    Programs from {!spmd} pass [Sema.check] and run to completion, and
    are data-race-free by construction: barrier-delimited segments either
    write only the running node's own chunk of [A], read shared data
    without writing it, or accumulate integer contributions into [B]
    under a common lock. DRF is what makes the fuzzer's oracles sound —
    annotations and engine choice change {e timing}, and only DRF
    programs are value-deterministic under timing changes. *)

type config = {
  shared_elems : int;  (** elements in each of the shared arrays A and B *)
  private_elems : int;  (** elements in the private array P *)
  max_segments : int;  (** barrier-delimited phases per program *)
  max_stmts : int;  (** statements per segment *)
  max_depth : int;  (** expression depth *)
  annotations : bool;  (** sprinkle random CICO directives *)
  racy : bool;
      (** deliberately break the DRF discipline with unsynchronized
          shared writes at unconstrained indices (default [false]).
          Exercises the race oracle's racy direction; such programs must
          not be run with [~expect_race_free]. *)
}

val default_config : config

val spmd : ?config:config -> Lang.Ast.program t

val size_program : Lang.Ast.program -> int
(** AST node count (statements + expressions) — the size the acceptance
    bound on shrunk counterexamples is measured in. *)

val shrink_spmd : Lang.Ast.program -> Lang.Ast.program Seq.t
(** Well-formedness-preserving shrink candidates, most aggressive first:
    whole segments, balanced lock groups (or one level of a reentrant
    hold), single statements, loop-body hoists, then expression
    simplifications. Shared indices keep their
    bounds-respecting wrapper so shrinking never introduces new races or
    out-of-bounds accesses. *)
