(* The fuzzing loop: generate, run the oracle battery, shrink failures,
   persist counterexamples.

   Determinism: one master seed drives a single [Random.State.t] for the
   whole campaign, and machines/generator configurations are cycled by
   iteration index, so a campaign replays exactly from its seed. *)

type config = {
  seed : int;
  budget_s : float;  (** wall-clock budget for the whole campaign *)
  max_programs : int;  (** stop after this many programs; 0 = budget only *)
  nodes : int;  (** largest machine to cycle through *)
  protocols : Memsys.Protocol_id.t list;
      (** coherence backends to rotate; every program runs the battery
          once per backend *)
  corpus_dir : string option;  (** persist shrunk counterexamples here *)
  per_program_budget_s : float;
  shrink_fuel : int;  (** oracle re-runs allowed while shrinking *)
  log : string -> unit;
}

let default =
  {
    seed = 0;
    budget_s = 60.0;
    max_programs = 0;
    nodes = 4;
    protocols = [ Memsys.Protocol_id.default ];
    corpus_dir = None;
    per_program_budget_s = 2.0;
    shrink_fuel = 300;
    log = ignore;
  }

type failure = {
  oracle : string;
  detail : string;
  program : Lang.Ast.program;  (** shrunk *)
  original : Lang.Ast.program;
  machine : Wwt.Machine.t;
  path : string option;  (** corpus file, when a corpus_dir was given *)
}

type stats = {
  programs : int;
  skips : int;  (** programs on which every oracle skipped *)
  failures : failure list;
  elapsed_s : float;
}

(* Machine geometries to cycle through: powers of two, and a 24-set
   3-way configuration so non-power-of-two block counts get coverage. *)
let geometries =
  [| (512, 2, 32); (1024, 4, 32); (768, 3, 32); (256, 1, 32); (2048, 4, 64) |]

let node_cycle = [| 2; 4; 3; 8; 1 |]

let machine_for ~nodes ~index =
  let cache_bytes, assoc, block_size =
    geometries.(index mod Array.length geometries)
  in
  let n = min nodes node_cycle.(index mod Array.length node_cycle) in
  {
    Wwt.Machine.default with
    Wwt.Machine.nodes = max 1 n;
    cache_bytes;
    assoc;
    block_size;
  }

let obs_programs = Obs.Registry.counter "fuzz.programs"

let verdict_for ~oracle report =
  List.assoc_opt oracle (Oracle.to_list report)

let still_fails ?(expect_race_free = false) ~machine ~budget_s ~oracle p =
  match
    verdict_for ~oracle (Oracle.run_all ~budget_s ~expect_race_free ~machine p)
  with
  | Some (Oracle.Fail d) -> Some d
  | _ -> None

(* Greedy shrink: take the first candidate that still fails the same
   oracle, repeat until no candidate does or the fuel (counted in oracle
   re-runs) is gone. [expect_race_free] must match what the failing run
   used, or a races-oracle counterexample of the DRF direction would
   stop failing on every candidate. *)
let shrink ?(expect_race_free = false) ~machine ~budget_s ~fuel ~oracle p =
  let fuel = ref fuel in
  let rec go p =
    let next =
      Seq.find_map
        (fun c ->
          if !fuel <= 0 then None
          else begin
            decr fuel;
            match still_fails ~expect_race_free ~machine ~budget_s ~oracle c with
            | Some _ -> Some c
            | None -> None
          end)
        (Gen.shrink_spmd p)
    in
    match next with Some c -> go c | None -> p
  in
  go p

let run cfg =
  let rng = Random.State.make [| cfg.seed |] in
  let t0 = Unix.gettimeofday () in
  let programs = ref 0 and skips = ref 0 and failures = ref [] in
  let continue_ () =
    (cfg.max_programs = 0 || !programs < cfg.max_programs)
    && Unix.gettimeofday () -. t0 < cfg.budget_s
  in
  let index = ref 0 in
  while continue_ () do
    let i = !index in
    incr index;
    let machine = machine_for ~nodes:cfg.nodes ~index:i in
    (* Every fourth program deliberately breaks the DRF discipline so the
       race oracle's racy direction (detector vs naive reference, DRFS
       classification) gets exercised; the other three are
       DRF-by-construction and must be proven race-free. *)
    let racy = i mod 4 = 3 in
    let expect_race_free = not racy in
    let gcfg =
      {
        Gen.default_config with
        Gen.max_segments = Gen.int_range 1 4 rng;
        max_stmts = Gen.int_range 2 6 rng;
        max_depth = Gen.int_range 2 3 rng;
        annotations = Random.State.bool rng;
        racy;
      }
    in
    let p = Gen.spmd ~config:gcfg rng in
    incr programs;
    if Obs.enabled () then Obs.Counter.incr obs_programs;
    (* Protocol rotation: the same program runs the whole battery once
       per configured backend; a failure shrinks and persists under the
       backend it reproduced on. *)
    let all_skipped = ref true in
    List.iter
      (fun proto ->
        let machine = { machine with Wwt.Machine.protocol = proto } in
        let report =
          Obs.span "fuzz.program" (fun () ->
              Oracle.run_all ~budget_s:cfg.per_program_budget_s
                ~expect_race_free ~machine p)
        in
        (match Oracle.first_failure report with
        | None -> ()
        | Some (oracle, detail) ->
            cfg.log
              (Printf.sprintf "#%d: %s oracle failed under %s (%s); shrinking..."
                 !programs oracle
                 (Memsys.Protocol_id.to_string proto)
                 detail);
            let shrunk =
              Obs.span "fuzz.shrink" (fun () ->
                  shrink ~expect_race_free ~machine
                    ~budget_s:cfg.per_program_budget_s ~fuel:cfg.shrink_fuel
                    ~oracle p)
            in
            let detail =
              match
                still_fails ~expect_race_free ~machine
                  ~budget_s:cfg.per_program_budget_s ~oracle shrunk
              with
              | Some d -> d
              | None -> detail
            in
            cfg.log
              (Printf.sprintf "  shrunk %d -> %d AST nodes" (Gen.size_program p)
                 (Gen.size_program shrunk));
            let path =
              Option.map
                (fun dir ->
                  Corpus.save ~dir
                    {
                      Corpus.oracle;
                      detail;
                      seed = cfg.seed;
                      nodes = machine.Wwt.Machine.nodes;
                      protocol = proto;
                      source = Lang.Pretty.program_to_string shrunk;
                    })
                cfg.corpus_dir
            in
            failures :=
              { oracle; detail; program = shrunk; original = p; machine; path }
              :: !failures);
        if
          not
            (List.for_all
               (fun (_, v) -> match v with Oracle.Skip _ -> true | _ -> false)
               (Oracle.to_list report))
        then all_skipped := false)
      (match cfg.protocols with [] -> [ Memsys.Protocol_id.default ] | ps -> ps);
    if !all_skipped then incr skips;
    if !programs mod 100 = 0 then
      cfg.log
        (Printf.sprintf "%d programs, %d skipped, %d counterexamples (%.1fs)"
           !programs !skips
           (List.length !failures)
           (Unix.gettimeofday () -. t0))
  done;
  {
    programs = !programs;
    skips = !skips;
    failures = List.rev !failures;
    elapsed_s = Unix.gettimeofday () -. t0;
  }

let pp_stats ppf s =
  Format.fprintf ppf
    "programs: %d@ all-oracles-skipped: %d@ counterexamples: %d@ elapsed: %.1fs"
    s.programs s.skips (List.length s.failures) s.elapsed_s;
  List.iter
    (fun f ->
      Format.fprintf ppf "@ %s: %s (%d AST nodes%s)" f.oracle f.detail
        (Gen.size_program f.program)
        (match f.path with Some p -> ", saved to " ^ p | None -> ""))
    s.failures
