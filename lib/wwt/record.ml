(* Per-node event streams for the parallel engine (Par).

   In recording mode a node's compiled program runs with [rt.quantum = 0]
   and [rt.reco = Some t]: instead of performing scheduler effects and
   protocol calls, the hot-path seams in Compile append compact events to
   this per-node stream. Par then replays all streams through the real
   [Memsys.Protocol] in the exact global order the sequential scheduler
   would have produced, so statistics, the packed miss trace, printed
   output and final memory are bit-identical to the sequential engines.

   Stream encoding: every event is a tag byte followed by LEB128 varints.
   The first varint of every event is [delta] — the local-op charge
   accumulated (in [rt.pending]) since the previous event. Replay
   reconstructs the true [pending] as (recorded charges + protocol
   latencies it computes itself), which is exactly what the sequential
   engine accumulates.

   Events:
     YCHK  delta              conditional yield site ([Compile.maybe_yield]):
                              flush iff pending >= quantum
     FLUSH delta              unconditional flush site: flush iff pending > 0
     READ  delta pc addr      shared read  -> Protocol.read_p + miss record
     WRITE delta pc addr      shared write -> Protocol.write_p + miss record;
                              the stored value is in [vals], in order
     RMWRD delta pc addr      the read half of a recognised read-modify-write
     RMWWR delta pc addr      the write half; [vals] holds the increment, and
                              replay applies it to the *replay-time* value,
                              so racy-but-commutative-free accumulations
                              (matmul C, mp3d CELL) replay exactly
     ANNOT delta id lo hi     executed CICO directive over element range
                              [lo..hi] of the shared array behind annotation
                              site [id]; replay charges the real per-block
                              directive latencies
     PRINT delta              print line (in [strs], in order)
     BARR  delta pc           the node arrived at a barrier (epoch boundary)
     FIN   delta              the node's main returned
     ERR   delta              the node raised; the exception is in [error]
                              and is re-raised at the same replay point *)

exception Unsupported of string
(** Raised inside a recording fiber to abandon the parallel attempt (locks,
    or any construct the recorder cannot reproduce); Par falls back to the
    sequential engine for the whole run. *)

let t_ycheck = 1
let t_flush = 2
let t_read = 3
let t_write = 4
let t_rmw_rd = 5
let t_rmw_wr = 6
let t_annot = 7
let t_print = 8
let t_barrier = 9
let t_finish = 10
let t_error = 11

(* conflict-mark bits, per shared element touched this epoch *)
let m_read = 1
let m_write = 2
let m_rmw = 4

type t = {
  node : int;
  mutable buf : Bytes.t;
  mutable len : int;
  mutable vals : Lang.Value.t array;
  mutable nvals : int;
  mutable strs : string array;
  mutable nstrs : int;
  mutable error : exn option;
  mutable fallback : string option;
  mutable priv_reads : int;
  mutable priv_writes : int;
  marks : Bytes.t;  (* per shared element: m_read / m_write / m_rmw bits *)
  mutable touched : int array;
  mutable ntouched : int;
  poll : (unit -> unit) option;
  mutable poll_countdown : int;
  (* Annotation ranges recorded this epoch, as flat (id, lo, hi)
     triples — the shard planner folds them into the touched-block sets
     without decoding the stream. *)
  mutable aranges : int array;
  mutable naranges : int;
  (* Shadow slot: [flip] parks the just-recorded epoch here for replay
     while the next epoch records into the (recycled) active buffers —
     the double-buffering behind the pipelined engine. *)
  mutable sbuf : Bytes.t;
  mutable slen : int;
  mutable svals : Lang.Value.t array;
  mutable snvals : int;
  mutable sstrs : string array;
  mutable snstrs : int;
  mutable serror : exn option;
}

let poll_every = 16384

let create ~node ~elems ~poll =
  {
    node;
    buf = Bytes.create 4096;
    len = 0;
    vals = Array.make 64 Lang.Value.zero;
    nvals = 0;
    strs = Array.make 8 "";
    nstrs = 0;
    error = None;
    fallback = None;
    priv_reads = 0;
    priv_writes = 0;
    marks = Bytes.make (max 1 elems) '\000';
    touched = Array.make 64 0;
    ntouched = 0;
    poll;
    poll_countdown = poll_every;
    aranges = Array.make 24 0;
    naranges = 0;
    sbuf = Bytes.create 64;
    slen = 0;
    svals = Array.make 8 Lang.Value.zero;
    snvals = 0;
    sstrs = Array.make 4 "";
    snstrs = 0;
    serror = None;
  }

(* ---- emission ---- *)

(* Belt-and-braces bound: no benchmark comes near this, but a program
   whose control flow diverges under racy recording could otherwise grow
   a stream without limit before the conflict classifier ever sees it. *)
let max_stream_bytes = 1 lsl 28

let ensure rc n =
  if rc.len + n > Bytes.length rc.buf then begin
    if rc.len + n > max_stream_bytes then
      raise (Unsupported "recorded event stream exceeds cap");
    let cap = min max_stream_bytes (max (2 * Bytes.length rc.buf) (rc.len + n)) in
    let b = Bytes.create cap in
    Bytes.blit rc.buf 0 b 0 rc.len;
    rc.buf <- b
  end

let put_byte rc b =
  Bytes.unsafe_set rc.buf rc.len (Char.unsafe_chr b);
  rc.len <- rc.len + 1

let rec put_varint rc v =
  if v < 0x80 then put_byte rc v
  else begin
    put_byte rc (v land 0x7f lor 0x80);
    put_varint rc (v lsr 7)
  end

let push_val rc v =
  if rc.nvals = Array.length rc.vals then begin
    let a = Array.make (2 * rc.nvals) Lang.Value.zero in
    Array.blit rc.vals 0 a 0 rc.nvals;
    rc.vals <- a
  end;
  rc.vals.(rc.nvals) <- v;
  rc.nvals <- rc.nvals + 1

let push_str rc s =
  if rc.nstrs = Array.length rc.strs then begin
    let a = Array.make (2 * rc.nstrs) "" in
    Array.blit rc.strs 0 a 0 rc.nstrs;
    rc.strs <- a
  end;
  rc.strs.(rc.nstrs) <- s;
  rc.nstrs <- rc.nstrs + 1

(* Every statement boundary passes through here in recording mode, so it
   doubles as the cancellation-poll site: without it an epoch that loops
   forever (possible only for programs the classifier would reject) could
   never be interrupted by a service deadline or fuzz budget. *)
let ycheck rc delta =
  ensure rc 11;
  put_byte rc t_ycheck;
  put_varint rc delta;
  match rc.poll with
  | None -> ()
  | Some p ->
      rc.poll_countdown <- rc.poll_countdown - 1;
      if rc.poll_countdown <= 0 then begin
        rc.poll_countdown <- poll_every;
        p ()
      end

let flush rc delta =
  ensure rc 11;
  put_byte rc t_flush;
  put_varint rc delta

let event3 rc tag delta ~pc ~addr =
  ensure rc 31;
  put_byte rc tag;
  put_varint rc delta;
  put_varint rc pc;
  put_varint rc addr

let read rc delta ~pc ~addr = event3 rc t_read delta ~pc ~addr

let write rc delta ~pc ~addr v =
  event3 rc t_write delta ~pc ~addr;
  push_val rc v

let rmw_read rc delta ~pc ~addr = event3 rc t_rmw_rd delta ~pc ~addr

let rmw_write rc delta ~pc ~addr v =
  event3 rc t_rmw_wr delta ~pc ~addr;
  push_val rc v

let annot rc delta ~id ~lo ~hi =
  ensure rc 41;
  put_byte rc t_annot;
  put_varint rc delta;
  put_varint rc id;
  put_varint rc lo;
  put_varint rc hi;
  if (3 * rc.naranges) + 3 > Array.length rc.aranges then begin
    let a = Array.make (max 24 (2 * 3 * rc.naranges)) 0 in
    Array.blit rc.aranges 0 a 0 (3 * rc.naranges);
    rc.aranges <- a
  end;
  rc.aranges.(3 * rc.naranges) <- id;
  rc.aranges.((3 * rc.naranges) + 1) <- lo;
  rc.aranges.((3 * rc.naranges) + 2) <- hi;
  rc.naranges <- rc.naranges + 1

let print rc delta s =
  ensure rc 11;
  put_byte rc t_print;
  put_varint rc delta;
  push_str rc s

let barrier rc delta ~pc =
  ensure rc 21;
  put_byte rc t_barrier;
  put_varint rc delta;
  put_varint rc pc

let finish rc delta =
  ensure rc 11;
  put_byte rc t_finish;
  put_varint rc delta

let error rc e =
  rc.error <- Some e;
  ensure rc 11;
  put_byte rc t_error;
  put_varint rc 0

let fail_unsupported reason = raise (Unsupported reason)

(* ---- conflict marks ---- *)

let mark rc e bit =
  let b = Char.code (Bytes.unsafe_get rc.marks e) in
  if b land bit = 0 then begin
    if b = 0 then begin
      if rc.ntouched = Array.length rc.touched then begin
        let a = Array.make (2 * rc.ntouched) 0 in
        Array.blit rc.touched 0 a 0 rc.ntouched;
        rc.touched <- a
      end;
      rc.touched.(rc.ntouched) <- e;
      rc.ntouched <- rc.ntouched + 1
    end;
    Bytes.unsafe_set rc.marks e (Char.unsafe_chr (b lor bit))
  end

let mark_read rc e = mark rc e m_read
let mark_write rc e = mark rc e m_write
let mark_rmw rc e = mark rc e m_rmw

let clear_marks rc =
  for j = 0 to rc.ntouched - 1 do
    Bytes.unsafe_set rc.marks rc.touched.(j) '\000'
  done;
  rc.ntouched <- 0

let reset_stream rc =
  rc.len <- 0;
  rc.nvals <- 0;
  rc.nstrs <- 0;
  rc.naranges <- 0

(* Park the just-recorded epoch in the shadow slot and recycle the
   previous shadow buffers as the next epoch's active stream. Replay
   always consumes the shadow side, so the serial and pipelined engines
   share one code path; the conflict marks and annotation ranges are
   *not* shadowed — the classifier consumes them before the flip. *)
let flip rc =
  let b = rc.sbuf in
  rc.sbuf <- rc.buf;
  rc.buf <- b;
  rc.slen <- rc.len;
  rc.len <- 0;
  let v = rc.svals in
  rc.svals <- rc.vals;
  rc.vals <- v;
  rc.snvals <- rc.nvals;
  rc.nvals <- 0;
  let s = rc.sstrs in
  rc.sstrs <- rc.strs;
  rc.strs <- s;
  rc.snstrs <- rc.nstrs;
  rc.nstrs <- 0;
  rc.serror <- rc.error;
  rc.error <- None;
  rc.naranges <- 0
