(** Effects-based discrete-event scheduler for simulated processors.

    Each simulated node runs as an OCaml 5 fiber. A fiber advances its own
    virtual clock by performing {!advance}; the scheduler then resumes
    whichever fiber has the smallest clock, giving a deterministic
    discrete-event interleaving. Barriers synchronise all nodes: when the
    last fiber arrives, every clock is set to the maximum plus the barrier
    cost and the [on_barrier] hook runs (the interpreter uses it to flush
    caches and emit trace records). Queued locks hand over FIFO; locks are
    reentrant — the holder may nest re-acquires (each counted by
    [on_lock_acquire] but paying no transfer) and the lock hands over only
    when the outermost hold is released. *)

exception Deadlock of string
(** Raised when no fiber can make progress (e.g. a node exits without
    reaching a barrier the others wait at, or a lock is never released). *)

exception Cancelled of string
(** Raised by a [poll] hook (see {!run}) to abandon a simulation cleanly,
    e.g. when a service request's deadline has passed. Never raised by the
    scheduler itself. *)

type config = {
  nodes : int;
  barrier_cost : int;
  lock_transfer : int;
  on_barrier : vt:int -> arrivals:(int * int) list -> unit;
      (** called when a barrier completes; [arrivals] are [(node, pc)]
          pairs in node order; [vt] is the post-synchronisation time *)
  on_lock_acquire : node:int -> lock:int -> unit;
}

val run : ?poll:(unit -> unit) -> config -> (int -> unit) -> int
(** [run config body] runs [body node] as a fiber for each node and
    returns the final virtual time (the maximum clock).

    [poll], when given, is called periodically from the scheduler loop,
    between fiber resumptions. It may raise (conventionally {!Cancelled})
    to abandon the whole run: the exception propagates out of [run] and
    the unfinished fibers are discarded, leaving no scheduler state
    behind — a fresh [run] on the same domain is unaffected. *)

(** The scheduling effects themselves, exported as the engine seam: an
    alternative engine (the parallel {!Par}) runs the same fiber bodies
    under its own handler for these effects instead of {!run}'s. *)
type _ Effect.t +=
  | Now : int Effect.t
  | Advance : int -> unit Effect.t
  | Barrier_sync : int -> unit Effect.t
  | Lock_acquire : int -> unit Effect.t
  | Lock_release : int -> unit Effect.t

(** Effects available inside fiber bodies: *)

val now : unit -> int
(** Current virtual time of the calling fiber. *)

val advance : int -> unit
(** Advance the calling fiber's clock by the given number of cycles and
    yield to the scheduler. *)

val barrier_sync : pc:int -> unit
(** Block until every node reaches a barrier. *)

val lock_acquire : int -> unit
val lock_release : int -> unit
