open Lang

exception Runtime_error of string
exception Proc_return of Value.t option

let error fmt = Format.kasprintf (fun s -> raise (Runtime_error s)) fmt

type outcome = {
  time : int;
  stats : Memsys.Stats.t;
  trace : Trace.Event.record list;
  output : string list;
  shared : Value.t array;
  layout : Label.t;
  info : Sema.info;
}

(* splitmix64 finaliser, mapped to [0, 1). *)
let noise i =
  let open Int64 in
  let z = add (mul (of_int i) 0x9E3779B97F4A7C15L) 0x1234567DEADBEEFL in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  let z = logxor z (shift_right_logical z 31) in
  let mantissa = to_float (shift_right_logical z 11) in
  mantissa /. 9007199254740992.0 (* 2^53 *)

type gstate = {
  machine : Machine.t;
  info : Sema.info;
  layout : Label.t;
  proto : Memsys.Protocol.t;
  shared : Value.t array;
  trace_buf : Trace.Buf.t;  (* packed miss log *)
  output_buf : string list ref;  (* reversed *)
  consts : (string, Value.t) Hashtbl.t;
  procs : (string, Ast.proc) Hashtbl.t;
}

type nstate = {
  node : int;
  privates : (string, Value.t array) Hashtbl.t;
  mutable pending : int;  (* local cycles not yet surrendered to the DES *)
  mutable base_now : int;  (* cached [Sched.now]; refreshed after every
                              effect that can move this node's clock, so
                              the per-access virtual time needs no effect
                              perform *)
  mutable held_locks : int list;  (* innermost first *)
  mutable held_id : int;  (* interned id of [held_locks] in the trace
                             buffer; maintained only when tracing *)
}

(* Remove the innermost occurrence of [l] only, so a nested re-acquire of
   the same lock stays in the held set until its outer release. *)
let rec remove_lock l = function
  | [] -> []
  | h :: t -> if h = l then t else h :: remove_lock l t

let flush_pending n =
  if n.pending > 0 then begin
    Sched.advance n.pending;
    (* clock moved by exactly [pending]; keep the cache without a
       [Sched.now] perform *)
    n.base_now <- n.base_now + n.pending;
    n.pending <- 0
  end

(* Accumulate local cycles; the fiber yields to the event loop only at
   statement boundaries (see [maybe_yield]), so a directive and the access
   it guards execute without an intervening steal window, as they would on
   real hardware where the block arrives and is used before a remote
   request can take it away. *)
let local_cost _g n c = n.pending <- n.pending + c

(* Yield if a quantum's worth of local work has accumulated. Annotation
   statements never yield: they are a prefix of the access they guard. *)
let maybe_yield g n =
  if n.pending >= g.machine.Machine.quantum then flush_pending n

let virtual_now n = n.base_now + n.pending

let record_miss g n ~pc ~addr packed =
  let kind = Memsys.Protocol.packed_kind packed in
  if kind <> Memsys.Protocol.no_miss && g.machine.Machine.collect_trace then begin
    let bkind =
      if kind = Memsys.Protocol.read_miss then Trace.Buf.kind_read
      else if kind = Memsys.Protocol.write_miss then Trace.Buf.kind_write
      else Trace.Buf.kind_fault
    in
    Trace.Buf.add_miss g.trace_buf ~node:n.node ~pc ~addr ~kind:bkind
      ~held:n.held_id
  end;
  local_cost g n (Memsys.Protocol.packed_latency packed)

let elem_addr arr_entry i =
  let open Label in
  if i < 0 || i >= arr_entry.elems then
    error "index %d out of bounds for shared array %s[%d]" i arr_entry.name
      arr_entry.elems;
  arr_entry.base + (i * arr_entry.elem_size)

let shared_read g n ~pc entry i =
  let addr = elem_addr entry i in
  let p =
    Memsys.Protocol.read_p g.proto ~node:n.node ~addr ~now:(virtual_now n)
  in
  record_miss g n ~pc ~addr p;
  g.shared.(addr / g.machine.Machine.elem_size)

let shared_write g n ~pc entry i v =
  let addr = elem_addr entry i in
  let p =
    Memsys.Protocol.write_p g.proto ~node:n.node ~addr ~now:(virtual_now n)
  in
  record_miss g n ~pc ~addr p;
  g.shared.(addr / g.machine.Machine.elem_size) <- v

(* Halves of a recognized commutative RMW ([A[i] = A[i] + e]); identical
   to shared_read/shared_write except under the Commute backend, where
   the access lands in a privatized per-node copy. *)
let shared_read_rmw g n ~pc entry i =
  let addr = elem_addr entry i in
  let p =
    Memsys.Protocol.read_rmw_p g.proto ~node:n.node ~addr ~now:(virtual_now n)
  in
  record_miss g n ~pc ~addr p;
  g.shared.(addr / g.machine.Machine.elem_size)

let shared_write_rmw g n ~pc entry i v =
  let addr = elem_addr entry i in
  let p =
    Memsys.Protocol.write_rmw_p g.proto ~node:n.node ~addr ~now:(virtual_now n)
  in
  record_miss g n ~pc ~addr p;
  g.shared.(addr / g.machine.Machine.elem_size) <- v

(* Side-effect-free index expressions that evaluate to the same value
   twice in a row; the RMW fast path may assume l-value index = r-value
   index for these. Kept in sync with [Compile.simple_index] (Compile
   depends on this module, so the shared definition lives twice). *)
let rec simple_index (e : Ast.expr) =
  match e with
  | Ast.Eint _ | Ast.Efloat _ | Ast.Evar _ -> true
  | Ast.Ebinop (_, a, b) -> simple_index a && simple_index b
  | Ast.Eunop (_, a) -> simple_index a
  | Ast.Eindex _ | Ast.Ecall _ -> false

let private_array n name =
  match Hashtbl.find_opt n.privates name with
  | Some a -> a
  | None -> error "unknown private array %S" name

let lookup_var g n frame name =
  match Hashtbl.find_opt frame name with
  | Some v -> v
  | None -> (
      match name with
      | "pid" -> Value.Vint n.node
      | "nprocs" -> Value.Vint g.machine.Machine.nodes
      | _ -> (
          match Hashtbl.find_opt g.consts name with
          | Some v -> v
          | None -> error "undefined variable %S" name))

let apply_binop op va vb =
  match op with
  | Ast.Add -> Value.add va vb
  | Ast.Sub -> Value.sub va vb
  | Ast.Mul -> Value.mul va vb
  | Ast.Div -> Value.div va vb
  | Ast.Mod -> Value.modulo va vb
  | Ast.Lt -> Value.of_bool (Value.compare_num va vb < 0)
  | Ast.Le -> Value.of_bool (Value.compare_num va vb <= 0)
  | Ast.Gt -> Value.of_bool (Value.compare_num va vb > 0)
  | Ast.Ge -> Value.of_bool (Value.compare_num va vb >= 0)
  | Ast.Eq -> Value.of_bool (Value.equal va vb)
  | Ast.Ne -> Value.of_bool (not (Value.equal va vb))
  | Ast.And | Ast.Or -> assert false (* short-circuited in eval *)

let rec eval g n frame ~pc e =
  local_cost g n g.machine.Machine.costs.Memsys.Network.local_op;
  match e with
  | Ast.Eint i -> Value.Vint i
  | Ast.Efloat f -> Value.Vfloat f
  | Ast.Evar name -> lookup_var g n frame name
  | Ast.Eindex (name, idx) -> (
      let i = Value.to_int (eval g n frame ~pc idx) in
      match Label.find_array g.layout name with
      | Some entry -> shared_read g n ~pc entry i
      | None ->
          let a = private_array n name in
          if i < 0 || i >= Array.length a then
            error "index %d out of bounds for private array %s[%d]" i name
              (Array.length a);
          let stats = Memsys.Protocol.stats g.proto in
          stats.Memsys.Stats.private_reads <-
            stats.Memsys.Stats.private_reads + 1;
          a.(i))
  | Ast.Ebinop (Ast.And, a, b) ->
      if Value.to_bool (eval g n frame ~pc a) then
        Value.of_bool (Value.to_bool (eval g n frame ~pc b))
      else Value.of_bool false
  | Ast.Ebinop (Ast.Or, a, b) ->
      if Value.to_bool (eval g n frame ~pc a) then Value.of_bool true
      else Value.of_bool (Value.to_bool (eval g n frame ~pc b))
  | Ast.Ebinop (op, a, b) ->
      let va = eval g n frame ~pc a in
      let vb = eval g n frame ~pc b in
      (try apply_binop op va vb
       with Division_by_zero -> error "division by zero")
  | Ast.Eunop (Ast.Neg, a) -> Value.neg (eval g n frame ~pc a)
  | Ast.Eunop (Ast.Not, a) ->
      Value.of_bool (not (Value.to_bool (eval g n frame ~pc a)))
  | Ast.Ecall (name, args) -> eval_call g n frame ~pc name args

and eval_call g n frame ~pc name args =
  (* explicit left-to-right evaluation so the compiled engine
     (Wwt.Compile) can reproduce access order exactly *)
  let rec eval_list = function
    | [] -> []
    | e :: rest ->
        let v = eval g n frame ~pc e in
        v :: eval_list rest
  in
  let argv () = eval_list args in
  match (name, args) with
  | "min", [ _; _ ] -> (
      match argv () with
      | [ a; b ] -> if Value.compare_num a b <= 0 then a else b
      | _ -> assert false)
  | "max", [ _; _ ] -> (
      match argv () with
      | [ a; b ] -> if Value.compare_num a b >= 0 then a else b
      | _ -> assert false)
  | "abs", [ _ ] -> (
      match argv () with
      | [ Value.Vint i ] -> Value.Vint (abs i)
      | [ Value.Vfloat f ] -> Value.Vfloat (Float.abs f)
      | _ -> assert false)
  | "sqrt", [ _ ] -> (
      match argv () with
      | [ v ] -> Value.Vfloat (sqrt (Value.to_float v))
      | _ -> assert false)
  | "sin", [ _ ] -> (
      match argv () with
      | [ v ] -> Value.Vfloat (sin (Value.to_float v))
      | _ -> assert false)
  | "cos", [ _ ] -> (
      match argv () with
      | [ v ] -> Value.Vfloat (cos (Value.to_float v))
      | _ -> assert false)
  | "floor", [ _ ] -> (
      match argv () with
      | [ v ] -> Value.Vfloat (Float.floor (Value.to_float v))
      | _ -> assert false)
  | "float", [ _ ] -> (
      match argv () with
      | [ v ] -> Value.Vfloat (Value.to_float v)
      | _ -> assert false)
  | "int", [ _ ] -> (
      match argv () with
      | [ v ] -> Value.Vint (Value.to_int v)
      | _ -> assert false)
  | "noise", [ _ ] -> (
      match argv () with
      | [ v ] -> Value.Vfloat (noise (Value.to_int v))
      | _ -> assert false)
  | _ -> (
      match Hashtbl.find_opt g.procs name with
      | None -> error "call of unknown procedure %S" name
      | Some proc -> (
          let values = argv () in
          match call_proc g n proc values with
          | Some v -> v
          | None -> Value.zero))

and call_proc g n (proc : Ast.proc) values =
  let frame = Hashtbl.create 8 in
  (try List.iter2 (fun p v -> Hashtbl.replace frame p v) proc.params values
   with Invalid_argument _ ->
     error "procedure %S called with %d argument(s), expects %d" proc.pname
       (List.length values) (List.length proc.params));
  try
    exec_block g n frame proc.body;
    None
  with Proc_return v -> v

and exec_block g n frame block = List.iter (exec_stmt g n frame) block

and exec_stmt g n frame (s : Ast.stmt) =
  let pc = s.Ast.sid in
  local_cost g n g.machine.Machine.costs.Memsys.Network.local_op;
  (match s.Ast.node with
  | Ast.Sannot _ | Ast.Sannot_table _ -> ()
  | Ast.Sassign _ | Ast.Sif _ | Ast.Sfor _ | Ast.Swhile _ | Ast.Sbarrier
  | Ast.Scall _ | Ast.Sreturn _ | Ast.Slock _ | Ast.Sunlock _ | Ast.Sprint _
    ->
      maybe_yield g n);
  match s.Ast.node with
  | Ast.Sassign
      ( Ast.Lindex (name, idx),
        Ast.Ebinop (Ast.Add, Ast.Eindex (name2, idx2), rest) )
    when name2 = name && idx2 = idx && simple_index idx
         && Label.find_array g.layout name <> None -> (
      match Label.find_array g.layout name with
      | None -> assert false
      | Some entry ->
          (* Recognized commutative RMW accumulation. Same charges in
             the same order as the generic arm below — [eval] charges
             one local op on entry for the Ebinop and the inner Eindex
             nodes, reproduced here — with the protocol accesses routed
             through the rmw-aware entry points. *)
          local_cost g n g.machine.Machine.costs.Memsys.Network.local_op;
          local_cost g n g.machine.Machine.costs.Memsys.Network.local_op;
          let i1 = Value.to_int (eval g n frame ~pc idx) in
          let va = shared_read_rmw g n ~pc entry i1 in
          let vb = eval g n frame ~pc rest in
          let v =
            try apply_binop Ast.Add va vb
            with Division_by_zero -> error "division by zero"
          in
          let i2 = Value.to_int (eval g n frame ~pc idx) in
          shared_write_rmw g n ~pc entry i2 v)
  | Ast.Sassign (lv, e) -> (
      let v = eval g n frame ~pc e in
      match lv with
      | Ast.Lvar name -> Hashtbl.replace frame name v
      | Ast.Lindex (name, idx) -> (
          let i = Value.to_int (eval g n frame ~pc idx) in
          match Label.find_array g.layout name with
          | Some entry -> shared_write g n ~pc entry i v
          | None ->
              let a = private_array n name in
              if i < 0 || i >= Array.length a then
                error "index %d out of bounds for private array %s[%d]" i name
                  (Array.length a);
              let stats = Memsys.Protocol.stats g.proto in
              stats.Memsys.Stats.private_writes <-
                stats.Memsys.Stats.private_writes + 1;
              a.(i) <- v))
  | Ast.Sif (cond, b1, b2) ->
      if Value.to_bool (eval g n frame ~pc cond) then exec_block g n frame b1
      else exec_block g n frame b2
  | Ast.Sfor { var; from_; to_; step; body } ->
      let lo = eval g n frame ~pc from_ in
      let hi = eval g n frame ~pc to_ in
      let st = eval g n frame ~pc step in
      let stf = Value.to_float st in
      if stf = 0.0 then error "loop step is zero";
      let continues v =
        if stf > 0.0 then Value.compare_num v hi <= 0
        else Value.compare_num v hi >= 0
      in
      let cur = ref lo in
      while continues !cur do
        Hashtbl.replace frame var !cur;
        exec_block g n frame body;
        local_cost g n 1;
        cur := Value.add !cur st
      done
  | Ast.Swhile (cond, body) ->
      while Value.to_bool (eval g n frame ~pc cond) do
        exec_block g n frame body
      done
  | Ast.Sbarrier ->
      flush_pending n;
      Sched.barrier_sync ~pc;
      n.base_now <- Sched.now ()
  | Ast.Scall (name, args) -> ignore (eval_call g n frame ~pc name args)
  | Ast.Sreturn e ->
      let v = Option.map (eval g n frame ~pc) e in
      raise (Proc_return v)
  | Ast.Slock e ->
      let l = Value.to_int (eval g n frame ~pc e) in
      flush_pending n;
      Sched.lock_acquire l;
      n.base_now <- Sched.now ();
      n.held_locks <- l :: n.held_locks;
      if g.machine.Machine.collect_trace then
        n.held_id <- Trace.Buf.intern_held g.trace_buf n.held_locks
  | Ast.Sunlock e ->
      let l = Value.to_int (eval g n frame ~pc e) in
      n.held_locks <- remove_lock l n.held_locks;
      if g.machine.Machine.collect_trace then
        n.held_id <- Trace.Buf.intern_held g.trace_buf n.held_locks;
      flush_pending n;
      Sched.lock_release l;
      n.base_now <- Sched.now ()
  | Ast.Sannot (kind, { arr; lo; hi }) ->
      let lo_i = Value.to_int (eval g n frame ~pc lo) in
      let hi_i = Value.to_int (eval g n frame ~pc hi) in
      exec_annot g n kind arr [ (lo_i, hi_i) ]
  | Ast.Sannot_table { akind; aarr; aranges } ->
      let ranges =
        if n.node < Array.length aranges then aranges.(n.node) else []
      in
      exec_annot g n akind aarr ranges
  | Ast.Sprint args ->
      let rec eval_list = function
        | [] -> []
        | e :: rest ->
            let v = eval g n frame ~pc e in
            v :: eval_list rest
      in
      let values = eval_list args in
      g.output_buf :=
        Printf.sprintf "p%d: %s" n.node
          (String.concat " " (List.map Value.to_string values))
        :: !(g.output_buf)

and exec_annot g n kind arr ranges =
  match g.machine.Machine.annotations with
  | Machine.Ignore_annotations -> ()
  | Machine.Execute_annotations -> (
      let skip_prefetch =
        (not g.machine.Machine.prefetch)
        && (kind = Ast.Prefetch_x || kind = Ast.Prefetch_s)
      in
      if not skip_prefetch then
        match Label.find_array g.layout arr with
        | None -> error "annotation on unknown shared array %S" arr
        | Some entry ->
            let elem_size = entry.Label.elem_size in
            let block_size = g.machine.Machine.block_size in
            let directive =
              match kind with
              | Ast.Check_out_x -> Memsys.Protocol.check_out_x_lat
              | Ast.Check_out_s -> Memsys.Protocol.check_out_s_lat
              | Ast.Check_in -> Memsys.Protocol.check_in_lat
              | Ast.Prefetch_x -> Memsys.Protocol.prefetch_x_lat
              | Ast.Prefetch_s -> Memsys.Protocol.prefetch_s_lat
              | Ast.Post_store -> Memsys.Protocol.post_store_lat
            in
            List.iter
              (fun (lo_i, hi_i) ->
                let lo_i = max 0 lo_i
                and hi_i = min (entry.Label.elems - 1) hi_i in
                if lo_i <= hi_i then begin
                  let lo_addr = entry.Label.base + (lo_i * elem_size) in
                  let hi_addr =
                    entry.Label.base + (hi_i * elem_size) + elem_size - 1
                  in
                  List.iter
                    (fun blk ->
                      let addr = Memsys.Block.base_addr ~block_size blk in
                      let lat =
                        directive g.proto ~node:n.node ~addr
                          ~now:(virtual_now n)
                      in
                      local_cost g n lat)
                    (Memsys.Block.blocks_of_range ~block_size ~lo:lo_addr
                       ~hi:hi_addr)
                end)
              ranges)

let run ?poll ~machine program =
  let info = Sema.check program in
  let layout =
    Label.layout ~block_size:machine.Machine.block_size
      ~elem_size:machine.Machine.elem_size info
  in
  let proto =
    Memsys.Protocol.create_b ~backend:machine.Machine.protocol
      ~nodes:machine.Machine.nodes ~cache_bytes:machine.Machine.cache_bytes
      ~assoc:machine.Machine.assoc ~block_size:machine.Machine.block_size
      ~costs:machine.Machine.costs
  in
  if machine.Machine.debug_protocol then
    Memsys.Protocol.set_debug_checks proto true;
  let total_elems =
    (Label.total_bytes layout + machine.Machine.elem_size - 1)
    / machine.Machine.elem_size
  in
  let g =
    {
      machine;
      info;
      layout;
      proto;
      shared = Array.make (max 1 total_elems) Value.zero;
      trace_buf = Trace.Buf.create ();
      output_buf = ref [];
      consts = Hashtbl.create 16;
      procs = Hashtbl.create 16;
    }
  in
  List.iter (fun (name, v) -> Hashtbl.replace g.consts name v) info.Sema.consts;
  List.iter (fun (p : Ast.proc) -> Hashtbl.replace g.procs p.pname p) program.Ast.procs;
  if machine.Machine.collect_trace then
    List.iter
      (fun (name, lo, hi) -> Trace.Buf.add_label g.trace_buf ~name ~lo ~hi)
      (Label.to_label_records layout);
  let stats = Memsys.Protocol.stats proto in
  let on_barrier ~vt ~arrivals =
    stats.Memsys.Stats.barriers <- stats.Memsys.Stats.barriers + 1;
    Memsys.Protocol.epoch_boundary proto;
    if machine.Machine.flush_at_barrier then
      for node = 0 to machine.Machine.nodes - 1 do
        Memsys.Protocol.flush_node proto ~node
      done;
    Memsys.Protocol.sample_occupancy proto;
    if machine.Machine.collect_trace then
      List.iter
        (fun (node, pc) -> Trace.Buf.add_barrier g.trace_buf ~node ~pc ~vt)
        arrivals
  in
  let on_lock_acquire ~node:_ ~lock:_ =
    stats.Memsys.Stats.lock_acquires <- stats.Memsys.Stats.lock_acquires + 1
  in
  let main =
    match Ast.find_proc program "main" with
    | Some p -> p
    | None -> error "program has no main procedure"
  in
  let body node =
    let n =
      {
        node;
        privates = Hashtbl.create 8;
        pending = 0;
        base_now = 0;
        held_locks = [];
        held_id = Trace.Buf.empty_held;
      }
    in
    List.iter
      (fun (name, elems) ->
        Hashtbl.replace n.privates name (Array.make elems Value.zero))
      info.Sema.privates;
    ignore (call_proc g n main []);
    flush_pending n
  in
  let engine_t0 = Obs.start () in
  let time =
    Sched.run ?poll
      {
        Sched.nodes = machine.Machine.nodes;
        barrier_cost = machine.Machine.costs.Memsys.Network.barrier;
        lock_transfer = machine.Machine.costs.Memsys.Network.lock_transfer;
        on_barrier;
        on_lock_acquire;
      }
      body
  in
  Obs.finish "engine.interp" engine_t0;
  {
    time;
    stats;
    trace = Trace.Buf.to_records g.trace_buf;
    output = List.rev !(g.output_buf);
    shared = g.shared;
    layout;
    info;
  }

let shared_value (o : outcome) arr i =
  let base = Label.base o.layout arr in
  let entry =
    match Label.find_array o.layout arr with
    | Some e -> e
    | None -> raise Not_found
  in
  if i < 0 || i >= entry.Label.elems then
    invalid_arg "Interp.shared_value: index out of bounds";
  o.shared.((base / entry.Label.elem_size) + i)
