(** Convenience drivers for common simulation set-ups.

    All three execution engines are available: the tree-walking {!Interp},
    the closure-compiling {!Compile} and the quantum-synchronized parallel
    {!Par} (with its domain count). They are equivalent (enforced by
    differential tests); measurement runs default to the compiled
    engine. *)

type engine = Tree_walk | Compiled | Par of int  (** domains *)

val run_with :
  ?poll:(unit -> unit) -> engine -> machine:Machine.t -> Lang.Ast.program ->
  Interp.outcome

val collect_trace :
  ?poll:(unit -> unit) -> ?engine:engine -> machine:Machine.t ->
  Lang.Ast.program -> Interp.outcome
(** Run the (annotation-stripped) program in trace mode: caches flushed at
    barriers, miss trace collected, annotations ignored. Default engine:
    [Compiled]. [poll] is the {!Sched.run} cancellation hook. *)

val measure :
  ?poll:(unit -> unit) -> ?engine:engine -> machine:Machine.t ->
  annotations:bool -> prefetch:bool -> Lang.Ast.program -> Interp.outcome
(** Run in performance mode (no flushes, no trace) and report the
    simulated execution time in [Interp.outcome.time]. Default engine:
    [Compiled]. [poll] is the {!Sched.run} cancellation hook. *)

val source_trace : machine:Machine.t -> string -> Interp.outcome
(** Parse then [collect_trace]. *)

val source_measure :
  machine:Machine.t -> annotations:bool -> prefetch:bool -> string ->
  Interp.outcome
(** Parse then [measure]. *)
