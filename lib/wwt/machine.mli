(** Configuration of the simulated machine and of one simulation run. *)

type annot_mode =
  | Ignore_annotations  (** annotations cost nothing and do nothing *)
  | Execute_annotations  (** annotations act as Dir1SW memory directives *)

type t = {
  nodes : int;
  cache_bytes : int;
  assoc : int;
  block_size : int;  (** bytes *)
  elem_size : int;  (** bytes per language value; 8, so 4 elements/block *)
  costs : Memsys.Network.costs;
  flush_at_barrier : bool;
      (** flush shared-data caches at every barrier (trace collection,
          Section 3.3); off for performance runs *)
  collect_trace : bool;
  annotations : annot_mode;
  prefetch : bool;  (** execute prefetch annotations *)
  quantum : int;
      (** scheduling quantum in cycles: local work is accumulated and the
          fiber yields to the event loop once per quantum, like WWT's
          quantum-based simulation *)
  debug_protocol : bool;
      (** audit the protocol invariants after every transition
          ({!Memsys.Protocol.set_debug_checks}); used by the differential
          fuzzer, off for normal runs *)
  protocol : Memsys.Protocol_id.t;
      (** which coherence backend the memory system runs
          ({!Memsys.Protocol_id.default} = Dir1SW) *)
}

val default : t
(** Scaled machine for the benchmark suite: 8 nodes, 16 KB 4-way caches,
    32-byte blocks — capacity effects appear at scaled problem sizes. *)

val paper : t
(** The machine of Section 6: 32 nodes, 256 KB 4-way, 32-byte blocks. *)

val trace_mode : t -> t
(** Run an unannotated program to collect a trace: caches flushed at
    barriers, trace on, annotations ignored. *)

val perf_mode : annotations:bool -> prefetch:bool -> t -> t
(** Run for time measurement: no barrier flushes, no trace. *)

val elems_per_block : t -> int
