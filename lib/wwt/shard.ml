(* Ownership-shard planner for parallel epoch replay.

   Input: per-node lists of the cache blocks the node touched during the
   recorded epoch (shared reads/writes, rmw, and annotation directives,
   mapped to blocks — false sharing included by construction), plus a
   coupling oracle giving, per block, the bitmask of nodes whose caches a
   replayed transition on that block might reach (directory entry plus
   past-sharer set, computed against the pre-epoch protocol state).

   Output: either a conflict (some block was touched by two nodes, so
   the epoch's transitions interleave and must replay serially), or a
   partition of the nodes into groups such that no replayed transition
   from one group can read or write protocol state attributed to another
   group: each touched block's coupling set lands entirely inside the
   toucher's group, so directory entries, cache lines, past-sharer masks
   and pending prefetches split cleanly along group lines. *)

type plan =
  | Conflict of int  (* a block touched by >= 2 nodes this epoch *)
  | Groups of int array array
      (* disjoint node groups covering [0, nodes); each sorted
         ascending, groups ordered by their least node *)

(* Union-find with path halving; sizes are tiny (<= 62 nodes). *)
let find parent i =
  let i = ref i in
  while parent.(!i) <> !i do
    parent.(!i) <- parent.(parent.(!i));
    i := parent.(!i)
  done;
  !i

let union parent a b =
  let ra = find parent a and rb = find parent b in
  if ra <> rb then if ra < rb then parent.(rb) <- ra else parent.(ra) <- rb

let plan ~nodes ~touched ~couple_mask =
  if Array.length touched <> nodes then
    invalid_arg "Shard.plan: touched array size mismatch";
  let owner = Hashtbl.create 256 in
  let parent = Array.init nodes (fun i -> i) in
  let conflict = ref (-1) in
  (try
     Array.iteri
       (fun node blks ->
         List.iter
           (fun blk ->
             (match Hashtbl.find_opt owner blk with
             | Some n when n <> node ->
                 conflict := blk;
                 raise Exit
             | Some _ -> ()
             | None ->
                 Hashtbl.add owner blk node;
                 (* couple the toucher to every node the block's replay
                    might reach *)
                 let mask = couple_mask blk in
                 let m = ref mask in
                 while !m <> 0 do
                   let peer =
                     (* index of lowest set bit *)
                     let b = !m land - !m in
                     let rec log2 v acc =
                       if v <= 1 then acc else log2 (v lsr 1) (acc + 1)
                     in
                     log2 b 0
                   in
                   if peer < nodes && peer <> node then union parent node peer;
                   m := !m land (!m - 1)
                 done))
           blks)
       touched
   with Exit -> ());
  if !conflict >= 0 then Conflict !conflict
  else begin
    let groups = Hashtbl.create 16 in
    for n = nodes - 1 downto 0 do
      let r = find parent n in
      let prev = try Hashtbl.find groups r with Not_found -> [] in
      Hashtbl.replace groups r (n :: prev)
    done;
    let gs =
      Hashtbl.fold (fun _ ns acc -> Array.of_list ns :: acc) groups []
    in
    let gs = Array.of_list gs in
    Array.sort (fun a b -> compare a.(0) b.(0)) gs;
    Groups gs
  end

(* Pack groups into at most [max_shards] shards, balancing by the given
   per-node weight (recorded event-stream bytes is a good proxy for
   replay work). Greedy longest-processing-time: heaviest group first
   into the lightest shard. Returns per-shard sorted node arrays and a
   node -> shard index map. *)
let pack ~nodes ~max_shards ~weight groups =
  let nshards = max 1 (min max_shards (Array.length groups)) in
  let order = Array.copy groups in
  let gw g = Array.fold_left (fun acc n -> acc + weight n) 0 g in
  Array.sort (fun a b -> compare (gw b) (gw a)) order;
  let loads = Array.make nshards 0 in
  let members = Array.make nshards [] in
  Array.iter
    (fun g ->
      let best = ref 0 in
      for s = 1 to nshards - 1 do
        if loads.(s) < loads.(!best) then best := s
      done;
      loads.(!best) <- loads.(!best) + gw g;
      members.(!best) <- g :: members.(!best))
    order;
  let shards =
    Array.map
      (fun gs ->
        let a = Array.concat gs in
        Array.sort compare a;
        a)
      members
  in
  (* Drop empty shards (more shards requested than groups), keep
     deterministic order by least node. *)
  let shards = Array.of_list
      (List.filter (fun a -> Array.length a > 0) (Array.to_list shards))
  in
  Array.sort (fun a b -> compare a.(0) b.(0)) shards;
  let of_node = Array.make nodes (-1) in
  Array.iteri (fun s ns -> Array.iter (fun n -> of_node.(n) <- s) ns) shards;
  (shards, of_node)
