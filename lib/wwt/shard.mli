(** Ownership-shard planning for parallel epoch replay.

    An epoch's recorded events can replay on several domains when the
    nodes partition into groups whose protocol transitions cannot touch
    each other's state. This module computes that partition from the
    per-node sets of touched blocks and a per-block {e coupling mask}
    (directory entry plus past sharers against the pre-epoch protocol
    state). It is pure — no protocol or scheduler dependencies — so the
    planner's safety properties are directly property-testable. *)

type plan =
  | Conflict of int
      (** Some block (the payload) was touched by two or more nodes this
          epoch; its transitions interleave, so the epoch must replay
          serially. *)
  | Groups of int array array
      (** Disjoint node groups covering [0, nodes): replaying any
          recorded transition of a group's node touches caches,
          directory entries, past-sharer masks and pending prefetches of
          that group's nodes only. Each group is sorted ascending;
          groups are ordered by least node. *)

val plan :
  nodes:int -> touched:int list array -> couple_mask:(int -> int) -> plan
(** [plan ~nodes ~touched ~couple_mask]: [touched.(n)] lists the blocks
    node [n] touched in the epoch (duplicates fine); [couple_mask blk]
    is the bitmask of nodes whose caches a replayed transition on [blk]
    might reach. @raise Invalid_argument on a size mismatch. *)

val pack :
  nodes:int ->
  max_shards:int ->
  weight:(int -> int) ->
  int array array ->
  int array array * int array
(** [pack ~nodes ~max_shards ~weight groups] bin-packs the groups into
    at most [max_shards] shards balanced by the per-node [weight]
    (greedy, heaviest group to lightest shard). Returns the per-shard
    sorted node arrays (ordered by least node, no empties) and the
    node-to-shard-index map. *)
