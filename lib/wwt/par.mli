(** Quantum-synchronized parallel engine: one simulation, many domains,
    bit-identical results.

    Simulated nodes are partitioned across OCaml 5 domains and advance in
    lockstep barrier epochs, following the conservative-window parallel
    discrete-event discipline of the real Wisconsin Wind Tunnel. Each
    epoch is executed twice: once in parallel {e recording mode}, where
    every node runs its compiled closures freely against its own event
    stream, and once in a serial {e replay} that drives the recorded
    events through the real memory system in exactly the order the
    sequential scheduler would have produced. Simulated time, statistics,
    the packed miss trace, printed output and final shared memory are
    therefore bit-identical to {!Compile.run} — the test suite checks
    this for every benchmark and the fuzzer's three-way oracle for random
    programs.

    Programs the recorder cannot reproduce exactly — lock users, or
    programs where one node reads an element another node writes within
    the same epoch (not data-race-free at epoch granularity) — are
    detected by a conflict classifier and transparently re-run on the
    sequential compiled engine, so [run] is total over the same domain as
    {!Compile.run}. *)

val default_domains : nodes:int -> int
(** [min (Jobs.default_jobs ()) nodes], at least 1: the worker count used
    when [?domains] is omitted. Note the composition rule with
    {!Jobs}: an outer per-run fan-out multiplied by inner domains should
    not oversubscribe the machine — use [jobs × domains ≤ cores]. *)

val run :
  ?poll:(unit -> unit) ->
  ?domains:int ->
  machine:Machine.t ->
  Lang.Ast.program ->
  Interp.outcome
(** Like {!Compile.run}, on [domains] domains (default
    {!default_domains}; values above the node count are clamped).
    [poll] is called periodically from the recording workers and the
    replay loop; it may raise {!Sched.Cancelled} to abandon the run.
    @raise Interp.Runtime_error as the sequential engines do.
    @raise Invalid_argument if [domains < 1]. *)
