(** Quantum-synchronized parallel engine: one simulation, many domains,
    bit-identical results.

    Simulated nodes are partitioned across OCaml 5 domains and advance in
    lockstep barrier epochs, following the conservative-window parallel
    discrete-event discipline of the real Wisconsin Wind Tunnel. Each
    epoch is executed twice: once in parallel {e recording mode}, where
    every node runs its compiled closures freely against its own event
    stream, and once in a {e replay} that drives the recorded events
    through the real memory system in exactly the order the sequential
    scheduler would have produced. Simulated time, statistics, the packed
    miss trace, printed output and final shared memory are therefore
    bit-identical to {!Compile.run} — the test suite checks this for
    every benchmark and the fuzzer's three-way oracle for random
    programs.

    Three optimisations keep the replay off the critical path, all
    outcome-preserving (see the implementation for the safety
    arguments):

    - {e Pipelining} — when an epoch is {e clean} (no element written by
      two nodes) and every node parked at its barrier, the next epoch's
      recording overlaps the current epoch's replay on the worker
      domains. On by default; [?pipeline] or [CACHIER_PAR_PIPELINE=0]
      turns it off.
    - {e Sharded replay} — epochs whose touched blocks partition into
      decoupled ownership groups ({!Shard}) replay on several domains
      against {!Memsys.Protocol.shard_view} overlays, with a serial
      ordering pass consuming the precomputed latencies. [?shards] or
      [CACHIER_REPLAY_SHARDS] caps the shard count ([0] = one per
      domain, [1] = always serial).
    - {e Epoch memoization} — barrier-terminated epochs are keyed by
      (event streams, incoming coherence state) in a process-wide LRU
      pool; repeat epochs apply the recorded deltas and skip replay.
      [?memo] or [CACHIER_REPLAY_MEMO] sets the pool capacity in
      epochs ([0] disables; default 64).

    Programs the recorder cannot reproduce exactly — lock users, or
    programs where one node reads an element another node writes within
    the same epoch (not data-race-free at epoch granularity) — are
    detected by a conflict classifier and transparently re-run on the
    sequential compiled engine, so [run] is total over the same domain as
    {!Compile.run}. [Machine.debug_protocol] also forces the classic
    serial replay so invariant violations keep their precise context. *)

val default_domains : nodes:int -> int
(** [min (Jobs.default_jobs ()) nodes], at least 1: the worker count used
    when [?domains] is omitted. Note the composition rule with
    {!Jobs}: an outer per-run fan-out multiplied by inner domains should
    not oversubscribe the machine — use [jobs × domains ≤ cores]. *)

val memo_clear : unit -> unit
(** Empty the process-wide epoch-memo pool (all scopes). Tests use this
    to get cold-versus-warm runs; the service may call it to bound
    memory between unrelated workloads. *)

val run :
  ?poll:(unit -> unit) ->
  ?domains:int ->
  ?pipeline:bool ->
  ?shards:int ->
  ?memo:int ->
  machine:Machine.t ->
  Lang.Ast.program ->
  Interp.outcome
(** Like {!Compile.run}, on [domains] domains (default
    {!default_domains}; [0] also selects the default, so callers can
    plumb "auto" through untouched; values above the node count are
    clamped). [poll] is called periodically from the recording workers
    and the replay loop; it may raise {!Sched.Cancelled} to abandon the
    run.
    @raise Interp.Runtime_error as the sequential engines do.
    @raise Invalid_argument if [domains < 0]. *)
