(** SPMD interpreter: runs a mini-language program on the simulated
    Dir1SW machine.

    Every node executes [main] as a fiber under {!Sched}; shared-array
    accesses are costed by {!Memsys.Protocol} and, in trace mode, recorded
    as miss events grouped into epochs by barrier records (Section 3.3).
    CICO annotations are executed as memory-system directives when the
    machine says so, and are otherwise free no-ops — they never change
    program results. *)

exception Runtime_error of string

type outcome = {
  time : int;  (** simulated execution time in cycles *)
  stats : Memsys.Stats.t;
  trace : Trace.Event.record list;  (** empty unless trace collection is on *)
  output : string list;  (** [print] statements, tagged with the node *)
  shared : Lang.Value.t array;  (** final shared memory, element-indexed *)
  layout : Lang.Label.t;
  info : Lang.Sema.info;
}

val run : ?poll:(unit -> unit) -> machine:Machine.t -> Lang.Ast.program -> outcome
(** [poll] is forwarded to {!Sched.run}: called periodically from the
    scheduler loop, it may raise {!Sched.Cancelled} to abandon the run.
    @raise Runtime_error on out-of-bounds accesses, undefined variables,
    division by zero, zero loop steps, or unknown calls.
    @raise Sched.Deadlock if the program's barriers do not line up. *)

val shared_value : outcome -> string -> int -> Lang.Value.t
(** [shared_value o arr i] reads element [i] of shared array [arr] from the
    final memory image. *)

val noise : int -> float
(** The deterministic [noise] intrinsic: a splitmix64-style hash of the
    argument mapped to [0, 1). Exposed for tests and workload builders. *)

val remove_lock : int -> int list -> int list
(** Remove the innermost occurrence (only) of a lock from a held-lock
    list, preserving outer holds of a reentrantly-acquired lock. Shared
    with {!Compile} so both engines age lock-sets identically. *)
