(** A closure-compiling execution engine, drop-in equivalent to the
    tree-walking {!Interp}.

    Programs are compiled once — variables resolve to frame slots, arrays
    to their layout entries, constants are baked in — and then executed
    several times faster than the tree walk, which matters when sweeping
    benchmark configurations. The cost model, scheduling points and
    protocol interactions replicate {!Interp} exactly; the test suite
    checks that both engines produce identical simulated times, statistics,
    traces and final memory on every benchmark (differential testing).

    One intentional divergence: reading a scalar before assigning it is a
    [Runtime_error] in {!Interp} but yields the integer 0 here (slots are
    pre-initialised); programs that error are outside the equivalence
    contract.

    The compiled representation is additionally the substrate for the
    parallel engine {!Par}: the exported runtime types below let Par run
    the same compiled closures in {e recording mode} ([rt.reco = Some _],
    [rt.quantum = 0]) on worker domains, then replay the recorded event
    streams through the real memory system serially. Everything under
    "Par plumbing" exists for that engine and is not a stable public
    API. *)

val run :
  ?poll:(unit -> unit) -> machine:Machine.t -> Lang.Ast.program ->
  Interp.outcome
(** Compile and execute; the result type is shared with {!Interp}.
    [poll] is forwarded to {!Sched.run} (periodic cancellation hook).
    @raise Interp.Runtime_error on out-of-bounds accesses, division by
    zero, zero loop steps or unknown calls, like the tree walk. *)

val compile_only : machine:Machine.t -> Lang.Ast.program -> unit
(** Run only the compilation pass (used by benchmarks of the tool). *)

(** {1 Par plumbing} *)

exception Returning of Lang.Value.t option
(** Raised by compiled [return] statements; a driver running [cbody]
    directly must catch it. *)

type rt_global = {
  machine : Machine.t;
  layout : Lang.Label.t;
  proto : Memsys.Protocol.t;
  shared : Lang.Value.t array;
  elem_shift : int;  (** log2 elem_size, or -1 if not a power of two *)
  trace_buf : Trace.Buf.t;
  output_buf : string list ref;
}
(** Simulation-wide runtime state, shared by all nodes. *)

type rt = {
  node : int;
  privates : Lang.Value.t array array;
  lop : int;
  quantum : int;
  mutable pending : int;
  mutable base_now : int;
  mutable held_locks : int list;
  mutable held_id : int;
  reco : Record.t option;
      (** [Some _] only under Par's recording phase, with [quantum = 0] so
          every yield check reaches the recording branch; [None] keeps the
          sequential paths exactly what they were. *)
}
(** Per-node runtime state. *)

type frame
(** A procedure activation record (boxed and unboxed slots). *)

val make_frame : int -> frame

type cstmt = rt_global -> rt -> frame -> unit

type cproc = { arity : int; nslots : int; mutable cbody : cstmt }

type annot_desc = {
  a_entry : Lang.Label.entry;
  a_directive : Memsys.Protocol.t -> node:int -> addr:int -> now:int -> int;
}
(** What Par's replay needs to re-execute a recorded ANNOT event: the
    array the directive targets and the protocol latency function. *)

type cenv
(** The compile-time environment, kept opaque apart from the accessors
    below. *)

val compile :
  machine:Machine.t -> Lang.Ast.program -> Lang.Sema.info * Lang.Label.t * cenv
(** Semantic check + closure compilation of every procedure.
    @raise Interp.Runtime_error like {!run} for compile-time errors. *)

val annot_table : cenv -> annot_desc array
(** Annotation sites in registration order; a recorded ANNOT event's [id]
    indexes this table. *)

val main_proc : cenv -> cproc option

val flush_pending : rt -> unit
(** Advance the scheduler by the accumulated [pending] cycles (or, in
    recording mode, emit a FLUSH event). *)

val elem_shift_of : int -> int
val elem_index : rt_global -> int -> int
