(** A closure-compiling execution engine, drop-in equivalent to the
    tree-walking {!Interp}.

    Programs are compiled once — variables resolve to frame slots, arrays
    to their layout entries, constants are baked in — and then executed
    several times faster than the tree walk, which matters when sweeping
    benchmark configurations. The cost model, scheduling points and
    protocol interactions replicate {!Interp} exactly; the test suite
    checks that both engines produce identical simulated times, statistics,
    traces and final memory on every benchmark (differential testing).

    One intentional divergence: reading a scalar before assigning it is a
    [Runtime_error] in {!Interp} but yields the integer 0 here (slots are
    pre-initialised); programs that error are outside the equivalence
    contract. *)

val run :
  ?poll:(unit -> unit) -> machine:Machine.t -> Lang.Ast.program ->
  Interp.outcome
(** Compile and execute; the result type is shared with {!Interp}.
    [poll] is forwarded to {!Sched.run} (periodic cancellation hook).
    @raise Interp.Runtime_error on out-of-bounds accesses, division by
    zero, zero loop steps or unknown calls, like the tree walk. *)

val compile_only : machine:Machine.t -> Lang.Ast.program -> unit
(** Run only the compilation pass (used by benchmarks of the tool). *)
