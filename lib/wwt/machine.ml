type annot_mode = Ignore_annotations | Execute_annotations

type t = {
  nodes : int;
  cache_bytes : int;
  assoc : int;
  block_size : int;
  elem_size : int;
  costs : Memsys.Network.costs;
  flush_at_barrier : bool;
  collect_trace : bool;
  annotations : annot_mode;
  prefetch : bool;
  quantum : int;
  debug_protocol : bool;
  protocol : Memsys.Protocol_id.t;
}

let default =
  {
    nodes = 8;
    cache_bytes = 16 * 1024;
    assoc = 4;
    block_size = 32;
    elem_size = 8;
    costs = Memsys.Network.default;
    flush_at_barrier = false;
    collect_trace = false;
    annotations = Ignore_annotations;
    prefetch = false;
    quantum = 64;
    debug_protocol = false;
    protocol = Memsys.Protocol_id.default;
  }

let paper =
  {
    default with
    nodes = 32;
    cache_bytes = 256 * 1024;
  }

let trace_mode t =
  {
    t with
    flush_at_barrier = true;
    collect_trace = true;
    annotations = Ignore_annotations;
    prefetch = false;
  }

let perf_mode ~annotations ~prefetch t =
  {
    t with
    flush_at_barrier = false;
    collect_trace = false;
    annotations = (if annotations then Execute_annotations else Ignore_annotations);
    prefetch;
  }

let elems_per_block t = t.block_size / t.elem_size
