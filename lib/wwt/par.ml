(* Quantum-synchronized parallel engine: one simulation, many domains,
   bit-identical results.

   The sequential engines interleave all simulated nodes on one core
   through [Sched]'s event loop. Following the conservative-window PDES
   discipline of the real Wisconsin Wind Tunnel, this engine exploits the
   barrier structure of the programs instead: between two global barriers
   no node can observe another node's memory-system activity except
   through shared data itself, so a whole barrier epoch can serve as the
   synchronization window.

   Each epoch runs in two phases:

   {b Phase A (parallel recording).} Every node's compiled closures run
   in {e recording mode} ([rt.reco = Some _], [rt.quantum = 0]) on a
   fixed worker domain (node [n] on member [n mod domains]). Instead of
   performing scheduler effects and protocol calls, the hot-path seams in
   {!Compile} append compact events (see {!Record}) to a per-node stream:
   local-op charges are delta-encoded, shared accesses carry their
   pc/address (and stored value), annotations their site id and element
   range. Nodes suspend at the barrier via their effect handler. Shared
   reads during this phase return whatever is in memory — possibly stale
   under a race — so every touched element is also tagged with per-node
   read/write/rmw marks.

   {b Conflict classification.} After the round, the marks are merged: if
   any element was read by one node and written (or rmw-accumulated) by
   another in the same epoch, the recorded streams cannot be trusted and
   the whole run falls back to the sequential compiled engine (as it does
   for locks and other unsupported constructs). Write-write and rmw-rmw
   sharing is fine: replay re-applies those effects in the true order.
   Soundness: for Phase A to diverge from the sequential execution at
   all, some node must read a value another node wrote within the epoch —
   and exactly that pattern is what the classifier rejects. "Classified
   safe" therefore implies the recorded streams are exact.

   {b Phase B (serial replay).} A hand-written loop replays all streams
   through the real {!Memsys.Protocol}, mirroring [Sched.run]'s scheduling
   exactly: same initial order, same priority queue with FIFO ties, same
   advance fast-path semantics, same barrier-release rule. Misses land in
   the shared {!Trace.Buf}, statistics in the protocol's {!Memsys.Stats},
   prints in the output buffer — in the sequential order, so every
   observable of the outcome is bit-identical to [Compile.run]. Elements
   touched by recognised read-modify-write accumulations are restored
   from an epoch-start snapshot first, then the recorded increments are
   re-applied at their true schedule positions, which reproduces exact
   floating-point results without assuming commutativity.

   The speedup comes from Phase A: expression evaluation, control flow
   and cost accounting (the bulk of simulation time) run on all domains,
   while the serial Phase B only decodes events and drives the protocol. *)

open Lang

exception Fallback of string
(* Internal: abandon the parallel attempt, rerun sequentially. *)

(* Observability: classifier fallbacks and cumulative worker wait time.
   All updates are gated on [Obs.enabled] / a zero [Obs.start] stamp, so
   disabled runs pay one branch per round and allocate nothing. *)
let obs_fallbacks = Obs.Registry.counter "par.fallbacks"
let obs_worker_idle = Obs.Registry.counter "par.worker_idle_ns"

type node_state = {
  rc : Record.t;
  rt : Compile.rt;
  frame : Compile.frame;
  mutable cont : (unit, unit) Effect.Deep.continuation option;
  mutable started : bool;
  (* replay cursors into [rc]'s stream and side arrays *)
  mutable pos : int;
  mutable vpos : int;
  mutable spos : int;
}

let default_domains ~nodes = max 1 (min (Jobs.default_jobs ()) nodes)

let run ?poll ?domains ~machine program =
  let nodes = machine.Machine.nodes in
  let ndomains =
    match domains with
    | Some d ->
        if d < 1 then invalid_arg "Par.run: domains must be positive";
        min d (max 1 nodes)
    | None -> default_domains ~nodes
  in
  let info, layout, env = Compile.compile ~machine program in
  let proto =
    Memsys.Protocol.create ~nodes ~cache_bytes:machine.Machine.cache_bytes
      ~assoc:machine.Machine.assoc ~block_size:machine.Machine.block_size
      ~costs:machine.Machine.costs
  in
  if machine.Machine.debug_protocol then
    Memsys.Protocol.set_debug_checks proto true;
  let total_elems =
    (Label.total_bytes layout + machine.Machine.elem_size - 1)
    / machine.Machine.elem_size
  in
  let g =
    {
      Compile.machine;
      layout;
      proto;
      shared = Array.make (max 1 total_elems) Value.zero;
      elem_shift = Compile.elem_shift_of machine.Machine.elem_size;
      trace_buf = Trace.Buf.create ();
      output_buf = ref [];
    }
  in
  if machine.Machine.collect_trace then
    List.iter
      (fun (name, lo, hi) -> Trace.Buf.add_label g.Compile.trace_buf ~name ~lo ~hi)
      (Label.to_label_records layout);
  let stats = Memsys.Protocol.stats proto in
  let main =
    match Compile.main_proc env with
    | Some cp -> cp
    | None -> raise (Interp.Runtime_error "program has no main procedure")
  in
  let annots = Compile.annot_table env in
  let sts =
    Array.init nodes (fun node ->
        let rc = Record.create ~node ~elems:total_elems ~poll in
        let rt =
          {
            Compile.node;
            privates =
              Array.of_list
                (List.map
                   (fun (_, elems) -> Array.make elems Value.zero)
                   info.Sema.privates);
            lop = machine.Machine.costs.Memsys.Network.local_op;
            quantum = 0;  (* recording: every yield check emits an event *)
            pending = 0;
            base_now = 0;
            held_locks = [];
            held_id = Trace.Buf.empty_held;
            reco = Some rc;
          }
        in
        {
          rc;
          rt;
          frame = Compile.make_frame main.Compile.nslots;
          cont = None;
          started = false;
          pos = 0;
          vpos = 0;
          spos = 0;
        })
  in

  (* ---- Phase A: recording fibers ---- *)

  let handler st : (unit, unit) Effect.Deep.handler =
    let rc = st.rc in
    {
      Effect.Deep.retc =
        (fun () ->
          (* the body's trailing [flush_pending] already emitted FLUSH *)
          Record.finish rc st.rt.Compile.pending;
          st.rt.Compile.pending <- 0);
      exnc =
        (fun e ->
          match e with
          | Record.Unsupported msg -> rc.Record.fallback <- Some msg
          | e -> Record.error rc e);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Sched.Barrier_sync _ ->
              (* BARRIER was emitted by the compiled [Sbarrier] seam; park
                 until the next epoch's recording round resumes us *)
              Some
                (fun (k : (a, unit) Effect.Deep.continuation) ->
                  st.cont <- Some k)
          | Sched.Now | Sched.Advance _ | Sched.Lock_acquire _
          | Sched.Lock_release _ ->
              (* the recording seams never perform these; if one slips
                 through, surface it as a whole-run fallback *)
              Some
                (fun (k : (a, unit) Effect.Deep.continuation) ->
                  Effect.Deep.discontinue k
                    (Record.Unsupported "scheduler effect in recording mode"))
          | _ -> None);
    }
  in
  let record_round node =
    let st = sts.(node) in
    Record.reset_stream st.rc;
    st.pos <- 0;
    st.vpos <- 0;
    st.spos <- 0;
    if not st.started then begin
      st.started <- true;
      Effect.Deep.match_with
        (fun () ->
          (try main.Compile.cbody g st.rt st.frame
           with Compile.Returning _ -> ());
          Compile.flush_pending st.rt)
        () (handler st)
    end
    else
      match st.cont with
      | Some k ->
          st.cont <- None;
          Effect.Deep.continue k ()
      | None -> ()  (* finished in an earlier epoch: empty stream *)
  in

  (* Worker team: one persistent domain per member beyond the
     orchestrator, each owning the nodes congruent to its index so a
     parked continuation is always resumed on the domain that created
     it. Round handshake over a mutex/condition pair; the mutex transfer
     also publishes stream and shared-memory writes between phases. *)
  let nworkers = ndomains - 1 in
  let mtx = Mutex.create () in
  let cv = Condition.create () in
  let round_no = ref 0 in
  let done_w = ref 0 in
  let stop = ref false in
  let fatal : exn option ref = ref None in
  let worker member =
    let seen = ref 0 in
    let running = ref true in
    while !running do
      Mutex.lock mtx;
      let idle_t0 = Obs.start () in
      while (not !stop) && !round_no = !seen do
        Condition.wait cv mtx
      done;
      if idle_t0 <> 0 then
        Obs.Counter.add obs_worker_idle (Obs.now_ns () - idle_t0);
      if !stop then begin
        Mutex.unlock mtx;
        running := false
      end
      else begin
        seen := !round_no;
        Mutex.unlock mtx;
        (try
           let node = ref member in
           while !node < nodes do
             record_round !node;
             node := !node + ndomains
           done
         with e -> (
           Mutex.lock mtx;
           (match !fatal with None -> fatal := Some e | Some _ -> ());
           Mutex.unlock mtx));
        Mutex.lock mtx;
        incr done_w;
        if !done_w = nworkers then Condition.broadcast cv;
        Mutex.unlock mtx
      end
    done
  in
  let team =
    Array.init nworkers (fun i -> Domain.spawn (fun () -> worker (i + 1)))
  in
  let shutdown () =
    Mutex.lock mtx;
    stop := true;
    Condition.broadcast cv;
    Mutex.unlock mtx;
    Array.iter Domain.join team
  in
  let run_phase_a () =
    if nworkers = 0 then
      for node = 0 to nodes - 1 do
        record_round node
      done
    else begin
      Mutex.lock mtx;
      incr round_no;
      done_w := 0;
      Condition.broadcast cv;
      Mutex.unlock mtx;
      let node = ref 0 in
      while !node < nodes do
        record_round !node;
        node := !node + ndomains
      done;
      Mutex.lock mtx;
      while !done_w < nworkers do
        Condition.wait cv mtx
      done;
      let f = !fatal in
      Mutex.unlock mtx;
      match f with Some e -> raise e | None -> ()
    end
  in

  (* ---- conflict classification ---- *)

  let snap = Array.make (Array.length g.Compile.shared) Value.zero in
  (* merged per-element marks for the current round: Record's read/write/
     rmw bits plus bit 3 = touched by more than one node *)
  let m_multi = 8 in
  let agg = Bytes.make (max 1 total_elems) '\000' in
  let owner = Array.make (max 1 total_elems) (-1) in
  let tag = Array.make (max 1 total_elems) 0 in
  let round_id = ref 0 in
  let classify_and_restore () =
    incr round_id;
    let round = !round_id in
    Array.iter
      (fun st ->
        let rc = st.rc in
        for j = 0 to rc.Record.ntouched - 1 do
          let e = rc.Record.touched.(j) in
          let m = Char.code (Bytes.unsafe_get rc.Record.marks e) in
          if tag.(e) <> round then begin
            tag.(e) <- round;
            owner.(e) <- rc.Record.node;
            Bytes.unsafe_set agg e (Char.unsafe_chr m)
          end
          else begin
            let a = Char.code (Bytes.unsafe_get agg e) in
            let a =
              a lor m lor (if owner.(e) <> rc.Record.node then m_multi else 0)
            in
            Bytes.unsafe_set agg e (Char.unsafe_chr a)
          end
        done)
      sts;
    let unsafe = ref false in
    Array.iter
      (fun st ->
        let rc = st.rc in
        for j = 0 to rc.Record.ntouched - 1 do
          let e = rc.Record.touched.(j) in
          let a = Char.code (Bytes.unsafe_get agg e) in
          if
            a land m_multi <> 0
            && a land Record.m_read <> 0
            && a land (Record.m_write lor Record.m_rmw) <> 0
          then unsafe := true;
          (* rmw elements were provisionally accumulated during recording;
             rewind them so replay can re-apply the increments in true
             schedule order (idempotent across overlapping touch lists) *)
          if a land Record.m_rmw <> 0 then
            g.Compile.shared.(e) <- snap.(e)
        done;
        Record.clear_marks rc)
      sts;
    if !unsafe then raise (Fallback "cross-node read/write conflict")
  in

  (* ---- Phase B: serial replay, mirroring Sched.run ---- *)

  let quantum = machine.Machine.quantum in
  let clock = Array.make nodes 0 in
  let pend = Array.make nodes 0 in
  let q : int Pqueue.t = Pqueue.create () in
  let finished = ref 0 in
  let waiters : (int * int) list ref = ref [] in
  let round_over = ref false in
  let release_barrier () =
    let ws = List.rev !waiters in
    waiters := [];
    let vt =
      machine.Machine.costs.Memsys.Network.barrier
      + Array.fold_left max 0 clock
    in
    Array.fill clock 0 nodes vt;
    let arrivals = List.sort compare ws in
    stats.Memsys.Stats.barriers <- stats.Memsys.Stats.barriers + 1;
    if machine.Machine.flush_at_barrier then
      for node = 0 to nodes - 1 do
        Memsys.Protocol.flush_node proto ~node
      done;
    Memsys.Protocol.sample_occupancy proto;
    if machine.Machine.collect_trace then
      List.iter
        (fun (node, bpc) ->
          Trace.Buf.add_barrier g.Compile.trace_buf ~node ~pc:bpc ~vt)
        arrivals;
    List.iter (fun (n, _) -> Pqueue.push q ~prio:vt n) ws;
    (* the next events for the released nodes live in the next epoch's
       streams: hand control back to the orchestrator to record them *)
    round_over := true
  in
  let get_byte st =
    let b = Char.code (Bytes.unsafe_get st.rc.Record.buf st.pos) in
    st.pos <- st.pos + 1;
    b
  in
  let get_varint st =
    let rec go shift acc =
      let b = get_byte st in
      let acc = acc lor ((b land 0x7f) lsl shift) in
      if b < 0x80 then acc else go (shift + 7) acc
    in
    go 0 0
  in
  let record_replay_miss node ~pc ~addr packed =
    let kind = Memsys.Protocol.packed_kind packed in
    if kind <> Memsys.Protocol.no_miss && machine.Machine.collect_trace
    then begin
      let bkind =
        if kind = Memsys.Protocol.read_miss then Trace.Buf.kind_read
        else if kind = Memsys.Protocol.write_miss then Trace.Buf.kind_write
        else Trace.Buf.kind_fault
      in
      Trace.Buf.add_miss g.Compile.trace_buf ~node ~pc ~addr ~kind:bkind
        ~held:Trace.Buf.empty_held
    end;
    pend.(node) <- pend.(node) + Memsys.Protocol.packed_latency packed
  in
  (* Advance the node's clock by its pending cycles. Mirrors Sched's
     [Advance] handler: park (and yield to the queue) only when another
     runnable node is at or before the new time — equal priorities must
     round-trip through the queue to keep FIFO order. Sched's bounded
     fast-path depth needs no mirror: a forced park there pushes the
     unique strict minimum, which pops straight back with no side
     effects, so it cannot reorder anything. *)
  let advance_parks node =
    clock.(node) <- clock.(node) + pend.(node);
    pend.(node) <- 0;
    match Pqueue.peek_prio q with
    | Some p -> p <= clock.(node)
    | None -> false
  in
  let step node =
    let st = sts.(node) in
    let rc = st.rc in
    let rec loop () =
      let t = get_byte st in
      let d = get_varint st in
      pend.(node) <- pend.(node) + d;
      if t = Record.t_ycheck then begin
        if pend.(node) >= quantum && pend.(node) > 0 then begin
          if advance_parks node then Pqueue.push q ~prio:clock.(node) node
          else loop ()
        end
        else loop ()
      end
      else if t = Record.t_flush then begin
        if pend.(node) > 0 then begin
          if advance_parks node then Pqueue.push q ~prio:clock.(node) node
          else loop ()
        end
        else loop ()
      end
      else if t = Record.t_read || t = Record.t_rmw_rd then begin
        let pc = get_varint st in
        let addr = get_varint st in
        let p =
          Memsys.Protocol.read_p proto ~node ~addr
            ~now:(clock.(node) + pend.(node))
        in
        record_replay_miss node ~pc ~addr p;
        loop ()
      end
      else if t = Record.t_write || t = Record.t_rmw_wr then begin
        let pc = get_varint st in
        let addr = get_varint st in
        let p =
          Memsys.Protocol.write_p proto ~node ~addr
            ~now:(clock.(node) + pend.(node))
        in
        record_replay_miss node ~pc ~addr p;
        let v = rc.Record.vals.(st.vpos) in
        st.vpos <- st.vpos + 1;
        let e = Compile.elem_index g addr in
        if t = Record.t_write then g.Compile.shared.(e) <- v
        else g.Compile.shared.(e) <- Value.add g.Compile.shared.(e) v;
        loop ()
      end
      else if t = Record.t_annot then begin
        let id = get_varint st in
        let lo = get_varint st in
        let hi = get_varint st in
        let desc = annots.(id) in
        let entry = desc.Compile.a_entry in
        let elem_size = entry.Label.elem_size in
        let block_size = machine.Machine.block_size in
        let lo_addr = entry.Label.base + (lo * elem_size) in
        let hi_addr = entry.Label.base + (hi * elem_size) + elem_size - 1 in
        List.iter
          (fun blk ->
            let addr = Memsys.Block.base_addr ~block_size blk in
            let lat =
              desc.Compile.a_directive proto ~node ~addr
                ~now:(clock.(node) + pend.(node))
            in
            pend.(node) <- pend.(node) + lat)
          (Memsys.Block.blocks_of_range ~block_size ~lo:lo_addr ~hi:hi_addr);
        loop ()
      end
      else if t = Record.t_print then begin
        let s = rc.Record.strs.(st.spos) in
        st.spos <- st.spos + 1;
        g.Compile.output_buf := s :: !(g.Compile.output_buf);
        loop ()
      end
      else if t = Record.t_barrier then begin
        let pc = get_varint st in
        waiters := (node, pc) :: !waiters;
        if List.length !waiters = nodes then release_barrier ()
      end
      else if t = Record.t_finish then incr finished
      else if t = Record.t_error then (
        match rc.Record.error with
        | Some e -> raise e
        | None -> assert false)
      else assert false
    in
    loop ()
  in
  let poll_countdown = ref 256 in
  let rec drain () =
    if !round_over then ()
    else
      match Pqueue.pop q with
      | Some (_, node) ->
          (match poll with
          | Some p ->
              decr poll_countdown;
              if !poll_countdown <= 0 then begin
                poll_countdown := 256;
                p ()
              end
          | None -> ());
          step node;
          drain ()
      | None -> ()
  in

  (* ---- epochs ---- *)

  let attempt () =
    for node = 0 to nodes - 1 do
      Pqueue.push q ~prio:0 node
    done;
    let running = ref true in
    while !running do
      Array.blit g.Compile.shared 0 snap 0 (Array.length snap);
      let phase_a_t0 = Obs.start () in
      run_phase_a ();
      Array.iter
        (fun st ->
          match st.rc.Record.fallback with
          | Some msg -> raise (Fallback msg)
          | None -> ())
        sts;
      classify_and_restore ();
      Obs.finish "par.phase_a" phase_a_t0;
      round_over := false;
      let phase_b_t0 = Obs.start () in
      drain ();
      Obs.finish "par.phase_b" phase_b_t0;
      if not !round_over then begin
        (* queue empty: every node has finished or is parked at a
           barrier that can no longer release — exactly Sched's end *)
        running := false;
        if !finished < nodes then begin
          let parked = List.length !waiters in
          raise
            (Sched.Deadlock
               (Printf.sprintf
                  "%d of %d nodes finished; %d parked at a barrier, %d \
                   waiting on locks"
                  !finished nodes parked 0))
        end
      end
    done;
    Array.iter
      (fun st ->
        stats.Memsys.Stats.private_reads <-
          stats.Memsys.Stats.private_reads + st.rc.Record.priv_reads;
        stats.Memsys.Stats.private_writes <-
          stats.Memsys.Stats.private_writes + st.rc.Record.priv_writes)
      sts;
    {
      Interp.time = Array.fold_left max 0 clock;
      stats;
      trace = Trace.Buf.to_records g.Compile.trace_buf;
      output = List.rev !(g.Compile.output_buf);
      shared = g.Compile.shared;
      layout;
      info;
    }
  in
  let engine_t0 = Obs.start () in
  match Fun.protect ~finally:shutdown attempt with
  | outcome ->
      Obs.finish "engine.par" engine_t0;
      outcome
  | exception Fallback _ ->
      (* locks, unclassifiable sharing or an over-long stream: rerun the
         whole simulation sequentially from scratch (fresh protocol,
         memory and trace), which supports everything *)
      Obs.finish "engine.par" engine_t0;
      if Obs.enabled () then Obs.Counter.incr obs_fallbacks;
      Compile.run ?poll ~machine program
