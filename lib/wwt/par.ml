(* Quantum-synchronized parallel engine: one simulation, many domains,
   bit-identical results.

   The sequential engines interleave all simulated nodes on one core
   through [Sched]'s event loop. Following the conservative-window PDES
   discipline of the real Wisconsin Wind Tunnel, this engine exploits the
   barrier structure of the programs instead: between two global barriers
   no node can observe another node's memory-system activity except
   through shared data itself, so a whole barrier epoch can serve as the
   synchronization window.

   Each epoch runs in two phases:

   {b Phase A (parallel recording).} Every node's compiled closures run
   in {e recording mode} ([rt.reco = Some _], [rt.quantum = 0]) on a
   fixed worker domain. Instead of performing scheduler effects and
   protocol calls, the hot-path seams in {!Compile} append compact events
   (see {!Record}) to a per-node stream: local-op charges are
   delta-encoded, shared accesses carry their pc/address (and stored
   value), annotations their site id and element range. Nodes suspend at
   the barrier via their effect handler. Shared reads during this phase
   return whatever is in memory — possibly stale under a race — so every
   touched element is also tagged with per-node read/write/rmw marks.

   {b Conflict classification.} After the round, the marks are merged: if
   any element was read by one node and written (or rmw-accumulated) by
   another in the same epoch, the recorded streams cannot be trusted and
   the whole run falls back to the sequential compiled engine (as it does
   for locks and other unsupported constructs). Write-write and rmw-rmw
   sharing is fine: replay re-applies those effects in the true order.
   Soundness: for Phase A to diverge from the sequential execution at
   all, some node must read a value another node wrote within the epoch —
   and exactly that pattern is what the classifier rejects. "Classified
   safe" therefore implies the recorded streams are exact. The classifier
   additionally grades each safe epoch {e clean} when no element was
   written (or rmw'd) by more than one node: in a clean epoch the
   provisional memory left by recording is already the exact final
   memory, which unlocks the pipelined and memoized paths below.

   {b Phase B (replay).} The recorded streams replay through the real
   {!Memsys.Protocol}, mirroring [Sched.run]'s scheduling exactly: same
   initial order, same priority queue with FIFO ties, same advance
   fast-path semantics, same barrier-release rule — so every observable
   of the outcome (time, statistics, packed trace, output, memory) is
   bit-identical to [Compile.run]. Three optimisations stack on top, all
   outcome-preserving:

   - {e Pipelining.} When an epoch is clean and every node parked at the
     barrier, its replay cannot touch shared program memory (recording
     already left the exact values) and is guaranteed to end in a
     barrier release — so the next epoch's recording is launched on the
     worker domains {e before} replaying this one, overlapping the two
     phases. A two-slot buffer in {!Record} ([Record.flip]) keeps the
     replayed epoch's streams stable while workers record into the other
     slot; the round handshake provides the memory-publication fences.

   - {e Sharded replay.} The epoch's touched blocks (conflict marks plus
     recorded annotation ranges) are partitioned by ownership
     ({!Shard.plan}): nodes whose transitions cannot reach each other's
     protocol state — couplings given by {!Memsys.Protocol.couple_mask}
     against the pre-epoch state — replay on separate domains against
     {!Memsys.Protocol.shard_view} overlays, computing every protocol
     call's latency in parallel. The views merge deterministically
     ({!Memsys.Protocol.merge_shard}), and a serial {e ordering pass}
     re-runs the scheduler loop consuming the precomputed latencies, so
     trace order, printed output, memory effects and virtual time are
     produced exactly as the serial replay would. Any block touched by
     two nodes in one epoch forces the serial path for that epoch.

   - {e Epoch memoization.} A clean or dirty epoch whose replay ran to a
     barrier is remembered under (event streams, incoming coherence
     state): the key holds the raw stream bytes, recorded values/prints,
     the epoch's queue order, rmw incoming values and a canonical digest
     of the protocol state ({!Memsys.Protocol.state_digest}); the entry
     holds the protocol snapshot at epoch end, the statistics delta, the
     trace/output/memory effects and the barrier arrival order. A later
     identical epoch — IDE-style repeat workloads through cachierd —
     applies the recorded deltas and skips phase B entirely. Entries are
     only materialised the second time a key is seen, so one-shot runs
     pay just the digest. *)

open Lang

exception Fallback of string
(* Internal: abandon the parallel attempt, rerun sequentially. *)

(* ---- tuning knobs ----
   Optional arguments take precedence; environment variables set the
   defaults so the service and benchmarks can steer the engine without
   API changes. *)

let env_flag name default =
  match Sys.getenv_opt name with
  | Some ("0" | "false" | "no" | "off") -> false
  | Some _ -> true
  | None -> default

let env_int name default =
  match Sys.getenv_opt name with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some v -> v
      | None -> default)
  | None -> default

let default_pipeline () = env_flag "CACHIER_PAR_PIPELINE" true
let default_shards () = env_int "CACHIER_REPLAY_SHARDS" 0
let default_memo () = env_int "CACHIER_REPLAY_MEMO" 64

(* Observability: classifier fallbacks, cumulative worker wait time, and
   the per-epoch routing decisions of the replay engine. All updates are
   gated on [Obs.enabled] / a zero [Obs.start] stamp, so disabled runs
   pay one branch per round and allocate nothing. *)
let obs_fallbacks = Obs.Registry.counter "par.fallbacks"
let obs_worker_idle = Obs.Registry.counter "par.worker_idle_ns"
let obs_memo_hits = Obs.Registry.counter "par.memo_hits"
let obs_memo_misses = Obs.Registry.counter "par.memo_misses"
let obs_shard_epochs = Obs.Registry.counter "par.shard_epochs"
let obs_serial_epochs = Obs.Registry.counter "par.serial_epochs"
let obs_pipelined_epochs = Obs.Registry.counter "par.pipelined_epochs"

(* ---- epoch memoization pool ----

   Keyed by everything the replay of one epoch depends on; shared across
   runs (and across service requests) under a mutex, scoped by a digest
   of the (machine, program) pair so unrelated workloads never alias. *)
module Memo = struct
  type data = {
    d_snap : Memsys.Protocol.snapshot;  (* coherence state at epoch end *)
    d_stats : Memsys.Stats.t;  (* counter delta over the epoch *)
    d_misses : (int * int * int * int) array;  (* node, pc, addr, kind *)
    d_arrivals : (int * int) array;  (* barrier arrival order: node, pc *)
    d_writes : (int * bool * Value.t) array;  (* elem, is_add, value *)
    d_output : string array;  (* printed lines, in order *)
    d_advance : int;  (* epoch duration: vt_end - vt0 *)
    d_end : int;  (* absolute vt_end when stored, for rebasing *)
    d_clean : bool;  (* memory effects already in place on a hit *)
  }

  type key = {
    k_dig : int * int;  (* Protocol.state_digest at epoch start *)
    k_order : int array;  (* scheduler queue order at epoch start *)
    k_rmw : (int * Value.t) array;  (* rmw elements and incoming values *)
    k_streams : string array;  (* per-node raw stream bytes *)
    k_vals : Value.t array array;
    k_strs : string array array;
  }

  type entry = {
    e_key : key;
    mutable e_data : data option;  (* [None]: stub, seen once *)
    mutable e_stamp : int;  (* LRU clock *)
  }

  let mu = Mutex.create ()
  let tbl : (string, entry) Hashtbl.t = Hashtbl.create 64
  let tick = ref 0

  let clear () =
    Mutex.lock mu;
    Hashtbl.reset tbl;
    Mutex.unlock mu

  (* Current-epoch materials, referencing the recorder shadow slots
     directly so lookups copy nothing. *)
  type materials = {
    m_dig : int * int;
    m_order : int array;
    m_rmw : (int * Value.t) array;
    m_streams : (Bytes.t * int) array;  (* buffer, length *)
    m_vals : (Value.t array * int) array;
    m_strs : (string array * int) array;
  }

  let hash ~scope m =
    let b = Buffer.create 1024 in
    Buffer.add_string b scope;
    let d1, d2 = m.m_dig in
    Buffer.add_string b (string_of_int d1);
    Buffer.add_char b ',';
    Buffer.add_string b (string_of_int d2);
    Array.iter
      (fun n ->
        Buffer.add_char b ';';
        Buffer.add_string b (string_of_int n))
      m.m_order;
    Array.iter
      (fun (e, v) ->
        Buffer.add_char b '|';
        Buffer.add_string b (string_of_int e);
        Buffer.add_char b ':';
        Buffer.add_string b (string_of_int (Hashtbl.hash v)))
      m.m_rmw;
    Array.iter
      (fun (buf, len) ->
        Buffer.add_char b '#';
        Buffer.add_string b (string_of_int len);
        Buffer.add_subbytes b buf 0 len)
      m.m_streams;
    Array.iter
      (fun (vals, n) ->
        Buffer.add_char b '$';
        for i = 0 to n - 1 do
          Buffer.add_string b (string_of_int (Hashtbl.hash vals.(i)));
          Buffer.add_char b ','
        done)
      m.m_vals;
    Array.iter
      (fun (strs, n) ->
        Buffer.add_char b '@';
        for i = 0 to n - 1 do
          Buffer.add_string b (string_of_int (String.length strs.(i)));
          Buffer.add_char b ':';
          Buffer.add_string b strs.(i)
        done)
      m.m_strs;
    Digest.string (Buffer.contents b)

  let stream_eq s (buf, len) =
    String.length s = len
    &&
    let rec go i =
      i = len || (String.unsafe_get s i = Bytes.unsafe_get buf i && go (i + 1))
    in
    go 0

  let side_eq stored (arr, n) =
    Array.length stored = n
    &&
    let rec go i = i = n || (stored.(i) = arr.(i) && go (i + 1)) in
    go 0

  let key_matches k m =
    k.k_dig = m.m_dig && k.k_order = m.m_order && k.k_rmw = m.m_rmw
    && Array.length k.k_streams = Array.length m.m_streams
    && (let ok = ref true in
        Array.iteri
          (fun i s -> if not (stream_eq s m.m_streams.(i)) then ok := false)
          k.k_streams;
        !ok)
    && (let ok = ref true in
        Array.iteri
          (fun i v -> if not (side_eq v m.m_vals.(i)) then ok := false)
          k.k_vals;
        !ok)
    &&
    let ok = ref true in
    Array.iteri
      (fun i s -> if not (side_eq s m.m_strs.(i)) then ok := false)
      k.k_strs;
    !ok

  let freeze m =
    {
      k_dig = m.m_dig;
      k_order = Array.copy m.m_order;
      k_rmw = Array.copy m.m_rmw;
      k_streams =
        Array.map (fun (buf, len) -> Bytes.sub_string buf 0 len) m.m_streams;
      k_vals = Array.map (fun (vals, n) -> Array.sub vals 0 n) m.m_vals;
      k_strs = Array.map (fun (strs, n) -> Array.sub strs 0 n) m.m_strs;
    }

  let evict_to cap =
    while Hashtbl.length tbl > cap do
      let worst = ref None in
      Hashtbl.iter
        (fun h e ->
          match !worst with
          | Some (_, s) when s <= e.e_stamp -> ()
          | _ -> worst := Some (h, e.e_stamp))
        tbl;
      match !worst with Some (h, _) -> Hashtbl.remove tbl h | None -> ()
    done

  (* One probe per epoch: a hit returns the stored deltas; a first
     sighting inserts a key-only stub; a second sighting asks the caller
     to capture this epoch's replay and [promote] it. *)
  let query ~cap ~scope m =
    let h = hash ~scope m in
    Mutex.lock mu;
    incr tick;
    let r =
      match Hashtbl.find_opt tbl h with
      | Some e when key_matches e.e_key m -> (
          e.e_stamp <- !tick;
          match e.e_data with
          | Some d -> `Hit d
          | None -> `Promote h)
      | Some _ -> `Fresh  (* digest collision: leave the incumbent *)
      | None ->
          if cap > 0 then begin
            Hashtbl.replace tbl h
              { e_key = freeze m; e_data = None; e_stamp = !tick };
            evict_to cap
          end;
          `Fresh
    in
    Mutex.unlock mu;
    r

  let promote h data =
    Mutex.lock mu;
    (match Hashtbl.find_opt tbl h with
    | Some e -> e.e_data <- Some data
    | None -> ());
    Mutex.unlock mu
end

let memo_clear = Memo.clear

type node_state = {
  rc : Record.t;
  rt : Compile.rt;
  frame : Compile.frame;
  mutable cont : (unit, unit) Effect.Deep.continuation option;
  mutable started : bool;
  (* replay cursors into [rc]'s shadow stream and side arrays *)
  mutable pos : int;
  mutable vpos : int;
  mutable spos : int;
}

let default_domains ~nodes = max 1 (min (Jobs.default_jobs ()) nodes)

let run ?poll ?domains ?pipeline ?shards ?memo ~machine program =
  let nodes = machine.Machine.nodes in
  let ndomains =
    match domains with
    | Some 0 | None -> default_domains ~nodes
    | Some d ->
        if d < 0 then invalid_arg "Par.run: domains must be non-negative";
        min d (max 1 nodes)
  in
  let debug = machine.Machine.debug_protocol in
  let pipeline =
    (match pipeline with Some b -> b | None -> default_pipeline ())
    && ndomains > 1 && not debug
  in
  let shards_eff =
    if debug then 1
    else
      match (match shards with Some s -> s | None -> default_shards ()) with
      | 0 -> ndomains
      | s -> max 1 s
  in
  let memo_cap =
    if debug then 0 else max 0 (match memo with Some m -> m | None -> default_memo ())
  in
  (* Cross-run scope for the memo pool: replay depends on the machine
     (costs, geometry, trace mode) and the program (annotation directive
     closures are resolved by site id). Unmarshalable values — there are
     none today — simply disable memoization. *)
  let memo_scope =
    if memo_cap <= 0 then None
    else
      try Some (Digest.string (Marshal.to_string (machine, program) []))
      with _ -> None
  in
  let info, layout, env = Compile.compile ~machine program in
  let proto =
    Memsys.Protocol.create_b ~backend:machine.Machine.protocol ~nodes
      ~cache_bytes:machine.Machine.cache_bytes ~assoc:machine.Machine.assoc
      ~block_size:machine.Machine.block_size ~costs:machine.Machine.costs
  in
  if debug then Memsys.Protocol.set_debug_checks proto true;
  let total_elems =
    (Label.total_bytes layout + machine.Machine.elem_size - 1)
    / machine.Machine.elem_size
  in
  let g =
    {
      Compile.machine;
      layout;
      proto;
      shared = Array.make (max 1 total_elems) Value.zero;
      elem_shift = Compile.elem_shift_of machine.Machine.elem_size;
      trace_buf = Trace.Buf.create ();
      output_buf = ref [];
    }
  in
  if machine.Machine.collect_trace then
    List.iter
      (fun (name, lo, hi) -> Trace.Buf.add_label g.Compile.trace_buf ~name ~lo ~hi)
      (Label.to_label_records layout);
  let stats = Memsys.Protocol.stats proto in
  let main =
    match Compile.main_proc env with
    | Some cp -> cp
    | None -> raise (Interp.Runtime_error "program has no main procedure")
  in
  let annots = Compile.annot_table env in
  let blk_shift =
    let rec log2 n acc = if n <= 1 then acc else log2 (n lsr 1) (acc + 1) in
    log2 machine.Machine.block_size 0
  in
  let sts =
    Array.init nodes (fun node ->
        let rc = Record.create ~node ~elems:total_elems ~poll in
        let rt =
          {
            Compile.node;
            privates =
              Array.of_list
                (List.map
                   (fun (_, elems) -> Array.make elems Value.zero)
                   info.Sema.privates);
            lop = machine.Machine.costs.Memsys.Network.local_op;
            quantum = 0;  (* recording: every yield check emits an event *)
            pending = 0;
            base_now = 0;
            held_locks = [];
            held_id = Trace.Buf.empty_held;
            reco = Some rc;
          }
        in
        {
          rc;
          rt;
          frame = Compile.make_frame main.Compile.nslots;
          cont = None;
          started = false;
          pos = 0;
          vpos = 0;
          spos = 0;
        })
  in

  (* ---- Phase A: recording fibers ---- *)

  let handler st : (unit, unit) Effect.Deep.handler =
    let rc = st.rc in
    {
      Effect.Deep.retc =
        (fun () ->
          (* the body's trailing [flush_pending] already emitted FLUSH *)
          Record.finish rc st.rt.Compile.pending;
          st.rt.Compile.pending <- 0);
      exnc =
        (fun e ->
          match e with
          | Record.Unsupported msg -> rc.Record.fallback <- Some msg
          | e -> Record.error rc e);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Sched.Barrier_sync _ ->
              (* BARRIER was emitted by the compiled [Sbarrier] seam; park
                 until the next epoch's recording round resumes us *)
              Some
                (fun (k : (a, unit) Effect.Deep.continuation) ->
                  st.cont <- Some k)
          | Sched.Now | Sched.Advance _ | Sched.Lock_acquire _
          | Sched.Lock_release _ ->
              (* the recording seams never perform these; if one slips
                 through, surface it as a whole-run fallback *)
              Some
                (fun (k : (a, unit) Effect.Deep.continuation) ->
                  Effect.Deep.discontinue k
                    (Record.Unsupported "scheduler effect in recording mode"))
          | _ -> None);
    }
  in
  (* The active stream slot was cleared by [Record.flip] (or is fresh),
     so recording appends from the start; replay cursors are untouched —
     they walk the shadow slot, possibly concurrently. *)
  let record_round node =
    let st = sts.(node) in
    if not st.started then begin
      st.started <- true;
      Effect.Deep.match_with
        (fun () ->
          (try main.Compile.cbody g st.rt st.frame
           with Compile.Returning _ -> ());
          Compile.flush_pending st.rt)
        () (handler st)
    end
    else
      match st.cont with
      | Some k ->
          st.cont <- None;
          Effect.Deep.continue k ()
      | None -> ()  (* finished in an earlier epoch: empty stream *)
  in

  (* Worker team: one persistent domain per member beyond the
     orchestrator, each owning a fixed node subset so a parked
     continuation is always resumed on the domain that created it. In
     pipelined mode the orchestrator records nothing — it replays epoch e
     while the workers record epoch e+1 — so all nodes land on the
     spawned members; otherwise member 0 (the orchestrator) records its
     own share as before. Round handshake over a mutex/condition pair;
     the mutex transfer also publishes stream and shared-memory writes
     between phases. *)
  let nworkers = ndomains - 1 in
  let owner_of n = if pipeline then 1 + (n mod nworkers) else n mod ndomains in
  let record_share member =
    for node = 0 to nodes - 1 do
      if owner_of node = member then record_round node
    done
  in
  let mtx = Mutex.create () in
  let cv = Condition.create () in
  let round_no = ref 0 in
  let done_w = ref 0 in
  let stop = ref false in
  let fatal : exn option ref = ref None in
  let worker member =
    let seen = ref 0 in
    let running = ref true in
    while !running do
      Mutex.lock mtx;
      (* Stamp idle time lazily, only if this member actually waits: in
         pipelined rounds the signal usually precedes the worker's
         arrival, and an instant wakeup must not count as idleness. *)
      let idle_t0 = ref 0 in
      while (not !stop) && !round_no = !seen do
        if !idle_t0 = 0 then idle_t0 := Obs.start ();
        Condition.wait cv mtx
      done;
      if !idle_t0 <> 0 then
        Obs.Counter.add obs_worker_idle (Obs.now_ns () - !idle_t0);
      if !stop then begin
        Mutex.unlock mtx;
        running := false
      end
      else begin
        seen := !round_no;
        Mutex.unlock mtx;
        (try record_share member
         with e -> (
           Mutex.lock mtx;
           (match !fatal with None -> fatal := Some e | Some _ -> ());
           Mutex.unlock mtx));
        Mutex.lock mtx;
        incr done_w;
        if !done_w = nworkers then Condition.broadcast cv;
        Mutex.unlock mtx
      end
    done
  in
  let team =
    Array.init nworkers (fun i -> Domain.spawn (fun () -> worker (i + 1)))
  in
  let shutdown () =
    Mutex.lock mtx;
    stop := true;
    Condition.broadcast cv;
    Mutex.unlock mtx;
    Array.iter Domain.join team
  in
  let launch_round () =
    if nworkers = 0 then record_share 0
    else begin
      Mutex.lock mtx;
      incr round_no;
      done_w := 0;
      Condition.broadcast cv;
      Mutex.unlock mtx;
      if not pipeline then record_share 0
    end
  in
  let wait_round () =
    if nworkers > 0 then begin
      Mutex.lock mtx;
      while !done_w < nworkers do
        Condition.wait cv mtx
      done;
      let f = !fatal in
      Mutex.unlock mtx;
      match f with Some e -> raise e | None -> ()
    end
  in

  (* ---- conflict classification ---- *)

  let snap = Array.make (Array.length g.Compile.shared) Value.zero in
  (* merged per-element marks for the current round: Record's read/write/
     rmw bits plus bit 3 = touched by more than one node *)
  let m_multi = 8 in
  let agg = Bytes.make (max 1 total_elems) '\000' in
  let owner = Array.make (max 1 total_elems) (-1) in
  let tag = Array.make (max 1 total_elems) 0 in
  let rmw_tag = Array.make (max 1 total_elems) 0 in
  let round_id = ref 0 in
  (* Per-epoch plan inputs, rebuilt by [classify]. *)
  let blk_touched : int list array = Array.make nodes [] in
  let rmw_key = ref [||] in
  let plan_blocks_cap = 1 lsl 20 in
  (* [classify] returns [clean]: no element written or rmw'd by more
     than one node, i.e. the provisional memory recording left behind is
     already exact and replay may skip all memory effects. *)
  let classify () =
    incr round_id;
    let round = !round_id in
    let want_plan = shards_eff > 1 in
    let want_memo = memo_scope <> None in
    Array.iter
      (fun st ->
        let rc = st.rc in
        for j = 0 to rc.Record.ntouched - 1 do
          let e = rc.Record.touched.(j) in
          let m = Char.code (Bytes.unsafe_get rc.Record.marks e) in
          if tag.(e) <> round then begin
            tag.(e) <- round;
            owner.(e) <- rc.Record.node;
            Bytes.unsafe_set agg e (Char.unsafe_chr m)
          end
          else begin
            let a = Char.code (Bytes.unsafe_get agg e) in
            let a =
              a lor m lor (if owner.(e) <> rc.Record.node then m_multi else 0)
            in
            Bytes.unsafe_set agg e (Char.unsafe_chr a)
          end
        done)
      sts;
    let unsafe = ref false in
    let clean = ref true in
    let rmws = ref [] in
    let planned = ref 0 in
    Array.iter
      (fun st ->
        let rc = st.rc in
        let node = rc.Record.node in
        let blks = ref [] in
        let last_blk = ref (-1) in
        for j = 0 to rc.Record.ntouched - 1 do
          let e = rc.Record.touched.(j) in
          let a = Char.code (Bytes.unsafe_get agg e) in
          if a land m_multi <> 0 then begin
            if
              a land Record.m_read <> 0
              && a land (Record.m_write lor Record.m_rmw) <> 0
            then unsafe := true;
            if a land (Record.m_write lor Record.m_rmw) <> 0 then
              clean := false
          end;
          if a land Record.m_rmw <> 0 then begin
            (* rmw elements were provisionally accumulated during
               recording; their incoming values key the epoch memo, and
               dirty epochs rewind them (below) so replay can re-apply
               the increments in true schedule order *)
            if want_memo && rmw_tag.(e) <> round then begin
              rmw_tag.(e) <- round;
              rmws := (e, snap.(e)) :: !rmws
            end
          end;
          if want_plan then begin
            let blk = (e lsl g.Compile.elem_shift) lsr blk_shift in
            if blk <> !last_blk then begin
              last_blk := blk;
              blks := blk :: !blks;
              incr planned
            end
          end
        done;
        if want_plan then begin
          (* annotation directives touch whole block ranges that never
             appear in the element marks *)
          for j = 0 to rc.Record.naranges - 1 do
            let id = rc.Record.aranges.(3 * j) in
            let lo = rc.Record.aranges.((3 * j) + 1) in
            let hi = rc.Record.aranges.((3 * j) + 2) in
            let entry = annots.(id).Compile.a_entry in
            let elem_size = entry.Label.elem_size in
            let lo_b = (entry.Label.base + (lo * elem_size)) lsr blk_shift in
            let hi_b =
              (entry.Label.base + (hi * elem_size) + elem_size - 1)
              lsr blk_shift
            in
            planned := !planned + (hi_b - lo_b + 1);
            if !planned <= plan_blocks_cap then
              for blk = lo_b to hi_b do
                blks := blk :: !blks
              done
          done;
          blk_touched.(node) <- !blks
        end)
      sts;
    (* Dirty epochs rewind rmw elements to the epoch snapshot; clean
       epochs must not — the recorded value is final, and the pipelined
       path may already be racing a new recording over this memory. *)
    if not !clean then
      Array.iter
        (fun st ->
          let rc = st.rc in
          for j = 0 to rc.Record.ntouched - 1 do
            let e = rc.Record.touched.(j) in
            if
              Char.code (Bytes.unsafe_get agg e) land Record.m_rmw <> 0
              && tag.(e) = round
            then begin
              tag.(e) <- -round;  (* rewind once across overlapping lists *)
              g.Compile.shared.(e) <- snap.(e)
            end
          done)
        sts;
    Array.iter (fun st -> Record.clear_marks st.rc) sts;
    rmw_key :=
      Array.of_list (List.sort (fun (a, _) (b, _) -> compare a b) !rmws);
    if !unsafe then raise (Fallback "cross-node read/write conflict");
    let plan_ok = shards_eff > 1 && !planned <= plan_blocks_cap in
    (!clean, plan_ok)
  in

  (* ---- Phase B: replay, mirroring Sched.run ---- *)

  let quantum = machine.Machine.quantum in
  let clock = Array.make nodes 0 in
  let pend = Array.make nodes 0 in
  let q : int Pqueue.t = Pqueue.create () in
  let finished = ref 0 in
  let waiters : (int * int) list ref = ref [] in
  let round_over = ref false in
  (* per-epoch replay routing, set before each [drain] *)
  let lat_buf = Array.make nodes [||] in
  let lat_len = Array.make nodes 0 in
  let lat_pos = Array.make nodes 0 in
  let use_lats = ref false in
  let skip_mem = ref false in
  (* epoch capture for memo promotion (active on second key sighting) *)
  let cap_on = ref false in
  let cap_miss : (int * int * int * int) list ref = ref [] in
  let cap_wr : (int * bool * Value.t) list ref = ref [] in
  let cap_out : string list ref = ref [] in
  let cap_arr : (int * int) array ref = ref [||] in
  let release_barrier () =
    let ws = List.rev !waiters in
    waiters := [];
    let vt =
      machine.Machine.costs.Memsys.Network.barrier
      + Array.fold_left max 0 clock
    in
    Array.fill clock 0 nodes vt;
    let arrivals = List.sort compare ws in
    stats.Memsys.Stats.barriers <- stats.Memsys.Stats.barriers + 1;
    Memsys.Protocol.epoch_boundary proto;
    if machine.Machine.flush_at_barrier then
      for node = 0 to nodes - 1 do
        Memsys.Protocol.flush_node proto ~node
      done;
    Memsys.Protocol.sample_occupancy proto;
    if machine.Machine.collect_trace then
      List.iter
        (fun (node, bpc) ->
          Trace.Buf.add_barrier g.Compile.trace_buf ~node ~pc:bpc ~vt)
        arrivals;
    List.iter (fun (n, _) -> Pqueue.push q ~prio:vt n) ws;
    if !cap_on then cap_arr := Array.of_list ws;
    (* the next events for the released nodes live in the next epoch's
       streams: hand control back to the orchestrator to record them *)
    round_over := true
  in
  let get_byte st =
    let b = Char.code (Bytes.unsafe_get st.rc.Record.sbuf st.pos) in
    st.pos <- st.pos + 1;
    b
  in
  let get_varint st =
    let rec go shift acc =
      let b = get_byte st in
      let acc = acc lor ((b land 0x7f) lsl shift) in
      if b < 0x80 then acc else go (shift + 7) acc
    in
    go 0 0
  in
  let record_replay_miss node ~pc ~addr packed =
    let kind = Memsys.Protocol.packed_kind packed in
    if kind <> Memsys.Protocol.no_miss && machine.Machine.collect_trace
    then begin
      let bkind =
        if kind = Memsys.Protocol.read_miss then Trace.Buf.kind_read
        else if kind = Memsys.Protocol.write_miss then Trace.Buf.kind_write
        else Trace.Buf.kind_fault
      in
      Trace.Buf.add_miss g.Compile.trace_buf ~node ~pc ~addr ~kind:bkind
        ~held:Trace.Buf.empty_held;
      if !cap_on then cap_miss := (node, pc, addr, bkind) :: !cap_miss
    end;
    pend.(node) <- pend.(node) + Memsys.Protocol.packed_latency packed
  in
  (* Next precomputed latency (sharded mode): the shard simulation pushed
     one entry per protocol call in stream order. *)
  let next_lat node =
    let i = lat_pos.(node) in
    assert (i < lat_len.(node));
    lat_pos.(node) <- i + 1;
    lat_buf.(node).(i)
  in
  (* Advance the node's clock by its pending cycles. Mirrors Sched's
     [Advance] handler: park (and yield to the queue) only when another
     runnable node is at or before the new time — equal priorities must
     round-trip through the queue to keep FIFO order. Sched's bounded
     fast-path depth needs no mirror: a forced park there pushes the
     unique strict minimum, which pops straight back with no side
     effects, so it cannot reorder anything. *)
  let advance_parks node =
    clock.(node) <- clock.(node) + pend.(node);
    pend.(node) <- 0;
    match Pqueue.peek_prio q with
    | Some p -> p <= clock.(node)
    | None -> false
  in
  let step node =
    let st = sts.(node) in
    let rc = st.rc in
    let rec loop () =
      let t = get_byte st in
      let d = get_varint st in
      pend.(node) <- pend.(node) + d;
      if t = Record.t_ycheck then begin
        if pend.(node) >= quantum && pend.(node) > 0 then begin
          if advance_parks node then Pqueue.push q ~prio:clock.(node) node
          else loop ()
        end
        else loop ()
      end
      else if t = Record.t_flush then begin
        if pend.(node) > 0 then begin
          if advance_parks node then Pqueue.push q ~prio:clock.(node) node
          else loop ()
        end
        else loop ()
      end
      else if t = Record.t_read || t = Record.t_rmw_rd then begin
        let pc = get_varint st in
        let addr = get_varint st in
        let p =
          if !use_lats then next_lat node
          else if t = Record.t_rmw_rd then
            Memsys.Protocol.read_rmw_p proto ~node ~addr
              ~now:(clock.(node) + pend.(node))
          else
            Memsys.Protocol.read_p proto ~node ~addr
              ~now:(clock.(node) + pend.(node))
        in
        record_replay_miss node ~pc ~addr p;
        loop ()
      end
      else if t = Record.t_write || t = Record.t_rmw_wr then begin
        let pc = get_varint st in
        let addr = get_varint st in
        let p =
          if !use_lats then next_lat node
          else if t = Record.t_rmw_wr then
            Memsys.Protocol.write_rmw_p proto ~node ~addr
              ~now:(clock.(node) + pend.(node))
          else
            Memsys.Protocol.write_p proto ~node ~addr
              ~now:(clock.(node) + pend.(node))
        in
        record_replay_miss node ~pc ~addr p;
        let v = rc.Record.svals.(st.vpos) in
        st.vpos <- st.vpos + 1;
        if not !skip_mem then begin
          let e = Compile.elem_index g addr in
          let is_add = t = Record.t_rmw_wr in
          if is_add then
            g.Compile.shared.(e) <- Value.add g.Compile.shared.(e) v
          else g.Compile.shared.(e) <- v;
          if !cap_on then cap_wr := (e, is_add, v) :: !cap_wr
        end;
        loop ()
      end
      else if t = Record.t_annot then begin
        let id = get_varint st in
        let lo = get_varint st in
        let hi = get_varint st in
        let desc = annots.(id) in
        let entry = desc.Compile.a_entry in
        let elem_size = entry.Label.elem_size in
        let block_size = machine.Machine.block_size in
        let lo_addr = entry.Label.base + (lo * elem_size) in
        let hi_addr = entry.Label.base + (hi * elem_size) + elem_size - 1 in
        List.iter
          (fun blk ->
            let addr = Memsys.Block.base_addr ~block_size blk in
            let lat =
              if !use_lats then next_lat node
              else
                desc.Compile.a_directive proto ~node ~addr
                  ~now:(clock.(node) + pend.(node))
            in
            pend.(node) <- pend.(node) + lat)
          (Memsys.Block.blocks_of_range ~block_size ~lo:lo_addr ~hi:hi_addr);
        loop ()
      end
      else if t = Record.t_print then begin
        let s = rc.Record.sstrs.(st.spos) in
        st.spos <- st.spos + 1;
        g.Compile.output_buf := s :: !(g.Compile.output_buf);
        if !cap_on then cap_out := s :: !cap_out;
        loop ()
      end
      else if t = Record.t_barrier then begin
        let pc = get_varint st in
        waiters := (node, pc) :: !waiters;
        if List.length !waiters = nodes then release_barrier ()
      end
      else if t = Record.t_finish then incr finished
      else if t = Record.t_error then (
        match rc.Record.serror with
        | Some e -> raise e
        | None -> assert false)
      else assert false
    in
    loop ()
  in
  let poll_countdown = ref 256 in
  let rec drain () =
    if !round_over then ()
    else
      match Pqueue.pop q with
      | Some (_, node) ->
          (match poll with
          | Some p ->
              decr poll_countdown;
              if !poll_countdown <= 0 then begin
                poll_countdown := 256;
                p ()
              end
          | None -> ());
          step node;
          drain ()
      | None -> ()
  in

  (* ---- sharded latency precomputation ----

     Each shard replays its nodes' streams against a protocol view,
     recording every protocol call's result (packed outcome, or raw
     latency for directives) in stream order. Within a shard the same
     queue discipline as the serial replay is used; because shards are
     decoupled — no transition of one shard's node can touch another
     shard's protocol state — the shard-local pop order is exactly the
     restriction of the global order, and each node's [now] values are
     self-contained (clocks only equalise at barriers), so every
     computed latency equals the serial replay's. *)
  let shard_pass order0 vt0 view shard_nodes =
    let mine = Array.make nodes false in
    Array.iter (fun n -> mine.(n) <- true) shard_nodes;
    let cl = Array.make nodes vt0 in
    let pd = Array.make nodes 0 in
    let pos = Array.make nodes 0 in
    let lq : int Pqueue.t = Pqueue.create () in
    Array.iter (fun n -> if mine.(n) then Pqueue.push lq ~prio:vt0 n) order0;
    let push_lat n v =
      let a = lat_buf.(n) in
      let len = lat_len.(n) in
      if len = Array.length a then begin
        let b = Array.make (max 64 (2 * len)) 0 in
        Array.blit a 0 b 0 len;
        lat_buf.(n) <- b
      end;
      lat_buf.(n).(len) <- v;
      lat_len.(n) <- len + 1
    in
    let byte n =
      let st = sts.(n) in
      let b = Char.code (Bytes.unsafe_get st.rc.Record.sbuf pos.(n)) in
      pos.(n) <- pos.(n) + 1;
      b
    in
    let varint n =
      let rec go shift acc =
        let b = byte n in
        let acc = acc lor ((b land 0x7f) lsl shift) in
        if b < 0x80 then acc else go (shift + 7) acc
      in
      go 0 0
    in
    let parks n =
      cl.(n) <- cl.(n) + pd.(n);
      pd.(n) <- 0;
      match Pqueue.peek_prio lq with Some p -> p <= cl.(n) | None -> false
    in
    let sim n =
      let rec loop () =
        let t = byte n in
        let d = varint n in
        pd.(n) <- pd.(n) + d;
        if t = Record.t_ycheck then begin
          if pd.(n) >= quantum && pd.(n) > 0 then begin
            if parks n then Pqueue.push lq ~prio:cl.(n) n else loop ()
          end
          else loop ()
        end
        else if t = Record.t_flush then begin
          if pd.(n) > 0 then begin
            if parks n then Pqueue.push lq ~prio:cl.(n) n else loop ()
          end
          else loop ()
        end
        else if t = Record.t_read || t = Record.t_rmw_rd then begin
          let _pc = varint n in
          let addr = varint n in
          let p =
            if t = Record.t_rmw_rd then
              Memsys.Protocol.read_rmw_p view ~node:n ~addr
                ~now:(cl.(n) + pd.(n))
            else
              Memsys.Protocol.read_p view ~node:n ~addr ~now:(cl.(n) + pd.(n))
          in
          push_lat n p;
          pd.(n) <- pd.(n) + Memsys.Protocol.packed_latency p;
          loop ()
        end
        else if t = Record.t_write || t = Record.t_rmw_wr then begin
          let _pc = varint n in
          let addr = varint n in
          let p =
            if t = Record.t_rmw_wr then
              Memsys.Protocol.write_rmw_p view ~node:n ~addr
                ~now:(cl.(n) + pd.(n))
            else
              Memsys.Protocol.write_p view ~node:n ~addr ~now:(cl.(n) + pd.(n))
          in
          push_lat n p;
          pd.(n) <- pd.(n) + Memsys.Protocol.packed_latency p;
          loop ()
        end
        else if t = Record.t_annot then begin
          let id = varint n in
          let lo = varint n in
          let hi = varint n in
          let desc = annots.(id) in
          let entry = desc.Compile.a_entry in
          let elem_size = entry.Label.elem_size in
          let block_size = machine.Machine.block_size in
          let lo_addr = entry.Label.base + (lo * elem_size) in
          let hi_addr = entry.Label.base + (hi * elem_size) + elem_size - 1 in
          List.iter
            (fun blk ->
              let addr = Memsys.Block.base_addr ~block_size blk in
              let lat =
                desc.Compile.a_directive view ~node:n ~addr
                  ~now:(cl.(n) + pd.(n))
              in
              push_lat n lat;
              pd.(n) <- pd.(n) + lat)
            (Memsys.Block.blocks_of_range ~block_size ~lo:lo_addr ~hi:hi_addr);
          loop ()
        end
        else if t = Record.t_print then loop ()
        else if t = Record.t_barrier then ignore (varint n)
        else if t = Record.t_finish then ()
        else if t = Record.t_error then ()
          (* stop here: the ordering pass raises at this event before it
             could need another latency from this node *)
        else assert false
      in
      loop ()
    in
    let rec go () =
      match Pqueue.pop lq with
      | Some (_, n) ->
          sim n;
          go ()
      | None -> ()
    in
    go ()
  in

  (* ---- epochs ---- *)

  let order0 = Array.make nodes 0 in
  let capture_order vt0 =
    (* the queue holds every node at prio [vt0]; popping and re-pushing
       in pop order preserves the FIFO tie-break *)
    for i = 0 to nodes - 1 do
      match Pqueue.pop q with
      | Some (_, n) -> order0.(i) <- n
      | None -> assert false
    done;
    Array.iter (fun n -> Pqueue.push q ~prio:vt0 n) order0
  in
  let memo_materials () =
    {
      Memo.m_dig = Memsys.Protocol.state_digest proto ~now:clock.(0);
      m_order = order0;
      m_rmw = !rmw_key;
      m_streams =
        Array.map (fun st -> (st.rc.Record.sbuf, st.rc.Record.slen)) sts;
      m_vals =
        Array.map (fun st -> (st.rc.Record.svals, st.rc.Record.snvals)) sts;
      m_strs =
        Array.map (fun st -> (st.rc.Record.sstrs, st.rc.Record.snstrs)) sts;
    }
  in
  let apply_memo_hit (d : Memo.data) vt0 =
    let vt_end = vt0 + d.Memo.d_advance in
    if machine.Machine.collect_trace then
      Array.iter
        (fun (node, pc, addr, kind) ->
          Trace.Buf.add_miss g.Compile.trace_buf ~node ~pc ~addr ~kind
            ~held:Trace.Buf.empty_held)
        d.Memo.d_misses;
    Array.iter
      (fun s -> g.Compile.output_buf := s :: !(g.Compile.output_buf))
      d.Memo.d_output;
    if not d.Memo.d_clean then
      Array.iter
        (fun (e, is_add, v) ->
          if is_add then
            g.Compile.shared.(e) <- Value.add g.Compile.shared.(e) v
          else g.Compile.shared.(e) <- v)
        d.Memo.d_writes;
    Memsys.Protocol.restore proto d.Memo.d_snap
      ~time_offset:(vt_end - d.Memo.d_end);
    Memsys.Stats.add stats d.Memo.d_stats;
    Array.fill clock 0 nodes vt_end;
    if machine.Machine.collect_trace then
      Array.iter
        (fun (node, pc) ->
          Trace.Buf.add_barrier g.Compile.trace_buf ~node ~pc ~vt:vt_end)
        (let a = Array.copy d.Memo.d_arrivals in
         Array.sort compare a;
         a);
    Memsys.Protocol.sample_occupancy proto;
    for _ = 1 to nodes do
      ignore (Pqueue.pop q)
    done;
    Array.iter (fun (n, _) -> Pqueue.push q ~prio:vt_end n) d.Memo.d_arrivals;
    round_over := true
  in
  (* Replay one epoch (phase B). [plan_ok] allows the sharded path;
     [clean] allows skipping memory effects; [promote] asks for capture
     so the epoch can be memoized afterwards. *)
  let replay_epoch ~clean ~plan_ok ~promote vt0 =
    skip_mem := clean;
    cap_on := promote;
    if promote then begin
      cap_miss := [];
      cap_wr := [];
      cap_out := [];
      cap_arr := [||]
    end;
    use_lats := false;
    (if plan_ok then
       match
         Shard.plan ~nodes ~touched:blk_touched
           ~couple_mask:(Memsys.Protocol.couple_mask proto)
       with
       | Shard.Conflict _ -> ()
       | Shard.Groups gs when Array.length gs >= 2 ->
           let shards, _ =
             Shard.pack ~nodes ~max_shards:shards_eff
               ~weight:(fun n -> sts.(n).rc.Record.slen)
               gs
           in
           if Array.length shards >= 2 then begin
             let t0 = Obs.start () in
             Array.iteri
               (fun n _ ->
                 lat_buf.(n) <- (if Array.length lat_buf.(n) = 0 then
                                   Array.make 64 0
                                 else lat_buf.(n));
                 lat_len.(n) <- 0;
                 lat_pos.(n) <- 0)
               lat_buf;
             let views =
               Array.map (fun _ -> Memsys.Protocol.shard_view proto) shards
             in
             let order = Array.copy order0 in
             let jobs =
               List.map2
                 (fun view snodes () -> shard_pass order vt0 view snodes)
                 (Array.to_list views) (Array.to_list shards)
             in
             ignore
               (Jobs.map ~jobs:(Array.length shards) (fun f -> f ()) jobs);
             Array.iter (Memsys.Protocol.merge_shard proto) views;
             Obs.finish "par.shard_sim" t0;
             use_lats := true;
             if Obs.enabled () then Obs.Counter.incr obs_shard_epochs
           end
       | Shard.Groups _ -> ());
    if (not !use_lats) && Obs.enabled () then
      Obs.Counter.incr obs_serial_epochs;
    drain ()
  in

  let attempt () =
    for node = 0 to nodes - 1 do
      Pqueue.push q ~prio:0 node
    done;
    (* record epoch 0 *)
    Array.blit g.Compile.shared 0 snap 0 (Array.length snap);
    let t0 = Obs.start () in
    launch_round ();
    Obs.finish "par.phase_a" t0;
    let running = ref true in
    while !running do
      let t0 = Obs.start () in
      wait_round ();
      Obs.finish "par.phase_a" t0;
      Array.iter
        (fun st ->
          match st.rc.Record.fallback with
          | Some msg -> raise (Fallback msg)
          | None -> ())
        sts;
      let all_barrier =
        Array.for_all (fun st -> st.cont <> None) sts
      in
      let clean, plan_ok = classify () in
      Array.iter
        (fun st ->
          Record.flip st.rc;
          st.pos <- 0;
          st.vpos <- 0;
          st.spos <- 0)
        sts;
      let vt0 = clock.(0) in
      capture_order vt0;
      (* Pipelined launch: replaying a clean all-at-barrier epoch cannot
         touch program memory and is certain to release the barrier, so
         the next epoch's recording can start now, on the workers, while
         the orchestrator replays this one. *)
      let overlapped =
        if pipeline && clean && all_barrier then begin
          Array.blit g.Compile.shared 0 snap 0 (Array.length snap);
          launch_round ();
          if Obs.enabled () then Obs.Counter.incr obs_pipelined_epochs;
          true
        end
        else false
      in
      round_over := false;
      let phase_b_t0 = Obs.start () in
      (match memo_scope with
      | Some scope when all_barrier -> (
          let m = memo_materials () in
          match Memo.query ~cap:memo_cap ~scope m with
          | `Hit d ->
              if Obs.enabled () then Obs.Counter.incr obs_memo_hits;
              apply_memo_hit d vt0
          | `Promote h ->
              if Obs.enabled () then Obs.Counter.incr obs_memo_misses;
              let stats_before = Memsys.Stats.copy stats in
              replay_epoch ~clean ~plan_ok ~promote:true vt0;
              if !round_over then
                Memo.promote h
                  {
                    Memo.d_snap = Memsys.Protocol.snapshot proto;
                    d_stats = Memsys.Stats.diff stats stats_before;
                    d_misses = Array.of_list (List.rev !cap_miss);
                    d_arrivals = !cap_arr;
                    d_writes = Array.of_list (List.rev !cap_wr);
                    d_output = Array.of_list (List.rev !cap_out);
                    d_advance = clock.(0) - vt0;
                    d_end = clock.(0);
                    d_clean = clean;
                  };
              cap_on := false
          | `Fresh ->
              if Obs.enabled () then Obs.Counter.incr obs_memo_misses;
              replay_epoch ~clean ~plan_ok ~promote:false vt0)
      | _ -> replay_epoch ~clean ~plan_ok ~promote:false vt0);
      Obs.finish "par.phase_b" phase_b_t0;
      if !round_over then begin
        if not overlapped then begin
          Array.blit g.Compile.shared 0 snap 0 (Array.length snap);
          let t0 = Obs.start () in
          launch_round ();
          Obs.finish "par.phase_a" t0
        end
      end
      else begin
        (* queue empty: every node has finished or is parked at a
           barrier that can no longer release — exactly Sched's end.
           An overlapped launch is impossible here: it requires every
           node parked at the barrier, which guarantees a release. *)
        assert (not overlapped);
        running := false;
        if !finished < nodes then begin
          let parked = List.length !waiters in
          raise
            (Sched.Deadlock
               (Printf.sprintf
                  "%d of %d nodes finished; %d parked at a barrier, %d \
                   waiting on locks"
                  !finished nodes parked 0))
        end
      end
    done;
    Array.iter
      (fun st ->
        stats.Memsys.Stats.private_reads <-
          stats.Memsys.Stats.private_reads + st.rc.Record.priv_reads;
        stats.Memsys.Stats.private_writes <-
          stats.Memsys.Stats.private_writes + st.rc.Record.priv_writes)
      sts;
    {
      Interp.time = Array.fold_left max 0 clock;
      stats;
      trace = Trace.Buf.to_records g.Compile.trace_buf;
      output = List.rev !(g.Compile.output_buf);
      shared = g.Compile.shared;
      layout;
      info;
    }
  in
  let engine_t0 = Obs.start () in
  match Fun.protect ~finally:shutdown attempt with
  | outcome ->
      Obs.finish "engine.par" engine_t0;
      outcome
  | exception Fallback _ ->
      (* locks, unclassifiable sharing or an over-long stream: rerun the
         whole simulation sequentially from scratch (fresh protocol,
         memory and trace), which supports everything *)
      Obs.finish "engine.par" engine_t0;
      if Obs.enabled () then Obs.Counter.incr obs_fallbacks;
      Compile.run ?poll ~machine program
