(** Fork-join fan-out of independent simulations over OCaml 5 domains.

    Every simulation run builds its own protocol, scheduler and trace
    state, so (benchmark × variant) experiments are embarrassingly
    parallel; this pool spreads them across cores while keeping results
    in input order, so harness output stays deterministic. *)

val env_var : string
(** ["CACHIER_BENCH_JOBS"]. *)

val default_jobs : unit -> int
(** The [CACHIER_BENCH_JOBS] environment variable if set, otherwise
    [Domain.recommended_domain_count ()].
    @raise Invalid_argument if the variable is set but not a positive
    integer. *)

val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~jobs f items] applies [f] to every item, running up to [jobs]
    applications concurrently on separate domains ([default_jobs ()] when
    omitted), and returns the results in input order. With [jobs = 1] (or
    a single item) it degrades to plain [List.map] on the calling domain.
    If any application raises, the first exception (in completion order)
    is re-raised after all workers drain; remaining unstarted items are
    skipped. [f] must not perform effects handled outside [map]. *)

(** A persistent worker pool for server workloads.

    [map] forks and joins around one batch; a service instead receives
    requests over time, so [Pool] keeps its worker domains alive and feeds
    them from a single bounded queue. Submission is non-blocking: when the
    queue is full, {!Pool.submit} refuses (so the caller can answer
    "overloaded") instead of buffering unboundedly. A job that raises
    delivers its exception to the submitter via {!Pool.await} and leaves
    the worker — and the pool — serving subsequent submissions. *)
module Pool : sig
  type t

  type 'a handle
  (** A claim on one submitted job's result. *)

  val create : ?workers:int -> ?capacity:int -> unit -> t
  (** [create ~workers ~capacity ()] spawns [workers] domains
      ([default_jobs ()] when omitted, always at least 1) feeding from a
      queue that holds at most [capacity] (default 64) not-yet-started
      jobs. @raise Invalid_argument on negative [capacity]. *)

  val workers : t -> int

  val submit : t -> (unit -> 'a) -> 'a handle option
  (** [submit t f] enqueues [f] and returns a handle, or [None] when the
      queue is full or the pool is shutting down — the caller decides how
      to shed the load. *)

  val await : 'a handle -> ('a, exn) result
  (** Block until the job has run; a raising job yields [Error]. *)

  val await_exn : 'a handle -> 'a
  (** Like {!await} but re-raises the job's exception, with its
      backtrace. *)

  val shutdown : t -> unit
  (** Stop accepting submissions, let already-queued jobs finish, then
      join every worker domain. Idempotent. *)
end
