(** Fork-join fan-out of independent simulations over OCaml 5 domains.

    Every simulation run builds its own protocol, scheduler and trace
    state, so (benchmark × variant) experiments are embarrassingly
    parallel; this pool spreads them across cores while keeping results
    in input order, so harness output stays deterministic. *)

val env_var : string
(** ["CACHIER_BENCH_JOBS"]. *)

val default_jobs : unit -> int
(** The [CACHIER_BENCH_JOBS] environment variable if set, otherwise
    [Domain.recommended_domain_count ()].
    @raise Invalid_argument if the variable is set but not a positive
    integer. *)

val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~jobs f items] applies [f] to every item, running up to [jobs]
    applications concurrently on separate domains ([default_jobs ()] when
    omitted), and returns the results in input order. With [jobs = 1] (or
    a single item) it degrades to plain [List.map] on the calling domain.
    If any application raises, the first exception (in completion order)
    is re-raised after all workers drain; remaining unstarted items are
    skipped. [f] must not perform effects handled outside [map]. *)
