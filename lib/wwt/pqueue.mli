(** A mutable binary min-heap keyed by integer priority.

    {b Tie-break specification.} Entries with equal priority are returned
    in insertion (FIFO) order. "Insertion order" is the global order of
    {!push} calls over the queue's whole lifetime — each push is stamped
    with a monotonically increasing sequence number, and [pop] returns
    the entry minimising [(prio, seq)] lexicographically. Consequences:

    - the FIFO guarantee survives arbitrary interleavings of pushes and
      pops, including pops of other priorities in between;
    - an entry popped and re-pushed at the same priority goes {e behind}
      every equal-priority entry already queued (it gets a fresh, larger
      sequence number) — exactly the re-parking behaviour the scheduler
      wants for a fiber that yields back at an unchanged clock;
    - two queues fed the same push/pop sequence pop identical streams.

    Both the sequential scheduler ({!Sched.run}) and the parallel
    engine's replay loop ({!Par.run}) key fibers by virtual time, where
    equal priorities are common (barrier releases wake all nodes at the
    same clock). Their bit-identical interleaving — and hence the whole
    engine-equivalence story — rests on this tie-break rule, which is why
    it is specified this precisely and pinned by tests. *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> prio:int -> 'a -> unit
(** Insert an entry. Equal-priority entries pop in push order. *)

val pop : 'a t -> (int * 'a) option
(** Remove and return the entry with the smallest [(prio, seq)] — the
    minimum priority, oldest push first. *)

val peek_prio : 'a t -> int option
(** Priority of the entry the next {!pop} would return. *)
