exception Deadlock of string
exception Cancelled of string

(* Per-epoch spans and counters; every update is behind [Obs.enabled]
   (or the zero-timestamp no-op of [Obs.finish]), so a disabled run pays
   one branch per barrier and allocates nothing. *)
let obs_epochs = Obs.Registry.counter "sched.epochs"

type _ Effect.t +=
  | Now : int Effect.t
  | Advance : int -> unit Effect.t
  | Barrier_sync : int -> unit Effect.t
  | Lock_acquire : int -> unit Effect.t
  | Lock_release : int -> unit Effect.t

let now () = Effect.perform Now

let advance n =
  if n < 0 then invalid_arg "Sched.advance: negative cycle count";
  Effect.perform (Advance n)
let barrier_sync ~pc = Effect.perform (Barrier_sync pc)
let lock_acquire l = Effect.perform (Lock_acquire l)
let lock_release l = Effect.perform (Lock_release l)

type config = {
  nodes : int;
  barrier_cost : int;
  lock_transfer : int;
  on_barrier : vt:int -> arrivals:(int * int) list -> unit;
  on_lock_acquire : node:int -> lock:int -> unit;
}

type waiting_lock = { wnode : int; resume : unit -> unit }

let run ?poll cfg body =
  let clock = Array.make cfg.nodes 0 in
  let ready : (unit -> unit) Pqueue.t = Pqueue.create () in
  let finished = ref 0 in
  (* Consecutive direct resumes since the last trip through [drain]; each
     one leaves a live handler frame on the native stack, so bound them. *)
  let fast_depth = ref 0 in
  (* Barrier bookkeeping: (node, pc, resume) until all nodes arrive. *)
  let barrier_waiters : (int * int * (unit -> unit)) list ref = ref [] in
  (* Lock bookkeeping: (owner, recursion depth) per lock plus FIFO waiter
     queues. Locks are reentrant: the owner may re-acquire, which nests
     without a transfer and releases outermost-last. *)
  let lock_state : (int, int * int) Hashtbl.t = Hashtbl.create 8 in
  let lock_waiters : (int, waiting_lock Queue.t) Hashtbl.t = Hashtbl.create 8 in
  (* Start of the current epoch (barrier-to-barrier region); 0 when
     observability is off, making the [Obs.finish] below a no-op. *)
  let epoch_t0 = ref (Obs.start ()) in
  let release_barrier () =
    let waiters = List.rev !barrier_waiters in
    barrier_waiters := [];
    let vt =
      cfg.barrier_cost + Array.fold_left max 0 clock
    in
    Array.fill clock 0 cfg.nodes vt;
    let arrivals =
      List.sort compare (List.map (fun (n, pc, _) -> (n, pc)) waiters)
    in
    Obs.finish "sched.epoch" !epoch_t0;
    if Obs.enabled () then Obs.Counter.incr obs_epochs;
    cfg.on_barrier ~vt ~arrivals;
    epoch_t0 := Obs.start ();
    List.iter (fun (_, _, resume) -> Pqueue.push ready ~prio:vt resume) waiters
  in
  let spawn node =
    let open Effect.Deep in
    match_with
      (fun () -> body node)
      ()
      {
        retc = (fun () -> incr finished);
        exnc = raise;
        effc =
          (fun (type a) (eff : a Effect.t) ->
            match eff with
            | Now ->
                Some (fun (k : (a, unit) continuation) -> continue k clock.(node))
            | Advance n ->
                Some
                  (fun (k : (a, unit) continuation) ->
                    clock.(node) <- clock.(node) + n;
                    (* Fast path: when every other runnable fiber is
                       strictly later, parking would be popped right back
                       (pops have no side effects of their own), so resume
                       directly and skip the queue round-trip. Ties must
                       park: equal-priority pops are FIFO. *)
                    let parked_first =
                      match Pqueue.peek_prio ready with
                      | Some p -> p <= clock.(node)
                      | None -> false
                    in
                    if parked_first || !fast_depth > 500 then
                      Pqueue.push ready ~prio:clock.(node) (fun () ->
                          continue k ())
                    else begin
                      incr fast_depth;
                      continue k ()
                    end)
            | Barrier_sync pc ->
                Some
                  (fun (k : (a, unit) continuation) ->
                    barrier_waiters :=
                      (node, pc, fun () -> continue k ()) :: !barrier_waiters;
                    if List.length !barrier_waiters = cfg.nodes then
                      release_barrier ())
            | Lock_acquire l ->
                Some
                  (fun (k : (a, unit) continuation) ->
                    match Hashtbl.find_opt lock_state l with
                    | Some (owner, depth) when owner = node ->
                        (* reentrant re-acquire: already local, no transfer *)
                        Hashtbl.replace lock_state l (owner, depth + 1);
                        cfg.on_lock_acquire ~node ~lock:l;
                        Pqueue.push ready ~prio:clock.(node) (fun () ->
                            continue k ())
                    | Some _ ->
                        let q =
                          match Hashtbl.find_opt lock_waiters l with
                          | Some q -> q
                          | None ->
                              let q = Queue.create () in
                              Hashtbl.add lock_waiters l q;
                              q
                        in
                        Queue.add
                          { wnode = node; resume = (fun () -> continue k ()) }
                          q
                    | None ->
                        Hashtbl.add lock_state l (node, 1);
                        cfg.on_lock_acquire ~node ~lock:l;
                        clock.(node) <- clock.(node) + cfg.lock_transfer;
                        Pqueue.push ready ~prio:clock.(node) (fun () ->
                            continue k ()))
            | Lock_release l ->
                Some
                  (fun (k : (a, unit) continuation) ->
                    (match Hashtbl.find_opt lock_state l with
                    | Some (owner, depth) when owner = node ->
                        if depth > 1 then
                          Hashtbl.replace lock_state l (owner, depth - 1)
                        else begin
                          Hashtbl.remove lock_state l;
                          match Hashtbl.find_opt lock_waiters l with
                          | Some q when not (Queue.is_empty q) ->
                              let w = Queue.take q in
                              Hashtbl.add lock_state l (w.wnode, 1);
                              cfg.on_lock_acquire ~node:w.wnode ~lock:l;
                              clock.(w.wnode) <-
                                max clock.(w.wnode) clock.(node)
                                + cfg.lock_transfer;
                              Pqueue.push ready ~prio:clock.(w.wnode) w.resume
                          | Some _ | None -> ()
                        end
                    | Some _ | None ->
                        raise (Deadlock
                                 (Printf.sprintf
                                    "node %d releases lock %d it does not hold"
                                    node l)));
                    Pqueue.push ready ~prio:clock.(node) (fun () -> continue k ()))
            | _ -> None);
      }
  in
  for node = 0 to cfg.nodes - 1 do
    Pqueue.push ready ~prio:0 (fun () -> spawn node)
  done;
  (* Cancellation polls run between fiber resumptions, where no handler
     frame is mid-transfer: an exception raised by [poll] propagates out
     of [run] directly, abandoning the parked continuations to the GC.
     Polling every pop would put a call on the hot path, so decimate. *)
  let poll_countdown = ref 256 in
  let rec drain () =
    match Pqueue.pop ready with
    | Some (_, resume) ->
        (match poll with
        | Some p ->
            decr poll_countdown;
            if !poll_countdown <= 0 then begin
              poll_countdown := 256;
              p ()
            end
        | None -> ());
        fast_depth := 0;
        resume ();
        drain ()
    | None -> ()
  in
  let run_t0 = Obs.start () in
  drain ();
  Obs.finish "sched.run" run_t0;
  (* The tail region after the last barrier is an epoch too. *)
  Obs.finish "sched.epoch" !epoch_t0;
  if !finished < cfg.nodes then begin
    let parked = List.length !barrier_waiters in
    let lock_parked =
      Hashtbl.fold (fun _ q acc -> acc + Queue.length q) lock_waiters 0
    in
    raise
      (Deadlock
         (Printf.sprintf
            "%d of %d nodes finished; %d parked at a barrier, %d waiting on \
             locks"
            !finished cfg.nodes parked lock_parked))
  end;
  Array.fold_left max 0 clock
