(* A small fork-join pool over OCaml 5 domains.

   Each simulation owns its whole mutable world — Protocol, caches,
   scheduler run state, trace buffer — so independent (benchmark ×
   variant) runs parallelise with no shared mutation beyond the work
   queue index and the per-slot result writes, which are disjoint. *)

let env_var = "CACHIER_BENCH_JOBS"

let default_jobs () =
  match Sys.getenv_opt env_var with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some j when j >= 1 -> j
      | Some _ | None ->
          invalid_arg (Printf.sprintf "%s must be a positive integer" env_var))
  | None -> Domain.recommended_domain_count ()

let map ?jobs f items =
  let jobs = match jobs with Some j -> max 1 j | None -> default_jobs () in
  let arr = Array.of_list items in
  let n = Array.length arr in
  if jobs <= 1 || n <= 1 then List.map f items
  else begin
    let results = Array.make n None in
    let first_error = Atomic.make None in
    let next = Atomic.make 0 in
    let rec worker () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        (match Atomic.get first_error with
        | Some _ -> ()  (* bail out; a sibling already failed *)
        | None -> (
            try results.(i) <- Some (f arr.(i))
            with e ->
              let bt = Printexc.get_raw_backtrace () in
              ignore
                (Atomic.compare_and_set first_error None (Some (e, bt)))));
        worker ()
      end
    in
    let helpers =
      List.init (min jobs n - 1) (fun _ -> Domain.spawn worker)
    in
    worker ();
    List.iter Domain.join helpers;
    (match Atomic.get first_error with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ());
    Array.to_list
      (Array.map
         (function Some v -> v | None -> assert false (* all slots ran *))
         results)
  end
