(* A small fork-join pool over OCaml 5 domains.

   Each simulation owns its whole mutable world — Protocol, caches,
   scheduler run state, trace buffer — so independent (benchmark ×
   variant) runs parallelise with no shared mutation beyond the work
   queue index and the per-slot result writes, which are disjoint. *)

let env_var = "CACHIER_BENCH_JOBS"

let default_jobs () =
  match Sys.getenv_opt env_var with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some j when j >= 1 -> j
      | Some _ | None ->
          invalid_arg (Printf.sprintf "%s must be a positive integer" env_var))
  | None -> Domain.recommended_domain_count ()

let map ?jobs f items =
  let jobs = match jobs with Some j -> max 1 j | None -> default_jobs () in
  let arr = Array.of_list items in
  let n = Array.length arr in
  if jobs <= 1 || n <= 1 then List.map f items
  else begin
    let results = Array.make n None in
    let first_error = Atomic.make None in
    let next = Atomic.make 0 in
    let rec worker () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        (match Atomic.get first_error with
        | Some _ -> ()  (* bail out; a sibling already failed *)
        | None -> (
            try results.(i) <- Some (f arr.(i))
            with e ->
              let bt = Printexc.get_raw_backtrace () in
              ignore
                (Atomic.compare_and_set first_error None (Some (e, bt)))));
        worker ()
      end
    in
    let helpers =
      List.init (min jobs n - 1) (fun _ -> Domain.spawn worker)
    in
    worker ();
    List.iter Domain.join helpers;
    (match Atomic.get first_error with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ());
    Array.to_list
      (Array.map
         (function Some v -> v | None -> assert false (* all slots ran *))
         results)
  end

(* A persistent pool for a server workload: long-lived worker domains pull
   jobs from one bounded queue. Unlike [map]'s fork-join, submissions
   arrive over time and results are claimed individually through handles.
   A worker that raises stores the exception in the job's handle and goes
   back to the queue — one poisoned request never takes a worker down. *)
module Pool = struct
  type 'a state =
    | Pending
    | Done of 'a
    | Failed of exn * Printexc.raw_backtrace

  type 'a handle = {
    hmu : Mutex.t;
    hcond : Condition.t;
    mutable result : 'a state;
  }

  type t = {
    mu : Mutex.t;
    nonempty : Condition.t;
    queue : (unit -> unit) Queue.t;
    capacity : int;
    mutable closing : bool;
    mutable domains : unit Domain.t list;
    workers : int;
  }

  let worker_loop t =
    let rec loop () =
      Mutex.lock t.mu;
      let rec next () =
        if not (Queue.is_empty t.queue) then Some (Queue.pop t.queue)
        else if t.closing then None
        else begin
          Condition.wait t.nonempty t.mu;
          next ()
        end
      in
      let job = next () in
      Mutex.unlock t.mu;
      match job with
      | None -> ()
      | Some job ->
          job ();
          loop ()
    in
    loop ()

  let create ?workers ?(capacity = 64) () =
    let workers =
      match workers with Some w -> max 1 w | None -> default_jobs ()
    in
    if capacity < 0 then invalid_arg "Jobs.Pool.create: negative capacity";
    let t =
      {
        mu = Mutex.create ();
        nonempty = Condition.create ();
        queue = Queue.create ();
        capacity;
        closing = false;
        domains = [];
        workers;
      }
    in
    t.domains <- List.init workers (fun _ -> Domain.spawn (fun () -> worker_loop t));
    t

  let workers t = t.workers

  let submit t f =
    Mutex.lock t.mu;
    if t.closing || Queue.length t.queue >= t.capacity then begin
      Mutex.unlock t.mu;
      None
    end
    else begin
      let h = { hmu = Mutex.create (); hcond = Condition.create (); result = Pending } in
      Queue.add
        (fun () ->
          let r =
            try Done (f ())
            with e -> Failed (e, Printexc.get_raw_backtrace ())
          in
          Mutex.lock h.hmu;
          h.result <- r;
          Condition.broadcast h.hcond;
          Mutex.unlock h.hmu)
        t.queue;
      Condition.signal t.nonempty;
      Mutex.unlock t.mu;
      Some h
    end

  let await h =
    Mutex.lock h.hmu;
    let rec wait () =
      match h.result with
      | Pending ->
          Condition.wait h.hcond h.hmu;
          wait ()
      | r -> r
    in
    let r = wait () in
    Mutex.unlock h.hmu;
    match r with
    | Done v -> Ok v
    | Failed (e, _) -> Error e
    | Pending -> assert false

  let await_exn h =
    Mutex.lock h.hmu;
    let rec wait () =
      match h.result with
      | Pending ->
          Condition.wait h.hcond h.hmu;
          wait ()
      | r -> r
    in
    let r = wait () in
    Mutex.unlock h.hmu;
    match r with
    | Done v -> v
    | Failed (e, bt) -> Printexc.raise_with_backtrace e bt
    | Pending -> assert false

  let shutdown t =
    Mutex.lock t.mu;
    t.closing <- true;
    Condition.broadcast t.nonempty;
    Mutex.unlock t.mu;
    List.iter Domain.join t.domains;
    t.domains <- []
end
