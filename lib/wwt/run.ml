type engine = Tree_walk | Compiled | Par of int

let run_with ?poll engine ~machine program =
  match engine with
  | Tree_walk -> Interp.run ?poll ~machine program
  | Compiled -> Compile.run ?poll ~machine program
  | Par domains -> Par.run ?poll ~domains ~machine program

let collect_trace ?poll ?(engine = Compiled) ~machine program =
  let program = Lang.Ast.strip_annotations program in
  run_with ?poll engine ~machine:(Machine.trace_mode machine) program

let measure ?poll ?(engine = Compiled) ~machine ~annotations ~prefetch program =
  run_with ?poll engine
    ~machine:(Machine.perf_mode ~annotations ~prefetch machine)
    program

let source_trace ~machine src = collect_trace ~machine (Lang.Parser.parse src)

let source_measure ~machine ~annotations ~prefetch src =
  measure ~machine ~annotations ~prefetch (Lang.Parser.parse src)
