open Lang

let error fmt = Format.kasprintf (fun s -> raise (Interp.Runtime_error s)) fmt

exception Returning of Value.t option

(* ---- runtime state (mirrors Interp's) ---- *)

type rt_global = {
  machine : Machine.t;
  layout : Label.t;
  proto : Memsys.Protocol.t;
  shared : Value.t array;
  elem_shift : int;  (* log2 elem_size, or -1 if not a power of two *)
  trace_buf : Trace.Buf.t;
  output_buf : string list ref;
}

type rt = {
  node : int;
  privates : Value.t array array;  (* indexed by compile-time private id *)
  lop : int;  (* cost of a local op, lifted out of the machine record *)
  quantum : int;
  mutable pending : int;
  mutable base_now : int;  (* cached [Sched.now]; see Interp.nstate *)
  mutable held_locks : int list;
  mutable held_id : int;
  reco : Record.t option;
      (* [Some _] only under Par's recording phase, with [quantum = 0] so
         every yield check reaches the recording branch; [None] keeps the
         sequential paths bit-for-bit what they were *)
}

let elem_shift_of elem_size =
  if elem_size > 0 && elem_size land (elem_size - 1) = 0 then begin
    let rec log2 n acc = if n <= 1 then acc else log2 (n lsr 1) (acc + 1) in
    log2 elem_size 0
  end
  else -1

let elem_index g addr =
  if g.elem_shift >= 0 then addr lsr g.elem_shift
  else addr / g.machine.Machine.elem_size

(* Statically int-typed variables live unboxed in [ints]; everything else
   is a boxed [Value.t] in [vals]. Which slots are int is decided per
   procedure by [analyze_int_slots]; an int slot is only ever written
   from expressions whose value is guaranteed [Value.Vint], so the two
   representations never disagree. *)
type frame = { vals : Value.t array; ints : int array }

let make_frame nslots =
  { vals = Array.make (max 1 nslots) Value.zero;
    ints = Array.make (max 1 nslots) 0 }

type cexpr = rt_global -> rt -> frame -> Value.t
type cint = rt_global -> rt -> frame -> int
type cbool = rt_global -> rt -> frame -> bool
type cstmt = rt_global -> rt -> frame -> unit

type cproc = { arity : int; nslots : int; mutable cbody : cstmt }

(* ---- cost plumbing (identical to Interp) ---- *)

let flush_pending r =
  match r.reco with
  | None ->
      if r.pending > 0 then begin
        Sched.advance r.pending;
        r.base_now <- r.base_now + r.pending;
        r.pending <- 0
      end
  | Some rc ->
      Record.flush rc r.pending;
      r.pending <- 0

let charge _g r = r.pending <- r.pending + r.lop

let maybe_yield _g r =
  if r.pending >= r.quantum then begin
    match r.reco with
    | None ->
        if r.pending > 0 then begin
          Sched.advance r.pending;
          r.base_now <- r.base_now + r.pending;
          r.pending <- 0
        end
    | Some rc ->
        Record.ycheck rc r.pending;
        r.pending <- 0
  end

let virtual_now r = r.base_now + r.pending

let record_miss g r ~pc ~addr packed =
  let kind = Memsys.Protocol.packed_kind packed in
  if kind <> Memsys.Protocol.no_miss && g.machine.Machine.collect_trace then begin
    let bkind =
      if kind = Memsys.Protocol.read_miss then Trace.Buf.kind_read
      else if kind = Memsys.Protocol.write_miss then Trace.Buf.kind_write
      else Trace.Buf.kind_fault
    in
    Trace.Buf.add_miss g.trace_buf ~node:r.node ~pc ~addr ~kind:bkind
      ~held:r.held_id
  end;
  r.pending <- r.pending + Memsys.Protocol.packed_latency packed

(* ---- compile-time environment ---- *)

type array_ref =
  | Ashared of Label.entry
  | Aprivate of int * int  (* private id, element count *)

(* What Par's replay needs to re-execute a recorded ANNOT event: the
   array the directive targets and the protocol latency function. *)
type annot_desc = {
  a_entry : Label.entry;
  a_directive : Memsys.Protocol.t -> node:int -> addr:int -> now:int -> int;
}

type cenv = {
  info : Sema.info;
  genv_layout : Label.t;
  consts : (string * Value.t) list;
  procs : (string, cproc) Hashtbl.t;
  private_ids : (string * int) list;
  mutable annot_descs : annot_desc list;  (* reversed; id = position *)
  mutable n_annots : int;
  (* per-proc, during compilation: *)
  slots : (string, int) Hashtbl.t;
  islots : (string, bool) Hashtbl.t;  (* slot is statically int-typed *)
  mutable next_slot : int;
}

let annot_table env =
  let a = Array.of_list (List.rev env.annot_descs) in
  assert (Array.length a = env.n_annots);
  a

let main_proc env = Hashtbl.find_opt env.procs "main"

let array_ref env name =
  match Label.find_array env.genv_layout name with
  | Some e -> Some (Ashared e)
  | None -> (
      match List.assoc_opt name env.private_ids with
      | Some id -> Some (Aprivate (id, List.assoc name env.info.Sema.privates))
      | None -> None)

let slot_of env name =
  match Hashtbl.find_opt env.slots name with
  | Some i -> i
  | None ->
      let i = env.next_slot in
      env.next_slot <- i + 1;
      Hashtbl.add env.slots name i;
      i

(* names assigned anywhere in the procedure become frame slots *)
let collect_slots env (proc : Ast.proc) =
  Hashtbl.reset env.slots;
  env.next_slot <- 0;
  List.iter (fun p -> ignore (slot_of env p)) proc.Ast.params;
  let probe = { Ast.decls = []; procs = [ proc ] } in
  Ast.iter_stmts
    (fun s ->
      match s.Ast.node with
      | Ast.Sassign (Ast.Lvar name, _) -> ignore (slot_of env name)
      | Ast.Sfor { var; _ } -> ignore (slot_of env var)
      | _ -> ())
    probe

(* ---- static int typing ---- *)

(* [true] only if the expression's runtime value is guaranteed to be
   [Value.Vint] under the current slot typing. Comparisons and boolean
   operators always produce ints; arithmetic does iff both operands do
   (matching [Value.arith]'s promotion rule). *)
let rec expr_is_int env (e : Ast.expr) =
  match e with
  | Ast.Eint _ -> true
  | Ast.Efloat _ -> false
  | Ast.Evar name -> (
      match array_ref env name with
      | Some _ -> false
      | None ->
          if Hashtbl.mem env.slots name then
            Option.value ~default:false (Hashtbl.find_opt env.islots name)
          else if name = "pid" || name = "nprocs" then true
          else (
            match List.assoc_opt name env.consts with
            | Some (Value.Vint _) -> true
            | Some (Value.Vfloat _) | None -> false))
  | Ast.Eindex _ -> false  (* array elements are not statically typed *)
  | Ast.Ebinop ((Ast.And | Ast.Or), _, _) -> true
  | Ast.Ebinop ((Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge | Ast.Eq | Ast.Ne), _, _)
    -> true
  | Ast.Ebinop ((Ast.Add | Ast.Sub | Ast.Mul | Ast.Div | Ast.Mod), a, b) ->
      expr_is_int env a && expr_is_int env b
  | Ast.Eunop (Ast.Neg, a) -> expr_is_int env a
  | Ast.Eunop (Ast.Not, _) -> true
  | Ast.Ecall ("int", [ _ ]) -> true
  | Ast.Ecall ("abs", [ a ]) -> expr_is_int env a
  | Ast.Ecall (("min" | "max"), [ a; b ]) ->
      expr_is_int env a && expr_is_int env b
  | Ast.Ecall _ -> false

(* A slot is int-typed iff every write to it (assignment or loop header)
   is an int-typed expression. Demotions can cascade, so iterate to a
   fixed point; params arrive as boxed values and stay non-int. *)
let analyze_int_slots env (proc : Ast.proc) =
  Hashtbl.reset env.islots;
  Hashtbl.iter (fun name _ -> Hashtbl.replace env.islots name true) env.slots;
  List.iter (fun p -> Hashtbl.replace env.islots p false) proc.Ast.params;
  let probe = { Ast.decls = []; procs = [ proc ] } in
  let changed = ref true in
  while !changed do
    changed := false;
    Ast.iter_stmts
      (fun s ->
        let demote name is_int =
          if (not is_int)
             && Option.value ~default:false (Hashtbl.find_opt env.islots name)
          then begin
            Hashtbl.replace env.islots name false;
            changed := true
          end
        in
        match s.Ast.node with
        | Ast.Sassign (Ast.Lvar name, e) -> demote name (expr_is_int env e)
        | Ast.Sfor { var; from_; to_; step; _ } ->
            demote var
              (expr_is_int env from_ && expr_is_int env to_
              && expr_is_int env step)
        | _ -> ())
      probe
  done

let int_slot env name =
  Option.value ~default:false (Hashtbl.find_opt env.islots name)

(* ---- shared-memory accesses ---- *)

let shared_read g r ~pc (entry : Label.entry) i =
  if i < 0 || i >= entry.Label.elems then
    error "index %d out of bounds for shared array %s[%d]" i entry.Label.name
      entry.Label.elems;
  let addr = entry.Label.base + (i * entry.Label.elem_size) in
  match r.reco with
  | None ->
      let p =
        Memsys.Protocol.read_p g.proto ~node:r.node ~addr ~now:(virtual_now r)
      in
      record_miss g r ~pc ~addr p;
      g.shared.(elem_index g addr)
  | Some rc ->
      let e = elem_index g addr in
      Record.read rc r.pending ~pc ~addr;
      r.pending <- 0;
      Record.mark_read rc e;
      g.shared.(e)

(* Direct-run halves of a recognized commutative RMW ([A[i] = A[i] + e]);
   only called when not recording. The rmw entry points are bit-identical
   to read_p/write_p except under the Commute backend, where the access
   lands in a privatized per-node copy. *)
let shared_read_rmw g r ~pc (entry : Label.entry) i =
  if i < 0 || i >= entry.Label.elems then
    error "index %d out of bounds for shared array %s[%d]" i entry.Label.name
      entry.Label.elems;
  let addr = entry.Label.base + (i * entry.Label.elem_size) in
  let p =
    Memsys.Protocol.read_rmw_p g.proto ~node:r.node ~addr ~now:(virtual_now r)
  in
  record_miss g r ~pc ~addr p;
  g.shared.(elem_index g addr)

let shared_write_rmw g r ~pc (entry : Label.entry) i v =
  if i < 0 || i >= entry.Label.elems then
    error "index %d out of bounds for shared array %s[%d]" i entry.Label.name
      entry.Label.elems;
  let addr = entry.Label.base + (i * entry.Label.elem_size) in
  let p =
    Memsys.Protocol.write_rmw_p g.proto ~node:r.node ~addr ~now:(virtual_now r)
  in
  record_miss g r ~pc ~addr p;
  g.shared.(elem_index g addr) <- v

let shared_write g r ~pc (entry : Label.entry) i v =
  if i < 0 || i >= entry.Label.elems then
    error "index %d out of bounds for shared array %s[%d]" i entry.Label.name
      entry.Label.elems;
  let addr = entry.Label.base + (i * entry.Label.elem_size) in
  match r.reco with
  | None ->
      let p =
        Memsys.Protocol.write_p g.proto ~node:r.node ~addr ~now:(virtual_now r)
      in
      record_miss g r ~pc ~addr p;
      g.shared.(elem_index g addr) <- v
  | Some rc ->
      let e = elem_index g addr in
      Record.write rc r.pending ~pc ~addr v;
      r.pending <- 0;
      Record.mark_write rc e;
      g.shared.(e) <- v

(* ---- expression compilation ---- *)

let apply_binop op va vb =
  match op with
  | Ast.Add -> Value.add va vb
  | Ast.Sub -> Value.sub va vb
  | Ast.Mul -> Value.mul va vb
  | Ast.Div -> Value.div va vb
  | Ast.Mod -> Value.modulo va vb
  | Ast.Lt -> Value.of_bool (Value.compare_num va vb < 0)
  | Ast.Le -> Value.of_bool (Value.compare_num va vb <= 0)
  | Ast.Gt -> Value.of_bool (Value.compare_num va vb > 0)
  | Ast.Ge -> Value.of_bool (Value.compare_num va vb >= 0)
  | Ast.Eq -> Value.of_bool (Value.equal va vb)
  | Ast.Ne -> Value.of_bool (not (Value.equal va vb))
  | Ast.And | Ast.Or -> assert false

(* Int-typed expressions compile to unboxed [cint] closures; everything
   else boxes as before. Charging is per AST node in evaluation order in
   both variants, so simulated cycle counts cannot differ. *)
let rec compile_expr env ~pc (e : Ast.expr) : cexpr =
  match e with
  | Ast.Eint _ | Ast.Efloat _ | Ast.Evar _ -> compile_expr_node env ~pc e
  | _ when expr_is_int env e ->
      (* box once at the root instead of at every leaf and interior node *)
      let ci = compile_int env ~pc e in
      fun g r frame -> Value.Vint (ci g r frame)
  | _ -> compile_expr_node env ~pc e

and compile_expr_node env ~pc (e : Ast.expr) : cexpr =
  match e with
  | Ast.Eint i ->
      let v = Value.Vint i in
      fun g r _ -> charge g r; v
  | Ast.Efloat f ->
      let v = Value.Vfloat f in
      fun g r _ -> charge g r; v
  | Ast.Evar name -> (
      match array_ref env name with
      | Some _ ->
          (* sema rejects this; defensive *)
          fun _ _ _ -> error "array %S used without a subscript" name
      | None ->
          if Hashtbl.mem env.slots name then begin
            let i = Hashtbl.find env.slots name in
            if int_slot env name then
              fun g r frame -> charge g r; Value.Vint frame.ints.(i)
            else fun g r frame -> charge g r; frame.vals.(i)
          end
          else if name = "pid" then fun g r _ -> charge g r; Value.Vint r.node
          else if name = "nprocs" then
            fun g r _ ->
              charge g r;
              Value.Vint g.machine.Machine.nodes
          else (
            match List.assoc_opt name env.consts with
            | Some v -> fun g r _ -> charge g r; v
            | None -> fun _ _ _ -> error "undefined variable %S" name))
  | Ast.Eindex (name, idx) -> (
      let cidx = compile_index env ~pc idx in
      match array_ref env name with
      | Some (Ashared entry) ->
          fun g r frame ->
            charge g r;
            let i = cidx g r frame in
            shared_read g r ~pc entry i
      | Some (Aprivate (id, size)) ->
          fun g r frame ->
            charge g r;
            let i = cidx g r frame in
            if i < 0 || i >= size then
              error "index %d out of bounds for private array %s[%d]" i name size;
            (match r.reco with
            | None ->
                let stats = Memsys.Protocol.stats g.proto in
                stats.Memsys.Stats.private_reads <-
                  stats.Memsys.Stats.private_reads + 1
            | Some rc ->
                (* the shared counter would race across domains; count
                   per recorder and merge after replay *)
                rc.Record.priv_reads <- rc.Record.priv_reads + 1);
            r.privates.(id).(i)
      | None -> fun _ _ _ -> error "subscript of non-array %S" name)
  | Ast.Ebinop (Ast.And, a, b) ->
      let ca = compile_expr env ~pc a and cb = compile_expr env ~pc b in
      fun g r frame ->
        charge g r;
        if Value.to_bool (ca g r frame) then
          Value.of_bool (Value.to_bool (cb g r frame))
        else Value.of_bool false
  | Ast.Ebinop (Ast.Or, a, b) ->
      let ca = compile_expr env ~pc a and cb = compile_expr env ~pc b in
      fun g r frame ->
        charge g r;
        if Value.to_bool (ca g r frame) then Value.of_bool true
        else Value.of_bool (Value.to_bool (cb g r frame))
  | Ast.Ebinop (op, a, b) ->
      let ca = compile_expr env ~pc a and cb = compile_expr env ~pc b in
      fun g r frame ->
        charge g r;
        let va = ca g r frame in
        let vb = cb g r frame in
        (try apply_binop op va vb
         with Division_by_zero -> error "division by zero")
  | Ast.Eunop (Ast.Neg, a) ->
      let ca = compile_expr env ~pc a in
      fun g r frame -> charge g r; Value.neg (ca g r frame)
  | Ast.Eunop (Ast.Not, a) ->
      let ca = compile_expr env ~pc a in
      fun g r frame ->
        charge g r;
        Value.of_bool (not (Value.to_bool (ca g r frame)))
  | Ast.Ecall (name, args) ->
      let call = compile_call env ~pc name args in
      fun g r frame ->
        charge g r;
        call g r frame

(* unboxed compilation; precondition: [expr_is_int env e] *)
and compile_int env ~pc (e : Ast.expr) : cint =
  match e with
  | Ast.Eint i -> fun g r _ -> charge g r; i
  | Ast.Evar name ->
      if Hashtbl.mem env.slots name then begin
        let i = Hashtbl.find env.slots name in
        fun g r frame -> charge g r; frame.ints.(i)
      end
      else if name = "pid" then fun g r _ -> charge g r; r.node
      else if name = "nprocs" then
        fun g r _ ->
          charge g r;
          g.machine.Machine.nodes
      else (
        match List.assoc_opt name env.consts with
        | Some (Value.Vint i) -> fun g r _ -> charge g r; i
        | Some (Value.Vfloat _) | None -> assert false)
  | Ast.Ebinop (Ast.And, a, b) ->
      let ba = compile_bool env ~pc a and bb = compile_bool env ~pc b in
      fun g r frame ->
        charge g r;
        if ba g r frame then if bb g r frame then 1 else 0 else 0
  | Ast.Ebinop (Ast.Or, a, b) ->
      let ba = compile_bool env ~pc a and bb = compile_bool env ~pc b in
      fun g r frame ->
        charge g r;
        if ba g r frame then 1 else if bb g r frame then 1 else 0
  | Ast.Ebinop
      ((Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge | Ast.Eq | Ast.Ne) as op, a, b) ->
      if expr_is_int env a && expr_is_int env b then begin
        let ca = compile_int env ~pc a and cb = compile_int env ~pc b in
        let cmp : int -> int -> bool =
          match op with
          | Ast.Lt -> ( < )
          | Ast.Le -> ( <= )
          | Ast.Gt -> ( > )
          | Ast.Ge -> ( >= )
          | Ast.Eq -> ( = )
          | Ast.Ne -> ( <> )
          | _ -> assert false
        in
        fun g r frame ->
          charge g r;
          let x = ca g r frame in
          let y = cb g r frame in
          if cmp x y then 1 else 0
      end
      else begin
        let ca = compile_expr env ~pc a and cb = compile_expr env ~pc b in
        let test : Value.t -> Value.t -> bool =
          match op with
          | Ast.Lt -> fun va vb -> Value.compare_num va vb < 0
          | Ast.Le -> fun va vb -> Value.compare_num va vb <= 0
          | Ast.Gt -> fun va vb -> Value.compare_num va vb > 0
          | Ast.Ge -> fun va vb -> Value.compare_num va vb >= 0
          | Ast.Eq -> Value.equal
          | Ast.Ne -> fun va vb -> not (Value.equal va vb)
          | _ -> assert false
        in
        fun g r frame ->
          charge g r;
          let va = ca g r frame in
          let vb = cb g r frame in
          if test va vb then 1 else 0
      end
  | Ast.Ebinop ((Ast.Add | Ast.Sub | Ast.Mul) as op, a, b) ->
      let ca = compile_int env ~pc a and cb = compile_int env ~pc b in
      let f : int -> int -> int =
        match op with
        | Ast.Add -> ( + )
        | Ast.Sub -> ( - )
        | Ast.Mul -> ( * )
        | _ -> assert false
      in
      fun g r frame ->
        charge g r;
        let x = ca g r frame in
        let y = cb g r frame in
        f x y
  | Ast.Ebinop ((Ast.Div | Ast.Mod) as op, a, b) ->
      let ca = compile_int env ~pc a and cb = compile_int env ~pc b in
      let is_div = op = Ast.Div in
      fun g r frame ->
        charge g r;
        let x = ca g r frame in
        let y = cb g r frame in
        if y = 0 then error "division by zero"
        else if is_div then x / y
        else x mod y
  | Ast.Eunop (Ast.Neg, a) ->
      let ca = compile_int env ~pc a in
      fun g r frame ->
        charge g r;
        -ca g r frame
  | Ast.Eunop (Ast.Not, a) ->
      let ba = compile_bool env ~pc a in
      fun g r frame ->
        charge g r;
        if ba g r frame then 0 else 1
  | Ast.Ecall ("int", [ a ]) ->
      let ca = compile_expr env ~pc a in
      fun g r frame ->
        charge g r;
        Value.to_int (ca g r frame)
  | Ast.Ecall ("abs", [ a ]) ->
      let ca = compile_int env ~pc a in
      fun g r frame ->
        charge g r;
        abs (ca g r frame)
  | Ast.Ecall (("min" | "max") as name, [ a; b ]) ->
      let ca = compile_int env ~pc a and cb = compile_int env ~pc b in
      let is_min = name = "min" in
      fun g r frame ->
        charge g r;
        let x = ca g r frame in
        let y = cb g r frame in
        if is_min then if x <= y then x else y else if x >= y then x else y
  | Ast.Efloat _ | Ast.Eindex _ | Ast.Ecall _ -> assert false

and compile_bool env ~pc (e : Ast.expr) : cbool =
  if expr_is_int env e then begin
    let ci = compile_int env ~pc e in
    fun g r frame -> ci g r frame <> 0
  end
  else begin
    let ce = compile_expr env ~pc e in
    fun g r frame -> Value.to_bool (ce g r frame)
  end

(* array subscripts: unboxed when int-typed, [Value.to_int] otherwise *)
and compile_index env ~pc (e : Ast.expr) : cint =
  if expr_is_int env e then compile_int env ~pc e
  else begin
    let ce = compile_expr env ~pc e in
    fun g r frame -> Value.to_int (ce g r frame)
  end

(* calls in statement position are not charged as an expression node *)
and compile_call env ~pc name args : cexpr =
  let cargs = List.map (compile_expr env ~pc) args in
  let eval2 g r frame =
    match cargs with
    | [ c1; c2 ] ->
        let v1 = c1 g r frame in
        let v2 = c2 g r frame in
        (v1, v2)
    | _ -> assert false
  in
  let eval1 g r frame =
    match cargs with [ c ] -> c g r frame | _ -> assert false
  in
  match (name, List.length args) with
  | "min", 2 ->
      fun g r frame ->
        let a, b = eval2 g r frame in
        if Value.compare_num a b <= 0 then a else b
  | "max", 2 ->
      fun g r frame ->
        let a, b = eval2 g r frame in
        if Value.compare_num a b >= 0 then a else b
  | "abs", 1 -> (
      fun g r frame ->
        match eval1 g r frame with
        | Value.Vint i -> Value.Vint (abs i)
        | Value.Vfloat f -> Value.Vfloat (Float.abs f))
  | "sqrt", 1 ->
      fun g r frame -> Value.Vfloat (sqrt (Value.to_float (eval1 g r frame)))
  | "sin", 1 ->
      fun g r frame -> Value.Vfloat (sin (Value.to_float (eval1 g r frame)))
  | "cos", 1 ->
      fun g r frame -> Value.Vfloat (cos (Value.to_float (eval1 g r frame)))
  | "floor", 1 ->
      fun g r frame ->
        Value.Vfloat (Float.floor (Value.to_float (eval1 g r frame)))
  | "float", 1 ->
      fun g r frame -> Value.Vfloat (Value.to_float (eval1 g r frame))
  | "int", 1 ->
      fun g r frame -> Value.Vint (Value.to_int (eval1 g r frame))
  | "noise", 1 ->
      fun g r frame -> Value.Vfloat (Interp.noise (Value.to_int (eval1 g r frame)))
  | _ ->
      let procs = env.procs in
      fun g r frame ->
        let rec eval_list = function
          | [] -> []
          | c :: rest ->
              let v = c g r frame in
              v :: eval_list rest
        in
        let values = eval_list cargs in
        let cp =
          match Hashtbl.find_opt procs name with
          | Some cp -> cp
          | None -> error "call of unknown procedure %S" name
        in
        if List.length values <> cp.arity then
          error "procedure %S called with %d argument(s), expects %d" name
            (List.length values) cp.arity;
        let callee = make_frame cp.nslots in
        List.iteri (fun i v -> callee.vals.(i) <- v) values;
        (try
           cp.cbody g r callee;
           Value.zero
         with Returning v -> Option.value ~default:Value.zero v)

(* ---- statement compilation ---- *)

let compile_annot env (kind : Ast.annot_kind) arr =
  let directive =
    match kind with
    | Ast.Check_out_x -> Memsys.Protocol.check_out_x_lat
    | Ast.Check_out_s -> Memsys.Protocol.check_out_s_lat
    | Ast.Check_in -> Memsys.Protocol.check_in_lat
    | Ast.Prefetch_x -> Memsys.Protocol.prefetch_x_lat
    | Ast.Prefetch_s -> Memsys.Protocol.prefetch_s_lat
    | Ast.Post_store -> Memsys.Protocol.post_store_lat
  in
  let is_prefetch = kind = Ast.Prefetch_x || kind = Ast.Prefetch_s in
  match array_ref env arr with
  | Some (Ashared entry) ->
      let id = env.n_annots in
      env.n_annots <- id + 1;
      env.annot_descs <-
        { a_entry = entry; a_directive = directive } :: env.annot_descs;
      Some
        (fun g r (ranges : (int * int) list) ->
          match g.machine.Machine.annotations with
          | Machine.Ignore_annotations -> ()
          | Machine.Execute_annotations ->
              if not (is_prefetch && not g.machine.Machine.prefetch) then
                let elem_size = entry.Label.elem_size in
                let block_size = g.machine.Machine.block_size in
                List.iter
                  (fun (lo_i, hi_i) ->
                    let lo_i = max 0 lo_i
                    and hi_i = min (entry.Label.elems - 1) hi_i in
                    if lo_i <= hi_i then
                      match r.reco with
                      | Some rc ->
                          (* directive latencies depend on protocol state;
                             replay computes them at the true position *)
                          Record.annot rc r.pending ~id ~lo:lo_i ~hi:hi_i;
                          r.pending <- 0
                      | None ->
                          let lo_addr = entry.Label.base + (lo_i * elem_size) in
                          let hi_addr =
                            entry.Label.base + (hi_i * elem_size) + elem_size
                            - 1
                          in
                          List.iter
                            (fun blk ->
                              let addr =
                                Memsys.Block.base_addr ~block_size blk
                              in
                              let lat =
                                directive g.proto ~node:r.node ~addr
                                  ~now:(virtual_now r)
                              in
                              r.pending <- r.pending + lat)
                            (Memsys.Block.blocks_of_range ~block_size
                               ~lo:lo_addr ~hi:hi_addr))
                  ranges)
  | Some (Aprivate _) | None -> None

(* Index expressions that are side-effect-free and evaluate to the same
   value twice in a row (no array loads, no calls): for these the RMW
   fast path below may assume l-value index = r-value index. *)
let rec simple_index (e : Ast.expr) =
  match e with
  | Ast.Eint _ | Ast.Efloat _ | Ast.Evar _ -> true
  | Ast.Ebinop (_, a, b) -> simple_index a && simple_index b
  | Ast.Eunop (_, a) -> simple_index a
  | Ast.Eindex _ | Ast.Ecall _ -> false

let rec compile_stmt env (s : Ast.stmt) : cstmt =
  let pc = s.Ast.sid in
  let is_annot = Ast.is_annotation s in
  let body : cstmt =
    match s.Ast.node with
    | Ast.Sassign (Ast.Lvar name, e) ->
        let i = slot_of env name in
        if int_slot env name then begin
          let ci = compile_int env ~pc e in
          fun g r frame -> frame.ints.(i) <- ci g r frame
        end
        else begin
          let ce = compile_expr env ~pc e in
          fun g r frame -> frame.vals.(i) <- ce g r frame
        end
    | Ast.Sassign (Ast.Lindex (name, idx), e) -> (
        let ce = compile_expr env ~pc e in
        let cidx = compile_index env ~pc idx in
        match array_ref env name with
        | Some (Ashared entry) -> (
            match e with
            | Ast.Ebinop (Ast.Add, Ast.Eindex (name2, idx2), rest)
              when name2 = name && idx2 = idx && simple_index idx ->
                (* Read-modify-write accumulation (A[i] = A[i] + e).
                   Sequentially this compiles exactly like the generic
                   case (the closures below are only used when recording).
                   Under recording it emits RMW events whose increment is
                   re-applied to the *replay-time* value, so cross-node
                   accumulations replay bit-identically without being
                   flagged as conflicts. *)
                let cidx_in = compile_index env ~pc idx in
                let crest = compile_expr env ~pc rest in
                fun g r frame -> (
                  match r.reco with
                  | None ->
                      (* Same charges, in the same order, as the generic
                         [ce]/[shared_write] path — only the protocol
                         entry points differ (rmw-aware, so the Commute
                         backend can privatize the accumulation). *)
                      charge g r;  (* the Ebinop node *)
                      charge g r;  (* the inner Eindex node *)
                      let i1 = cidx_in g r frame in
                      let va = shared_read_rmw g r ~pc entry i1 in
                      let vb = crest g r frame in
                      let v =
                        try apply_binop Ast.Add va vb
                        with Division_by_zero -> error "division by zero"
                      in
                      let i2 = cidx g r frame in
                      shared_write_rmw g r ~pc entry i2 v
                  | Some rc ->
                      charge g r;  (* the Ebinop node, as in compile_expr *)
                      charge g r;  (* the inner Eindex node *)
                      let i1 = cidx_in g r frame in
                      if i1 < 0 || i1 >= entry.Label.elems then
                        error "index %d out of bounds for shared array %s[%d]"
                          i1 entry.Label.name entry.Label.elems;
                      let addr =
                        entry.Label.base + (i1 * entry.Label.elem_size)
                      in
                      let el = elem_index g addr in
                      Record.rmw_read rc r.pending ~pc ~addr;
                      r.pending <- 0;
                      Record.mark_rmw rc el;
                      let vb = crest g r frame in
                      let i2 = cidx g r frame in
                      if i2 <> i1 then
                        Record.fail_unsupported "unstable rmw index";
                      Record.rmw_write rc r.pending ~pc ~addr vb;
                      r.pending <- 0;
                      (* provisional: the replay restores this element from
                         the epoch snapshot and re-applies the recorded
                         increments in true schedule order *)
                      g.shared.(el) <- Value.add g.shared.(el) vb)
            | _ ->
                fun g r frame ->
                  let v = ce g r frame in
                  let i = cidx g r frame in
                  shared_write g r ~pc entry i v)
        | Some (Aprivate (id, size)) ->
            fun g r frame ->
              let v = ce g r frame in
              let i = cidx g r frame in
              if i < 0 || i >= size then
                error "index %d out of bounds for private array %s[%d]" i name
                  size;
              (match r.reco with
              | None ->
                  let stats = Memsys.Protocol.stats g.proto in
                  stats.Memsys.Stats.private_writes <-
                    stats.Memsys.Stats.private_writes + 1
              | Some rc -> rc.Record.priv_writes <- rc.Record.priv_writes + 1);
              r.privates.(id).(i) <- v
        | None -> fun _ _ _ -> error "assignment to non-array %S" name)
    | Ast.Sif (cond, b1, b2) ->
        let cc = compile_bool env ~pc cond in
        let cb1 = compile_block env b1 and cb2 = compile_block env b2 in
        fun g r frame ->
          if cc g r frame then cb1 g r frame else cb2 g r frame
    | Ast.Sfor { var; from_; to_; step; body } ->
        let slot = slot_of env var in
        let cbody = compile_block env body in
        if
          int_slot env var && expr_is_int env from_ && expr_is_int env to_
          && expr_is_int env step
        then begin
          (* the allocation-free common case: unboxed counter and bounds *)
          let cfrom = compile_int env ~pc from_ in
          let cto = compile_int env ~pc to_ in
          let cstep = compile_int env ~pc step in
          fun g r frame ->
            let lo = cfrom g r frame in
            let hi = cto g r frame in
            let st = cstep g r frame in
            if st = 0 then error "loop step is zero";
            let cur = ref lo in
            while if st > 0 then !cur <= hi else !cur >= hi do
              frame.ints.(slot) <- !cur;
              cbody g r frame;
              r.pending <- r.pending + 1;
              cur := !cur + st
            done
        end
        else begin
          let cfrom = compile_expr env ~pc from_ in
          let cto = compile_expr env ~pc to_ in
          let cstep = compile_expr env ~pc step in
          fun g r frame ->
            let lo = cfrom g r frame in
            let hi = cto g r frame in
            let st = cstep g r frame in
            let stf = Value.to_float st in
            if stf = 0.0 then error "loop step is zero";
            let continues v =
              if stf > 0.0 then Value.compare_num v hi <= 0
              else Value.compare_num v hi >= 0
            in
            let cur = ref lo in
            while continues !cur do
              frame.vals.(slot) <- !cur;
              cbody g r frame;
              r.pending <- r.pending + 1;
              cur := Value.add !cur st
            done
        end
    | Ast.Swhile (cond, body) ->
        let cc = compile_bool env ~pc cond in
        let cbody = compile_block env body in
        fun g r frame ->
          while cc g r frame do
            cbody g r frame
          done
    | Ast.Sbarrier -> (
        fun _ r _ ->
          flush_pending r;
          match r.reco with
          | None ->
              Sched.barrier_sync ~pc;
              r.base_now <- Sched.now ()
          | Some rc ->
              (* still performs the effect: Par's recording handler parks
                 the continuation until the next epoch *)
              Record.barrier rc r.pending ~pc;
              r.pending <- 0;
              Sched.barrier_sync ~pc)
    | Ast.Scall (name, args) ->
        let call = compile_call env ~pc name args in
        fun g r frame -> ignore (call g r frame)
    | Ast.Sreturn None -> fun _ _ _ -> raise (Returning None)
    | Ast.Sreturn (Some e) ->
        let ce = compile_expr env ~pc e in
        fun g r frame -> raise (Returning (Some (ce g r frame)))
    | Ast.Slock e ->
        let ce = compile_index env ~pc e in
        fun g r frame ->
          if r.reco <> None then
            Record.fail_unsupported "lock in recording mode";
          let l = ce g r frame in
          flush_pending r;
          Sched.lock_acquire l;
          r.base_now <- Sched.now ();
          r.held_locks <- l :: r.held_locks;
          if g.machine.Machine.collect_trace then
            r.held_id <- Trace.Buf.intern_held g.trace_buf r.held_locks
    | Ast.Sunlock e ->
        let ce = compile_index env ~pc e in
        fun g r frame ->
          if r.reco <> None then
            Record.fail_unsupported "lock in recording mode";
          let l = ce g r frame in
          r.held_locks <- Interp.remove_lock l r.held_locks;
          if g.machine.Machine.collect_trace then
            r.held_id <- Trace.Buf.intern_held g.trace_buf r.held_locks;
          flush_pending r;
          Sched.lock_release l;
          r.base_now <- Sched.now ()
    | Ast.Sannot (kind, { arr; lo; hi }) -> (
        let clo = compile_index env ~pc lo in
        let chi = compile_index env ~pc hi in
        match compile_annot env kind arr with
        | Some exec ->
            fun g r frame ->
              let lo_i = clo g r frame in
              let hi_i = chi g r frame in
              exec g r [ (lo_i, hi_i) ]
        | None -> fun _ _ _ -> error "annotation on unknown shared array %S" arr)
    | Ast.Sannot_table { akind; aarr; aranges } -> (
        match compile_annot env akind aarr with
        | Some exec ->
            fun g r _ ->
              let ranges =
                if r.node < Array.length aranges then aranges.(r.node) else []
              in
              exec g r ranges
        | None -> fun _ _ _ -> error "annotation on unknown shared array %S" aarr)
    | Ast.Sprint args ->
        let cargs = List.map (compile_expr env ~pc) args in
        fun g r frame ->
          let rec eval_list = function
            | [] -> []
            | c :: rest ->
                let v = c g r frame in
                v :: eval_list rest
          in
          let values = eval_list cargs in
          let line =
            Printf.sprintf "p%d: %s" r.node
              (String.concat " " (List.map Value.to_string values))
          in
          match r.reco with
          | None -> g.output_buf := line :: !(g.output_buf)
          | Some rc ->
              Record.print rc r.pending line;
              r.pending <- 0
  in
  if is_annot then fun g r frame ->
    charge g r;
    body g r frame
  else fun g r frame ->
    charge g r;
    maybe_yield g r;
    body g r frame

and compile_block env block =
  let stmts = List.map (compile_stmt env) block in
  fun g r frame -> List.iter (fun st -> st g r frame) stmts

(* ---- program compilation and execution ---- *)

let compile ~machine program =
  let info = Sema.check program in
  let layout =
    Label.layout ~block_size:machine.Machine.block_size
      ~elem_size:machine.Machine.elem_size info
  in
  let env =
    {
      info;
      genv_layout = layout;
      consts = info.Sema.consts;
      procs = Hashtbl.create 16;
      private_ids = List.mapi (fun i (name, _) -> (name, i)) info.Sema.privates;
      slots = Hashtbl.create 16;
      islots = Hashtbl.create 16;
      next_slot = 0;
      annot_descs = [];
      n_annots = 0;
    }
  in
  (* declare every procedure first so calls resolve in any order *)
  List.iter
    (fun (p : Ast.proc) ->
      Hashtbl.replace env.procs p.Ast.pname
        {
          arity = List.length p.Ast.params;
          nslots = 0;
          cbody = (fun _ _ _ -> ());
        })
    program.Ast.procs;
  List.iter
    (fun (p : Ast.proc) ->
      collect_slots env p;
      analyze_int_slots env p;
      let cbody = compile_block env p.Ast.body in
      let cp = Hashtbl.find env.procs p.Ast.pname in
      cp.cbody <- cbody;
      Hashtbl.replace env.procs p.Ast.pname { cp with nslots = env.next_slot })
    program.Ast.procs;
  (info, layout, env)

let run ?poll ~machine program =
  let info, layout, env = compile ~machine program in
  let proto =
    Memsys.Protocol.create_b ~backend:machine.Machine.protocol
      ~nodes:machine.Machine.nodes ~cache_bytes:machine.Machine.cache_bytes
      ~assoc:machine.Machine.assoc ~block_size:machine.Machine.block_size
      ~costs:machine.Machine.costs
  in
  if machine.Machine.debug_protocol then
    Memsys.Protocol.set_debug_checks proto true;
  let total_elems =
    (Label.total_bytes layout + machine.Machine.elem_size - 1)
    / machine.Machine.elem_size
  in
  let g =
    {
      machine;
      layout;
      proto;
      shared = Array.make (max 1 total_elems) Value.zero;
      elem_shift = elem_shift_of machine.Machine.elem_size;
      trace_buf = Trace.Buf.create ();
      output_buf = ref [];
    }
  in
  if machine.Machine.collect_trace then
    List.iter
      (fun (name, lo, hi) -> Trace.Buf.add_label g.trace_buf ~name ~lo ~hi)
      (Label.to_label_records layout);
  let stats = Memsys.Protocol.stats proto in
  let on_barrier ~vt ~arrivals =
    stats.Memsys.Stats.barriers <- stats.Memsys.Stats.barriers + 1;
    Memsys.Protocol.epoch_boundary proto;
    if machine.Machine.flush_at_barrier then
      for node = 0 to machine.Machine.nodes - 1 do
        Memsys.Protocol.flush_node proto ~node
      done;
    Memsys.Protocol.sample_occupancy proto;
    if machine.Machine.collect_trace then
      List.iter
        (fun (node, bpc) ->
          Trace.Buf.add_barrier g.trace_buf ~node ~pc:bpc ~vt)
        arrivals
  in
  let on_lock_acquire ~node:_ ~lock:_ =
    stats.Memsys.Stats.lock_acquires <- stats.Memsys.Stats.lock_acquires + 1
  in
  let main =
    match Hashtbl.find_opt env.procs "main" with
    | Some cp -> cp
    | None -> error "program has no main procedure"
  in
  let body node =
    let r =
      {
        node;
        privates =
          Array.of_list
            (List.map (fun (_, elems) -> Array.make elems Value.zero)
               info.Sema.privates);
        lop = machine.Machine.costs.Memsys.Network.local_op;
        quantum = machine.Machine.quantum;
        pending = 0;
        base_now = 0;
        held_locks = [];
        held_id = Trace.Buf.empty_held;
        reco = None;
      }
    in
    let frame = make_frame main.nslots in
    (try main.cbody g r frame with Returning _ -> ());
    flush_pending r
  in
  let engine_t0 = Obs.start () in
  let time =
    Sched.run ?poll
      {
        Sched.nodes = machine.Machine.nodes;
        barrier_cost = machine.Machine.costs.Memsys.Network.barrier;
        lock_transfer = machine.Machine.costs.Memsys.Network.lock_transfer;
        on_barrier;
        on_lock_acquire;
      }
      body
  in
  Obs.finish "engine.compiled" engine_t0;
  {
    Interp.time;
    stats;
    trace = Trace.Buf.to_records g.trace_buf;
    output = List.rev !(g.output_buf);
    shared = g.shared;
    layout;
    info;
  }

let compile_only ~machine program = ignore (compile ~machine program)
