(* Readiness-driven I/O: an incremental line framer and a select-based
   event loop. See aio.mli for the contract. *)

module Framing = struct
  (* A growable byte buffer with a consumed prefix. [scan] remembers how
     far we have already searched for '\n', so feeding N bytes costs
     O(N) total however the chunks are sliced. *)
  type t = {
    mutable buf : Bytes.t;
    mutable start : int;  (* first unconsumed byte *)
    mutable len : int;  (* bytes buffered from [start] *)
    mutable scan : int;  (* offset from [start] already searched *)
  }

  let create () = { buf = Bytes.create 4096; start = 0; len = 0; scan = 0 }

  let ensure t extra =
    let need = t.len + extra in
    if t.start + need > Bytes.length t.buf then
      if need <= Bytes.length t.buf then begin
        (* compact in place *)
        Bytes.blit t.buf t.start t.buf 0 t.len;
        t.start <- 0
      end
      else begin
        let cap = ref (max 4096 (Bytes.length t.buf)) in
        while !cap < need do
          cap := !cap * 2
        done;
        let nb = Bytes.create !cap in
        Bytes.blit t.buf t.start nb 0 t.len;
        t.buf <- nb;
        t.start <- 0
      end

  let feed t src off len =
    if off < 0 || len < 0 || off + len > Bytes.length src then
      invalid_arg "Framing.feed";
    ensure t len;
    Bytes.blit src off t.buf (t.start + t.len) len;
    t.len <- t.len + len

  let feed_string t s = feed t (Bytes.unsafe_of_string s) 0 (String.length s)

  let next_line t =
    let rec find i =
      if i >= t.len then None
      else if Bytes.get t.buf (t.start + i) = '\n' then Some i
      else find (i + 1)
    in
    match find t.scan with
    | None ->
        t.scan <- t.len;
        None
    | Some i ->
        let line = Bytes.sub_string t.buf t.start i in
        t.start <- t.start + i + 1;
        t.len <- t.len - i - 1;
        t.scan <- 0;
        if t.len = 0 then t.start <- 0;
        Some line

  let buffered t = t.len
end

module Loop = struct
  type conn = {
    fd : Unix.file_descr;
    owner : t;
    framing : Framing.t;
    out : string Queue.t;  (* pending writes; head may be partly sent *)
    mutable out_off : int;  (* sent prefix of the head of [out] *)
    mutable out_bytes : int;  (* total unsent bytes *)
    mutable holds : int;
    mutable eof : bool;  (* peer closed its write side *)
    mutable closed : bool;
    mutable last_activity : float;
    on_line : conn -> string -> unit;
    on_close : (conn -> unit) option;
  }

  and t = {
    mutable listeners : (Unix.file_descr * (Unix.file_descr -> unit)) list;
    conns : (Unix.file_descr, conn) Hashtbl.t;
    posted : (unit -> unit) Queue.t;
    post_mu : Mutex.t;
    wake_r : Unix.file_descr;
    wake_w : Unix.file_descr;
    mutable wake_signaled : bool;  (* guarded by [post_mu] *)
    scratch : Bytes.t;
  }

  let create () =
    (* a peer that disappears between our poll and our write must surface
       as EPIPE on that one connection, not kill the process *)
    (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
     with Invalid_argument _ -> ());
    let wake_r, wake_w = Unix.pipe ~cloexec:true () in
    Unix.set_nonblock wake_r;
    Unix.set_nonblock wake_w;
    {
      listeners = [];
      conns = Hashtbl.create 64;
      posted = Queue.create ();
      post_mu = Mutex.create ();
      wake_r;
      wake_w;
      wake_signaled = false;
      scratch = Bytes.create 65536;
    }

  let post t f =
    Mutex.lock t.post_mu;
    Queue.add f t.posted;
    let need_wake = not t.wake_signaled in
    if need_wake then t.wake_signaled <- true;
    Mutex.unlock t.post_mu;
    if need_wake then
      try ignore (Unix.write t.wake_w (Bytes.make 1 '!') 0 1)
      with Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()

  let drain_posted t =
    (* swap the queue out under the lock, run the closures outside it *)
    Mutex.lock t.post_mu;
    let jobs = Queue.copy t.posted in
    Queue.clear t.posted;
    t.wake_signaled <- false;
    Mutex.unlock t.post_mu;
    (try
       while true do
         ignore (Unix.read t.wake_r t.scratch 0 64)
       done
     with
    | Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
        ());
    Queue.iter (fun f -> f ()) jobs

  let add_listener t fd ~on_accept = t.listeners <- (fd, on_accept) :: t.listeners
  let stop_accepting t = t.listeners <- []

  let add_conn t fd ~on_line ?on_close () =
    Unix.set_nonblock fd;
    let c =
      {
        fd;
        owner = t;
        framing = Framing.create ();
        out = Queue.create ();
        out_off = 0;
        out_bytes = 0;
        holds = 0;
        eof = false;
        closed = false;
        last_activity = Unix.gettimeofday ();
        on_line;
        on_close;
      }
    in
    Hashtbl.replace t.conns fd c;
    c

  let conn_count t = Hashtbl.length t.conns

  let drop t c =
    if not c.closed then begin
      c.closed <- true;
      Hashtbl.remove t.conns c.fd;
      (try Unix.close c.fd with Unix.Unix_error _ -> ());
      match c.on_close with Some f -> f c | None -> ()
    end

  (* Write as much of the out queue as the socket accepts right now. *)
  let flush_out t c =
    let progress = ref true in
    (try
       while (not c.closed) && c.out_bytes > 0 && !progress do
         let head = Queue.peek c.out in
         let len = String.length head - c.out_off in
         let n = Unix.write_substring c.fd head c.out_off len in
         c.out_bytes <- c.out_bytes - n;
         if n = len then begin
           ignore (Queue.pop c.out);
           c.out_off <- 0
         end
         else begin
           c.out_off <- c.out_off + n;
           progress := false
         end
       done
     with
    | Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
        ()
    | Unix.Unix_error _ | Sys_error _ -> drop t c);
    if (not c.closed) && c.out_bytes > 0 then c.last_activity <- Unix.gettimeofday ()

  let send c line =
    if not c.closed then begin
      Queue.add line c.out;
      c.out_bytes <- c.out_bytes + String.length line;
      c.last_activity <- Unix.gettimeofday ();
      flush_out c.owner c
    end

  let hold c = c.holds <- c.holds + 1

  let maybe_drop_after_eof c =
    if (not c.closed) && c.eof && c.holds = 0 && c.out_bytes = 0 then
      drop c.owner c

  let release c =
    c.holds <- max 0 (c.holds - 1);
    maybe_drop_after_eof c

  let close_conn c =
    flush_out c.owner c;
    drop c.owner c

  let handle_readable t c =
    match Unix.read c.fd t.scratch 0 (Bytes.length t.scratch) with
    | 0 ->
        c.eof <- true;
        maybe_drop_after_eof c
    | n ->
        c.last_activity <- Unix.gettimeofday ();
        Framing.feed c.framing t.scratch 0 n;
        let rec dispatch () =
          if not c.closed then
            match Framing.next_line c.framing with
            | Some line ->
                c.on_line c line;
                dispatch ()
            | None -> ()
        in
        dispatch ()
    | exception
        Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
      ->
        ()
    | exception (Unix.Unix_error _ | Sys_error _) ->
        (* peer reset mid-request: any in-flight work finishes and its
           delivery is dropped by the closed flag *)
        drop t c

  let handle_accept (lfd, on_accept) =
    let continue = ref true in
    while !continue do
      match Unix.accept ~cloexec:true lfd with
      | fd, _ -> on_accept fd
      | exception
          Unix.Unix_error
            ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR | Unix.ECONNABORTED), _, _)
        ->
          continue := false
      | exception Unix.Unix_error _ -> continue := false
    done

  let quiescent t =
    Hashtbl.length t.conns = 0
    || Hashtbl.fold
         (fun _ c acc -> acc && c.holds = 0 && c.out_bytes = 0)
         t.conns true

  let run t ?tick ?idle_timeout ?(drain_grace = 5.0) ~stop () =
    let draining = ref false in
    let drain_deadline = ref infinity in
    let finished = ref false in
    while not !finished do
      drain_posted t;
      if stop () && not !draining then begin
        draining := true;
        drain_deadline := Unix.gettimeofday () +. drain_grace;
        stop_accepting t
      end;
      if !draining && (quiescent t || Unix.gettimeofday () > !drain_deadline)
      then begin
        let all = Hashtbl.fold (fun _ c acc -> c :: acc) t.conns [] in
        List.iter
          (fun c ->
            flush_out t c;
            drop t c)
          all;
        finished := true
      end
      else begin
        let reads = ref [ t.wake_r ] in
        let writes = ref [] in
        if not !draining then
          List.iter (fun (fd, _) -> reads := fd :: !reads) t.listeners;
        Hashtbl.iter
          (fun fd c ->
            if not c.eof then reads := fd :: !reads;
            if c.out_bytes > 0 then writes := fd :: !writes)
          t.conns;
        let timeout = 0.1 in
        (match Unix.select !reads !writes [] timeout with
        | rs, ws, _ ->
            List.iter
              (fun fd ->
                match Hashtbl.find_opt t.conns fd with
                | Some c -> flush_out t c
                | None -> ())
              ws;
            List.iter
              (fun fd ->
                if fd = t.wake_r then drain_posted t
                else
                  match Hashtbl.find_opt t.conns fd with
                  | Some c -> handle_readable t c
                  | None -> (
                      match List.assoc_opt fd t.listeners with
                      | Some on_accept -> handle_accept (fd, on_accept)
                      | None -> ()))
              rs
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
        | exception Unix.Unix_error (Unix.EBADF, _, _) ->
            (* a descriptor went away under us (e.g. the shared listener
               was closed by the coordinator): prune and carry on *)
            t.listeners <-
              List.filter
                (fun (fd, _) ->
                  match Unix.fstat fd with
                  | _ -> true
                  | exception Unix.Unix_error _ -> false)
                t.listeners);
        (* idle reaping *)
        (match idle_timeout with
        | Some limit when limit > 0. ->
            let now = Unix.gettimeofday () in
            let victims =
              Hashtbl.fold
                (fun _ c acc ->
                  if
                    c.holds = 0 && c.out_bytes = 0
                    && now -. c.last_activity > limit
                  then c :: acc
                  else acc)
                t.conns []
            in
            List.iter (drop t) victims
        | _ -> ());
        match tick with Some f -> f () | None -> ()
      end
    done
end
