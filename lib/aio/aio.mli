(** A minimal readiness-driven I/O core for the service front end.

    Two pieces:

    - {!Framing} — an incremental newline-delimited framer. Bytes arrive
      in arbitrary chunks (partial reads, merged writes); complete lines
      come out exactly as they were sent, however the chunk boundaries
      fell. Pure, allocation-proportional to the buffered bytes, and
      directly property-testable.

    - {!Loop} — a poll-style event loop over [Unix.select]: non-blocking
      accept on listener descriptors, per-connection read buffers feeding
      a {!Framing.t}, write queues that tolerate partial writes, idle
      timeouts, and a thread-safe {!Loop.post} wake-up channel so worker
      domains can hand completed responses back to the owning loop.

    The loop is deliberately single-threaded: one {!Loop.t} is owned by
    one domain, and several loops can share a listening socket (the
    kernel load-balances [accept]), which is how {!Service.Server} runs
    N listener shards. Nothing here knows about JSON or the service
    protocol. *)

module Framing : sig
  type t

  val create : unit -> t

  val feed : t -> Bytes.t -> int -> int -> unit
  (** [feed t buf off len] appends a chunk. *)

  val feed_string : t -> string -> unit

  val next_line : t -> string option
  (** The next complete line, without its ['\n'] terminator, or [None]
      when no full line is buffered. A ['\r'] immediately before the
      terminator is preserved — the framer is byte-exact. *)

  val buffered : t -> int
  (** Bytes fed but not yet returned by {!next_line} (including any
      trailing partial line). *)
end

module Loop : sig
  type t
  type conn

  val create : unit -> t
  (** Also ignores [SIGPIPE] process-wide (first call), so writes to a
      vanished peer surface as [EPIPE] on that connection only. *)

  val post : t -> (unit -> unit) -> unit
  (** Thread-safe: enqueue a closure to run on the loop's own thread at
      the next iteration, waking it if it is blocked in [select]. Every
      cross-domain interaction with a connection (sending a response,
      releasing a hold) must go through [post]. *)

  val add_listener : t -> Unix.file_descr -> on_accept:(Unix.file_descr -> unit) -> unit
  (** Watch a listening socket (which must be non-blocking). On
      readiness, accepted descriptors are handed to [on_accept] until
      the kernel reports no more pending connections. The loop never
      closes a listener — several loops may share one. *)

  val add_conn :
    t ->
    Unix.file_descr ->
    on_line:(conn -> string -> unit) ->
    ?on_close:(conn -> unit) ->
    unit ->
    conn
  (** Adopt a connected descriptor (made non-blocking). Complete NDJSON
      lines are delivered to [on_line] in arrival order; [on_close] runs
      exactly once when the connection is dropped for any reason. *)

  val send : conn -> string -> unit
  (** Queue bytes for writing (loop thread only; use {!post} from other
      domains). Writes happen opportunistically and on readiness;
      partial writes are resumed. Silently drops on a closed conn. *)

  val hold : conn -> unit
  (** Pin the connection: EOF and idle timeouts will not drop it while
      holds are outstanding (a request is in flight on a worker). *)

  val release : conn -> unit

  val close_conn : conn -> unit
  (** Flush what can be written immediately, then close and unregister. *)

  val conn_count : t -> int

  val stop_accepting : t -> unit
  (** Drop all listeners from this loop's interest set (their
      descriptors are left open — the owner closes them). *)

  val run :
    t ->
    ?tick:(unit -> unit) ->
    ?idle_timeout:float ->
    ?drain_grace:float ->
    stop:(unit -> bool) ->
    unit ->
    unit
  (** Drive the loop. Each iteration: run posted closures, poll
      readiness (bounded at 100 ms so [stop] and [tick] stay
      responsive), dispatch, drop connections idle longer than
      [idle_timeout] (seconds; only when no holds and no pending
      output), and call [tick].

      When [stop ()] first turns true the loop stops accepting and
      enters draining: existing connections keep running until every
      one is quiescent (no holds, no buffered output) or [drain_grace]
      seconds (default 5) elapse, whichever is first; remaining
      connections are then closed and [run] returns. *)
end
