(* Identity of a coherence-protocol backend. A plain enum so machine
   configurations, cache keys and digests can carry "which protocol" as
   one comparable, marshalable value. *)

type t = Dir1sw | Sisd | Commute

let all = [ Dir1sw; Sisd; Commute ]
let default = Dir1sw

let to_string = function
  | Dir1sw -> "dir1sw"
  | Sisd -> "sisd"
  | Commute -> "commute"

let of_string = function
  | "dir1sw" -> Some Dir1sw
  | "sisd" -> Some Sisd
  | "commute" -> Some Commute
  | _ -> None

(* Stable small ints for digests and packed keys. *)
let to_int = function Dir1sw -> 0 | Sisd -> 1 | Commute -> 2

let describe = function
  | Dir1sw -> "Dir1SW directory protocol (Hill et al.)"
  | Sisd -> "self-invalidation / self-downgrade (SiSd)"
  | Commute -> "Dir1SW with privatized commutative updates (Coup-style)"

let pp ppf t = Format.pp_print_string ppf (to_string t)
