(** Identity of a coherence-protocol backend.

    The simulator's memory system ({!Protocol}) implements several
    protocols behind one seam; this enum names them wherever a
    configuration, cache key or digest needs to say which one. *)

type t =
  | Dir1sw  (** the paper's Dir1SW directory protocol *)
  | Sisd  (** self-invalidation / self-downgrade *)
  | Commute  (** Dir1SW plus privatized commutative RMW updates *)

val all : t list
(** Every backend, in presentation order ([Dir1sw] first). *)

val default : t
(** [Dir1sw] — the protocol the paper evaluates. *)

val to_string : t -> string
(** Lower-case command-line / wire spelling: ["dir1sw"], ["sisd"],
    ["commute"]. *)

val of_string : string -> t option

val to_int : t -> int
(** Stable small integer for digests and packed keys. *)

val describe : t -> string
(** One-line human description. *)

val pp : Format.formatter -> t -> unit
