(** Dir1SW plus privatized commutative updates (Coup-style) as a
    first-class {!Protocol_intf.PROTOCOL} instance; shares
    {!Protocol.t}.

    Accesses the classifier proves to be commutative read-modify-writes
    ([A[i] = A[i] + e]) route through {!Protocol.read_rmw_p} /
    {!Protocol.write_rmw_p} and accumulate into a per-node privatized
    copy — no misses, no invalidations, one grant message per
    privatization. Privatized copies merge deterministically at the
    next plain access to the block or at the epoch boundary. All other
    traffic is bit-identical to Dir1SW. *)

include
  Protocol_intf.PROTOCOL
    with type t = Protocol.t
     and type snapshot = Protocol.snapshot
