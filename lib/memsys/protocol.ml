type miss_kind = Read_miss | Write_miss | Write_fault

type outcome = { latency : int; miss : miss_kind option }

(* Packed outcome: [(latency lsl 2) lor kind] with kind 0 = hit/directive,
   1 = read miss, 2 = write miss, 3 = write fault. Latencies are small
   positive cycle counts, so the shift never overflows. *)
let no_miss = 0
let read_miss = 1
let write_miss = 2
let write_fault = 3

let pack ~latency ~kind = (latency lsl 2) lor kind
let packed_latency p = p lsr 2
let packed_kind p = p land 3

let outcome_of_packed p =
  let miss =
    match p land 3 with
    | 0 -> None
    | 1 -> Some Read_miss
    | 2 -> Some Write_miss
    | _ -> Some Write_fault
  in
  { latency = p lsr 2; miss }

type t = {
  backend : Protocol_id.t;
      (* which protocol's transition rules this machine runs; the packed
         access path, snapshot/restore, shard views and digests are shared
         across backends, with the behavioural differences dispatched at
         the transition level *)
  n_nodes : int;
  blk_size : int;
  blk_shift : int;  (* log2 block_size: addresses map to blocks by shift *)
  caches : Cache.t array;
  dir : Directory.t;
  cost : Network.costs;
  stat : Stats.t;
  pf_pending : (int, unit) Hashtbl.t;
      (* key [blk * n_nodes + node] with an outstanding prefetch; packed
         into one int so probing never allocates a tuple key *)
  mutable pf_live : int;
      (* entries in [pf_pending]: lets the per-hit probe skip hashing
         entirely in runs that never issue a prefetch *)
  past_sharers : (int, int) Hashtbl.t;
      (* block -> bitmask of nodes that once held it and lost it; the
         recipient set of a KSR-1-style post-store *)
  mutable debug_checks : bool;
      (* run [check_invariants] after every protocol transition; off by
         default so the hot path pays one predictable branch *)
  co : (int, int) Hashtbl.t;
      (* SiSd only: block -> bitmask of nodes holding it checked out; a
         checked-out line survives the epoch-boundary self-invalidation
         sweep. Overlay discipline on shard views: reads fall back to the
         parent, writes replace locally (a zero mask is stored, not
         removed, so it shadows the parent's entry until merge). *)
  cm : (int, int) Hashtbl.t;
      (* Commute only: block -> bitmask of nodes holding a privatized
         update-only copy of the block's accumulators; merged on any
         plain access and at every epoch boundary. Same overlay
         discipline as [co]. *)
  pf_del : (int, unit) Hashtbl.t;
      (* shard views only: tombstones for parent pf_pending entries *)
  parent : t option;
      (* [Some base] marks a shard view: [dir] is an overlay of the
         base's directory, [stat]/[pf_pending]/[past_sharers] are
         private deltas, and [caches] is the base's own array (a shard
         only ever touches the caches of the nodes it owns). The base
         must stay frozen while views are live; [merge_shard] folds a
         view back in. *)
}

exception Invariant_violation of string

(* ---- observability seams ----

   Per-transition counters in the global registry; every update is
   guarded by [Obs.enabled] so the [--obs=off] hot path pays exactly one
   predictable branch per transition and allocates nothing. *)
let obs_reads = Obs.Registry.counter "protocol.reads"
let obs_read_misses = Obs.Registry.counter "protocol.read_misses"
let obs_writes = Obs.Registry.counter "protocol.writes"
let obs_write_misses = Obs.Registry.counter "protocol.write_misses"
let obs_write_faults = Obs.Registry.counter "protocol.write_faults"
let obs_directives = Obs.Registry.counter "protocol.directives"
let obs_dir_occupancy = Obs.Registry.gauge "protocol.dir_occupancy"

let create_u ?(backend = Protocol_id.Dir1sw) ~nodes ~cache_bytes ~assoc
    ~block_size ~costs () =
  let blk_shift =
    let rec log2 n acc = if n <= 1 then acc else log2 (n lsr 1) (acc + 1) in
    log2 block_size 0
  in
  {
    backend;
    n_nodes = nodes;
    blk_size = block_size;
    blk_shift;
    caches =
      Array.init nodes (fun _ ->
          Cache.create ~size_bytes:cache_bytes ~assoc ~block_size);
    dir = Directory.create ~nodes;
    cost = costs;
    stat = Stats.create ~nodes;
    pf_pending = Hashtbl.create 256;
    pf_live = 0;
    past_sharers = Hashtbl.create 256;
    debug_checks = false;
    co = Hashtbl.create 16;
    cm = Hashtbl.create 16;
    pf_del = Hashtbl.create 16;
    parent = None;
  }

let create_b ~backend ~nodes ~cache_bytes ~assoc ~block_size ~costs =
  Obs.span "protocol.create" (fun () ->
      create_u ~backend ~nodes ~cache_bytes ~assoc ~block_size ~costs ())

let create ~nodes ~cache_bytes ~assoc ~block_size ~costs =
  create_b ~backend:Protocol_id.default ~nodes ~cache_bytes ~assoc ~block_size
    ~costs

let backend t = t.backend
let nodes t = t.n_nodes
let block_size t = t.blk_size
let stats t = t.stat
let directory t = t.dir
let cache t ~node = t.caches.(node)
let costs t = t.cost
(* [Block.of_addr] without the per-call division (block sizes are
   validated powers of two at [create]) *)
let block_of_addr t addr =
  if addr < 0 then invalid_arg "Block.of_addr: negative address";
  addr lsr t.blk_shift

let pf_key t ~node ~blk = (blk * t.n_nodes) + node

(* ---- per-backend invariant oracle (debug hook) ----

   Cross-checks directory state against every per-node cache after a
   transition. The invariants depend on the backend:

   Dir1SW (and Commute, whose non-privatized state is Dir1SW):
   - directory entries are structurally well formed ([Directory.validate]);
   - an [Exclusive owner] entry means the owner caches the block in the
     Exclusive state and no other node caches it at all (single writer);
   - every cached copy of a [Shared] block is in the Shared state and is
     listed in the sharer mask (stale *extra* sharers are legal — Shared
     replacement is silent — but a cached-yet-unlisted sharer is not);
   - a cached Exclusive line is always the directory's registered owner,
     and a cached Shared line is always a registered sharer (no cached
     copy of an Idle block).

   SiSd tracks no sharers at all and only remembers the last writer:
   - directory entries are [Idle] or [Exclusive]; a [Shared] entry means
     a Dir1SW transition leaked in;
   - an [Exclusive owner] entry means the owner still caches the block
     in the Exclusive state (stale copies at *other* nodes are legal —
     that is the protocol's whole premise — and so are Exclusive lines
     whose ownership was since taken by a later writer).

   Commute additionally requires every privatized-copy mask to name real
   nodes; SiSd requires the same of the checked-out masks.

   All backends share the pending-prefetch consistency checks: the live
   counter matches the table, keys decode to real nodes, and every
   pending transaction still has its line resident — a pending entry
   whose line is gone is a stuck transition that [forget_prefetch]
   should have cleared. *)
let check_invariants t =
  let err = ref None in
  let fail fmt = Printf.ksprintf (fun s -> if !err = None then err := Some s) fmt in
  (match Directory.validate t.dir with
  | Some (blk, reason) -> fail "directory entry for block %d: %s" blk reason
  | None -> ());
  (match t.backend with
  | Protocol_id.Dir1sw | Protocol_id.Commute ->
      List.iter
        (fun (blk, st) ->
          match st with
          | Directory.Idle -> ()
          | Directory.Exclusive owner ->
              (match Cache.find t.caches.(owner) blk with
              | Some l when l.Cache.state = Cache.Exclusive -> ()
              | Some _ ->
                  fail "block %d: directory owner %d holds a non-exclusive copy"
                    blk owner
              | None ->
                  fail "block %d: directory owner %d holds no copy" blk owner);
              for node = 0 to t.n_nodes - 1 do
                if node <> owner && Cache.find t.caches.(node) blk <> None then
                  fail "block %d: exclusive at %d but also cached at %d" blk
                    owner node
              done
          | Directory.Shared mask ->
              for node = 0 to t.n_nodes - 1 do
                match Cache.find t.caches.(node) blk with
                | None -> ()
                | Some l ->
                    if l.Cache.state <> Cache.Shared then
                      fail
                        "block %d: cached exclusive at %d under a Shared entry"
                        blk node
                    else if mask land (1 lsl node) = 0 then
                      fail "block %d: node %d caches a copy but is not a sharer"
                        blk node
              done)
        (Directory.entries t.dir);
      for node = 0 to t.n_nodes - 1 do
        Cache.iter t.caches.(node) (fun l ->
            let blk = l.Cache.block in
            match (l.Cache.state, Directory.get t.dir blk) with
            | Cache.Exclusive, Directory.Exclusive owner when owner = node -> ()
            | Cache.Exclusive, _ ->
                fail "block %d: node %d caches exclusive without directory \
                      ownership" blk node
            | Cache.Shared, Directory.Shared mask
              when mask land (1 lsl node) <> 0 ->
                ()
            | Cache.Shared, _ ->
                fail "block %d: node %d caches a shared copy the directory \
                      does not list" blk node)
      done
  | Protocol_id.Sisd ->
      List.iter
        (fun (blk, st) ->
          match st with
          | Directory.Idle -> ()
          | Directory.Shared _ ->
              fail "block %d: SiSd directory must not track sharers" blk
          | Directory.Exclusive owner -> (
              match Cache.find t.caches.(owner) blk with
              | Some l when l.Cache.state = Cache.Exclusive -> ()
              | Some _ ->
                  fail "block %d: SiSd last writer %d holds a non-exclusive \
                        copy" blk owner
              | None -> fail "block %d: SiSd last writer %d holds no copy" blk
                          owner))
        (Directory.entries t.dir));
  let mask_check what tbl =
    let node_mask = (1 lsl t.n_nodes) - 1 in
    Hashtbl.iter
      (fun blk mask ->
        if mask land lnot node_mask <> 0 then
          fail "block %d: %s mask %#x names nodes out of range" blk what mask)
      tbl
  in
  mask_check "checked-out" t.co;
  mask_check "privatized-copy" t.cm;
  if Hashtbl.length t.pf_pending <> t.pf_live then
    fail "pending-prefetch counter %d disagrees with table size %d" t.pf_live
      (Hashtbl.length t.pf_pending);
  Hashtbl.iter
    (fun key () ->
      let node = key mod t.n_nodes and blk = key / t.n_nodes in
      if node < 0 || node >= t.n_nodes then
        fail "pending prefetch names node %d out of range" node
      else if Cache.probe t.caches.(node) blk < 0 then
        fail "stuck pending prefetch: block %d no longer resident at node %d"
          blk node)
    t.pf_pending;
  !err

let set_debug_checks t on = t.debug_checks <- on
let debug_checks t = t.debug_checks

(* Every public transition funnels its result through [guard]. *)
let guard t v =
  if t.debug_checks then begin
    match check_invariants t with
    | None -> ()
    | Some msg -> raise (Invariant_violation msg)
  end;
  v

(* ---- overlay-aware lookups ----
   On a shard view the pending-prefetch set is (parent minus [pf_del])
   plus the view's own [pf_pending], and a block's past-sharer mask is
   the view-local mask if written, else the parent's. On a base protocol
   ([parent = None]) these collapse to the plain table probes. *)

let ps_find t blk =
  match Hashtbl.find_opt t.past_sharers blk with
  | Some mask -> mask
  | None -> (
      match t.parent with
      | Some p -> Option.value ~default:0 (Hashtbl.find_opt p.past_sharers blk)
      | None -> 0)

(* Per-block node masks with view-overlay semantics: a view's write
   replaces locally (zero included, shadowing the parent until merge); a
   base write removes zero masks to keep iteration and digests clean. *)
let co_find t blk =
  match Hashtbl.find_opt t.co blk with
  | Some mask -> mask
  | None -> (
      match t.parent with
      | Some p -> Option.value ~default:0 (Hashtbl.find_opt p.co blk)
      | None -> 0)

let co_set t blk mask =
  if mask = 0 && t.parent = None then Hashtbl.remove t.co blk
  else Hashtbl.replace t.co blk mask

let cm_find t blk =
  match Hashtbl.find_opt t.cm blk with
  | Some mask -> mask
  | None -> (
      match t.parent with
      | Some p -> Option.value ~default:0 (Hashtbl.find_opt p.cm blk)
      | None -> 0)

let cm_set t blk mask =
  if mask = 0 && t.parent = None then Hashtbl.remove t.cm blk
  else Hashtbl.replace t.cm blk mask

let pf_mem t key =
  Hashtbl.mem t.pf_pending key
  ||
  match t.parent with
  | Some p -> Hashtbl.mem p.pf_pending key && not (Hashtbl.mem t.pf_del key)
  | None -> false

(* Remove [key] from the view of the pending set; true if it was there. *)
let pf_remove t key =
  if Hashtbl.mem t.pf_pending key then begin
    Hashtbl.remove t.pf_pending key;
    true
  end
  else
    match t.parent with
    | Some p when Hashtbl.mem p.pf_pending key && not (Hashtbl.mem t.pf_del key)
      ->
        Hashtbl.add t.pf_del key ();
        true
    | _ -> false

let forget_prefetch t ~node ~blk =
  if t.pf_live > 0 then begin
    let key = pf_key t ~node ~blk in
    if pf_remove t key then t.pf_live <- t.pf_live - 1
  end

let note_past_sharer t ~node ~blk =
  Hashtbl.replace t.past_sharers blk (ps_find t blk lor (1 lsl node))

(* Account a prefetched block that is touched for the first time. *)
let note_prefetch_hit t ~node ~blk =
  if t.pf_live > 0 then begin
    let key = pf_key t ~node ~blk in
    if pf_remove t key then begin
      t.pf_live <- t.pf_live - 1;
      t.stat.useful_prefetches <- t.stat.useful_prefetches + 1
    end
  end

(* Install a block in [node]'s cache, handling the victim's protocol
   actions. A Shared victim is dropped silently (stale directory entry); an
   Exclusive victim releases the directory and writes back if dirty. *)
let install t ~node ~blk ~state ~dirty ~ready_at =
  match Cache.insert t.caches.(node) ~block:blk ~state ~dirty ~ready_at with
  | None -> ()
  | Some (victim, vstate, vdirty) ->
      t.stat.evictions <- t.stat.evictions + 1;
      forget_prefetch t ~node ~blk:victim;
      note_past_sharer t ~node ~blk:victim;
      (match t.backend with
      | Protocol_id.Sisd ->
          (* Capacity eviction breaks an outstanding check-out. *)
          let m = co_find t victim in
          if m land (1 lsl node) <> 0 then
            co_set t victim (m land lnot (1 lsl node))
      | _ -> ());
      (match vstate with
      | Cache.Exclusive ->
          if vdirty then begin
            t.stat.writebacks <- t.stat.writebacks + 1;
            t.stat.messages <- t.stat.messages + 1
          end;
          (match t.backend with
          | Protocol_id.Sisd -> (
              (* Stale Exclusive copies are legal under SiSd: only the
                 registered last writer releases the entry. *)
              match Directory.get t.dir victim with
              | Directory.Exclusive owner when owner = node ->
                  Directory.set t.dir victim Directory.Idle
              | _ -> ())
          | _ -> Directory.set t.dir victim Directory.Idle)
      | Cache.Shared -> ())

(* Remove [blk] from every cache in [mask] except [node]; returns the
   number of invalidation messages sent (one per directory sharer, stale or
   not, since Dir1SW software trusts its sharer list). *)
let invalidate_sharers t ~blk ~except:node mask =
  let count = ref 0 in
  for victim = 0 to t.n_nodes - 1 do
    if victim <> node && mask land (1 lsl victim) <> 0 then begin
      incr count;
      forget_prefetch t ~node:victim ~blk;
      if Cache.remove t.caches.(victim) blk <> None then
        note_past_sharer t ~node:victim ~blk
    end
  done;
  t.stat.invalidations <- t.stat.invalidations + !count;
  t.stat.messages <- t.stat.messages + (2 * !count);
  !count

(* Take the block away from its exclusive [owner] (3-hop transaction);
   returns true if a dirty copy was written back. *)
let recall_exclusive t ~blk ~owner ~downgrade_to_shared =
  forget_prefetch t ~node:owner ~blk;
  let dirty =
    let i = Cache.probe t.caches.(owner) blk in
    if i < 0 then false
    else begin
      let line = Cache.line_at t.caches.(owner) i in
      let d = line.Cache.dirty in
      if downgrade_to_shared then begin
        line.Cache.state <- Cache.Shared;
        line.Cache.dirty <- false
      end
      else begin
        ignore (Cache.remove t.caches.(owner) blk);
        note_past_sharer t ~node:owner ~blk
      end;
      d
    end
  in
  if dirty then t.stat.writebacks <- t.stat.writebacks + 1;
  t.stat.messages <- t.stat.messages + 3;
  dirty

(* Residual stall if the line's data has not yet arrived (prefetch). *)
let residual (line : Cache.line) ~now =
  let r = line.Cache.ready_at - now in
  if r > 0 then r else 0

(* Fetch a shared copy of [blk] into [node]'s cache; returns latency. *)
let fetch_shared t ~node ~blk ~now =
  match Directory.get t.dir blk with
  | Directory.Idle ->
      Directory.set t.dir blk (Directory.Shared (1 lsl node));
      t.stat.messages <- t.stat.messages + 2;
      install t ~node ~blk ~state:Cache.Shared ~dirty:false ~ready_at:now;
      t.cost.Network.miss_2hop
  | Directory.Shared mask ->
      Directory.set t.dir blk (Directory.Shared (mask lor (1 lsl node)));
      t.stat.messages <- t.stat.messages + 2;
      install t ~node ~blk ~state:Cache.Shared ~dirty:false ~ready_at:now;
      t.cost.Network.miss_2hop
  | Directory.Exclusive owner when owner = node ->
      (* Cannot normally happen: exclusive lines are never dropped
         silently. Repair defensively. *)
      Directory.set t.dir blk (Directory.Shared (1 lsl node));
      install t ~node ~blk ~state:Cache.Shared ~dirty:false ~ready_at:now;
      t.cost.Network.miss_2hop
  | Directory.Exclusive owner ->
      ignore (recall_exclusive t ~blk ~owner ~downgrade_to_shared:true);
      Directory.set t.dir blk
        (Directory.Shared ((1 lsl owner) lor (1 lsl node)));
      install t ~node ~blk ~state:Cache.Shared ~dirty:false ~ready_at:now;
      t.cost.Network.miss_3hop

(* Fetch an exclusive copy of [blk] into [node]'s cache; returns latency.
   [dirty] marks the line modified immediately (write-miss path). *)
let fetch_exclusive t ~node ~blk ~now ~dirty =
  match Directory.get t.dir blk with
  | Directory.Idle ->
      Directory.set t.dir blk (Directory.Exclusive node);
      t.stat.messages <- t.stat.messages + 2;
      install t ~node ~blk ~state:Cache.Exclusive ~dirty ~ready_at:now;
      t.cost.Network.miss_2hop
  | Directory.Shared mask ->
      (* Invalidate every listed sharer: in hardware when the directory
         can name them all, through the software trap otherwise. *)
      let n_others =
        Directory.popcount (mask land lnot (1 lsl node))
      in
      let in_hw = n_others <= t.cost.Network.dir_hw_sharers in
      if not in_hw then t.stat.sw_traps <- t.stat.sw_traps + 1;
      let n_inval = invalidate_sharers t ~blk ~except:node mask in
      Directory.set t.dir blk (Directory.Exclusive node);
      install t ~node ~blk ~state:Cache.Exclusive ~dirty ~ready_at:now;
      if in_hw then
        t.cost.Network.miss_2hop + (n_inval * t.cost.Network.inval_per_sharer)
      else t.cost.Network.sw_trap + (n_inval * t.cost.Network.inval_per_sharer)
  | Directory.Exclusive owner when owner = node ->
      Directory.set t.dir blk (Directory.Exclusive node);
      install t ~node ~blk ~state:Cache.Exclusive ~dirty ~ready_at:now;
      t.cost.Network.miss_2hop
  | Directory.Exclusive owner ->
      ignore (recall_exclusive t ~blk ~owner ~downgrade_to_shared:false);
      Directory.set t.dir blk (Directory.Exclusive node);
      install t ~node ~blk ~state:Cache.Exclusive ~dirty ~ready_at:now;
      t.cost.Network.miss_3hop

(* Shared upgrade of a resident line (write fault / eager check-out):
   invalidate the other sharers and claim the directory entry. *)
let upgrade_resident t ~node ~blk =
  match Directory.get t.dir blk with
  | Directory.Shared mask ->
      let others = mask land lnot (1 lsl node) in
      if others = 0 then begin
        Directory.set t.dir blk (Directory.Exclusive node);
        t.stat.messages <- t.stat.messages + 2;
        t.cost.Network.upgrade
      end
      else begin
        let in_hw =
          Directory.popcount others <= t.cost.Network.dir_hw_sharers
        in
        if not in_hw then t.stat.sw_traps <- t.stat.sw_traps + 1;
        let n_inval = invalidate_sharers t ~blk ~except:node others in
        Directory.set t.dir blk (Directory.Exclusive node);
        (if in_hw then t.cost.Network.upgrade
         else t.cost.Network.sw_trap)
        + (n_inval * t.cost.Network.inval_per_sharer)
      end
  | Directory.Idle | Directory.Exclusive _ ->
      (* Defensive: directory lost track of us; redo as exclusive
         fetch. *)
      Directory.set t.dir blk (Directory.Exclusive node);
      t.stat.messages <- t.stat.messages + 2;
      t.cost.Network.upgrade

(* ---- SiSd transitions ----

   Self-invalidation / self-downgrade keeps no sharer list and sends no
   invalidations or recalls: every miss is a flat 2-hop fetch from the
   home node, reads are allowed to return stale data until the next
   epoch boundary, and the directory entry only remembers the last
   writer (so writebacks have somewhere to release). The coherence work
   Dir1SW does eagerly happens lazily instead: check-ins become local
   self-downgrades, and {!epoch_boundary} self-invalidates every line
   not currently checked out. *)

let sisd_fetch_shared t ~node ~blk ~now =
  t.stat.messages <- t.stat.messages + 2;
  install t ~node ~blk ~state:Cache.Shared ~dirty:false ~ready_at:now;
  t.cost.Network.miss_2hop

let sisd_fetch_exclusive t ~node ~blk ~now ~dirty =
  t.stat.messages <- t.stat.messages + 2;
  install t ~node ~blk ~state:Cache.Exclusive ~dirty ~ready_at:now;
  Directory.set t.dir blk (Directory.Exclusive node);
  t.cost.Network.miss_2hop

(* Write back and downgrade [node]'s copy in place; the self-downgrade
   both check-in and post-store reduce to under SiSd. *)
let sisd_self_downgrade t ~node ~blk =
  let i = Cache.probe t.caches.(node) blk in
  if i >= 0 then begin
    let line = Cache.line_at t.caches.(node) i in
    if line.Cache.state = Cache.Exclusive then begin
      if line.Cache.dirty then begin
        t.stat.writebacks <- t.stat.writebacks + 1;
        t.stat.messages <- t.stat.messages + 1
      end;
      line.Cache.state <- Cache.Shared;
      line.Cache.dirty <- false;
      match Directory.get t.dir blk with
      | Directory.Exclusive owner when owner = node ->
          Directory.set t.dir blk Directory.Idle
      | _ -> ()
    end
  end

(* Backend-dispatching fetch paths (miss handling only; hits never reach
   these). Commute's non-privatized traffic is exactly Dir1SW. *)
let fetch_shared_b t ~node ~blk ~now =
  match t.backend with
  | Protocol_id.Sisd -> sisd_fetch_shared t ~node ~blk ~now
  | _ -> fetch_shared t ~node ~blk ~now

let fetch_exclusive_b t ~node ~blk ~now ~dirty =
  match t.backend with
  | Protocol_id.Sisd -> sisd_fetch_exclusive t ~node ~blk ~now ~dirty
  | _ -> fetch_exclusive t ~node ~blk ~now ~dirty

(* ---- Commute privatization ----

   Classifier-proven RMW accumulations take an update-only privatized
   copy per node (one permission-grant message, no data movement) and
   accumulate locally; a plain access to the block — or the epoch
   boundary — forces every holder to merge its accumulator back (one
   writeback plus a request/reply pair per holder). Merge costs are
   charged to the statistics only: the merge rides the barrier (or the
   plain access's own miss), not the simulated critical path, which
   keeps replayed latencies independent of merge order. *)

let commute_merge t blk mask =
  let count = Directory.popcount mask in
  t.stat.writebacks <- t.stat.writebacks + count;
  t.stat.messages <- t.stat.messages + (2 * count);
  cm_set t blk 0

(* Merge-before-plain-access seam: every non-RMW entry point runs this
   first. One predictable branch for the other backends. *)
let commute_plain t blk =
  match t.backend with
  | Protocol_id.Commute ->
      let mask = cm_find t blk in
      if mask <> 0 then commute_merge t blk mask
  | _ -> ()

let commute_rmw_read t ~node ~addr ~now:_ =
  let blk = block_of_addr t addr in
  t.stat.shared_reads <- t.stat.shared_reads + 1;
  t.stat.read_hits <- t.stat.read_hits + 1;
  let mask = cm_find t blk in
  let bit = 1 lsl node in
  if mask land bit = 0 then begin
    (* First accumulation since the last merge: privatize. *)
    t.stat.messages <- t.stat.messages + 1;
    cm_set t blk (mask lor bit)
  end;
  pack ~latency:t.cost.Network.cache_hit ~kind:no_miss

let commute_rmw_write t ~node ~addr ~now:_ =
  let blk = block_of_addr t addr in
  t.stat.shared_writes <- t.stat.shared_writes + 1;
  t.stat.write_hits <- t.stat.write_hits + 1;
  let mask = cm_find t blk in
  let bit = 1 lsl node in
  if mask land bit = 0 then begin
    (* Defensive: a lone rmw-write (the paired read privatizes first on
       every engine path) still takes the privatized copy. *)
    t.stat.messages <- t.stat.messages + 1;
    cm_set t blk (mask lor bit)
  end;
  pack ~latency:t.cost.Network.cache_hit ~kind:no_miss

(* ---- the hot path: packed-int entry points ----
   Cache hits run option-free (index probe, in-place LRU touch) and skip
   all directory bookkeeping; only the returned int is constructed. *)

let read_p_u t ~node ~addr ~now =
  let blk = block_of_addr t addr in
  commute_plain t blk;
  t.stat.shared_reads <- t.stat.shared_reads + 1;
  let c = t.caches.(node) in
  let i = Cache.probe c blk in
  if i >= 0 then begin
    note_prefetch_hit t ~node ~blk;
    Cache.touch_idx c i;
    t.stat.read_hits <- t.stat.read_hits + 1;
    let line = Cache.line_at c i in
    pack ~latency:(t.cost.Network.cache_hit + residual line ~now) ~kind:no_miss
  end
  else begin
    t.stat.read_misses <- t.stat.read_misses + 1;
    let latency = fetch_shared_b t ~node ~blk ~now in
    pack ~latency ~kind:read_miss
  end

let write_p_u t ~node ~addr ~now =
  let blk = block_of_addr t addr in
  commute_plain t blk;
  t.stat.shared_writes <- t.stat.shared_writes + 1;
  let c = t.caches.(node) in
  let i = Cache.probe c blk in
  if i >= 0 then begin
    let line = Cache.line_at c i in
    if line.Cache.state = Cache.Exclusive then begin
      note_prefetch_hit t ~node ~blk;
      Cache.touch_idx c i;
      line.Cache.dirty <- true;
      t.stat.write_hits <- t.stat.write_hits + 1;
      pack ~latency:(t.cost.Network.cache_hit + residual line ~now)
        ~kind:no_miss
    end
    else begin
      match t.backend with
      | Protocol_id.Sisd ->
          (* SiSd has no write faults: a store to a Shared copy writes
             locally with no permission traffic; the directory just
             remembers the new last writer. *)
          note_prefetch_hit t ~node ~blk;
          Cache.touch_idx c i;
          line.Cache.state <- Cache.Exclusive;
          line.Cache.dirty <- true;
          Directory.set t.dir blk (Directory.Exclusive node);
          t.stat.write_hits <- t.stat.write_hits + 1;
          pack ~latency:(t.cost.Network.cache_hit + residual line ~now)
            ~kind:no_miss
      | _ ->
          (* Write fault: upgrade the Shared copy. *)
          note_prefetch_hit t ~node ~blk;
          Cache.touch_idx c i;
          t.stat.write_faults <- t.stat.write_faults + 1;
          let latency = upgrade_resident t ~node ~blk in
          line.Cache.state <- Cache.Exclusive;
          line.Cache.dirty <- true;
          pack ~latency:(latency + residual line ~now) ~kind:write_fault
    end
  end
  else begin
    t.stat.write_misses <- t.stat.write_misses + 1;
    let latency = fetch_exclusive_b t ~node ~blk ~now ~dirty:true in
    pack ~latency ~kind:write_miss
  end

let read_p t ~node ~addr ~now =
  let p = guard t (read_p_u t ~node ~addr ~now) in
  if Obs.enabled () then begin
    Obs.Counter.incr obs_reads;
    if packed_kind p <> no_miss then Obs.Counter.incr obs_read_misses
  end;
  p

let write_p t ~node ~addr ~now =
  let p = guard t (write_p_u t ~node ~addr ~now) in
  if Obs.enabled () then begin
    Obs.Counter.incr obs_writes;
    let k = packed_kind p in
    if k = write_miss then Obs.Counter.incr obs_write_misses
    else if k = write_fault then Obs.Counter.incr obs_write_faults
  end;
  p

(* RMW halves of a classifier-recognized commutative accumulation
   (A[i] = A[i] + e). Everywhere except the Commute backend these are
   the plain load and store — bit-identical costs, counters and trace
   kinds — so engines can route recognized accumulations through them
   unconditionally. Under Commute they privatize instead of fetching. *)

let read_rmw_p_u t ~node ~addr ~now =
  match t.backend with
  | Protocol_id.Commute -> commute_rmw_read t ~node ~addr ~now
  | _ -> read_p_u t ~node ~addr ~now

let write_rmw_p_u t ~node ~addr ~now =
  match t.backend with
  | Protocol_id.Commute -> commute_rmw_write t ~node ~addr ~now
  | _ -> write_p_u t ~node ~addr ~now

let read_rmw_p t ~node ~addr ~now =
  let p = guard t (read_rmw_p_u t ~node ~addr ~now) in
  if Obs.enabled () then begin
    Obs.Counter.incr obs_reads;
    if packed_kind p <> no_miss then Obs.Counter.incr obs_read_misses
  end;
  p

let write_rmw_p t ~node ~addr ~now =
  let p = guard t (write_rmw_p_u t ~node ~addr ~now) in
  if Obs.enabled () then begin
    Obs.Counter.incr obs_writes;
    let k = packed_kind p in
    if k = write_miss then Obs.Counter.incr obs_write_misses
    else if k = write_fault then Obs.Counter.incr obs_write_faults
  end;
  p

(* ---- CICO directives: latency-returning entry points (never misses) *)

(* SiSd: a check-out pins the line across epoch boundaries (it is the
   programmer's declaration of intended use, so the self-invalidation
   sweep must not drop it). *)
let sisd_note_checkout t ~node ~blk =
  if t.backend = Protocol_id.Sisd then
    co_set t blk (co_find t blk lor (1 lsl node))

let check_out_x_lat_u t ~node ~addr ~now =
  let blk = block_of_addr t addr in
  commute_plain t blk;
  t.stat.check_outs_x <- t.stat.check_outs_x + 1;
  sisd_note_checkout t ~node ~blk;
  let overhead = t.cost.Network.check_out_overhead in
  let c = t.caches.(node) in
  let i = Cache.probe c blk in
  if i >= 0 then begin
    let line = Cache.line_at c i in
    if line.Cache.state = Cache.Exclusive then begin
      Cache.touch_idx c i;
      overhead
    end
    else begin
      match t.backend with
      | Protocol_id.Sisd ->
          (* Local upgrade: SiSd asks nobody's permission to write. *)
          Cache.touch_idx c i;
          line.Cache.state <- Cache.Exclusive;
          Directory.set t.dir blk (Directory.Exclusive node);
          overhead
      | _ ->
          (* Upgrade now, before the read, avoiding the later write
             fault. *)
          Cache.touch_idx c i;
          let latency = upgrade_resident t ~node ~blk in
          line.Cache.state <- Cache.Exclusive;
          overhead + latency
    end
  end
  else begin
    let latency = fetch_exclusive_b t ~node ~blk ~now ~dirty:false in
    overhead + latency
  end

let check_out_x_lat t ~node ~addr ~now =
  if Obs.enabled () then Obs.Counter.incr obs_directives;
  guard t (check_out_x_lat_u t ~node ~addr ~now)

let check_out_s_lat_u t ~node ~addr ~now =
  let blk = block_of_addr t addr in
  commute_plain t blk;
  t.stat.check_outs_s <- t.stat.check_outs_s + 1;
  sisd_note_checkout t ~node ~blk;
  let overhead = t.cost.Network.check_out_overhead in
  let c = t.caches.(node) in
  let i = Cache.probe c blk in
  if i >= 0 then begin
    Cache.touch_idx c i;
    overhead
  end
  else begin
    let latency = fetch_shared_b t ~node ~blk ~now in
    overhead + latency
  end

let check_out_s_lat t ~node ~addr ~now =
  if Obs.enabled () then Obs.Counter.incr obs_directives;
  guard t (check_out_s_lat_u t ~node ~addr ~now)

let check_in_lat_u t ~node ~addr ~now:_ =
  let blk = block_of_addr t addr in
  commute_plain t blk;
  t.stat.check_ins <- t.stat.check_ins + 1;
  (match t.backend with
  | Protocol_id.Sisd ->
      (* Check-in is a self-downgrade: write the data back but keep a
         readable Shared copy (releasing the checked-out pin, so the
         next epoch boundary may self-invalidate it). *)
      let m = co_find t blk in
      if m land (1 lsl node) <> 0 then co_set t blk (m land lnot (1 lsl node));
      let i = Cache.probe t.caches.(node) blk in
      if i >= 0
         && (Cache.line_at t.caches.(node) i).Cache.state = Cache.Exclusive
      then t.stat.check_in_flushes <- t.stat.check_in_flushes + 1;
      sisd_self_downgrade t ~node ~blk
  | _ -> (
      match Cache.remove t.caches.(node) blk with
      | None -> ()
      | Some (state, dirty) ->
          t.stat.check_in_flushes <- t.stat.check_in_flushes + 1;
          forget_prefetch t ~node ~blk;
          t.stat.messages <- t.stat.messages + 1;
          (match state with
          | Cache.Exclusive ->
              if dirty then t.stat.writebacks <- t.stat.writebacks + 1;
              Directory.set t.dir blk Directory.Idle
          | Cache.Shared -> Directory.remove_sharer t.dir blk ~node)));
  t.cost.Network.check_in_cost

let check_in_lat t ~node ~addr ~now =
  if Obs.enabled () then Obs.Counter.incr obs_directives;
  guard t (check_in_lat_u t ~node ~addr ~now)

let prefetch_lat_u ~exclusive t ~node ~addr ~now =
  let blk = block_of_addr t addr in
  commute_plain t blk;
  t.stat.prefetches <- t.stat.prefetches + 1;
  let c = t.caches.(node) in
  let i = Cache.probe c blk in
  let wanted =
    i >= 0
    && ((not exclusive) || (Cache.line_at c i).Cache.state = Cache.Exclusive)
  in
  if wanted then t.cost.Network.prefetch_issue
  else begin
    (* Run the transaction now but charge only the issue cost; the
       transfer latency is hidden behind [ready_at]. *)
    let fetch_latency =
      if exclusive then fetch_exclusive_b t ~node ~blk ~now ~dirty:false
      else fetch_shared_b t ~node ~blk ~now
    in
    let i = Cache.probe c blk in
    if i >= 0 then (Cache.line_at c i).Cache.ready_at <- now + fetch_latency;
    let key = pf_key t ~node ~blk in
    if not (pf_mem t key) then begin
      Hashtbl.replace t.pf_pending key ();
      t.pf_live <- t.pf_live + 1
    end;
    t.cost.Network.prefetch_issue
  end

let prefetch_lat ~exclusive t ~node ~addr ~now =
  if Obs.enabled () then Obs.Counter.incr obs_directives;
  guard t (prefetch_lat_u ~exclusive t ~node ~addr ~now)

let prefetch_x_lat t = prefetch_lat ~exclusive:true t
let prefetch_s_lat t = prefetch_lat ~exclusive:false t

let post_store_lat_u t ~node ~addr ~now =
  let blk = block_of_addr t addr in
  commute_plain t blk;
  t.stat.post_stores <- t.stat.post_stores + 1;
  match t.backend with
  | Protocol_id.Sisd ->
      (* No broadcast machinery under SiSd: a post-store degenerates to
         the same self-downgrade a check-in performs. *)
      sisd_self_downgrade t ~node ~blk;
      t.cost.Network.check_in_cost
  | _ ->
  let c = t.caches.(node) in
  let i = Cache.probe c blk in
  (if i >= 0 then
     let line = Cache.line_at c i in
     if line.Cache.state = Cache.Exclusive then begin
       (* write the data back and downgrade to a shared copy *)
       if line.Cache.dirty then begin
         t.stat.writebacks <- t.stat.writebacks + 1;
         t.stat.messages <- t.stat.messages + 1
       end;
       line.Cache.state <- Cache.Shared;
       line.Cache.dirty <- false;
       let mask = ref (1 lsl node) in
       (* broadcast read-only copies to every past holder *)
       let past = ps_find t blk in
       for recipient = 0 to t.n_nodes - 1 do
         if recipient <> node && past land (1 lsl recipient) <> 0 then begin
           t.stat.messages <- t.stat.messages + 1;
           install t ~node:recipient ~blk ~state:Cache.Shared ~dirty:false
             ~ready_at:(now + t.cost.Network.miss_2hop);
           mask := !mask lor (1 lsl recipient)
         end
       done;
       Directory.set t.dir blk (Directory.Shared !mask)
     end);
  t.cost.Network.check_in_cost

let post_store_lat t ~node ~addr ~now =
  if Obs.enabled () then Obs.Counter.incr obs_directives;
  guard t (post_store_lat_u t ~node ~addr ~now)

(* ---- allocating wrappers, kept for existing callers and tests ---- *)

let read t ~node ~addr ~now = outcome_of_packed (read_p t ~node ~addr ~now)
let write t ~node ~addr ~now = outcome_of_packed (write_p t ~node ~addr ~now)

let check_out_x t ~node ~addr ~now =
  { latency = check_out_x_lat t ~node ~addr ~now; miss = None }

let check_out_s t ~node ~addr ~now =
  { latency = check_out_s_lat t ~node ~addr ~now; miss = None }

let check_in t ~node ~addr ~now =
  { latency = check_in_lat t ~node ~addr ~now; miss = None }

let prefetch_x t ~node ~addr ~now =
  { latency = prefetch_x_lat t ~node ~addr ~now; miss = None }

let prefetch_s t ~node ~addr ~now =
  { latency = prefetch_s_lat t ~node ~addr ~now; miss = None }

let post_store t ~node ~addr ~now =
  { latency = post_store_lat t ~node ~addr ~now; miss = None }

let flush_node t ~node =
  let flushed = Cache.flush_all t.caches.(node) in
  List.iter
    (fun (blk, state, dirty) ->
      forget_prefetch t ~node ~blk;
      match state with
      | Cache.Exclusive ->
          if dirty then t.stat.writebacks <- t.stat.writebacks + 1;
          (match t.backend with
          | Protocol_id.Sisd -> (
              match Directory.get t.dir blk with
              | Directory.Exclusive owner when owner = node ->
                  Directory.set t.dir blk Directory.Idle
              | _ -> ())
          | _ -> Directory.set t.dir blk Directory.Idle)
      | Cache.Shared ->
          (* SiSd never registered the sharer, so there is nothing to
             remove (and the entry may track an unrelated last writer). *)
          if t.backend <> Protocol_id.Sisd then
            Directory.remove_sharer t.dir blk ~node)
    flushed;
  guard t ()

(* ---- epoch boundary (barrier-synchronized protocol work) ----

   Dir1SW does all its coherence work eagerly, so its epoch boundary is
   a no-op. SiSd self-invalidates every line not pinned by an
   outstanding check-out (writing dirty data back first); Commute merges
   every surviving privatized accumulator. Both are charged to the
   statistics only — the work rides the barrier, whose cost the
   scheduler already models. Engines call this on the base protocol
   while releasing a barrier, before any trace-mode flush. *)
let epoch_boundary t =
  if t.parent <> None then invalid_arg "Protocol.epoch_boundary: shard view";
  (match t.backend with
  | Protocol_id.Dir1sw -> ()
  | Protocol_id.Commute ->
      let pending =
        Hashtbl.fold
          (fun blk mask acc -> if mask <> 0 then (blk, mask) :: acc else acc)
          t.cm []
      in
      List.iter
        (fun (blk, mask) -> commute_merge t blk mask)
        (List.sort compare pending)
  | Protocol_id.Sisd ->
      for node = 0 to t.n_nodes - 1 do
        let victims = ref [] in
        Cache.iter t.caches.(node) (fun l ->
            let blk = l.Cache.block in
            if co_find t blk land (1 lsl node) = 0 then
              victims := blk :: !victims);
        List.iter
          (fun blk ->
            match Cache.remove t.caches.(node) blk with
            | None -> ()
            | Some (state, dirty) ->
                forget_prefetch t ~node ~blk;
                t.stat.invalidations <- t.stat.invalidations + 1;
                (match state with
                | Cache.Exclusive ->
                    if dirty then begin
                      t.stat.writebacks <- t.stat.writebacks + 1;
                      t.stat.messages <- t.stat.messages + 1
                    end;
                    (match Directory.get t.dir blk with
                    | Directory.Exclusive owner when owner = node ->
                        Directory.set t.dir blk Directory.Idle
                    | _ -> ())
                | Cache.Shared -> ()))
          (List.sort compare !victims)
      done);
  guard t ()

let sample_occupancy t =
  if Obs.enabled () then
    Obs.Gauge.set obs_dir_occupancy (List.length (Directory.entries t.dir))

let reset t =
  for node = 0 to t.n_nodes - 1 do
    ignore (Cache.flush_all t.caches.(node))
  done;
  List.iter (fun (blk, _) -> Directory.set t.dir blk Directory.Idle)
    (Directory.entries t.dir);
  Hashtbl.reset t.pf_pending;
  t.pf_live <- 0;
  Hashtbl.reset t.past_sharers;
  Hashtbl.reset t.co;
  Hashtbl.reset t.cm;
  Stats.reset t.stat

(* ---- shard views (parallel epoch replay) ----

   A view shares the base's cache array (the shard partition guarantees a
   shard only drives transitions whose cache effects land on its own
   nodes' caches) but gets an overlay directory, private counters, and
   private pf/past-sharer deltas. Invariant checking is forced off on
   views: [check_invariants] reads global state and the engine falls back
   to serial replay whenever [debug_checks] is set on the base. *)

(* Nodes a replayed transition on [blk] might reach: every cached copy
   (the directory lists all residents — Dir1SW's stale-extra-sharers are
   a superset, which is safe here) plus every past holder (the recipient
   set of a post-store, and the only nodes an install can broadcast to).
   Eviction side-effects stay inside this mask too: a victim block's
   directory entry names its holder, so any shard touching the victim is
   coupled to the evictor. *)
let couple_mask t blk =
  let d =
    match Directory.get t.dir blk with
    | Directory.Idle -> 0
    | Directory.Shared mask -> mask
    | Directory.Exclusive owner -> 1 lsl owner
  in
  (* Check-out pins (SiSd) and privatized accumulators (Commute) are
     shared per-block masks merged by replacement: couple every holder so
     the planner serializes any cross-shard contention on them. *)
  d lor ps_find t blk lor co_find t blk lor cm_find t blk

let shard_view t =
  if t.parent <> None then invalid_arg "Protocol.shard_view: already a view";
  {
    t with
    dir = Directory.overlay t.dir;
    stat = Stats.create ~nodes:t.n_nodes;
    pf_pending = Hashtbl.create 16;
    pf_del = Hashtbl.create 16;
    past_sharers = Hashtbl.create 16;
    co = Hashtbl.create 16;
    cm = Hashtbl.create 16;
    debug_checks = false;
    parent = Some t;
  }

let merge_shard base view =
  (match view.parent with
  | Some p when p == base -> ()
  | _ -> invalid_arg "Protocol.merge_shard: not a view of this protocol");
  Directory.commit view.dir;
  Stats.add base.stat view.stat;
  Hashtbl.iter
    (fun blk mask ->
      let prev =
        Option.value ~default:0 (Hashtbl.find_opt base.past_sharers blk)
      in
      Hashtbl.replace base.past_sharers blk (prev lor mask))
    view.past_sharers;
  Hashtbl.iter
    (fun key () ->
      if Hashtbl.mem base.pf_pending key then begin
        Hashtbl.remove base.pf_pending key;
        base.pf_live <- base.pf_live - 1
      end)
    view.pf_del;
  Hashtbl.iter
    (fun key () ->
      if not (Hashtbl.mem base.pf_pending key) then begin
        Hashtbl.add base.pf_pending key ();
        base.pf_live <- base.pf_live + 1
      end)
    view.pf_pending;
  (* co/cm masks merge by replacement: the planner coupled every holder
     (see [couple_mask]), so at most one shard rewrote a given block's
     mask. A zero written on the view means "cleared" on the base. *)
  Hashtbl.iter (fun blk mask -> co_set base blk mask) view.co;
  Hashtbl.iter (fun blk mask -> cm_set base blk mask) view.cm;
  Hashtbl.reset view.past_sharers;
  Hashtbl.reset view.pf_del;
  Hashtbl.reset view.pf_pending;
  Hashtbl.reset view.co;
  Hashtbl.reset view.cm

(* ---- snapshot / restore / canonical digest (epoch memoization) ---- *)

type snapshot = {
  sn_caches : Cache.snapshot array;
  sn_dir : (int * Directory.state) list;
  sn_pf : (int, unit) Hashtbl.t;
  sn_pf_live : int;
  sn_past : (int, int) Hashtbl.t;
  sn_co : (int, int) Hashtbl.t;
  sn_cm : (int, int) Hashtbl.t;
}

let snapshot t =
  if t.parent <> None then invalid_arg "Protocol.snapshot: shard view";
  {
    sn_caches = Array.map Cache.snapshot t.caches;
    sn_dir = Directory.entries t.dir;
    sn_pf = Hashtbl.copy t.pf_pending;
    sn_pf_live = t.pf_live;
    sn_past = Hashtbl.copy t.past_sharers;
    sn_co = Hashtbl.copy t.co;
    sn_cm = Hashtbl.copy t.cm;
  }

(* Restore state captured at virtual time T at a new virtual time
   T + [time_offset]; absolute [ready_at] stamps shift accordingly
   (see [Cache.restore]). Stats are deliberately untouched: the memo
   applies them as a {!Stats.diff} delta. *)
let restore t s ~time_offset =
  if t.parent <> None then invalid_arg "Protocol.restore: shard view";
  Array.iteri
    (fun i c -> Cache.restore c s.sn_caches.(i) ~time_offset)
    t.caches;
  List.iter
    (fun (blk, _) -> Directory.set t.dir blk Directory.Idle)
    (Directory.entries t.dir);
  List.iter (fun (blk, st) -> Directory.set t.dir blk st) s.sn_dir;
  Hashtbl.reset t.pf_pending;
  Hashtbl.iter (fun k () -> Hashtbl.add t.pf_pending k ()) s.sn_pf;
  t.pf_live <- s.sn_pf_live;
  Hashtbl.reset t.past_sharers;
  Hashtbl.iter (fun k v -> Hashtbl.add t.past_sharers k v) s.sn_past;
  Hashtbl.reset t.co;
  Hashtbl.iter (fun k v -> Hashtbl.add t.co k v) s.sn_co;
  Hashtbl.reset t.cm;
  Hashtbl.iter (fun k v -> Hashtbl.add t.cm k v) s.sn_cm

(* FNV-1a over the canonical machine state, relative to virtual time
   [now] so two states reachable at different absolute times hash alike.
   Two independent accumulators (different offset bases) drive the
   collision probability for the epoch memo's key comparison well below
   concern; the memo additionally compares the full event streams, so a
   digest collision can only alias *incoming* protocol states. *)
let state_digest t ~now =
  if t.parent <> None then invalid_arg "Protocol.state_digest: shard view";
  let h1 = ref 0x4bf29ce484222325 and h2 = ref 0x04222325cbf29ce4 in
  let prime = 0x100000001b3 in
  let put v =
    h1 := (!h1 lxor v) * prime;
    h2 := (!h2 lxor (v + 0x9e3779b9)) * prime
  in
  put t.n_nodes;
  put (Protocol_id.to_int t.backend);
  Array.iter (fun c -> Cache.fold_state c ~now ~init:() (fun () v -> put v))
    t.caches;
  Directory.fold_state t.dir ~init:() (fun () v -> put v);
  let sorted tbl =
    List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])
  in
  List.iter
    (fun (blk, mask) -> if mask <> 0 then (put blk; put mask))
    (sorted t.past_sharers);
  List.iter (fun (key, ()) -> put key) (sorted t.pf_pending);
  put t.pf_live;
  List.iter
    (fun (blk, mask) -> if mask <> 0 then (put (blk lxor 0x105d); put mask))
    (sorted t.co);
  List.iter
    (fun (blk, mask) -> if mask <> 0 then (put (blk lxor 0x2c4e); put mask))
    (sorted t.cm);
  (!h1 land max_int, !h2 land max_int)
