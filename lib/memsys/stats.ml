type t = {
  nodes : int;
  mutable read_hits : int;
  mutable write_hits : int;
  mutable read_misses : int;
  mutable write_misses : int;
  mutable write_faults : int;
  mutable invalidations : int;
  mutable sw_traps : int;
  mutable writebacks : int;
  mutable evictions : int;
  mutable check_outs_x : int;
  mutable check_outs_s : int;
  mutable check_ins : int;
  mutable check_in_flushes : int;
  mutable prefetches : int;
  mutable useful_prefetches : int;
  mutable post_stores : int;
  mutable messages : int;
  mutable shared_reads : int;
  mutable shared_writes : int;
  mutable private_reads : int;
  mutable private_writes : int;
  mutable barriers : int;
  mutable lock_acquires : int;
  stall_cycles : int array;
}

let create ~nodes =
  if nodes <= 0 then invalid_arg "Stats.create: nodes must be positive";
  {
    nodes;
    read_hits = 0;
    write_hits = 0;
    read_misses = 0;
    write_misses = 0;
    write_faults = 0;
    invalidations = 0;
    sw_traps = 0;
    writebacks = 0;
    evictions = 0;
    check_outs_x = 0;
    check_outs_s = 0;
    check_ins = 0;
    check_in_flushes = 0;
    prefetches = 0;
    useful_prefetches = 0;
    post_stores = 0;
    messages = 0;
    shared_reads = 0;
    shared_writes = 0;
    private_reads = 0;
    private_writes = 0;
    barriers = 0;
    lock_acquires = 0;
    stall_cycles = Array.make nodes 0;
  }

let reset t =
  t.read_hits <- 0;
  t.write_hits <- 0;
  t.read_misses <- 0;
  t.write_misses <- 0;
  t.write_faults <- 0;
  t.invalidations <- 0;
  t.sw_traps <- 0;
  t.writebacks <- 0;
  t.evictions <- 0;
  t.check_outs_x <- 0;
  t.check_outs_s <- 0;
  t.check_ins <- 0;
  t.check_in_flushes <- 0;
  t.prefetches <- 0;
  t.useful_prefetches <- 0;
  t.post_stores <- 0;
  t.messages <- 0;
  t.shared_reads <- 0;
  t.shared_writes <- 0;
  t.private_reads <- 0;
  t.private_writes <- 0;
  t.barriers <- 0;
  t.lock_acquires <- 0;
  Array.fill t.stall_cycles 0 (Array.length t.stall_cycles) 0

(* Copy/diff/add form a little delta algebra used by the parallel
   engine: shard replays accumulate into private Stats merged with [add],
   and the epoch memo stores [diff after before] to re-apply on a hit. *)
let copy t = { t with stall_cycles = Array.copy t.stall_cycles }

let blit ~src ~dst =
  dst.read_hits <- src.read_hits;
  dst.write_hits <- src.write_hits;
  dst.read_misses <- src.read_misses;
  dst.write_misses <- src.write_misses;
  dst.write_faults <- src.write_faults;
  dst.invalidations <- src.invalidations;
  dst.sw_traps <- src.sw_traps;
  dst.writebacks <- src.writebacks;
  dst.evictions <- src.evictions;
  dst.check_outs_x <- src.check_outs_x;
  dst.check_outs_s <- src.check_outs_s;
  dst.check_ins <- src.check_ins;
  dst.check_in_flushes <- src.check_in_flushes;
  dst.prefetches <- src.prefetches;
  dst.useful_prefetches <- src.useful_prefetches;
  dst.post_stores <- src.post_stores;
  dst.messages <- src.messages;
  dst.shared_reads <- src.shared_reads;
  dst.shared_writes <- src.shared_writes;
  dst.private_reads <- src.private_reads;
  dst.private_writes <- src.private_writes;
  dst.barriers <- src.barriers;
  dst.lock_acquires <- src.lock_acquires;
  Array.blit src.stall_cycles 0 dst.stall_cycles 0
    (Array.length dst.stall_cycles)

let diff a b =
  {
    nodes = a.nodes;
    read_hits = a.read_hits - b.read_hits;
    write_hits = a.write_hits - b.write_hits;
    read_misses = a.read_misses - b.read_misses;
    write_misses = a.write_misses - b.write_misses;
    write_faults = a.write_faults - b.write_faults;
    invalidations = a.invalidations - b.invalidations;
    sw_traps = a.sw_traps - b.sw_traps;
    writebacks = a.writebacks - b.writebacks;
    evictions = a.evictions - b.evictions;
    check_outs_x = a.check_outs_x - b.check_outs_x;
    check_outs_s = a.check_outs_s - b.check_outs_s;
    check_ins = a.check_ins - b.check_ins;
    check_in_flushes = a.check_in_flushes - b.check_in_flushes;
    prefetches = a.prefetches - b.prefetches;
    useful_prefetches = a.useful_prefetches - b.useful_prefetches;
    post_stores = a.post_stores - b.post_stores;
    messages = a.messages - b.messages;
    shared_reads = a.shared_reads - b.shared_reads;
    shared_writes = a.shared_writes - b.shared_writes;
    private_reads = a.private_reads - b.private_reads;
    private_writes = a.private_writes - b.private_writes;
    barriers = a.barriers - b.barriers;
    lock_acquires = a.lock_acquires - b.lock_acquires;
    stall_cycles =
      Array.init (Array.length a.stall_cycles) (fun i ->
          a.stall_cycles.(i) - b.stall_cycles.(i));
  }

let add t d =
  t.read_hits <- t.read_hits + d.read_hits;
  t.write_hits <- t.write_hits + d.write_hits;
  t.read_misses <- t.read_misses + d.read_misses;
  t.write_misses <- t.write_misses + d.write_misses;
  t.write_faults <- t.write_faults + d.write_faults;
  t.invalidations <- t.invalidations + d.invalidations;
  t.sw_traps <- t.sw_traps + d.sw_traps;
  t.writebacks <- t.writebacks + d.writebacks;
  t.evictions <- t.evictions + d.evictions;
  t.check_outs_x <- t.check_outs_x + d.check_outs_x;
  t.check_outs_s <- t.check_outs_s + d.check_outs_s;
  t.check_ins <- t.check_ins + d.check_ins;
  t.check_in_flushes <- t.check_in_flushes + d.check_in_flushes;
  t.prefetches <- t.prefetches + d.prefetches;
  t.useful_prefetches <- t.useful_prefetches + d.useful_prefetches;
  t.post_stores <- t.post_stores + d.post_stores;
  t.messages <- t.messages + d.messages;
  t.shared_reads <- t.shared_reads + d.shared_reads;
  t.shared_writes <- t.shared_writes + d.shared_writes;
  t.private_reads <- t.private_reads + d.private_reads;
  t.private_writes <- t.private_writes + d.private_writes;
  t.barriers <- t.barriers + d.barriers;
  t.lock_acquires <- t.lock_acquires + d.lock_acquires;
  for i = 0 to Array.length t.stall_cycles - 1 do
    t.stall_cycles.(i) <- t.stall_cycles.(i) + d.stall_cycles.(i)
  done

let add_stall t ~node c =
  if node < 0 || node >= t.nodes then invalid_arg "Stats.add_stall: bad node";
  t.stall_cycles.(node) <- t.stall_cycles.(node) + c

let total_misses t = t.read_misses + t.write_misses

let total_accesses t =
  t.shared_reads + t.shared_writes + t.private_reads + t.private_writes

let shared_read_fraction t =
  let loads = t.shared_reads + t.private_reads in
  if loads = 0 then 0.0 else float_of_int t.shared_reads /. float_of_int loads

let shared_write_fraction t =
  let stores = t.shared_writes + t.private_writes in
  if stores = 0 then 0.0
  else float_of_int t.shared_writes /. float_of_int stores

let pp ppf t =
  let f fmt = Format.fprintf ppf fmt in
  f "@[<v>";
  f "read hits        %d@," t.read_hits;
  f "write hits       %d@," t.write_hits;
  f "read misses      %d@," t.read_misses;
  f "write misses     %d@," t.write_misses;
  f "write faults     %d@," t.write_faults;
  f "invalidations    %d@," t.invalidations;
  f "software traps   %d@," t.sw_traps;
  f "writebacks       %d@," t.writebacks;
  f "evictions        %d@," t.evictions;
  f "check-out X      %d@," t.check_outs_x;
  f "check-out S      %d@," t.check_outs_s;
  f "check-ins        %d (%d flushed)@," t.check_ins t.check_in_flushes;
  f "prefetches       %d (%d useful)@," t.prefetches t.useful_prefetches;
  f "post-stores      %d@," t.post_stores;
  f "messages         %d@," t.messages;
  f "shared reads     %d / %d loads (%.1f%%)@," t.shared_reads
    (t.shared_reads + t.private_reads)
    (100.0 *. shared_read_fraction t);
  f "shared writes    %d / %d stores (%.1f%%)@," t.shared_writes
    (t.shared_writes + t.private_writes)
    (100.0 *. shared_write_fraction t);
  f "barriers         %d@," t.barriers;
  f "lock acquires    %d" t.lock_acquires;
  f "@]"
