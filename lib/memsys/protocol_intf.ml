(* The first-class protocol seam. Every backend the memory system offers
   satisfies [PROTOCOL]: the packed access path, the CICO directives,
   shard views, snapshot/restore and the canonical digest. The concrete
   implementations ({!Dir1sw}, {!Sisd}, {!Commute}) all share
   {!Protocol.t} — dispatch lives inside the core so the engines keep a
   single monomorphic hot path — but the signature lets conformance
   tests, and any future out-of-tree backend, treat a protocol as a
   first-class module:

   {[
     let m = (module Memsys.Sisd : Memsys.Protocol_intf.PROTOCOL) in
     let module P = (val m) in
     let p = P.create ~nodes:4 ... in
     ...
   ]} *)

module type PROTOCOL = sig
  val id : Protocol_id.t
  (** Which backend this module constructs. *)

  type t
  type snapshot

  val create :
    nodes:int -> cache_bytes:int -> assoc:int -> block_size:int ->
    costs:Network.costs -> t
  (** A fresh machine running this module's backend. *)

  val backend : t -> Protocol_id.t
  val nodes : t -> int
  val block_size : t -> int
  val stats : t -> Stats.t
  val costs : t -> Network.costs
  val block_of_addr : t -> int -> int

  (** {2 Packed access path} *)

  val read_p : t -> node:int -> addr:int -> now:int -> int
  val write_p : t -> node:int -> addr:int -> now:int -> int
  val read_rmw_p : t -> node:int -> addr:int -> now:int -> int
  val write_rmw_p : t -> node:int -> addr:int -> now:int -> int

  (** {2 CICO directives (latency-only)} *)

  val check_out_x_lat : t -> node:int -> addr:int -> now:int -> int
  val check_out_s_lat : t -> node:int -> addr:int -> now:int -> int
  val check_in_lat : t -> node:int -> addr:int -> now:int -> int
  val prefetch_x_lat : t -> node:int -> addr:int -> now:int -> int
  val prefetch_s_lat : t -> node:int -> addr:int -> now:int -> int
  val post_store_lat : t -> node:int -> addr:int -> now:int -> int

  (** {2 Epoch / node lifecycle} *)

  val epoch_boundary : t -> unit
  val flush_node : t -> node:int -> unit
  val reset : t -> unit
  val sample_occupancy : t -> unit

  (** {2 Debug invariant audit} *)

  val check_invariants : t -> string option
  val set_debug_checks : t -> bool -> unit
  val debug_checks : t -> bool

  (** {2 Shard views (parallel epoch replay)} *)

  val couple_mask : t -> int -> int
  val shard_view : t -> t
  val merge_shard : t -> t -> unit

  (** {2 Snapshot / canonical digest (epoch memoization)} *)

  val snapshot : t -> snapshot
  val restore : t -> snapshot -> time_offset:int -> unit
  val state_digest : t -> now:int -> int * int
end
