(** Self-invalidation / self-downgrade (SiSd) as a first-class
    {!Protocol_intf.PROTOCOL} instance; shares {!Protocol.t}.

    The directory keeps no sharer lists — only the last writer — so
    there are no invalidation or write-fault messages: every fetch is a
    plain two-hop transfer, a store to a resident [Shared] copy upgrades
    locally, check-ins and post-stores write dirty data back in place
    (self-downgrade), and {!Protocol.epoch_boundary} bulk
    self-invalidates every resident line not pinned by an outstanding
    check-out. Check-outs are the CICO contract that keeps hot lines
    alive across epochs. *)

include
  Protocol_intf.PROTOCOL
    with type t = Protocol.t
     and type snapshot = Protocol.snapshot
