(** Event counters for a simulated Dir1SW machine.

    One [t] aggregates the whole machine; per-node breakdowns are kept for
    the counters the evaluation needs (misses, stall cycles). All counters
    are monotonically increasing during a run. *)

type t = {
  nodes : int;
  mutable read_hits : int;
  mutable write_hits : int;
  mutable read_misses : int;
  mutable write_misses : int;
  mutable write_faults : int;  (** writes that hit a Shared copy (upgrades) *)
  mutable invalidations : int;  (** invalidation messages sent *)
  mutable sw_traps : int;  (** Dir1SW software traps (>1 sharer on write) *)
  mutable writebacks : int;
  mutable evictions : int;
  mutable check_outs_x : int;  (** explicit check-out-exclusive directives *)
  mutable check_outs_s : int;  (** explicit check-out-shared directives *)
  mutable check_ins : int;  (** explicit check-in directives *)
  mutable check_in_flushes : int;  (** check-ins that actually flushed a block *)
  mutable prefetches : int;
  mutable useful_prefetches : int;  (** prefetched blocks later accessed in time *)
  mutable post_stores : int;  (** KSR-1-style post-store directives *)
  mutable messages : int;  (** total protocol messages *)
  mutable shared_reads : int;  (** loads that touch shared data *)
  mutable shared_writes : int;  (** stores that touch shared data *)
  mutable private_reads : int;
  mutable private_writes : int;
  mutable barriers : int;
  mutable lock_acquires : int;
  stall_cycles : int array;  (** per-node cycles spent waiting on memory *)
}

val create : nodes:int -> t
(** [create ~nodes] is a zeroed counter set for an [nodes]-node machine. *)

val reset : t -> unit
(** [reset t] zeroes every counter in place. *)

val add_stall : t -> node:int -> int -> unit
(** [add_stall t ~node c] accounts [c] memory-stall cycles to [node]. *)

(** {2 Delta algebra}

    The parallel engine treats counter sets as elements of a group:
    shard replays accumulate into private counter sets merged with
    {!add}, and the epoch memo stores [diff after before] to re-apply
    the whole epoch's accounting on a cache hit. *)

val copy : t -> t
(** A deep copy (the stall array is duplicated). *)

val blit : src:t -> dst:t -> unit
(** Overwrite every counter of [dst] with [src]'s values in place. *)

val diff : t -> t -> t
(** [diff a b] is the field-wise difference [a - b]. *)

val add : t -> t -> unit
(** [add t d] adds every counter of [d] to [t] in place. *)

val total_misses : t -> int
(** Read misses + write misses (write faults are counted separately). *)

val total_accesses : t -> int
(** All shared and private loads and stores. *)

val shared_read_fraction : t -> float
(** Fraction of loads that touch shared data, in [0, 1]; 0 if no loads. *)

val shared_write_fraction : t -> float
(** Fraction of stores that touch shared data, in [0, 1]; 0 if no stores. *)

val pp : Format.formatter -> t -> unit
(** Human-readable multi-line rendering of all counters. *)
