(** Dir1SW directory state, one entry per cache block.

    Dir1SW (Hill et al., "Cooperative Shared Memory") keeps one hardware
    pointer plus a sharer count per block; common transitions run in
    hardware, and a store to a block with other sharers traps to system
    software, which sends the invalidations. For simulation we track the
    exact sharer set (as a bitmask over at most 62 nodes) so invalidation
    *counts* are exact, while the *cost* of the >1-sharer case is charged
    as a software trap by the protocol engine. *)

type state =
  | Idle  (** no cached copies *)
  | Shared of int  (** bitmask of nodes holding read-only copies *)
  | Exclusive of int  (** node holding the writable copy *)

type t

val create : nodes:int -> t
(** A directory for a machine with [nodes] nodes (at most 62). *)

val nodes : t -> int

val get : t -> int -> state
(** [get t blk] is the state of block [blk] ([Idle] if never referenced). *)

val set : t -> int -> state -> unit
(** [set t blk st] overwrites the state of block [blk]; [Idle] and
    [Shared 0] both normalise to [Idle]. *)

val add_sharer : t -> int -> node:int -> unit
(** [add_sharer t blk ~node] adds [node] to the sharer set.
    @raise Invalid_argument if the block is [Exclusive]. *)

val remove_sharer : t -> int -> node:int -> unit
(** [remove_sharer t blk ~node] removes [node]; removing the last sharer
    leaves the block [Idle]. No-op if [node] is not a sharer. *)

val sharers : t -> int -> int list
(** Sorted list of sharer nodes ([]) for [Idle]/[Exclusive] blocks). *)

val sharer_count : t -> int -> int
(** Number of sharers (0 for [Idle] and [Exclusive]). *)

val is_sharer : t -> int -> node:int -> bool

val entries : t -> (int * state) list
(** All non-[Idle] entries, in unspecified order. For an overlay this
    merges the parent's entries with the overlay's writes. *)

val overlay : t -> t
(** [overlay base] is an empty overlay directory: reads fall through to
    [base], writes (including [Idle], which shadows the parent) land in
    the overlay only. The parallel engine's shard replays run against
    one overlay per shard so concurrent shards never mutate [base]'s
    table; while any overlay is live, [base] must not be mutated. *)

val commit : t -> unit
(** [commit overlay] applies every overlay write to the parent (with the
    usual [Idle]/[Shared 0] normalisation) and empties the overlay.
    @raise Invalid_argument on a non-overlay directory. *)

val fold_state : t -> init:'a -> ('a -> int -> 'a) -> 'a
(** Fold over a canonical encoding of the directory (non-idle entries in
    ascending block order) — the directory half of the epoch memo's
    state digest. *)

val popcount : int -> int
(** Number of set bits (exposed for tests). *)

val validate : t -> (int * string) option
(** Structural well-formedness of the stored entries: sharer masks are
    non-empty and name only nodes in range, exclusive owners are in range.
    Returns [Some (block, reason)] for the first offending entry. This is
    the directory half of the Dir1SW debug oracle; {!Protocol.check_invariants}
    adds the cross-checks against per-node cache state. *)
