type state = Idle | Shared of int | Exclusive of int

(* An overlay directory ([parent = Some base]) records writes in its own
   table — including explicit [Idle] entries, which shadow the parent —
   while reads fall through to the (frozen) parent. The parallel engine's
   shard replays each run against an overlay of the shared directory, so
   concurrent shards never mutate one Hashtbl; [commit] folds the deltas
   back deterministically at the epoch boundary. *)
type t = {
  n_nodes : int;
  table : (int, state) Hashtbl.t;
  parent : t option;
}

let max_nodes = 62

let create ~nodes =
  if nodes <= 0 || nodes > max_nodes then
    invalid_arg "Directory.create: nodes must be in [1, 62]";
  { n_nodes = nodes; table = Hashtbl.create 4096; parent = None }

let nodes t = t.n_nodes

let rec get t blk =
  match Hashtbl.find_opt t.table blk with
  | Some st -> st
  | None -> ( match t.parent with Some p -> get p blk | None -> Idle)

let set t blk st =
  match t.parent with
  | Some _ ->
      (* overlays must shadow the parent, so Idle is stored explicitly *)
      Hashtbl.replace t.table blk (match st with Shared 0 -> Idle | st -> st)
  | None -> (
      match st with
      | Idle | Shared 0 -> Hashtbl.remove t.table blk
      | Shared _ | Exclusive _ -> Hashtbl.replace t.table blk st)

let overlay base = { base with table = Hashtbl.create 64; parent = Some base }

let commit t =
  match t.parent with
  | None -> invalid_arg "Directory.commit: not an overlay"
  | Some base ->
      Hashtbl.iter (fun blk st -> set base blk st) t.table;
      Hashtbl.reset t.table

let check_node t node =
  if node < 0 || node >= t.n_nodes then
    invalid_arg "Directory: node out of range"

let add_sharer t blk ~node =
  check_node t node;
  match get t blk with
  | Idle -> set t blk (Shared (1 lsl node))
  | Shared mask -> set t blk (Shared (mask lor (1 lsl node)))
  | Exclusive _ ->
      invalid_arg "Directory.add_sharer: block is held exclusive"

let remove_sharer t blk ~node =
  check_node t node;
  match get t blk with
  | Idle | Exclusive _ -> ()
  | Shared mask -> set t blk (Shared (mask land lnot (1 lsl node)))

let popcount mask =
  let rec loop m acc = if m = 0 then acc else loop (m lsr 1) (acc + (m land 1)) in
  loop mask 0

let sharers t blk =
  match get t blk with
  | Idle | Exclusive _ -> []
  | Shared mask ->
      let rec loop node acc =
        if node < 0 then acc
        else if mask land (1 lsl node) <> 0 then loop (node - 1) (node :: acc)
        else loop (node - 1) acc
      in
      loop (t.n_nodes - 1) []

let sharer_count t blk =
  match get t blk with Idle | Exclusive _ -> 0 | Shared mask -> popcount mask

let is_sharer t blk ~node =
  match get t blk with
  | Idle | Exclusive _ -> false
  | Shared mask -> mask land (1 lsl node) <> 0

let entries t =
  let own = Hashtbl.fold (fun blk st acc -> (blk, st) :: acc) t.table [] in
  match t.parent with
  | None -> own
  | Some base ->
      (* parent entries not shadowed by the overlay, plus the overlay's
         own non-idle writes *)
      Hashtbl.fold
        (fun blk st acc ->
          if Hashtbl.mem t.table blk then acc else (blk, st) :: acc)
        base.table
        (List.filter (fun (_, st) -> st <> Idle && st <> Shared 0) own)

(* Canonical fold for the epoch memo's state digest: non-idle entries in
   ascending block order, each contributing (block, encoded state). *)
let fold_state t ~init f =
  let es =
    List.filter (fun (_, st) -> st <> Idle && st <> Shared 0) (entries t)
  in
  let es = List.sort (fun (a, _) (b, _) -> compare a b) es in
  List.fold_left
    (fun acc (blk, st) ->
      let acc = f acc blk in
      match st with
      | Idle -> acc
      | Shared mask -> f acc (mask lsl 2)
      | Exclusive owner -> f acc ((owner lsl 2) lor 1))
    init es

(* Structural well-formedness of the stored entries themselves: sharer
   masks name only real nodes and are never empty (Shared 0 normalises to
   Idle in [set]), exclusive owners are in range. The protocol engine's
   [check_invariants] builds on this to cross-check against cache state. *)
let validate t =
  let full = (1 lsl t.n_nodes) - 1 in
  Hashtbl.fold
    (fun blk st acc ->
      match acc with
      | Some _ -> acc
      | None -> (
          match st with
          | Idle -> None
          | Shared 0 -> Some (blk, "stored empty sharer mask")
          | Shared mask when mask land lnot full <> 0 ->
              Some (blk, "sharer mask names a node out of range")
          | Shared _ -> None
          | Exclusive owner when owner < 0 || owner >= t.n_nodes ->
              Some (blk, "exclusive owner out of range")
          | Exclusive _ -> None))
    t.table None
