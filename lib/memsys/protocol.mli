(** The cache-coherence protocol engine with CICO directives.

    One [t] models a whole machine: per-node set-associative caches, a
    directory, and a cost table. Data values are *not* stored here — the
    simulator keeps shared memory in a flat array that is always current —
    so the protocol tracks only coherence state and cost, which is all the
    CICO model needs (annotations never change program semantics).

    A [t] runs one of three backends, selected at {!create} time by a
    {!Protocol_id.t}:

    - [Dir1sw] (the default) — the paper's directory protocol, described
      below;
    - [Sisd] — self-invalidation / self-downgrade: fetches are plain
      two-hop transfers, the directory tracks only the last writer (never
      sharers), stores to a resident [Shared] copy upgrade locally without
      asking permission, check-ins and post-stores become in-place
      self-downgrades, and {!epoch_boundary} self-invalidates every
      resident line not pinned by an outstanding check-out;
    - [Commute] — Dir1SW plus privatized commutative updates: accesses
      routed through {!read_rmw_p}/{!write_rmw_p} accumulate into a
      per-node privatized copy (no misses, no invalidations) that merges
      deterministically at the next plain access or epoch boundary. All
      other traffic is bit-identical to [Dir1sw].

    Default protocol behaviour follows Dir1SW:
    - a read miss performs an implicit check-out-shared;
    - a write miss performs an implicit check-out-exclusive;
    - a store that hits a [Shared] copy is a {e write fault}: if the block
      has other sharers the directory traps to software, which sends one
      invalidation per sharer; a lone sharer upgrades in hardware;
    - [check_out_x] fetches (or upgrades to) an exclusive copy eagerly, so
      a later read-then-write sequence pays no upgrade;
    - [check_in] flushes the local copy and releases the directory entry,
      so later writers pay no invalidation;
    - replacement of a [Shared] line is silent, leaving a stale sharer in
      the directory (whose invalidation is still paid later) — exactly the
      waste check-in removes;
    - prefetches start the transaction immediately but charge only the
      issue cost; the block's [ready_at] models the overlapped latency. *)

type miss_kind = Read_miss | Write_miss | Write_fault

type outcome = {
  latency : int;  (** cycles charged to the issuing node *)
  miss : miss_kind option;  (** [None] for hits and directives *)
}

(** {2 Packed outcomes}

    The hot path returns outcomes as a single immediate int,
    [(latency lsl 2) lor kind], so a simulated access that hits in the
    cache allocates nothing. Decode with {!packed_latency} /
    {!packed_kind}; the kind codes are {!no_miss}, {!read_miss},
    {!write_miss}, {!write_fault}. *)

val no_miss : int  (** 0 *)

val read_miss : int  (** 1 *)

val write_miss : int  (** 2 *)

val write_fault : int  (** 3 *)

val packed_latency : int -> int
val packed_kind : int -> int

val outcome_of_packed : int -> outcome

type t

val create :
  nodes:int -> cache_bytes:int -> assoc:int -> block_size:int ->
  costs:Network.costs -> t
(** A machine running {!Protocol_id.default} ([Dir1sw]). *)

val create_b :
  backend:Protocol_id.t ->
  nodes:int -> cache_bytes:int -> assoc:int -> block_size:int ->
  costs:Network.costs -> t
(** A machine running the given backend. *)

val backend : t -> Protocol_id.t
val nodes : t -> int
val block_size : t -> int
val stats : t -> Stats.t
val directory : t -> Directory.t
val cache : t -> node:int -> Cache.t
val costs : t -> Network.costs

val block_of_addr : t -> int -> int

val read_p : t -> node:int -> addr:int -> now:int -> int
(** A shared-data load by [node] at virtual time [now]; packed outcome.
    Cache hits are allocation-free: an index probe with a per-set MRU
    memo, an in-place LRU touch, and no directory bookkeeping. *)

val write_p : t -> node:int -> addr:int -> now:int -> int
(** A shared-data store by [node] at virtual time [now]; packed outcome.
    Exclusive hits are allocation-free like {!read_p}. *)

val read_rmw_p : t -> node:int -> addr:int -> now:int -> int
(** The load half of a classifier-recognized commutative read-modify-write
    ([A[i] = A[i] + e]). Identical to {!read_p} under [Dir1sw] and [Sisd];
    under [Commute] it reads the node's privatized accumulator (a hit,
    never a miss), privatizing the block first if needed. *)

val write_rmw_p : t -> node:int -> addr:int -> now:int -> int
(** The store half of a recognized commutative RMW; see {!read_rmw_p}.
    Identical to {!write_p} outside [Commute]. *)

val read : t -> node:int -> addr:int -> now:int -> outcome
(** A shared-data load by [node] at virtual time [now]. Allocating wrapper
    around {!read_p}. *)

val write : t -> node:int -> addr:int -> now:int -> outcome
(** A shared-data store by [node] at virtual time [now]. Allocating
    wrapper around {!write_p}. *)

(** Latency-only entry points for the CICO directives (directives never
    miss, so the latency is the whole outcome): *)

val check_out_x_lat : t -> node:int -> addr:int -> now:int -> int
val check_out_s_lat : t -> node:int -> addr:int -> now:int -> int
val check_in_lat : t -> node:int -> addr:int -> now:int -> int
val prefetch_x_lat : t -> node:int -> addr:int -> now:int -> int
val prefetch_s_lat : t -> node:int -> addr:int -> now:int -> int
val post_store_lat : t -> node:int -> addr:int -> now:int -> int

val check_out_x : t -> node:int -> addr:int -> now:int -> outcome
(** Explicit check-out-exclusive of the block containing [addr]. *)

val check_out_s : t -> node:int -> addr:int -> now:int -> outcome
(** Explicit check-out-shared of the block containing [addr]. *)

val check_in : t -> node:int -> addr:int -> now:int -> outcome
(** Explicit check-in (flush) of the block containing [addr]. *)

val prefetch_x : t -> node:int -> addr:int -> now:int -> outcome
val prefetch_s : t -> node:int -> addr:int -> now:int -> outcome

val post_store : t -> node:int -> addr:int -> now:int -> outcome
(** The KSR-1-style post-store the paper's introduction compares to
    check-in: write the block back and broadcast read-only copies to every
    node that held the block before losing it (invalidation or eviction).
    The issuing node keeps a [Shared] copy; recipients get the data with
    a one-transfer delay hidden behind [ready_at]. A no-op (beyond its
    cost) when the node does not hold the block exclusive. *)

val sample_occupancy : t -> unit
(** When observability is enabled ({!Obs.enabled}), set the
    ["protocol.dir_occupancy"] gauge to the number of non-idle directory
    entries. No-op (one branch) otherwise. Engines call this at epoch
    barriers so the gauge tracks working-set growth without touching the
    per-access hot path. *)

val flush_node : t -> node:int -> unit
(** Flush the node's entire shared-data cache, updating the directory.
    Used at barriers during trace-collection runs (Section 3.3). *)

val epoch_boundary : t -> unit
(** Barrier-synchronized protocol work, called by every engine while
    releasing a barrier (before any trace-mode flush). A no-op under
    [Dir1sw]. Under [Sisd], every node self-invalidates each resident
    line whose block has no outstanding check-out by that node, writing
    dirty data back first. Under [Commute], every surviving privatized
    accumulator merges (deterministic block order). Runs on the base
    protocol only. @raise Invalid_argument on a shard view. *)

(** {2 Protocol invariant oracle (debug hook)}

    For differential testing the protocol can audit itself after every
    transition: single exclusive owner, sharer sets consistent with cache
    states (stale extra sharers from silent Shared replacement are legal,
    cached-but-unlisted sharers are not), no cached copy of an Idle block,
    and no stuck pending prefetch whose line is gone. Off by default; the
    hot path pays one predictable branch. *)

exception Invariant_violation of string
(** Raised by any transition entry point when {!set_debug_checks} is on
    and the transition left the machine in a state violating the active
    backend's invariants. *)

val check_invariants : t -> string option
(** One full audit of directory-versus-cache state, independent of the
    debug flag. [None] when every invariant holds. *)

val set_debug_checks : t -> bool -> unit
(** Enable or disable the per-transition audit. *)

val debug_checks : t -> bool

val reset : t -> unit
(** Drop all cache and directory state and zero the statistics. *)

(** {2 Shard views (parallel epoch replay)}

    The parallel engine replays non-conflicting ownership shards of an
    epoch concurrently. Each shard domain drives an ordinary [t] obtained
    from {!shard_view}: it shares the base's cache array (the partition
    guarantees a shard only triggers transitions touching its own nodes'
    caches) but routes directory writes to an overlay, counters to a
    private {!Stats.t}, and prefetch/past-sharer updates to private
    delta tables, so concurrent shards never race on shared structures.
    The base must not be mutated while views are live; {!merge_shard}
    folds each view back in deterministically at the epoch boundary. *)

val couple_mask : t -> int -> int
(** [couple_mask t blk] is the bitmask of nodes whose caches a replayed
    transition on [blk] could reach in the current state: the directory
    entry's residents, the block's past holders (post-store recipients),
    its check-out pinners (SiSd) and its privatized-accumulator holders
    (Commute). The shard planner unions a block's toucher with this mask,
    which keeps every transition's footprint inside one shard. *)

val shard_view : t -> t
(** A fresh view of [t]. @raise Invalid_argument if [t] is itself a view. *)

val merge_shard : t -> t -> unit
(** [merge_shard base view] commits the view's directory overlay, adds
    its counters, ORs its past-sharer masks and applies its pending-
    prefetch delta into [base], then empties the view.
    @raise Invalid_argument if [view] is not a view of [base]. *)

(** {2 Snapshot / digest (epoch memoization)} *)

type snapshot
(** Complete coherence state (caches, directory, prefetch and past-sharer
    tables) — everything except statistics, which the memo re-applies as a
    {!Stats.diff} delta. *)

val snapshot : t -> snapshot

val restore : t -> snapshot -> time_offset:int -> unit
(** Restore a snapshot taken at virtual time [T] at time
    [T + time_offset]; pending [ready_at] stamps are rebased so residual
    prefetch stalls replay identically. Statistics are untouched. *)

val state_digest : t -> now:int -> int * int
(** Two independent FNV-1a digests of the canonical coherence state
    relative to virtual time [now] (absolute LRU ticks and arrival times
    are excluded — states that behave identically hash identically).
    The backend id is folded in, so the same cache/directory state under
    two different protocols never hashes alike. *)
