(** A finite-capacity, set-associative, LRU data cache for one node.

    Blocks are cached in one of two coherence states, [Shared] (read-only)
    or [Exclusive] (writable); a dirty bit tracks whether an exclusive block
    must be written back. Each line carries a [ready_at] virtual time so
    that prefetched blocks can arrive asynchronously: an access before
    [ready_at] stalls for the residual latency. *)

type coherence = Shared | Exclusive

type line = {
  mutable block : int;  (** owned by the cache; never write from outside *)
  mutable state : coherence;
  mutable dirty : bool;
  mutable ready_at : int;  (** virtual time at which the data is usable *)
  mutable last_use : int;  (** LRU timestamp, maintained by [touch] *)
}

type t

val create : size_bytes:int -> assoc:int -> block_size:int -> t
(** [create ~size_bytes ~assoc ~block_size] is an empty cache.
    @raise Invalid_argument if the geometry is not a power-of-two split. *)

val block_size : t -> int
val sets : t -> int
val assoc : t -> int

val capacity_blocks : t -> int
(** Total number of lines. *)

val capacity_bytes : t -> int

val find : t -> int -> line option
(** [find t blk] is the resident line for block [blk], without touching
    LRU state. Allocates the [Some]; hot paths should use {!probe}. *)

val probe : t -> int -> int
(** [probe t blk] is the flat index of the resident line for block [blk],
    or [-1]. Allocation-free; a per-set MRU memo makes back-to-back probes
    of the same block O(1). Pass the index to {!line_at} / {!touch_idx}. *)

val line_at : t -> int -> line
(** [line_at t i] is the line at a flat index returned by {!probe}. The
    line record is reused across occupants of the way — read its fields
    immediately, do not retain it across [insert]/[remove]. *)

val touch : t -> int -> unit
(** [touch t blk] marks block [blk] most recently used (no-op if absent). *)

val touch_idx : t -> int -> unit
(** [touch_idx t i] marks the line at flat index [i] most recently used,
    skipping the probe. *)

val insert :
  t -> block:int -> state:coherence -> dirty:bool -> ready_at:int ->
  (int * coherence * bool) option
(** [insert t ~block ~state ~dirty ~ready_at] installs a line, evicting the
    LRU line of the set if full. Returns [Some (victim, state, dirty)] when
    a block was evicted. Inserting an already-resident block updates it in
    place and returns [None]. *)

val remove : t -> int -> (coherence * bool) option
(** [remove t blk] drops block [blk], returning its state and dirty bit. *)

val flush_all : t -> (int * coherence * bool) list
(** [flush_all t] empties the cache, returning every resident
    [(block, state, dirty)] in unspecified order. *)

val occupancy : t -> int
(** Number of resident lines. *)

val iter : t -> (line -> unit) -> unit
(** Iterate over resident lines in unspecified order. *)

(** {2 Snapshot, restore and canonical digest}

    Support for the parallel engine's epoch memoization: a whole-cache
    snapshot that can be restored at a different virtual time, and a
    canonical fold over the behaviourally relevant state. *)

type snapshot

val snapshot : t -> snapshot
(** Deep copy of every way, the LRU clock and the occupancy count. *)

val restore : t -> snapshot -> time_offset:int -> unit
(** Overwrite [t] in place from a snapshot taken on a cache of the same
    geometry. [time_offset] is added to every pending [ready_at] stamp so
    a snapshot taken at virtual time T behaves identically when restored
    at time T + offset. *)

val fold_state : t -> now:int -> init:'a -> ('a -> int -> 'a) -> 'a
(** Fold over a canonical encoding of the state at virtual time [now]:
    per way — block, state, dirty, residual stall relative to [now], and
    LRU rank within the set. Two caches that fold equally respond
    identically to every future access sequence; absolute LRU ticks,
    elapsed [ready_at] stamps and the probe memo are excluded. *)
