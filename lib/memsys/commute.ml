(* Privatized commutative updates as a first-class PROTOCOL instance.
   The behaviour lives in {!Protocol}; this module pins the backend at
   creation. *)

include Protocol

let id = Protocol_id.Commute

let create ~nodes ~cache_bytes ~assoc ~block_size ~costs =
  Protocol.create_b ~backend:id ~nodes ~cache_bytes ~assoc ~block_size ~costs
