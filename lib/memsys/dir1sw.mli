(** The paper's Dir1SW directory protocol as a first-class
    {!Protocol_intf.PROTOCOL} instance. Shares {!Protocol.t}. *)

include
  Protocol_intf.PROTOCOL
    with type t = Protocol.t
     and type snapshot = Protocol.snapshot
