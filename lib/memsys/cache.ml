type coherence = Shared | Exclusive

type line = {
  mutable block : int;
  mutable state : coherence;
  mutable dirty : bool;
  mutable ready_at : int;
  mutable last_use : int;
}

(* Sentinel block number for an empty way; no real block is negative. *)
let absent = min_int

type t = {
  block_size : int;
  n_sets : int;
  n_assoc : int;
  lines : line array;  (* flat [n_sets * n_assoc]; lines are reused in
                          place so the steady-state probe/insert path
                          allocates nothing *)
  mru : int array;  (* per-set memo of the last way that hit *)
  mutable tick : int;  (* LRU clock *)
  mutable resident : int;
}

let create ~size_bytes ~assoc ~block_size =
  if not (Block.is_power_of_two block_size) then
    invalid_arg "Cache.create: block size must be a power of two";
  if assoc <= 0 then invalid_arg "Cache.create: associativity must be positive";
  if size_bytes <= 0 || size_bytes mod (assoc * block_size) <> 0 then
    invalid_arg "Cache.create: size must be a multiple of assoc * block size";
  let n_sets = size_bytes / (assoc * block_size) in
  if not (Block.is_power_of_two n_sets) then
    invalid_arg "Cache.create: number of sets must be a power of two";
  {
    block_size;
    n_sets;
    n_assoc = assoc;
    lines =
      Array.init (n_sets * assoc) (fun _ ->
          { block = absent; state = Shared; dirty = false; ready_at = 0;
            last_use = 0 });
    mru = Array.make n_sets 0;
    tick = 0;
    resident = 0;
  }

let block_size t = t.block_size
let sets t = t.n_sets
let assoc t = t.n_assoc
let capacity_blocks t = t.n_sets * t.n_assoc
let capacity_bytes t = capacity_blocks t * t.block_size
let occupancy t = t.resident
let set_of t blk = blk land (t.n_sets - 1)

let line_at t i = t.lines.(i)

(* Option-free probe: the flat index of [blk]'s line, or -1. Checks the
   set's most-recently-hit way first, which short-circuits the common
   run of repeated touches to the same block. *)
let probe t blk =
  let s = set_of t blk in
  let base = s * t.n_assoc in
  let memo = t.mru.(s) in
  if t.lines.(base + memo).block = blk then base + memo
  else begin
    let rec loop i =
      if i >= t.n_assoc then -1
      else if i <> memo && t.lines.(base + i).block = blk then begin
        t.mru.(s) <- i;
        base + i
      end
      else loop (i + 1)
    in
    loop 0
  end

let find t blk =
  let i = probe t blk in
  if i < 0 then None else Some t.lines.(i)

let touch_idx t i =
  t.tick <- t.tick + 1;
  t.lines.(i).last_use <- t.tick

let touch t blk =
  let i = probe t blk in
  if i >= 0 then touch_idx t i

(* Fill a way in place; never allocates. *)
let fill l ~block ~state ~dirty ~ready_at ~last_use =
  l.block <- block;
  l.state <- state;
  l.dirty <- dirty;
  l.ready_at <- ready_at;
  l.last_use <- last_use

let insert t ~block ~state ~dirty ~ready_at =
  let i = probe t block in
  if i >= 0 then begin
    let l = t.lines.(i) in
    l.state <- state;
    l.dirty <- dirty || l.dirty;
    l.ready_at <- ready_at;
    t.tick <- t.tick + 1;
    l.last_use <- t.tick;
    None
  end
  else begin
    let base = set_of t block * t.n_assoc in
    t.tick <- t.tick + 1;
    (* Prefer an empty way; otherwise evict the LRU way. *)
    let empty = ref (-1) and lru = ref 0 in
    for i = 0 to t.n_assoc - 1 do
      let l = t.lines.(base + i) in
      if l.block = absent then begin
        if !empty < 0 then empty := i
      end
      else begin
        let m = t.lines.(base + !lru) in
        if m.block = absent || l.last_use < m.last_use then lru := i
      end
    done;
    if !empty >= 0 then begin
      fill t.lines.(base + !empty) ~block ~state ~dirty ~ready_at
        ~last_use:t.tick;
      t.resident <- t.resident + 1;
      None
    end
    else begin
      let victim = t.lines.(base + !lru) in
      let v = (victim.block, victim.state, victim.dirty) in
      fill victim ~block ~state ~dirty ~ready_at ~last_use:t.tick;
      Some v
    end
  end

let remove t blk =
  let i = probe t blk in
  if i < 0 then None
  else begin
    let l = t.lines.(i) in
    let r = Some (l.state, l.dirty) in
    l.block <- absent;
    t.resident <- t.resident - 1;
    r
  end

let flush_all t =
  let acc = ref [] in
  Array.iter
    (fun l ->
      if l.block <> absent then begin
        acc := (l.block, l.state, l.dirty) :: !acc;
        l.block <- absent
      end)
    t.lines;
  t.resident <- 0;
  !acc

let iter t f =
  Array.iter (fun l -> if l.block <> absent then f l) t.lines

(* ---- snapshot / restore / canonical digest (epoch memoization) ---- *)

type snapshot = {
  s_lines : line array;  (* copied records, same flat layout *)
  s_mru : int array;
  s_tick : int;
  s_resident : int;
}

let snapshot t =
  {
    s_lines =
      Array.map
        (fun l ->
          { block = l.block; state = l.state; dirty = l.dirty;
            ready_at = l.ready_at; last_use = l.last_use })
        t.lines;
    s_mru = Array.copy t.mru;
    s_tick = t.tick;
    s_resident = t.resident;
  }

(* [time_offset] rebases the absolute [ready_at] stamps: a snapshot taken
   at virtual time T restored at virtual time T' must shift every pending
   arrival by T' - T so residual stalls replay identically. *)
let restore t s ~time_offset =
  Array.iteri
    (fun i (l : line) ->
      let d = t.lines.(i) in
      d.block <- l.block;
      d.state <- l.state;
      d.dirty <- l.dirty;
      d.ready_at <- (if l.block = absent then 0 else l.ready_at + time_offset);
      d.last_use <- l.last_use)
    s.s_lines;
  Array.blit s.s_mru 0 t.mru 0 (Array.length t.mru);
  t.tick <- s.s_tick;
  t.resident <- s.s_resident

(* Canonical digest of the behaviourally relevant state at virtual time
   [now]: per way — block, coherence state, dirty bit, residual stall
   (ready_at clamped relative to [now]) and the way's LRU *rank* within
   its set. Absolute [tick]/[last_use]/[ready_at] values and the MRU memo
   are excluded: two caches that differ only in those respond identically
   to every future access sequence, and the epoch memo must treat them as
   equal. [f] folds over the canonical ints. *)
let fold_state t ~now ~init f =
  let acc = ref init in
  let put v = acc := f !acc v in
  let rank = Array.make t.n_assoc 0 in
  for s = 0 to t.n_sets - 1 do
    let base = s * t.n_assoc in
    for i = 0 to t.n_assoc - 1 do
      (* rank.(i) = number of resident ways in this set touched less
         recently than way i (absent ways rank 0) *)
      let li = t.lines.(base + i) in
      if li.block = absent then rank.(i) <- -1
      else begin
        let r = ref 0 in
        for j = 0 to t.n_assoc - 1 do
          let lj = t.lines.(base + j) in
          if j <> i && lj.block <> absent && lj.last_use < li.last_use then
            incr r
        done;
        rank.(i) <- !r
      end
    done;
    for i = 0 to t.n_assoc - 1 do
      let l = t.lines.(base + i) in
      if l.block = absent then put (-1)
      else begin
        put l.block;
        put (match l.state with Shared -> 0 | Exclusive -> 1);
        put (if l.dirty then 1 else 0);
        put (max 0 (l.ready_at - now));
        put rank.(i)
      end
    done
  done;
  !acc
