type coherence = Shared | Exclusive

type line = {
  mutable block : int;
  mutable state : coherence;
  mutable dirty : bool;
  mutable ready_at : int;
  mutable last_use : int;
}

(* Sentinel block number for an empty way; no real block is negative. *)
let absent = min_int

type t = {
  block_size : int;
  n_sets : int;
  n_assoc : int;
  lines : line array;  (* flat [n_sets * n_assoc]; lines are reused in
                          place so the steady-state probe/insert path
                          allocates nothing *)
  mru : int array;  (* per-set memo of the last way that hit *)
  mutable tick : int;  (* LRU clock *)
  mutable resident : int;
}

let create ~size_bytes ~assoc ~block_size =
  if not (Block.is_power_of_two block_size) then
    invalid_arg "Cache.create: block size must be a power of two";
  if assoc <= 0 then invalid_arg "Cache.create: associativity must be positive";
  if size_bytes <= 0 || size_bytes mod (assoc * block_size) <> 0 then
    invalid_arg "Cache.create: size must be a multiple of assoc * block size";
  let n_sets = size_bytes / (assoc * block_size) in
  if not (Block.is_power_of_two n_sets) then
    invalid_arg "Cache.create: number of sets must be a power of two";
  {
    block_size;
    n_sets;
    n_assoc = assoc;
    lines =
      Array.init (n_sets * assoc) (fun _ ->
          { block = absent; state = Shared; dirty = false; ready_at = 0;
            last_use = 0 });
    mru = Array.make n_sets 0;
    tick = 0;
    resident = 0;
  }

let block_size t = t.block_size
let sets t = t.n_sets
let assoc t = t.n_assoc
let capacity_blocks t = t.n_sets * t.n_assoc
let capacity_bytes t = capacity_blocks t * t.block_size
let occupancy t = t.resident
let set_of t blk = blk land (t.n_sets - 1)

let line_at t i = t.lines.(i)

(* Option-free probe: the flat index of [blk]'s line, or -1. Checks the
   set's most-recently-hit way first, which short-circuits the common
   run of repeated touches to the same block. *)
let probe t blk =
  let s = set_of t blk in
  let base = s * t.n_assoc in
  let memo = t.mru.(s) in
  if t.lines.(base + memo).block = blk then base + memo
  else begin
    let rec loop i =
      if i >= t.n_assoc then -1
      else if i <> memo && t.lines.(base + i).block = blk then begin
        t.mru.(s) <- i;
        base + i
      end
      else loop (i + 1)
    in
    loop 0
  end

let find t blk =
  let i = probe t blk in
  if i < 0 then None else Some t.lines.(i)

let touch_idx t i =
  t.tick <- t.tick + 1;
  t.lines.(i).last_use <- t.tick

let touch t blk =
  let i = probe t blk in
  if i >= 0 then touch_idx t i

(* Fill a way in place; never allocates. *)
let fill l ~block ~state ~dirty ~ready_at ~last_use =
  l.block <- block;
  l.state <- state;
  l.dirty <- dirty;
  l.ready_at <- ready_at;
  l.last_use <- last_use

let insert t ~block ~state ~dirty ~ready_at =
  let i = probe t block in
  if i >= 0 then begin
    let l = t.lines.(i) in
    l.state <- state;
    l.dirty <- dirty || l.dirty;
    l.ready_at <- ready_at;
    t.tick <- t.tick + 1;
    l.last_use <- t.tick;
    None
  end
  else begin
    let base = set_of t block * t.n_assoc in
    t.tick <- t.tick + 1;
    (* Prefer an empty way; otherwise evict the LRU way. *)
    let empty = ref (-1) and lru = ref 0 in
    for i = 0 to t.n_assoc - 1 do
      let l = t.lines.(base + i) in
      if l.block = absent then begin
        if !empty < 0 then empty := i
      end
      else begin
        let m = t.lines.(base + !lru) in
        if m.block = absent || l.last_use < m.last_use then lru := i
      end
    done;
    if !empty >= 0 then begin
      fill t.lines.(base + !empty) ~block ~state ~dirty ~ready_at
        ~last_use:t.tick;
      t.resident <- t.resident + 1;
      None
    end
    else begin
      let victim = t.lines.(base + !lru) in
      let v = (victim.block, victim.state, victim.dirty) in
      fill victim ~block ~state ~dirty ~ready_at ~last_use:t.tick;
      Some v
    end
  end

let remove t blk =
  let i = probe t blk in
  if i < 0 then None
  else begin
    let l = t.lines.(i) in
    let r = Some (l.state, l.dirty) in
    l.block <- absent;
    t.resident <- t.resident - 1;
    r
  end

let flush_all t =
  let acc = ref [] in
  Array.iter
    (fun l ->
      if l.block <> absent then begin
        acc := (l.block, l.state, l.dirty) :: !acc;
        l.block <- absent
      end)
    t.lines;
  t.resident <- 0;
  !acc

let iter t f =
  Array.iter (fun l -> if l.block <> absent then f l) t.lines
