(** Hand-written lexer for the mini-language.

    Comments are [//] to end of line and [/* ... */] (non-nesting). Tokens
    carry the 1-based line on which they start, for error reporting. *)

type token =
  | INT of int
  | FLOAT of float
  | IDENT of string
  | LPAREN | RPAREN
  | LBRACE | RBRACE
  | LBRACKET | RBRACKET
  | COMMA | SEMI | COLON | AT
  | ASSIGN  (** [=] *)
  | DOTDOT  (** [..] *)
  | PLUS | MINUS | STAR | SLASH | PERCENT
  | LT | LE | GT | GE | EQ | NE
  | ANDAND | OROR | BANG
  | EOF

exception Error of string
(** Raised on an invalid character or unterminated comment; the message
    includes the line number. *)

val tokenize : string -> (token * int) list
(** [tokenize src] is the token stream, ending with [(EOF, line)]. *)

val tokenize_loc : string -> (token * int * int * int) list
(** [tokenize_loc src] is the token stream with byte spans:
    [(token, line, start, stop)] where [start] is the 0-based offset of the
    token's first byte and [stop] is one past its last byte. The trailing
    [EOF] carries the empty span [(n, n)] at the end of the source. *)

val token_to_string : token -> string
