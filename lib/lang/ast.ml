(* Abstract syntax of the mini shared-memory SPMD language.

   Programs are SPMD: every node runs [main] with the builtin [pid]
   distinguishing nodes. Shared arrays live in a flat shared address space;
   private arrays and scalars are per-node. Barriers delimit epochs. CICO
   annotations are statements that never affect semantics.

   Every statement carries a unique [sid] used as the "program counter" in
   traces and as the anchor for annotation placement. *)

type binop =
  | Add | Sub | Mul | Div | Mod
  | Lt | Le | Gt | Ge | Eq | Ne
  | And | Or

type unop = Neg | Not

type expr =
  | Eint of int
  | Efloat of float
  | Evar of string
  | Eindex of string * expr  (* A[e] *)
  | Ebinop of binop * expr * expr
  | Eunop of unop * expr
  | Ecall of string * expr list  (* intrinsic or user function *)

type annot_kind =
  | Check_out_x
  | Check_out_s
  | Check_in
  | Prefetch_x
  | Prefetch_s
  | Post_store
      (* extension: the KSR-1 post-store of the paper's introduction *)

(* An element range [arr[lo .. hi]], both bounds inclusive. *)
type range = { arr : string; lo : expr; hi : expr }

type lvalue = Lvar of string | Lindex of string * expr

type stmt = { sid : int; node : stmt_kind }

and stmt_kind =
  | Sassign of lvalue * expr
  | Sif of expr * block * block
  | Sfor of for_loop
  | Swhile of expr * block
  | Sbarrier
  | Scall of string * expr list
  | Sreturn of expr option
  | Slock of expr
  | Sunlock of expr
  | Sannot of annot_kind * range
  | Sannot_table of annot_table
  | Sprint of expr list

and for_loop = {
  var : string;
  from_ : expr;
  to_ : expr;  (* inclusive upper bound *)
  step : expr;
  body : block;
}

(* Placement artifact: a per-pid set of concrete element ranges for one
   array, produced by the annotator when no affine form exists. *)
and annot_table = {
  akind : annot_kind;
  aarr : string;
  aranges : (int * int) list array;  (* indexed by pid *)
}

and block = stmt list

type decl =
  | Dshared of string * expr  (* element count *)
  | Dprivate of string * expr
  | Dconst of string * expr

type proc = { pname : string; params : string list; body : block }

type program = { decls : decl list; procs : proc list }

let annot_kind_name = function
  | Check_out_x -> "check_out_x"
  | Check_out_s -> "check_out_s"
  | Check_in -> "check_in"
  | Prefetch_x -> "prefetch_x"
  | Prefetch_s -> "prefetch_s"
  | Post_store -> "post_store"

let binop_name = function
  | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/" | Mod -> "%"
  | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">=" | Eq -> "==" | Ne -> "!="
  | And -> "&&" | Or -> "||"

let find_proc program name =
  List.find_opt (fun p -> p.pname = name) program.procs

(* Iterate over every statement (pre-order, recursing into nested blocks
   across all procedures). *)
let iter_stmts f program =
  let rec stmt s =
    f s;
    match s.node with
    | Sif (_, b1, b2) ->
        List.iter stmt b1;
        List.iter stmt b2
    | Sfor { body; _ } -> List.iter stmt body
    | Swhile (_, body) -> List.iter stmt body
    | Sassign _ | Sbarrier | Scall _ | Sreturn _ | Slock _ | Sunlock _
    | Sannot _ | Sannot_table _ | Sprint _ ->
        ()
  in
  List.iter (fun p -> List.iter stmt p.body) program.procs

let fold_stmts f acc program =
  let acc = ref acc in
  iter_stmts (fun s -> acc := f !acc s) program;
  !acc

let max_sid program = fold_stmts (fun m s -> max m s.sid) (-1) program

(* Rewrite every block in the program bottom-up. [f] receives each block
   after its nested blocks were rewritten and returns the replacement. *)
let map_blocks f program =
  let rec stmt s =
    let node =
      match s.node with
      | Sif (e, b1, b2) -> Sif (e, blk b1, blk b2)
      | Sfor fl -> Sfor { fl with body = blk fl.body }
      | Swhile (e, b) -> Swhile (e, blk b)
      | (Sassign _ | Sbarrier | Scall _ | Sreturn _ | Slock _ | Sunlock _
        | Sannot _ | Sannot_table _ | Sprint _) as n ->
          n
    in
    { s with node }
  and blk b = f (List.map stmt b) in
  { program with procs = List.map (fun p -> { p with body = blk p.body }) program.procs }

(* Give fresh consecutive sids to every statement (used after inserting
   annotation statements, which are created with sid -1). *)
let renumber program =
  let next = ref 0 in
  let rec stmt s =
    let sid = !next in
    incr next;
    let node =
      match s.node with
      | Sif (e, b1, b2) ->
          (* bind each block before building the node: constructor
             arguments evaluate right-to-left, which would number the
             else-branch first — the parser numbers left-to-right *)
          let b1 = List.map stmt b1 in
          let b2 = List.map stmt b2 in
          Sif (e, b1, b2)
      | Sfor fl -> Sfor { fl with body = List.map stmt fl.body }
      | Swhile (e, b) -> Swhile (e, List.map stmt b)
      | (Sassign _ | Sbarrier | Scall _ | Sreturn _ | Slock _ | Sunlock _
        | Sannot _ | Sannot_table _ | Sprint _) as n ->
          n
    in
    { sid; node }
  in
  {
    program with
    procs = List.map (fun p -> { p with body = List.map stmt p.body }) program.procs;
  }

let is_annotation s =
  match s.node with Sannot _ | Sannot_table _ -> true | _ -> false

(* Remove every CICO annotation (gives back the unannotated program). *)
let strip_annotations program =
  map_blocks (fun b -> List.filter (fun s -> not (is_annotation s)) b) program

let count_annotations program =
  fold_stmts (fun n s -> if is_annotation s then n + 1 else n) 0 program

(* Structural equality ignoring statement ids (programs that print the
   same are equal under this relation). *)
let equal_modulo_sids p1 p2 =
  let rec strip_stmt s =
    let node =
      match s.node with
      | Sif (e, b1, b2) -> Sif (e, List.map strip_stmt b1, List.map strip_stmt b2)
      | Sfor fl -> Sfor { fl with body = List.map strip_stmt fl.body }
      | Swhile (e, b) -> Swhile (e, List.map strip_stmt b)
      | (Sassign _ | Sbarrier | Scall _ | Sreturn _ | Slock _ | Sunlock _
        | Sannot _ | Sannot_table _ | Sprint _) as n ->
          n
    in
    { sid = 0; node }
  in
  let strip p =
    { p with procs = List.map (fun pr -> { pr with body = List.map strip_stmt pr.body }) p.procs }
  in
  strip p1 = strip p2
