(** AST editing helpers used by the annotator. *)

val stmt_by_sid : Ast.program -> int -> Ast.stmt option

val proc_of_sid : Ast.program -> int -> string option
(** Name of the procedure whose body (transitively) contains the
    statement. *)

val insert_before : Ast.program -> sid:int -> Ast.stmt list -> Ast.program
(** Insert statements immediately before the statement with id [sid],
    inside the same block. The program is returned unchanged if [sid] does
    not exist. *)

val insert_after : Ast.program -> sid:int -> Ast.stmt list -> Ast.program

val prepend_to_proc : Ast.program -> proc:string -> Ast.stmt list -> Ast.program
(** Insert at the very beginning of a procedure body. *)

val append_to_proc : Ast.program -> proc:string -> Ast.stmt list -> Ast.program

val barrier_sids : Ast.program -> int list
(** Statement ids of every [barrier], in textual order. *)

val proc_digest : Ast.proc -> string
(** Content hash of a procedure (name, params, body), ignoring statement
    ids: two procedures that pretty-print identically share a digest. Used
    by the delta engine's artifact DAG. *)

val decl_digest : Ast.decl -> string
(** Content hash of a top-level declaration. *)

val program_digest : Ast.program -> string
(** Content hash of the whole program, ignoring statement ids. *)

val set_const : Ast.program -> string -> int -> Ast.program
(** [set_const p name v] replaces the value of constant declaration
    [name] (used to re-run an annotated program on a different input data
    set by changing its seed). The program is returned unchanged if no
    such constant exists. *)
