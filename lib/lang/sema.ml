exception Error of string

type info = {
  consts : (string * Value.t) list;
  shared : (string * int) list;
  privates : (string * int) list;
  procs : (string * int) list;
}

let error fmt = Format.kasprintf (fun s -> raise (Error s)) fmt

let keywords =
  [
    "const"; "shared"; "private"; "proc"; "if"; "else"; "for"; "to"; "step";
    "while"; "barrier"; "lock"; "unlock"; "return"; "print"; "check_out_x";
    "check_out_s"; "check_in"; "prefetch_x"; "prefetch_s"; "post_store";
  ]

let intrinsics =
  [
    ("min", 2); ("max", 2); ("abs", 1); ("sqrt", 1); ("floor", 1);
    ("float", 1); ("int", 1); ("noise", 1); ("sin", 1); ("cos", 1);
  ]

let builtins = [ "pid"; "nprocs" ]

let reserved = keywords @ builtins @ List.map fst intrinsics

let rec const_eval ~consts e =
  let recur e = const_eval ~consts e in
  match e with
  | Ast.Eint i -> Value.Vint i
  | Ast.Efloat f -> Value.Vfloat f
  | Ast.Evar name -> (
      match List.assoc_opt name consts with
      | Some v -> v
      | None -> error "constant expression uses non-constant %S" name)
  | Ast.Eunop (Ast.Neg, e) -> Value.neg (recur e)
  | Ast.Eunop (Ast.Not, e) -> Value.of_bool (not (Value.to_bool (recur e)))
  | Ast.Ebinop (op, a, b) -> (
      let va = recur a and vb = recur b in
      match op with
      | Ast.Add -> Value.add va vb
      | Ast.Sub -> Value.sub va vb
      | Ast.Mul -> Value.mul va vb
      | Ast.Div -> Value.div va vb
      | Ast.Mod -> Value.modulo va vb
      | Ast.Lt -> Value.of_bool (Value.compare_num va vb < 0)
      | Ast.Le -> Value.of_bool (Value.compare_num va vb <= 0)
      | Ast.Gt -> Value.of_bool (Value.compare_num va vb > 0)
      | Ast.Ge -> Value.of_bool (Value.compare_num va vb >= 0)
      | Ast.Eq -> Value.of_bool (Value.equal va vb)
      | Ast.Ne -> Value.of_bool (not (Value.equal va vb))
      | Ast.And -> Value.of_bool (Value.to_bool va && Value.to_bool vb)
      | Ast.Or -> Value.of_bool (Value.to_bool va || Value.to_bool vb))
  | Ast.Ecall ("min", [ a; b ]) ->
      let va = recur a and vb = recur b in
      if Value.compare_num va vb <= 0 then va else vb
  | Ast.Ecall ("max", [ a; b ]) ->
      let va = recur a and vb = recur b in
      if Value.compare_num va vb >= 0 then va else vb
  | Ast.Ecall ("abs", [ a ]) -> (
      match recur a with
      | Value.Vint i -> Value.Vint (abs i)
      | Value.Vfloat f -> Value.Vfloat (Float.abs f))
  | Ast.Ecall ("floor", [ a ]) ->
      Value.Vfloat (Float.floor (Value.to_float (recur a)))
  | Ast.Ecall ("float", [ a ]) -> Value.Vfloat (Value.to_float (recur a))
  | Ast.Ecall ("int", [ a ]) -> Value.Vint (Value.to_int (recur a))
  | Ast.Ecall ("sqrt", [ a ]) ->
      Value.Vfloat (sqrt (Value.to_float (recur a)))
  | Ast.Ecall ("sin", [ a ]) -> Value.Vfloat (sin (Value.to_float (recur a)))
  | Ast.Ecall ("cos", [ a ]) -> Value.Vfloat (cos (Value.to_float (recur a)))
  | Ast.Ecall (name, _) -> error "call of %S in constant expression" name
  | Ast.Eindex (name, _) -> error "array %S in constant expression" name

let is_shared info name = List.mem_assoc name info.shared

let array_elems info name =
  match List.assoc_opt name info.shared with
  | Some n -> Some n
  | None -> List.assoc_opt name info.privates

(* Check one procedure body against a completed declaration [info]. Split
   out of [check] so the delta engine can re-check only edited procedures. *)
let check_proc info (proc : Ast.proc) =
  let is_array name = array_elems info name <> None in
  let rec check_expr e =
    match e with
    | Ast.Eint _ | Ast.Efloat _ -> ()
    | Ast.Evar name ->
        if is_array name then
          error "array %S used without a subscript" name
    | Ast.Eindex (name, idx) ->
        if not (is_array name) then error "subscript of non-array %S" name;
        check_expr idx
    | Ast.Ebinop (_, a, b) ->
        check_expr a;
        check_expr b
    | Ast.Eunop (_, a) -> check_expr a
    | Ast.Ecall (name, args) ->
        List.iter check_expr args;
        let arity = List.length args in
        (match
           (List.assoc_opt name intrinsics, List.assoc_opt name info.procs)
         with
        | Some a, _ ->
            if a <> arity then
              error "intrinsic %S expects %d argument(s), got %d" name a arity
        | None, Some a ->
            if a <> arity then
              error "procedure %S expects %d argument(s), got %d" name a arity
        | None, None -> error "call of undefined procedure %S" name)
  in
  let check_range { Ast.arr; lo; hi } =
    if not (is_shared info arr) then
      error "annotation on non-shared array %S" arr;
    check_expr lo;
    check_expr hi
  in
  let check_stmt (s : Ast.stmt) =
    match s.Ast.node with
    | Ast.Sassign (lv, e) -> (
        check_expr e;
        match lv with
        | Ast.Lvar name ->
            if List.mem name reserved then
              error "cannot assign to reserved name %S" name;
            if List.mem_assoc name info.consts then
              error "cannot assign to constant %S" name;
            if is_array name then
              error "cannot assign to array %S without a subscript" name
        | Ast.Lindex (name, idx) ->
            if not (is_array name) then
              error "assignment to subscript of non-array %S" name;
            check_expr idx)
    | Ast.Sif (cond, _, _) -> check_expr cond
    | Ast.Sfor { var; from_; to_; step; _ } ->
        if List.mem var reserved then
          error "loop variable %S is a reserved name" var;
        if is_array var then error "loop variable %S names an array" var;
        check_expr from_;
        check_expr to_;
        check_expr step
    | Ast.Swhile (cond, _) -> check_expr cond
    | Ast.Sbarrier -> ()
    | Ast.Scall (name, args) ->
        check_expr (Ast.Ecall (name, args))
    | Ast.Sreturn (Some e) -> check_expr e
    | Ast.Sreturn None -> ()
    | Ast.Slock e | Ast.Sunlock e -> check_expr e
    | Ast.Sannot (_, r) -> check_range r
    | Ast.Sannot_table { aarr; _ } ->
        if not (is_shared info aarr) then
          error "annotation on non-shared array %S" aarr
    | Ast.Sprint args -> List.iter check_expr args
  in
  Ast.iter_stmts check_stmt { Ast.decls = []; procs = [ proc ] }

let check program =
  (* Pass 1: declarations. *)
  let consts = ref [] and shared = ref [] and privates = ref [] in
  let declared name =
    List.mem_assoc name !consts
    || List.mem_assoc name !shared
    || List.mem_assoc name !privates
  in
  let check_decl_name name =
    if List.mem name reserved then error "%S is a reserved name" name;
    if declared name then error "duplicate declaration of %S" name
  in
  List.iter
    (fun d ->
      match d with
      | Ast.Dconst (name, e) ->
          check_decl_name name;
          consts := !consts @ [ (name, const_eval ~consts:!consts e) ]
      | Ast.Dshared (name, e) | Ast.Dprivate (name, e) -> (
          check_decl_name name;
          match const_eval ~consts:!consts e with
          | Value.Vint n when n > 0 ->
              if (match d with Ast.Dshared _ -> true | _ -> false) then
                shared := !shared @ [ (name, n) ]
              else privates := !privates @ [ (name, n) ]
          | v ->
              error "array %S has non-positive or non-integer size %s" name
                (Value.to_string v)))
    program.Ast.decls;
  let procs =
    List.map (fun p -> (p.Ast.pname, List.length p.Ast.params)) program.Ast.procs
  in
  List.iter
    (fun (name, _) ->
      if List.mem name reserved then error "procedure %S uses a reserved name" name;
      if declared name then error "procedure %S clashes with a declaration" name)
    procs;
  let dup =
    List.find_opt
      (fun (name, _) ->
        List.length (List.filter (fun (n, _) -> n = name) procs) > 1)
      procs
  in
  (match dup with
  | Some (name, _) -> error "duplicate procedure %S" name
  | None -> ());
  (match List.assoc_opt "main" procs with
  | Some 0 -> ()
  | Some _ -> error "main must take no parameters"
  | None -> error "program has no main procedure");
  let info = { consts = !consts; shared = !shared; privates = !privates; procs } in
  (* Pass 2: bodies. *)
  List.iter (check_proc info) program.Ast.procs;
  (* Unique sids. *)
  let seen = Hashtbl.create 64 in
  Ast.iter_stmts
    (fun s ->
      if Hashtbl.mem seen s.Ast.sid then
        error "duplicate statement id %d (internal error)" s.Ast.sid;
      Hashtbl.add seen s.Ast.sid ())
    program;
  info
