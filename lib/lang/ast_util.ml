let stmt_by_sid program sid =
  Ast.fold_stmts
    (fun acc s -> if s.Ast.sid = sid then Some s else acc)
    None program

let proc_of_sid program sid =
  let contains body =
    let found = ref false in
    let probe = { Ast.decls = []; procs = [ { pname = "_"; params = []; body } ] } in
    Ast.iter_stmts (fun s -> if s.Ast.sid = sid then found := true) probe;
    !found
  in
  List.fold_left
    (fun acc (p : Ast.proc) ->
      match acc with Some _ -> acc | None -> if contains p.body then Some p.pname else None)
    None program.Ast.procs

let insert_rel ~before program ~sid stmts =
  if stmts = [] then program
  else
    Ast.map_blocks
      (fun block ->
        List.concat_map
          (fun s ->
            if s.Ast.sid = sid then
              if before then stmts @ [ s ] else s :: stmts
            else [ s ])
          block)
      program

let insert_before program ~sid stmts = insert_rel ~before:true program ~sid stmts
let insert_after program ~sid stmts = insert_rel ~before:false program ~sid stmts

let edit_proc program ~proc f =
  {
    program with
    Ast.procs =
      List.map
        (fun (p : Ast.proc) ->
          if p.pname = proc then { p with body = f p.body } else p)
        program.Ast.procs;
  }

let prepend_to_proc program ~proc stmts =
  edit_proc program ~proc (fun body -> stmts @ body)

let append_to_proc program ~proc stmts =
  edit_proc program ~proc (fun body -> body @ stmts)

let set_const program name v =
  {
    program with
    Ast.decls =
      List.map
        (fun d ->
          match d with
          | Ast.Dconst (n, _) when n = name -> Ast.Dconst (n, Ast.Eint v)
          | Ast.Dconst _ | Ast.Dshared _ | Ast.Dprivate _ -> d)
        program.Ast.decls;
  }

(* Content digests, ignoring statement ids: two subtrees that pretty-print
   identically get the same digest. The delta engine's artifact DAG keys
   sema results and cached pipeline stages on these. *)
let rec strip_sids_stmt (s : Ast.stmt) =
  let node =
    match s.Ast.node with
    | Ast.Sif (e, b1, b2) ->
        Ast.Sif (e, List.map strip_sids_stmt b1, List.map strip_sids_stmt b2)
    | Ast.Sfor fl -> Ast.Sfor { fl with body = List.map strip_sids_stmt fl.body }
    | Ast.Swhile (e, b) -> Ast.Swhile (e, List.map strip_sids_stmt b)
    | ( Ast.Sassign _ | Ast.Sbarrier | Ast.Scall _ | Ast.Sreturn _
      | Ast.Slock _ | Ast.Sunlock _ | Ast.Sannot _ | Ast.Sannot_table _
      | Ast.Sprint _ ) as n ->
        n
  in
  { Ast.sid = 0; node }

let digest_of v = Digest.to_hex (Digest.string (Marshal.to_string v []))

let proc_digest (p : Ast.proc) =
  digest_of (p.Ast.pname, p.Ast.params, List.map strip_sids_stmt p.Ast.body)

let decl_digest (d : Ast.decl) = digest_of d

let program_digest (p : Ast.program) =
  digest_of
    ( p.Ast.decls,
      List.map
        (fun (pr : Ast.proc) ->
          (pr.Ast.pname, pr.Ast.params, List.map strip_sids_stmt pr.Ast.body))
        p.Ast.procs )

let barrier_sids program =
  List.rev
    (Ast.fold_stmts
       (fun acc s ->
         match s.Ast.node with Ast.Sbarrier -> s.Ast.sid :: acc | _ -> acc)
       [] program)
