type token =
  | INT of int
  | FLOAT of float
  | IDENT of string
  | LPAREN | RPAREN
  | LBRACE | RBRACE
  | LBRACKET | RBRACKET
  | COMMA | SEMI | COLON | AT
  | ASSIGN
  | DOTDOT
  | PLUS | MINUS | STAR | SLASH | PERCENT
  | LT | LE | GT | GE | EQ | NE
  | ANDAND | OROR | BANG
  | EOF

exception Error of string

let error line fmt =
  Format.kasprintf (fun s -> raise (Error (Printf.sprintf "line %d: %s" line s))) fmt

let is_digit c = c >= '0' && c <= '9'
let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || is_digit c

let tokenize_loc src =
  let n = String.length src in
  let tokens = ref [] in
  let line = ref 1 in
  let emit tok start stop = tokens := (tok, !line, start, stop) :: !tokens in
  let rec scan i =
    if i >= n then emit EOF n n
    else
      let c = src.[i] in
      match c with
      | ' ' | '\t' | '\r' -> scan (i + 1)
      | '\n' ->
          incr line;
          scan (i + 1)
      | '/' when i + 1 < n && src.[i + 1] = '/' ->
          let rec skip j =
            if j >= n || src.[j] = '\n' then j else skip (j + 1)
          in
          scan (skip (i + 2))
      | '/' when i + 1 < n && src.[i + 1] = '*' ->
          let rec skip j =
            if j + 1 >= n then error !line "unterminated comment"
            else if src.[j] = '*' && src.[j + 1] = '/' then j + 2
            else begin
              if src.[j] = '\n' then incr line;
              skip (j + 1)
            end
          in
          scan (skip (i + 2))
      | '(' -> emit LPAREN i (i + 1); scan (i + 1)
      | ')' -> emit RPAREN i (i + 1); scan (i + 1)
      | '{' -> emit LBRACE i (i + 1); scan (i + 1)
      | '}' -> emit RBRACE i (i + 1); scan (i + 1)
      | '[' -> emit LBRACKET i (i + 1); scan (i + 1)
      | ']' -> emit RBRACKET i (i + 1); scan (i + 1)
      | ',' -> emit COMMA i (i + 1); scan (i + 1)
      | ';' -> emit SEMI i (i + 1); scan (i + 1)
      | ':' -> emit COLON i (i + 1); scan (i + 1)
      | '@' -> emit AT i (i + 1); scan (i + 1)
      | '+' -> emit PLUS i (i + 1); scan (i + 1)
      | '-' -> emit MINUS i (i + 1); scan (i + 1)
      | '*' -> emit STAR i (i + 1); scan (i + 1)
      | '/' -> emit SLASH i (i + 1); scan (i + 1)
      | '%' -> emit PERCENT i (i + 1); scan (i + 1)
      | '.' when i + 1 < n && src.[i + 1] = '.' ->
          emit DOTDOT i (i + 2);
          scan (i + 2)
      | '<' when i + 1 < n && src.[i + 1] = '=' -> emit LE i (i + 2); scan (i + 2)
      | '<' -> emit LT i (i + 1); scan (i + 1)
      | '>' when i + 1 < n && src.[i + 1] = '=' -> emit GE i (i + 2); scan (i + 2)
      | '>' -> emit GT i (i + 1); scan (i + 1)
      | '=' when i + 1 < n && src.[i + 1] = '=' -> emit EQ i (i + 2); scan (i + 2)
      | '=' -> emit ASSIGN i (i + 1); scan (i + 1)
      | '!' when i + 1 < n && src.[i + 1] = '=' -> emit NE i (i + 2); scan (i + 2)
      | '!' -> emit BANG i (i + 1); scan (i + 1)
      | '&' when i + 1 < n && src.[i + 1] = '&' -> emit ANDAND i (i + 2); scan (i + 2)
      | '|' when i + 1 < n && src.[i + 1] = '|' -> emit OROR i (i + 2); scan (i + 2)
      | c when is_digit c ->
          let j = ref i in
          while !j < n && is_digit src.[!j] do incr j done;
          (* An exponent may follow the integer digits directly ("1e-05")
             if actual exponent digits are present. *)
          let exponent_at k =
            k < n
            && (src.[k] = 'e' || src.[k] = 'E')
            &&
            let k' =
              if k + 1 < n && (src.[k + 1] = '+' || src.[k + 1] = '-') then k + 2
              else k + 1
            in
            k' < n && is_digit src.[k']
          in
          let scan_exponent () =
            if exponent_at !j then begin
              incr j;
              if !j < n && (src.[!j] = '+' || src.[!j] = '-') then incr j;
              while !j < n && is_digit src.[!j] do incr j done
            end
          in
          (* A '.' starts a fraction only if not the ".." range operator. *)
          if !j + 1 < n && src.[!j] = '.' && src.[!j + 1] <> '.' then begin
            incr j;
            while !j < n && is_digit src.[!j] do incr j done;
            scan_exponent ();
            emit (FLOAT (float_of_string (String.sub src i (!j - i)))) i !j
          end
          else if exponent_at !j then begin
            scan_exponent ();
            emit (FLOAT (float_of_string (String.sub src i (!j - i)))) i !j
          end
          else emit (INT (int_of_string (String.sub src i (!j - i)))) i !j;
          scan !j
      | c when is_ident_start c ->
          let j = ref i in
          while !j < n && is_ident_char src.[!j] do incr j done;
          emit (IDENT (String.sub src i (!j - i))) i !j;
          scan !j
      | c -> error !line "unexpected character %C" c
  in
  scan 0;
  List.rev !tokens

let tokenize src =
  List.map (fun (tok, line, _, _) -> (tok, line)) (tokenize_loc src)

let token_to_string = function
  | INT i -> string_of_int i
  | FLOAT f -> Printf.sprintf "%g" f
  | IDENT s -> s
  | LPAREN -> "(" | RPAREN -> ")"
  | LBRACE -> "{" | RBRACE -> "}"
  | LBRACKET -> "[" | RBRACKET -> "]"
  | COMMA -> "," | SEMI -> ";" | COLON -> ":" | AT -> "@"
  | ASSIGN -> "=" | DOTDOT -> ".."
  | PLUS -> "+" | MINUS -> "-" | STAR -> "*" | SLASH -> "/" | PERCENT -> "%"
  | LT -> "<" | LE -> "<=" | GT -> ">" | GE -> ">=" | EQ -> "==" | NE -> "!="
  | ANDAND -> "&&" | OROR -> "||" | BANG -> "!"
  | EOF -> "<eof>"
