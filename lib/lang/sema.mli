(** Semantic analysis: name resolution, arity checks, constant evaluation.

    [check] validates a parsed program and returns the symbol information
    that later phases (layout, interpretation, annotation) need. *)

exception Error of string

type info = {
  consts : (string * Value.t) list;  (** in declaration order *)
  shared : (string * int) list;  (** shared arrays: name, element count *)
  privates : (string * int) list;  (** private arrays: name, element count *)
  procs : (string * int) list;  (** procedures: name, arity *)
}

val reserved : string list
(** Names that cannot be declared or assigned: keywords, builtins
    ([pid], [nprocs]) and intrinsic functions. *)

val intrinsics : (string * int) list
(** Intrinsic functions and their arities: [min], [max], [abs], [sqrt],
    [floor], [float], [int], [noise], [sin], [cos]. *)

val const_eval : consts:(string * Value.t) list -> Ast.expr -> Value.t
(** Evaluate a compile-time-constant expression.
    @raise Error if the expression mentions a non-constant name. *)

val check : Ast.program -> info
(** Validate the program. @raise Error describing the first problem. *)

val check_proc : info -> Ast.proc -> unit
(** Re-check a single procedure body against an [info] produced by a prior
    [check] (declarations and procedure arities must be unchanged). Used by
    the delta engine to re-validate only edited procedures.
    @raise Error describing the first problem. *)

val is_shared : info -> string -> bool
val array_elems : info -> string -> int option
(** Element count of a shared or private array. *)
