module Iset = Set.Make (Int)

type node_misses = { reads : Iset.t; writes : Iset.t; faults : Iset.t }

let empty_misses =
  { reads = Iset.empty; writes = Iset.empty; faults = Iset.empty }

type t = {
  index : int;
  start_pc : int option;
  end_pc : int option;
  misses : Event.miss list;
  per_node : node_misses array;
}

let static_key e = (e.start_pc, e.end_pc)

let per_node_of_misses ~nodes misses =
  let arr = Array.make nodes empty_misses in
  List.iter
    (fun (m : Event.miss) ->
      if m.node < 0 || m.node >= nodes then
        failwith (Printf.sprintf "trace: node %d out of range" m.node);
      let nm = arr.(m.node) in
      arr.(m.node) <-
        (match m.kind with
        | Event.Read_miss -> { nm with reads = Iset.add m.addr nm.reads }
        | Event.Write_miss -> { nm with writes = Iset.add m.addr nm.writes }
        | Event.Write_fault -> { nm with faults = Iset.add m.addr nm.faults }))
    misses;
  arr

let split ~nodes records =
  let labels = ref [] in
  let epochs = ref [] in
  let current_misses = ref [] in
  let current_barriers = ref [] in
  let start_pc = ref None in
  let index = ref 0 in
  let close_epoch ~end_pc =
    let misses = List.rev !current_misses in
    epochs :=
      {
        index = !index;
        start_pc = !start_pc;
        end_pc;
        misses;
        per_node = per_node_of_misses ~nodes misses;
      }
      :: !epochs;
    incr index;
    current_misses := [];
    start_pc := end_pc
  in
  let flush_barriers () =
    match !current_barriers with
    | [] -> ()
    | (b : Event.barrier) :: rest ->
        let n = List.length !current_barriers in
        if n <> nodes then
          failwith
            (Printf.sprintf "trace: barrier group has %d records, expected %d"
               n nodes);
        List.iter
          (fun (b' : Event.barrier) ->
            if b'.vt <> b.vt || b'.bpc <> b.bpc then
              failwith "trace: inconsistent barrier group")
          rest;
        current_barriers := [];
        close_epoch ~end_pc:(Some b.bpc)
  in
  List.iter
    (fun r ->
      match r with
      | Event.Label { name; lo; hi } -> labels := (name, lo, hi) :: !labels
      | Event.Barrier b ->
          current_barriers := b :: !current_barriers;
          (* a group is complete once every node has arrived: close the
             epoch now, so back-to-back barriers (an epoch with no
             misses) form their own groups instead of merging *)
          if List.length !current_barriers = nodes then flush_barriers ()
      | Event.Miss m ->
          flush_barriers ();
          current_misses := m :: !current_misses)
    records;
  flush_barriers ();
  if !current_misses <> [] then close_epoch ~end_pc:None;
  (List.rev !epochs, List.rev !labels)

let touched_nodes e ~addr =
  List.filter_map
    (fun (m : Event.miss) ->
      if m.addr = addr then
        Some (m.node, m.kind = Event.Write_miss || m.kind = Event.Write_fault)
      else None)
    e.misses

let pcs_for_addr e ~node ~addr =
  List.sort_uniq compare
    (List.filter_map
       (fun (m : Event.miss) ->
         if m.node = node && m.addr = addr then Some m.pc else None)
       e.misses)
