(* A packed, growable miss-log buffer.

   The simulation engines append records as flat ints instead of consing a
   [Event.record list]: a miss is five words, a barrier four, a label four
   (with the array name interned in a side table). The [held] lock-set of
   a miss is interned once per lock-set change — the engines keep the
   current set's id in node state and pass it with every miss — so the
   per-event cost is bounds-check + five stores, with no allocation except
   on the amortised buffer doubling.

   Consumers never see the packed form: [to_records] decodes back to the
   [Event.record] list the epoch splitter, summaries and trace files
   already understand. *)

(* record tags *)
let tag_miss = 0
let tag_barrier = 1
let tag_label = 2

(* miss kind codes, in Event.miss_kind declaration order *)
let kind_read = 0
let kind_write = 1
let kind_fault = 2

let kind_to_event = function
  | 0 -> Event.Read_miss
  | 1 -> Event.Write_miss
  | _ -> Event.Write_fault

let kind_of_protocol = function
  | Memsys.Protocol.Read_miss -> kind_read
  | Memsys.Protocol.Write_miss -> kind_write
  | Memsys.Protocol.Write_fault -> kind_fault

type t = {
  mutable data : int array;
  mutable len : int;  (* words used *)
  mutable records : int;
  (* held lock-set interning; id 0 is always the empty set *)
  held_ids : (int list, int) Hashtbl.t;
  mutable held_sets : int list array;
  mutable n_held : int;
  (* label-name interning *)
  name_ids : (string, int) Hashtbl.t;
  mutable names : string array;
  mutable n_names : int;
}

let create () =
  let held_ids = Hashtbl.create 16 in
  Hashtbl.add held_ids [] 0;
  {
    data = Array.make 1024 0;
    len = 0;
    records = 0;
    held_ids;
    held_sets = Array.make 16 [];
    n_held = 1;
    name_ids = Hashtbl.create 16;
    names = Array.make 16 "";
    n_names = 0;
  }

let length t = t.records

let reserve t words =
  let need = t.len + words in
  if need > Array.length t.data then begin
    let grown = Array.make (max need (2 * Array.length t.data)) 0 in
    Array.blit t.data 0 grown 0 t.len;
    t.data <- grown
  end

let empty_held = 0

let intern_held t locks =
  match Hashtbl.find_opt t.held_ids locks with
  | Some id -> id
  | None ->
      let id = t.n_held in
      if id >= Array.length t.held_sets then begin
        let grown = Array.make (2 * Array.length t.held_sets) [] in
        Array.blit t.held_sets 0 grown 0 t.n_held;
        t.held_sets <- grown
      end;
      t.held_sets.(id) <- locks;
      t.n_held <- id + 1;
      Hashtbl.add t.held_ids locks id;
      id

let intern_name t name =
  match Hashtbl.find_opt t.name_ids name with
  | Some id -> id
  | None ->
      let id = t.n_names in
      if id >= Array.length t.names then begin
        let grown = Array.make (2 * Array.length t.names) "" in
        Array.blit t.names 0 grown 0 t.n_names;
        t.names <- grown
      end;
      t.names.(id) <- name;
      t.n_names <- id + 1;
      Hashtbl.add t.name_ids name id;
      id

let add_miss t ~node ~pc ~addr ~kind ~held =
  reserve t 5;
  let d = t.data and i = t.len in
  d.(i) <- (tag_miss lsl 2) lor kind;
  d.(i + 1) <- node;
  d.(i + 2) <- pc;
  d.(i + 3) <- addr;
  d.(i + 4) <- held;
  t.len <- i + 5;
  t.records <- t.records + 1

let add_barrier t ~node ~pc ~vt =
  reserve t 4;
  let d = t.data and i = t.len in
  d.(i) <- tag_barrier lsl 2;
  d.(i + 1) <- node;
  d.(i + 2) <- pc;
  d.(i + 3) <- vt;
  t.len <- i + 4;
  t.records <- t.records + 1

let add_label t ~name ~lo ~hi =
  let id = intern_name t name in
  reserve t 4;
  let d = t.data and i = t.len in
  d.(i) <- tag_label lsl 2;
  d.(i + 1) <- id;
  d.(i + 2) <- lo;
  d.(i + 3) <- hi;
  t.len <- i + 4;
  t.records <- t.records + 1

let iter_packed t ~miss ~barrier ~label =
  let d = t.data in
  let i = ref 0 in
  while !i < t.len do
    let w = d.(!i) in
    let tag = w lsr 2 in
    if tag = tag_miss then begin
      miss ~node:d.(!i + 1) ~pc:d.(!i + 2) ~addr:d.(!i + 3) ~kind:(w land 3)
        ~held:d.(!i + 4);
      i := !i + 5
    end
    else if tag = tag_barrier then begin
      barrier ~node:d.(!i + 1) ~pc:d.(!i + 2) ~vt:d.(!i + 3);
      i := !i + 4
    end
    else begin
      label ~name:t.names.(d.(!i + 1)) ~lo:d.(!i + 2) ~hi:d.(!i + 3);
      i := !i + 4
    end
  done

let n_held t = t.n_held

let held_list t id =
  if id < 0 || id >= t.n_held then
    invalid_arg (Printf.sprintf "Trace.Buf.held_list: unknown id %d" id)
  else t.held_sets.(id)

let kind_of_event = function
  | Event.Read_miss -> kind_read
  | Event.Write_miss -> kind_write
  | Event.Write_fault -> kind_fault

let of_records records =
  let t = create () in
  List.iter
    (function
      | Event.Miss m ->
          add_miss t ~node:m.node ~pc:m.pc ~addr:m.addr
            ~kind:(kind_of_event m.kind)
            ~held:(intern_held t m.held)
      | Event.Barrier b -> add_barrier t ~node:b.bnode ~pc:b.bpc ~vt:b.vt
      | Event.Label l -> add_label t ~name:l.name ~lo:l.lo ~hi:l.hi)
    records;
  t

let to_records t =
  let d = t.data in
  let rec decode i acc =
    if i >= t.len then List.rev acc
    else
      let tag = d.(i) lsr 2 in
      if tag = tag_miss then
        decode (i + 5)
          (Event.Miss
             {
               node = d.(i + 1);
               pc = d.(i + 2);
               addr = d.(i + 3);
               kind = kind_to_event (d.(i) land 3);
               held = t.held_sets.(d.(i + 4));
             }
          :: acc)
      else if tag = tag_barrier then
        decode (i + 4)
          (Event.Barrier { bnode = d.(i + 1); bpc = d.(i + 2); vt = d.(i + 3) }
          :: acc)
      else
        decode (i + 4)
          (Event.Label
             { name = t.names.(d.(i + 1)); lo = d.(i + 2); hi = d.(i + 3) }
          :: acc)
  in
  decode 0 []
