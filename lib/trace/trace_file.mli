(** Serialisation of traces to a line-oriented text format.

    One record per line:
    - ["M node pc addr kind"] — a miss ([kind] is [R], [W] or [F]);
    - ["B node pc vt"] — a barrier arrival;
    - ["L name lo hi"] — a labelled shared region;
    - lines beginning with [#] are comments and are ignored.

    Traces priced by a non-default coherence backend are stamped with a
    leading ["# protocol <id>"] comment (pass [?protocol] when writing);
    {!protocol_of_string} recovers it. *)

val to_buffer : ?protocol:Memsys.Protocol_id.t -> Buffer.t -> Event.record list -> unit
val to_string : ?protocol:Memsys.Protocol_id.t -> Event.record list -> string

val save : ?protocol:Memsys.Protocol_id.t -> string -> Event.record list -> unit
(** [save path records] writes the trace to [path]. *)

val of_string : string -> Event.record list
(** Parse a trace. @raise Failure on a malformed line, with its number. *)

val protocol_of_string : string -> Memsys.Protocol_id.t
(** The backend a serialized trace was priced under: the first
    ["# protocol <id>"] stamp, or {!Memsys.Protocol_id.default} when
    unstamped (every pre-seam trace). *)

val load : string -> Event.record list
(** [load path] parses the trace stored at [path]. *)
