(** Packed, growable miss-log buffer for the simulation engines.

    Appending a record writes a handful of ints into a flat growable
    array — no list cons, no copy of the held lock list — so trace
    collection stays off the simulation's allocation profile. [held]
    lock-sets and label names are interned: the engines call
    {!intern_held} only when a node's lock-set changes (lock/unlock) and
    pass the resulting id with every miss in between.

    The packed form is private to the writer; {!to_records} decodes the
    buffer back to the {!Event.record} list that {!Epoch}, {!Summary} and
    {!Trace_file} consume, preserving append order exactly. *)

type t

val create : unit -> t

val empty_held : int
(** The interned id of the empty lock-set (a node holding no locks). *)

val intern_held : t -> int list -> int
(** Intern a held lock-set (innermost lock first) and return its id.
    Stable: interning the same list again returns the same id. *)

val kind_read : int
val kind_write : int
val kind_fault : int

val kind_of_protocol : Memsys.Protocol.miss_kind -> int

val add_miss : t -> node:int -> pc:int -> addr:int -> kind:int -> held:int -> unit
(** [kind] is one of {!kind_read} / {!kind_write} / {!kind_fault}; [held]
    an id from {!intern_held}. *)

val add_barrier : t -> node:int -> pc:int -> vt:int -> unit
val add_label : t -> name:string -> lo:int -> hi:int -> unit

val length : t -> int
(** Number of records appended so far. *)

val to_records : t -> Event.record list
(** Decode to the classic record list, in append order. *)

(** {2 Streaming consumers}

    The race detector ({!Races}) folds over the packed words directly —
    one visitor call per record, no [Event.record] allocation, lock-sets
    passed as interned ids. *)

val iter_packed :
  t ->
  miss:(node:int -> pc:int -> addr:int -> kind:int -> held:int -> unit) ->
  barrier:(node:int -> pc:int -> vt:int -> unit) ->
  label:(name:string -> lo:int -> hi:int -> unit) ->
  unit
(** Visit every record in append order in its packed form. [kind] is one
    of {!kind_read} / {!kind_write} / {!kind_fault}; [held] an interned
    lock-set id valid with {!held_list}. *)

val n_held : t -> int
(** Number of distinct interned lock-sets (ids are [0 .. n_held - 1]). *)

val held_list : t -> int -> int list
(** Decode an interned lock-set id back to its lock list (innermost
    first). @raise Invalid_argument on an unknown id. *)

val of_records : Event.record list -> t
(** Re-pack a decoded record list (e.g. a loaded trace file), interning
    lock-sets and label names afresh. [to_records (of_records rs) = rs]. *)
