let to_buffer ?protocol buf records =
  (match protocol with
  | Some p when p <> Memsys.Protocol_id.default ->
      (* Stamp non-default backends so a saved trace identifies the
         protocol that priced it; the parser skips [#] lines, so stamped
         traces stay readable by older tools. *)
      Buffer.add_string buf
        (Printf.sprintf "# protocol %s\n" (Memsys.Protocol_id.to_string p))
  | _ -> ());
  List.iter
    (fun r -> Buffer.add_string buf (Format.asprintf "%a@." Event.pp r))
    records

let to_string ?protocol records =
  let buf = Buffer.create 4096 in
  to_buffer ?protocol buf records;
  Buffer.contents buf

let save ?protocol path records =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string ?protocol records))

let protocol_of_string s =
  let rec scan = function
    | [] -> Memsys.Protocol_id.default
    | line :: rest -> (
        match String.split_on_char ' ' (String.trim line) with
        | [ "#"; "protocol"; p ] ->
            Option.value ~default:Memsys.Protocol_id.default
              (Memsys.Protocol_id.of_string p)
        | _ -> scan rest)
  in
  scan (String.split_on_char '\n' s)

let kind_of_string lineno = function
  | "R" -> Event.Read_miss
  | "W" -> Event.Write_miss
  | "F" -> Event.Write_fault
  | s -> failwith (Printf.sprintf "trace line %d: bad miss kind %S" lineno s)

let parse_line lineno line =
  match String.split_on_char ' ' (String.trim line) with
  | [ "" ] -> None
  | s :: _ when String.length s > 0 && s.[0] = '#' -> None
  | "M" :: node :: pc :: addr :: kind :: rest ->
      let held =
        match rest with
        | [] -> []
        | [ locks ] when String.length locks > 1 && locks.[0] = 'L' ->
            String.split_on_char ','
              (String.sub locks 1 (String.length locks - 1))
            |> List.map int_of_string
        | _ ->
            failwith
              (Printf.sprintf "trace line %d: malformed miss record" lineno)
      in
      Some
        (Event.Miss
           {
             node = int_of_string node;
             pc = int_of_string pc;
             addr = int_of_string addr;
             kind = kind_of_string lineno kind;
             held;
           })
  | [ "B"; node; pc; vt ] ->
      Some
        (Event.Barrier
           {
             bnode = int_of_string node;
             bpc = int_of_string pc;
             vt = int_of_string vt;
           })
  | [ "L"; name; lo; hi ] ->
      Some (Event.Label { name; lo = int_of_string lo; hi = int_of_string hi })
  | _ -> failwith (Printf.sprintf "trace line %d: malformed record %S" lineno line)

let of_string s =
  let lines = String.split_on_char '\n' s in
  let rec loop lineno acc = function
    | [] -> List.rev acc
    | line :: rest -> (
        match
          try parse_line lineno line
          with Failure msg ->
            (* int_of_string and friends fail without positional context;
               keep messages that already carry it, wrap the rest. *)
            let msg =
              if String.length msg >= 10 && String.sub msg 0 10 = "trace line"
              then msg
              else
                Printf.sprintf "trace line %d: %s in %S" lineno msg
                  (String.trim line)
            in
            failwith msg
        with
        | None -> loop (lineno + 1) acc rest
        | Some r -> loop (lineno + 1) (r :: acc) rest)
  in
  loop 1 [] lines

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let n = in_channel_length ic in
      of_string (really_input_string ic n))
