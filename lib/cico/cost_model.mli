(** The CICO cost model (Section 2).

    The model attributes a program's shared-memory communication cost to
    its check-out and check-in annotations: each checked-out cache block is
    one unit of communication, and the closed-form expressions below are
    the paper's worked Jacobi (Section 2.1) and matrix-multiply
    (Section 5) examples. [communication_cycles] converts block counts
    into cycles using a {!Memsys.Network.costs} table, which is how the
    model "attributes costs to these annotations". *)

type jacobi_params = {
  n : int;  (** matrix is n x n *)
  p : int;  (** processor grid is p x p (P² processors) *)
  b : int;  (** matrix elements per cache block *)
  t : int;  (** number of time steps *)
}

val jacobi_blocks_cache_fits : jacobi_params -> float
(** Total blocks checked out by all processors when each processor's
    sub-matrix fits in its cache: [2NPT(1+b)/b + N²/b]. *)

val jacobi_blocks_column_fits : jacobi_params -> float
(** Total when only individual columns fit: [(2NP(1+b)/b + N²/b) · T]. *)

val jacobi_boundary_blocks_per_step : jacobi_params -> float
(** Blocks checked out per time step for boundary rows and columns by all
    processors: [2NP(1+b)/b]. *)

val jacobi_matrix_blocks : jacobi_params -> float
(** Blocks for the matrix itself: [N²/b]. *)

val jacobi_per_processor_column_checkouts :
  jacobi_params -> cache_fits:bool -> float
(** Per-processor check-outs per matrix column: [N/(bP)] when the block
    fits in cache, [NT/(bP)] otherwise — the comparison that closes
    Section 2.1. *)

type matmul_params = {
  mm_n : int;  (** matrices are n x n *)
  mm_p : int;  (** p = sqrt(number of processors) *)
}

val matmul_c_checkouts_original : matmul_params -> float
(** Check-outs of result-matrix elements in the Section 4.4 algorithm:
    [N³] (every inner-loop iteration checks C out and back in). *)

val matmul_c_checkouts_restructured : matmul_params -> float
(** After the Section 5 restructuring: [N²P/2]. *)

val matmul_c_raced_checkouts_restructured : matmul_params -> float
(** Of those, the lock-protected racy ones: [N²P/4]. *)

val communication_cycles :
  costs:Memsys.Network.costs ->
  check_out_blocks:int -> check_in_blocks:int -> upgrades_avoided:int ->
  int
(** Cycle-level cost the model attributes to a given annotation count:
    check-outs pay a 2-hop fetch, check-ins pay the flush, and each
    avoided upgrade credits the write-fault cost. May be negative when the
    annotations save more than they cost. *)

val measured_checkouts : Memsys.Stats.t -> int
(** Explicit check-outs (X + S) a simulation actually performed —
    comparable against the closed forms above. *)

val closed_forms :
  jacobi:jacobi_params -> matmul:matmul_params -> (string * float) list
(** Every closed form above, evaluated and labelled. Block counts are
    non-negative for any legal parameters — the fuzzer's cost-model
    sanity oracle checks exactly that.
    @raise Invalid_argument on non-positive or non-divisible sizes. *)
