type jacobi_params = { n : int; p : int; b : int; t : int }

let check_jacobi { n; p; b; t } =
  if n <= 0 || p <= 0 || b <= 0 || t <= 0 then
    invalid_arg "Cost_model: Jacobi parameters must be positive";
  if n mod p <> 0 then
    invalid_arg "Cost_model: N must be a multiple of P"

let jacobi_boundary_blocks_per_step jp =
  check_jacobi jp;
  let n = float_of_int jp.n
  and p = float_of_int jp.p
  and b = float_of_int jp.b in
  2.0 *. n *. p *. (1.0 +. b) /. b

let jacobi_matrix_blocks jp =
  check_jacobi jp;
  let n = float_of_int jp.n and b = float_of_int jp.b in
  n *. n /. b

let jacobi_blocks_cache_fits jp =
  check_jacobi jp;
  (jacobi_boundary_blocks_per_step jp *. float_of_int jp.t)
  +. jacobi_matrix_blocks jp

let jacobi_blocks_column_fits jp =
  check_jacobi jp;
  (jacobi_boundary_blocks_per_step jp +. jacobi_matrix_blocks jp)
  *. float_of_int jp.t

let jacobi_per_processor_column_checkouts jp ~cache_fits =
  check_jacobi jp;
  let n = float_of_int jp.n
  and p = float_of_int jp.p
  and b = float_of_int jp.b
  and t = float_of_int jp.t in
  if cache_fits then n /. (b *. p) else n *. t /. (b *. p)

type matmul_params = { mm_n : int; mm_p : int }

let check_matmul { mm_n; mm_p } =
  if mm_n <= 0 || mm_p <= 0 then
    invalid_arg "Cost_model: MatMul parameters must be positive";
  if mm_n mod mm_p <> 0 then
    invalid_arg "Cost_model: N must be a multiple of P"

let matmul_c_checkouts_original mp =
  check_matmul mp;
  let n = float_of_int mp.mm_n in
  n *. n *. n

let matmul_c_checkouts_restructured mp =
  check_matmul mp;
  let n = float_of_int mp.mm_n and p = float_of_int mp.mm_p in
  n *. n *. p /. 2.0

let matmul_c_raced_checkouts_restructured mp =
  check_matmul mp;
  let n = float_of_int mp.mm_n and p = float_of_int mp.mm_p in
  n *. n *. p /. 4.0

let communication_cycles ~costs ~check_out_blocks ~check_in_blocks
    ~upgrades_avoided =
  let open Memsys.Network in
  (check_out_blocks * (costs.check_out_overhead + costs.miss_2hop))
  + (check_in_blocks * costs.check_in_cost)
  - (upgrades_avoided * costs.upgrade)

let measured_checkouts (s : Memsys.Stats.t) =
  s.Memsys.Stats.check_outs_x + s.Memsys.Stats.check_outs_s

let closed_forms ~jacobi ~matmul =
  [
    ("jacobi boundary blocks/step", jacobi_boundary_blocks_per_step jacobi);
    ("jacobi matrix blocks", jacobi_matrix_blocks jacobi);
    ("jacobi total, cache fits", jacobi_blocks_cache_fits jacobi);
    ("jacobi total, column fits", jacobi_blocks_column_fits jacobi);
    ( "jacobi per-proc column check-outs, cache fits",
      jacobi_per_processor_column_checkouts jacobi ~cache_fits:true );
    ( "jacobi per-proc column check-outs, column fits",
      jacobi_per_processor_column_checkouts jacobi ~cache_fits:false );
    ("matmul C check-outs, original", matmul_c_checkouts_original matmul);
    ("matmul C check-outs, restructured", matmul_c_checkouts_restructured matmul);
    ( "matmul raced C check-outs, restructured",
      matmul_c_raced_checkouts_restructured matmul );
  ]
