(** Span edits and AST splicing.

    An edit is a byte-span replacement against a base source text. The
    splicer maps the span onto the base program's top-level items using
    the lexer's token offsets ({!Lang.Lexer.tokenize_loc}): an edit that
    falls strictly inside a single procedure re-parses only that
    procedure's slice and substitutes it into the cached AST; anything
    wider (a declaration, a span crossing an item boundary, an edit that
    changes the item structure) falls back to a full re-parse. Either way
    the result is byte-for-byte the program a full parse of the edited
    source would produce — sids included — which the qcheck property
    [splice(src, span, text) = parse(apply_edit(src, span, text))]
    enforces. *)

type span = { start : int; len : int }
(** A byte range [\[start, start+len)] of the base source. [len = 0] is an
    insertion point. *)

val apply_edit : string -> span -> string -> string
(** [apply_edit src span text] replaces the spanned bytes with [text].
    @raise Invalid_argument if the span is out of bounds. *)

val diff_span : string -> string -> (span * string) option
(** [diff_span base edited] is the minimal single-span edit turning [base]
    into [edited] (longest common prefix/suffix), or [None] if the strings
    are equal. *)

type kind = Const | Shared | Private | Proc

type item = { ikind : kind; iname : string; istart : int; istop : int }
(** A top-level item of the source: a declaration (ending at its [;]) or a
    procedure (ending at its closing brace). Offsets are byte spans. *)

val items : string -> item list
(** Top-level items in textual order.
    @raise Lang.Lexer.Error on an unlexable source. *)

val int_literals : string -> (span * int) list
(** Byte spans of the integer literals inside procedure bodies, in textual
    order — the single-token edit candidates used by the fuzzer, the load
    generator and the benchmark harness. *)

val splice :
  base:string ->
  base_ast:Lang.Ast.program ->
  span ->
  string ->
  Lang.Ast.program * [ `Incremental of string | `Full ]
(** [splice ~base ~base_ast span text] parses the edited source,
    incrementally when the edit stays inside one procedure ([`Incremental
    name] re-parses only that procedure's slice and renumbers), and with a
    full {!Lang.Parser.parse} otherwise. [base_ast] must be the parse of
    [base]. Raises whatever a full parse of the edited source would raise
    when the edited text is invalid. *)
