(** The incremental re-annotation engine.

    [base_of] runs (or recalls from the {!Dag}) the full pipeline for a
    source text — parse, sema, trace-mode simulation, epoch assimilation,
    placement — keeping every intermediate artifact. [annotate_delta]
    then serves a span edit against that base:

    - digest-identical edit → the cached result, untouched ([Noop]);
    - edit provably trace-preserving ({!Taint}) → splice the edited
      procedure into the cached AST ({!Splice}), re-check only changed
      procedures (digest-keyed [Sema_ok] nodes), and re-apply the cached
      placement plan to the edited AST ([Plan_reuse]) — microseconds
      instead of a full simulation, byte-identical output by
      construction;
    - anything else → full re-annotation of the edited source ([Resim]),
      which also installs a fresh base so subsequent edits are warm
      again.

    All outputs are byte-identical to a from-scratch
    {!Cachier.Annotate.annotate_program} of the edited source (enforced
    by the delta fuzzer oracle and the delta-smoke CI step). *)

type reuse =
  | Noop  (** digest-identical edit: pure cache hit *)
  | Plan_reuse  (** trace proven unchanged; cached plan re-applied *)
  | Resim of string  (** fallback with the prover's reason *)

type outcome = {
  result : Cachier.Annotate.result;
  reuse : reuse;
  artifact : string;  (** hex digest of the edited source *)
  edited_source : string;
}

val source_digest : string -> string
(** Hex digest of a source text — the service's artifact id. *)

val base_of :
  dag:Dag.t ->
  machine:Wwt.Machine.t ->
  options:Cachier.Placement.options ->
  ?engine:Wwt.Run.engine ->
  string ->
  Dag.base
(** Full pipeline for a source, cached in the DAG. Raises like the cold
    path on invalid programs. *)

val annotate_delta :
  dag:Dag.t ->
  machine:Wwt.Machine.t ->
  options:Cachier.Placement.options ->
  ?engine:Wwt.Run.engine ->
  base:string ->
  Splice.span ->
  string ->
  outcome
(** [annotate_delta ~base span text] annotates [apply_edit base span
    text]. Raises like the cold path when the edited program is
    invalid. *)

val prove_simulate :
  base:Lang.Ast.program -> edited:Lang.Ast.program -> (unit, string) result
(** Strict variant for the [simulate] payload (which includes program
    output): [Ok ()] only when the whole outcome — output lines, time,
    memory statistics, trace — is provably identical to the base run. *)

val reuse_to_string : reuse -> string

val register_source : Dag.t -> string -> string
(** Remember a source under its digest; returns the digest. *)

val find_source : Dag.t -> string -> string option
