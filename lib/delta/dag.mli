(** Content-addressed artifact DAG for the delta engine.

    Nodes are keyed ["kind|digest…"] strings and hold pipeline artifacts:
    parsed programs, per-procedure sema verdicts, and full {!base}
    pipeline snapshots (trace, epoch slices, placement plan, annotate
    result). An LRU bound (entry count, [CACHIER_DELTA_DAG] env override,
    default 128) keeps the resident set small; per-kind hit/miss counters
    feed the service metrics. All operations are thread-safe. *)

type base = {
  source : string;
  program : Lang.Ast.program;  (** parse of [source], original sids *)
  stripped : Lang.Ast.program;  (** annotation-stripped, same sids *)
  info : Lang.Sema.info;
  records : Trace.Event.record list;  (** the collected miss trace *)
  epochs : Trace.Event.record list list;
      (** [records] sliced per epoch, in epoch order *)
  layout : Lang.Label.t;
  plan : Cachier.Placement.plan;
  result : Cachier.Annotate.result;
}

type node =
  | Source of string
  | Parsed of Lang.Ast.program
  | Sema_ok  (** the keyed procedure digest checked clean *)
  | Base of base

type t

val create : ?capacity:int -> unit -> t
(** Default capacity: [CACHIER_DELTA_DAG] or 128 entries. *)

val find : t -> string -> node option
(** LRU-bumping lookup; counts a hit or miss for the key's kind (the
    prefix before the first ['|']). *)

val add : t -> string -> node -> unit

val entries : t -> int

val stats : t -> (string * (int * int)) list
(** Per-kind [(hits, misses)] counters, sorted by kind. *)
