type span = { start : int; len : int }

let apply_edit src { start; len } text =
  let n = String.length src in
  if start < 0 || len < 0 || start + len > n then
    invalid_arg "Delta.Splice.apply_edit: span out of bounds";
  String.sub src 0 start ^ text ^ String.sub src (start + len) (n - start - len)

let diff_span base edited =
  if String.equal base edited then None
  else begin
    let nb = String.length base and ne = String.length edited in
    let p = ref 0 in
    while !p < nb && !p < ne && base.[!p] = edited.[!p] do incr p done;
    let s = ref 0 in
    while
      !s < nb - !p && !s < ne - !p
      && base.[nb - 1 - !s] = edited.[ne - 1 - !s]
    do
      incr s
    done;
    let span = { start = !p; len = nb - !p - !s } in
    Some (span, String.sub edited !p (ne - !p - !s))
  end

type kind = Const | Shared | Private | Proc

type item = { ikind : kind; iname : string; istart : int; istop : int }

let items src =
  let toks = Array.of_list (Lang.Lexer.tokenize_loc src) in
  let n = Array.length toks in
  let malformed () = failwith "Delta.Splice.items: malformed source" in
  let name_at i =
    if i >= n then malformed ()
    else match toks.(i) with Lang.Lexer.IDENT s, _, _, _ -> s | _ -> malformed ()
  in
  let rec find_semi i =
    if i >= n then malformed ()
    else match toks.(i) with Lang.Lexer.SEMI, _, _, _ -> i | _ -> find_semi (i + 1)
  in
  let rec find_close i depth =
    if i >= n then malformed ()
    else
      match toks.(i) with
      | Lang.Lexer.LBRACE, _, _, _ -> find_close (i + 1) (depth + 1)
      | Lang.Lexer.RBRACE, _, _, _ ->
          if depth = 1 then i else find_close (i + 1) (depth - 1)
      | _ -> find_close (i + 1) depth
  in
  let rec scan i acc =
    if i >= n then List.rev acc
    else
      match toks.(i) with
      | Lang.Lexer.EOF, _, _, _ -> List.rev acc
      | Lang.Lexer.IDENT kw, _, istart, _
        when kw = "const" || kw = "shared" || kw = "private" ->
          let j = find_semi (i + 1) in
          let _, _, _, istop = toks.(j) in
          let ikind =
            match kw with
            | "const" -> Const
            | "shared" -> Shared
            | _ -> Private
          in
          scan (j + 1) ({ ikind; iname = name_at (i + 1); istart; istop } :: acc)
      | Lang.Lexer.IDENT "proc", _, istart, _ ->
          let j = find_close (i + 1) 0 in
          let _, _, _, istop = toks.(j) in
          scan (j + 1)
            ({ ikind = Proc; iname = name_at (i + 1); istart; istop } :: acc)
      | _ -> malformed ()
  in
  scan 0 []

let int_literals src =
  let proc_ranges =
    List.filter_map
      (fun it -> if it.ikind = Proc then Some (it.istart, it.istop) else None)
      (items src)
  in
  List.filter_map
    (fun (tok, _, start, stop) ->
      match tok with
      | Lang.Lexer.INT v
        when List.exists (fun (a, b) -> a <= start && stop <= b) proc_ranges ->
          Some ({ start; len = stop - start }, v)
      | _ -> None)
    (Lang.Lexer.tokenize_loc src)

let splice ~base ~base_ast span text =
  let edited = apply_edit base span text in
  let full () = (Lang.Parser.parse edited, `Full) in
  let target =
    (* The incremental path needs the edit fully inside one procedure item:
       everything before the item is then byte-identical in the edited
       source, so the item's slice can be re-parsed in isolation. *)
    try
      let s = span.start and e = span.start + span.len in
      let contained it =
        if span.len = 0 then it.istart < s && s < it.istop
        else it.istart <= s && e <= it.istop
      in
      match List.filter contained (items base) with
      | [ ({ ikind = Proc; _ } as it) ] ->
          let k = ref 0 and found = ref None in
          List.iter
            (fun it' ->
              if it'.ikind = Proc then begin
                if it'.istart = it.istart then found := Some !k;
                incr k
              end)
            (items base);
          Option.map (fun k -> (it, k)) !found
      | _ -> None
    with _ -> None
  in
  match target with
  | None -> full ()
  | Some (it, k) -> (
      let delta = String.length text - span.len in
      let slice = String.sub edited it.istart (it.istop + delta - it.istart) in
      let sub =
        try
          let p = Lang.Parser.parse slice in
          match (p.Lang.Ast.decls, p.Lang.Ast.procs) with
          | [], [ pr ] -> Some pr
          | _ -> None
        with _ -> None
      in
      match sub with
      | None -> full ()
      | Some pr ->
          let procs =
            List.mapi
              (fun i p0 -> if i = k then pr else p0)
              base_ast.Lang.Ast.procs
          in
          ( Lang.Ast.renumber { base_ast with Lang.Ast.procs },
            `Incremental pr.Lang.Ast.pname ))
