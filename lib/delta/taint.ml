open Lang

type verdict =
  | Preserved of { output_changed : bool }
  | Broken of string

exception Fail of string

let fail fmt = Format.kasprintf (fun s -> raise (Fail s)) fmt

let is_intrinsic name = List.mem_assoc name Sema.intrinsics

let compare_and_prove ~(base : Ast.program) ~(edited : Ast.program) =
  let tainted : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  let ret_tainted : (string, unit) Hashtbl.t = Hashtbl.create 4 in
  let output_changed = ref false in
  let changed = ref false in
  let taint name =
    if not (Hashtbl.mem tainted name) then begin
      Hashtbl.replace tainted name ();
      changed := true
    end
  in
  let is_tainted name = Hashtbl.mem tainted name in
  let params_of name =
    match List.find_opt (fun (p : Ast.proc) -> p.pname = name) edited.procs with
    | Some p -> p.params
    | None -> fail "call of unknown procedure %S" name
  in
  let taint_param name k =
    match List.nth_opt (params_of name) k with
    | Some p -> taint p
    | None -> fail "arity mismatch calling %S" name
  in
  try
    (* Lockstep structural compare. [on_diff] says what a changed literal
       leaf at this position means; strict positions fail outright. *)
    let strict why () = fail "%s" why in
    let rec cmp_expr ~on_diff b e =
      match (b, e) with
      | Ast.Eint x, Ast.Eint y -> if x <> y then on_diff ()
      | Ast.Efloat x, Ast.Efloat y -> if x <> y then on_diff ()
      | Ast.Evar a, Ast.Evar a' -> if a <> a' then fail "variable renamed"
      | Ast.Eindex (n1, i1), Ast.Eindex (n2, i2) ->
          if n1 <> n2 then fail "indexed array changed";
          cmp_expr ~on_diff:(strict "edit inside an array subscript") i1 i2
      | Ast.Ebinop (op1, a1, b1), Ast.Ebinop (op2, a2, b2) -> (
          if op1 <> op2 then fail "operator changed";
          match op1 with
          | Ast.And | Ast.Or ->
              (* The left operand decides whether the right one is
                 evaluated at all — a value change there changes costs. *)
              cmp_expr ~on_diff:(strict "edit in a short-circuit operand")
                a1 a2;
              cmp_expr ~on_diff b1 b2
          | Ast.Div | Ast.Mod ->
              cmp_expr ~on_diff a1 a2;
              cmp_expr ~on_diff:(strict "edit in a divisor") b1 b2
          | _ ->
              cmp_expr ~on_diff a1 a2;
              cmp_expr ~on_diff b1 b2)
      | Ast.Eunop (o1, a1), Ast.Eunop (o2, a2) ->
          if o1 <> o2 then fail "operator changed";
          cmp_expr ~on_diff a1 a2
      | Ast.Ecall (n1, args1), Ast.Ecall (n2, args2) ->
          if n1 <> n2 then fail "called procedure changed";
          if List.length args1 <> List.length args2 then
            fail "call arity changed";
          if is_intrinsic n1 then
            List.iter2 (cmp_expr ~on_diff) args1 args2
          else
            List.iteri
              (fun k (a1, a2) ->
                cmp_expr ~on_diff:(fun () -> taint_param n1 k) a1 a2)
              (List.combine args1 args2)
      | _ -> fail "expression shape changed"
    in
    let cmp_lvalue lv1 lv2 =
      match (lv1, lv2) with
      | Ast.Lvar a, Ast.Lvar a' -> if a <> a' then fail "assignment target changed"
      | Ast.Lindex (n1, i1), Ast.Lindex (n2, i2) ->
          if n1 <> n2 then fail "assignment target changed";
          cmp_expr ~on_diff:(strict "edit inside an assignment subscript") i1 i2
      | _ -> fail "assignment target changed"
    in
    let rec cmp_stmt pname (s1 : Ast.stmt) (s2 : Ast.stmt) =
      if s1.sid <> s2.sid then fail "statement ids diverge";
      match (s1.node, s2.node) with
      | Ast.Sassign (lv1, e1), Ast.Sassign (lv2, e2) ->
          cmp_lvalue lv1 lv2;
          let target =
            match lv1 with Ast.Lvar n -> n | Ast.Lindex (n, _) -> n
          in
          cmp_expr ~on_diff:(fun () -> taint target) e1 e2
      | Ast.Sif (c1, t1, f1), Ast.Sif (c2, t2, f2) ->
          cmp_expr ~on_diff:(strict "edit in a branch condition") c1 c2;
          cmp_block pname t1 t2;
          cmp_block pname f1 f2
      | Ast.Sfor f1, Ast.Sfor f2 ->
          if f1.var <> f2.var then fail "loop variable changed";
          let strict_loop = strict "edit in a loop bound" in
          cmp_expr ~on_diff:strict_loop f1.from_ f2.from_;
          cmp_expr ~on_diff:strict_loop f1.to_ f2.to_;
          cmp_expr ~on_diff:strict_loop f1.step f2.step;
          cmp_block pname f1.body f2.body
      | Ast.Swhile (c1, b1), Ast.Swhile (c2, b2) ->
          cmp_expr ~on_diff:(strict "edit in a loop condition") c1 c2;
          cmp_block pname b1 b2
      | Ast.Sbarrier, Ast.Sbarrier -> ()
      | Ast.Scall (n1, args1), Ast.Scall (n2, args2) ->
          if n1 <> n2 then fail "called procedure changed";
          if List.length args1 <> List.length args2 then
            fail "call arity changed";
          if is_intrinsic n1 then
            (* statement position: the value is discarded *)
            List.iter2 (cmp_expr ~on_diff:(fun () -> ())) args1 args2
          else
            List.iteri
              (fun k (a1, a2) ->
                cmp_expr ~on_diff:(fun () -> taint_param n1 k) a1 a2)
              (List.combine args1 args2)
      | Ast.Sreturn (Some e1), Ast.Sreturn (Some e2) ->
          cmp_expr
            ~on_diff:(fun () ->
              if not (Hashtbl.mem ret_tainted pname) then begin
                Hashtbl.replace ret_tainted pname ();
                changed := true
              end)
            e1 e2
      | Ast.Sreturn None, Ast.Sreturn None -> ()
      | Ast.Slock e1, Ast.Slock e2 ->
          cmp_expr ~on_diff:(strict "edit in a lock argument") e1 e2
      | Ast.Sunlock e1, Ast.Sunlock e2 ->
          cmp_expr ~on_diff:(strict "edit in an unlock argument") e1 e2
      | Ast.Sannot _, Ast.Sannot _ | Ast.Sannot_table _, Ast.Sannot_table _ ->
          if s1.node <> s2.node then fail "edit in an annotation"
      | Ast.Sprint args1, Ast.Sprint args2 ->
          if List.length args1 <> List.length args2 then
            fail "print arity changed";
          List.iter2
            (cmp_expr ~on_diff:(fun () -> output_changed := true))
            args1 args2
      | _ -> fail "statement kind changed"
    and cmp_block pname b1 b2 =
      if List.length b1 <> List.length b2 then fail "statement count changed";
      List.iter2 (cmp_stmt pname) b1 b2
    in
    if base.decls <> edited.decls then fail "declarations differ";
    if List.length base.procs <> List.length edited.procs then
      fail "procedure count changed";
    List.iter2
      (fun (p1 : Ast.proc) (p2 : Ast.proc) ->
        if p1.pname <> p2.pname then fail "procedure renamed";
        if p1.params <> p2.params then fail "parameters changed";
        cmp_block p1.pname p1.body p2.body)
      base.procs edited.procs;

    (* Taint propagation to a fixpoint over the edited program. *)
    let rec visit_expr e =
      match e with
      | Ast.Eint _ | Ast.Efloat _ -> false
      | Ast.Evar n -> is_tainted n
      | Ast.Eindex (n, i) ->
          let ti = visit_expr i in
          is_tainted n || ti
      | Ast.Ebinop (_, a, b) ->
          let ta = visit_expr a in
          let tb = visit_expr b in
          ta || tb
      | Ast.Eunop (_, a) -> visit_expr a
      | Ast.Ecall (n, args) ->
          let ts = List.map visit_expr args in
          if is_intrinsic n then List.exists Fun.id ts
          else begin
            List.iteri (fun k t -> if t then taint_param n k) ts;
            Hashtbl.mem ret_tainted n
          end
    in
    let rec visit_stmt pname (s : Ast.stmt) =
      match s.node with
      | Ast.Sassign (Ast.Lvar x, e) -> if visit_expr e then taint x
      | Ast.Sassign (Ast.Lindex (a, i), e) ->
          ignore (visit_expr i : bool);
          if visit_expr e then taint a
      | Ast.Sif (c, t, f) ->
          ignore (visit_expr c : bool);
          List.iter (visit_stmt pname) t;
          List.iter (visit_stmt pname) f
      | Ast.Sfor { from_; to_; step; body; _ } ->
          ignore (visit_expr from_ : bool);
          ignore (visit_expr to_ : bool);
          ignore (visit_expr step : bool);
          List.iter (visit_stmt pname) body
      | Ast.Swhile (c, b) ->
          ignore (visit_expr c : bool);
          List.iter (visit_stmt pname) b
      | Ast.Sbarrier | Ast.Sannot _ | Ast.Sannot_table _ -> ()
      | Ast.Scall (n, args) -> ignore (visit_expr (Ast.Ecall (n, args)) : bool)
      | Ast.Sreturn (Some e) ->
          if visit_expr e && not (Hashtbl.mem ret_tainted pname) then begin
            Hashtbl.replace ret_tainted pname ();
            changed := true
          end
      | Ast.Sreturn None -> ()
      | Ast.Slock e | Ast.Sunlock e -> ignore (visit_expr e : bool)
      | Ast.Sprint args ->
          List.iter (fun e -> ignore (visit_expr e : bool)) args
    in
    changed := true;
    while !changed do
      changed := false;
      List.iter
        (fun (p : Ast.proc) -> List.iter (visit_stmt p.pname) p.body)
        edited.procs
    done;

    (* Soundness checks: taint must stay invisible to the memory system
       and to control flow. *)
    let expr_tainted = visit_expr in
    let rec check_expr e =
      match e with
      | Ast.Eint _ | Ast.Efloat _ | Ast.Evar _ -> ()
      | Ast.Eindex (_, i) ->
          if expr_tainted i then fail "tainted array subscript";
          check_expr i
      | Ast.Ebinop (op, a, b) ->
          (match op with
          | Ast.Div | Ast.Mod ->
              if expr_tainted b then fail "tainted divisor"
          | Ast.And | Ast.Or ->
              if expr_tainted a then fail "tainted short-circuit operand"
          | _ -> ());
          check_expr a;
          check_expr b
      | Ast.Eunop (_, a) -> check_expr a
      | Ast.Ecall (_, args) -> List.iter check_expr args
    in
    let check_range { Ast.lo; hi; _ } =
      if expr_tainted lo || expr_tainted hi then fail "tainted annotation range";
      check_expr lo;
      check_expr hi
    in
    let check_stmt (s : Ast.stmt) =
      match s.node with
      | Ast.Sassign (Ast.Lvar _, e) -> check_expr e
      | Ast.Sassign (Ast.Lindex (_, i), e) ->
          if expr_tainted i then fail "tainted assignment subscript";
          check_expr i;
          check_expr e
      | Ast.Sif (c, _, _) ->
          if expr_tainted c then fail "tainted branch condition";
          check_expr c
      | Ast.Sfor { from_; to_; step; _ } ->
          if expr_tainted from_ || expr_tainted to_ || expr_tainted step then
            fail "tainted loop bound";
          check_expr from_;
          check_expr to_;
          check_expr step
      | Ast.Swhile (c, _) ->
          if expr_tainted c then fail "tainted loop condition";
          check_expr c
      | Ast.Sbarrier | Ast.Sreturn None -> ()
      | Ast.Scall (_, args) -> List.iter check_expr args
      | Ast.Sreturn (Some e) -> check_expr e
      | Ast.Slock e | Ast.Sunlock e ->
          if expr_tainted e then fail "tainted lock argument";
          check_expr e
      | Ast.Sannot (_, r) -> check_range r
      | Ast.Sannot_table _ -> ()
      | Ast.Sprint args ->
          List.iter
            (fun e ->
              if expr_tainted e then output_changed := true;
              check_expr e)
            args
    in
    Ast.iter_stmts check_stmt edited;
    Preserved { output_changed = !output_changed }
  with
  | Fail msg -> Broken msg
  | Invalid_argument _ -> Broken "structure changed"
