type base = {
  source : string;
  program : Lang.Ast.program;
  stripped : Lang.Ast.program;
  info : Lang.Sema.info;
  records : Trace.Event.record list;
  epochs : Trace.Event.record list list;
  layout : Lang.Label.t;
  plan : Cachier.Placement.plan;
  result : Cachier.Annotate.result;
}

type node =
  | Source of string
  | Parsed of Lang.Ast.program
  | Sema_ok
  | Base of base

type entry = { node : node; mutable used : int }

type t = {
  mu : Mutex.t;
  capacity : int;
  tbl : (string, entry) Hashtbl.t;
  counters : (string, int ref * int ref) Hashtbl.t;  (* kind -> hits, misses *)
  mutable tick : int;
}

let default_capacity () =
  match Sys.getenv_opt "CACHIER_DELTA_DAG" with
  | Some s -> ( match int_of_string_opt s with Some n when n > 0 -> n | _ -> 128)
  | None -> 128

let create ?capacity () =
  let capacity =
    match capacity with Some c when c > 0 -> c | _ -> default_capacity ()
  in
  {
    mu = Mutex.create ();
    capacity;
    tbl = Hashtbl.create 64;
    counters = Hashtbl.create 8;
    tick = 0;
  }

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

let kind_of key =
  match String.index_opt key '|' with
  | Some i -> String.sub key 0 i
  | None -> key

let counter t key =
  let kind = kind_of key in
  match Hashtbl.find_opt t.counters kind with
  | Some c -> c
  | None ->
      let c = (ref 0, ref 0) in
      Hashtbl.replace t.counters kind c;
      c

let find t key =
  locked t (fun () ->
      let hits, misses = counter t key in
      match Hashtbl.find_opt t.tbl key with
      | Some e ->
          t.tick <- t.tick + 1;
          e.used <- t.tick;
          incr hits;
          Some e.node
      | None ->
          incr misses;
          None)

let add t key node =
  locked t (fun () ->
      t.tick <- t.tick + 1;
      if not (Hashtbl.mem t.tbl key) && Hashtbl.length t.tbl >= t.capacity
      then begin
        (* evict the least recently used entry; the capacity is small
           enough that a scan beats maintaining an intrusive list *)
        let victim = ref None in
        Hashtbl.iter
          (fun k e ->
            match !victim with
            | Some (_, u) when u <= e.used -> ()
            | _ -> victim := Some (k, e.used))
          t.tbl;
        match !victim with
        | Some (k, _) -> Hashtbl.remove t.tbl k
        | None -> ()
      end;
      Hashtbl.replace t.tbl key { node; used = t.tick })

let entries t = locked t (fun () -> Hashtbl.length t.tbl)

let stats t =
  locked t (fun () ->
      List.sort compare
        (Hashtbl.fold
           (fun kind (h, m) acc -> (kind, (!h, !m)) :: acc)
           t.counters []))
