(** Conservative trace-preservation proof for span edits.

    [compare_and_prove ~base ~edited] walks the two programs in lockstep
    and decides whether the edited program provably produces the same
    miss trace (and the same simulated time) as the base program, so the
    base trace, epoch info, placement plan and report can be reused
    wholesale.

    The proof obligations, matching what the simulator can observe:

    - declarations, procedure headers and statement structure (sids
      included) must be identical — the edit may only change literal
      leaves ([Eint]/[Efloat] values) in place, so the evaluator visits
      exactly the same nodes and charges exactly the same costs;
    - a changed literal makes the enclosing value {e tainted}; taint
      propagates through assignments (scalar and whole-array), procedure
      arguments, and return values to a fixpoint;
    - tainted values must never reach anything the memory system or the
      control flow can see: array subscripts (addresses), [if]/[while]
      conditions and [for] bounds (trip counts, short-circuit [&&]/[||]
      left operands included), [lock]/[unlock] arguments, divisors (a
      divide-by-zero would diverge), or annotation ranges.

    Tainted [print] arguments are allowed but reported as
    [output_changed], because program output appears in the [simulate]
    payload (not in the annotate payload). Anything unprovable is
    [Broken] with a reason, and the caller falls back to a full
    re-simulation — the fallback is always sound, the proof only buys
    speed. *)

type verdict =
  | Preserved of { output_changed : bool }
  | Broken of string

val compare_and_prove :
  base:Lang.Ast.program -> edited:Lang.Ast.program -> verdict
