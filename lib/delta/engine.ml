type reuse =
  | Noop
  | Plan_reuse
  | Resim of string

type outcome = {
  result : Cachier.Annotate.result;
  reuse : reuse;
  artifact : string;
  edited_source : string;
}

let source_digest source = Digest.to_hex (Digest.string source)

let reuse_to_string = function
  | Noop -> "noop"
  | Plan_reuse -> "plan-reuse"
  | Resim why -> "resim: " ^ why

let ctx_key ~machine ~options =
  Digest.to_hex (Digest.string (Marshal.to_string (machine, options) []))

let base_key sd ctx = "base|" ^ sd ^ "|" ^ ctx

let register_source dag source =
  let sd = source_digest source in
  Dag.add dag ("src|" ^ sd) (Dag.Source source);
  sd

let find_source dag sd =
  match Dag.find dag ("src|" ^ sd) with
  | Some (Dag.Source s) -> Some s
  | _ -> None

let parse_cached dag source sd =
  let key = "parse|" ^ sd in
  match Dag.find dag key with
  | Some (Dag.Parsed p) -> p
  | _ ->
      let p = Lang.Parser.parse source in
      Dag.add dag key (Dag.Parsed p);
      p

(* The sema artifacts are keyed per procedure body, scoped by the
   declarations and procedure headers they were checked against. *)
let sema_sig (program : Lang.Ast.program) =
  Digest.to_hex
    (Digest.string
       (Marshal.to_string
          ( program.Lang.Ast.decls,
            List.map
              (fun (p : Lang.Ast.proc) -> (p.pname, p.params))
              program.Lang.Ast.procs )
          []))

let sema_key ssig proc = "sema|" ^ Lang.Ast_util.proc_digest proc ^ "|" ^ ssig

let seed_sema dag program =
  let ssig = sema_sig program in
  List.iter
    (fun p -> Dag.add dag (sema_key ssig p) Dag.Sema_ok)
    program.Lang.Ast.procs

(* Re-check only procedures whose digest has no cached clean verdict;
   full [Sema.check] when declarations or headers changed (so errors
   surface exactly as on the cold path). *)
let sema_incremental dag (b : Dag.base) (eprog : Lang.Ast.program) =
  let header (p : Lang.Ast.proc) = (p.pname, p.params) in
  if
    b.Dag.program.Lang.Ast.decls = eprog.Lang.Ast.decls
    && List.map header b.Dag.program.Lang.Ast.procs
       = List.map header eprog.Lang.Ast.procs
  then begin
    let ssig = sema_sig eprog in
    List.iter
      (fun proc ->
        let key = sema_key ssig proc in
        match Dag.find dag key with
        | Some Dag.Sema_ok -> ()
        | _ ->
            Lang.Sema.check_proc b.Dag.info proc;
            Dag.add dag key Dag.Sema_ok)
      eprog.Lang.Ast.procs
  end
  else ignore (Lang.Sema.check eprog : Lang.Sema.info)

(* A trace is per-epoch groups separated by runs of Barrier records. *)
let slice_epochs records =
  let rec go acc cur in_barrier = function
    | [] -> List.rev (match cur with [] -> acc | _ -> List.rev cur :: acc)
    | r :: rest ->
        let is_b =
          match r with Trace.Event.Barrier _ -> true | _ -> false
        in
        if in_barrier && not is_b then go (List.rev cur :: acc) [ r ] false rest
        else go acc (r :: cur) is_b rest
  in
  go [] [] false records

let compute_base ~dag ~machine ~options ?engine ~source program =
  (* Mirrors the cold path (sema, trace-mode run, then the
     [Annotate.annotate_with_traces] internals) while capturing every
     intermediate artifact, in particular the placement plan. *)
  ignore (Lang.Sema.check program : Lang.Sema.info);
  seed_sema dag program;
  let outcome = Wwt.Run.collect_trace ?engine ~machine program in
  let records = outcome.Wwt.Interp.trace in
  let stripped = Lang.Ast.strip_annotations program in
  let info = Lang.Sema.check stripped in
  let layout =
    Lang.Label.layout ~block_size:machine.Wwt.Machine.block_size
      ~elem_size:machine.Wwt.Machine.elem_size info
  in
  let einfo =
    Cachier.Epoch_info.build ~nodes:machine.Wwt.Machine.nodes
      ~block_size:machine.Wwt.Machine.block_size records
  in
  let plan =
    Cachier.Placement.plan_traces ~program:stripped ~layout ~machine
      ~einfos:[ einfo ] ~options
  in
  let annotated =
    Cachier.Placement.assign_fresh_sids
      (Cachier.Placement.apply_edits stripped plan.Cachier.Placement.edits)
  in
  let result =
    {
      Cachier.Annotate.annotated;
      report = Cachier.Report.build ~layout einfo;
      notes = plan.Cachier.Placement.notes;
      einfo;
      n_edits = List.length plan.Cachier.Placement.edits;
    }
  in
  {
    Dag.source;
    program;
    stripped;
    info;
    records;
    epochs = slice_epochs records;
    layout;
    plan;
    result;
  }

let base_of ~dag ~machine ~options ?engine source =
  let sd = source_digest source in
  let key = base_key sd (ctx_key ~machine ~options) in
  match Dag.find dag key with
  | Some (Dag.Base b) -> b
  | _ ->
      let program = parse_cached dag source sd in
      let b = compute_base ~dag ~machine ~options ?engine ~source program in
      Dag.add dag key (Dag.Base b);
      b

let annotate_delta ~dag ~machine ~options ?engine ~base:base_source span text =
  let edited = Splice.apply_edit base_source span text in
  let b = base_of ~dag ~machine ~options ?engine base_source in
  let artifact = source_digest edited in
  if String.equal edited base_source then
    { result = b.Dag.result; reuse = Noop; artifact; edited_source = edited }
  else begin
    let ctx = ctx_key ~machine ~options in
    let eprog, _how = Splice.splice ~base:base_source ~base_ast:b.Dag.program span text in
    Dag.add dag ("parse|" ^ artifact) (Dag.Parsed eprog);
    sema_incremental dag b eprog;
    match Taint.compare_and_prove ~base:b.Dag.program ~edited:eprog with
    | Taint.Preserved _ ->
        let stripped = Lang.Ast.strip_annotations eprog in
        let annotated =
          Cachier.Placement.assign_fresh_sids
            (Cachier.Placement.apply_edits stripped
               b.Dag.plan.Cachier.Placement.edits)
        in
        let result = { b.Dag.result with Cachier.Annotate.annotated } in
        let nb =
          { b with Dag.source = edited; program = eprog; stripped; result }
        in
        (* chain: further edits against the edited source stay warm *)
        Dag.add dag (base_key artifact ctx) (Dag.Base nb);
        { result; reuse = Plan_reuse; artifact; edited_source = edited }
    | Taint.Broken why ->
        let nb = compute_base ~dag ~machine ~options ?engine ~source:edited eprog in
        Dag.add dag (base_key artifact ctx) (Dag.Base nb);
        { result = nb.Dag.result; reuse = Resim why; artifact; edited_source = edited }
  end

let prove_simulate ~base ~edited =
  match Taint.compare_and_prove ~base ~edited with
  | Taint.Preserved { output_changed = false } -> Ok ()
  | Taint.Preserved { output_changed = true } -> Error "program output changes"
  | Taint.Broken why -> Error why
