(** The cachierd wire protocol: newline-delimited JSON requests and
    responses.

    One request per line. Every request carries an [id] (echoed in the
    response, so responses may be correlated even when the server
    completes them out of order), an [op], and op-specific fields; the
    machine-configuration fields default to the same values as the
    one-shot CLIs ([--nodes 8 --cache-kb 16 --assoc 4 --block 32]).

    The [payload] of a successful response is byte-identical to what the
    corresponding one-shot CLI prints on stdout for the same inputs (see
    {!Oneshot}). *)

type machine_config = {
  nodes : int;
  cache_kb : int;
  assoc : int;
  block : int;
  protocol : Memsys.Protocol_id.t;
}

val default_machine : machine_config
val to_machine : machine_config -> Wwt.Machine.t

type source =
  | Text of string  (** inline program source *)
  | Bench of string  (** a built-in benchmark name, e.g. ["matmul"] *)

type mode = Performance | Programmer

type op =
  | Parse of { source : source }
      (** parse + sema-check; payload is the pretty-printed program *)
  | Simulate of {
      source : source;
      annotations : bool;
      prefetch : bool;
      trace : bool;
    }  (** payload as printed by [simulate] for a single file *)
  | Annotate of { source : source; mode : mode; prefetch : bool }
      (** payload as printed by [cachier_cli] on stdout (the annotated
          program); the response carries the stderr summary in [report] *)
  | Annotate_delta of {
      base : string;
          (** artifact id of a previously annotated source: the hex digest
              returned in the [artifact] extra of an [annotate] response *)
      start : int;  (** byte offset of the edit span in the base source *)
      len : int;  (** byte length of the span being replaced *)
      text : string;  (** replacement text *)
      mode : mode;
      prefetch : bool;
    }
      (** incrementally re-annotate the base source after the edit
          [\[start, start+len)] is replaced by [text]; payload is
          byte-identical to a from-scratch [annotate] of the edited
          source. The response's [extra] carries [artifact] (the edited
          source's id, usable as a new base) and [reuse]
          ([noop] / [plan-reuse] / [resim: <why>]) *)
  | Race_report of { source : source }
      (** payload is the race / false-sharing report *)
  | Races of { source : source }
      (** run the sound streaming race detector ({!Races.detect}) on the
          program's collected trace; payload as printed by
          [simulate --races] after the simulation report *)
  | Trace_stats of { source : source option; trace_text : string option }
      (** analyse either a trace collected from [source] (cached) or an
          inline trace in the {!Trace.Trace_file} format; payload as
          printed by [trace_stats] *)
  | Stats  (** server counters; the response carries them in [stats] *)
  | Ping
  | Shutdown

type request = {
  id : int;
  machine : machine_config;
  seed : int option;  (** substitute the program's [SEED] constant *)
  deadline_ms : int option;
  op : op;
}

type error_kind =
  | Bad_request
  | Unknown_benchmark
  | Parse_error
  | Runtime_error
  | Deadline_exceeded
  | Overloaded
  | Internal

val error_kind_to_string : error_kind -> string

type response =
  | Ok_response of {
      id : int;
      op : string;
      cached : bool;
      elapsed_us : int;
      payload : string;
      extra : (string * Json.t) list;
          (** op-specific fields, e.g. [report] for annotate, [stats] for
              stats *)
    }
  | Error_response of { id : int; error : error_kind; message : string }

val op_name : op -> string

val request_to_json : request -> Json.t

val request_of_json :
  ?defaults:machine_config -> Json.t -> (request, string) result
(** [defaults] (default {!default_machine}) fills machine fields the
    request omits. [Error msg] describes the first malformed field. *)

val response_to_json : response -> Json.t
val response_of_json : Json.t -> (response, string) result

val read_request :
  ?defaults:machine_config -> string -> (request, string) result
(** Decode one NDJSON line. *)

val write_response : Buffer.t -> response -> unit
(** Append the encoded response and a newline. *)
