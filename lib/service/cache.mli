(** A content-addressed artifact cache with LRU eviction under a byte
    budget.

    Keys are stable hashes of the inputs that determine an artifact
    (source text, machine configuration, seed, pipeline stage — see
    {!Server.stage_key}); values carry an explicit size in bytes. A put
    that would push the total over the budget evicts least-recently-used
    entries first; an artifact bigger than the whole budget is refused
    outright (and counted), so the invariant [size t <= budget t] holds
    after every operation.

    All operations are thread-safe (one internal lock); get/put are O(1)
    apart from eviction work, which is amortised against the puts that
    made the entries. *)

type 'a t

val create : budget:int -> 'a t
(** @raise Invalid_argument when [budget] is negative. *)

val budget : 'a t -> int

val put : 'a t -> key:string -> size:int -> 'a -> unit
(** Insert or replace; the entry becomes most-recently-used.
    @raise Invalid_argument when [size] is negative. *)

val get : 'a t -> string -> 'a option
(** A hit refreshes the entry's recency. *)

val mem : 'a t -> string -> bool
(** Like {!get} but without touching recency. *)

val remove : 'a t -> string -> unit

val size : 'a t -> int
(** Total bytes currently held. *)

val entries : 'a t -> int
val evictions : 'a t -> int
(** Entries evicted by the budget so far (refused oversize puts count). *)

val keys_by_recency : 'a t -> string list
(** Most-recently-used first; for tests and introspection. *)
