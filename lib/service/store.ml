(* Content-hash-keyed artifact files under one directory; see store.mli
   for the format. The index maps file basenames to sizes so existence
   checks and the byte total never touch the filesystem. *)

type t = {
  dir : string;
  mu : Mutex.t;
  index : (string, int) Hashtbl.t;  (* basename -> size *)
  mutable bytes : int;
  mutable hits : int;
  mutable misses : int;
  mutable corrupt : int;
  corrupt_by : (string, int) Hashtbl.t;  (* stage -> dropped count *)
}

(* Stage keys look like "annotate:performance:..." or "base|<digest>|...";
   the stage is whatever precedes the first separator. *)
let stage_of_key key =
  let cut =
    match (String.index_opt key ':', String.index_opt key '|') with
    | Some a, Some b -> Some (min a b)
    | (Some _ as s), None | None, (Some _ as s) -> s
    | None, None -> None
  in
  match cut with Some i -> String.sub key 0 i | None -> key

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

let digest_hex s = Digest.to_hex (Digest.string s)

let is_artifact name =
  Filename.check_suffix name ".trace" || Filename.check_suffix name ".art"

let create ~dir =
  (try
     if not (Sys.file_exists dir) then Unix.mkdir dir 0o755
   with Unix.Unix_error _ -> ());
  let index = Hashtbl.create 64 in
  let bytes = ref 0 in
  (try
     Array.iter
       (fun name ->
         if is_artifact name then
           match (Unix.stat (Filename.concat dir name)).Unix.st_size with
           | size ->
               Hashtbl.replace index name size;
               bytes := !bytes + size
           | exception Unix.Unix_error _ -> ())
       (Sys.readdir dir)
   with Sys_error _ -> ());
  {
    dir;
    mu = Mutex.create ();
    index;
    bytes = !bytes;
    hits = 0;
    misses = 0;
    corrupt = 0;
    corrupt_by = Hashtbl.create 8;
  }

let dir t = t.dir
let bytes t = locked t (fun () -> t.bytes)
let entries t = locked t (fun () -> Hashtbl.length t.index)
let hits t = locked t (fun () -> t.hits)
let misses t = locked t (fun () -> t.misses)
let corrupt t = locked t (fun () -> t.corrupt)

let corrupt_stages t =
  locked t (fun () ->
      Hashtbl.fold (fun stage n acc -> (stage, n) :: acc) t.corrupt_by []
      |> List.sort compare)

(* ---- low-level file I/O ---- *)

(* Immutable rename-published files: map the whole file and copy it out.
   An empty or vanished file reads as "". *)
let read_all path =
  let fd = Unix.openfile path [ Unix.O_RDONLY ] 0 in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      let len = (Unix.fstat fd).Unix.st_size in
      if len = 0 then ""
      else
        let map =
          Bigarray.array1_of_genarray
            (Unix.map_file fd Bigarray.char Bigarray.c_layout false [| len |])
        in
        String.init len (Bigarray.Array1.get map))

let publish t ~basename content =
  let path = Filename.concat t.dir basename in
  let tmp = Printf.sprintf "%s.%d.tmp" path (Unix.getpid ()) in
  try
    let oc = open_out_bin tmp in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () -> output_string oc content);
    Sys.rename tmp path;
    locked t (fun () ->
        (match Hashtbl.find_opt t.index basename with
        | Some old -> t.bytes <- t.bytes - old
        | None -> ());
        Hashtbl.replace t.index basename (String.length content);
        t.bytes <- t.bytes + String.length content)
  with Sys_error _ | Unix.Unix_error _ ->
    (try Sys.remove tmp with Sys_error _ -> ())

let known t basename = locked t (fun () -> Hashtbl.mem t.index basename)

let discard t ~stage basename =
  locked t (fun () ->
      (match Hashtbl.find_opt t.index basename with
      | Some size ->
          t.bytes <- t.bytes - size;
          Hashtbl.remove t.index basename
      | None -> ());
      t.corrupt <- t.corrupt + 1;
      let n = Option.value ~default:0 (Hashtbl.find_opt t.corrupt_by stage) in
      Hashtbl.replace t.corrupt_by stage (n + 1));
  try Sys.remove (Filename.concat t.dir basename) with Sys_error _ -> ()

let miss t = locked t (fun () -> t.misses <- t.misses + 1)
let hit t = locked t (fun () -> t.hits <- t.hits + 1)

(* [lookup t ~key basename parse] is the shared read path: index check,
   map, parse, with corruption degrading to a miss charged to the stage
   named by [key]'s prefix. *)
let lookup t ~key basename parse =
  if not (known t basename) then begin
    miss t;
    None
  end
  else
    match parse (read_all (Filename.concat t.dir basename)) with
    | v ->
        hit t;
        Some v
    | exception _ ->
        discard t ~stage:(stage_of_key key) basename;
        miss t;
        None

(* ---- trace artifacts ---- *)

let trace_name key = digest_hex key ^ ".trace"

let put_trace t ~key ~records ~payload =
  let buf = Buffer.create 4096 in
  let payload_lines =
    match List.rev (String.split_on_char '\n' payload) with
    | "" :: rest -> List.rev rest (* drop the split's trailing empty *)
    | all -> List.rev all
  in
  List.iter
    (fun line ->
      Buffer.add_string buf "#P ";
      Buffer.add_string buf line;
      Buffer.add_char buf '\n')
    payload_lines;
  Trace.Trace_file.to_buffer buf records;
  publish t ~basename:(trace_name key) (Buffer.contents buf)

let get_trace t ~key =
  lookup t ~key (trace_name key) (fun text ->
      let payload =
        String.split_on_char '\n' text
        |> List.filter_map (fun line ->
               if String.length line >= 3 && String.sub line 0 3 = "#P " then
                 Some (String.sub line 3 (String.length line - 3))
               else None)
        |> List.map (fun l -> l ^ "\n")
        |> String.concat ""
      in
      let records = Trace.Trace_file.of_string text in
      (records, payload))

(* ---- text artifacts ---- *)

let text_name key = digest_hex key ^ ".art"

let put_text t ~key ?summary payload =
  let fields =
    [ ("v", Json.Int 1); ("payload", Json.String payload) ]
    @ match summary with Some s -> [ ("summary", Json.String s) ] | None -> []
  in
  publish t ~basename:(text_name key) (Json.to_string (Json.Obj fields) ^ "\n")

let get_text t ~key =
  lookup t ~key (text_name key) (fun text ->
      let j = Json.of_string (String.trim text) in
      match Json.to_string_opt (Json.member "payload" j) with
      | Some payload -> (payload, Json.to_string_opt (Json.member "summary" j))
      | None -> failwith "artifact missing payload")
