open Cmdliner

let nodes_term =
  Arg.(value & opt int Wwt.Machine.default.Wwt.Machine.nodes
       & info [ "n"; "nodes" ] ~docv:"N" ~doc:"Number of simulated processors.")

let cache_kb =
  Arg.(value & opt int (Wwt.Machine.default.Wwt.Machine.cache_bytes / 1024)
       & info [ "cache-kb" ] ~docv:"KB" ~doc:"Per-node cache size in KB.")

let assoc =
  Arg.(value & opt int Wwt.Machine.default.Wwt.Machine.assoc
       & info [ "assoc" ] ~doc:"Cache associativity.")

let block =
  Arg.(value & opt int Wwt.Machine.default.Wwt.Machine.block_size
       & info [ "block" ] ~doc:"Cache block size in bytes.")

let machine_term =
  let build nodes cache_kb assoc block =
    {
      Wwt.Machine.default with
      Wwt.Machine.nodes;
      cache_bytes = cache_kb * 1024;
      assoc;
      block_size = block;
    }
  in
  Term.(const build $ nodes_term $ cache_kb $ assoc $ block)
