open Cmdliner

let nodes_term =
  Arg.(value & opt int Wwt.Machine.default.Wwt.Machine.nodes
       & info [ "n"; "nodes" ] ~docv:"N" ~doc:"Number of simulated processors.")

let cache_kb =
  Arg.(value & opt int (Wwt.Machine.default.Wwt.Machine.cache_bytes / 1024)
       & info [ "cache-kb" ] ~docv:"KB" ~doc:"Per-node cache size in KB.")

let assoc =
  Arg.(value & opt int Wwt.Machine.default.Wwt.Machine.assoc
       & info [ "assoc" ] ~doc:"Cache associativity.")

let block =
  Arg.(value & opt int Wwt.Machine.default.Wwt.Machine.block_size
       & info [ "block" ] ~doc:"Cache block size in bytes.")

let protocol_conv =
  let parse s =
    match Memsys.Protocol_id.of_string s with
    | Some p -> Ok p
    | None ->
        Error
          (`Msg
             (Printf.sprintf "unknown protocol %S (dir1sw, sisd or commute)" s))
  in
  let print fmt p = Format.pp_print_string fmt (Memsys.Protocol_id.to_string p) in
  Arg.conv ~docv:"PROTOCOL" (parse, print)

let protocol =
  Arg.(
    value
    & opt protocol_conv Memsys.Protocol_id.default
    & info [ "protocol" ] ~docv:"PROTOCOL"
        ~doc:
          "Coherence backend: $(b,dir1sw) (the paper's directory protocol, \
           default), $(b,sisd) (self-invalidation / self-downgrade) or \
           $(b,commute) (privatized commutative updates).")

(* --obs shared by every binary: parse the mode eagerly (so a bad value
   is a usage error, not a mid-run surprise) and configure the global
   pipeline as a side effect of term evaluation. *)
let obs_conv =
  let parse s =
    match Obs.mode_of_string s with
    | Ok m -> Ok m
    | Error msg -> Error (`Msg msg)
  in
  let print fmt m = Format.pp_print_string fmt (Obs.mode_to_string m) in
  Arg.conv ~docv:"MODE" (parse, print)

let obs_term =
  let doc =
    "Observability sink: $(b,off) (default; zero-overhead), $(b,summary) \
     (per-span aggregates and metrics on stderr at exit) or \
     $(b,ndjson:PATH) (one JSON event per line to PATH). Never writes to \
     stdout."
  in
  let mode =
    Arg.(value & opt obs_conv Obs.Off & info [ "obs" ] ~docv:"MODE" ~doc)
  in
  let setup mode =
    (match mode with Obs.Off -> () | _ -> Obs.configure mode);
    mode
  in
  Term.(const setup $ mode)

let machine_term =
  let build nodes cache_kb assoc block protocol =
    {
      Wwt.Machine.default with
      Wwt.Machine.nodes;
      cache_bytes = cache_kb * 1024;
      assoc;
      block_size = block;
      protocol;
    }
  in
  Term.(const build $ nodes_term $ cache_kb $ assoc $ block $ protocol)
