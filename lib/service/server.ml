type config = {
  machine_defaults : Protocol.machine_config;
  budget_bytes : int;
  cache_dir : string option;
  workers : int;
  queue_capacity : int;
}

let default_config =
  {
    machine_defaults = Protocol.default_machine;
    budget_bytes = 64 * 1024 * 1024;
    cache_dir = None;
    workers = 2;
    queue_capacity = 64;
  }

(* Global observability seams (the per-server [Metrics.t] remains the
   protocol-visible stats source; these feed the process-wide --obs
   pipeline). Updates are gated on [Obs.enabled]. *)
let obs_requests = Obs.Registry.counter "service.requests"
let obs_cache_hits = Obs.Registry.counter "service.cache_hits"
let obs_cache_misses = Obs.Registry.counter "service.cache_misses"
let obs_coalesced = Obs.Registry.counter "service.coalesced"

(* Stage artifacts. ASTs are cached post-sema and treated as immutable by
   every consumer (the engines and the annotator copy before rewriting),
   so one cached program may serve concurrent requests. *)
type artifact =
  | Ast of Lang.Ast.program
  | Trace_art of { records : Trace.Event.record list; payload : string }
  | Annotate_art of { payload : string; summary : string }
  | Text of string

type t = {
  config : config;
  cache : artifact Cache.t;  (* hot tier: in-memory, byte-budgeted LRU *)
  store : Store.t option;  (* cold tier: on-disk artifact files *)
  flight : (string * bool * (string * Json.t) list) Flight.t;
  metrics : Metrics.t;
  pool : Wwt.Jobs.Pool.t;
  dag : Delta.Dag.t;  (* incremental-annotation artifact DAG *)
}

let create config =
  {
    config;
    cache = Cache.create ~budget:config.budget_bytes;
    store = Option.map (fun dir -> Store.create ~dir) config.cache_dir;
    flight = Flight.create ();
    metrics = Metrics.create ();
    pool =
      Wwt.Jobs.Pool.create ~workers:(max 1 config.workers)
        ~capacity:config.queue_capacity ();
    dag = Delta.Dag.create ();
  }

let shutdown t = Wwt.Jobs.Pool.shutdown t.pool
let cache_bytes t = Cache.size t.cache
let cache_entries t = Cache.entries t.cache
let cache_evictions t = Cache.evictions t.cache
let metrics t = t.metrics
let store t = t.store
let dag t = t.dag

(* ------------------------------------------------------------------ *)
(* cache keys and sizes                                                *)

let stage_key ~stage ~machine ~seed ~source_digest =
  Printf.sprintf "%s|%s|n%d:c%d:a%d:b%d:p%s|%s" stage source_digest
    machine.Protocol.nodes machine.Protocol.cache_kb machine.Protocol.assoc
    machine.Protocol.block
    (Memsys.Protocol_id.to_string machine.Protocol.protocol)
    (match seed with Some s -> string_of_int s | None -> "-")

let digest_hex s = Digest.to_hex (Digest.string s)

(* sizes are estimates: the cache budgets memory, it does not meter it *)
let ast_size source = 64 + (8 * String.length source)
let trace_size records payload = (48 * List.length records) + String.length payload

(* ------------------------------------------------------------------ *)
(* request execution                                                   *)

exception Reject of Protocol.error_kind * string

let resolve_source ~nodes = function
  | Protocol.Text s -> s
  | Protocol.Bench name -> (
      match Benchmarks.Suite.find ~nodes name with
      | b -> b.Benchmarks.Suite.source
      | exception Not_found ->
          raise
            (Reject
               ( Protocol.Unknown_benchmark,
                 Printf.sprintf "unknown benchmark %S (expected one of %s)"
                   name
                   (String.concat ", " Benchmarks.Suite.names) )))

let make_poll ~received = function
  | None -> None
  | Some ms ->
      let deadline = received +. (float_of_int ms /. 1000.) in
      Some
        (fun () ->
          if Unix.gettimeofday () > deadline then
            raise
              (Wwt.Sched.Cancelled
                 (Printf.sprintf "deadline of %d ms exceeded" ms)))

let check_deadline ~received = function
  | Some ms when Unix.gettimeofday () > received +. (float_of_int ms /. 1000.)
    ->
      raise
        (Reject
           ( Protocol.Deadline_exceeded,
             Printf.sprintf "deadline of %d ms exceeded before execution" ms ))
  | _ -> ()

(* Stage: parse (+ sema + optional reseed). Machine-independent, so the
   key carries only source digest and seed. *)
let parsed_program t ~source ~seed =
  let key =
    stage_key ~stage:"parse" ~machine:Protocol.default_machine ~seed
      ~source_digest:(digest_hex source)
  in
  match Cache.get t.cache key with
  | Some (Ast p) ->
      Metrics.record_hit t.metrics ~stage:"parse";
      p
  | _ ->
      Metrics.record_miss t.metrics ~stage:"parse";
      let p = Lang.Parser.parse source in
      ignore (Lang.Sema.check p);
      let p =
        match seed with
        | Some s -> Lang.Ast_util.set_const p "SEED" s
        | None -> p
      in
      Cache.put t.cache ~key ~size:(ast_size source) (Ast p);
      p

(* Large-machine requests run on the quantum-synchronized parallel
   engine: Par is bit-identical to Compiled (and transparently falls
   back to it on programs it cannot replay), honours the same [?poll]
   deadline hook, and cuts latency when cores are available. Small
   machines stay sequential — there the recording pass is pure
   overhead. Cache keys are engine-agnostic on purpose: both engines
   produce the same artifact — and the engine's epoch-memo pool is
   process-wide, so repeat workloads (the IDE edit-simulate loop the
   stage cache exists for) skip most replay work even when a source
   tweak misses the artifact cache.

   Deployment knobs, read once per request so a restart is not needed:
   CACHIER_PAR_THRESHOLD sets the node count at which requests go
   parallel (0 = always, default 16); CACHIER_PAR_DOMAINS fixes the
   domain count (0 or unset = recommended count capped at nodes). *)
let par_node_threshold () =
  match Sys.getenv_opt "CACHIER_PAR_THRESHOLD" with
  | Some s -> ( match int_of_string_opt (String.trim s) with
    | Some v -> v
    | None -> 16)
  | None -> 16

let engine_for (machine : Wwt.Machine.t) =
  let nodes = machine.Wwt.Machine.nodes in
  if nodes >= par_node_threshold () then
    Wwt.Run.Par
      (match Sys.getenv_opt "CACHIER_PAR_DOMAINS" with
      | Some s -> (
          match int_of_string_opt (String.trim s) with
          | Some d when d > 0 -> d
          | _ -> Wwt.Par.default_domains ~nodes)
      | None -> Wwt.Par.default_domains ~nodes)
  else Wwt.Run.Compiled

(* The two-tier lookup for text-shaped artifacts: hot in-memory entry,
   then the disk store, then compute. A disk hit is promoted into the
   hot tier; a computed artifact is written through to both. *)
let text_tiers t ~key ~stage ~wrap ~unwrap ~compute =
  match Option.map unwrap (Cache.get t.cache key) with
  | Some (Some v) ->
      Metrics.record_hit t.metrics ~stage;
      (v, true)
  | _ -> (
      let from_disk =
        match t.store with
        | Some s -> Store.get_text s ~key
        | None -> None
      in
      match Option.bind from_disk (fun (payload, summary) -> wrap payload summary) with
      | Some (v, size, art) ->
          Metrics.record_hit t.metrics ~stage;
          Cache.put t.cache ~key ~size art;
          (v, true)
      | None ->
          Metrics.record_miss t.metrics ~stage;
          let v, size, art, payload, summary = compute () in
          Cache.put t.cache ~key ~size art;
          (match t.store with
          | Some s -> Store.put_text s ~key ?summary payload
          | None -> ());
          (v, false))

(* Stage: trace-mode simulation (shared by simulate --trace, annotate,
   race_report and trace_stats). Returns the artifact and whether it came
   from the cache (memory or disk). *)
let trace_stage t ~machine ~seed ~source ~poll =
  let key =
    stage_key ~stage:"trace" ~machine ~seed ~source_digest:(digest_hex source)
  in
  match Cache.get t.cache key with
  | Some (Trace_art a) ->
      Metrics.record_hit t.metrics ~stage:"trace";
      (a.records, a.payload, true)
  | _ -> (
      let from_disk =
        match t.store with
        | Some s -> Store.get_trace s ~key
        | None -> None
      in
      match from_disk with
      | Some (records, payload) ->
          Metrics.record_hit t.metrics ~stage:"trace";
          Cache.put t.cache ~key ~size:(trace_size records payload)
            (Trace_art { records; payload });
          (records, payload, true)
      | None ->
          Metrics.record_miss t.metrics ~stage:"trace";
          let program = parsed_program t ~source ~seed in
          let wm = Protocol.to_machine machine in
          let outcome =
            Wwt.Run.collect_trace ?poll ~engine:(engine_for wm) ~machine:wm
              program
          in
          let payload = Oneshot.simulate_report outcome in
          let records = outcome.Wwt.Interp.trace in
          Cache.put t.cache ~key ~size:(trace_size records payload)
            (Trace_art { records; payload });
          (match t.store with
          | Some s -> Store.put_trace s ~key ~records ~payload
          | None -> ());
          (records, payload, false))

(* Stage: performance-mode simulation. *)
let measure_stage t ~machine ~seed ~source ~annotations ~prefetch ~poll =
  let stage =
    Printf.sprintf "measure:%c%c"
      (if annotations then 'a' else '-')
      (if prefetch then 'p' else '-')
  in
  let key = stage_key ~stage ~machine ~seed ~source_digest:(digest_hex source) in
  text_tiers t ~key ~stage:"measure"
    ~unwrap:(function Text p -> Some p | _ -> None)
    ~wrap:(fun payload _summary ->
      Some (payload, String.length payload, Text payload))
    ~compute:(fun () ->
      let program = parsed_program t ~source ~seed in
      let wm = Protocol.to_machine machine in
      let outcome =
        Wwt.Run.measure ?poll ~engine:(engine_for wm) ~machine:wm ~annotations
          ~prefetch program
      in
      let payload = Oneshot.simulate_report outcome in
      (payload, String.length payload, Text payload, payload, None))

let mode_tag = function
  | Protocol.Performance -> "perf"
  | Protocol.Programmer -> "prog"

let annotate_stage_name ~mode ~prefetch =
  Printf.sprintf "annotate:%s:%c" (mode_tag mode) (if prefetch then 'p' else '-')

(* Stage: annotation. A hit skips parsing and simulation entirely; a miss
   reuses the cached trace when one exists. *)
let annotate_stage t ~machine ~seed ~source ~mode ~prefetch ~poll =
  let stage = annotate_stage_name ~mode ~prefetch in
  let key = stage_key ~stage ~machine ~seed ~source_digest:(digest_hex source) in
  let (payload, summary), cached =
    text_tiers t ~key ~stage:"annotate"
      ~unwrap:(function
        | Annotate_art a -> Some (a.payload, a.summary)
        | _ -> None)
      ~wrap:(fun payload summary ->
        match summary with
        | Some summary ->
            Some
              ( (payload, summary),
                String.length payload + String.length summary,
                Annotate_art { payload; summary } )
        | None -> None (* summary lost: recompute rather than degrade *))
      ~compute:(fun () ->
        let program = parsed_program t ~source ~seed in
        let records, _, _ = trace_stage t ~machine ~seed ~source ~poll in
        let options =
          {
            Cachier.Placement.default_options with
            Cachier.Placement.mode =
              (match mode with
              | Protocol.Performance -> Cachier.Equations.Performance
              | Protocol.Programmer -> Cachier.Equations.Programmer);
            prefetch;
          }
        in
        let result =
          Cachier.Annotate.annotate_with_trace
            ~machine:(Protocol.to_machine machine)
            ~options program records
        in
        let payload = Cachier.Annotate.to_source result in
        let summary = Oneshot.annotate_summary result in
        ( (payload, summary),
          String.length payload + String.length summary,
          Annotate_art { payload; summary },
          payload,
          Some summary ))
  in
  (payload, summary, cached)

(* ---- incremental re-annotation ---- *)

(* Every annotated source becomes a delta base: remembered in the DAG
   under its digest and, with a disk tier, persisted as an ["src|…"]
   text artifact so bases survive a restart (the DAG itself is
   LRU-bounded and process-local). *)
let register_base t source =
  let id = Delta.Engine.source_digest source in
  (match Delta.Engine.find_source t.dag id with
  | Some _ -> ()
  | None ->
      ignore (Delta.Engine.register_source t.dag source);
      (match t.store with
      | Some s -> Store.put_text s ~key:("src|" ^ id) source
      | None -> ()));
  id

let resolve_base t id =
  match Delta.Engine.find_source t.dag id with
  | Some source -> source
  | None -> (
      let from_store =
        match t.store with
        | Some s -> Option.map fst (Store.get_text s ~key:("src|" ^ id))
        | None -> None
      in
      match from_store with
      | Some source ->
          ignore (Delta.Engine.register_source t.dag source);
          source
      | None ->
          raise
            (Reject
               ( Protocol.Bad_request,
                 Printf.sprintf
                   "unknown base artifact %S (annotate a source first and \
                    use the returned artifact id)"
                   id )))

(* Stage: incremental re-annotation of a registered base. The result is
   keyed by the EDITED source's digest — a repeated edit is a pure hit —
   and written through to the plain annotate key as well, so a later
   [annotate] of the edited text hits without simulating. Seed
   substitution is rejected: the delta prover reasons about the source
   text as written. *)
let delta_stage t ~machine ~seed ~base ~span ~text ~mode ~prefetch =
  (match seed with
  | Some _ ->
      raise
        (Reject
           ( Protocol.Bad_request,
             "annotate_delta does not support seed substitution; edit the \
              SEED constant instead" ))
  | None -> ());
  let base_source = resolve_base t base in
  let edited =
    try Delta.Splice.apply_edit base_source span text
    with Invalid_argument msg -> raise (Reject (Protocol.Bad_request, msg))
  in
  let artifact = Delta.Engine.source_digest edited in
  let stage =
    Printf.sprintf "delta:%s:%c" (mode_tag mode) (if prefetch then 'p' else '-')
  in
  let key = stage_key ~stage ~machine ~seed:None ~source_digest:artifact in
  let (payload, summary, reuse), cached =
    text_tiers t ~key ~stage:"delta"
      ~unwrap:(function
        | Annotate_art a -> Some (a.payload, a.summary, "cached")
        | _ -> None)
      ~wrap:(fun payload summary ->
        match summary with
        | Some summary ->
            Some
              ( (payload, summary, "cached"),
                String.length payload + String.length summary,
                Annotate_art { payload; summary } )
        | None -> None)
      ~compute:(fun () ->
        let wm = Protocol.to_machine machine in
        let options =
          {
            Cachier.Placement.default_options with
            Cachier.Placement.mode =
              (match mode with
              | Protocol.Performance -> Cachier.Equations.Performance
              | Protocol.Programmer -> Cachier.Equations.Programmer);
            prefetch;
          }
        in
        let outcome =
          Delta.Engine.annotate_delta ~dag:t.dag ~machine:wm ~options
            ~engine:(engine_for wm) ~base:base_source span text
        in
        let payload = Cachier.Annotate.to_source outcome.Delta.Engine.result in
        let summary = Oneshot.annotate_summary outcome.Delta.Engine.result in
        let akey =
          stage_key ~stage:(annotate_stage_name ~mode ~prefetch) ~machine
            ~seed:None ~source_digest:artifact
        in
        Cache.put t.cache ~key:akey
          ~size:(String.length payload + String.length summary)
          (Annotate_art { payload; summary });
        (match t.store with
        | Some s -> Store.put_text s ~key:akey ~summary payload
        | None -> ());
        ignore (register_base t edited);
        ( ( payload,
            summary,
            Delta.Engine.reuse_to_string outcome.Delta.Engine.reuse ),
          String.length payload + String.length summary,
          Annotate_art { payload; summary },
          payload,
          Some summary ))
  in
  (payload, summary, reuse, artifact, cached)

let race_stage t ~machine ~seed ~source ~poll =
  let key =
    stage_key ~stage:"race_report" ~machine ~seed
      ~source_digest:(digest_hex source)
  in
  text_tiers t ~key ~stage:"annotate"
    ~unwrap:(function Text p -> Some p | _ -> None)
    ~wrap:(fun payload _ -> Some (payload, String.length payload, Text payload))
    ~compute:(fun () ->
      let program = parsed_program t ~source ~seed in
      let records, _, _ = trace_stage t ~machine ~seed ~source ~poll in
      let result =
        Cachier.Annotate.annotate_with_trace
          ~machine:(Protocol.to_machine machine)
          ~options:Cachier.Placement.default_options program records
      in
      let payload = Oneshot.race_report result in
      (payload, String.length payload, Text payload, payload, None))

(* Stage: the sound streaming race detector over the collected trace.
   Reuses the cached trace artifact; the rendered report is itself a
   priced artifact in both tiers, so a warm hit never re-simulates. *)
let races_stage t ~machine ~seed ~source ~poll =
  let key =
    stage_key ~stage:"races" ~machine ~seed ~source_digest:(digest_hex source)
  in
  text_tiers t ~key ~stage:"races"
    ~unwrap:(function Text p -> Some p | _ -> None)
    ~wrap:(fun payload _ -> Some (payload, String.length payload, Text payload))
    ~compute:(fun () ->
      let records, _, _ = trace_stage t ~machine ~seed ~source ~poll in
      let payload =
        Oneshot.races_report ~nodes:machine.Protocol.nodes records
      in
      (payload, String.length payload, Text payload, payload, None))

let trace_stats_stage t ~machine ~seed ~input ~poll =
  let text_stage ~key compute =
    text_tiers t ~key ~stage:"trace_stats"
      ~unwrap:(function Text p -> Some p | _ -> None)
      ~wrap:(fun payload _ ->
        Some (payload, String.length payload, Text payload))
      ~compute:(fun () ->
        let payload = compute () in
        (payload, String.length payload, Text payload, payload, None))
  in
  match input with
  | `Trace_text text ->
      let key =
        stage_key ~stage:"trace_stats:inline" ~machine ~seed:None
          ~source_digest:(digest_hex text)
      in
      text_stage ~key (fun () ->
          let records =
            try Trace.Trace_file.of_string text
            with Failure msg -> raise (Reject (Protocol.Parse_error, msg))
          in
          Oneshot.trace_stats_report ~nodes:machine.Protocol.nodes records)
  | `Source source ->
      let key =
        stage_key ~stage:"trace_stats" ~machine ~seed
          ~source_digest:(digest_hex source)
      in
      text_stage ~key (fun () ->
          let records, _, _ = trace_stage t ~machine ~seed ~source ~poll in
          Oneshot.trace_stats_report ~nodes:machine.Protocol.nodes records)

(* ------------------------------------------------------------------ *)
(* the dispatcher                                                      *)

let execute t (req : Protocol.request) ~poll =
  let nodes = req.machine.Protocol.nodes in
  match req.op with
  | Protocol.Parse { source } ->
      let source = resolve_source ~nodes source in
      let program = parsed_program t ~source ~seed:req.seed in
      (Oneshot.parse_report program, false, [])
  | Protocol.Simulate { source; annotations; prefetch; trace } ->
      let source = resolve_source ~nodes source in
      let payload, cached =
        if trace then
          let _, payload, cached =
            trace_stage t ~machine:req.machine ~seed:req.seed ~source ~poll
          in
          (payload, cached)
        else
          measure_stage t ~machine:req.machine ~seed:req.seed ~source
            ~annotations ~prefetch ~poll
      in
      (payload, cached, [])
  | Protocol.Annotate { source; mode; prefetch } ->
      let source = resolve_source ~nodes source in
      let artifact = register_base t source in
      let payload, summary, cached =
        annotate_stage t ~machine:req.machine ~seed:req.seed ~source ~mode
          ~prefetch ~poll
      in
      ( payload,
        cached,
        [
          ("report", Json.String summary); ("artifact", Json.String artifact);
        ] )
  | Protocol.Annotate_delta { base; start; len; text; mode; prefetch } ->
      let payload, summary, reuse, artifact, cached =
        delta_stage t ~machine:req.machine ~seed:req.seed ~base
          ~span:{ Delta.Splice.start; len } ~text ~mode ~prefetch
      in
      ( payload,
        cached,
        [
          ("report", Json.String summary);
          ("artifact", Json.String artifact);
          ("reuse", Json.String reuse);
        ] )
  | Protocol.Race_report { source } ->
      let source = resolve_source ~nodes source in
      let payload, cached =
        race_stage t ~machine:req.machine ~seed:req.seed ~source ~poll
      in
      (payload, cached, [])
  | Protocol.Races { source } ->
      let source = resolve_source ~nodes source in
      let payload, cached =
        races_stage t ~machine:req.machine ~seed:req.seed ~source ~poll
      in
      (payload, cached, [])
  | Protocol.Trace_stats { source; trace_text } ->
      let input =
        match (trace_text, source) with
        | Some text, _ -> `Trace_text text
        | None, Some s -> `Source (resolve_source ~nodes s)
        | None, None ->
            raise (Reject (Protocol.Bad_request, "missing trace input"))
      in
      let payload, cached =
        trace_stats_stage t ~machine:req.machine ~seed:req.seed ~input ~poll
      in
      (payload, cached, [])
  | Protocol.Stats ->
      let stats =
        Metrics.to_json t.metrics
          ~evictions:(Cache.evictions t.cache)
          ~cache_bytes:(Cache.size t.cache)
          ~cache_entries:(Cache.entries t.cache)
          ?store:t.store ()
      in
      let delta_dag =
        Json.Obj
          (List.map
             (fun (kind, (h, m)) ->
               (kind, Json.Obj [ ("hits", Json.Int h); ("misses", Json.Int m) ]))
             (Delta.Dag.stats t.dag))
      in
      let stats =
        match stats with
        | Json.Obj fields -> Json.Obj (fields @ [ ("delta_dag", delta_dag) ])
        | j -> j
      in
      ("", false, [ ("stats", stats) ])
  | Protocol.Ping -> ("pong", false, [])
  | Protocol.Shutdown -> ("shutting down", false, [])

(* ------------------------------------------------------------------ *)
(* single-flight coalescing                                            *)

(* Everything that determines a work request's result, and nothing that
   does not (id, deadline): identical concurrent requests share one
   execution. Cheap ops are never coalesced. *)
let flight_key (req : Protocol.request) =
  let src = function
    | Protocol.Text s -> "t:" ^ digest_hex s
    | Protocol.Bench b -> "b:" ^ b
  in
  let m = req.machine in
  let base op rest =
    Printf.sprintf "%s|n%d:c%d:a%d:b%d:p%s|%s|%s" op m.Protocol.nodes
      m.Protocol.cache_kb m.Protocol.assoc m.Protocol.block
      (Memsys.Protocol_id.to_string m.Protocol.protocol)
      (match req.seed with Some s -> string_of_int s | None -> "-")
      rest
  in
  match req.op with
  | Protocol.Parse { source } -> Some (base "parse" (src source))
  | Protocol.Simulate { source; annotations; prefetch; trace } ->
      Some
        (base "simulate"
           (Printf.sprintf "%s:%B:%B:%B" (src source) annotations prefetch
              trace))
  | Protocol.Annotate { source; mode; prefetch } ->
      Some
        (base "annotate"
           (Printf.sprintf "%s:%s:%B" (src source)
              (match mode with
              | Protocol.Performance -> "perf"
              | Protocol.Programmer -> "prog")
              prefetch))
  | Protocol.Annotate_delta { base = b; start; len; text; mode; prefetch } ->
      Some
        (base "annotate_delta"
           (Printf.sprintf "%s:%d:%d:%s:%s:%B" b start len (digest_hex text)
              (match mode with
              | Protocol.Performance -> "perf"
              | Protocol.Programmer -> "prog")
              prefetch))
  | Protocol.Race_report { source } -> Some (base "race_report" (src source))
  | Protocol.Races { source } -> Some (base "races" (src source))
  | Protocol.Trace_stats { source; trace_text } ->
      Some
        (base "trace_stats"
           (match (trace_text, source) with
           | Some text, _ -> "x:" ^ digest_hex text
           | None, Some s -> src s
           | None, None -> "-"))
  | Protocol.Stats | Protocol.Ping | Protocol.Shutdown -> None

(* A follower that inherited the leader's deadline cancellation retries
   (bounded): its own deadline may still have room, and poisoning every
   waiter with the leader's cancellation would defeat coalescing. *)
let inherited_cancellation = function
  | Wwt.Sched.Cancelled _ -> true
  | Reject (Protocol.Deadline_exceeded, _) -> true
  | _ -> false

(* raises; the computation a flight leader runs *)
let run_request t (req : Protocol.request) ~received =
  check_deadline ~received req.deadline_ms;
  let poll = make_poll ~received req.deadline_ms in
  execute t req ~poll

(* Map one computation result to one response, with the per-request
   metrics and Obs bookkeeping. [t0]/[obs_t0] are the request's own
   arrival stamps, so a coalesced follower reports its own latency. *)
let finish_response t (req : Protocol.request) ~t0 ~obs_t0 ~coalesced result =
  let finish resp =
    (match resp with
    | Protocol.Ok_response { op; elapsed_us; _ } ->
        Metrics.record_request t.metrics ~op ~elapsed_us
    | Protocol.Error_response { error; _ } ->
        Metrics.record_request t.metrics ~op:(Protocol.op_name req.op)
          ~elapsed_us:
            (int_of_float ((Unix.gettimeofday () -. t0) *. 1_000_000.));
        Metrics.record_error t.metrics
          ~kind:(Protocol.error_kind_to_string error));
    if Obs.enabled () then begin
      Obs.Counter.incr obs_requests;
      if coalesced then Obs.Counter.incr obs_coalesced;
      (match resp with
      | Protocol.Ok_response { cached; _ } ->
          Obs.Counter.incr (if cached then obs_cache_hits else obs_cache_misses)
      | Protocol.Error_response _ -> ());
      Obs.finish ("service." ^ Protocol.op_name req.op) obs_t0
    end;
    resp
  in
  let error kind message =
    finish (Protocol.Error_response { id = req.id; error = kind; message })
  in
  match result with
  | Ok (payload, cached, extra) ->
      let elapsed_us =
        int_of_float ((Unix.gettimeofday () -. t0) *. 1_000_000.)
      in
      finish
        (Protocol.Ok_response
           {
             id = req.id;
             op = Protocol.op_name req.op;
             cached = cached || coalesced;
             elapsed_us;
             payload;
             extra;
           })
  | Error (Reject (kind, msg)) -> error kind msg
  | Error (Lang.Parser.Error msg) -> error Protocol.Parse_error msg
  | Error (Lang.Sema.Error msg) -> error Protocol.Parse_error msg
  | Error (Wwt.Sched.Cancelled msg) -> error Protocol.Deadline_exceeded msg
  | Error (Wwt.Interp.Runtime_error msg) -> error Protocol.Runtime_error msg
  | Error (Wwt.Sched.Deadlock msg) -> error Protocol.Runtime_error msg
  | Error e -> error Protocol.Internal (Printexc.to_string e)

let handle ?received t (req : Protocol.request) =
  let received =
    match received with Some r -> r | None -> Unix.gettimeofday ()
  in
  let t0 = Unix.gettimeofday () in
  let obs_t0 = Obs.start () in
  let compute () = run_request t req ~received in
  let rec attempt tries =
    match flight_key req with
    | None -> ((try Ok (compute ()) with e -> Error e), false)
    | Some key -> (
        match Flight.run t.flight key compute with
        | Error e, true when tries < 2 && inherited_cancellation e ->
            attempt (tries + 1)
        | r, coalesced -> (r, coalesced))
  in
  let result, coalesced = attempt 0 in
  if coalesced then Metrics.record_coalesced t.metrics;
  finish_response t req ~t0 ~obs_t0 ~coalesced result

(* The event-loop entry point: never blocks the caller. Cheap ops are
   answered inline; work ops join the flight table, and only a flight
   leader submits a pool job — 10k concurrent identical requests cost
   one queue slot and one simulation. [deliver] may be called on the
   calling thread (inline ops, overload) or on a worker domain. *)
let handle_async ?received t (req : Protocol.request) ~deliver =
  let received =
    match received with Some r -> r | None -> Unix.gettimeofday ()
  in
  match flight_key req with
  | None -> deliver (handle ~received t req)
  | Some key ->
      let rec attempt tries =
        let t0 = Unix.gettimeofday () in
        let obs_t0 = Obs.start () in
        let on_result ~coalesced result =
          match result with
          | Error e when coalesced && tries < 2 && inherited_cancellation e ->
              attempt (tries + 1)
          | _ ->
              if coalesced then Metrics.record_coalesced t.metrics;
              deliver (finish_response t req ~t0 ~obs_t0 ~coalesced result)
        in
        match Flight.join t.flight key ~deliver:on_result with
        | `Joined -> ()
        | `Leader complete -> (
            match
              Wwt.Jobs.Pool.submit t.pool (fun () ->
                  complete
                    (try Ok (run_request t req ~received) with e -> Error e))
            with
            | Some _ -> ()
            | None ->
                complete
                  (Error
                     (Reject
                        ( Protocol.Overloaded,
                          Printf.sprintf "submission queue full (capacity %d)"
                            t.config.queue_capacity ))))
      in
      attempt 0

(* ------------------------------------------------------------------ *)
(* serving: blocking NDJSON loop (stdio)                               *)

let serve t ic oc =
  let out_mu = Mutex.create () in
  let send resp =
    let buf = Buffer.create 1024 in
    Protocol.write_response buf resp;
    Mutex.lock out_mu;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock out_mu)
      (fun () ->
        Buffer.output_buffer oc buf;
        flush oc)
  in
  let pending = ref [] in
  let drain () =
    List.iter (fun h -> ignore (Wwt.Jobs.Pool.await h)) !pending;
    pending := []
  in
  let rec loop () =
    match input_line ic with
    | exception End_of_file -> `Eof
    | line when String.trim line = "" -> loop ()
    | line -> (
        match
          Protocol.read_request ~defaults:t.config.machine_defaults line
        with
        | Error msg ->
            Metrics.record_error t.metrics ~kind:"bad_request";
            send
              (Protocol.Error_response
                 { id = 0; error = Protocol.Bad_request; message = msg });
            loop ()
        | Ok req -> (
            match req.Protocol.op with
            | Protocol.Shutdown ->
                (* answer only after every in-flight request has *)
                drain ();
                send (handle t req);
                `Shutdown
            | Protocol.Stats | Protocol.Ping ->
                (* cheap and latency-sensitive: answer on the reader *)
                send (handle t req);
                loop ()
            | _ -> (
                let received = Unix.gettimeofday () in
                match
                  Wwt.Jobs.Pool.submit t.pool (fun () ->
                      send (handle ~received t req))
                with
                | Some h ->
                    pending := h :: !pending;
                    loop ()
                | None ->
                    Metrics.record_error t.metrics ~kind:"overloaded";
                    send
                      (Protocol.Error_response
                         {
                           id = req.Protocol.id;
                           error = Protocol.Overloaded;
                           message =
                             Printf.sprintf
                               "submission queue full (capacity %d)"
                               t.config.queue_capacity;
                         });
                    loop ())))
  in
  let outcome = loop () in
  drain ();
  outcome

(* ------------------------------------------------------------------ *)
(* serving: sharded event-loop front end (Unix socket)                 *)

type serve_options = {
  listeners : int;
  idle_timeout_s : float;
  drain_grace_s : float;
}

let default_serve_options =
  { listeners = 2; idle_timeout_s = 30.; drain_grace_s = 5. }

let response_line resp =
  let buf = Buffer.create 1024 in
  Protocol.write_response buf resp;
  Buffer.contents buf

let serve_shards t ~path ?(options = default_serve_options) ?stop () =
  let stop = match stop with Some s -> s | None -> Atomic.make false in
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  let lsock = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.set_nonblock lsock;
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close lsock with Unix.Unix_error _ -> ());
      try Unix.unlink path with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.bind lsock (Unix.ADDR_UNIX path);
      Unix.listen lsock 1024;
      let shard () =
        let loop = Aio.Loop.create () in
        let on_line conn line =
          if String.trim line = "" then ()
          else
            match
              Protocol.read_request ~defaults:t.config.machine_defaults line
            with
            | Error msg ->
                Metrics.record_error t.metrics ~kind:"bad_request";
                Aio.Loop.send conn
                  (response_line
                     (Protocol.Error_response
                        { id = 0; error = Protocol.Bad_request; message = msg }))
            | Ok req -> (
                let received = Unix.gettimeofday () in
                match req.Protocol.op with
                | Protocol.Shutdown ->
                    (* reply first, then trigger the drain: every loop
                       stops accepting and finishes its in-flight work
                       within the drain grace *)
                    Aio.Loop.send conn (response_line (handle ~received t req));
                    Atomic.set stop true
                | Protocol.Stats | Protocol.Ping ->
                    (* cheap and latency-sensitive: answer on the loop *)
                    Aio.Loop.send conn (response_line (handle ~received t req))
                | _ ->
                    Aio.Loop.hold conn;
                    handle_async ~received t req ~deliver:(fun resp ->
                        Aio.Loop.post loop (fun () ->
                            Aio.Loop.send conn (response_line resp);
                            Aio.Loop.release conn)))
        in
        Aio.Loop.add_listener loop lsock ~on_accept:(fun fd ->
            ignore (Aio.Loop.add_conn loop fd ~on_line ()));
        Aio.Loop.run loop ~idle_timeout:options.idle_timeout_s
          ~drain_grace:options.drain_grace_s
          ~stop:(fun () -> Atomic.get stop)
          ()
      in
      match max 1 options.listeners with
      | 1 -> shard () (* run on the calling domain *)
      | n ->
          let shards = List.init n (fun _ -> Domain.spawn shard) in
          List.iter Domain.join shards)

let serve_socket t ~path =
  serve_shards t ~path
    ~options:{ default_serve_options with listeners = 1 }
    ()
